// Package experiments reproduces every table and figure of the
// paper's evaluation: the model-parameter tables (Figs 1-3, 5), the
// static-strategy comparison (Fig 6), the adaptive-strategy scenarios
// (Fig 7), the local-vs-remote compilation energies (Fig 8), and the
// quantitative claims of §3 (estimator accuracy, AL savings over the
// best static strategy, offload speedups, AA vs AL).
package experiments

import (
	"context"

	"fmt"

	"greenvm/internal/apps"
	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Env is a prepared application: program, profile, target. Preparing
// is done once per app and shared across scenarios (profiling is the
// offline step the paper performs when the application is deployed on
// the server).
type Env struct {
	App    *apps.App
	Prog   *bytecode.Program
	Target *core.Target
	Prof   *core.Profile
}

// Prepare compiles and profiles one application.
func Prepare(a *apps.App, seed uint64) (*Env, error) {
	prog, err := a.FreshProgram()
	if err != nil {
		return nil, err
	}
	target := a.Target()
	pr := &core.Profiler{
		Prog:        prog,
		ClientModel: energy.MicroSPARCIIep(),
		ServerModel: energy.ServerSPARC(),
		Seed:        seed,
	}
	prof, err := pr.ProfileTarget(target)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return &Env{App: a, Prog: prog, Target: target, Prof: prof}, nil
}

// PrepareAll prepares a set of applications.
func PrepareAll(list []*apps.App, seed uint64) ([]*Env, error) {
	return PrepareAllOn(nil, list, seed)
}

// PrepareAllOn prepares a set of applications, profiling them in
// parallel on the runner (each app gets its own fresh Program, so
// preparations are independent).
func PrepareAllOn(r *Runner, list []*apps.App, seed uint64) ([]*Env, error) {
	envs := make([]*Env, len(list))
	err := r.Do(len(list), func(i int) error {
		e, err := Prepare(list[i], seed)
		if err != nil {
			return err
		}
		envs[i] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return envs, nil
}

// inputSeed fixes the input content per (app, size) so identical
// invocations are replayable.
func inputSeed(app string, size int, seed uint64) uint64 {
	h := seed ^ 0x9E3779B97F4A7C15
	for _, c := range app {
		h = h*1099511628211 ^ uint64(c)
	}
	return h*2654435761 + uint64(size)
}

// newClient wires a fresh client+server for one scenario.
func (e *Env) newClient(strategy core.Strategy, ch radio.Channel, seed uint64) (*core.Client, error) {
	server := core.NewServer(e.Prog)
	c := core.New(core.ClientConfig{
		ID:       fmt.Sprintf("%s-%v", e.App.Name, strategy),
		Prog:     e.Prog,
		Server:   server,
		Channel:  ch,
		Strategy: strategy,
		Seed:     seed,
	})
	if err := c.Register(e.Target, e.Prof); err != nil {
		return nil, err
	}
	return c, nil
}

// runOnceOn executes one invocation of the app on the client with an
// input of the given size, excluding input-construction energy, and
// returns the energy and time deltas.
func (e *Env) runOnceOn(c *core.Client, size int, seed uint64) (energy.Joules, energy.Seconds, error) {
	args, err := e.Target.MakeArgs(c.VM, size, rng.New(inputSeed(e.App.Name, size, seed)))
	if err != nil {
		return 0, 0, err
	}
	c.VM.Hier.Flush()
	e0, t0 := c.Energy(), c.Clock
	if _, err := c.Invoke(context.Background(), e.App.Class, e.App.Method, args); err != nil {
		return 0, 0, err
	}
	return c.Energy() - e0, c.Clock - t0, nil
}

// Scenario argument cache: inputs are fixed per size, so repeated
// invocations reuse both the heap objects and the memoized execution.
type argCache struct {
	env  *Env
	c    *core.Client
	seed uint64
	args map[int][]vm.Slot
	// Construction is the energy spent building inputs, excluded from
	// scenario totals (it is the driver's work, identical across
	// strategies).
	Construction energy.Joules
}

func newArgCache(env *Env, c *core.Client, seed uint64) *argCache {
	return &argCache{env: env, c: c, seed: seed, args: map[int][]vm.Slot{}}
}

func (ac *argCache) get(size int) ([]vm.Slot, error) {
	if a, ok := ac.args[size]; ok {
		return a, nil
	}
	e0 := ac.c.Energy()
	a, err := ac.env.Target.MakeArgs(ac.c.VM, size, rng.New(inputSeed(ac.env.App.Name, size, ac.seed)))
	if err != nil {
		return nil, err
	}
	ac.Construction += ac.c.Energy() - e0
	ac.args[size] = a
	return a, nil
}
