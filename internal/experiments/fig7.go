package experiments

import (
	"context"

	"fmt"
	"io"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

// Situation is one of the paper's three scenario families (§3.2).
type Situation int

// The three situations of Fig 7.
const (
	SitGoodDominant Situation = iota // (i) channel predominantly good, one size dominates
	SitPoorDominant                  // (ii) channel predominantly poor, one size dominates
	SitUniform                       // (iii) channel and sizes uniformly distributed

	NumSituations
)

// String names the situation.
func (s Situation) String() string {
	switch s {
	case SitGoodDominant:
		return "i (good channel, dominant size)"
	case SitPoorDominant:
		return "ii (poor channel, dominant size)"
	case SitUniform:
		return "iii (uniform channel and sizes)"
	default:
		return fmt.Sprintf("Situation(%d)", int(s))
	}
}

func (s Situation) channel(r *rng.RNG) radio.Channel {
	switch s {
	case SitGoodDominant:
		return radio.PredominantlyGood(r)
	case SitPoorDominant:
		return radio.PredominantlyPoor(r)
	default:
		return radio.UniformChannel(r)
	}
}

// sizeWeights returns the draw weights over an app's scenario sizes:
// dominant situations put 80% of the mass on the middle size.
func (s Situation) sizeWeights(n int) []float64 {
	w := make([]float64, n)
	if s == SitUniform {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	for i := range w {
		w[i] = 0.2 / float64(n-1)
	}
	w[n-2] = 0.8
	return w
}

// Fig7Cell is one (app, situation, strategy) scenario outcome.
type Fig7Cell struct {
	Energy     energy.Joules
	Time       energy.Seconds
	ModeCounts [core.NumModes]int
	Fallbacks  int
	MemoHits   int
}

// Fig7Result holds the full Fig 7 dataset.
type Fig7Result struct {
	Runs int
	// Cells[situation][strategy][appIndex].
	Cells [NumSituations][7]map[string]Fig7Cell
	// Normalized[situation][strategy] is the average over apps of
	// energy normalized to the same app's L1 energy — the quantity the
	// paper plots.
	Normalized [NumSituations][7]float64
}

// RunScenario executes one (app, situation, strategy) scenario of the
// given number of application executions.
func RunScenario(env *Env, sit Situation, strategy core.Strategy, runs int, seed uint64) (Fig7Cell, error) {
	return runScenarioWith(env, sit, strategy, runs, seed, nil)
}

// runScenarioWith is RunScenario with an attach hook: observers
// register their event sinks on the freshly built client before the
// scenario starts. The scenario itself is unchanged — sinks only
// listen — so an observed cell measures exactly what RunScenario
// measures.
func runScenarioWith(env *Env, sit Situation, strategy core.Strategy, runs int, seed uint64,
	attach func(*core.Client)) (Fig7Cell, error) {

	chR := rng.New(seed ^ 0xC0FFEE)
	client, err := env.newClient(strategy, sit.channel(chR), seed)
	if err != nil {
		return Fig7Cell{}, err
	}
	client.Memo = core.NewMemo()
	if attach != nil {
		attach(client)
	}
	sizes := env.App.ScenarioSizes
	weights := sit.sizeWeights(len(sizes))
	sizeR := rng.New(seed ^ 0xBEEF)
	cache := newArgCache(env, client, seed)

	for run := 0; run < runs; run++ {
		size := sizes[sizeR.Pick(weights)]
		args, err := cache.get(size)
		if err != nil {
			return Fig7Cell{}, err
		}
		// Each run is a fresh application execution: classes reload,
		// so any compilation is paid again (Fig 6 includes it for a
		// single execution; Fig 7 scenarios repeat that 300 times).
		client.NewExecution()
		client.MemoInputKey = uint64(size)
		if _, err := client.Invoke(context.Background(), env.App.Class, env.App.Method, args); err != nil {
			return Fig7Cell{}, fmt.Errorf("%s/%v/%v run %d: %w", env.App.Name, sit, strategy, run, err)
		}
		client.StepChannel()
	}
	// Fold the link's final telemetry into Stats: a trailing failed
	// exchange would otherwise never be reflected there.
	client.SyncStats()
	return Fig7Cell{
		Energy:     client.Energy() - cache.Construction,
		Time:       client.Clock,
		ModeCounts: client.Stats.ModeCounts,
		Fallbacks:  client.Stats.Fallbacks,
		MemoHits:   client.Stats.MemoHits,
	}, nil
}

// RunFig7 runs all situations and strategies over the prepared apps.
func RunFig7(envs []*Env, runs int, seed uint64) (*Fig7Result, error) {
	return RunFig7On(nil, envs, runs, seed)
}

// RunFig7On runs the full (situation × strategy × app) grid with the
// cells sharded across the runner. Every cell derives its RNGs from
// the same per-situation seed the serial run uses and writes to its
// own slot, so the result is identical to RunFig7's.
func RunFig7On(r *Runner, envs []*Env, runs int, seed uint64) (*Fig7Result, error) {
	res := &Fig7Result{Runs: runs}
	nStrat := len(core.Strategies)
	nEnv := len(envs)
	cells := make([]Fig7Cell, int(NumSituations)*nStrat*nEnv)
	err := r.Do(len(cells), func(j int) error {
		sit := Situation(j / (nStrat * nEnv))
		si := (j / nEnv) % nStrat
		env := envs[j%nEnv]
		cell, err := RunScenario(env, sit, core.Strategies[si], runs, seed+uint64(sit)*1000)
		if err != nil {
			return err
		}
		cells[j] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for sit := Situation(0); sit < NumSituations; sit++ {
		for si := range core.Strategies {
			res.Cells[sit][si] = map[string]Fig7Cell{}
			for ei, env := range envs {
				res.Cells[sit][si][env.App.Name] = cells[(int(sit)*nStrat+si)*nEnv+ei]
			}
		}
	}
	// Normalize to L1 per app, then average over apps.
	for sit := Situation(0); sit < NumSituations; sit++ {
		l1 := res.Cells[sit][indexOf(core.StrategyL1)]
		for si := range core.Strategies {
			var sum float64
			var n int
			for app, cell := range res.Cells[sit][si] {
				base := l1[app].Energy
				if base > 0 {
					sum += float64(cell.Energy) / float64(base)
					n++
				}
			}
			if n > 0 {
				res.Normalized[sit][si] = sum / float64(n)
			}
		}
	}
	return res, nil
}

func indexOf(s core.Strategy) int {
	for i, x := range core.Strategies {
		if x == s {
			return i
		}
	}
	return -1
}

// Strategy returns the normalized average energy of a strategy in a
// situation.
func (r *Fig7Result) Strategy(sit Situation, s core.Strategy) float64 {
	return r.Normalized[sit][indexOf(s)]
}

// BestStatic returns the best static strategy and its normalized value
// in a situation.
func (r *Fig7Result) BestStatic(sit Situation) (core.Strategy, float64) {
	best, bestV := core.StrategyL1, r.Strategy(sit, core.StrategyL1)
	for _, s := range []core.Strategy{core.StrategyR, core.StrategyI, core.StrategyL2, core.StrategyL3} {
		if v := r.Strategy(sit, s); v < bestV {
			best, bestV = s, v
		}
	}
	return best, bestV
}

// RenderFig7 prints the normalized averages, one row per situation.
func RenderFig7(w io.Writer, r *Fig7Result) {
	fmt.Fprintf(w, "Fig 7: average normalized energy of the eight benchmarks (%d executions\n", r.Runs)
	fmt.Fprintln(w, "per scenario), normalized to L1; lower is better")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-36s", "situation")
	for _, s := range core.Strategies {
		fmt.Fprintf(w, " %6s", s)
	}
	fmt.Fprintln(w)
	for sit := Situation(0); sit < NumSituations; sit++ {
		fmt.Fprintf(w, "%-36s", sit)
		for si := range core.Strategies {
			fmt.Fprintf(w, " %6.3f", r.Normalized[sit][si])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	for sit := Situation(0); sit < NumSituations; sit++ {
		best, bestV := r.BestStatic(sit)
		al := r.Strategy(sit, core.StrategyAL)
		aa := r.Strategy(sit, core.StrategyAA)
		fmt.Fprintf(w, "situation %-34v best static %-2v=%0.3f  AL=%0.3f (%+.0f%%)  AA=%0.3f (%+.0f%%)\n",
			sit, best, bestV, al, (al-bestV)/bestV*100, aa, (aa-bestV)/bestV*100)
	}
}

// RenderFig7PerApp prints the per-app normalized table for one
// situation (useful for drilling into the averages).
func RenderFig7PerApp(w io.Writer, r *Fig7Result, sit Situation) {
	fmt.Fprintf(w, "Fig 7 detail, situation %v (energy normalized to L1 per app)\n\n", sit)
	fmt.Fprintf(w, "%-6s", "app")
	for _, s := range core.Strategies {
		fmt.Fprintf(w, " %6s", s)
	}
	fmt.Fprintln(w)
	l1 := r.Cells[sit][indexOf(core.StrategyL1)]
	apps := make([]string, 0, len(l1))
	for app := range l1 {
		apps = append(apps, app)
	}
	sortStrings(apps)
	for _, app := range apps {
		fmt.Fprintf(w, "%-6s", app)
		for si := range core.Strategies {
			cell := r.Cells[sit][si][app]
			fmt.Fprintf(w, " %6.3f", float64(cell.Energy)/float64(l1[app].Energy))
		}
		fmt.Fprintln(w)
	}
}

func sortStrings(s []string) {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}
