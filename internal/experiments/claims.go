package experiments

import (
	"fmt"
	"io"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
)

// Claims collects the quantitative statements of §3 that are not
// figures, measured on our reproduction.
type Claims struct {
	// EstimatorWorstErr is the worst relative error of the curve-fit
	// energy estimators at held-out sizes, per app (paper: within 2%).
	EstimatorWorstErr map[string]float64
	// ALSavings[sit] is the fraction by which AL beats the best static
	// strategy in each situation (paper: 25%, 10%, 22%).
	ALSavings [NumSituations]float64
	// AAVsAL[sit] is AA's additional saving over AL (paper: AA saves
	// more than AL).
	AAVsAL [NumSituations]float64
	// Speedups[app] is local-time / remote-time at the large input
	// under the best channel, where remote execution is preferred
	// (paper: between 2.5x and 10x).
	Speedups map[string]float64
}

// MeasureEstimatorAccuracy validates profiles at held-out sizes.
func MeasureEstimatorAccuracy(envs []*Env, seed uint64) (map[string]float64, error) {
	return MeasureEstimatorAccuracyOn(nil, envs, seed)
}

// MeasureEstimatorAccuracyOn validates profiles at held-out sizes,
// one app per runner job.
func MeasureEstimatorAccuracyOn(r *Runner, envs []*Env, seed uint64) (map[string]float64, error) {
	worsts := make([]float64, len(envs))
	err := r.Do(len(envs), func(i int) error {
		env := envs[i]
		pr := &core.Profiler{
			Prog:        env.Prog,
			ClientModel: energy.MicroSPARCIIep(),
			ServerModel: energy.ServerSPARC(),
			Seed:        seed,
		}
		ps := env.App.ProfileSizes
		held := []int{
			(ps[0] + ps[1]) / 2,
			(ps[len(ps)/2] + ps[len(ps)/2+1]) / 2,
			(ps[len(ps)-2] + ps[len(ps)-1]) / 2,
		}
		worst, err := pr.ValidateProfile(env.Target, env.Prof, held)
		if err != nil {
			return err
		}
		worsts[i] = worst
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i, env := range envs {
		out[env.App.Name] = worsts[i]
	}
	return out, nil
}

// MeasureSpeedups compares local and remote wall-clock time per app at
// the large input size under the best channel, using the profiled
// time estimators plus the communication model (the paper reports
// 2.5x-10x when remote execution is preferred).
func MeasureSpeedups(envs []*Env) map[string]float64 {
	chip := radio.WCDMA()
	out := map[string]float64{}
	for _, env := range envs {
		s := float64(env.App.LargeSize)
		// Best local time across the compiled modes.
		local := env.Prof.TimeOf[core.ModeL1].Eval(s)
		for _, m := range []core.Mode{core.ModeL2, core.ModeL3} {
			if t := env.Prof.TimeOf[m].Eval(s); t < local {
				local = t
			}
		}
		tx := env.Prof.TxBytes.Eval(s)
		rx := env.Prof.RxBytes.Eval(s)
		remote := float64(chip.AirTime(int(tx), radio.Class4)) + env.Prof.ServerTime.Eval(s) +
			float64(chip.AirTime(int(rx), radio.Class4))
		if remote > 0 {
			out[env.App.Name] = local / remote
		}
	}
	return out
}

// MeasureClaims produces the full claims report given Fig 7 results.
func MeasureClaims(envs []*Env, fig7 *Fig7Result, seed uint64) (*Claims, error) {
	return MeasureClaimsOn(nil, envs, fig7, seed)
}

// MeasureClaimsOn produces the claims report with the estimator
// validation sharded across the runner.
func MeasureClaimsOn(r *Runner, envs []*Env, fig7 *Fig7Result, seed uint64) (*Claims, error) {
	c := &Claims{Speedups: MeasureSpeedups(envs)}
	var err error
	if c.EstimatorWorstErr, err = MeasureEstimatorAccuracyOn(r, envs, seed); err != nil {
		return nil, err
	}
	for sit := Situation(0); sit < NumSituations; sit++ {
		_, best := fig7.BestStatic(sit)
		al := fig7.Strategy(sit, core.StrategyAL)
		aa := fig7.Strategy(sit, core.StrategyAA)
		if best > 0 {
			c.ALSavings[sit] = (best - al) / best
		}
		if al > 0 {
			c.AAVsAL[sit] = (al - aa) / al
		}
	}
	return c, nil
}

// RenderClaims prints paper-vs-measured for each claim.
func RenderClaims(w io.Writer, c *Claims) {
	fmt.Fprintln(w, "Claims of §3, paper vs. measured")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "1. Curve-fit energy estimators within 2% of actual (held-out inputs):")
	worst := 0.0
	for _, app := range sortedKeys(c.EstimatorWorstErr) {
		e := c.EstimatorWorstErr[app]
		fmt.Fprintf(w, "   %-6s %.2f%%\n", app, e*100)
		if e > worst {
			worst = e
		}
	}
	fmt.Fprintf(w, "   worst: %.2f%%\n\n", worst*100)

	fmt.Fprintln(w, "2. AL vs best static strategy (paper: saves 25%, 10%, 22% in i, ii, iii):")
	for sit := Situation(0); sit < NumSituations; sit++ {
		fmt.Fprintf(w, "   situation %-34v AL saves %.0f%%\n", sit, c.ALSavings[sit]*100)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "3. AA saves more energy than AL (paper: §3.3):")
	for sit := Situation(0); sit < NumSituations; sit++ {
		fmt.Fprintf(w, "   situation %-34v AA saves a further %.1f%% over AL\n", sit, c.AAVsAL[sit]*100)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "4. Speedup of remote over local execution at large inputs (paper: 2.5x-10x")
	fmt.Fprintln(w, "   where remote execution is preferred):")
	for _, app := range sortedKeys(c.Speedups) {
		fmt.Fprintf(w, "   %-6s %.1fx\n", app, c.Speedups[app])
	}
}

// sortedKeys returns a map's keys in sorted order so renders are
// deterministic regardless of map iteration.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}
