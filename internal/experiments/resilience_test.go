package experiments

import (
	"strings"
	"testing"
)

// TestResilienceSweepShapes: every strategy completes the scenario at
// every outage level, the fault-free cell comes first, and costs never
// shrink when faults are injected.
func TestResilienceSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow under -race/-short")
	}
	envs := testEnvs(t)
	pts, err := RunResilienceSweep(envs[0], 20, 42) // fe
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1+len(outageRates)*len(outageBursts) {
		t.Fatalf("got %d cells", len(pts))
	}
	base := pts[0]
	if base.OutageRate != 0 {
		t.Fatal("first cell must be the fault-free baseline")
	}
	if base.AALosses != 0 || base.RFallbacks != 0 {
		t.Errorf("fault-free cell shows losses: %+v", base)
	}
	var worst ResiliencePoint
	for _, p := range pts[1:] {
		// fe offloads heavily: heavy short-burst cells lose exchanges
		// for certain (rare long bursts may fall between this small
		// scenario's transfers), and faults never make R relatively
		// cheaper.
		if p.OutageRate >= 0.2 && p.MeanBurst == 1 && p.RFallbacks == 0 && p.AALosses == 0 {
			t.Errorf("cell %.2f/%v shows no faults at all", p.OutageRate, p.MeanBurst)
		}
		if p.R < base.R {
			t.Errorf("cell %.2f/%v: R/L2 %.3f below fault-free %.3f",
				p.OutageRate, p.MeanBurst, p.R, base.R)
		}
		if p.OutageRate == 0.4 && p.MeanBurst == 1 {
			worst = p
		}
	}
	// Under a heavy per-transfer outage the adaptive strategy must
	// degrade more gracefully than static R: it can stop offloading,
	// R cannot.
	if worst.AA >= worst.R {
		t.Errorf("heavy outage: AA/L2 %.3f should beat R/L2 %.3f", worst.AA, worst.R)
	}
}

// TestResilienceSweepDeterministic: the sweep with fault injection
// renders byte-identically whether the grid runs serially or sharded
// across workers.
func TestResilienceSweepDeterministic(t *testing.T) {
	envs := testEnvs(t)
	runs := 12
	if testing.Short() {
		// Keep the race-detector pass within budget on slow hosts;
		// the full-size comparison runs in the regular pass.
		runs = 3
	}
	render := func(r *Runner) string {
		var b strings.Builder
		pts, err := RunResilienceSweepOn(r, envs[0], runs, 42)
		if err != nil {
			t.Fatal(err)
		}
		RenderResilienceSweep(&b, envs[0].App.Name, pts)
		return b.String()
	}
	serial := render(nil)
	parallel := render(NewRunner(4))
	if serial != parallel {
		t.Error("parallel resilience sweep differs from serial run")
	}
	if !strings.Contains(serial, "burst outages") {
		t.Error("render incomplete")
	}
}
