package experiments

import (
	"strings"
	"testing"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/radio"
)

// testEnvs prepares a fast two-app subset (fe is compute-heavy with
// tiny payloads; sort is data-heavy) shared across tests.
var cachedEnvs []*Env

func testEnvs(t *testing.T) []*Env {
	t.Helper()
	if cachedEnvs != nil {
		return cachedEnvs
	}
	list := []*apps.App{apps.FE(), apps.Sort()}
	envs, err := PrepareAll(list, 42)
	if err != nil {
		t.Fatal(err)
	}
	cachedEnvs = envs
	return envs
}

func TestFig6Shapes(t *testing.T) {
	envs := testEnvs(t)
	bars, err := RunFig6(envs[:1], 42) // fe only
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 2 {
		t.Fatalf("want small+large bars, got %d", len(bars))
	}
	for _, b := range bars {
		// Remote energy grows monotonically as the channel degrades.
		for i := 0; i < 3; i++ {
			if b.R[i] >= b.R[i+1] {
				t.Errorf("%s@%d: R stacked bars not increasing: %v", b.App, b.Size, b.R)
			}
		}
		// fe ships almost no data: remote under the best channel beats
		// every local alternative in a single execution.
		if b.R[0] >= b.L[0] {
			t.Errorf("%s@%d: R(C4)=%v should beat L1=%v", b.App, b.Size, b.R[0], b.L[0])
		}
		if b.Normalizer != b.L[0] {
			t.Error("bars must normalize to L1")
		}
	}
	small, large := bars[0], bars[1]
	// For a single small execution, interpretation avoids compilation
	// and beats L1; for the large one it must not.
	if small.I >= small.L[0] {
		t.Errorf("small: I=%v should beat L1=%v (compilation dominates)", small.I, small.L[0])
	}
	if large.I <= large.L[1] {
		t.Errorf("large: L2=%v should beat I=%v", large.L[1], large.I)
	}
	if got := large.BestStatic(radio.Class1); got == "" {
		t.Errorf("BestStatic(C1) = %q", got)
	}
	// fe's payloads are tiny, so remote wins even under Class 1 at the
	// large input; under the best channel it must win outright.
	if got := large.BestStatic(radio.Class4); got != "R" {
		t.Errorf("BestStatic(C4) = %q, want R for fe", got)
	}
}

func TestFig7ShapesAndDeterminism(t *testing.T) {
	envs := testEnvs(t)
	const runs = 40
	res, err := RunFig7(envs, runs, 42)
	if err != nil {
		t.Fatal(err)
	}
	for sit := Situation(0); sit < NumSituations; sit++ {
		_, best := res.BestStatic(sit)
		al := res.Strategy(sit, core.StrategyAL)
		aa := res.Strategy(sit, core.StrategyAA)
		// The paper's headline: the adaptive strategies beat every
		// static one (small tolerance for the tiny-run configuration).
		if al > best*1.05 {
			t.Errorf("%v: AL=%.3f worse than best static %.3f", sit, al, best)
		}
		if aa > al*1.10 {
			t.Errorf("%v: AA=%.3f should not lose to AL=%.3f", sit, aa, al)
		}
	}
	// Remote is costlier under the predominantly poor channel.
	if res.Strategy(SitPoorDominant, core.StrategyR) <= res.Strategy(SitGoodDominant, core.StrategyR) {
		t.Error("R should cost more under a poor channel")
	}
	// Determinism.
	if testing.Short() {
		return
	}
	res2, err := RunFig7(envs, runs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normalized != res2.Normalized {
		t.Error("identical Fig 7 runs differ")
	}
}

func TestFig8Shapes(t *testing.T) {
	envs := testEnvs(t)
	rows, err := RunFig8(envs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(envs)*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Remote compilation gets cheaper as the channel improves.
		for i := 0; i < 3; i++ {
			if r.Remote[i] <= r.Remote[i+1] {
				t.Errorf("%s %v: remote not decreasing with class: %v", r.App, r.Level, r.Remote)
			}
		}
		if r.CodeSz <= 0 || r.Methods <= 0 {
			t.Errorf("%s %v: bad code size/methods", r.App, r.Level)
		}
	}
	// Local compilation energy grows with optimization level (L1->L2).
	for i := 0; i < len(rows); i += 3 {
		if rows[i].Local >= rows[i+1].Local {
			t.Errorf("%s: local L2 (%v) should cost more than L1 (%v)",
				rows[i].App, rows[i+1].Local, rows[i].Local)
		}
	}
}

func TestClaims(t *testing.T) {
	envs := testEnvs(t)
	fig7, err := RunFig7(envs, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MeasureClaims(envs, fig7, 43)
	if err != nil {
		t.Fatal(err)
	}
	for app, e := range c.EstimatorWorstErr {
		if e > 0.12 {
			t.Errorf("%s: estimator error %.3f implausibly large", app, e)
		}
	}
	if s := c.Speedups["fe"]; s < 2 {
		t.Errorf("fe offload speedup = %.2f, want >= 2x (paper: 2.5-10x)", s)
	}
}

func TestSituationMachinery(t *testing.T) {
	for sit := Situation(0); sit < NumSituations; sit++ {
		w := sit.sizeWeights(5)
		var sum float64
		for _, x := range w {
			if x < 0 {
				t.Errorf("%v: negative weight", sit)
			}
			sum += x
		}
		if sum <= 0 {
			t.Errorf("%v: zero weight sum", sit)
		}
		if sit != SitUniform && w[3] < 0.5 {
			t.Errorf("%v: dominant size not dominant: %v", sit, w)
		}
		if sit.String() == "" {
			t.Error("empty situation name")
		}
	}
}

func TestRenderersSmoke(t *testing.T) {
	var b strings.Builder
	RenderFig1(&b)
	RenderFig2(&b)
	RenderFig3(&b)
	RenderFig5(&b)
	out := b.String()
	for _, want := range []string{
		"4.814", "2.846", // Fig 1 values
		"5.88", "2.3 Mbps", // Fig 2 values
		"median filtering", "quicksort", // Fig 3 rows
		"adaptive", // Fig 5
	} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("rendered tables missing %q", want)
		}
	}

	envs := testEnvs(t)
	bars, err := RunFig6(envs[:1], 42)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderFig6(&b, bars)
	if !strings.Contains(b.String(), "normalized to L1") {
		t.Error("Fig 6 header missing")
	}

	fig7, err := RunFig7(envs, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderFig7(&b, fig7)
	RenderFig7PerApp(&b, fig7, SitUniform)
	if !strings.Contains(b.String(), "best static") {
		t.Error("Fig 7 summary missing")
	}

	rows, err := RunFig8(envs)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderFig8(&b, rows)
	if !strings.Contains(b.String(), "local L1 = 100") {
		t.Error("Fig 8 header missing")
	}

	claims, err := MeasureClaims(envs, fig7, 44)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderClaims(&b, claims)
	if !strings.Contains(b.String(), "Curve-fit") {
		t.Error("claims render missing")
	}
}

func TestScenarioModeAccounting(t *testing.T) {
	envs := testEnvs(t)
	cell, err := RunScenario(envs[0], SitGoodDominant, core.StrategyAL, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range cell.ModeCounts {
		total += n
	}
	if total != 25 {
		t.Errorf("mode counts sum to %d, want 25", total)
	}
	if cell.Energy <= 0 || cell.Time <= 0 {
		t.Error("scenario should consume energy and time")
	}
	if cell.MemoHits == 0 {
		t.Error("repeated inputs should hit the memo")
	}
}

func TestExtensionSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow under -race/-short")
	}
	envs := testEnvs(t)
	fe := envs[0]

	pts, err := RunMarkovSweep(fe, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("markov points = %d", len(pts))
	}
	for _, p := range pts {
		if p.AL <= 0 || p.R <= 0 {
			t.Errorf("stay=%v: non-positive normalized energies %+v", p.StayProb, p)
		}
		if p.AL > 1.1 {
			t.Errorf("stay=%v: AL=%.3f should not lose badly to L2", p.StayProb, p.AL)
		}
	}

	tps, err := RunTrackerErrorSweep(fe, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if tps[0].AL != 1.0 {
		t.Errorf("error-free point should normalize to 1, got %v", tps[0].AL)
	}
	// Estimation errors cost energy (retransmissions + wrong power),
	// so the noisiest tracker must not be cheaper than the exact one.
	if tps[len(tps)-1].AL < 1.0 {
		t.Errorf("noisy tracker cheaper than exact: %+v", tps)
	}

	rows, err := RunBreakdown(fe, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.Strategies) {
		t.Fatalf("breakdown rows = %d", len(rows))
	}
	for _, r := range rows {
		var sum float64
		for _, v := range r.Share {
			sum += v
		}
		// Shares of total (compile overlaps core+memory, so exclude it
		// from the sum check).
		sum -= r.Share["compile"]
		if sum < 0.95 || sum > 1.05 {
			t.Errorf("%v: component shares sum to %.3f", r.Strategy, sum)
		}
	}
	// Shape: the remote strategy's energy is radio-dominated; the
	// interpreter's is core-dominated.
	for _, r := range rows {
		switch r.Strategy {
		case core.StrategyR:
			if r.Share["radio-tx"]+r.Share["radio-rx"] < 0.5 {
				t.Errorf("R: radio share %.2f should dominate", r.Share["radio-tx"]+r.Share["radio-rx"])
			}
		case core.StrategyI:
			if r.Share["core"] < 0.5 {
				t.Errorf("I: core share %.2f should dominate", r.Share["core"])
			}
		}
	}
}

func TestCodeCacheSweep(t *testing.T) {
	envs := testEnvs(t)
	pts, err := RunCodeCacheSweep(envs[1], 20, 42) // sort: biggest plan
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].AL != 1.0 || pts[0].Evictions != 0 {
		t.Errorf("unlimited cache baseline wrong: %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Evictions == 0 {
		t.Errorf("256-byte cache should evict (plan is ~%d B)", 684)
	}
	if last.AL < 1.0 {
		t.Errorf("thrashing cache should not be cheaper: %+v", last)
	}
}
