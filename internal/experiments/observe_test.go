package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"greenvm/internal/core"
)

// observedCells runs a small observed AL/AA grid on the runner.
func observedCells(t *testing.T, r *Runner, runs int) []ObservedCell {
	t.Helper()
	cells, err := RunObservedOn(r, testEnvs(t),
		[]core.Strategy{core.StrategyAL, core.StrategyAA}, SitUniform, runs, 42)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestObservedParallelMatchesSerial: sharding the observed grid
// across workers produces byte-identical per-cell metric snapshots,
// audits and traces — the observability layer does not perturb the
// simulation or depend on scheduling.
func TestObservedParallelMatchesSerial(t *testing.T) {
	runs := 10
	if testing.Short() {
		runs = 5
	}
	render := func(r *Runner) string {
		cells := observedCells(t, r, runs)
		var b strings.Builder
		if err := WriteMetricsDump(&b, cells); err != nil {
			t.Fatal(err)
		}
		RenderAudits(&b, cells)
		if err := WriteTrace(&b, cells); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(nil)
	parallel := render(NewRunner(4))
	if serial != parallel {
		t.Error("observed grid artifacts differ between serial and parallel runs")
	}
}

// TestObservedAgreesWithScenario: attaching the sinks changes nothing
// about the measured cell — the observed Fig7Cell equals the plain
// RunScenario result — and the artifacts carry the expected content.
func TestObservedAgreesWithScenario(t *testing.T) {
	envs := testEnvs(t)
	cells := observedCells(t, nil, 8)
	if len(cells) != len(envs)*2 {
		t.Fatalf("%d cells, want %d", len(cells), len(envs)*2)
	}
	for _, c := range cells {
		var env *Env
		for _, e := range envs {
			if e.App.Name == c.App {
				env = e
			}
		}
		plain, err := RunScenario(env, SitUniform, c.Strategy, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cell != plain {
			t.Errorf("%s/%v: observed cell %+v differs from plain scenario %+v",
				c.App, c.Strategy, c.Cell, plain)
		}
		// Adaptive cells audit every invocation (estimates pair 1:1).
		total := 0
		for _, m := range c.Audit.Methods {
			total += m.N
		}
		if total != 8 {
			t.Errorf("%s/%v: %d audited invocations, want 8", c.App, c.Strategy, total)
		}
		if len(c.Tracer.Recs) == 0 {
			t.Errorf("%s/%v: empty trace", c.App, c.Strategy)
		}
		if !strings.Contains(c.PromText, "invocations_total") {
			t.Errorf("%s/%v: metrics text lacks invocations_total", c.App, c.Strategy)
		}
	}
}

// TestObservedTraceParses: the merged multi-cell trace is valid
// Chrome trace JSON with one process row per cell.
func TestObservedTraceParses(t *testing.T) {
	cells := observedCells(t, nil, 5)
	var b bytes.Buffer
	if err := WriteTrace(&b, cells); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	procs := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Pid] = true
		}
	}
	if len(procs) != len(cells) {
		t.Errorf("%d process rows, want %d", len(procs), len(cells))
	}
}
