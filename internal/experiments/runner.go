package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner shards independent experiment cells across worker
// goroutines. Every cell of the (app × strategy × channel/situation)
// grid builds its own client, server and RNGs from a per-cell seed
// and writes its result to its own slot, so a parallel run produces
// results identical to a serial one — only the wall clock changes.
//
// A nil *Runner is valid and runs serially; so does Workers <= 1.
type Runner struct {
	// Workers is the number of concurrent workers.
	Workers int
}

// NewRunner returns a runner with the given parallelism; workers <= 0
// selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{Workers: workers}
}

// Do runs job(i) for every i in [0, n). Jobs must be independent and
// write results only to per-index slots. An error cancels the jobs
// not yet started; the error of the lowest-indexed failing job is
// returned, so parallel and serial runs report the same failure.
func (r *Runner) Do(n int, job func(i int) error) error {
	workers := 1
	if r != nil {
		workers = r.Workers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next int64 = -1
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || stop.Load() {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
