package experiments

import (
	"bytes"
	"fmt"
	"io"

	"greenvm/internal/core"
	"greenvm/internal/obs"
)

// Observed runs: the Fig 7 scenario driver with the observability
// sinks (internal/obs) attached per cell. Each (app, strategy) cell
// gets its own metrics registry, decision auditor and timeline
// tracer, so cells shard across the runner without sharing state and
// parallel runs produce byte-identical artifacts.

// ObservedCell is one (app, strategy) scenario with its observability
// artifacts.
type ObservedCell struct {
	App      string
	Strategy core.Strategy
	Cell     Fig7Cell
	// Snapshot is the cell's metric snapshot and PromText its
	// Prometheus text rendering (rendered inside the cell's job, so
	// it is deterministic under any worker count).
	Snapshot *obs.Snapshot
	PromText string
	// Audit is the cell's estimator audit (empty tables for static
	// strategies, which predict nothing).
	Audit *obs.AuditReport
	// Tracer holds the cell's timeline; its Pid is the cell index so
	// several cells merge into one trace file.
	Tracer *obs.Tracer
}

// RunObservedOn runs the (env × strategy) grid in one situation with
// full observability attached, sharding cells across the runner.
func RunObservedOn(r *Runner, envs []*Env, strategies []core.Strategy,
	sit Situation, runs int, seed uint64) ([]ObservedCell, error) {

	nStrat := len(strategies)
	cells := make([]ObservedCell, len(envs)*nStrat)
	err := r.Do(len(cells), func(j int) error {
		env := envs[j/nStrat]
		strategy := strategies[j%nStrat]
		sink := obs.NewMetricsSink(nil)
		audit := obs.NewAuditor()
		tracer := obs.NewTracer(j, fmt.Sprintf("%s/%v", env.App.Name, strategy))
		var client *core.Client
		cell, err := runScenarioWith(env, sit, strategy, runs, seed,
			func(c *core.Client) {
				client = c
				c.Events.Attach(sink)
				c.Events.Attach(audit)
				c.Events.Attach(tracer)
			})
		if err != nil {
			return err
		}
		// The scenario synced the client's Stats; give the metrics the
		// same end-of-run telemetry (a trailing failed exchange emits
		// no radio-carrying event).
		sink.SyncRadio(client.Link.Telemetry())
		snap := sink.Registry().Snapshot()
		var prom bytes.Buffer
		snap.WritePrometheus(&prom) //nolint:errcheck
		cells[j] = ObservedCell{
			App:      env.App.Name,
			Strategy: strategy,
			Cell:     cell,
			Snapshot: snap,
			PromText: prom.String(),
			Audit:    audit.Report(),
			Tracer:   tracer,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// RenderAudits prints each observed cell's estimator audit table
// (cells with nothing audited — the static strategies — are skipped).
func RenderAudits(w io.Writer, cells []ObservedCell) {
	printed := false
	for _, c := range cells {
		if len(c.Audit.Methods) == 0 {
			continue
		}
		printed = true
		obs.RenderAuditReport(w, fmt.Sprintf("%s / %v: estimator audit (predicted vs measured energy)",
			c.App, c.Strategy), c.Audit)
		fmt.Fprintln(w)
	}
	if !printed {
		fmt.Fprintln(w, "no adaptive decisions audited (static strategies predict nothing)")
	}
}

// WriteMetricsDump writes every cell's Prometheus text, separated by
// cell-identifying comment headers.
func WriteMetricsDump(w io.Writer, cells []ObservedCell) error {
	for i, c := range cells {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# cell app=%s strategy=%v\n", c.App, c.Strategy); err != nil {
			return err
		}
		if _, err := io.WriteString(w, c.PromText); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace merges every cell's timeline into one Chrome trace-event
// JSON document (one process row per cell).
func WriteTrace(w io.Writer, cells []ObservedCell) error {
	tracers := make([]*obs.Tracer, len(cells))
	for i, c := range cells {
		tracers[i] = c.Tracer
	}
	return obs.WriteTraceJSON(w, tracers...)
}
