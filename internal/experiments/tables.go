package experiments

import (
	"fmt"
	"io"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
)

// RenderFig1 prints the processor/memory energy table from the model
// (the values the simulator actually charges, which must equal the
// paper's Fig 1).
func RenderFig1(w io.Writer) {
	m := energy.MicroSPARCIIep()
	fmt.Fprintln(w, "Fig 1: energy consumption values for processor core and memory")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s %10s\n", "type", "energy")
	for c := energy.InstrClass(0); c < energy.NumInstrClasses; c++ {
		fmt.Fprintf(w, "%-14s %7.3f nJ\n", c, float64(m.PerInstr[c])*1e9)
	}
	fmt.Fprintf(w, "%-14s %7.3f nJ\n", "Main Memory", float64(m.MainMemAccess)*1e9)
	fmt.Fprintf(w, "\nderived: active power %.3f W, leakage (power-down) %.3f W, clock %.0f MHz\n",
		float64(m.ActivePower()), float64(m.LeakagePower()), m.ClockHz/1e6)
}

// RenderFig2 prints the communication component power table.
func RenderFig2(w io.Writer) {
	c := radio.WCDMA()
	fmt.Fprintln(w, "Fig 2: power consumption values for communication components")
	fmt.Fprintln(w)
	rows := []struct {
		name string
		val  string
	}{
		{"Mixer (Rx)", fmt.Sprintf("%.2f mW", c.MixerW*1e3)},
		{"Demodulator (Rx)", fmt.Sprintf("%.1f mW", c.DemodulatorW*1e3)},
		{"ADC (Rx)", fmt.Sprintf("%.0f mW", c.ADCW*1e3)},
		{"DAC (Tx)", fmt.Sprintf("%.0f mW", c.DACW*1e3)},
		{"Power Amplifier (Tx) Class 1", fmt.Sprintf("%.2f W", c.PowerAmpW[1])},
		{"Power Amplifier (Tx) Class 2", fmt.Sprintf("%.1f W", c.PowerAmpW[2])},
		{"Power Amplifier (Tx) Class 3", fmt.Sprintf("%.2f W", c.PowerAmpW[3])},
		{"Power Amplifier (Tx) Class 4", fmt.Sprintf("%.2f W", c.PowerAmpW[4])},
		{"Driver Amplifier (Tx)", fmt.Sprintf("%.1f mW", c.DriverAmpW*1e3)},
		{"Modulator (Tx)", fmt.Sprintf("%.0f mW", c.ModulatorW*1e3)},
		{"VCO (Rx/Tx)", fmt.Sprintf("%.0f mW", c.VCOW*1e3)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %10s\n", r.name, r.val)
	}
	fmt.Fprintf(w, "\ndata rate %.1f Mbps; derived: Rx chain %.3f W, Tx chain C4 %.3f W .. C1 %.3f W\n",
		c.DataRateBps/1e6, float64(c.RxPower()), float64(c.TxPower(radio.Class4)), float64(c.TxPower(radio.Class1)))
}

// RenderFig3 prints the benchmark descriptions.
func RenderFig3(w io.Writer) {
	fmt.Fprintln(w, "Fig 3: benchmarks")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-6s %-58s %s\n", "app", "description", "size parameter")
	for _, a := range apps.All() {
		fmt.Fprintf(w, "%-6s %-58s %s\n", a.Name, a.Desc, a.SizeDesc)
	}
}

// RenderFig5 prints the strategy summary table.
func RenderFig5(w io.Writer) {
	fmt.Fprintln(w, "Fig 5: summary of the static and dynamic (adaptive) strategies")
	fmt.Fprintln(w)
	type row struct{ s, compile, exec, c2s, s2c string }
	rows := []row{
		{"R", "-", "server", "parameters, method name", "return value"},
		{"I", "-", "client, bytecode", "-", "-"},
		{"L1", "client, no opts", "client, native", "-", "-"},
		{"L2", "client, medium opts", "client, native", "-", "-"},
		{"L3", "client, maximum opts", "client, native", "-", "-"},
		{"AL", "client, all levels", "server/client, native/bytecode", "parameters, method name", "return value"},
		{"AA", "server/client, all levels", "server/client, native/bytecode", "parameters, method name, opt level", "return value, native code"},
	}
	fmt.Fprintf(w, "%-4s %-26s %-32s %-36s %s\n", "", "compilation", "execution", "client-to-server", "server-to-client")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %-26s %-32s %-36s %s\n", r.s, r.compile, r.exec, r.c2s, r.s2c)
	}
	_ = core.Strategies
}
