package experiments

import (
	"fmt"
	"io"
	"sort"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
)

// Fig6Bar is one benchmark/input-size group of Fig 6: the energy of a
// single application execution under each static strategy. Remote
// execution is reported per channel class (the paper stacks the extra
// energy of worse channel conditions over the Class 4 bar); the
// compiled strategies include compilation and compiler-load energy, as
// in the paper.
type Fig6Bar struct {
	App  string
	Size int
	// R[i] is the remote-execution energy under Class 4-i (R[0] =
	// Class 4, best .. R[3] = Class 1, worst).
	R          [4]energy.Joules
	I          energy.Joules
	L          [3]energy.Joules // L1, L2, L3
	Normalizer energy.Joules    // the L1 energy bars are normalized by
}

// RunFig6 measures the static strategies on the given prepared apps
// at their small and large input sizes.
func RunFig6(envs []*Env, seed uint64) ([]Fig6Bar, error) {
	return RunFig6On(nil, envs, seed)
}

// fig6PerBar is the number of measurements behind one Fig 6 bar
// group: remote under the four channel classes, the interpreter, and
// the three compiled levels.
const fig6PerBar = 8

// RunFig6On measures the static strategies with the bar measurements
// sharded across the runner: each (app, size, strategy/class) cell
// builds its own client and writes one slot of its bar.
func RunFig6On(r *Runner, envs []*Env, seed uint64) ([]Fig6Bar, error) {
	type barSpec struct {
		env  *Env
		size int
	}
	var specs []barSpec
	for _, env := range envs {
		for _, size := range []int{env.App.SmallSize, env.App.LargeSize} {
			specs = append(specs, barSpec{env, size})
		}
	}
	bars := make([]Fig6Bar, len(specs))
	for i, sp := range specs {
		bars[i] = Fig6Bar{App: sp.env.App.Name, Size: sp.size}
	}
	measure := func(env *Env, strat core.Strategy, ch radio.Channel, size int) (energy.Joules, error) {
		c, err := env.newClient(strat, ch, seed)
		if err != nil {
			return 0, err
		}
		e, _, err := env.runOnceOn(c, size, seed)
		return e, err
	}
	err := r.Do(len(specs)*fig6PerBar, func(j int) error {
		bi, k := j/fig6PerBar, j%fig6PerBar
		sp := specs[bi]
		switch {
		case k < 4:
			// Remote under each channel class.
			cls := radio.Class4 - radio.Class(k)
			e, err := measure(sp.env, core.StrategyR, radio.Fixed{Cls: cls}, sp.size)
			if err != nil {
				return err
			}
			bars[bi].R[k] = e
		case k == 4:
			// Interpreter.
			e, err := measure(sp.env, core.StrategyI, radio.Fixed{Cls: radio.Class4}, sp.size)
			if err != nil {
				return err
			}
			bars[bi].I = e
		default:
			// Compiled locals (single execution: compile + run).
			lv := k - 5
			strat := []core.Strategy{core.StrategyL1, core.StrategyL2, core.StrategyL3}[lv]
			e, err := measure(sp.env, strat, radio.Fixed{Cls: radio.Class4}, sp.size)
			if err != nil {
				return err
			}
			bars[bi].L[lv] = e
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range bars {
		bars[i].Normalizer = bars[i].L[0]
	}
	return bars, nil
}

// BestStatic returns the name of the cheapest static strategy in the
// bar, with remote priced at the given class.
func (b *Fig6Bar) BestStatic(cls radio.Class) string {
	type cand struct {
		name string
		e    energy.Joules
	}
	cands := []cand{
		{"R", b.R[radio.Class4-cls]},
		{"I", b.I},
		{"L1", b.L[0]},
		{"L2", b.L[1]},
		{"L3", b.L[2]},
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].e < cands[j].e })
	return cands[0].name
}

// RenderFig6 prints the figure as a normalized table (L1 = 1.00).
func RenderFig6(w io.Writer, bars []Fig6Bar) {
	fmt.Fprintln(w, "Fig 6: energy of static execution strategies, normalized to L1")
	fmt.Fprintln(w, "(single application execution; compiled strategies include compilation")
	fmt.Fprintln(w, "and compiler-load energy; R shown per channel class)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s %6s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"app", "size", "R(C4)", "R(C3)", "R(C2)", "R(C1)", "I", "L1", "L2", "L3")
	for _, b := range bars {
		n := float64(b.Normalizer)
		fmt.Fprintf(w, "%-5s %6d | %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f %7.2f\n",
			b.App, b.Size,
			float64(b.R[0])/n, float64(b.R[1])/n, float64(b.R[2])/n, float64(b.R[3])/n,
			float64(b.I)/n, float64(b.L[0])/n, float64(b.L[1])/n, float64(b.L[2])/n)
	}
}
