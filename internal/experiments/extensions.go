package experiments

import (
	"context"

	"fmt"
	"io"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

// Extension experiments beyond the paper's figures, probing two of its
// assumptions:
//
//   - The channel process: the paper draws conditions i.i.d. per
//     scenario distribution; real fading is temporally correlated.
//     MarkovSweep measures AL under a Markov channel across stay
//     probabilities.
//   - Channel estimation: the paper notes that a "fairly accurate and
//     fast channel condition estimation mechanism is necessary".
//     TrackerErrorSweep measures how AL degrades as the pilot
//     tracker's estimate gets noisier.

// MarkovPoint is one (stay probability) sample of the sweep.
type MarkovPoint struct {
	StayProb float64
	AL       float64 // energy normalized to the same channel's L2
	R        float64
	ModeMix  [core.NumModes]int
}

// driveScenario runs the given number of fresh application executions
// on a wired client with uniformly drawn sizes and returns total
// energy minus input construction.
func driveScenario(env *Env, client *core.Client, runs int, seed uint64) (float64, error) {
	client.Memo = core.NewMemo()
	sizes := env.App.ScenarioSizes
	sizeR := rng.New(seed ^ 0xABCD)
	cache := newArgCache(env, client, seed)
	for run := 0; run < runs; run++ {
		size := sizes[sizeR.Intn(len(sizes))]
		args, err := cache.get(size)
		if err != nil {
			return 0, err
		}
		client.NewExecution()
		client.MemoInputKey = uint64(size)
		if _, err := client.Invoke(context.Background(), env.App.Class, env.App.Method, args); err != nil {
			return 0, err
		}
		client.StepChannel()
	}
	return float64(client.Energy() - cache.Construction), nil
}

// runSequence executes n fresh application executions with the given
// channel under a strategy and returns total energy minus input
// construction.
func runSequence(env *Env, strategy core.Strategy, ch radio.Channel, runs int, seed uint64) (float64, [core.NumModes]int, error) {
	client, err := env.newClient(strategy, ch, seed)
	if err != nil {
		return 0, [core.NumModes]int{}, err
	}
	e, err := driveScenario(env, client, runs, seed)
	if err != nil {
		return 0, [core.NumModes]int{}, err
	}
	return e, client.Stats.ModeCounts, nil
}

// markovStays are the sweep's channel stay probabilities (0 = the
// paper's i.i.d. draw, 0.9 = strongly correlated fading).
var markovStays = []float64{0.0, 0.3, 0.6, 0.9}

// RunMarkovSweep measures AL (and R, L2 baselines) under Markov
// channels of varying temporal correlation.
func RunMarkovSweep(env *Env, runs int, seed uint64) ([]MarkovPoint, error) {
	return RunMarkovSweepOn(nil, env, runs, seed)
}

// RunMarkovSweepOn runs the sweep's (stay probability × strategy)
// measurements sharded across the runner.
func RunMarkovSweepOn(r *Runner, env *Env, runs int, seed uint64) ([]MarkovPoint, error) {
	strats := []core.Strategy{core.StrategyL2, core.StrategyAL, core.StrategyR}
	raw := make([]float64, len(markovStays)*len(strats))
	mixes := make([][core.NumModes]int, len(markovStays))
	err := r.Do(len(raw), func(j int) error {
		strat := strats[j%len(strats)]
		stay := markovStays[j/len(strats)]
		ch := radio.NewMarkov(radio.Class3, stay, rng.New(seed))
		e, mix, err := runSequence(env, strat, ch, runs, seed)
		if err != nil {
			return err
		}
		raw[j] = e
		if strat == core.StrategyAL {
			mixes[j/len(strats)] = mix
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []MarkovPoint
	for i, stay := range markovStays {
		l2, al, rr := raw[i*len(strats)], raw[i*len(strats)+1], raw[i*len(strats)+2]
		out = append(out, MarkovPoint{StayProb: stay, AL: al / l2, R: rr / l2, ModeMix: mixes[i]})
	}
	return out, nil
}

// RenderMarkovSweep prints the sweep.
func RenderMarkovSweep(w io.Writer, app string, pts []MarkovPoint) {
	fmt.Fprintf(w, "Extension: AL under a Markov fading channel (%s), normalized to L2\n\n", app)
	fmt.Fprintf(w, "%9s %8s %8s   %s\n", "stayProb", "AL/L2", "R/L2", "AL mode mix [I L1 L2 L3 R]")
	for _, p := range pts {
		fmt.Fprintf(w, "%9.1f %8.3f %8.3f   %v\n", p.StayProb, p.AL, p.R, p.ModeMix)
	}
}

// TrackerPoint is one estimation-error sample.
type TrackerPoint struct {
	ErrProb   float64
	AL        float64 // normalized to the error-free AL
	Fallbacks int
}

// trackerErrProbs are the sweep's per-estimate error probabilities.
var trackerErrProbs = []float64{0, 0.1, 0.25, 0.5}

// RunTrackerErrorSweep measures AL as the pilot tracker's estimate
// gets noisier (wrong by one class with the given probability).
func RunTrackerErrorSweep(env *Env, runs int, seed uint64) ([]TrackerPoint, error) {
	return RunTrackerErrorSweepOn(nil, env, runs, seed)
}

// RunTrackerErrorSweepOn runs the sweep's points sharded across the
// runner; normalization to the error-free point happens afterwards.
func RunTrackerErrorSweepOn(r *Runner, env *Env, runs int, seed uint64) ([]TrackerPoint, error) {
	raw := make([]float64, len(trackerErrProbs))
	falls := make([]int, len(trackerErrProbs))
	err := r.Do(len(trackerErrProbs), func(i int) error {
		errProb := trackerErrProbs[i]
		ch := radio.UniformChannel(rng.New(seed))
		client, err := env.newClient(core.StrategyAL, ch, seed)
		if err != nil {
			return err
		}
		client.Link.Tracker = radio.NewPilotTracker(ch, errProb, rng.New(seed^0xF00D))
		e, err := driveScenario(env, client, runs, seed)
		if err != nil {
			return err
		}
		raw[i], falls[i] = e, client.Stats.Fallbacks
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []TrackerPoint
	for i, errProb := range trackerErrProbs {
		out = append(out, TrackerPoint{ErrProb: errProb, AL: raw[i] / raw[0], Fallbacks: falls[i]})
	}
	return out, nil
}

// RenderTrackerErrorSweep prints the sweep.
func RenderTrackerErrorSweep(w io.Writer, app string, pts []TrackerPoint) {
	fmt.Fprintf(w, "Extension: AL vs pilot-tracker estimation error (%s), normalized to\n", app)
	fmt.Fprintln(w, "the error-free tracker (the paper: accurate channel estimation is necessary)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%8s %10s\n", "errProb", "AL energy")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.2f %10.3f\n", p.ErrProb, p.AL)
	}
}

// ComponentBreakdown reports where one strategy's energy goes in a
// scenario: core, memory, radio, leakage, compile share.
type ComponentBreakdown struct {
	Strategy core.Strategy
	Total    float64
	Share    map[string]float64
}

// RunBreakdown measures the component shares of each strategy over a
// uniform scenario.
func RunBreakdown(env *Env, runs int, seed uint64) ([]ComponentBreakdown, error) {
	return RunBreakdownOn(nil, env, runs, seed)
}

// RunBreakdownOn measures the component shares with one strategy per
// runner job.
func RunBreakdownOn(r *Runner, env *Env, runs int, seed uint64) ([]ComponentBreakdown, error) {
	out := make([]ComponentBreakdown, len(core.Strategies))
	err := r.Do(len(core.Strategies), func(i int) error {
		strat := core.Strategies[i]
		ch := radio.UniformChannel(rng.New(seed))
		client, err := env.newClient(strat, ch, seed)
		if err != nil {
			return err
		}
		total, err := driveScenario(env, client, runs, seed)
		if err != nil {
			return err
		}
		acct := client.VM.Acct
		bd := ComponentBreakdown{Strategy: strat, Total: total, Share: map[string]float64{}}
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"core", float64(acct.Component(energy.CompCore))},
			{"memory", float64(acct.Component(energy.CompMemory))},
			{"radio-tx", float64(acct.Component(energy.CompRadioTx))},
			{"radio-rx", float64(acct.Component(energy.CompRadioRx))},
			{"leakage", float64(acct.Component(energy.CompLeakage))},
			{"compile", float64(acct.Component(energy.CompCompile))},
		} {
			if total > 0 {
				bd.Share[c.name] = c.v / total
			}
		}
		out[i] = bd
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderBreakdown prints component shares per strategy.
func RenderBreakdown(w io.Writer, app string, rows []ComponentBreakdown) {
	fmt.Fprintf(w, "Extension: energy component shares per strategy (%s, uniform scenario)\n\n", app)
	fmt.Fprintf(w, "%-9s %10s | %6s %6s %6s %6s %6s %9s\n",
		"strategy", "total(mJ)", "core", "mem", "tx", "rx", "leak", "(compile)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9v %10.2f | %5.0f%% %5.0f%% %5.0f%% %5.0f%% %5.0f%% %8.0f%%\n",
			r.Strategy, r.Total*1e3,
			r.Share["core"]*100, r.Share["memory"]*100,
			r.Share["radio-tx"]*100, r.Share["radio-rx"]*100,
			r.Share["leakage"]*100, r.Share["compile"]*100)
	}
}

// CachePoint is one code-cache-size sample.
type CachePoint struct {
	CacheBytes int // 0 = unlimited
	AL         float64
	Evictions  int
}

// cacheSizes are the sweep's code-cache budgets (0 = unlimited).
var cacheSizes = []int{0, 4096, 1024, 256}

// RunCodeCacheSweep measures AL as the client's code cache shrinks:
// the paper's memory-footprint tradeoff ("compilation ... requires
// additional memory footprint for storing the compiled code"). With a
// tight cache, bodies are evicted between invocations and
// re-compilation (or re-download) eats into the compiled modes'
// advantage.
func RunCodeCacheSweep(env *Env, runs int, seed uint64) ([]CachePoint, error) {
	return RunCodeCacheSweepOn(nil, env, runs, seed)
}

// RunCodeCacheSweepOn runs the sweep's points sharded across the
// runner; normalization to the unlimited cache happens afterwards.
func RunCodeCacheSweepOn(r *Runner, env *Env, runs int, seed uint64) ([]CachePoint, error) {
	raw := make([]float64, len(cacheSizes))
	evs := make([]int, len(cacheSizes))
	err := r.Do(len(cacheSizes), func(i int) error {
		ch := radio.UniformChannel(rng.New(seed))
		client, err := env.newClient(core.StrategyAL, ch, seed)
		if err != nil {
			return err
		}
		client.Exec.Cache.MaxBytes = cacheSizes[i]
		e, err := driveScenario(env, client, runs, seed)
		if err != nil {
			return err
		}
		raw[i], evs[i] = e, client.Stats.Evictions
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []CachePoint
	for i, cache := range cacheSizes {
		out = append(out, CachePoint{CacheBytes: cache, AL: raw[i] / raw[0], Evictions: evs[i]})
	}
	return out, nil
}

// RenderCodeCacheSweep prints the sweep.
func RenderCodeCacheSweep(w io.Writer, app string, pts []CachePoint) {
	fmt.Fprintf(w, "Extension: AL vs client code-cache size (%s), normalized to unlimited\n\n", app)
	fmt.Fprintf(w, "%12s %10s %10s\n", "cache(B)", "AL energy", "evictions")
	for _, p := range pts {
		label := fmt.Sprintf("%d", p.CacheBytes)
		if p.CacheBytes == 0 {
			label = "unlimited"
		}
		fmt.Fprintf(w, "%12s %10.3f %10d\n", label, p.AL, p.Evictions)
	}
}

// ResiliencePoint is one (outage rate × mean burst) cell of the
// resilience sweep: per-strategy energy normalized to the same cell's
// L2 (local compiled execution never touches the radio, so it is
// outage-invariant), plus the degradation counters that explain the
// shape.
type ResiliencePoint struct {
	OutageRate float64
	MeanBurst  float64
	R, AL, AA  float64
	// RFallbacks counts static R's forced local fallbacks — its losses
	// are pure waste (a transmit plus a timeout listen each).
	RFallbacks int
	// AA's graceful-degradation machinery at work.
	AARetries   int
	AAProbes    int
	AALinkDowns int
	AALosses    int
}

// The sweep grid: a fault-free baseline plus outage rate × mean burst
// length cells of the Gilbert–Elliott process.
var (
	outageRates  = []float64{0.05, 0.2, 0.4}
	outageBursts = []float64{1, 5, 20}
)

// resilienceCells enumerates the grid as (rate, burst) pairs.
func resilienceCells() [][2]float64 {
	cells := [][2]float64{{0, 1}} // fault-free baseline
	for _, rate := range outageRates {
		for _, b := range outageBursts {
			cells = append(cells, [2]float64{rate, b})
		}
	}
	return cells
}

// RunResilienceSweep measures how the strategies degrade under burst
// outages: static R keeps paying for losses while the adaptive
// strategies (retries, circuit breaker, remote taken off the table
// while Down) degrade toward the best local mode.
func RunResilienceSweep(env *Env, runs int, seed uint64) ([]ResiliencePoint, error) {
	return RunResilienceSweepOn(nil, env, runs, seed)
}

// RunResilienceSweepOn runs the sweep's (cell × strategy) grid sharded
// across the runner. Every cell builds its own client with its own
// seeded fault process, so parallel and serial runs are identical.
func RunResilienceSweepOn(r *Runner, env *Env, runs int, seed uint64) ([]ResiliencePoint, error) {
	cells := resilienceCells()
	strats := []core.Strategy{core.StrategyL2, core.StrategyR, core.StrategyAL, core.StrategyAA}
	type cellRun struct {
		energy    float64
		fallbacks int
		retries   int
		probes    int
		linkDowns int
		losses    int
	}
	raw := make([]cellRun, len(cells)*len(strats))
	err := r.Do(len(raw), func(j int) error {
		strat := strats[j%len(strats)]
		cell := cells[j/len(strats)]
		ch := radio.UniformChannel(rng.New(seed))
		client, err := env.newClient(strat, ch, seed)
		if err != nil {
			return err
		}
		if cell[0] > 0 {
			client.Link.Fault = radio.NewGilbertElliott(cell[0], cell[1])
		}
		e, err := driveScenario(env, client, runs, seed)
		if err != nil {
			return err
		}
		raw[j] = cellRun{
			energy:    e,
			fallbacks: client.Stats.Fallbacks,
			retries:   client.Stats.Retries,
			probes:    client.Stats.Probes,
			linkDowns: client.Stats.LinkDowns,
			losses:    client.Link.Telemetry().Losses,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ResiliencePoint
	for i, cell := range cells {
		l2 := raw[i*len(strats)].energy
		rr := raw[i*len(strats)+1]
		al := raw[i*len(strats)+2]
		aa := raw[i*len(strats)+3]
		out = append(out, ResiliencePoint{
			OutageRate:  cell[0],
			MeanBurst:   cell[1],
			R:           rr.energy / l2,
			AL:          al.energy / l2,
			AA:          aa.energy / l2,
			RFallbacks:  rr.fallbacks,
			AARetries:   aa.retries,
			AAProbes:    aa.probes,
			AALinkDowns: aa.linkDowns,
			AALosses:    aa.losses,
		})
	}
	return out, nil
}

// RenderResilienceSweep prints the sweep.
func RenderResilienceSweep(w io.Writer, app string, pts []ResiliencePoint) {
	fmt.Fprintf(w, "Extension: strategy energy under burst outages (%s), normalized to L2\n", app)
	fmt.Fprintln(w, "(Gilbert-Elliott loss process; R falls back per loss, AA retries, probes")
	fmt.Fprintln(w, "and takes remote off the table while the link breaker is open)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%7s %6s | %7s %7s %7s | %7s %7s %7s %6s %7s\n",
		"outage", "burst", "R/L2", "AL/L2", "AA/L2",
		"R falls", "AA rtry", "AA prob", "AA dwn", "AA loss")
	for _, p := range pts {
		fmt.Fprintf(w, "%7.2f %6.0f | %7.3f %7.3f %7.3f | %7d %7d %7d %6d %7d\n",
			p.OutageRate, p.MeanBurst, p.R, p.AL, p.AA,
			p.RFallbacks, p.AARetries, p.AAProbes, p.AALinkDowns, p.AALosses)
	}
}
