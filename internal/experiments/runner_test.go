package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunnerDoCoversAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		r := NewRunner(workers)
		const n = 100
		var hits [n]int32
		if err := r.Do(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunnerNilIsSerial(t *testing.T) {
	var r *Runner
	order := []int{}
	if err := r.Do(5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil runner ran out of order: %v", order)
		}
	}
}

func TestRunnerErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		r := NewRunner(workers)
		err := r.Do(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d: %w", i, boom)
			}
			return nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// The lowest-indexed failure is reported, matching a serial run.
		if !strings.Contains(err.Error(), "job 3") {
			t.Errorf("workers=%d: err = %v, want job 3's", workers, err)
		}
	}
}

// TestParallelMatchesSerial is the determinism guarantee of the
// parallel grid: sharding the Fig 6/7/8 cells across workers renders
// byte-identical output to a serial run.
func TestParallelMatchesSerial(t *testing.T) {
	envs := testEnvs(t)
	runs := 12
	fig6 := true
	if testing.Short() {
		// Keep the race-detector pass within budget on slow hosts;
		// the full-size comparison runs in the regular pass.
		envs, runs, fig6 = envs[:1], 6, false
	}
	render := func(r *Runner) string {
		var b strings.Builder
		if fig6 {
			bars, err := RunFig6On(r, envs, 42)
			if err != nil {
				t.Fatal(err)
			}
			RenderFig6(&b, bars)
		}
		fig7, err := RunFig7On(r, envs, runs, 42)
		if err != nil {
			t.Fatal(err)
		}
		RenderFig7(&b, fig7)
		for sit := Situation(0); sit < NumSituations; sit++ {
			RenderFig7PerApp(&b, fig7, sit)
		}
		rows, err := RunFig8On(r, envs)
		if err != nil {
			t.Fatal(err)
		}
		RenderFig8(&b, rows)
		return b.String()
	}
	serial := render(nil)
	parallel := render(NewRunner(4))
	if serial != parallel {
		t.Error("parallel grid output differs from serial run")
	}
	if !strings.Contains(serial, "best static") {
		t.Error("render incomplete")
	}
}
