package experiments

import (
	"fmt"
	"io"

	"greenvm/internal/energy"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
)

// Fig8Row is the local and remote compilation energies of one
// application at one optimization level, normalized to the app's
// local-L1 energy = 100 (the paper's Fig 8 convention). Remote
// compilation is priced per channel class: transmit the fully
// qualified method names, receive the pre-compiled bodies.
type Fig8Row struct {
	App     string
	Level   jit.Level
	Local   float64
	Remote  [4]float64 // C1..C4 (paper's column order: worst..best)
	LocalJ  energy.Joules
	CodeSz  int
	Methods int
}

// RunFig8 computes compilation energies for the prepared apps from
// the profiled compile costs and code sizes.
func RunFig8(envs []*Env) ([]Fig8Row, error) {
	return RunFig8On(nil, envs)
}

// RunFig8On computes the table with apps sharded across the runner
// (the rows are derived from each app's profile independently).
func RunFig8On(r *Runner, envs []*Env) ([]Fig8Row, error) {
	chip := radio.WCDMA()
	perApp := make([][]Fig8Row, len(envs))
	err := r.Do(len(envs), func(i int) error {
		env := envs[i]
		m := env.Prog.FindMethod(env.App.Class, env.App.Method)
		if m == nil {
			return fmt.Errorf("fig8: no method for %s", env.App.Name)
		}
		base := float64(env.Prof.CompileEnergy[0])
		rows := make([]Fig8Row, 0, int(jit.Level3))
		for lv := jit.Level1; lv <= jit.Level3; lv++ {
			row := Fig8Row{
				App:    env.App.Name,
				Level:  lv,
				LocalJ: env.Prof.CompileEnergy[lv-1],
				CodeSz: env.Prof.PlanCodeBytes[lv-1],
			}
			row.Local = float64(env.Prof.CompileEnergy[lv-1]) / base * 100
			// Remote: one request per method of the plan plus the
			// download of its body.
			nMethods := planSize(env)
			row.Methods = nMethods
			for ci := 0; ci < 4; ci++ {
				cls := radio.Class1 + radio.Class(ci)
				e := chip.TxEnergy(64*nMethods, cls) + chip.RxEnergy(env.Prof.PlanCodeBytes[lv-1], cls)
				row.Remote[ci] = float64(e) / base * 100
			}
			rows = append(rows, row)
		}
		perApp[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, rs := range perApp {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// planSize counts the methods in the app's compilation plan by
// recomputing it from the potential method's attributes: the profiler
// stored per-method compile attrs on every plan member.
func planSize(env *Env) int {
	n := 0
	for _, m := range env.Prog.Methods {
		if m.Attr("compile.bytes.L1", -1) > 0 {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// RenderFig8 prints the table in the paper's layout.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Fig 8: local and remote compilation energies, normalized to local L1 = 100")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s %-5s %9s | %8s %8s %8s %8s | %9s\n",
		"app", "opt", "local", "C1", "C2", "C3", "C4", "code(B)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-5s %9.1f | %8.1f %8.1f %8.1f %8.1f | %9d\n",
			r.App, r.Level, r.Local, r.Remote[0], r.Remote[1], r.Remote[2], r.Remote[3], r.CodeSz)
	}
}
