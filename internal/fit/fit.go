// Package fit implements least-squares curve fitting over small basis
// sets. The offloading framework uses it to build the paper's
// "curve fitting based technique" for estimating the energy cost of
// executing a method locally or remotely as a function of its size
// parameter (§3.2); the paper reports estimates within 2% of actuals.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrFit reports an unfittable system (too few points, singular
// normal equations).
var ErrFit = errors.New("fit: cannot fit")

// Basis maps a scalar input to feature values.
type Basis struct {
	Name  string
	Funcs []func(float64) float64
}

// Poly returns the polynomial basis 1, s, s^2, ..., s^degree.
func Poly(degree int) Basis {
	b := Basis{Name: fmt.Sprintf("poly%d", degree)}
	for d := 0; d <= degree; d++ {
		d := d
		b.Funcs = append(b.Funcs, func(s float64) float64 { return math.Pow(s, float64(d)) })
	}
	return b
}

// PolyLog returns 1, s, s*log2(s): the natural shape of sort-like
// costs.
func PolyLog() Basis {
	return Basis{
		Name: "nlogn",
		Funcs: []func(float64) float64{
			func(float64) float64 { return 1 },
			func(s float64) float64 { return s },
			func(s float64) float64 {
				if s <= 1 {
					return 0
				}
				return s * math.Log2(s)
			},
		},
	}
}

// Model is a fitted linear combination of basis functions.
type Model struct {
	Basis Basis
	Coef  []float64
}

// Eval evaluates the model at s.
func (m *Model) Eval(s float64) float64 {
	var y float64
	for i, f := range m.Basis.Funcs {
		y += m.Coef[i] * f(s)
	}
	return y
}

// Fit solves the least-squares problem over the given samples.
func Fit(xs, ys []float64, basis Basis) (*Model, error) {
	n := len(xs)
	k := len(basis.Funcs)
	if n != len(ys) {
		return nil, fmt.Errorf("%w: %d xs vs %d ys", ErrFit, n, len(ys))
	}
	if n < k {
		return nil, fmt.Errorf("%w: %d points for %d coefficients", ErrFit, n, k)
	}
	// Normal equations: (A^T A) c = A^T y.
	ata := make([][]float64, k)
	aty := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	feat := make([]float64, k)
	for p := 0; p < n; p++ {
		for i, f := range basis.Funcs {
			feat[i] = f(xs[p])
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += feat[i] * feat[j]
			}
			aty[i] += feat[i] * ys[p]
		}
	}
	coef, err := solve(ata, aty)
	if err != nil {
		return nil, err
	}
	return &Model{Basis: basis, Coef: coef}, nil
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("%w: singular system", ErrFit)
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// MaxRelErr returns the worst relative error of the model over the
// samples (the paper validates its estimators on 20 held-out points).
func (m *Model) MaxRelErr(xs, ys []float64) float64 {
	worst := 0.0
	for i := range xs {
		if ys[i] == 0 {
			continue
		}
		e := math.Abs(m.Eval(xs[i])-ys[i]) / math.Abs(ys[i])
		if e > worst {
			worst = e
		}
	}
	return worst
}

// R2 returns the coefficient of determination over the samples.
func (m *Model) R2(xs, ys []float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - m.Eval(xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// BestOf fits each basis and returns the model with the smallest
// maximum relative error on the training points.
func BestOf(xs, ys []float64, bases ...Basis) (*Model, error) {
	var best *Model
	bestErr := math.Inf(1)
	for _, b := range bases {
		m, err := Fit(xs, ys, b)
		if err != nil {
			continue
		}
		if e := m.MaxRelErr(xs, ys); e < bestErr {
			best, bestErr = m, e
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no basis fit", ErrFit)
	}
	return best, nil
}

// Predictor estimates a scalar quantity from a size parameter; both
// fitted models and interpolation tables implement it.
type Predictor interface {
	Eval(s float64) float64
}

// Interp is a piecewise-linear interpolation table over the training
// points: exact at the knots, linear between, linearly extrapolated at
// the ends. Cost curves on a machine with small caches have regime
// changes (working set crossing the cache size) that no low-degree
// polynomial captures; a table-assisted estimator handles them while
// remaining trivially cheap to evaluate at run time.
type Interp struct {
	xs, ys []float64
}

// NewInterp builds an interpolation table. The xs must be strictly
// increasing and at least two.
func NewInterp(xs, ys []float64) (*Interp, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 matched points", ErrFit)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("%w: xs must be strictly increasing", ErrFit)
		}
	}
	return &Interp{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}, nil
}

// Eval interpolates at s using local quadratics: within a segment it
// averages the parabolas through the two knot triples that bracket the
// segment. This is exact for locally quadratic cost curves (the common
// O(n^2) shape) while remaining local, so a cache-regime kink on one
// side of the grid does not perturb estimates elsewhere. Ends
// extrapolate with the nearest parabola (or line, with two points).
func (ip *Interp) Eval(s float64) float64 {
	n := len(ip.xs)
	if n == 2 {
		return lerp(ip.xs[0], ip.ys[0], ip.xs[1], ip.ys[1], s)
	}
	// Find segment lo such that xs[lo] <= s < xs[lo+1] (clamped).
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ip.xs[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	if s <= ip.xs[0] {
		lo = 0
	}
	if s >= ip.xs[n-1] {
		lo = n - 2
	}
	var sum float64
	cnt := 0
	if lo-1 >= 0 {
		sum += ip.quad(lo-1, s)
		cnt++
	}
	if lo+2 <= n-1 {
		sum += ip.quad(lo, s)
		cnt++
	}
	return sum / float64(cnt)
}

// quad evaluates the parabola through knots i, i+1, i+2 at s.
func (ip *Interp) quad(i int, s float64) float64 {
	x0, x1, x2 := ip.xs[i], ip.xs[i+1], ip.xs[i+2]
	y0, y1, y2 := ip.ys[i], ip.ys[i+1], ip.ys[i+2]
	l0 := (s - x1) * (s - x2) / ((x0 - x1) * (x0 - x2))
	l1 := (s - x0) * (s - x2) / ((x1 - x0) * (x1 - x2))
	l2 := (s - x0) * (s - x1) / ((x2 - x0) * (x2 - x1))
	return y0*l0 + y1*l1 + y2*l2
}

func lerp(x0, y0, x1, y1, x float64) float64 {
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// PredictorMaxRelErr reports the worst relative error of any
// predictor over samples.
func PredictorMaxRelErr(p Predictor, xs, ys []float64) float64 {
	worst := 0.0
	for i := range xs {
		if ys[i] == 0 {
			continue
		}
		e := math.Abs(p.Eval(xs[i])-ys[i]) / math.Abs(ys[i])
		if e > worst {
			worst = e
		}
	}
	return worst
}

// BestPredictor fits the bases and returns the best parametric model
// when it explains the training data within tol; otherwise it falls
// back to the interpolation table (exact at the knots).
func BestPredictor(xs, ys []float64, tol float64, bases ...Basis) (Predictor, error) {
	m, err := BestOf(xs, ys, bases...)
	if err == nil && m.MaxRelErr(xs, ys) <= tol {
		return m, nil
	}
	return NewInterp(xs, ys)
}
