package fit

import (
	"math"
	"testing"
	"testing/quick"

	"greenvm/internal/rng"
)

func TestExactQuadratic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x + 0.5*x*x
	}
	m, err := Fit(xs, ys, Poly(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 0.5}
	for i, c := range m.Coef {
		if math.Abs(c-want[i]) > 1e-8 {
			t.Errorf("coef[%d] = %g, want %g", i, c, want[i])
		}
	}
	if e := m.MaxRelErr(xs, ys); e > 1e-10 {
		t.Errorf("MaxRelErr = %g on exact data", e)
	}
	if r := m.R2(xs, ys); r < 0.999999 {
		t.Errorf("R2 = %g", r)
	}
}

func TestNLogNBasis(t *testing.T) {
	xs := []float64{8, 16, 64, 256, 1024, 4096}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100 + 5*x + 2*x*math.Log2(x)
	}
	m, err := Fit(xs, ys, PolyLog())
	if err != nil {
		t.Fatal(err)
	}
	if e := m.MaxRelErr(xs, ys); e > 1e-8 {
		t.Errorf("MaxRelErr = %g", e)
	}
}

func TestBestOfPicksRightShape(t *testing.T) {
	xs := []float64{8, 16, 64, 256, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7 * x * math.Log2(x)
	}
	m, err := BestOf(xs, ys, Poly(1), PolyLog())
	if err != nil {
		t.Fatal(err)
	}
	if m.Basis.Name != "nlogn" {
		t.Errorf("BestOf chose %s for an n*log n curve", m.Basis.Name)
	}
}

func TestNoisyFitWithinTolerance(t *testing.T) {
	r := rng.New(42)
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		x := float64(10 + i*17)
		xs[i] = x
		noise := 1 + 0.005*r.NormFloat64()
		ys[i] = (50 + 3*x + 0.02*x*x) * noise
	}
	m, err := Fit(xs, ys, Poly(2))
	if err != nil {
		t.Fatal(err)
	}
	// Held-out points.
	for _, x := range []float64{123, 305, 477} {
		want := 50 + 3*x + 0.02*x*x
		got := m.Eval(x)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("Eval(%g) = %g, want within 2%% of %g", x, got, want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}, Poly(2)); err == nil {
		t.Error("underdetermined fit should error")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}, Poly(0)); err == nil {
		t.Error("mismatched lengths should error")
	}
	// Singular: duplicated x cannot determine a quadratic.
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 1, 1}, Poly(2)); err == nil {
		t.Error("singular system should error")
	}
	if _, err := BestOf([]float64{1}, []float64{1}, Poly(2)); err == nil {
		t.Error("BestOf with no viable basis should error")
	}
}

// Property: fitting recovers arbitrary quadratics exactly on exact
// data.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		xs := []float64{1, 3, 5, 7, 11, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = float64(a) + float64(b)*x + float64(c)*x*x
		}
		m, err := Fit(xs, ys, Poly(2))
		if err != nil {
			return false
		}
		for i, x := range xs {
			if math.Abs(m.Eval(x)-ys[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestR2OnConstantData(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{5, 5, 5}
	m, err := Fit(xs, ys, Poly(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.R2(xs, ys) != 1 {
		t.Error("perfect fit of constant data should have R2 = 1")
	}
}

func TestInterpTwoPointsAndEnds(t *testing.T) {
	ip, err := NewInterp([]float64{10, 20}, []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := ip.Eval(15); got != 150 {
		t.Errorf("midpoint = %g", got)
	}
	if got := ip.Eval(5); got != 50 {
		t.Errorf("left extrapolation = %g", got)
	}
	if got := ip.Eval(25); got != 250 {
		t.Errorf("right extrapolation = %g", got)
	}
}

func TestInterpQuadraticExact(t *testing.T) {
	// y = x^2 sampled sparsely: local quadratic interpolation is exact
	// everywhere, including between knots and at the ends.
	xs := []float64{2, 5, 9, 14, 20}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	ip, err := NewInterp(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{2, 3.5, 7, 11, 16, 20, 1, 22} {
		if got := ip.Eval(x); math.Abs(got-x*x) > 1e-9 {
			t.Errorf("Eval(%g) = %g, want %g", x, got, x*x)
		}
	}
}

func TestInterpErrors(t *testing.T) {
	if _, err := NewInterp([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := NewInterp([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("non-increasing xs should error")
	}
	if _, err := NewInterp([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestBestPredictorChoosesParametricWhenGood(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	p, err := BestPredictor(xs, ys, 0.02, Poly(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*Model); !ok {
		t.Errorf("expected a parametric model, got %T", p)
	}
	// A kinked curve forces the table fallback.
	ys[3] *= 2
	ys[4] *= 2
	p, err = BestPredictor(xs, ys, 0.02, Poly(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*Interp); !ok {
		t.Errorf("expected the interpolation fallback, got %T", p)
	}
	if e := PredictorMaxRelErr(p, xs, ys); e != 0 {
		t.Errorf("table should be exact at knots, err=%g", e)
	}
}
