package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of uniforms = %g, want ~0.5", mean)
	}
}

func TestNormMeanVariance(t *testing.T) {
	r := New(13)
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickRespectsZeroWeights(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if got := r.Pick([]float64{0, 1, 0}); got != 1 {
			t.Fatalf("Pick chose zero-weight index %d", got)
		}
	}
}

func TestPickDistribution(t *testing.T) {
	r := New(19)
	counts := [2]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 3})]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("Pick weight-3 fraction = %g, want ~0.75", frac)
	}
}

func TestPickPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick with zero weights should panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestSplitIndependence(t *testing.T) {
	r := New(23)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream mirrors parent")
	}
}
