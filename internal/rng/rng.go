// Package rng provides a small deterministic pseudo-random number
// generator (splitmix64) used throughout the experiments so that every
// figure is exactly reproducible from a seed, independent of Go
// standard-library changes.
package rng

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31 returns a non-negative random int32.
func (r *RNG) Int31() int32 {
	return int32(r.Uint64() >> 33)
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a random element index weighted by the given
// non-negative weights. It panics if the weights sum to zero.
func (r *RNG) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		panic("rng: Pick with non-positive weight sum")
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Split returns a new generator whose stream is independent of r's
// future output, for deterministic parallel decomposition.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xA5A5A5A5DEADBEEF)
}
