package fleet

import (
	"fmt"
	"strings"

	"greenvm/internal/energy"
)

// Backend chaos injection: PR 6's FailAt models a single hard crash;
// real pools degrade in messier ways. BackendChaos composes three
// fault shapes per backend, all scheduled and judged inside the
// engine's event heap so fleet runs stay byte-identical under any
// concurrency:
//
//   - flapping: crash/restart cycles — the backend goes down, flushes
//     its queue with attributed connection losses, recovers, and
//     crashes again on a fixed period;
//   - brown-out: a degraded service rate — admitted requests take
//     BrownoutFactor times longer during the window, so queues back up
//     and admission sheds without any breaker-visible loss;
//   - per-backend Gilbert–Elliott loss: exchanges placed on the
//     backend are lost in bursts (internal/radio's two-state chain),
//     attributed to the backend so per-backend breakers can isolate
//     it.
type BackendChaos struct {
	// FailAt > 0 takes the backend down permanently at that virtual
	// time (PR 6's hard failure). Ignored when FlapAt is set — a flap
	// schedule supersedes the single crash.
	FailAt energy.Seconds

	// FlapAt > 0 schedules crash/restart cycles: the backend crashes
	// at FlapAt, stays down FlapDown, and crashes again every
	// FlapEvery. FlapDown defaults to half of FlapEvery and is clamped
	// below it; FlapEvery <= 0 means a single crash + restart.
	FlapAt    energy.Seconds
	FlapDown  energy.Seconds
	FlapEvery energy.Seconds

	// BrownoutFactor > 1 multiplies the backend's service time from
	// BrownoutAt for BrownoutFor (<= 0 = until the run ends).
	BrownoutAt     energy.Seconds
	BrownoutFor    energy.Seconds
	BrownoutFactor float64

	// LossRate > 0 attaches a Gilbert–Elliott loss process to the
	// backend: each exchange placed on it while the chain is in its bad
	// state is lost (attributed to the backend). LossBurst is the mean
	// burst length (defaults to 3); LossSeed seeds the chain's RNG
	// stream (0 derives one from the backend index).
	LossRate  float64
	LossBurst float64
	LossSeed  uint64
}

// active reports whether the spec injects any fault at all.
func (c BackendChaos) active() bool {
	return c.FailAt > 0 || c.FlapAt > 0 || c.BrownoutFactor > 1 || c.LossRate > 0
}

// normalized applies the defaulting rules; idx is the backend index
// (the default loss-seed salt).
func (c BackendChaos) normalized(idx int) BackendChaos {
	if c.FlapAt > 0 {
		c.FailAt = 0
		if c.FlapEvery < 0 {
			c.FlapEvery = 0
		}
		if c.FlapDown <= 0 {
			if c.FlapEvery > 0 {
				c.FlapDown = c.FlapEvery / 2
			} else {
				c.FlapDown = c.FlapAt
			}
		}
		if c.FlapEvery > 0 && c.FlapDown >= c.FlapEvery {
			c.FlapDown = c.FlapEvery / 2
		}
	}
	if c.LossRate > 0 {
		if c.LossBurst <= 0 {
			c.LossBurst = 3
		}
		if c.LossSeed == 0 {
			c.LossSeed = mix(0xC4A05, uint64(idx))
		}
	}
	return c
}

// String renders the active fault shapes, for summaries and flag
// echoes.
func (c BackendChaos) String() string {
	var parts []string
	if c.FlapAt > 0 {
		parts = append(parts, fmt.Sprintf("flap@%g/%g/%g", float64(c.FlapAt), float64(c.FlapDown), float64(c.FlapEvery)))
	} else if c.FailAt > 0 {
		parts = append(parts, fmt.Sprintf("fail@%g", float64(c.FailAt)))
	}
	if c.BrownoutFactor > 1 {
		parts = append(parts, fmt.Sprintf("brownout@%g+%gx%g", float64(c.BrownoutAt), float64(c.BrownoutFor), c.BrownoutFactor))
	}
	if c.LossRate > 0 {
		parts = append(parts, fmt.Sprintf("loss:%g/%g", c.LossRate, c.LossBurst))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// BreakerMode selects the resilience scope the fleet's clients run
// with — the comparison axis of the chaos sweep.
type BreakerMode int

const (
	// BreakersBackend gives every client one circuit breaker per
	// backend (the default): losses attributed to a backend blind the
	// client to that backend only.
	BreakersBackend BreakerMode = iota
	// BreakersGlobal is PR 6's shape: one link breaker per client, so
	// losses on any backend count against the whole pool.
	BreakersGlobal
	// BreakersOff disables breakers entirely; every loss pays the full
	// timeout-listen machinery on every invocation.
	BreakersOff
)

// BreakerModes lists every mode, in sweep order.
var BreakerModes = []BreakerMode{BreakersBackend, BreakersGlobal, BreakersOff}

// String names the mode (the -breakers flag value).
func (m BreakerMode) String() string {
	switch m {
	case BreakersBackend:
		return "backend"
	case BreakersGlobal:
		return "global"
	case BreakersOff:
		return "off"
	default:
		return fmt.Sprintf("BreakerMode(%d)", int(m))
	}
}

// ParseBreakerMode parses a -breakers flag value.
func ParseBreakerMode(s string) (BreakerMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "backend", "":
		return BreakersBackend, nil
	case "global":
		return BreakersGlobal, nil
	case "off", "none":
		return BreakersOff, nil
	default:
		return 0, fmt.Errorf("fleet: unknown breaker mode %q (valid: backend, global, off)", s)
	}
}

// NamedChaos pairs a fault shape with a display name for sweeps.
type NamedChaos struct {
	Name  string
	Chaos BackendChaos
}

// SweepChaosShapes enumerates the canonical single-backend fault
// shapes the chaos sweep injects on backend s0: a brown-out (×8
// service time with a composed loss burst process — a browned-out
// backend both slows and drops), a flapping crash/restart cycle, and
// a pure Gilbert–Elliott loss process. Times are virtual seconds,
// scaled so every shape overlaps runs from a few milliseconds up.
func SweepChaosShapes() []NamedChaos {
	return []NamedChaos{
		{Name: "brownout", Chaos: BackendChaos{BrownoutAt: 0.0005, BrownoutFactor: 8, LossRate: 0.5, LossBurst: 8}},
		{Name: "flap", Chaos: BackendChaos{FlapAt: 0.001, FlapDown: 0.002, FlapEvery: 0.004}},
		{Name: "loss", Chaos: BackendChaos{LossRate: 0.35, LossBurst: 4}},
	}
}
