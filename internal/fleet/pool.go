package fleet

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

// ServerPool runs N independent backend servers — each a full
// core.Server fronted by its own core.SessionServer (own admission
// queue, own session caches) — behind one placement policy. The
// paper's deployment has one resource-rich server; the pool is the
// fleet-scale shape, where which backend serves a request matters as
// much as whether one does. Backends are named "s0".."sN-1"; those
// IDs ride the wire-model busy errors and the clients' per-backend
// busy EWMAs.
type ServerPool struct {
	backends []*poolBackend
	ids      []string
}

// poolBackend is one backend server plus the engine's virtual-time
// admission state for it: the engine decides, in virtual time, which
// requests hold one of the backend's workers, which wait in its
// bounded queue, and which are shed — per backend, so load imbalance
// between backends is visible and placement policies have something
// to optimize.
type poolBackend struct {
	idx  int
	id   string
	sess *core.SessionServer
	// clients holds one server-side session slot per fleet client,
	// indexed by client. Slots fill when a client launches (openAt) and
	// empty when it retires (release), so only live clients hold
	// server-side state. Session IDs follow launch order, which is not
	// deterministic — nothing observable derives from them (requests
	// key on client ID).
	clients []*core.Session

	workers  int
	queueCap int

	// Virtual admission state, owned by the engine (under its lock).
	busy  int        // requests holding a worker
	queue []*request // waiting, admission order

	// chaos is the backend's normalized fault injection spec; down
	// flips as its crash/recover events process. loss/lossRNG drive the
	// per-backend Gilbert–Elliott chain — judged in heap order in
	// arrive(), so loss verdicts are deterministic.
	chaos   BackendChaos
	down    bool
	loss    *radio.GilbertElliott
	lossRNG *rng.RNG

	served, shed, maxDepth int
	waitSum                energy.Seconds

	// Chaos outcome counters: flaps counts crash events, chaosLosses
	// exchanges lost to the backend's loss chain (probes included),
	// slowed requests served at the brown-out service rate, and warmups
	// sessions pre-loaded from a dead backend's cache after re-homing.
	flaps, chaosLosses, slowed, warmups int
}

// judgeLoss advances the backend's loss chain one exchange and reports
// whether that exchange is lost. Callers hold the engine lock and call
// in heap order, so the chain's draw sequence is deterministic.
func (b *poolBackend) judgeLoss() bool {
	if b.loss == nil {
		return false
	}
	return b.loss.Judge(radio.DirSend, b.lossRNG).Lost
}

// NewServerPool builds n backends sharing one program, each shaped by
// cfg (the same worker/queue budget per backend). chaos, when
// non-nil, injects backend i's fault shapes from chaos[i] (crashes,
// flapping, brown-out, loss — see BackendChaos).
func NewServerPool(prog *bytecode.Program, n int, cfg core.SessionConfig, chaos []BackendChaos) *ServerPool {
	if n < 1 {
		n = 1
	}
	// Mirror core.SessionConfig's defaulting: 0 means default,
	// negative queue capacity means no waiting at all.
	workers, queueCap := cfg.Workers, cfg.QueueCap
	if workers <= 0 {
		workers = core.DefaultWorkers
	}
	if queueCap == 0 {
		queueCap = core.DefaultQueueCap
	}
	if queueCap < 0 {
		queueCap = 0
	}
	p := &ServerPool{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		sess := core.NewSessionServer(core.NewServer(prog), core.SessionConfig{
			Workers: cfg.Workers, QueueCap: cfg.QueueCap, Backend: id,
		})
		b := &poolBackend{idx: i, id: id, sess: sess, workers: workers, queueCap: queueCap}
		if i < len(chaos) {
			b.chaos = chaos[i].normalized(i)
			if b.chaos.LossRate > 0 {
				b.loss = radio.NewGilbertElliott(b.chaos.LossRate, b.chaos.LossBurst)
				b.lossRNG = rng.New(b.chaos.LossSeed)
			}
		}
		p.backends = append(p.backends, b)
		p.ids = append(p.ids, id)
	}
	return p
}

// IDs lists the backend names in placement order. Callers must not
// mutate the returned slice.
func (p *ServerPool) IDs() []string { return p.ids }

// alloc sizes every backend's client-session table for a cohort of n.
func (p *ServerPool) alloc(n int) {
	for _, b := range p.backends {
		b.clients = make([]*core.Session, n)
	}
}

// openAt creates client i's session on every backend, at launch time.
func (p *ServerPool) openAt(i int, clientID string) {
	for _, b := range p.backends {
		b.clients[i] = b.sess.Open(clientID)
	}
}

// release retires client i's sessions: the slots empty and each
// backend folds the session's counters into its retained aggregates,
// so a finished handset stops costing memory.
func (p *ServerPool) release(i int, clientID string) {
	for _, b := range p.backends {
		b.clients[i] = nil
		b.sess.Close(clientID)
	}
}

// sessionStats aggregates one client's server-side counters across
// all backends.
func (p *ServerPool) sessionStats(clientIdx int) core.SessionStats {
	var st core.SessionStats
	for _, b := range p.backends {
		s := b.clients[clientIdx].Stats()
		st.Requests += s.Requests
		st.CacheHits += s.CacheHits
	}
	return st
}

// cacheHits sums serialization-cache hits across all backends.
func (p *ServerPool) cacheHits() int {
	total := 0
	for _, b := range p.backends {
		total += b.sess.Stats().CacheHits
	}
	return total
}
