package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// Placement selects how the pool maps an arriving request to a
// backend. Every policy is deterministic in (client ID, per-client
// request sequence, current virtual admission state) — never in
// goroutine timing — so fleet runs stay byte-identical under any
// concurrency setting.
type Placement int

const (
	// PlaceCheapest honours the client's pick-cheapest hint: the
	// client prices one remote candidate per backend (base offload
	// cost inflated by its per-backend busy EWMA) and asks for the
	// cheapest. The pool only overrides a hint that points at a down
	// backend, failing over circularly to the next live one.
	PlaceCheapest Placement = iota
	// PlaceHash pins each client to a backend by consistent hashing
	// over its ID (session affinity: one backend holds the client's
	// whole serialization-cache history). Down backends are skipped
	// clockwise around the ring.
	PlaceHash
	// PlaceP2C is power-of-two-choices: two backends are drawn
	// pseudo-randomly (from the client ID and its request sequence —
	// deterministic) and the one with the smaller queue-depth-plus-
	// running load wins, ties to the lower index. This is the policy
	// that samples the queue depth the wire protocol advertises.
	PlaceP2C
)

// Placements lists every policy, in sweep order.
var Placements = []Placement{PlaceCheapest, PlaceHash, PlaceP2C}

// String names the placement (the -placement flag value).
func (p Placement) String() string {
	switch p {
	case PlaceCheapest:
		return "cheapest"
	case PlaceHash:
		return "hash"
	case PlaceP2C:
		return "p2c"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// ParsePlacement parses a -placement flag value. An unknown value
// fails fast with the valid names — and a "did you mean" suggestion
// when it looks like a typo of one — instead of surfacing late from
// the pool.
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cheapest", "":
		return PlaceCheapest, nil
	case "hash":
		return PlaceHash, nil
	case "p2c":
		return PlaceP2C, nil
	default:
		names := make([]string, len(Placements))
		for i, p := range Placements {
			names[i] = p.String()
		}
		valid := strings.Join(names, ", ")
		if sug := closestName(strings.ToLower(strings.TrimSpace(s)), names); sug != "" {
			return 0, fmt.Errorf("fleet: unknown placement %q — did you mean %q? (valid: %s)", s, sug, valid)
		}
		return 0, fmt.Errorf("fleet: unknown placement %q (valid: %s)", s, valid)
	}
}

// closestName returns the candidate within edit distance 2 of s (the
// typo radius), "" when none is close enough; ties go to the earlier
// candidate.
func closestName(s string, candidates []string) string {
	best, bestD := "", 3
	for _, c := range candidates {
		if d := editDistance(s, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short flag
// values.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// strHash is FNV-1a — the stable string hash placement decisions key
// on.
func strHash(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ringVNodes is how many points each backend contributes to the
// consistent-hash ring; enough to spread a small pool evenly.
const ringVNodes = 16

type ringPoint struct {
	point   uint64
	backend int
}

// buildRing lays the backends out on the consistent-hash ring.
func buildRing(ids []string) []ringPoint {
	ring := make([]ringPoint, 0, len(ids)*ringVNodes)
	for i, id := range ids {
		for v := 0; v < ringVNodes; v++ {
			ring = append(ring, ringPoint{point: mix(strHash(id), uint64(v)), backend: i})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].point != ring[b].point {
			return ring[a].point < ring[b].point
		}
		return ring[a].backend < ring[b].backend
	})
	return ring
}

// pickBackend maps one arriving request to a backend index, or -1
// when every backend is down. Callers hold the engine lock.
func (e *engine) pickBackend(r *request) int {
	switch e.placement {
	case PlaceHash:
		return e.pickHash(r)
	case PlaceP2C:
		return e.pickP2C(r)
	default:
		return e.pickHint(r)
	}
}

// pickHint honours the client's pick-cheapest hint, failing over
// circularly past down backends (and falling back to the client's
// home backend when the hint names nothing).
func (e *engine) pickHint(r *request) int {
	n := len(e.pool.backends)
	start, ok := e.byID[r.hint]
	if !ok {
		start = int(strHash(r.clientID) % uint64(n))
	}
	return e.firstUp(start)
}

// pickHash walks the consistent-hash ring clockwise from the client's
// point to the first live backend. The FNV hash is finalized through
// mix: similar short IDs ("pda-00", "pda-01", ...) cluster in FNV's
// high bits, and the ring comparison is on the full 64-bit value.
func (e *engine) pickHash(r *request) int {
	h := mix(strHash(r.clientID), 0)
	i := sort.Search(len(e.ring), func(i int) bool { return e.ring[i].point >= h })
	for off := 0; off < len(e.ring); off++ {
		p := e.ring[(i+off)%len(e.ring)]
		if !e.pool.backends[p.backend].down {
			return p.backend
		}
	}
	return -1
}

// pickP2C draws two backends from the client's ID and request
// sequence and takes the one with the smaller load (queued plus
// running), ties to the lower index.
func (e *engine) pickP2C(r *request) int {
	n := len(e.pool.backends)
	h := mix(strHash(r.clientID), uint64(r.seq))
	a := int(h % uint64(n))
	b := int((h >> 32) % uint64(n))
	if b == a {
		b = (a + 1) % n
	}
	ba, bb := e.pool.backends[a], e.pool.backends[b]
	switch {
	case ba.down && bb.down:
		return e.firstUp(a)
	case ba.down:
		return b
	case bb.down:
		return a
	}
	la := ba.busy + len(ba.queue)
	lb := bb.busy + len(bb.queue)
	if lb < la || (lb == la && b < a) {
		return b
	}
	return a
}

// firstUp scans circularly from start for a live backend, -1 when all
// are down.
func (e *engine) firstUp(start int) int {
	n := len(e.pool.backends)
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if !e.pool.backends[i].down {
			return i
		}
	}
	return -1
}
