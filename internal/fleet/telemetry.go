package fleet

import (
	"sort"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/obs"
)

// Virtual-time telemetry: the engine cuts the simulated clock into
// fixed ticks and records, per window, what the admission layer did
// (served/shed/flushed/losses, queue waits) and what each backend
// looked like at the tick boundary (up, busy workers, queue depth).
// Client-side series — per-invocation energy, failovers, breaker
// transitions — are folded in after the run from per-client event
// logs, in client order, so every float accumulates in a fixed order
// and the exported JSONL is byte-identical across -workers.
//
// The engine-side half streams: every write happens inside the event
// heap under the engine lock, in heap order, which is the same
// determinism argument the engine itself makes (see engine.go). Tick
// boundaries are events on that heap — kind evTick, ordered before
// every other kind at the same instant — so the gauges sampled at
// boundary t describe the state strictly before any time-t mutation,
// and tick times are computed as tick*k (never accumulated), so they
// are bit-identical however long the run gets.

// TelemetrySpec switches a fleet run's windowed telemetry on.
type TelemetrySpec struct {
	// Tick is the window width in virtual seconds (required > 0).
	Tick energy.Seconds
	// Windows caps how many windows are retained (oldest evicted
	// first); 0 keeps the whole run.
	Windows int
	// Live, when non-nil, is a registry the engine also updates as it
	// simulates — the scrape target behind fleetsim -serve-metrics.
	// Updates go through cached child handles, so the per-event cost is
	// one mutex acquisition, no allocation.
	Live *obs.Registry
}

// tsRec is the engine's recorder: the window store plus pre-built
// series names (building them per event would allocate under the
// engine lock) and optional live-registry child handles.
type tsRec struct {
	ts   *obs.TimeSeries
	tick energy.Seconds

	// Per-backend series names, indexed by backend index.
	servedB, shedB, flushedB, lossB, downB, upB []string // window counters
	depthB, busyB, upGB                         []string // tick-boundary gauges

	live *liveHandles
}

// liveHandles caches one child handle per (metric, backend) for the
// live registry, resolved once at engine construction.
type liveHandles struct {
	served, shed []*obs.CounterChild
	up           []*obs.GaugeChild
	depth        []*obs.GaugeChild
	wait         *obs.SummaryChild
	window       *obs.GaugeChild
}

func newTSRec(spec *TelemetrySpec, pool *ServerPool) *tsRec {
	r := &tsRec{
		ts:   obs.NewTimeSeries(float64(spec.Tick), spec.Windows),
		tick: spec.Tick,
	}
	for _, id := range pool.ids {
		r.servedB = append(r.servedB, obs.SeriesName("served", "backend", id))
		r.shedB = append(r.shedB, obs.SeriesName("shed", "backend", id))
		r.flushedB = append(r.flushedB, obs.SeriesName("flushed", "backend", id))
		r.lossB = append(r.lossB, obs.SeriesName("chaos_loss", "backend", id))
		r.downB = append(r.downB, obs.SeriesName("backend_down", "backend", id))
		r.upB = append(r.upB, obs.SeriesName("backend_up", "backend", id))
		r.depthB = append(r.depthB, obs.SeriesName("depth", "backend", id))
		r.busyB = append(r.busyB, obs.SeriesName("busy", "backend", id))
		r.upGB = append(r.upGB, obs.SeriesName("up", "backend", id))
	}
	if spec.Live != nil {
		reg := spec.Live
		lh := &liveHandles{
			wait:   reg.Summary("fleet_live_queue_wait_seconds", "virtual queue wait of served requests (streaming quantiles)").WithLabels(),
			window: reg.Gauge("fleet_live_window", "index of the last completed telemetry window").WithLabels(),
		}
		served := reg.Counter("fleet_live_served_total", "requests served, by backend")
		shed := reg.Counter("fleet_live_sheds_total", "requests shed, by backend")
		up := reg.Gauge("fleet_live_backend_up", "1 while the backend is up")
		depth := reg.Gauge("fleet_live_backend_queue_depth", "queue depth at the last tick boundary")
		for _, id := range pool.ids {
			lh.served = append(lh.served, served.WithLabels("backend", id))
			lh.shed = append(lh.shed, shed.WithLabels("backend", id))
			lh.up = append(lh.up, up.WithLabels("backend", id))
			lh.depth = append(lh.depth, depth.WithLabels("backend", id))
			lh.up[len(lh.up)-1].Set(1)
		}
		r.live = lh
	}
	return r
}

// tickAt returns the virtual time of tick boundary k, as a product so
// boundary times never accumulate floating-point drift.
func (r *tsRec) tickAt(k int64) energy.Seconds {
	return energy.Seconds(float64(k) * float64(r.tick))
}

// boundary samples every backend's state into the window that just
// ended (tick k closes window k-1) and updates the live gauges.
func (r *tsRec) boundary(k int64, pool *ServerPool) {
	win := k - 1
	for i, b := range pool.backends {
		upv := 1.0
		if b.down {
			upv = 0
		}
		r.ts.SetIdx(win, r.upGB[i], upv)
		r.ts.SetIdx(win, r.busyB[i], float64(b.busy))
		r.ts.SetIdx(win, r.depthB[i], float64(len(b.queue)))
		if r.live != nil {
			r.live.up[i].Set(upv)
			r.live.depth[i].Set(float64(len(b.queue)))
		}
	}
	if r.live != nil {
		r.live.window.Set(float64(win))
	}
}

func (r *tsRec) arrival(t energy.Seconds) {
	r.ts.Add(float64(t), "arrivals", 1)
}

func (r *tsRec) served(t energy.Seconds, bidx int, wait energy.Seconds) {
	ft := float64(t)
	r.ts.Add(ft, "served", 1)
	r.ts.Add(ft, r.servedB[bidx], 1)
	r.ts.Add(ft, "queue_wait_sum", float64(wait))
	if r.live != nil {
		r.live.served[bidx].Add(1)
		r.live.wait.Observe(float64(wait))
	}
}

func (r *tsRec) shed(t energy.Seconds, bidx int) {
	ft := float64(t)
	r.ts.Add(ft, "shed", 1)
	r.ts.Add(ft, r.shedB[bidx], 1)
	if r.live != nil {
		r.live.shed[bidx].Add(1)
	}
}

func (r *tsRec) chaosLoss(t energy.Seconds, bidx int) {
	r.ts.Add(float64(t), r.lossB[bidx], 1)
}

func (r *tsRec) unreachable(t energy.Seconds) {
	r.ts.Add(float64(t), "unreachable", 1)
}

func (r *tsRec) backendDown(t energy.Seconds, bidx, flushed int) {
	ft := float64(t)
	r.ts.Add(ft, r.downB[bidx], 1)
	if flushed > 0 {
		r.ts.Add(ft, r.flushedB[bidx], float64(flushed))
	}
	if r.live != nil {
		r.live.up[bidx].Set(0)
	}
}

func (r *tsRec) backendUp(t energy.Seconds, bidx int) {
	r.ts.Add(float64(t), r.upB[bidx], 1)
	if r.live != nil {
		r.live.up[bidx].Set(1)
	}
}

// clientLog is the per-client event sink feeding the post-run fold.
// Each client owns one and its Emit runs on that client's goroutine,
// so there is no sharing; determinism comes from folding the logs in
// client order after the run.
type clientLog struct {
	events []logEvent
}

type logEvent struct {
	kind    core.EventKind
	at      energy.Seconds
	energy  float64
	backend string
}

// Emit implements core.EventSink, keeping only the kinds the windows
// chart.
func (l *clientLog) Emit(e core.Event) {
	switch e.Kind {
	case core.EvInvoke:
		l.events = append(l.events, logEvent{kind: e.Kind, at: e.At, energy: float64(e.Energy)})
	case core.EvFallback, core.EvFailover, core.EvProbe, core.EvLinkDown, core.EvLinkUp:
		l.events = append(l.events, logEvent{kind: e.Kind, at: e.At, backend: e.Backend})
	}
}

var _ core.EventSink = (*clientLog)(nil)

// breakerBackend names the breaker's scope in series labels: the
// backend for per-backend breakers, "link" for the global one.
func breakerBackend(b string) string {
	if b == "" {
		return "link"
	}
	return b
}

// foldClientLogs merges the per-client event logs into the window
// store: energy and failover/fallback counters per client in client
// order (fixed float accumulation order), then a time-ordered replay
// of breaker transitions into a per-window breakers_open gauge. The
// replay sort key (at, client, seq) is unique, so the fold is a pure
// function of the logs.
func foldClientLogs(ts *obs.TimeSeries, logs []*clientLog) {
	type transition struct {
		at          energy.Seconds
		client, seq int
		backend     string
		open        bool
	}
	var trans []transition
	for ci, l := range logs {
		for si, e := range l.events {
			at := float64(e.at)
			switch e.kind {
			case core.EvInvoke:
				ts.Add(at, "energy_j", e.energy)
				ts.Add(at, "invocations", 1)
			case core.EvFallback:
				ts.Add(at, "fallback", 1)
			case core.EvFailover:
				ts.Add(at, "failover", 1)
			case core.EvProbe:
				ts.Add(at, obs.SeriesName("probe", "backend", breakerBackend(e.backend)), 1)
			case core.EvLinkDown, core.EvLinkUp:
				trans = append(trans, transition{
					at: e.at, client: ci, seq: si,
					backend: breakerBackend(e.backend),
					open:    e.kind == core.EvLinkDown,
				})
				name := "breaker_close"
				if e.kind == core.EvLinkDown {
					name = "breaker_open"
				}
				ts.Add(at, obs.SeriesName(name, "backend", breakerBackend(e.backend)), 1)
			}
		}
	}

	sort.Slice(trans, func(i, j int) bool {
		if trans[i].at != trans[j].at {
			return trans[i].at < trans[j].at
		}
		if trans[i].client != trans[j].client {
			return trans[i].client < trans[j].client
		}
		return trans[i].seq < trans[j].seq
	})

	// Replay: walk the (now final) windows in order, applying every
	// transition that happened before a window's end, and record how
	// many client breakers were open per backend when it closed.
	wins := ts.Windows()
	open := map[string]int{}
	names := map[string]string{}
	var sorted []string
	j := 0
	for wi := range wins {
		w := wins[wi]
		for j < len(trans) && trans[j].at < energy.Seconds(w.End) {
			t := trans[j]
			if _, ok := open[t.backend]; !ok {
				names[t.backend] = obs.SeriesName("breakers_open", "backend", t.backend)
				sorted = append(sorted, t.backend)
				sort.Strings(sorted)
			}
			if t.open {
				open[t.backend]++
			} else if open[t.backend] > 0 {
				open[t.backend]--
			}
			j++
		}
		for _, b := range sorted {
			ts.SetIdx(w.Index, names[b], float64(open[b]))
		}
	}
}
