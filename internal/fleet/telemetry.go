package fleet

import (
	"math"
	"sort"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/obs"
)

// Virtual-time telemetry: the engine cuts the simulated clock into
// fixed ticks and records, per window, what the admission layer did
// (served/shed/flushed/losses, queue waits) and what each backend
// looked like at the tick boundary (up, busy workers, queue depth).
// Client-side series — per-invocation energy, failovers, breaker
// transitions — accumulate in per-client windowed accumulators
// (clientAcc) that fold, in deterministic arrival order, into a
// separate aggregate store as each client retires, and merge into the
// engine's series once after the run — so every float accumulates in
// a fixed order, the exported JSONL is byte-identical across
// -workers, and no per-event history is ever retained.
//
// The engine-side half streams: every write happens inside the event
// heap under the engine lock, in heap order, which is the same
// determinism argument the engine itself makes (see engine.go). Tick
// boundaries are events on that heap — kind evTick, ordered before
// every other kind at the same instant — so the gauges sampled at
// boundary t describe the state strictly before any time-t mutation,
// and tick times are computed as tick*k (never accumulated), so they
// are bit-identical however long the run gets.

// TelemetrySpec switches a fleet run's windowed telemetry on.
type TelemetrySpec struct {
	// Tick is the window width in virtual seconds (required > 0).
	Tick energy.Seconds
	// Windows caps how many windows are retained (oldest evicted
	// first); 0 keeps the whole run.
	Windows int
	// Live, when non-nil, is a registry the engine also updates as it
	// simulates — the scrape target behind fleetsim -serve-metrics.
	// Updates go through cached child handles, so the per-event cost is
	// one mutex acquisition, no allocation.
	Live *obs.Registry
}

// tsRec is the engine's recorder: the window store plus pre-built
// series names (building them per event would allocate under the
// engine lock) and optional live-registry child handles.
type tsRec struct {
	ts   *obs.TimeSeries
	tick energy.Seconds

	// Per-backend series names, indexed by backend index.
	servedB, shedB, flushedB, lossB, downB, upB []string // window counters
	depthB, busyB, upGB                         []string // tick-boundary gauges

	live *liveHandles
}

// liveHandles caches one child handle per (metric, backend) for the
// live registry, resolved once at engine construction.
type liveHandles struct {
	served, shed []*obs.CounterChild
	up           []*obs.GaugeChild
	depth        []*obs.GaugeChild
	wait         *obs.SummaryChild
	window       *obs.GaugeChild
}

func newTSRec(spec *TelemetrySpec, pool *ServerPool) *tsRec {
	r := &tsRec{
		ts:   obs.NewTimeSeries(float64(spec.Tick), spec.Windows),
		tick: spec.Tick,
	}
	for _, id := range pool.ids {
		r.servedB = append(r.servedB, obs.SeriesName("served", "backend", id))
		r.shedB = append(r.shedB, obs.SeriesName("shed", "backend", id))
		r.flushedB = append(r.flushedB, obs.SeriesName("flushed", "backend", id))
		r.lossB = append(r.lossB, obs.SeriesName("chaos_loss", "backend", id))
		r.downB = append(r.downB, obs.SeriesName("backend_down", "backend", id))
		r.upB = append(r.upB, obs.SeriesName("backend_up", "backend", id))
		r.depthB = append(r.depthB, obs.SeriesName("depth", "backend", id))
		r.busyB = append(r.busyB, obs.SeriesName("busy", "backend", id))
		r.upGB = append(r.upGB, obs.SeriesName("up", "backend", id))
	}
	if spec.Live != nil {
		reg := spec.Live
		lh := &liveHandles{
			wait:   reg.Summary("fleet_live_queue_wait_seconds", "virtual queue wait of served requests (streaming quantiles)").WithLabels(),
			window: reg.Gauge("fleet_live_window", "index of the last completed telemetry window").WithLabels(),
		}
		served := reg.Counter("fleet_live_served_total", "requests served, by backend")
		shed := reg.Counter("fleet_live_sheds_total", "requests shed, by backend")
		up := reg.Gauge("fleet_live_backend_up", "1 while the backend is up")
		depth := reg.Gauge("fleet_live_backend_queue_depth", "queue depth at the last tick boundary")
		for _, id := range pool.ids {
			lh.served = append(lh.served, served.WithLabels("backend", id))
			lh.shed = append(lh.shed, shed.WithLabels("backend", id))
			lh.up = append(lh.up, up.WithLabels("backend", id))
			lh.depth = append(lh.depth, depth.WithLabels("backend", id))
			lh.up[len(lh.up)-1].Set(1)
		}
		r.live = lh
	}
	return r
}

// tickAt returns the virtual time of tick boundary k, as a product so
// boundary times never accumulate floating-point drift.
func (r *tsRec) tickAt(k int64) energy.Seconds {
	return energy.Seconds(float64(k) * float64(r.tick))
}

// boundary samples every backend's state into the window that just
// ended (tick k closes window k-1) and updates the live gauges.
func (r *tsRec) boundary(k int64, pool *ServerPool) {
	win := k - 1
	for i, b := range pool.backends {
		upv := 1.0
		if b.down {
			upv = 0
		}
		r.ts.SetIdx(win, r.upGB[i], upv)
		r.ts.SetIdx(win, r.busyB[i], float64(b.busy))
		r.ts.SetIdx(win, r.depthB[i], float64(len(b.queue)))
		if r.live != nil {
			r.live.up[i].Set(upv)
			r.live.depth[i].Set(float64(len(b.queue)))
		}
	}
	if r.live != nil {
		r.live.window.Set(float64(win))
	}
}

func (r *tsRec) arrival(t energy.Seconds) {
	r.ts.Add(float64(t), "arrivals", 1)
}

func (r *tsRec) served(t energy.Seconds, bidx int, wait energy.Seconds) {
	ft := float64(t)
	r.ts.Add(ft, "served", 1)
	r.ts.Add(ft, r.servedB[bidx], 1)
	r.ts.Add(ft, "queue_wait_sum", float64(wait))
	if r.live != nil {
		r.live.served[bidx].Add(1)
		r.live.wait.Observe(float64(wait))
	}
}

func (r *tsRec) shed(t energy.Seconds, bidx int) {
	ft := float64(t)
	r.ts.Add(ft, "shed", 1)
	r.ts.Add(ft, r.shedB[bidx], 1)
	if r.live != nil {
		r.live.shed[bidx].Add(1)
	}
}

func (r *tsRec) chaosLoss(t energy.Seconds, bidx int) {
	r.ts.Add(float64(t), r.lossB[bidx], 1)
}

func (r *tsRec) unreachable(t energy.Seconds) {
	r.ts.Add(float64(t), "unreachable", 1)
}

func (r *tsRec) backendDown(t energy.Seconds, bidx, flushed int) {
	ft := float64(t)
	r.ts.Add(ft, r.downB[bidx], 1)
	if flushed > 0 {
		r.ts.Add(ft, r.flushedB[bidx], float64(flushed))
	}
	if r.live != nil {
		r.live.up[bidx].Set(0)
	}
}

func (r *tsRec) backendUp(t energy.Seconds, bidx int) {
	r.ts.Add(float64(t), r.upB[bidx], 1)
	if r.live != nil {
		r.live.up[bidx].Set(1)
	}
}

// breakerBackend names the breaker's scope in series labels: the
// backend for per-backend breakers, "link" for the global one.
func breakerBackend(b string) string {
	if b == "" {
		return "link"
	}
	return b
}

// clientAcc is the per-client telemetry sink: instead of buffering
// every event (which held the whole fleet's event history in memory),
// it accumulates per-window deltas while the client runs and is
// folded — then dropped — the moment the client's result emits. A
// 100k fleet's client telemetry therefore costs O(live clients x
// active windows), not O(total events). Each client owns one and its
// Emit runs on that client's goroutine only.
type clientAcc struct {
	tick  float64
	wins  map[int64]*accWin
	trans []accTransition
	seq   int
}

// accWin is one client's deltas inside one telemetry window.
type accWin struct {
	energy      float64
	invocations float64
	fallback    float64
	failover    float64
	// Keyed by breakerBackend label; nil until first use.
	probes                    map[string]float64
	breakerOpen, breakerClose map[string]float64
}

// accTransition is one breaker open/close edge, kept exactly (not
// windowed) for the post-run breakers_open gauge replay.
type accTransition struct {
	at      energy.Seconds
	seq     int
	backend string
	open    bool
}

func newClientAcc(tick float64) *clientAcc {
	return &clientAcc{tick: tick, wins: map[int64]*accWin{}}
}

// winAt returns the accumulator window covering virtual time at. The
// index formula matches obs.TimeSeries.IndexOf, so folds land in the
// same windows direct Adds would have.
func (a *clientAcc) winAt(at energy.Seconds) *accWin {
	i := int64(math.Floor(float64(at) / a.tick))
	w := a.wins[i]
	if w == nil {
		w = &accWin{}
		a.wins[i] = w
	}
	return w
}

// Emit implements core.EventSink, keeping only the kinds the windows
// chart.
func (a *clientAcc) Emit(e core.Event) {
	switch e.Kind {
	case core.EvInvoke:
		w := a.winAt(e.At)
		w.energy += float64(e.Energy)
		w.invocations++
	case core.EvFallback:
		a.winAt(e.At).fallback++
	case core.EvFailover:
		a.winAt(e.At).failover++
	case core.EvProbe:
		w := a.winAt(e.At)
		if w.probes == nil {
			w.probes = map[string]float64{}
		}
		w.probes[breakerBackend(e.Backend)]++
	case core.EvLinkDown, core.EvLinkUp:
		a.seq++
		open := e.Kind == core.EvLinkDown
		a.trans = append(a.trans, accTransition{at: e.At, seq: a.seq, backend: breakerBackend(e.Backend), open: open})
		w := a.winAt(e.At)
		if open {
			if w.breakerOpen == nil {
				w.breakerOpen = map[string]float64{}
			}
			w.breakerOpen[breakerBackend(e.Backend)]++
		} else {
			if w.breakerClose == nil {
				w.breakerClose = map[string]float64{}
			}
			w.breakerClose[breakerBackend(e.Backend)]++
		}
	}
}

var _ core.EventSink = (*clientAcc)(nil)

// clientFold aggregates client accumulators as their results emit.
// It writes into its own uncapped window store — never the engine's
// (which the engine mutates concurrently, and which may evict under a
// retention cap in a wall-clock-dependent order if folds raced it) —
// and merges into the engine's series once, post-run. Folds happen in
// arrival order under the emitter's lock, so every float accumulates
// in a fixed order and the merged JSONL stays byte-identical across
// concurrency.
type clientFold struct {
	ts    *obs.TimeSeries
	trans []foldTransition
	names map[string]string // label -> SeriesName cache, per metric kind
}

type foldTransition struct {
	at          energy.Seconds
	client, seq int
	backend     string
	open        bool
}

func newClientFold(tick energy.Seconds) *clientFold {
	return &clientFold{
		ts:    obs.NewTimeSeries(float64(tick), 0),
		names: map[string]string{},
	}
}

func (f *clientFold) name(kind, backend string) string {
	key := kind + "\x00" + backend
	n, ok := f.names[key]
	if !ok {
		n = obs.SeriesName(kind, "backend", backend)
		f.names[key] = n
	}
	return n
}

// fold drains one client's accumulator: windows in index order, and
// within each window a fixed series order, so the accumulation order
// is a pure function of the emission order.
func (f *clientFold) fold(a *clientAcc, clientIdx int) {
	if a == nil {
		return
	}
	idxs := make([]int64, 0, len(a.wins))
	for i := range a.wins {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, i := range idxs {
		w := a.wins[i]
		if w.energy != 0 {
			f.ts.AddIdx(i, "energy_j", w.energy)
		}
		if w.invocations != 0 {
			f.ts.AddIdx(i, "invocations", w.invocations)
		}
		if w.fallback != 0 {
			f.ts.AddIdx(i, "fallback", w.fallback)
		}
		if w.failover != 0 {
			f.ts.AddIdx(i, "failover", w.failover)
		}
		f.foldLabeled(i, "probe", w.probes)
		f.foldLabeled(i, "breaker_open", w.breakerOpen)
		f.foldLabeled(i, "breaker_close", w.breakerClose)
	}
	for _, t := range a.trans {
		f.trans = append(f.trans, foldTransition{at: t.at, client: clientIdx, seq: t.seq, backend: t.backend, open: t.open})
	}
}

func (f *clientFold) foldLabeled(win int64, kind string, m map[string]float64) {
	if len(m) == 0 {
		return
	}
	labels := make([]string, 0, len(m))
	for b := range m {
		labels = append(labels, b)
	}
	sort.Strings(labels)
	for _, b := range labels {
		f.ts.AddIdx(win, f.name(kind, b), m[b])
	}
}

// mergeInto folds the aggregated client series into the engine's
// window store (post-run, single-threaded): per-window counters in
// index order with sorted names, then the time-ordered breaker
// transition replay into per-window breakers_open gauges. The replay
// sort key (at, client, seq) is unique, so the merge is a pure
// function of the folds.
func (f *clientFold) mergeInto(ts *obs.TimeSeries) {
	for _, w := range f.ts.Windows() {
		names := make([]string, 0, len(w.Counters))
		for n := range w.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ts.AddIdx(w.Index, n, w.Counters[n])
		}
	}

	trans := f.trans
	sort.Slice(trans, func(i, j int) bool {
		if trans[i].at != trans[j].at {
			return trans[i].at < trans[j].at
		}
		if trans[i].client != trans[j].client {
			return trans[i].client < trans[j].client
		}
		return trans[i].seq < trans[j].seq
	})

	// Replay: walk the (now final) windows in order, applying every
	// transition that happened before a window's end, and record how
	// many client breakers were open per backend when it closed.
	wins := ts.Windows()
	open := map[string]int{}
	names := map[string]string{}
	var sorted []string
	j := 0
	for wi := range wins {
		w := wins[wi]
		for j < len(trans) && trans[j].at < energy.Seconds(w.End) {
			t := trans[j]
			if _, ok := open[t.backend]; !ok {
				names[t.backend] = obs.SeriesName("breakers_open", "backend", t.backend)
				sorted = append(sorted, t.backend)
				sort.Strings(sorted)
			}
			if t.open {
				open[t.backend]++
			} else if open[t.backend] > 0 {
				open[t.backend]--
			}
			j++
		}
		for _, b := range sorted {
			ts.SetIdx(w.Index, names[b], float64(open[b]))
		}
	}
}
