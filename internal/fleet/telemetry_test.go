package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"greenvm/internal/core"
	"greenvm/internal/obs"
)

// telemetryChaosSpec is the canonical chaos fleet (flap + brownout +
// loss over three backends) with windowed telemetry switched on.
func telemetryChaosSpec(t *testing.T, conc int) Spec {
	t.Helper()
	w := offloadWorkload(t)
	chaos := make([]BackendChaos, 3)
	chaos[0] = BackendChaos{FlapAt: 0.001, FlapDown: 0.002, FlapEvery: 0.004}
	chaos[1] = BackendChaos{BrownoutAt: 0.0005, BrownoutFactor: 6, LossRate: 0.3, LossBurst: 4}
	spec := MixedFleet(w, 24, []core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA}, 6,
		core.SessionConfig{Workers: 2, QueueCap: 8}, 42)
	spec.Servers = 3
	spec.Placement = PlaceP2C
	spec.Chaos = chaos
	spec.Breaker = &core.Breaker{Threshold: 2, Cooldown: 0.05, MaxCooldown: 0.4, ProbeBytes: 16}
	spec.Concurrency = conc
	spec.Telemetry = &TelemetrySpec{Tick: 0.0005}
	return spec
}

func seriesJSONL(t *testing.T, res *Result) []byte {
	t.Helper()
	if res.Series == nil {
		t.Fatal("telemetry requested but Series is nil")
	}
	var b bytes.Buffer
	if err := res.Series.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTimeSeriesDeterministicAcrossConcurrency is the PR's acceptance
// bar: a chaotic fleet's windowed telemetry — engine-side counters and
// tick-boundary gauges plus the client-side energy/breaker fold — is
// byte-identical whether the clients simulate serially or on eight
// slots.
func TestTimeSeriesDeterministicAcrossConcurrency(t *testing.T) {
	serial, err := Run(telemetryChaosSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(telemetryChaosSpec(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	sj, pj := seriesJSONL(t, serial), seriesJSONL(t, parallel)
	if !bytes.Equal(sj, pj) {
		t.Error("time-series JSONL diverged between serial and 8-way simulation")
	}
	// The aggregate results stay byte-identical too (telemetry must not
	// perturb the simulation).
	if !bytes.Equal(render(t, serial), render(t, parallel)) {
		t.Error("fleet results diverged between serial and 8-way simulation")
	}
}

// TestTimeSeriesContent checks the windows actually chart the run:
// totals across windows match the end-of-run aggregates, every window
// is contiguous and tick-aligned, and the chaos schedule shows up
// (backend s0's down transitions, brownout-era behavior on s1).
func TestTimeSeriesContent(t *testing.T) {
	res, err := Run(telemetryChaosSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	wins := res.Series.Windows()
	if len(wins) == 0 {
		t.Fatal("no windows recorded")
	}
	tick := res.Series.Tick()
	var served, shed, energyJ, downs float64
	for i, w := range wins {
		if w.Index != wins[0].Index+int64(i) {
			t.Fatalf("windows not contiguous at %d", i)
		}
		if w.Start != float64(w.Index)*tick {
			t.Errorf("window %d start %g != index*tick %g", w.Index, w.Start, float64(w.Index)*tick)
		}
		served += w.Counters["served"]
		shed += w.Counters["shed"]
		energyJ += w.Counters["energy_j"]
		downs += w.Counters[obs.SeriesName("backend_down", "backend", "s0")]
	}
	if int(served) != res.Server.Served {
		t.Errorf("windowed served %d != aggregate %d", int(served), res.Server.Served)
	}
	if int(shed) != res.Server.Shed {
		t.Errorf("windowed shed %d != aggregate %d", int(shed), res.Server.Shed)
	}
	if downs < 2 {
		t.Errorf("s0 flap cycle shows %g down transitions in the windows, want >= 2", downs)
	}
	// The windowed energy fold sums per-invocation deltas; client
	// totals also include out-of-invocation costs (registration,
	// stat sync), so the windows account for slightly less — but must
	// stay within a fraction of a percent of the fleet total.
	total := float64(res.TotalEnergy())
	if energyJ <= 0 || energyJ > total || total-energyJ > 0.005*total {
		t.Errorf("windowed energy %g vs client total %g", energyJ, total)
	}
	// Breaker telemetry: the chaos spec trips breakers, so open
	// transitions and the replayed open-count gauge must appear.
	var opens float64
	sawGauge := false
	for _, w := range wins {
		for name, v := range w.Counters {
			if strings.HasPrefix(name, "breaker_open{") {
				opens += v
			}
		}
		for name := range w.Gauges {
			if strings.HasPrefix(name, "breakers_open{") {
				sawGauge = true
			}
		}
	}
	if opens == 0 || !sawGauge {
		t.Errorf("breaker series missing: opens=%g gauge=%v", opens, sawGauge)
	}
}

// TestTimeSeriesJSONLSchema decodes the exported JSONL and checks the
// header and window invariants the benchreport validator enforces.
func TestTimeSeriesJSONLSchema(t *testing.T) {
	res, err := Run(telemetryChaosSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	raw := seriesJSONL(t, res)
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("empty JSONL")
	}
	var hdr struct {
		Schema  string  `json:"schema"`
		Tick    float64 `json:"tick"`
		Windows int     `json:"windows"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != obs.TimeSeriesSchema || hdr.Tick != 0.0005 {
		t.Errorf("header %+v", hdr)
	}
	n := 0
	for sc.Scan() {
		var w obs.Window
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			t.Fatalf("window %d: %v", n, err)
		}
		n++
	}
	if n != hdr.Windows {
		t.Errorf("header says %d windows, file has %d", hdr.Windows, n)
	}
}

// TestTelemetryRejectsBadTick: a telemetry spec without a positive
// tick is a spec error, not a panic deep in the engine.
func TestTelemetryRejectsBadTick(t *testing.T) {
	spec := MixedFleet(testWorkload(t), 2, []core.Strategy{core.StrategyR}, 1,
		core.SessionConfig{}, 1)
	spec.Telemetry = &TelemetrySpec{}
	if _, err := Run(spec); err == nil {
		t.Error("want error for zero telemetry tick")
	}
}

// TestTelemetryLiveRegistry: with a live registry attached, the
// engine's child handles populate it during the run.
func TestTelemetryLiveRegistry(t *testing.T) {
	spec := telemetryChaosSpec(t, 0)
	reg := obs.NewRegistry()
	spec.Telemetry.Live = reg
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fleet_live_served_total{backend=\"s0\"}",
		"fleet_live_queue_wait_seconds_count",
		"fleet_live_backend_up",
		"fleet_live_window",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live registry missing %s in:\n%s", want, out)
		}
	}
	// Served counts in the live registry agree with the result.
	var liveServed float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name != "fleet_live_served_total" {
			continue
		}
		for _, s := range m.Series {
			liveServed += s.Value
		}
	}
	if int(liveServed) != res.Server.Served {
		t.Errorf("live served %d != result %d", int(liveServed), res.Server.Served)
	}
}
