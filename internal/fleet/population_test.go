package fleet

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"greenvm/internal/core"
	"greenvm/internal/energy"
)

// TestMixedFleetByteCompat pins the deprecated MixedFleet shim to the
// historical cohort shape: ID format, strategy and channel rotation,
// outage cadence and per-client seeds must come out exactly as the
// pre-Population constructor built them, or old callers' runs change
// under them.
func TestMixedFleetByteCompat(t *testing.T) {
	strats := []core.Strategy{core.StrategyR, core.StrategyAL}
	spec := MixedFleet(Workload{Name: "x"}, 7, strats, 3, core.SessionConfig{}, 42)
	if len(spec.Clients) != 7 {
		t.Fatalf("%d clients, want 7", len(spec.Clients))
	}
	channels := []ChannelKind{ChannelFixed, ChannelUniform, ChannelMarkov}
	for i, c := range spec.Clients {
		if want := fmt.Sprintf("pda-%02d", i); c.ID != want {
			t.Errorf("client %d ID = %q, want %q", i, c.ID, want)
		}
		if want := strats[i%len(strats)]; c.Strategy != want {
			t.Errorf("client %d strategy = %v, want %v", i, c.Strategy, want)
		}
		if want := channels[i%len(channels)]; c.Channel != want {
			t.Errorf("client %d channel = %v, want %v", i, c.Channel, want)
		}
		if c.Executions != 3 {
			t.Errorf("client %d executions = %d, want 3", i, c.Executions)
		}
		if want := mix(42, uint64(i)); c.Seed != want {
			t.Errorf("client %d seed = %d, want %d", i, c.Seed, want)
		}
		wantOutage := i%5 == 4
		if (c.Outage > 0) != wantOutage {
			t.Errorf("client %d outage = %g, want outage: %v", i, c.Outage, wantOutage)
		}
	}
}

// TestPopulationClientAtMatchesSpecs checks the lazy accessor against
// the materialized slice: a streamed run and a Clients-slice run must
// see identical cohorts.
func TestPopulationClientAtMatchesSpecs(t *testing.T) {
	pop := NewPopulation(40,
		WithSeed(9),
		WithStrategyMix(core.StrategyAA, core.StrategyR),
		WithChannelMix(ChannelMarkov, ChannelDrifting),
		WithOutage(0.3, 4, 3),
		WithExecutions(2),
		WithSizes(16, 64),
	)
	specs := pop.ClientSpecs()
	if len(specs) != pop.N() {
		t.Fatalf("ClientSpecs len %d, want %d", len(specs), pop.N())
	}
	for i, want := range specs {
		got := pop.ClientAt(i)
		if got.ID != want.ID || got.Strategy != want.Strategy || got.Channel != want.Channel ||
			got.Outage != want.Outage || got.Burst != want.Burst ||
			got.Executions != want.Executions || got.Seed != want.Seed ||
			len(got.Sizes) != len(want.Sizes) {
			t.Errorf("ClientAt(%d) = %+v, want %+v", i, got, want)
		}
	}
}

func TestParseArrival(t *testing.T) {
	good := []struct {
		in   string
		want ArrivalSpec
	}{
		{"none", ArrivalSpec{Kind: ArriveNone}},
		{"uniform:0.5", ArrivalSpec{Kind: ArriveUniform, Span: 0.5}},
		{"diurnal:2", ArrivalSpec{Kind: ArriveDiurnal, Span: 2, Amplitude: 0.9}},
		{"diurnal:2/0.4", ArrivalSpec{Kind: ArriveDiurnal, Span: 2, Amplitude: 0.4}},
	}
	for _, tc := range good {
		got, err := ParseArrival(tc.in)
		if err != nil {
			t.Errorf("ParseArrival(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseArrival(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []struct {
		in, want string
	}{
		{"diurnl:0.5", `did you mean "diurnal"`},
		{"unifrom:1", `did you mean "uniform"`},
		{"poisson:1", "valid: none, uniform, diurnal"},
		{"uniform", "needs a span"},
		{"uniform:-1", "must be a positive"},
		{"uniform:0.5/0.3", "takes no amplitude"},
		{"diurnal:1/1.5", "must be in [0, 1]"},
		{"none:0.5", "takes no parameters"},
	}
	for _, tc := range bad {
		_, err := ParseArrival(tc.in)
		if err == nil {
			t.Errorf("ParseArrival(%q) accepted a bad value", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseArrival(%q) error %q does not contain %q", tc.in, err, tc.want)
		}
	}
}

func TestParseDrift(t *testing.T) {
	d, err := ParseDrift("overnight")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "overnight" || d.Period != 64 || d.Depth != 0.4 || d.Stay != 0.55 {
		t.Errorf("overnight preset = %+v", d)
	}
	if d, err = ParseDrift("none"); err != nil || d.Name != "none" {
		t.Errorf("ParseDrift(none) = (%+v, %v)", d, err)
	}
	_, err = ParseDrift("comute")
	if err == nil || !strings.Contains(err.Error(), `did you mean "commute"`) {
		t.Errorf("ParseDrift(comute) error %v lacks suggestion", err)
	}
	_, err = ParseDrift("sinusoid")
	if err == nil || !strings.Contains(err.Error(), "valid: none, overnight, commute") {
		t.Errorf("ParseDrift(sinusoid) error %v lacks the valid set", err)
	}
}

// TestArrivalCurves checks the inverse-CDF draws: deterministic per
// seed, bounded by the span, and — for the diurnal curve — actually
// shaped (the middle half of one synthetic day holds most arrivals,
// which a uniform spread cannot produce).
func TestArrivalCurves(t *testing.T) {
	const n = 4000
	for _, tc := range []struct {
		name string
		a    ArrivalSpec
	}{
		{"uniform", ArrivalSpec{Kind: ArriveUniform, Span: 2}},
		{"diurnal", ArrivalSpec{Kind: ArriveDiurnal, Span: 2, Amplitude: 0.9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mid := 0
			for i := 0; i < n; i++ {
				seed := mix(5, uint64(i))
				at := tc.a.startTime(seed)
				if at < 0 || at > tc.a.Span {
					t.Fatalf("arrival %d at %v outside [0, %v]", i, at, tc.a.Span)
				}
				if again := tc.a.startTime(seed); again != at {
					t.Fatalf("arrival %d not deterministic: %v then %v", i, at, again)
				}
				if at > tc.a.Span/4 && at < 3*tc.a.Span/4 {
					mid++
				}
			}
			frac := float64(mid) / n
			switch tc.name {
			case "uniform":
				if frac < 0.45 || frac > 0.55 {
					t.Errorf("uniform middle-half fraction %.3f, want ~0.5", frac)
				}
			case "diurnal":
				// At amplitude 0.9 the middle half carries ~79% of the mass.
				if frac < 0.7 {
					t.Errorf("diurnal middle-half fraction %.3f, want > 0.7 (curve not shaped)", frac)
				}
			}
		})
	}
}

// TestPopulationRunMatchesClientSpecs is the API-migration guarantee:
// the same cohort through the lazy Spec.Population and through the
// materialized Spec.Clients slice produces byte-identical results.
// (Arrival curves ride only on the population, so the comparable
// cohort uses none; the drifting channels compare because the default
// DriftSpec equals the overnight preset.)
func TestPopulationRunMatchesClientSpecs(t *testing.T) {
	w := testWorkload(t)
	pop := func() *Population {
		return NewPopulation(24,
			WithSeed(11),
			WithStrategyMix(core.StrategyR, core.StrategyAL, core.StrategyAA),
			WithExecutions(2),
			WithSizes(16, 32),
			WithChannelMix(ChannelMarkov, ChannelDrifting),
		)
	}
	lazy := Spec{Workload: w, Population: pop(), Server: core.SessionConfig{Workers: 2, QueueCap: 4}}
	lazy.Concurrency = 4
	eager := Spec{Workload: w, Clients: pop().ClientSpecs(), Server: core.SessionConfig{Workers: 2, QueueCap: 4}}
	eager.Concurrency = 4

	lr, err := Run(lazy)
	if err != nil {
		t.Fatal(err)
	}
	er, err := Run(eager)
	if err != nil {
		t.Fatal(err)
	}
	lb, eb := render(t, lr), render(t, er)
	if !bytes.Equal(lb, eb) {
		t.Fatalf("lazy and materialized cohorts diverge:\n--- lazy ---\n%s\n--- eager ---\n%s", lb, eb)
	}
}

// TestSpecRejectsAmbiguousCohort: Clients and Population are
// exclusive, and an empty spec is an error, not an empty run.
func TestSpecRejectsAmbiguousCohort(t *testing.T) {
	w := testWorkload(t)
	both := Spec{Workload: w, Clients: []ClientSpec{{ID: "a", Executions: 1}},
		Population: NewPopulation(2)}
	if _, err := Run(both); err == nil || !strings.Contains(err.Error(), "both Clients and Population") {
		t.Errorf("Run with both cohort sources: %v", err)
	}
	if _, err := Run(Spec{Workload: w}); err == nil || !strings.Contains(err.Error(), "no clients") {
		t.Errorf("Run with no cohort: %v", err)
	}
}

// TestStreamedRunMatchesRetained: a ResultSink must see exactly the
// records a retained run materializes, in arrival order, while the
// streamed Result keeps Clients nil and the same totals.
func TestStreamedRunMatchesRetained(t *testing.T) {
	w := testWorkload(t)
	build := func() Spec {
		spec := Spec{Workload: w, Population: NewPopulation(30,
			WithSeed(6),
			WithStrategyMix(core.StrategyR, core.StrategyAA),
			WithExecutions(2),
			WithSizes(16),
			WithArrivalCurve(ArrivalSpec{Kind: ArriveUniform, Span: 0.02}),
		), Server: core.SessionConfig{Workers: 2, QueueCap: 4}}
		spec.Concurrency = 4
		return spec
	}
	retained, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}

	var streamed []ClientResult
	spec := build()
	spec.ResultSink = func(cr ClientResult) { streamed = append(streamed, cr) }
	sr, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Clients != nil {
		t.Errorf("streamed Result retained %d client records", len(sr.Clients))
	}
	if sr.Totals != retained.Totals {
		t.Errorf("totals diverge: %+v vs %+v", sr.Totals, retained.Totals)
	}
	if len(streamed) != len(retained.Clients) {
		t.Fatalf("sink saw %d records, retained run %d", len(streamed), len(retained.Clients))
	}
	// The sink sees arrival order; the retained slice is in client
	// order. Compare as sets keyed by ID, and check the sink's order
	// is the arrival order.
	byID := map[string]ClientResult{}
	for _, c := range retained.Clients {
		byID[c.ID] = c
	}
	pop := spec.Population
	var lastStart energy.Seconds = -1
	for i, c := range streamed {
		want, ok := byID[c.ID]
		if !ok {
			t.Fatalf("sink record %d (%s) not in retained run", i, c.ID)
		}
		if fmt.Sprintf("%+v", c) != fmt.Sprintf("%+v", want) {
			t.Errorf("record %s diverges:\nstream %+v\nretain %+v", c.ID, c, want)
		}
		var idx int
		if _, err := fmt.Sscanf(c.ID, "pda-%d", &idx); err != nil {
			t.Fatalf("unparseable client ID %q: %v", c.ID, err)
		}
		at := pop.StartAt(idx)
		if at < lastStart {
			t.Errorf("sink order broke arrival order at %s (%v after %v)", c.ID, at, lastStart)
		}
		lastStart = at
	}
}

// TestStreamedFleetMemoryPerClient pins the memory claim behind the
// Population + ResultSink redesign: mid-run live heap grows with the
// launch-ahead window, not the cohort. The all-resident design held
// every finished client (~hundreds of KB each) until the run ended —
// ~200 KB/client live at the midpoint of a 2k fleet; the streamed
// design must stay far below that.
func TestStreamedFleetMemoryPerClient(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-client memory probe; skipped under -short")
	}
	w := testWorkload(t)
	const n = 2000
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var midHeap uint64
	seen := 0
	spec := Spec{Workload: w, Population: NewPopulation(n,
		WithSeed(13),
		WithStrategyMix(core.StrategyR, core.StrategyAL, core.StrategyAA),
		WithExecutions(1),
		WithSizes(16),
		WithArrivalCurve(ArrivalSpec{Kind: ArriveDiurnal, Span: 0.5, Amplitude: 0.9}),
	), Server: core.SessionConfig{Workers: 4, QueueCap: 16}}
	spec.ResultSink = func(cr ClientResult) {
		if seen++; seen == n/2 {
			// Half the cohort has retired; with streaming their state is
			// garbage. Collect it so the reading counts live bytes only.
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			midHeap = m.HeapAlloc
		}
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Errors > 0 {
		t.Fatalf("%d clients failed", res.Totals.Errors)
	}
	if midHeap == 0 {
		t.Fatal("midpoint sample never taken")
	}
	grown := float64(midHeap) - float64(before.HeapAlloc)
	perClient := grown / n
	t.Logf("mid-run live heap growth: %.0f KB total, %.1f KB/client", grown/1024, perClient/1024)
	if perClient > 50*1024 {
		t.Errorf("live heap %.1f KB/client at the midpoint; streaming should keep only the launch-ahead window resident", perClient/1024)
	}
}

// TestFleetScaleDeterministicStreamed is the city-scale determinism
// claim: a 10k-client diurnal cohort with drifting channels produces
// byte-identical streamed client records AND byte-identical telemetry
// JSONL whether it simulates serially or on eight slots.
func TestFleetScaleDeterministicStreamed(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-client sweep is seconds of work; skipped under -short")
	}
	w := testWorkload(t)
	run := func(conc int) (clientBytes, tsBytes []byte) {
		t.Helper()
		var cl bytes.Buffer
		spec := Spec{Workload: w, Population: NewPopulation(10000,
			WithSeed(20260807),
			WithStrategyMix(core.StrategyR, core.StrategyAL, core.StrategyAA),
			WithExecutions(1),
			WithSizes(16),
			WithArrivalCurve(ArrivalSpec{Kind: ArriveDiurnal, Span: 0.5, Amplitude: 0.9}),
			WithChannelMix(ChannelDrifting),
			WithChannelDrift(DriftSpec{Period: 64, Depth: 0.4, Stay: 0.55}),
		), Server: core.SessionConfig{Workers: 4, QueueCap: 16}}
		spec.Servers = 2
		spec.Placement = PlaceP2C
		spec.Concurrency = conc
		spec.Telemetry = &TelemetrySpec{Tick: 0.005}
		spec.ResultSink = func(cr ClientResult) {
			fmt.Fprintf(&cl, "%s|%v|%v|%v|%+v|%d|%d|%v|%v|%s\n",
				cr.ID, cr.Strategy, cr.Energy, cr.Time, cr.Stats,
				cr.Served, cr.Shed, cr.AvgWait, cr.MaxWait, cr.Err)
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Totals.Errors > 0 {
			t.Fatalf("%d clients failed", res.Totals.Errors)
		}
		var ts bytes.Buffer
		if err := res.Series.WriteJSONL(&ts); err != nil {
			t.Fatal(err)
		}
		return cl.Bytes(), ts.Bytes()
	}
	serialCl, serialTS := run(1)
	parCl, parTS := run(8)
	if !bytes.Equal(serialCl, parCl) {
		t.Error("serial and 8-way client streams diverge")
	}
	if !bytes.Equal(serialTS, parTS) {
		t.Error("serial and 8-way telemetry JSONL diverge")
	}
	if len(serialCl) == 0 || len(serialTS) == 0 {
		t.Error("scale run produced empty streams")
	}
}
