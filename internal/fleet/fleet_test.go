package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"greenvm/internal/apps"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/radio"
)

// Profiling the workloads dominates test time, so the tests share one
// prepared environment per app: MF exercises contention cheaply, FE is
// the app whose adaptive clients actually prefer offloading.
var (
	envOnce  sync.Once
	envMF    *experiments.Env
	envFE    *experiments.Env
	envErrMF error
	envErrFE error
)

func prepare(t *testing.T) {
	t.Helper()
	envOnce.Do(func() {
		envMF, envErrMF = experiments.Prepare(apps.MF(), 3)
		envFE, envErrFE = experiments.Prepare(apps.FE(), 3)
	})
}

func testWorkload(t *testing.T) Workload {
	t.Helper()
	prepare(t)
	if envErrMF != nil {
		t.Fatal(envErrMF)
	}
	return WorkloadOf(envMF)
}

func offloadWorkload(t *testing.T) Workload {
	t.Helper()
	prepare(t)
	if envErrFE != nil {
		t.Fatal(envErrFE)
	}
	return WorkloadOf(envFE)
}

// render serializes everything a fleet run produces — the summary
// table, the per-client structs and the observability snapshot — so
// two runs can be compared byte for byte.
func render(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	for _, c := range r.Clients {
		fmt.Fprintf(&buf, "%s|%v|%v|%v|%+v|%+v|%d|%d|%v|%v|%s\n",
			c.ID, c.Strategy, c.Energy, c.Time, c.Stats, c.Session,
			c.Served, c.Shed, c.AvgWait, c.MaxWait, c.Err)
	}
	fmt.Fprintf(&buf, "server %+v\n", r.Server)
	fmt.Fprintf(&buf, "placement %v\n", r.Placement)
	for _, b := range r.Backends {
		fmt.Fprintf(&buf, "backend %+v\n", b)
	}
	if err := r.Registry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetDeterministicAcrossConcurrency is the tentpole's core
// claim: a 32-client mixed-strategy fleet produces byte-identical
// results whether the clients simulate serially or on eight slots.
func TestFleetDeterministicAcrossConcurrency(t *testing.T) {
	w := testWorkload(t)
	build := func(conc int) Spec {
		spec := MixedFleet(w, 32,
			[]core.Strategy{core.StrategyR, core.StrategyI, core.StrategyL2, core.StrategyAL, core.StrategyAA},
			3, core.SessionConfig{Workers: 2, QueueCap: 4}, 77)
		for i := range spec.Clients {
			spec.Clients[i].Sizes = []int{16, 32}
		}
		spec.Concurrency = conc
		return spec
	}

	serial, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range serial.Clients {
		if c.Err != "" {
			t.Fatalf("client %s failed: %s", c.ID, c.Err)
		}
	}
	parallel, err := Run(build(8))
	if err != nil {
		t.Fatal(err)
	}

	sb, pb := render(t, serial), render(t, parallel)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("serial and parallel fleets diverge:\n--- serial ---\n%s\n--- parallel ---\n%s", sb, pb)
	}

	// The run must have exercised contention, or the determinism claim
	// is vacuous.
	if serial.Server.MaxQueueDepth == 0 {
		t.Error("fleet never queued: the spec does not exercise admission control")
	}
	if serial.Server.Served == 0 {
		t.Error("fleet never offloaded")
	}
}

// TestFleetMultiServerDeterministic extends the determinism claim to
// the pool: for every placement policy and several server counts, a
// mixed-strategy fleet produces byte-identical results — placement
// decisions, per-backend admission, queue waits — whether the clients
// simulate serially or on eight slots.
func TestFleetMultiServerDeterministic(t *testing.T) {
	w := testWorkload(t)
	for _, servers := range []int{2, 3} {
		for _, pl := range Placements {
			servers, pl := servers, pl
			t.Run(fmt.Sprintf("%dservers_%s", servers, pl), func(t *testing.T) {
				build := func(conc int) Spec {
					spec := MixedFleet(w, 18,
						[]core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA},
						3, core.SessionConfig{Workers: 1, QueueCap: 2}, 123)
					for i := range spec.Clients {
						spec.Clients[i].Sizes = []int{16, 32}
					}
					spec.Servers = servers
					spec.Placement = pl
					spec.Concurrency = conc
					return spec
				}

				serial, err := Run(build(1))
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range serial.Clients {
					if c.Err != "" {
						t.Fatalf("client %s failed: %s", c.ID, c.Err)
					}
				}
				parallel, err := Run(build(8))
				if err != nil {
					t.Fatal(err)
				}

				sb, pb := render(t, serial), render(t, parallel)
				if !bytes.Equal(sb, pb) {
					t.Fatalf("serial and parallel fleets diverge:\n--- serial ---\n%s\n--- parallel ---\n%s", sb, pb)
				}

				// Non-vacuous: the pool is real and placement spread load.
				if len(serial.Backends) != servers {
					t.Fatalf("got %d backends, want %d", len(serial.Backends), servers)
				}
				serving := 0
				for _, b := range serial.Backends {
					if b.Served > 0 {
						serving++
					}
				}
				if serving < 2 {
					t.Errorf("placement %v left all traffic on one backend: %+v", pl, serial.Backends)
				}
			})
		}
	}
}

// TestFleetBackendFailover schedules one backend of a two-server pool
// to fail mid-run: queued requests flush as connection losses, the
// clients' loss machinery re-places on the survivor, and the whole
// thing stays byte-deterministic across concurrency.
func TestFleetBackendFailover(t *testing.T) {
	w := testWorkload(t)
	build := func(conc int) Spec {
		spec := MixedFleet(w, 8, []core.Strategy{core.StrategyR}, 3,
			core.SessionConfig{Workers: 2, QueueCap: 4}, 21)
		for i := range spec.Clients {
			spec.Clients[i].Channel = ChannelFixed
			spec.Clients[i].Outage = 0
			spec.Clients[i].Sizes = []int{32}
		}
		spec.Servers = 2
		spec.Placement = PlaceHash
		spec.FailAt = []energy.Seconds{0.002, 0} // s0 dies two virtual ms in
		spec.Concurrency = conc
		return spec
	}

	serial, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(build(8))
	if err != nil {
		t.Fatal(err)
	}
	sb, pb := render(t, serial), render(t, parallel)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("failover fleets diverge:\n--- serial ---\n%s\n--- parallel ---\n%s", sb, pb)
	}

	// Every client survives the failure: losses fall back or re-place,
	// they never surface as client errors.
	for _, c := range serial.Clients {
		if c.Err != "" {
			t.Fatalf("client %s failed: %s", c.ID, c.Err)
		}
	}
	if !serial.Backends[0].Down {
		t.Fatal("backend s0 never went down")
	}
	if serial.Backends[1].Down {
		t.Fatal("backend s1 went down without a scheduled failure")
	}
	if serial.Backends[1].Served == 0 {
		t.Error("surviving backend served nothing — sessions never re-placed")
	}
}

// TestFleetOverloadShedsAndShiftsLocal drives an adaptive fleet into a
// deliberately undersized server: admission control must shed, and the
// clients must price the busy errors into their decisions — work that
// would have gone remote observably shifts to local execution.
func TestFleetOverloadShedsAndShiftsLocal(t *testing.T) {
	w := offloadWorkload(t)
	spec := MixedFleet(w, 16, []core.Strategy{core.StrategyAA}, 4,
		core.SessionConfig{Workers: 1, QueueCap: -1}, 5)
	for i := range spec.Clients {
		// A narrow channel keeps the remote advantage small enough
		// that a few priced-in busy errors flip the estimate; unloaded,
		// AA still offloads FE here (the control run checks that).
		spec.Clients[i].Channel = ChannelFixed
		spec.Clients[i].Class = radio.Class1
		spec.Clients[i].Outage = 0
		spec.Clients[i].Sizes = []int{56000}
	}

	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.Err != "" {
			t.Fatalf("client %s failed: %s", c.ID, c.Err)
		}
	}

	if res.Server.Shed == 0 {
		t.Fatal("an undersized server with no queue never shed")
	}
	var local, shedClients int
	for _, c := range res.Clients {
		local += localModes(c.Stats)
		if c.Shed > 0 {
			shedClients++
			if c.Stats.Sheds != c.Shed {
				t.Errorf("client %s: engine shed %d requests but its stats say %d",
					c.ID, c.Shed, c.Stats.Sheds)
			}
		}
	}
	if shedClients == 0 {
		t.Fatal("server shed requests but no client recorded one")
	}
	if local == 0 {
		t.Error("overload never shifted an adaptive client to local execution")
	}

	// Control: the same fleet against an adequately sized server sheds
	// nothing and keeps every decision remote — the local shift above
	// is the overload's doing, not the channel's.
	roomy := spec
	roomy.Server = core.SessionConfig{Workers: 16, QueueCap: 32}
	ctrl, err := Run(roomy)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Server.Shed != 0 {
		t.Fatalf("control fleet shed %d requests on a 16-worker server", ctrl.Server.Shed)
	}
	for _, c := range ctrl.Clients {
		if c.Err != "" {
			t.Fatalf("control client %s failed: %s", c.ID, c.Err)
		}
		if localModes(c.Stats) != 0 {
			t.Fatalf("control client %s went local without overload: %v", c.ID, c.Stats.ModeCounts)
		}
	}
}

func localModes(s core.Stats) int {
	return s.ModeCounts[core.ModeInterp] + s.ModeCounts[core.ModeL1] +
		s.ModeCounts[core.ModeL2] + s.ModeCounts[core.ModeL3]
}

// TestFleetSessionCacheServesRepeats: clients drawing a single input
// size resend identical serialized requests, which the per-session
// caches answer without re-executing.
func TestFleetSessionCacheServesRepeats(t *testing.T) {
	w := testWorkload(t)
	spec := MixedFleet(w, 4, []core.Strategy{core.StrategyR}, 5,
		core.SessionConfig{Workers: 4, QueueCap: 16}, 9)
	for i := range spec.Clients {
		spec.Clients[i].Channel = ChannelFixed
		spec.Clients[i].Outage = 0
		spec.Clients[i].Sizes = []int{32}
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.Err != "" {
			t.Fatalf("client %s failed: %s", c.ID, c.Err)
		}
	}
	if res.Server.CacheHits == 0 {
		t.Error("repeated identical offloads produced no session cache hits")
	}
}
