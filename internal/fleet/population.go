package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

// A Population describes a cohort of simulated handsets without
// materializing one ClientSpec per handset: every client's spec is a
// pure function of the population seed and the client index, so a
// 100k-client fleet costs a few dozen bytes of description until the
// engine actually needs a client. The expansion is deterministic —
// the same options and seed always produce the same cohort — and
// ClientAt(i) is safe to call from any goroutine.
type Population struct {
	n          int
	seed       uint64
	idFormat   string
	strategies []core.Strategy
	channels   []ChannelKind
	outageFrac float64
	burstLen   float64
	outageMod  int
	execs      int
	sizes      []int
	arrival    ArrivalSpec
	drift      DriftSpec
}

// PopOption shapes a Population at construction.
type PopOption func(*Population)

// WithSeed sets the population seed every per-client stream derives
// from (default 1).
func WithSeed(seed uint64) PopOption {
	return func(p *Population) { p.seed = seed }
}

// WithIDFormat sets the fmt verb used to derive client IDs from the
// index (default "pda-%02d").
func WithIDFormat(format string) PopOption {
	return func(p *Population) { p.idFormat = format }
}

// WithStrategyMix cycles the given strategies across the cohort
// (client i gets strategies[i mod len]).
func WithStrategyMix(strategies ...core.Strategy) PopOption {
	return func(p *Population) {
		if len(strategies) > 0 {
			p.strategies = strategies
		}
	}
}

// WithChannelMix cycles the given channel kinds across the cohort
// (default fixed, uniform, markov — the MixedFleet rotation).
func WithChannelMix(kinds ...ChannelKind) PopOption {
	return func(p *Population) {
		if len(kinds) > 0 {
			p.channels = kinds
		}
	}
}

// WithOutage attaches a Gilbert–Elliott lossy link (stationary loss
// fraction frac, mean burst length burst) to every every-th client;
// every <= 0 disables outages. The default is the MixedFleet shape:
// every fifth client at 0.15/3.
func WithOutage(frac, burst float64, every int) PopOption {
	return func(p *Population) {
		p.outageFrac, p.burstLen, p.outageMod = frac, burst, every
	}
}

// WithExecutions sets how many application executions each client
// runs (default 1).
func WithExecutions(execs int) PopOption {
	return func(p *Population) { p.execs = execs }
}

// WithSizes overrides the workload's input-size population for every
// client in the cohort.
func WithSizes(sizes ...int) PopOption {
	return func(p *Population) { p.sizes = sizes }
}

// WithArrivalCurve spreads client start times over virtual time
// according to the curve (see ArrivalSpec); the zero spec means every
// client arrives at t=0.
func WithArrivalCurve(a ArrivalSpec) PopOption {
	return func(p *Population) { p.arrival = a }
}

// WithChannelDrift sets the drift parameters used by clients whose
// channel kind is ChannelDrifting.
func WithChannelDrift(d DriftSpec) PopOption {
	return func(p *Population) { p.drift = d }
}

// NewPopulation builds a cohort description of n handsets. With no
// options the expansion reproduces MixedFleet's historical cohort:
// IDs "pda-%02d", strategies cycled (default all-R), channels cycled
// fixed/uniform/markov, every fifth client on a 0.15/3 lossy link,
// one execution each, seed 1.
func NewPopulation(n int, opts ...PopOption) *Population {
	p := &Population{
		n:          n,
		seed:       1,
		idFormat:   "pda-%02d",
		strategies: []core.Strategy{core.StrategyR},
		channels:   []ChannelKind{ChannelFixed, ChannelUniform, ChannelMarkov},
		outageFrac: 0.15,
		burstLen:   3,
		outageMod:  5,
		execs:      1,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(p)
		}
	}
	return p
}

// N is the cohort size.
func (p *Population) N() int { return p.n }

// Arrival returns the cohort's arrival curve.
func (p *Population) Arrival() ArrivalSpec { return p.arrival }

// Drift returns the cohort's channel-drift parameters.
func (p *Population) Drift() DriftSpec { return p.drift }

// ClientAt expands client i's spec. The expansion depends only on the
// population's options, its seed and i.
func (p *Population) ClientAt(i int) ClientSpec {
	cs := ClientSpec{
		ID:         fmt.Sprintf(p.idFormat, i),
		Strategy:   p.strategies[i%len(p.strategies)],
		Channel:    p.channels[i%len(p.channels)],
		Executions: p.execs,
		Sizes:      p.sizes,
		Seed:       mix(p.seed, uint64(i)),
	}
	if p.outageMod > 0 && i%p.outageMod == p.outageMod-1 {
		cs.Outage, cs.Burst = p.outageFrac, p.burstLen
	}
	return cs
}

// ClientSpecs materializes the whole cohort — the pre-Population
// interface. City-scale callers should keep the Population and let
// Run expand clients lazily instead.
func (p *Population) ClientSpecs() []ClientSpec {
	specs := make([]ClientSpec, p.n)
	for i := range specs {
		specs[i] = p.ClientAt(i)
	}
	return specs
}

// StartAt returns client i's arrival time under the population's
// arrival curve.
func (p *Population) StartAt(i int) energy.Seconds {
	return p.arrival.startTime(mix(p.seed, uint64(i)))
}

// ArrivalKind selects the shape of a cohort's arrival-rate curve.
type ArrivalKind int

const (
	// ArriveNone starts every client at t=0 (the historical shape).
	ArriveNone ArrivalKind = iota
	// ArriveUniform spreads arrivals uniformly over the span.
	ArriveUniform
	// ArriveDiurnal draws arrivals from a sinusoidal rate over the
	// span — one synthetic day with a mid-span peak and quiet edges.
	ArriveDiurnal
)

func (k ArrivalKind) String() string {
	switch k {
	case ArriveNone:
		return "none"
	case ArriveUniform:
		return "uniform"
	case ArriveDiurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// arrivalKinds maps the -arrival flag names, in suggestion order.
var arrivalKinds = []struct {
	name string
	kind ArrivalKind
}{
	{"none", ArriveNone},
	{"uniform", ArriveUniform},
	{"diurnal", ArriveDiurnal},
}

// ArrivalSpec is a cohort arrival-rate curve. Span is the virtual
// window arrivals spread over; Amplitude in [0, 1] shapes the
// diurnal swing (peak rate = (1+A) x mean, trough = (1-A) x mean).
type ArrivalSpec struct {
	Kind      ArrivalKind
	Span      energy.Seconds
	Amplitude float64
}

func (a ArrivalSpec) String() string {
	switch a.Kind {
	case ArriveNone:
		return "none"
	case ArriveUniform:
		return fmt.Sprintf("uniform:%g", float64(a.Span))
	default:
		return fmt.Sprintf("diurnal:%g/%g", float64(a.Span), a.Amplitude)
	}
}

// validate rejects malformed curves.
func (a ArrivalSpec) validate() error {
	if a.Kind == ArriveNone {
		return nil
	}
	if a.Span <= 0 {
		return fmt.Errorf("fleet: arrival span %v must be positive", a.Span)
	}
	if a.Amplitude < 0 || a.Amplitude > 1 {
		return fmt.Errorf("fleet: arrival amplitude %g must be in [0, 1]", a.Amplitude)
	}
	return nil
}

// startTime draws one arrival from the curve, seeded by the client
// seed. It is a pure function — bisection against the closed-form
// CDF, fixed iteration count — so engines can compute a client's
// arrival bound without constructing the client.
func (a ArrivalSpec) startTime(clientSeed uint64) energy.Seconds {
	if a.Kind == ArriveNone || a.Span <= 0 {
		return 0
	}
	u := rng.New(mix(clientSeed, 0x41)).Float64()
	if a.Kind == ArriveUniform {
		return a.Span * energy.Seconds(u)
	}
	// Diurnal: rate(t) = 1 + A*sin(2*pi*t/S - pi/2) over [0, S] —
	// quiet at the edges, peaking mid-span. The CDF is closed-form;
	// invert by bisection (monotone since A <= 1 keeps rate >= 0).
	span := float64(a.Span)
	lo, hi := 0.0, span
	for iter := 0; iter < 52; iter++ {
		mid := (lo + hi) / 2
		if diurnalCDF(mid, span, a.Amplitude) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return energy.Seconds((lo + hi) / 2)
}

// diurnalCDF is the normalized integral of 1 + A*sin(2*pi*t/S - pi/2)
// from 0 to t.
func diurnalCDF(t, span, amp float64) float64 {
	x := 2 * math.Pi * t / span
	// Integral of sin(x - pi/2) dx = -cos(x - pi/2); at 0 it is
	// -cos(-pi/2) = 0, so the accumulated sine term is
	// (S/2pi) * (cos(-pi/2) - cos(x - pi/2)) = -(S/2pi)*cos(x - pi/2).
	return (t - amp*span/(2*math.Pi)*math.Cos(x-math.Pi/2)) / span
}

// ParseArrival parses an -arrival flag: "none", "uniform:SPAN" or
// "diurnal:SPAN[/AMP]" (SPAN in virtual seconds; AMP defaults to
// 0.9). Unknown kinds get a typo suggestion like -placement's.
func ParseArrival(s string) (ArrivalSpec, error) {
	name, rest, hasRest := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.ToLower(strings.TrimSpace(name))
	var spec ArrivalSpec
	found := false
	for _, k := range arrivalKinds {
		if k.name == name {
			spec.Kind = k.kind
			found = true
			break
		}
	}
	if !found {
		return ArrivalSpec{}, unknownNameErr("arrival curve", name, arrivalKindNames())
	}
	if spec.Kind == ArriveNone {
		if hasRest {
			return ArrivalSpec{}, fmt.Errorf("arrival curve %q takes no parameters", name)
		}
		return spec, nil
	}
	if !hasRest || rest == "" {
		return ArrivalSpec{}, fmt.Errorf("arrival curve %q needs a span: %s:SPAN", name, name)
	}
	spanStr, ampStr, hasAmp := strings.Cut(rest, "/")
	span, err := strconv.ParseFloat(spanStr, 64)
	if err != nil || span <= 0 {
		return ArrivalSpec{}, fmt.Errorf("arrival span %q must be a positive number of virtual seconds", spanStr)
	}
	spec.Span = energy.Seconds(span)
	if spec.Kind == ArriveUniform {
		if hasAmp {
			return ArrivalSpec{}, fmt.Errorf("arrival curve %q takes no amplitude", name)
		}
		return spec, nil
	}
	spec.Amplitude = 0.9
	if hasAmp {
		amp, err := strconv.ParseFloat(ampStr, 64)
		if err != nil || amp < 0 || amp > 1 {
			return ArrivalSpec{}, fmt.Errorf("arrival amplitude %q must be in [0, 1]", ampStr)
		}
		spec.Amplitude = amp
	}
	return spec, nil
}

func arrivalKindNames() []string {
	names := make([]string, len(arrivalKinds))
	for i, k := range arrivalKinds {
		names[i] = k.name
	}
	return names
}

// DriftSpec parameterizes ChannelDrifting clients: a Markov channel
// whose up/down bias swings sinusoidally over Period steps with the
// given Depth (see radio.DriftingMarkov). The zero value means no
// preset; withDefaults fills the "overnight" shape.
type DriftSpec struct {
	// Name is the preset the spec was parsed from ("" for a
	// hand-built spec).
	Name string
	// Period is the drift cycle length in channel steps.
	Period float64
	// Depth in [0, 0.5] is the bias swing.
	Depth float64
	// Stay is the Markov stay probability.
	Stay float64
}

func (d DriftSpec) withDefaults() DriftSpec {
	if d.Period <= 0 {
		d.Period = 64
	}
	if d.Depth == 0 {
		d.Depth = 0.4
	}
	if d.Stay == 0 {
		d.Stay = 0.55
	}
	return d
}

// driftPresets maps the -drift flag names, in suggestion order.
var driftPresets = []struct {
	name string
	spec DriftSpec
}{
	{"none", DriftSpec{Name: "none"}},
	{"overnight", DriftSpec{Name: "overnight", Period: 64, Depth: 0.4, Stay: 0.55}},
	{"commute", DriftSpec{Name: "commute", Period: 16, Depth: 0.45, Stay: 0.55}},
}

// ParseDrift parses a -drift flag: a preset name ("none",
// "overnight", "commute"), with typo suggestions like -placement's.
// Any preset other than "none" also switches the channel rotation to
// drifting channels when applied through fleetsim.
func ParseDrift(s string) (DriftSpec, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, p := range driftPresets {
		if p.name == name {
			return p.spec, nil
		}
	}
	return DriftSpec{}, unknownNameErr("channel drift", name, driftPresetNames())
}

func driftPresetNames() []string {
	names := make([]string, len(driftPresets))
	for i, p := range driftPresets {
		names[i] = p.name
	}
	return names
}

// unknownNameErr builds the -placement-style error for a bad name:
// the valid set, plus a "did you mean" when an entry is within edit
// distance 2.
func unknownNameErr(what, got string, valid []string) error {
	joined := strings.Join(valid, ", ")
	if sug := closestName(got, valid); sug != "" {
		return fmt.Errorf("fleet: unknown %s %q — did you mean %q? (valid: %s)", what, got, sug, joined)
	}
	return fmt.Errorf("fleet: unknown %s %q (valid: %s)", what, got, joined)
}
