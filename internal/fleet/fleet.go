// Package fleet simulates many handsets sharing a pool of offload
// servers.
//
// The paper evaluates a single mobile device against a resource-rich
// server; a deployed system serves a fleet against a pool of them.
// Each simulated client is a full core.Client — its own channel
// trace, fault model, strategy, workload mix and seeded RNG —
// attached to per-client sessions on every backend of a ServerPool
// (see pool.go), each backend a core.Server fronted by the session
// layer's bounded worker pool. Requests map to backends through a
// pluggable placement policy (see placement.go) and contention is
// resolved in virtual time by an event-driven conservative
// discrete-event engine (see engine.go), so a fleet run is
// deterministic for a given Spec: the same seed produces
// byte-identical results whether the clients simulate on one OS
// thread or sixteen, for any server count and placement.
package fleet

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/obs"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

// Workload is the application every client in the fleet runs: the
// shared program the server also executes, the profiled target, and
// the size population clients draw their inputs from.
type Workload struct {
	Name   string
	Prog   *bytecode.Program
	Target *core.Target
	Prof   *core.Profile
	Sizes  []int
}

// WorkloadOf adapts a prepared experiment environment.
func WorkloadOf(env *experiments.Env) Workload {
	return Workload{
		Name:   env.App.Name,
		Prog:   env.Prog,
		Target: env.Target,
		Prof:   env.Prof,
		Sizes:  env.App.ScenarioSizes,
	}
}

// ChannelKind selects a client's channel process.
type ChannelKind int

const (
	// ChannelFixed pins the channel to Class 4 (best bandwidth).
	ChannelFixed ChannelKind = iota
	// ChannelUniform redraws the class uniformly each execution.
	ChannelUniform
	// ChannelMarkov walks neighbouring classes from Class 3.
	ChannelMarkov
	// ChannelDrifting walks neighbouring classes with a sinusoidal
	// up/down bias over the drift cycle (see DriftSpec) — the Markov
	// channel made non-stationary.
	ChannelDrifting
)

func (k ChannelKind) String() string {
	switch k {
	case ChannelFixed:
		return "fixed"
	case ChannelUniform:
		return "uniform"
	case ChannelMarkov:
		return "markov"
	case ChannelDrifting:
		return "drifting"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(k))
	}
}

// ClientSpec describes one simulated handset.
type ClientSpec struct {
	ID       string
	Strategy core.Strategy
	Channel  ChannelKind
	// Class pins ChannelFixed's class (zero means Class 4) and seeds
	// ChannelMarkov's starting class (zero means Class 3).
	Class radio.Class
	// Outage > 0 attaches a Gilbert-Elliott fault model with the given
	// stationary loss fraction and mean burst length.
	Outage, Burst float64
	// Executions is how many application executions the client runs;
	// Sizes, when set, overrides the workload's size population (the
	// client's personal mix).
	Executions int
	Sizes      []int
	Seed       uint64
}

// Spec is one fleet run.
type Spec struct {
	Workload Workload
	// Clients lists the cohort explicitly; Population describes it
	// lazily (preferred at scale — client specs, arrival times and
	// channel drift expand on demand from the population seed). Exactly
	// one of the two must be set.
	Clients    []ClientSpec
	Population *Population
	// ResultSink, when set, streams each ClientResult as the cohort
	// retires (in deterministic arrival order) instead of materializing
	// Result.Clients — the only way a 100k-client run fits in memory.
	// The sink runs on simulation goroutines under the emitter's lock:
	// keep it cheap and do not call back into the fleet.
	ResultSink func(ClientResult)
	// Server shapes each backend server's admission control (zero
	// values mean the session-layer defaults). With Servers > 1 every
	// backend gets this worker/queue budget.
	Server core.SessionConfig
	// Servers is how many backend servers the pool runs; 0 or 1 means
	// a single server (the paper's shape).
	Servers int
	// Placement selects how requests map to backends (default
	// PlaceCheapest — honour the clients' per-backend pricing hints).
	Placement Placement
	// FailAt, when non-nil, takes backend i down at virtual time
	// FailAt[i] (0 = never): its queued requests flush with
	// connection-lost errors and placement stops considering it.
	// Shorthand for Chaos[i].FailAt; a Chaos entry for the same
	// backend takes precedence.
	FailAt []energy.Seconds
	// Chaos, when non-nil, injects backend i's fault shapes from
	// Chaos[i]: hard crashes, flapping crash/restart cycles, brown-out
	// service-rate degradation, and per-backend Gilbert–Elliott loss
	// (see BackendChaos). All faults are scheduled and judged inside
	// the engine's event heap, so runs stay byte-identical under any
	// Concurrency.
	Chaos []BackendChaos
	// Breakers selects the clients' resilience scope: per-backend
	// breakers (default), one global link breaker (PR 6's shape), or
	// none.
	Breakers BreakerMode
	// Breaker, when non-nil, is the prototype circuit breaker every
	// client starts from (threshold, cooldowns, probe size); nil keeps
	// core's defaults. Each client gets its own copy. Ignored with
	// BreakersOff.
	Breaker *core.Breaker
	// Concurrency bounds how many clients simulate in parallel; 0
	// means GOMAXPROCS. It never changes the results, only the
	// wall-clock time (the determinism test holds the engine to that).
	Concurrency int
	// Telemetry, when non-nil, records a windowed virtual-time series
	// of the run (see TelemetrySpec and telemetry.go); the result's
	// Series field carries it. Like everything else, byte-identical
	// under any Concurrency.
	Telemetry *TelemetrySpec
}

// MixedFleet builds a fleet of n clients cycling through the given
// strategies and the three channel kinds, with a lossy link on every
// fifth client — a representative population for capacity sweeps.
//
// Deprecated: MixedFleet materializes every ClientSpec up front. Use
// NewPopulation (whose default options reproduce exactly this cohort)
// and set Spec.Population instead; MixedFleet remains as a thin shim
// over it.
func MixedFleet(w Workload, n int, strategies []core.Strategy, execs int,
	server core.SessionConfig, seed uint64) Spec {

	pop := NewPopulation(n, WithSeed(seed), WithStrategyMix(strategies...), WithExecutions(execs))
	return Spec{Workload: w, Clients: pop.ClientSpecs(), Server: server}
}

// ClientResult is one handset's outcome.
type ClientResult struct {
	ID       string
	Strategy core.Strategy
	// Energy and Time are the client's totals over all executions.
	Energy energy.Joules
	Time   energy.Seconds
	Stats  core.Stats
	// Session counts the client's server-side requests and cache hits;
	// Served/Shed are the engine's admission outcomes for the client.
	Session      core.SessionStats
	Served, Shed int
	// AvgWait and MaxWait summarize the virtual time the client's
	// served requests spent in the admission queue.
	AvgWait, MaxWait energy.Seconds
	// Err is set when the client's run failed; the rest of the fleet
	// still completes.
	Err string
}

// ServerResult aggregates admission outcomes across the whole pool.
// Workers and QueueCap are per backend (every backend gets the same
// budget); Served/Shed sum over backends and MaxQueueDepth is the
// worst single backend queue.
type ServerResult struct {
	Workers, QueueCap           int
	Served, Shed, MaxQueueDepth int
	CacheHits                   int
	// WaitDist summarizes the per-served-request queue waits and
	// DepthDist the queue depths seen by requests that had to wait,
	// both as streaming-quantile snapshots fed in admission order
	// (deterministic, fixed-size — these replaced unbounded slices).
	WaitDist, DepthDist obs.SketchSnapshot
}

// BackendResult is one backend server's admission outcomes.
type BackendResult struct {
	ID                          string
	Served, Shed, MaxQueueDepth int
	CacheHits                   int
	// AvgWait is the mean virtual queue wait of the backend's served
	// requests.
	AvgWait energy.Seconds
	// Down reports whether the backend was down when the run ended (a
	// scheduled failure fired and no restart followed).
	Down bool
	// Chaos names the fault shapes injected on the backend ("none"
	// without injection). Flaps counts its crash events, ChaosLosses
	// exchanges eaten by its loss process, Slowed requests served at
	// the brown-out rate, and Warmups sessions whose cache was
	// pre-loaded here from a dead backend after re-homing.
	Chaos                               string
	Flaps, ChaosLosses, Slowed, Warmups int
}

// Totals aggregates a cohort's outcomes without per-client records —
// what a streamed run keeps in memory. Sums accumulate in
// deterministic arrival order, so they are byte-stable across
// concurrency in either mode.
type Totals struct {
	// Clients is the cohort size; Errors how many clients failed.
	Clients, Errors int
	// Energy sums the fleet's client energies; MaxTime is the cohort
	// makespan (latest client virtual completion time).
	Energy  energy.Joules
	MaxTime energy.Seconds
	// Failovers and Fallbacks sum the respective client counters.
	Failovers, Fallbacks int
}

// add folds one retiring client into the totals.
func (t *Totals) add(cr *ClientResult) {
	t.Clients++
	t.Energy += cr.Energy
	if cr.Time > t.MaxTime {
		t.MaxTime = cr.Time
	}
	t.Failovers += cr.Stats.Failovers
	t.Fallbacks += cr.Stats.Fallbacks
	if cr.Err != "" {
		t.Errors++
	}
}

// Result is a completed fleet run.
type Result struct {
	Workload  string
	Placement Placement
	// Clients holds per-client outcomes in client-index order. It is
	// nil when the spec streamed results through ResultSink; Totals
	// still aggregates the whole cohort then.
	Clients []ClientResult
	Totals  Totals
	Server  ServerResult
	// Backends holds per-backend outcomes, in placement order (one
	// entry even for a single-server run).
	Backends []BackendResult
	// Series is the windowed virtual-time telemetry of the run; nil
	// unless the spec set Telemetry.
	Series *obs.TimeSeries
}

// Run simulates the fleet to completion. Clients are launched on
// demand as the simulation frontier needs them (see engine.go) and
// retired — sessions closed, per-client state folded and released —
// as they finish, so peak memory tracks the live cohort, not the
// whole fleet.
func Run(spec Spec) (*Result, error) {
	clientAt, n, err := spec.cohort()
	if err != nil {
		return nil, err
	}
	w := spec.Workload
	if w.Prog == nil || w.Target == nil || w.Prof == nil {
		return nil, fmt.Errorf("fleet: incomplete workload %q", w.Name)
	}
	fp, err := core.NewFleetProgram(w.Prog, w.Target, w.Prof)
	if err != nil {
		return nil, err
	}
	chaos, err := mergeChaos(spec)
	if err != nil {
		return nil, err
	}
	var arrival ArrivalSpec
	drift := DriftSpec{}.withDefaults()
	if spec.Population != nil {
		arrival = spec.Population.arrival
		if err := arrival.validate(); err != nil {
			return nil, err
		}
		drift = spec.Population.drift.withDefaults()
	}
	pool := NewServerPool(w.Prog, spec.Servers, spec.Server, chaos)
	pool.alloc(n)
	var rec *tsRec
	var fold *clientFold
	if spec.Telemetry != nil {
		if spec.Telemetry.Tick <= 0 {
			return nil, fmt.Errorf("fleet: telemetry tick %v must be positive", spec.Telemetry.Tick)
		}
		rec = newTSRec(spec.Telemetry, pool)
		fold = newClientFold(spec.Telemetry.Tick)
	}

	// Arrival times are pure functions of the curve and each client's
	// seed, so the engine knows every unlaunched client's clock bound
	// without constructing it. The (arrival, index) order drives both
	// launches and result retirement.
	starts := make([]energy.Seconds, n)
	if arrival.Kind != ArriveNone {
		for i := range starts {
			starts[i] = arrival.startTime(clientAt(i).Seed)
		}
	}
	order := arrivalOrder(starts)

	eng := newEngine(pool, spec.Placement, starts, order, rec)
	conc := spec.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	g := newGate(conc)
	eng.ahead = 4 * conc
	if eng.ahead < 64 {
		eng.ahead = 64
	}

	em := &emitter{
		order:   order,
		records: make([]ClientResult, n),
		done:    make([]bool, n),
		sink:    spec.ResultSink,
		fold:    fold,
	}
	if fold != nil {
		em.accs = make([]*clientAcc, n)
	}

	var wg sync.WaitGroup
	wg.Add(n)
	eng.launch = func(idx int) {
		defer wg.Done()
		cs := clientAt(idx)
		fs := &eng.sessions[idx]
		// The compute slot is held while simulating and released while
		// blocked in the engine (muxRemote); the session must retire
		// even when the client errors out, or the engine would wait on
		// its clock bound forever.
		g.acquire()
		pool.openAt(idx, cs.ID)
		var acc *clientAcc
		var opts []core.Option
		if rec != nil {
			acc = newClientAcc(float64(spec.Telemetry.Tick))
			opts = append(opts, core.WithSink(acc))
		}
		if cs.Outage > 0 {
			opts = append(opts, core.WithFaultModel(radio.NewGilbertElliott(cs.Outage, cs.Burst)))
		}
		switch spec.Breakers {
		case BreakersGlobal:
			opts = append(opts, core.WithBackendBreakers(false))
		case BreakersOff:
			opts = append(opts, core.WithBreaker(nil))
		}
		if spec.Breaker != nil && spec.Breakers != BreakersOff {
			// Each client owns its copy of the prototype's tuning.
			proto := *spec.Breaker
			opts = append(opts, core.WithBreaker(&core.Breaker{
				Threshold:   proto.Threshold,
				Cooldown:    proto.Cooldown,
				MaxCooldown: proto.MaxCooldown,
				ProbeBytes:  proto.ProbeBytes,
			}))
		}
		c := core.New(core.ClientConfig{
			ID:       cs.ID,
			Shared:   fp,
			Server:   &muxRemote{e: eng, s: fs, gate: g},
			Channel:  buildChannel(cs, drift),
			Strategy: cs.Strategy,
			Seed:     mix(cs.Seed, 0x11),
		}, opts...)
		cerr := runClient(c, w, cs, starts[idx], fp)
		// Harvest before the sessions close, then retire: the engine
		// drops the clock bound, the pool releases the per-backend
		// sessions, and the emitter folds + streams the record.
		cr := ClientResult{
			ID:       cs.ID,
			Strategy: cs.Strategy,
			Energy:   c.Energy(),
			Time:     c.Clock,
			Stats:    *c.Stats,
			Session:  pool.sessionStats(idx),
			Served:   fs.served,
			Shed:     fs.shed,
			MaxWait:  fs.maxWait,
		}
		if fs.served > 0 {
			cr.AvgWait = fs.waitSum / energy.Seconds(fs.served)
		}
		if cerr != nil {
			cr.Err = cerr.Error()
		}
		eng.finish(fs)
		g.release()
		pool.release(idx, cs.ID)
		em.emit(idx, cr, acc)
	}
	eng.kickoff()
	wg.Wait()

	res := &Result{
		Workload:  w.Name,
		Placement: spec.Placement,
		Totals:    em.totals,
	}
	if spec.ResultSink == nil {
		res.Clients = em.records
	}
	res.Server = ServerResult{
		Workers:       pool.backends[0].workers,
		QueueCap:      pool.backends[0].queueCap,
		Served:        eng.served,
		Shed:          eng.shed,
		MaxQueueDepth: eng.maxDepth,
		CacheHits:     pool.cacheHits(),
		WaitDist:      eng.waitSketch.Snapshot(),
		DepthDist:     eng.depthSketch.Snapshot(),
	}
	if rec != nil {
		fold.mergeInto(rec.ts)
		res.Series = rec.ts
	}
	for _, b := range pool.backends {
		br := BackendResult{
			ID:            b.id,
			Served:        b.served,
			Shed:          b.shed,
			MaxQueueDepth: b.maxDepth,
			CacheHits:     b.sess.Stats().CacheHits,
			Down:          b.down,
			Chaos:         b.chaos.String(),
			Flaps:         b.flaps,
			ChaosLosses:   b.chaosLosses,
			Slowed:        b.slowed,
			Warmups:       b.warmups,
		}
		if b.served > 0 {
			br.AvgWait = b.waitSum / energy.Seconds(b.served)
		}
		res.Backends = append(res.Backends, br)
	}
	return res, nil
}

// cohort resolves the spec's client source: an explicit slice or a
// lazy population, never both.
func (spec *Spec) cohort() (func(int) ClientSpec, int, error) {
	switch {
	case len(spec.Clients) > 0 && spec.Population != nil:
		return nil, 0, fmt.Errorf("fleet: spec sets both Clients and Population")
	case len(spec.Clients) > 0:
		cl := spec.Clients
		return func(i int) ClientSpec { return cl[i] }, len(cl), nil
	case spec.Population != nil && spec.Population.N() > 0:
		return spec.Population.ClientAt, spec.Population.N(), nil
	default:
		return nil, 0, fmt.Errorf("fleet: no clients in spec")
	}
}

// arrivalOrder returns the client indices sorted by (arrival time,
// index) — the order clients launch and their results retire in.
func arrivalOrder(starts []energy.Seconds) []int32 {
	order := make([]int32, len(starts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if starts[ia] != starts[ib] {
			return starts[ia] < starts[ib]
		}
		return ia < ib
	})
	return order
}

// emitter retires client results in deterministic arrival order,
// whatever order the goroutines actually finish in: records park in
// the out-of-order buffer until every earlier client has retired,
// then fold (telemetry), accumulate (totals) and stream (sink) in
// order. With a sink attached, emitted records are dropped
// immediately — nothing accumulates across a 100k run.
type emitter struct {
	mu      sync.Mutex
	order   []int32
	next    int
	records []ClientResult
	accs    []*clientAcc
	done    []bool
	sink    func(ClientResult)
	fold    *clientFold
	totals  Totals
}

func (em *emitter) emit(idx int, cr ClientResult, acc *clientAcc) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.records[idx] = cr
	em.done[idx] = true
	if em.accs != nil {
		em.accs[idx] = acc
	}
	for em.next < len(em.order) {
		i := em.order[em.next]
		if !em.done[i] {
			break
		}
		em.next++
		if em.fold != nil {
			em.fold.fold(em.accs[i], int(i))
			em.accs[i] = nil
		}
		em.totals.add(&em.records[i])
		if em.sink != nil {
			em.sink(em.records[i])
			em.records[i] = ClientResult{}
		}
	}
}

// mergeChaos folds the legacy FailAt shorthand into the per-backend
// chaos specs and validates them against the pool size.
func mergeChaos(spec Spec) ([]BackendChaos, error) {
	servers := spec.Servers
	if servers < 1 {
		servers = 1
	}
	if len(spec.FailAt) > servers || len(spec.Chaos) > servers {
		return nil, fmt.Errorf("fleet: chaos specs for %d backends but pool has %d",
			max(len(spec.FailAt), len(spec.Chaos)), servers)
	}
	if len(spec.FailAt) == 0 {
		return spec.Chaos, nil
	}
	chaos := make([]BackendChaos, servers)
	copy(chaos, spec.Chaos)
	for i, t := range spec.FailAt {
		if t > 0 && !chaos[i].active() {
			chaos[i].FailAt = t
		}
	}
	return chaos, nil
}

// runClient simulates one handset to completion. The shared fleet
// program skips per-client compilation; a positive start offsets the
// client's clock so it joins the arrival curve's diurnal shape.
func runClient(c *core.Client, w Workload, cs ClientSpec, start energy.Seconds, fp *core.FleetProgram) error {
	if err := c.RegisterShared(fp); err != nil {
		return err
	}
	if start > 0 {
		c.Clock = start
	}
	sizes := cs.Sizes
	if len(sizes) == 0 {
		sizes = w.Sizes
	}
	if len(sizes) == 0 {
		return fmt.Errorf("fleet: client %s has no input sizes", cs.ID)
	}
	sizeR := rng.New(mix(cs.Seed, 0x51))
	for run := 0; run < cs.Executions; run++ {
		c.NewExecution()
		size := sizes[sizeR.Intn(len(sizes))]
		// Inputs are fixed per (workload, size): identical offloads
		// from repeated sizes exercise the session caches.
		args, err := w.Target.MakeArgs(c.VM, size, rng.New(inputSeed(w.Name, size)))
		if err != nil {
			return err
		}
		if _, err := c.Invoke(context.Background(), w.Target.Class, w.Target.Method, args); err != nil {
			return err
		}
		c.StepChannel()
	}
	c.SyncStats()
	return nil
}

func buildChannel(cs ClientSpec, drift DriftSpec) radio.Channel {
	switch cs.Channel {
	case ChannelUniform:
		return radio.UniformChannel(rng.New(mix(cs.Seed, 0x21)))
	case ChannelMarkov:
		start := cs.Class
		if start == 0 {
			start = radio.Class3
		}
		return radio.NewMarkov(start, 0.55, rng.New(mix(cs.Seed, 0x31)))
	case ChannelDrifting:
		start := cs.Class
		if start == 0 {
			start = radio.Class3
		}
		// The per-client phase staggers the diurnal bias so the fleet's
		// channels do not swing in lockstep.
		r := rng.New(mix(cs.Seed, 0x61))
		phase := 2 * math.Pi * r.Float64()
		return radio.NewDriftingMarkov(start, drift.Stay, drift.Period, drift.Depth, phase, r)
	default:
		cls := cs.Class
		if cls == 0 {
			cls = radio.Class4
		}
		return radio.Fixed{Cls: cls}
	}
}

// mix derives independent sub-seeds (splitmix64 finalizer).
func mix(seed, salt uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(salt+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// inputSeed fixes input content per (workload, size), as the
// experiment drivers do.
func inputSeed(name string, size int) uint64 {
	h := uint64(0xCBF29CE484222325)
	for _, c := range name {
		h = h*1099511628211 ^ uint64(c)
	}
	return h*2654435761 + uint64(size)
}

// Registry renders the run through the observability seam: per-client
// energy/time gauges, admission counters, and the server's queue
// wait/depth quantiles (from the engine's streaming P² sketches).
// Built post-run in client order, so its snapshot is deterministic.
func (r *Result) Registry() *obs.Registry {
	reg := obs.NewRegistry()
	eGauge := reg.Gauge("fleet_client_energy_joules", "total energy per simulated handset")
	tGauge := reg.Gauge("fleet_client_time_seconds", "virtual completion time per handset")
	served := reg.Counter("fleet_served_total", "requests that obtained a server worker")
	sheds := reg.Counter("fleet_sheds_total", "requests shed by server admission control")
	hits := reg.Counter("fleet_session_cache_hits_total", "requests answered from a session's serialization cache")
	for _, c := range r.Clients {
		labels := []string{"client", c.ID, "strategy", c.Strategy.String()}
		eGauge.Set(float64(c.Energy), labels...)
		tGauge.Set(float64(c.Time), labels...)
		if c.Served > 0 {
			served.Add(float64(c.Served), labels...)
		}
		if c.Shed > 0 {
			sheds.Add(float64(c.Shed), labels...)
		}
		if c.Session.CacheHits > 0 {
			hits.Add(float64(c.Session.CacheHits), labels...)
		}
	}
	exportDist(reg, "fleet_queue_wait_seconds", "virtual queue wait quantiles of served requests", r.Server.WaitDist)
	exportDist(reg, "fleet_queue_depth", "queue depth quantiles seen by requests that waited", r.Server.DepthDist)
	failovers := reg.Counter("fleet_failovers_total", "invocations re-placed on a surviving backend after an attributed loss")
	for _, c := range r.Clients {
		if c.Stats.Failovers > 0 {
			failovers.Add(float64(c.Stats.Failovers), "client", c.ID, "strategy", c.Strategy.String())
		}
	}
	bServed := reg.Counter("fleet_backend_served_total", "requests served per backend")
	bSheds := reg.Counter("fleet_backend_sheds_total", "requests shed per backend")
	bDepth := reg.Gauge("fleet_backend_queue_depth_max", "queue high-water mark per backend")
	bDown := reg.Gauge("fleet_backend_down", "1 when the backend failed during the run")
	bFlaps := reg.Counter("fleet_backend_flaps_total", "chaos crash events per backend")
	bLosses := reg.Counter("fleet_backend_chaos_losses_total", "exchanges eaten by the backend's loss process")
	bSlowed := reg.Counter("fleet_backend_slowed_total", "requests served at the brown-out service rate")
	bWarm := reg.Counter("fleet_backend_warmups_total", "session caches pre-loaded after failover re-homing")
	for _, b := range r.Backends {
		labels := []string{"backend", b.ID, "placement", r.Placement.String()}
		if b.Served > 0 {
			bServed.Add(float64(b.Served), labels...)
		}
		if b.Shed > 0 {
			bSheds.Add(float64(b.Shed), labels...)
		}
		bDepth.Set(float64(b.MaxQueueDepth), labels...)
		if b.Down {
			bDown.Set(1, labels...)
		}
		if b.Flaps > 0 {
			bFlaps.Add(float64(b.Flaps), labels...)
		}
		if b.ChaosLosses > 0 {
			bLosses.Add(float64(b.ChaosLosses), labels...)
		}
		if b.Slowed > 0 {
			bSlowed.Add(float64(b.Slowed), labels...)
		}
		if b.Warmups > 0 {
			bWarm.Add(float64(b.Warmups), labels...)
		}
	}
	return reg
}

// exportDist renders a sketch snapshot as quantile-labeled gauges
// plus _count/_max companions — the post-run view of a distribution
// whose samples were never retained.
func exportDist(reg *obs.Registry, name, help string, d obs.SketchSnapshot) {
	g := reg.Gauge(name, help)
	for _, qv := range d.Quantiles {
		g.Set(qv.Value, "quantile", strconv.FormatFloat(qv.Quantile, 'g', -1, 64))
	}
	reg.Gauge(name+"_count", "samples behind "+name).Set(float64(d.Count))
	reg.Gauge(name+"_max", "largest sample behind "+name).Set(d.Max)
}

// TotalFailovers sums in-flight re-placements after attributed losses
// across the fleet's clients.
func (r *Result) TotalFailovers() int { return r.Totals.Failovers }

// TotalFallbacks sums connection-loss local fallbacks across the
// fleet's clients — the work the pool pushed back to the handsets.
func (r *Result) TotalFallbacks() int { return r.Totals.Fallbacks }

// TotalWarmups sums failover cache warmups across backends.
func (r *Result) TotalWarmups() int {
	total := 0
	for _, b := range r.Backends {
		total += b.Warmups
	}
	return total
}

// TotalEnergy sums the fleet's client energies.
func (r *Result) TotalEnergy() energy.Joules { return r.Totals.Energy }

// ShedRate is the fraction of admission decisions that shed.
func (r *Result) ShedRate() float64 {
	total := r.Server.Served + r.Server.Shed
	if total == 0 {
		return 0
	}
	return float64(r.Server.Shed) / float64(total)
}

// WriteSummary renders the per-client table (when per-client records
// were retained), the pool aggregate and — for multi-server runs —
// the per-backend breakdown. Streamed runs (ResultSink set) print the
// aggregates only.
func (r *Result) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "fleet of %d clients on %s — server workers=%d queue=%d",
		r.Totals.Clients, r.Workload, r.Server.Workers, r.Server.QueueCap)
	if len(r.Backends) > 1 {
		fmt.Fprintf(w, " servers=%d placement=%s", len(r.Backends), r.Placement)
	}
	fmt.Fprintf(w, "\n\n")
	if r.Clients == nil {
		fmt.Fprintf(w, "(per-client records streamed; aggregates only)\n")
	} else {
		fmt.Fprintf(w, "%-8s %-5s %12s %10s | %5s %5s %5s %5s | %10s  %s\n",
			"client", "strat", "energy", "time", "reqs", "shed", "hits", "fall", "avg wait", "modes [I L1 L2 L3 R]")
		for _, c := range r.Clients {
			fmt.Fprintf(w, "%-8s %-5v %12v %9.2fs | %5d %5d %5d %5d | %9.2fms  %v",
				c.ID, c.Strategy, c.Energy, float64(c.Time),
				c.Served, c.Shed, c.Session.CacheHits, c.Stats.Fallbacks,
				float64(c.AvgWait)*1e3, c.Stats.ModeCounts)
			if c.Err != "" {
				fmt.Fprintf(w, "  ERROR: %s", c.Err)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\ntotal energy %v; makespan %.4fs; server served %d, shed %d (rate %.1f%%), max queue depth %d, cache hits %d",
		r.TotalEnergy(), float64(r.Totals.MaxTime), r.Server.Served, r.Server.Shed, 100*r.ShedRate(),
		r.Server.MaxQueueDepth, r.Server.CacheHits)
	if f := r.TotalFailovers(); f > 0 {
		fmt.Fprintf(w, ", failovers %d", f)
	}
	if wu := r.TotalWarmups(); wu > 0 {
		fmt.Fprintf(w, ", warmups %d", wu)
	}
	fmt.Fprintln(w)
	if len(r.Backends) > 1 {
		for _, b := range r.Backends {
			fmt.Fprintf(w, "  backend %s: served %d, shed %d, max depth %d, avg wait %.2fms, cache hits %d",
				b.ID, b.Served, b.Shed, b.MaxQueueDepth, float64(b.AvgWait)*1e3, b.CacheHits)
			if b.Chaos != "none" {
				fmt.Fprintf(w, ", chaos %s", b.Chaos)
				if b.Flaps > 0 {
					fmt.Fprintf(w, " (crashes %d)", b.Flaps)
				}
				if b.ChaosLosses > 0 {
					fmt.Fprintf(w, " (losses %d)", b.ChaosLosses)
				}
				if b.Slowed > 0 {
					fmt.Fprintf(w, " (slowed %d)", b.Slowed)
				}
			}
			if b.Warmups > 0 {
				fmt.Fprintf(w, ", warmups %d", b.Warmups)
			}
			if b.Down {
				fmt.Fprintf(w, "  DOWN")
			}
			fmt.Fprintln(w)
		}
	}
}
