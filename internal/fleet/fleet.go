// Package fleet simulates many handsets sharing a pool of offload
// servers.
//
// The paper evaluates a single mobile device against a resource-rich
// server; a deployed system serves a fleet against a pool of them.
// Each simulated client is a full core.Client — its own channel
// trace, fault model, strategy, workload mix and seeded RNG —
// attached to per-client sessions on every backend of a ServerPool
// (see pool.go), each backend a core.Server fronted by the session
// layer's bounded worker pool. Requests map to backends through a
// pluggable placement policy (see placement.go) and contention is
// resolved in virtual time by an event-driven conservative
// discrete-event engine (see engine.go), so a fleet run is
// deterministic for a given Spec: the same seed produces
// byte-identical results whether the clients simulate on one OS
// thread or sixteen, for any server count and placement.
package fleet

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/experiments"
	"greenvm/internal/obs"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
)

// Workload is the application every client in the fleet runs: the
// shared program the server also executes, the profiled target, and
// the size population clients draw their inputs from.
type Workload struct {
	Name   string
	Prog   *bytecode.Program
	Target *core.Target
	Prof   *core.Profile
	Sizes  []int
}

// WorkloadOf adapts a prepared experiment environment.
func WorkloadOf(env *experiments.Env) Workload {
	return Workload{
		Name:   env.App.Name,
		Prog:   env.Prog,
		Target: env.Target,
		Prof:   env.Prof,
		Sizes:  env.App.ScenarioSizes,
	}
}

// ChannelKind selects a client's channel process.
type ChannelKind int

const (
	// ChannelFixed pins the channel to Class 4 (best bandwidth).
	ChannelFixed ChannelKind = iota
	// ChannelUniform redraws the class uniformly each execution.
	ChannelUniform
	// ChannelMarkov walks neighbouring classes from Class 3.
	ChannelMarkov
)

func (k ChannelKind) String() string {
	switch k {
	case ChannelFixed:
		return "fixed"
	case ChannelUniform:
		return "uniform"
	case ChannelMarkov:
		return "markov"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(k))
	}
}

// ClientSpec describes one simulated handset.
type ClientSpec struct {
	ID       string
	Strategy core.Strategy
	Channel  ChannelKind
	// Class pins ChannelFixed's class (zero means Class 4) and seeds
	// ChannelMarkov's starting class (zero means Class 3).
	Class radio.Class
	// Outage > 0 attaches a Gilbert-Elliott fault model with the given
	// stationary loss fraction and mean burst length.
	Outage, Burst float64
	// Executions is how many application executions the client runs;
	// Sizes, when set, overrides the workload's size population (the
	// client's personal mix).
	Executions int
	Sizes      []int
	Seed       uint64
}

// Spec is one fleet run.
type Spec struct {
	Workload Workload
	Clients  []ClientSpec
	// Server shapes each backend server's admission control (zero
	// values mean the session-layer defaults). With Servers > 1 every
	// backend gets this worker/queue budget.
	Server core.SessionConfig
	// Servers is how many backend servers the pool runs; 0 or 1 means
	// a single server (the paper's shape).
	Servers int
	// Placement selects how requests map to backends (default
	// PlaceCheapest — honour the clients' per-backend pricing hints).
	Placement Placement
	// FailAt, when non-nil, takes backend i down at virtual time
	// FailAt[i] (0 = never): its queued requests flush with
	// connection-lost errors and placement stops considering it.
	// Shorthand for Chaos[i].FailAt; a Chaos entry for the same
	// backend takes precedence.
	FailAt []energy.Seconds
	// Chaos, when non-nil, injects backend i's fault shapes from
	// Chaos[i]: hard crashes, flapping crash/restart cycles, brown-out
	// service-rate degradation, and per-backend Gilbert–Elliott loss
	// (see BackendChaos). All faults are scheduled and judged inside
	// the engine's event heap, so runs stay byte-identical under any
	// Concurrency.
	Chaos []BackendChaos
	// Breakers selects the clients' resilience scope: per-backend
	// breakers (default), one global link breaker (PR 6's shape), or
	// none.
	Breakers BreakerMode
	// Breaker, when non-nil, is the prototype circuit breaker every
	// client starts from (threshold, cooldowns, probe size); nil keeps
	// core's defaults. Each client gets its own copy. Ignored with
	// BreakersOff.
	Breaker *core.Breaker
	// Concurrency bounds how many clients simulate in parallel; 0
	// means GOMAXPROCS. It never changes the results, only the
	// wall-clock time (the determinism test holds the engine to that).
	Concurrency int
	// Telemetry, when non-nil, records a windowed virtual-time series
	// of the run (see TelemetrySpec and telemetry.go); the result's
	// Series field carries it. Like everything else, byte-identical
	// under any Concurrency.
	Telemetry *TelemetrySpec
}

// MixedFleet builds a fleet of n clients cycling through the given
// strategies and the three channel kinds, with a lossy link on every
// fifth client — a representative population for capacity sweeps.
func MixedFleet(w Workload, n int, strategies []core.Strategy, execs int,
	server core.SessionConfig, seed uint64) Spec {

	clients := make([]ClientSpec, n)
	for i := range clients {
		cs := ClientSpec{
			ID:         fmt.Sprintf("pda-%02d", i),
			Strategy:   strategies[i%len(strategies)],
			Channel:    ChannelKind(i % 3),
			Executions: execs,
			Seed:       mix(seed, uint64(i)),
		}
		if i%5 == 4 {
			cs.Outage, cs.Burst = 0.15, 3
		}
		clients[i] = cs
	}
	return Spec{Workload: w, Clients: clients, Server: server}
}

// ClientResult is one handset's outcome.
type ClientResult struct {
	ID       string
	Strategy core.Strategy
	// Energy and Time are the client's totals over all executions.
	Energy energy.Joules
	Time   energy.Seconds
	Stats  core.Stats
	// Session counts the client's server-side requests and cache hits;
	// Served/Shed are the engine's admission outcomes for the client.
	Session      core.SessionStats
	Served, Shed int
	// AvgWait and MaxWait summarize the virtual time the client's
	// served requests spent in the admission queue.
	AvgWait, MaxWait energy.Seconds
	// Err is set when the client's run failed; the rest of the fleet
	// still completes.
	Err string
}

// ServerResult aggregates admission outcomes across the whole pool.
// Workers and QueueCap are per backend (every backend gets the same
// budget); Served/Shed sum over backends and MaxQueueDepth is the
// worst single backend queue.
type ServerResult struct {
	Workers, QueueCap           int
	Served, Shed, MaxQueueDepth int
	CacheHits                   int
	// WaitDist summarizes the per-served-request queue waits and
	// DepthDist the queue depths seen by requests that had to wait,
	// both as streaming-quantile snapshots fed in admission order
	// (deterministic, fixed-size — these replaced unbounded slices).
	WaitDist, DepthDist obs.SketchSnapshot
}

// BackendResult is one backend server's admission outcomes.
type BackendResult struct {
	ID                          string
	Served, Shed, MaxQueueDepth int
	CacheHits                   int
	// AvgWait is the mean virtual queue wait of the backend's served
	// requests.
	AvgWait energy.Seconds
	// Down reports whether the backend was down when the run ended (a
	// scheduled failure fired and no restart followed).
	Down bool
	// Chaos names the fault shapes injected on the backend ("none"
	// without injection). Flaps counts its crash events, ChaosLosses
	// exchanges eaten by its loss process, Slowed requests served at
	// the brown-out rate, and Warmups sessions whose cache was
	// pre-loaded here from a dead backend after re-homing.
	Chaos                               string
	Flaps, ChaosLosses, Slowed, Warmups int
}

// Result is a completed fleet run.
type Result struct {
	Workload  string
	Placement Placement
	Clients   []ClientResult
	Server    ServerResult
	// Backends holds per-backend outcomes, in placement order (one
	// entry even for a single-server run).
	Backends []BackendResult
	// Series is the windowed virtual-time telemetry of the run; nil
	// unless the spec set Telemetry.
	Series *obs.TimeSeries
}

// Run simulates the fleet to completion.
func Run(spec Spec) (*Result, error) {
	if len(spec.Clients) == 0 {
		return nil, fmt.Errorf("fleet: no clients in spec")
	}
	w := spec.Workload
	if w.Prog == nil || w.Target == nil || w.Prof == nil {
		return nil, fmt.Errorf("fleet: incomplete workload %q", w.Name)
	}
	chaos, err := mergeChaos(spec)
	if err != nil {
		return nil, err
	}
	pool := NewServerPool(w.Prog, spec.Servers, spec.Server, chaos)
	var rec *tsRec
	if spec.Telemetry != nil {
		if spec.Telemetry.Tick <= 0 {
			return nil, fmt.Errorf("fleet: telemetry tick %v must be positive", spec.Telemetry.Tick)
		}
		rec = newTSRec(spec.Telemetry, pool)
	}
	eng := newEngine(pool, spec.Placement, len(spec.Clients), rec)
	conc := spec.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	g := newGate(conc)

	// Build every client before launching any: addSession fixes the
	// deterministic client order the engine breaks ties with, and
	// every (client, backend) session opens here so session IDs never
	// depend on placement order.
	clients := make([]*core.Client, len(spec.Clients))
	sessions := make([]*session, len(spec.Clients))
	var logs []*clientLog
	if rec != nil {
		logs = make([]*clientLog, len(spec.Clients))
	}
	for i, cs := range spec.Clients {
		fs := eng.addSession()
		pool.open(cs.ID)
		sessions[i] = fs
		var opts []core.Option
		if rec != nil {
			logs[i] = &clientLog{}
			opts = append(opts, core.WithSink(logs[i]))
		}
		if cs.Outage > 0 {
			opts = append(opts, core.WithFaultModel(radio.NewGilbertElliott(cs.Outage, cs.Burst)))
		}
		switch spec.Breakers {
		case BreakersGlobal:
			opts = append(opts, core.WithBackendBreakers(false))
		case BreakersOff:
			opts = append(opts, core.WithBreaker(nil))
		}
		if spec.Breaker != nil && spec.Breakers != BreakersOff {
			// Each client owns its copy of the prototype's tuning.
			proto := *spec.Breaker
			opts = append(opts, core.WithBreaker(&core.Breaker{
				Threshold:   proto.Threshold,
				Cooldown:    proto.Cooldown,
				MaxCooldown: proto.MaxCooldown,
				ProbeBytes:  proto.ProbeBytes,
			}))
		}
		clients[i] = core.New(core.ClientConfig{
			ID:       cs.ID,
			Prog:     w.Prog,
			Server:   &muxRemote{e: eng, s: fs, gate: g},
			Channel:  buildChannel(cs),
			Strategy: cs.Strategy,
			Seed:     mix(cs.Seed, 0x11),
		}, opts...)
	}

	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The compute slot is held while simulating and released
			// while blocked in the engine (muxRemote); the session must
			// retire even when the client errors out, or the engine
			// would wait on its clock bound forever.
			g.acquire()
			defer g.release()
			defer eng.finish(sessions[i])
			errs[i] = runClient(clients[i], w, spec.Clients[i])
		}(i)
	}
	wg.Wait()

	res := &Result{
		Workload:  w.Name,
		Placement: spec.Placement,
		Clients:   make([]ClientResult, len(clients)),
	}
	for i, c := range clients {
		fs := sessions[i]
		cr := ClientResult{
			ID:       spec.Clients[i].ID,
			Strategy: spec.Clients[i].Strategy,
			Energy:   c.Energy(),
			Time:     c.Clock,
			Stats:    *c.Stats,
			Session:  pool.sessionStats(i),
			Served:   fs.served,
			Shed:     fs.shed,
			MaxWait:  fs.maxWait,
		}
		if fs.served > 0 {
			cr.AvgWait = fs.waitSum / energy.Seconds(fs.served)
		}
		if errs[i] != nil {
			cr.Err = errs[i].Error()
		}
		res.Clients[i] = cr
	}
	res.Server = ServerResult{
		Workers:       pool.backends[0].workers,
		QueueCap:      pool.backends[0].queueCap,
		Served:        eng.served,
		Shed:          eng.shed,
		MaxQueueDepth: eng.maxDepth,
		CacheHits:     pool.cacheHits(),
		WaitDist:      eng.waitSketch.Snapshot(),
		DepthDist:     eng.depthSketch.Snapshot(),
	}
	if rec != nil {
		foldClientLogs(rec.ts, logs)
		res.Series = rec.ts
	}
	for _, b := range pool.backends {
		br := BackendResult{
			ID:            b.id,
			Served:        b.served,
			Shed:          b.shed,
			MaxQueueDepth: b.maxDepth,
			CacheHits:     b.sess.Stats().CacheHits,
			Down:          b.down,
			Chaos:         b.chaos.String(),
			Flaps:         b.flaps,
			ChaosLosses:   b.chaosLosses,
			Slowed:        b.slowed,
			Warmups:       b.warmups,
		}
		if b.served > 0 {
			br.AvgWait = b.waitSum / energy.Seconds(b.served)
		}
		res.Backends = append(res.Backends, br)
	}
	return res, nil
}

// mergeChaos folds the legacy FailAt shorthand into the per-backend
// chaos specs and validates them against the pool size.
func mergeChaos(spec Spec) ([]BackendChaos, error) {
	servers := spec.Servers
	if servers < 1 {
		servers = 1
	}
	if len(spec.FailAt) > servers || len(spec.Chaos) > servers {
		return nil, fmt.Errorf("fleet: chaos specs for %d backends but pool has %d",
			max(len(spec.FailAt), len(spec.Chaos)), servers)
	}
	if len(spec.FailAt) == 0 {
		return spec.Chaos, nil
	}
	chaos := make([]BackendChaos, servers)
	copy(chaos, spec.Chaos)
	for i, t := range spec.FailAt {
		if t > 0 && !chaos[i].active() {
			chaos[i].FailAt = t
		}
	}
	return chaos, nil
}

// runClient simulates one handset to completion.
func runClient(c *core.Client, w Workload, cs ClientSpec) error {
	if err := c.Register(w.Target, w.Prof); err != nil {
		return err
	}
	sizes := cs.Sizes
	if len(sizes) == 0 {
		sizes = w.Sizes
	}
	if len(sizes) == 0 {
		return fmt.Errorf("fleet: client %s has no input sizes", cs.ID)
	}
	sizeR := rng.New(mix(cs.Seed, 0x51))
	for run := 0; run < cs.Executions; run++ {
		c.NewExecution()
		size := sizes[sizeR.Intn(len(sizes))]
		// Inputs are fixed per (workload, size): identical offloads
		// from repeated sizes exercise the session caches.
		args, err := w.Target.MakeArgs(c.VM, size, rng.New(inputSeed(w.Name, size)))
		if err != nil {
			return err
		}
		if _, err := c.Invoke(context.Background(), w.Target.Class, w.Target.Method, args); err != nil {
			return err
		}
		c.StepChannel()
	}
	c.SyncStats()
	return nil
}

func buildChannel(cs ClientSpec) radio.Channel {
	switch cs.Channel {
	case ChannelUniform:
		return radio.UniformChannel(rng.New(mix(cs.Seed, 0x21)))
	case ChannelMarkov:
		start := cs.Class
		if start == 0 {
			start = radio.Class3
		}
		return radio.NewMarkov(start, 0.55, rng.New(mix(cs.Seed, 0x31)))
	default:
		cls := cs.Class
		if cls == 0 {
			cls = radio.Class4
		}
		return radio.Fixed{Cls: cls}
	}
}

// mix derives independent sub-seeds (splitmix64 finalizer).
func mix(seed, salt uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(salt+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// inputSeed fixes input content per (workload, size), as the
// experiment drivers do.
func inputSeed(name string, size int) uint64 {
	h := uint64(0xCBF29CE484222325)
	for _, c := range name {
		h = h*1099511628211 ^ uint64(c)
	}
	return h*2654435761 + uint64(size)
}

// Registry renders the run through the observability seam: per-client
// energy/time gauges, admission counters, and the server's queue
// wait/depth quantiles (from the engine's streaming P² sketches).
// Built post-run in client order, so its snapshot is deterministic.
func (r *Result) Registry() *obs.Registry {
	reg := obs.NewRegistry()
	eGauge := reg.Gauge("fleet_client_energy_joules", "total energy per simulated handset")
	tGauge := reg.Gauge("fleet_client_time_seconds", "virtual completion time per handset")
	served := reg.Counter("fleet_served_total", "requests that obtained a server worker")
	sheds := reg.Counter("fleet_sheds_total", "requests shed by server admission control")
	hits := reg.Counter("fleet_session_cache_hits_total", "requests answered from a session's serialization cache")
	for _, c := range r.Clients {
		labels := []string{"client", c.ID, "strategy", c.Strategy.String()}
		eGauge.Set(float64(c.Energy), labels...)
		tGauge.Set(float64(c.Time), labels...)
		if c.Served > 0 {
			served.Add(float64(c.Served), labels...)
		}
		if c.Shed > 0 {
			sheds.Add(float64(c.Shed), labels...)
		}
		if c.Session.CacheHits > 0 {
			hits.Add(float64(c.Session.CacheHits), labels...)
		}
	}
	exportDist(reg, "fleet_queue_wait_seconds", "virtual queue wait quantiles of served requests", r.Server.WaitDist)
	exportDist(reg, "fleet_queue_depth", "queue depth quantiles seen by requests that waited", r.Server.DepthDist)
	failovers := reg.Counter("fleet_failovers_total", "invocations re-placed on a surviving backend after an attributed loss")
	for _, c := range r.Clients {
		if c.Stats.Failovers > 0 {
			failovers.Add(float64(c.Stats.Failovers), "client", c.ID, "strategy", c.Strategy.String())
		}
	}
	bServed := reg.Counter("fleet_backend_served_total", "requests served per backend")
	bSheds := reg.Counter("fleet_backend_sheds_total", "requests shed per backend")
	bDepth := reg.Gauge("fleet_backend_queue_depth_max", "queue high-water mark per backend")
	bDown := reg.Gauge("fleet_backend_down", "1 when the backend failed during the run")
	bFlaps := reg.Counter("fleet_backend_flaps_total", "chaos crash events per backend")
	bLosses := reg.Counter("fleet_backend_chaos_losses_total", "exchanges eaten by the backend's loss process")
	bSlowed := reg.Counter("fleet_backend_slowed_total", "requests served at the brown-out service rate")
	bWarm := reg.Counter("fleet_backend_warmups_total", "session caches pre-loaded after failover re-homing")
	for _, b := range r.Backends {
		labels := []string{"backend", b.ID, "placement", r.Placement.String()}
		if b.Served > 0 {
			bServed.Add(float64(b.Served), labels...)
		}
		if b.Shed > 0 {
			bSheds.Add(float64(b.Shed), labels...)
		}
		bDepth.Set(float64(b.MaxQueueDepth), labels...)
		if b.Down {
			bDown.Set(1, labels...)
		}
		if b.Flaps > 0 {
			bFlaps.Add(float64(b.Flaps), labels...)
		}
		if b.ChaosLosses > 0 {
			bLosses.Add(float64(b.ChaosLosses), labels...)
		}
		if b.Slowed > 0 {
			bSlowed.Add(float64(b.Slowed), labels...)
		}
		if b.Warmups > 0 {
			bWarm.Add(float64(b.Warmups), labels...)
		}
	}
	return reg
}

// exportDist renders a sketch snapshot as quantile-labeled gauges
// plus _count/_max companions — the post-run view of a distribution
// whose samples were never retained.
func exportDist(reg *obs.Registry, name, help string, d obs.SketchSnapshot) {
	g := reg.Gauge(name, help)
	for _, qv := range d.Quantiles {
		g.Set(qv.Value, "quantile", strconv.FormatFloat(qv.Quantile, 'g', -1, 64))
	}
	reg.Gauge(name+"_count", "samples behind "+name).Set(float64(d.Count))
	reg.Gauge(name+"_max", "largest sample behind "+name).Set(d.Max)
}

// TotalFailovers sums in-flight re-placements after attributed losses
// across the fleet's clients.
func (r *Result) TotalFailovers() int {
	total := 0
	for _, c := range r.Clients {
		total += c.Stats.Failovers
	}
	return total
}

// TotalFallbacks sums connection-loss local fallbacks across the
// fleet's clients — the work the pool pushed back to the handsets.
func (r *Result) TotalFallbacks() int {
	total := 0
	for _, c := range r.Clients {
		total += c.Stats.Fallbacks
	}
	return total
}

// TotalWarmups sums failover cache warmups across backends.
func (r *Result) TotalWarmups() int {
	total := 0
	for _, b := range r.Backends {
		total += b.Warmups
	}
	return total
}

// TotalEnergy sums the fleet's client energies.
func (r *Result) TotalEnergy() energy.Joules {
	var e energy.Joules
	for _, c := range r.Clients {
		e += c.Energy
	}
	return e
}

// ShedRate is the fraction of admission decisions that shed.
func (r *Result) ShedRate() float64 {
	total := r.Server.Served + r.Server.Shed
	if total == 0 {
		return 0
	}
	return float64(r.Server.Shed) / float64(total)
}

// WriteSummary renders the per-client table, the pool aggregate and —
// for multi-server runs — the per-backend breakdown.
func (r *Result) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "fleet of %d clients on %s — server workers=%d queue=%d",
		len(r.Clients), r.Workload, r.Server.Workers, r.Server.QueueCap)
	if len(r.Backends) > 1 {
		fmt.Fprintf(w, " servers=%d placement=%s", len(r.Backends), r.Placement)
	}
	fmt.Fprintf(w, "\n\n")
	fmt.Fprintf(w, "%-8s %-5s %12s %10s | %5s %5s %5s %5s | %10s  %s\n",
		"client", "strat", "energy", "time", "reqs", "shed", "hits", "fall", "avg wait", "modes [I L1 L2 L3 R]")
	for _, c := range r.Clients {
		fmt.Fprintf(w, "%-8s %-5v %12v %9.2fs | %5d %5d %5d %5d | %9.2fms  %v",
			c.ID, c.Strategy, c.Energy, float64(c.Time),
			c.Served, c.Shed, c.Session.CacheHits, c.Stats.Fallbacks,
			float64(c.AvgWait)*1e3, c.Stats.ModeCounts)
		if c.Err != "" {
			fmt.Fprintf(w, "  ERROR: %s", c.Err)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\ntotal energy %v; server served %d, shed %d (rate %.1f%%), max queue depth %d, cache hits %d",
		r.TotalEnergy(), r.Server.Served, r.Server.Shed, 100*r.ShedRate(),
		r.Server.MaxQueueDepth, r.Server.CacheHits)
	if f := r.TotalFailovers(); f > 0 {
		fmt.Fprintf(w, ", failovers %d", f)
	}
	if wu := r.TotalWarmups(); wu > 0 {
		fmt.Fprintf(w, ", warmups %d", wu)
	}
	fmt.Fprintln(w)
	if len(r.Backends) > 1 {
		for _, b := range r.Backends {
			fmt.Fprintf(w, "  backend %s: served %d, shed %d, max depth %d, avg wait %.2fms, cache hits %d",
				b.ID, b.Served, b.Shed, b.MaxQueueDepth, float64(b.AvgWait)*1e3, b.CacheHits)
			if b.Chaos != "none" {
				fmt.Fprintf(w, ", chaos %s", b.Chaos)
				if b.Flaps > 0 {
					fmt.Fprintf(w, " (crashes %d)", b.Flaps)
				}
				if b.ChaosLosses > 0 {
					fmt.Fprintf(w, " (losses %d)", b.ChaosLosses)
				}
				if b.Slowed > 0 {
					fmt.Fprintf(w, " (slowed %d)", b.Slowed)
				}
			}
			if b.Warmups > 0 {
				fmt.Fprintf(w, ", warmups %d", b.Warmups)
			}
			if b.Down {
				fmt.Fprintf(w, "  DOWN")
			}
			fmt.Fprintln(w)
		}
	}
}
