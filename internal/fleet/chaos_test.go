package fleet

import (
	"bytes"
	"testing"

	"greenvm/internal/core"
)

// chaosSpec builds the canonical chaos comparison fleet: 16 mixed
// clients, two backends at equal aggregate capacity, a composed
// brown-out (x8 service time plus a bursty loss process) on s0, and a
// breaker prototype whose cooldown outlives the inter-invocation gap
// so an open breaker actually shapes later decisions.
func chaosSpec(t *testing.T, placement Placement, mode BreakerMode) Spec {
	t.Helper()
	w := offloadWorkload(t)
	chaos := make([]BackendChaos, 2)
	chaos[0] = BackendChaos{BrownoutAt: 0.0005, BrownoutFactor: 8, LossRate: 0.5, LossBurst: 8}
	spec := MixedFleet(w, 16, []core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA}, 12,
		core.SessionConfig{Workers: 2, QueueCap: 16}, 42)
	spec.Servers = 2
	spec.Placement = placement
	spec.Chaos = chaos
	spec.Breakers = mode
	spec.Breaker = &core.Breaker{Threshold: 2, Cooldown: 0.05, MaxCooldown: 0.4, ProbeBytes: 16}
	return spec
}

// TestChaosDeterministicAcrossConcurrency extends the fleet's
// determinism guarantee to chaos injection: crashes, restarts,
// brown-outs, per-backend loss bursts and half-open probes are all
// scheduled and judged inside the event heap, so a chaotic fleet is
// byte-identical whether clients simulate serially or on eight slots.
func TestChaosDeterministicAcrossConcurrency(t *testing.T) {
	w := offloadWorkload(t)
	build := func(conc int) Spec {
		chaos := make([]BackendChaos, 3)
		chaos[0] = BackendChaos{FlapAt: 0.001, FlapDown: 0.002, FlapEvery: 0.004}
		chaos[1] = BackendChaos{BrownoutAt: 0.0005, BrownoutFactor: 6, LossRate: 0.3, LossBurst: 4}
		spec := MixedFleet(w, 24, []core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA}, 6,
			core.SessionConfig{Workers: 2, QueueCap: 8}, 42)
		spec.Servers = 3
		spec.Placement = PlaceP2C
		spec.Chaos = chaos
		spec.Breaker = &core.Breaker{Threshold: 2, Cooldown: 0.05, MaxCooldown: 0.4, ProbeBytes: 16}
		spec.Concurrency = conc
		return spec
	}
	serial, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(build(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, serial), render(t, parallel)) {
		t.Error("chaotic fleet diverged between serial and 8-way simulation")
	}
	flaps := 0
	for _, b := range serial.Backends {
		flaps += b.Flaps
	}
	if flaps < 2 {
		t.Errorf("flap schedule produced %d crashes, want a real crash/restart cycle", flaps)
	}
}

// TestPerBackendBreakersShedLessThanGlobal is the PR's acceptance
// criterion: under a single browned-out backend at equal aggregate
// capacity, per-backend breakers shed strictly less work to local
// fallback than one global link breaker — the faulty backend goes
// dark alone, and the surviving backend keeps serving.
func TestPerBackendBreakersShedLessThanGlobal(t *testing.T) {
	run := func(mode BreakerMode) (fallbacks, served int) {
		res, err := Run(chaosSpec(t, PlaceCheapest, mode))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Clients {
			if c.Err != "" {
				t.Fatalf("client %s: %s", c.ID, c.Err)
			}
			fallbacks += c.Stats.Fallbacks
		}
		return fallbacks, res.Server.Served
	}
	backendFB, backendServed := run(BreakersBackend)
	globalFB, globalServed := run(BreakersGlobal)
	if backendFB >= globalFB {
		t.Errorf("per-backend breakers fell back %d times, global %d — want strictly less",
			backendFB, globalFB)
	}
	if backendServed <= globalServed {
		t.Errorf("per-backend breakers served %d, global %d — want strictly more",
			backendServed, globalServed)
	}
}

// TestFlappingBackendProbes drives the half-open machinery through a
// crash/restart cycle: breakers open on the flapping backend's
// attributed losses, cool down, and probe the engine's virtual-time
// backend state — some probes landing mid-restart, some after
// recovery — while the fleet keeps completing on the survivor.
func TestFlappingBackendProbes(t *testing.T) {
	w := offloadWorkload(t)
	chaos := make([]BackendChaos, 2)
	chaos[0] = BackendChaos{FlapAt: 0.001, FlapDown: 0.004, FlapEvery: 0.008}
	spec := MixedFleet(w, 16, []core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA}, 12,
		core.SessionConfig{Workers: 2, QueueCap: 16}, 42)
	spec.Servers = 2
	spec.Placement = PlaceP2C
	spec.Chaos = chaos
	spec.Breaker = &core.Breaker{Threshold: 1, Cooldown: 0.002, MaxCooldown: 0.016, ProbeBytes: 16}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	probes, downs := 0, 0
	for _, c := range res.Clients {
		if c.Err != "" {
			t.Fatalf("client %s: %s", c.ID, c.Err)
		}
		probes += c.Stats.Probes
		downs += len(c.Stats.LinkDownsBy)
	}
	if res.Backends[0].Flaps < 2 {
		t.Fatalf("backend s0 crashed %d times, want a flapping cycle", res.Backends[0].Flaps)
	}
	if downs == 0 {
		t.Error("no client attributed a breaker transition to the flapping backend")
	}
	if probes == 0 {
		t.Error("no half-open probe fired across the whole flapping run")
	}
	if res.TotalFallbacks() == res.Server.Served {
		t.Error("fleet did no remote work at all under flapping")
	}
}

// TestShedAttributionPerBackend pins BusyError attribution end to end
// for every placement policy: the sheds each client books against a
// named backend sum exactly to that backend's own shed counter.
func TestShedAttributionPerBackend(t *testing.T) {
	w := offloadWorkload(t)
	for _, pl := range Placements {
		pl := pl
		t.Run(pl.String(), func(t *testing.T) {
			spec := MixedFleet(w, 24, []core.Strategy{core.StrategyR, core.StrategyAL, core.StrategyAA}, 6,
				core.SessionConfig{Workers: 1, QueueCap: 1}, 42)
			spec.Servers = 2
			spec.Placement = pl
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			byBackend := map[string]int{}
			total := 0
			for _, c := range res.Clients {
				if c.Err != "" {
					t.Fatalf("client %s: %s", c.ID, c.Err)
				}
				for b, n := range c.Stats.ShedsBy {
					byBackend[b] += n
				}
				total += c.Stats.Sheds
			}
			if total == 0 {
				t.Fatal("overloaded pool shed nothing; the attribution check is vacuous")
			}
			attributed := 0
			for _, n := range byBackend {
				attributed += n
			}
			if attributed != total {
				t.Errorf("attributed %d of %d sheds; every pool shed must name its backend", attributed, total)
			}
			for _, b := range res.Backends {
				if got := byBackend[b.ID]; got != b.Shed {
					t.Errorf("%s: clients booked %d sheds, backend booked %d", b.ID, got, b.Shed)
				}
			}
		})
	}
}
