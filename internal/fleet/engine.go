package fleet

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/obs"
	"greenvm/internal/radio"
)

// The engine is the fleet's virtual-time scheduler: a conservative
// discrete-event simulator over a pool of backend servers. Each
// simulated handset advances its own virtual clock; the engine
// decides, in virtual time, which backend each offload request is
// placed on (the pool's placement policy), which requests obtain one
// of that backend's workers, which wait in its bounded queue, and
// which are shed with a BusyError — the same admission policy
// core.SessionServer applies in real time on the TCP path, per
// backend.
//
// Determinism is the point, and it is carried by the event heap.
// Client goroutines reach the engine in whatever order the Go
// scheduler produces; every occurrence becomes an event on one
// priority queue ordered by
//
//	(virtual time, kind, tie-break)
//
// where kind orders telemetry tick boundaries before backend failures
// before worker completions before arrivals at the same instant (a
// boundary at t samples window gauges before any time-t mutation, and
// a completion at t frees its worker
// for the arrival at t — a request never overtakes the queue through
// a free slot), and the tie-break is the client index for arrivals (a
// client has at most one outstanding request), the backend index for
// failures, and a dispatch-order sequence number for completions
// (dispatch order is itself deterministic). Every key is unique, so
// the pop order is a pure function of the events — never of insertion
// order.
//
// The heap may only pop while it is safe: a request timestamped t may
// only be admitted once no client still running could produce an
// earlier one. Every client carries a clock lower bound — the
// timestamp of its outstanding request while blocked, the virtual
// time of its last answer while running — and every exchange strictly
// advances a client's clock (each carries at least one frame of
// positive airtime). The engine therefore processes events up to the
// horizon (the minimal bound over running clients), and the placement
// decisions, admission order, queue waits and shed decisions come out
// identical under any goroutine interleaving — one worker slot or
// sixteen.
//
// Fairness needs no extra machinery here: a handset has at most one
// outstanding request (its executor blocks on the exchange), so each
// backend's FIFO queue, filled in event order, grants each session at
// most one slot per rotation — the same round-robin the SessionServer
// implements for pipelined transports.

const (
	stateRunning = iota
	stateBlocked
	stateFinished
)

// Event kinds, in same-instant processing order. Tick boundaries order
// before everything else so the telemetry gauges sampled at boundary t
// describe the state strictly before any time-t mutation (a window is
// [start, end), so time-t events belong to the next window). Failures
// order before recoveries so a zero-downtime flap is still observed
// down for the instant; recoveries order before completions and
// arrivals so a request arriving exactly at restart time sees the
// backend up.
const (
	evTick    = iota // a telemetry window boundary (tie = the tick count)
	evFail           // a backend goes down (FailAt, or a flap cycle's crash)
	evRecover        // a flapped backend restarts
	evDone           // a worker completes on some backend
	evArrive         // a client's offload request (or breaker probe) arrives
)

// event is one entry on the engine's priority queue.
type event struct {
	t    energy.Seconds
	kind int
	// tie breaks same-(t, kind) events: client index for arrivals,
	// backend index for failures, dispatch sequence for completions.
	tie int
	// req is the arriving request (evArrive) or the completing one
	// (evDone); bidx the backend completing (evDone) or failing
	// (evFail).
	req  *request
	bidx int
}

// eventHeap implements container/heap over the (t, kind, tie) key.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].tie < h[j].tie
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// request is one offload exchange in flight through the engine.
type request struct {
	sess *session
	t    energy.Seconds // the client's virtual send time
	seq  int            // the client's request sequence number
	hint string         // the client's pick-cheapest placement hint

	// probe marks a per-backend breaker probe: hint names the probed
	// backend, and the answer is liveness only — no admission, no
	// worker, no service time.
	probe bool

	clientID      string
	class, method string
	argBytes      []byte
	estEnd        energy.Seconds

	// backend is the placement outcome, set when the arrival event
	// processes.
	backend int

	// The answer, valid once done is closed. servTime includes the
	// virtual queue wait, so the client sleeps through its wait exactly
	// as it would for a slower server; servedBy names the backend that
	// ran the request.
	res      []byte
	servTime energy.Seconds
	queued   bool
	servedBy string
	err      error
	done     chan struct{}
}

// session is the engine's view of one handset: its clock bound and
// admission counters. (Server-side per-backend sessions live on the
// pool.)
type session struct {
	idx int // client index; ties in virtual time break on it

	state int
	// bound is a lower bound on the virtual time of the session's next
	// request: the outstanding request's timestamp while blocked, the
	// time of the last answer while running.
	bound energy.Seconds

	reqSeq int // requests submitted so far (the p2c randomness source)

	// home is the backend index that last served this session (-1
	// before the first service) — the warmup key: when service re-homes
	// away from a now-down backend, the new backend pre-loads the
	// session's cache from the dead one.
	home int

	served, shed     int
	waitSum, maxWait energy.Seconds
}

type engine struct {
	mu        sync.Mutex
	pool      *ServerPool
	placement Placement
	byID      map[string]int // backend ID -> index
	ring      []ringPoint    // consistent-hash ring (PlaceHash)
	sessions  []*session

	events  eventHeap
	doneSeq int // deterministic completion-event tie-break

	served, shed, maxDepth int
	// waitSketch and depthSketch stream the per-served-request queue
	// waits and the queue depths seen by enqueued requests through
	// fixed-size P² sketches (they replaced unbounded []float64 slices
	// — O(1) memory per run regardless of request count). Fed in heap
	// order, so the estimates are deterministic.
	waitSketch, depthSketch *obs.QuantileSketch

	// rec is the windowed virtual-time telemetry recorder; nil when
	// the spec asked for none.
	rec *tsRec
}

func newEngine(pool *ServerPool, placement Placement, n int, rec *tsRec) *engine {
	e := &engine{
		pool:        pool,
		placement:   placement,
		byID:        make(map[string]int, len(pool.backends)),
		sessions:    make([]*session, 0, n),
		waitSketch:  obs.NewQuantileSketch(),
		depthSketch: obs.NewQuantileSketch(),
		rec:         rec,
	}
	if rec != nil {
		heap.Push(&e.events, event{t: rec.tickAt(1), kind: evTick, tie: 1})
	}
	for i, id := range pool.ids {
		e.byID[id] = i
	}
	if placement == PlaceHash {
		e.ring = buildRing(pool.ids)
	}
	for _, b := range pool.backends {
		switch {
		case b.chaos.FlapAt > 0:
			heap.Push(&e.events, event{t: b.chaos.FlapAt, kind: evFail, tie: b.idx, bidx: b.idx})
		case b.chaos.FailAt > 0:
			heap.Push(&e.events, event{t: b.chaos.FailAt, kind: evFail, tie: b.idx, bidx: b.idx})
		}
	}
	return e
}

func (e *engine) addSession() *session {
	fs := &session{idx: len(e.sessions), home: -1}
	e.sessions = append(e.sessions, fs)
	return fs
}

// submit hands one request to the engine and blocks until it is
// answered — served after its virtual wait, shed, or failed over. The
// caller must not hold a compute slot (see muxRemote).
func (e *engine) submit(s *session, hint, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, string, error) {

	r := &request{
		sess: s, t: reqTime, hint: hint,
		clientID: clientID, class: class, method: method,
		argBytes: argBytes, estEnd: estEnd,
		backend: -1,
		done:    make(chan struct{}),
	}
	e.mu.Lock()
	s.reqSeq++
	r.seq = s.reqSeq
	s.state = stateBlocked
	s.bound = reqTime
	heap.Push(&e.events, event{t: reqTime, kind: evArrive, tie: s.idx, req: r})
	e.process()
	e.mu.Unlock()
	<-r.done
	return r.res, r.servTime, r.queued, r.servedBy, r.err
}

// probe asks whether the named backend is up at the given virtual
// time, for a client's half-open breaker probe. The question rides the
// event heap like an arrival (same client-index tie-break — a client
// has at most one outstanding exchange, probe or request), so the
// answer reflects exactly the crashes, recoveries and loss bursts that
// precede it in virtual time, under any goroutine interleaving.
func (e *engine) probe(s *session, backend string, at energy.Seconds) error {
	r := &request{sess: s, t: at, hint: backend, probe: true, backend: -1, done: make(chan struct{})}
	e.mu.Lock()
	s.state = stateBlocked
	s.bound = at
	heap.Push(&e.events, event{t: at, kind: evArrive, tie: s.idx, req: r})
	e.process()
	e.mu.Unlock()
	<-r.done
	return r.err
}

// finish retires a session whose client completed its run (or died):
// its bound no longer constrains the event horizon.
func (e *engine) finish(s *session) {
	e.mu.Lock()
	s.state = stateFinished
	e.process()
	e.mu.Unlock()
}

// horizon is the earliest virtual time at which a running client could
// still submit a request. Events at or before it are safe to process
// (every exchange strictly advances a client past its bound).
func (e *engine) horizon() energy.Seconds {
	h := energy.Seconds(math.Inf(1))
	for _, s := range e.sessions {
		if s.state == stateRunning && s.bound < h {
			h = s.bound
		}
	}
	return h
}

// process drains every event whose virtual time has passed the
// horizon, in heap order. Callers hold e.mu.
func (e *engine) process() {
	for len(e.events) > 0 {
		if e.events[0].t > e.horizon() {
			return
		}
		ev := heap.Pop(&e.events).(event)
		switch ev.kind {
		case evTick:
			e.rec.boundary(int64(ev.tie), e.pool)
			// The next boundary is tick*(k+1), a product — accumulated
			// tick times would drift and break cross-run byte equality.
			// The liveSessions gate bounds the cycle exactly like flap
			// rescheduling: the final in-flight tick drains at the end.
			if e.liveSessions() {
				heap.Push(&e.events, event{t: e.rec.tickAt(int64(ev.tie) + 1), kind: evTick, tie: ev.tie + 1})
			}
		case evFail:
			e.failBackend(ev)
		case evRecover:
			e.pool.backends[ev.bidx].down = false
			if e.rec != nil {
				e.rec.backendUp(ev.t, ev.bidx)
			}
		case evDone:
			e.complete(ev)
		case evArrive:
			e.arrive(ev)
		}
	}
}

// arrive places one request on a backend and runs its admission:
// grant a worker, wait in the backend's queue, or shed. Probe
// requests answer liveness only.
func (e *engine) arrive(ev event) {
	r := ev.req
	if r.probe {
		e.probeArrive(r)
		return
	}
	if e.rec != nil {
		e.rec.arrival(r.t)
	}
	bidx := e.pickBackend(r)
	if bidx < 0 {
		// Every backend is down: the pool is unreachable, which the
		// client's executor handles like any outage (timeout listen,
		// breaker, local fallback).
		r.err = fmt.Errorf("%w: fleet: every backend is down", radio.ErrConnectionLost)
		if e.rec != nil {
			e.rec.unreachable(r.t)
		}
		e.answer(r, r.t)
		return
	}
	r.backend = bidx
	b := e.pool.backends[bidx]
	if b.judgeLoss() {
		// The backend's own loss process ate the exchange; attribute
		// it so the client strikes that backend's breaker only.
		b.chaosLosses++
		r.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: exchange lost on backend %s", radio.ErrConnectionLost, b.id)}
		if e.rec != nil {
			e.rec.chaosLoss(r.t, bidx)
		}
		e.answer(r, r.t)
		return
	}
	switch {
	case b.busy < b.workers:
		e.start(r, b, r.t)
	case len(b.queue) >= b.queueCap:
		depth := len(b.queue)
		e.shed++
		b.shed++
		r.sess.shed++
		if e.rec != nil {
			e.rec.shed(r.t, bidx)
		}
		r.err = &core.BusyError{QueueDepth: depth, Backend: b.id}
		e.answer(r, r.t)
	default:
		b.queue = append(b.queue, r)
		e.depthSketch.Observe(float64(len(b.queue)))
		if len(b.queue) > b.maxDepth {
			b.maxDepth = len(b.queue)
		}
		if len(b.queue) > e.maxDepth {
			e.maxDepth = len(b.queue)
		}
	}
}

// probeArrive answers a per-backend breaker probe from the backend's
// state at the probe's virtual time: down or mid-loss-burst reads as
// failure. The probe consumes a loss draw like any exchange — a probe
// into a loss burst fails, which is exactly the signal the half-open
// breaker wants.
func (e *engine) probeArrive(r *request) {
	bidx, ok := e.byID[r.hint]
	if !ok {
		r.err = fmt.Errorf("fleet: probe for unknown backend %q", r.hint)
		e.answer(r, r.t)
		return
	}
	b := e.pool.backends[bidx]
	switch {
	case b.down:
		r.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: backend %s down", radio.ErrConnectionLost, b.id)}
	case b.judgeLoss():
		b.chaosLosses++
		r.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: probe lost on backend %s", radio.ErrConnectionLost, b.id)}
	}
	e.answer(r, r.t)
}

// complete frees the worker a finished request held and dispatches
// the backend's next waiting request at the completion time.
func (e *engine) complete(ev event) {
	b := e.pool.backends[ev.bidx]
	b.busy--
	if b.down || len(b.queue) == 0 {
		return
	}
	q := b.queue[0]
	b.queue = b.queue[1:]
	e.start(q, b, ev.t)
}

// failBackend takes a backend down at its failure time: every queued
// request is flushed with a connection-lost error attributed to the
// backend (the blocked clients wake into their executors' loss
// machinery, strike that backend's breaker, and re-place on the
// survivors), running requests complete, and placement stops
// considering the backend. A flapping backend also schedules its
// restart and — while any session still runs — its next crash, so the
// cycle cannot outlive the fleet and spin the event loop forever.
func (e *engine) failBackend(ev event) {
	b := e.pool.backends[ev.bidx]
	b.down = true
	b.flaps++
	queued := b.queue
	b.queue = nil
	if e.rec != nil {
		e.rec.backendDown(ev.t, ev.bidx, len(queued))
	}
	for _, q := range queued {
		q.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: backend %s failed", radio.ErrConnectionLost, b.id)}
		e.answer(q, ev.t)
	}
	if b.chaos.FlapAt > 0 && b.chaos.FlapDown > 0 {
		heap.Push(&e.events, event{t: ev.t + b.chaos.FlapDown, kind: evRecover, tie: b.idx, bidx: b.idx})
		if b.chaos.FlapEvery > 0 && e.liveSessions() {
			heap.Push(&e.events, event{t: ev.t + b.chaos.FlapEvery, kind: evFail, tie: b.idx, bidx: b.idx})
		}
	}
}

// liveSessions reports whether any session has not finished — the
// gate on re-scheduling flap cycles.
func (e *engine) liveSessions() bool {
	for _, s := range e.sessions {
		if s.state != stateFinished {
			return true
		}
	}
	return false
}

// start runs one admitted request on a worker of backend b beginning
// at the given virtual time. The server work itself executes here,
// under the engine lock: Server.Execute serializes on its own mutex
// anyway, and running it at dispatch keeps the request's service time
// available for the completion event.
func (e *engine) start(q *request, b *poolBackend, at energy.Seconds) {
	wait := at - q.t
	// Placement-aware warmup: when the session's work re-homes away
	// from a backend that is now down, pre-load this backend's session
	// cache from the dead one before serving — re-homed repeats answer
	// from cache instead of re-paying full execution.
	if prev := q.sess.home; prev >= 0 && prev != b.idx && e.pool.backends[prev].down {
		if n := b.clients[q.sess.idx].WarmFrom(e.pool.backends[prev].clients[q.sess.idx]); n > 0 {
			b.warmups++
		}
	}
	q.sess.home = b.idx
	res, servTime, queued, err := b.clients[q.sess.idx].ExecuteDirect(context.Background(),
		q.clientID, q.class, q.method, q.argBytes, q.t, q.estEnd)
	if err != nil {
		q.err = err
		e.answer(q, at)
		return
	}
	// Brown-out: inside the window the backend serves at a degraded
	// rate, so the same work holds its worker longer.
	if f := b.chaos.BrownoutFactor; f > 1 && at >= b.chaos.BrownoutAt &&
		(b.chaos.BrownoutFor <= 0 || at < b.chaos.BrownoutAt+b.chaos.BrownoutFor) {
		servTime = energy.Seconds(float64(servTime) * f)
		b.slowed++
	}
	b.busy++
	e.served++
	b.served++
	b.waitSum += wait
	q.sess.served++
	q.sess.waitSum += wait
	if wait > q.sess.maxWait {
		q.sess.maxWait = wait
	}
	e.waitSketch.Observe(float64(wait))
	if e.rec != nil {
		e.rec.served(at, b.idx, wait)
	}
	q.res, q.servTime, q.queued, q.servedBy = res, wait+servTime, queued, b.id
	e.doneSeq++
	heap.Push(&e.events, event{t: at + servTime, kind: evDone, tie: e.doneSeq, req: q, bidx: b.idx})
	e.answer(q, at+servTime)
}

// answer completes a request: the session is running again from the
// given virtual time, and the blocked client wakes.
func (e *engine) answer(q *request, bound energy.Seconds) {
	q.sess.state = stateRunning
	q.sess.bound = bound
	close(q.done)
}

// gate is the compute-slot semaphore bounding how many client
// goroutines simulate concurrently. The admission order never depends
// on it — that is what the determinism test checks.
type gate struct{ ch chan struct{} }

func newGate(n int) *gate { return &gate{ch: make(chan struct{}, n)} }

func (g *gate) acquire() { g.ch <- struct{}{} }
func (g *gate) release() { <-g.ch }

// muxRemote is the Remote each fleet client talks to: a MultiRemote
// over the pool, so the client prices one candidate per backend and
// sends its pick-cheapest hint. Offload executions go through the
// engine's virtual-time placement and admission (releasing the
// client's compute slot while blocked, so a single slot cannot
// deadlock the fleet), while body downloads are control-plane traffic
// served directly from the client's session on backend 0.
type muxRemote struct {
	e    *engine
	s    *session
	gate *gate
}

// Backends implements core.MultiRemote.
func (m *muxRemote) Backends() []string { return m.e.pool.ids }

// Execute implements core.Remote (no placement hint).
func (m *muxRemote) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	res, servTime, queued, _, err := m.ExecuteOn(ctx, "", clientID, class, method, argBytes, reqTime, estEnd)
	return res, servTime, queued, err
}

// ExecuteOn implements core.MultiRemote: the hint rides to the
// engine, whose placement policy decides.
func (m *muxRemote) ExecuteOn(ctx context.Context, backend, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, string, error) {

	m.gate.release()
	defer m.gate.acquire()
	return m.e.submit(m.s, backend, clientID, class, method, argBytes, reqTime, estEnd)
}

func (m *muxRemote) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return m.e.pool.backends[0].clients[m.s.idx].CompiledBody(ctx, qname, level)
}

// ProbeBackend implements core.BackendProber: the client's half-open
// per-backend breaker probe, answered from the engine's virtual-time
// state (releasing the compute slot while blocked, like any exchange).
func (m *muxRemote) ProbeBackend(ctx context.Context, backend string, at energy.Seconds) error {
	m.gate.release()
	defer m.gate.acquire()
	return m.e.probe(m.s, backend, at)
}

var _ core.MultiRemote = (*muxRemote)(nil)
var _ core.BackendProber = (*muxRemote)(nil)
