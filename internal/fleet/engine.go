package fleet

import (
	"context"
	"math"
	"sync"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
)

// The engine is the fleet's virtual-time admission controller. Each
// simulated handset advances its own virtual clock; the engine decides,
// in virtual time, which offload requests obtain one of the server's
// workers, which wait in the bounded queue, and which are shed with a
// BusyError — exactly the policy core.SessionServer applies in real
// time on the TCP path.
//
// Determinism is the point. Client goroutines reach the engine in
// whatever order the Go scheduler produces, so the engine is built as a
// conservative discrete-event simulator: a request timestamped t may
// only be admitted once no client still running could produce an
// earlier request. Every client carries a clock lower bound — the
// timestamp of its outstanding request while blocked, the virtual time
// of its last answer while running — and every exchange strictly
// advances a client's clock (each carries at least one frame of
// positive airtime). The engine therefore processes the event with the
// minimal virtual time as soon as that time is at or below every
// running client's bound, and the admission order, the queue waits and
// the shed decisions come out identical under any goroutine
// interleaving — one worker slot or sixteen.
//
// Fairness needs no extra machinery here: a handset has at most one
// outstanding request (its executor blocks on the exchange), so the
// FIFO queue, filled in (time, client) order, grants each session at
// most one slot per rotation — the same round-robin the SessionServer
// implements for pipelined transports.

const (
	stateRunning = iota
	stateBlocked
	stateFinished
)

// request is one offload exchange in flight through the engine.
type request struct {
	sess *session
	t    energy.Seconds // the client's virtual send time

	clientID      string
	class, method string
	argBytes      []byte
	estEnd        energy.Seconds

	// The answer, valid once done is closed. servTime includes the
	// virtual queue wait, so the client sleeps through its wait exactly
	// as it would for a slower server.
	res      []byte
	servTime energy.Seconds
	queued   bool
	err      error
	done     chan struct{}
}

// session is the engine's view of one handset: its server-side
// core.Session plus the clock bound and admission counters.
type session struct {
	idx  int // client index; ties in virtual time break on it
	core *core.Session

	state int
	// bound is a lower bound on the virtual time of the session's next
	// request: the outstanding request's timestamp while blocked, the
	// time of the last answer while running.
	bound energy.Seconds

	served, shed     int
	waitSum, maxWait energy.Seconds
}

type engine struct {
	mu       sync.Mutex
	workers  int
	queueCap int
	sessions []*session

	busy    []energy.Seconds // virtual free time of each busy worker
	queue   []*request       // waiting for a worker, admission order
	pending []*request       // submitted, not yet ordered into the queue

	served, shed, maxDepth int
	waits                  []float64 // per-served-request queue waits, admission order
	depths                 []float64 // queue depth seen by each enqueued request
}

func newEngine(cfg core.SessionConfig, n int) *engine {
	// Mirror core.SessionConfig's defaulting: 0 means default,
	// negative queue capacity means no waiting at all.
	workers, queueCap := cfg.Workers, cfg.QueueCap
	if workers <= 0 {
		workers = core.DefaultWorkers
	}
	if queueCap == 0 {
		queueCap = core.DefaultQueueCap
	}
	if queueCap < 0 {
		queueCap = 0
	}
	e := &engine{workers: workers, queueCap: queueCap, sessions: make([]*session, 0, n)}
	return e
}

func (e *engine) addSession(s *core.Session) *session {
	fs := &session{idx: len(e.sessions), core: s}
	e.sessions = append(e.sessions, fs)
	return fs
}

// submit hands one request to the engine and blocks until it is
// answered — served after its virtual wait, or shed. The caller must
// not hold a compute slot (see muxRemote).
func (e *engine) submit(s *session, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	r := &request{
		sess: s, t: reqTime,
		clientID: clientID, class: class, method: method,
		argBytes: argBytes, estEnd: estEnd,
		done: make(chan struct{}),
	}
	e.mu.Lock()
	s.state = stateBlocked
	s.bound = reqTime
	e.pending = append(e.pending, r)
	e.process()
	e.mu.Unlock()
	<-r.done
	return r.res, r.servTime, r.queued, r.err
}

// finish retires a session whose client completed its run (or died):
// its bound no longer constrains the event horizon.
func (e *engine) finish(s *session) {
	e.mu.Lock()
	s.state = stateFinished
	e.process()
	e.mu.Unlock()
}

// horizon is the earliest virtual time at which a running client could
// still submit a request. Events at or before it are safe to process
// (every exchange strictly advances a client past its bound).
func (e *engine) horizon() energy.Seconds {
	h := energy.Seconds(math.Inf(1))
	for _, s := range e.sessions {
		if s.state == stateRunning && s.bound < h {
			h = s.bound
		}
	}
	return h
}

// process drains every event whose virtual time has passed the
// horizon. Callers hold e.mu.
func (e *engine) process() {
	for {
		horizon := e.horizon()

		// The earliest submitted request, ties broken by client index.
		var arr *request
		ai := -1
		for i, r := range e.pending {
			if arr == nil || r.t < arr.t || (r.t == arr.t && r.sess.idx < arr.sess.idx) {
				arr, ai = r, i
			}
		}

		// A worker completion is an event only while requests wait for
		// it; completions at or before the next arrival dispatch first,
		// so a request never overtakes the queue through a free slot.
		if len(e.queue) > 0 {
			f, wi := minBusy(e.busy)
			if (arr == nil || f <= arr.t) && f <= horizon {
				e.busy = append(e.busy[:wi], e.busy[wi+1:]...)
				q := e.queue[0]
				e.queue = e.queue[1:]
				e.start(q, f)
				continue
			}
		}

		if arr == nil || arr.t > horizon {
			return
		}
		e.pending = append(e.pending[:ai], e.pending[ai+1:]...)
		t := arr.t
		if len(e.queue) == 0 {
			e.retire(t)
		}
		switch {
		case len(e.busy) < e.workers:
			e.start(arr, t)
		case len(e.queue) >= e.queueCap:
			depth := len(e.queue)
			e.shed++
			arr.sess.shed++
			arr.err = &core.BusyError{QueueDepth: depth}
			e.answer(arr, t)
		default:
			e.queue = append(e.queue, arr)
			e.depths = append(e.depths, float64(len(e.queue)))
			if len(e.queue) > e.maxDepth {
				e.maxDepth = len(e.queue)
			}
		}
	}
}

// retire frees workers whose virtual completion time has passed. Only
// meaningful with an empty queue — otherwise completions dispatch
// waiting requests and are handled as events in process.
func (e *engine) retire(now energy.Seconds) {
	kept := e.busy[:0]
	for _, f := range e.busy {
		if f > now {
			kept = append(kept, f)
		}
	}
	e.busy = kept
}

// start runs one admitted request on a worker beginning at the given
// virtual time. The server work itself executes here, under the engine
// lock: Server.Execute serializes on its own mutex anyway, and running
// it at dispatch keeps the request's service time available for the
// worker's completion event.
func (e *engine) start(q *request, at energy.Seconds) {
	wait := at - q.t
	res, servTime, queued, err := q.sess.core.ExecuteDirect(context.Background(),
		q.clientID, q.class, q.method, q.argBytes, q.t, q.estEnd)
	if err != nil {
		q.err = err
		e.answer(q, at)
		return
	}
	e.busy = append(e.busy, at+servTime)
	e.served++
	q.sess.served++
	q.sess.waitSum += wait
	if wait > q.sess.maxWait {
		q.sess.maxWait = wait
	}
	e.waits = append(e.waits, float64(wait))
	q.res, q.servTime, q.queued = res, wait+servTime, queued
	e.answer(q, at+servTime)
}

// answer completes a request: the session is running again from the
// given virtual time, and the blocked client wakes.
func (e *engine) answer(q *request, bound energy.Seconds) {
	q.sess.state = stateRunning
	q.sess.bound = bound
	close(q.done)
}

func minBusy(busy []energy.Seconds) (energy.Seconds, int) {
	f, wi := busy[0], 0
	for i, v := range busy[1:] {
		if v < f {
			f, wi = v, i+1
		}
	}
	return f, wi
}

// gate is the compute-slot semaphore bounding how many client
// goroutines simulate concurrently. The admission order never depends
// on it — that is what the determinism test checks.
type gate struct{ ch chan struct{} }

func newGate(n int) *gate { return &gate{ch: make(chan struct{}, n)} }

func (g *gate) acquire() { g.ch <- struct{}{} }
func (g *gate) release() { <-g.ch }

// muxRemote is the Remote each fleet client talks to: offload
// executions go through the engine's virtual-time admission (releasing
// the client's compute slot while blocked, so a single slot cannot
// deadlock the fleet), while body downloads are control-plane traffic
// served directly from the session.
type muxRemote struct {
	e    *engine
	s    *session
	gate *gate
}

func (m *muxRemote) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	m.gate.release()
	defer m.gate.acquire()
	return m.e.submit(m.s, clientID, class, method, argBytes, reqTime, estEnd)
}

func (m *muxRemote) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return m.s.core.CompiledBody(ctx, qname, level)
}

var _ core.Remote = (*muxRemote)(nil)
