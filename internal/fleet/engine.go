package fleet

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"

	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/obs"
	"greenvm/internal/radio"
)

// The engine is the fleet's virtual-time scheduler: a conservative
// discrete-event simulator over a pool of backend servers. Each
// simulated handset advances its own virtual clock; the engine
// decides, in virtual time, which backend each offload request is
// placed on (the pool's placement policy), which requests obtain one
// of that backend's workers, which wait in its bounded queue, and
// which are shed with a BusyError — the same admission policy
// core.SessionServer applies in real time on the TCP path, per
// backend.
//
// Determinism is the point, and it is carried by the event heap.
// Client goroutines reach the engine in whatever order the Go
// scheduler produces; every occurrence becomes an event on one
// priority queue ordered by
//
//	(virtual time, kind, tie-break)
//
// where kind orders telemetry tick boundaries before backend failures
// before worker completions before arrivals at the same instant (a
// boundary at t samples window gauges before any time-t mutation, and
// a completion at t frees its worker
// for the arrival at t — a request never overtakes the queue through
// a free slot), and the tie-break is the client index for arrivals (a
// client has at most one outstanding request), the backend index for
// failures, and a dispatch-order sequence number for completions
// (dispatch order is itself deterministic). Every key is unique, so
// the pop order is a pure function of the events — never of insertion
// order.
//
// The heap may only pop while it is safe: a request timestamped t may
// only be admitted once no client still running could produce an
// earlier one. Every client carries a clock lower bound — the
// timestamp of its outstanding request while blocked, the virtual
// time of its last answer while running — and every exchange strictly
// advances a client's clock (each carries at least one frame of
// positive airtime). The engine therefore processes events up to the
// horizon (the minimal bound over running clients), and the placement
// decisions, admission order, queue waits and shed decisions come out
// identical under any goroutine interleaving — one worker slot or
// sixteen.
//
// Fairness needs no extra machinery here: a handset has at most one
// outstanding request (its executor blocks on the exchange), so each
// backend's FIFO queue, filled in event order, grants each session at
// most one slot per rotation — the same round-robin the SessionServer
// implements for pipelined transports.

// Session lifecycle. Sessions are preallocated for the whole cohort
// (flat struct-of-arrays storage — a 100k fleet costs one slice), but
// their client goroutines launch on demand: an unstarted session's
// bound is its arrival time, a conservative lower bound on its first
// request, so the engine can hold the horizon without the client's
// ~hundreds-of-KB core.Client existing yet. The engine launches a
// session when it pins the horizon (an event cannot process until
// this client speaks) or to keep a bounded pipeline of live clients
// ahead of the simulation frontier. Launching earlier than strictly
// necessary never changes results — the preset bound stays valid — it
// only raises peak memory.
const (
	stateUnstarted = iota // preallocated, goroutine not yet launched
	stateLaunching        // goroutine spawned, first submit still pending
	stateRunning
	stateBlocked
	stateFinished
)

// Event kinds, in same-instant processing order. Tick boundaries order
// before everything else so the telemetry gauges sampled at boundary t
// describe the state strictly before any time-t mutation (a window is
// [start, end), so time-t events belong to the next window). Failures
// order before recoveries so a zero-downtime flap is still observed
// down for the instant; recoveries order before completions and
// arrivals so a request arriving exactly at restart time sees the
// backend up.
const (
	evTick    = iota // a telemetry window boundary (tie = the tick count)
	evFail           // a backend goes down (FailAt, or a flap cycle's crash)
	evRecover        // a flapped backend restarts
	evDone           // a worker completes on some backend
	evArrive         // a client's offload request (or breaker probe) arrives
)

// event is one entry on the engine's priority queue.
type event struct {
	t    energy.Seconds
	kind int
	// tie breaks same-(t, kind) events: client index for arrivals,
	// backend index for failures, dispatch sequence for completions.
	tie int
	// req is the arriving request (evArrive) or the completing one
	// (evDone); bidx the backend completing (evDone) or failing
	// (evFail).
	req  *request
	bidx int
}

// eventHeap implements container/heap over the (t, kind, tie) key.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].tie < h[j].tie
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// request is one offload exchange in flight through the engine.
type request struct {
	sess *session
	t    energy.Seconds // the client's virtual send time
	seq  int            // the client's request sequence number
	hint string         // the client's pick-cheapest placement hint

	// probe marks a per-backend breaker probe: hint names the probed
	// backend, and the answer is liveness only — no admission, no
	// worker, no service time.
	probe bool

	clientID      string
	class, method string
	argBytes      []byte
	estEnd        energy.Seconds

	// backend is the placement outcome, set when the arrival event
	// processes.
	backend int

	// The answer, valid once done is closed. servTime includes the
	// virtual queue wait, so the client sleeps through its wait exactly
	// as it would for a slower server; servedBy names the backend that
	// ran the request.
	res      []byte
	servTime energy.Seconds
	queued   bool
	servedBy string
	err      error
	done     chan struct{}
}

// session is the engine's view of one handset: its clock bound and
// admission counters. (Server-side per-backend sessions live on the
// pool.)
type session struct {
	idx int // client index; ties in virtual time break on it

	state int
	// bound is a lower bound on the virtual time of the session's next
	// request: the outstanding request's timestamp while blocked, the
	// time of the last answer while running.
	bound energy.Seconds

	reqSeq int // requests submitted so far (the p2c randomness source)

	// home is the backend index that last served this session (-1
	// before the first service) — the warmup key: when service re-homes
	// away from a now-down backend, the new backend pre-loads the
	// session's cache from the dead one.
	home int

	served, shed     int
	waitSum, maxWait energy.Seconds
}

type engine struct {
	mu        sync.Mutex
	pool      *ServerPool
	placement Placement
	byID      map[string]int // backend ID -> index
	ring      []ringPoint    // consistent-hash ring (PlaceHash)
	sessions  []session      // flat per-client state, indexed by client

	// bheap is an indexed min-heap of the session indices whose bounds
	// constrain the horizon (states unstarted/launching/running; a
	// blocked session's wake-up is already an event on the main heap).
	// Bounds only ever increase, so updates are sift-downs. bpos maps a
	// session index to its heap position (-1 when absent). This
	// replaces an O(n) scan per submit — the difference between a 100k
	// fleet finishing and it spending hours inside horizon().
	bheap []int32
	bpos  []int32

	// launchOrder lists session indices by (arrival bound, index);
	// sessions before nextLaunch have been launched. launch spawns one
	// client goroutine; Run installs it before kickoff.
	launchOrder []int32
	nextLaunch  int
	launch      func(idx int)
	live        int // launched and not yet finished
	ahead       int // launch-ahead pipeline bound
	finished    int

	events  eventHeap
	doneSeq int // deterministic completion-event tie-break

	served, shed, maxDepth int
	// waitSketch and depthSketch stream the per-served-request queue
	// waits and the queue depths seen by enqueued requests through
	// fixed-size P² sketches (they replaced unbounded []float64 slices
	// — O(1) memory per run regardless of request count). Fed in heap
	// order, so the estimates are deterministic.
	waitSketch, depthSketch *obs.QuantileSketch

	// rec is the windowed virtual-time telemetry recorder; nil when
	// the spec asked for none.
	rec *tsRec
}

// newEngine preallocates one session per client with its arrival time
// as the initial clock bound. order is the launch order — session
// indices sorted by (arrival, index) — shared with the result
// emitter.
func newEngine(pool *ServerPool, placement Placement, starts []energy.Seconds, order []int32, rec *tsRec) *engine {
	n := len(starts)
	e := &engine{
		pool:        pool,
		placement:   placement,
		byID:        make(map[string]int, len(pool.backends)),
		sessions:    make([]session, n),
		bheap:       make([]int32, n),
		bpos:        make([]int32, n),
		launchOrder: order,
		waitSketch:  obs.NewQuantileSketch(),
		depthSketch: obs.NewQuantileSketch(),
		rec:         rec,
	}
	for i := range e.sessions {
		s := &e.sessions[i]
		s.idx = i
		s.home = -1
		s.state = stateUnstarted
		s.bound = starts[i]
	}
	// Heap-order the launch order directly: it is already sorted by
	// (bound, index), which satisfies the heap invariant.
	for i, idx := range order {
		e.bheap[i] = idx
		e.bpos[idx] = int32(i)
	}
	if rec != nil {
		heap.Push(&e.events, event{t: rec.tickAt(1), kind: evTick, tie: 1})
	}
	for i, id := range pool.ids {
		e.byID[id] = i
	}
	if placement == PlaceHash {
		e.ring = buildRing(pool.ids)
	}
	for _, b := range pool.backends {
		switch {
		case b.chaos.FlapAt > 0:
			heap.Push(&e.events, event{t: b.chaos.FlapAt, kind: evFail, tie: b.idx, bidx: b.idx})
		case b.chaos.FailAt > 0:
			heap.Push(&e.events, event{t: b.chaos.FailAt, kind: evFail, tie: b.idx, bidx: b.idx})
		}
	}
	return e
}

// kickoff launches the initial client pipeline. Run calls it once,
// after installing e.launch.
func (e *engine) kickoff() {
	e.mu.Lock()
	e.process()
	e.mu.Unlock()
}

// The bound heap. Comparison is (bound, index); bounds only increase
// over a session's life, so after an in-place update only boundDown
// is needed.

func (e *engine) boundLess(a, b int32) bool {
	sa, sb := &e.sessions[a], &e.sessions[b]
	if sa.bound != sb.bound {
		return sa.bound < sb.bound
	}
	return a < b
}

func (e *engine) boundSwap(i, j int32) {
	h := e.bheap
	h[i], h[j] = h[j], h[i]
	e.bpos[h[i]] = i
	e.bpos[h[j]] = j
}

func (e *engine) boundUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.boundLess(e.bheap[i], e.bheap[parent]) {
			return
		}
		e.boundSwap(i, parent)
		i = parent
	}
}

func (e *engine) boundDown(i int32) {
	n := int32(len(e.bheap))
	for {
		least := i
		if l := 2*i + 1; l < n && e.boundLess(e.bheap[l], e.bheap[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && e.boundLess(e.bheap[r], e.bheap[least]) {
			least = r
		}
		if least == i {
			return
		}
		e.boundSwap(i, least)
		i = least
	}
}

// boundPush re-inserts a session whose bound again constrains the
// horizon (a blocked client waking into stateRunning).
func (e *engine) boundPush(idx int32) {
	i := int32(len(e.bheap))
	e.bheap = append(e.bheap, idx)
	e.bpos[idx] = i
	e.boundUp(i)
}

// boundRemove drops a session from the heap (blocking on a request,
// or finishing).
func (e *engine) boundRemove(idx int32) {
	i := e.bpos[idx]
	if i < 0 {
		return
	}
	last := int32(len(e.bheap) - 1)
	if i != last {
		e.boundSwap(i, last)
	}
	e.bheap = e.bheap[:last]
	e.bpos[idx] = -1
	if i < last {
		e.boundUp(i)
		e.boundDown(i)
	}
}

// maybeLaunch starts client goroutines for unstarted sessions: every
// session whose bound pins the horizon below the next event (the
// event cannot process until that client speaks), plus enough of the
// arrival-ordered queue to keep a bounded pipeline of live clients
// running ahead. Callers hold e.mu.
func (e *engine) maybeLaunch() {
	if e.launch == nil {
		return
	}
	if len(e.events) > 0 {
		t := e.events[0].t
		for e.nextLaunch < len(e.launchOrder) {
			idx := e.launchOrder[e.nextLaunch]
			if e.sessions[idx].bound >= t {
				break
			}
			e.launchOne(idx)
		}
	}
	for e.live < e.ahead && e.nextLaunch < len(e.launchOrder) {
		e.launchOne(e.launchOrder[e.nextLaunch])
	}
}

func (e *engine) launchOne(idx int32) {
	e.sessions[idx].state = stateLaunching
	e.nextLaunch++
	e.live++
	go e.launch(int(idx))
}

// submit hands one request to the engine and blocks until it is
// answered — served after its virtual wait, shed, or failed over. The
// caller must not hold a compute slot (see muxRemote).
func (e *engine) submit(s *session, hint, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, string, error) {

	r := &request{
		sess: s, t: reqTime, hint: hint,
		clientID: clientID, class: class, method: method,
		argBytes: argBytes, estEnd: estEnd,
		backend: -1,
		done:    make(chan struct{}),
	}
	e.mu.Lock()
	s.reqSeq++
	r.seq = s.reqSeq
	e.boundRemove(int32(s.idx))
	s.state = stateBlocked
	s.bound = reqTime
	heap.Push(&e.events, event{t: reqTime, kind: evArrive, tie: s.idx, req: r})
	e.process()
	e.mu.Unlock()
	<-r.done
	return r.res, r.servTime, r.queued, r.servedBy, r.err
}

// probe asks whether the named backend is up at the given virtual
// time, for a client's half-open breaker probe. The question rides the
// event heap like an arrival (same client-index tie-break — a client
// has at most one outstanding exchange, probe or request), so the
// answer reflects exactly the crashes, recoveries and loss bursts that
// precede it in virtual time, under any goroutine interleaving.
func (e *engine) probe(s *session, backend string, at energy.Seconds) error {
	r := &request{sess: s, t: at, hint: backend, probe: true, backend: -1, done: make(chan struct{})}
	e.mu.Lock()
	e.boundRemove(int32(s.idx))
	s.state = stateBlocked
	s.bound = at
	heap.Push(&e.events, event{t: at, kind: evArrive, tie: s.idx, req: r})
	e.process()
	e.mu.Unlock()
	<-r.done
	return r.err
}

// finish retires a session whose client completed its run (or died):
// its bound no longer constrains the event horizon.
func (e *engine) finish(s *session) {
	e.mu.Lock()
	e.boundRemove(int32(s.idx))
	s.state = stateFinished
	e.finished++
	e.live--
	e.process()
	e.mu.Unlock()
}

// horizon is the earliest virtual time at which an unfinished,
// unblocked client could still submit a request — the root of the
// bound heap. Events at or before it are safe to process (every
// exchange strictly advances a client past its bound, and a blocked
// client's wake-up is itself an event on the main heap).
func (e *engine) horizon() energy.Seconds {
	if len(e.bheap) == 0 {
		return energy.Seconds(math.Inf(1))
	}
	return e.sessions[e.bheap[0]].bound
}

// process drains every event whose virtual time has passed the
// horizon, in heap order, then launches any clients the frontier now
// needs. Callers hold e.mu.
func (e *engine) process() {
	e.drain()
	e.maybeLaunch()
}

func (e *engine) drain() {
	for len(e.events) > 0 {
		if e.events[0].t > e.horizon() {
			return
		}
		ev := heap.Pop(&e.events).(event)
		switch ev.kind {
		case evTick:
			e.rec.boundary(int64(ev.tie), e.pool)
			// The next boundary is tick*(k+1), a product — accumulated
			// tick times would drift and break cross-run byte equality.
			// The liveSessions gate bounds the cycle exactly like flap
			// rescheduling: the final in-flight tick drains at the end.
			if e.liveSessions() {
				heap.Push(&e.events, event{t: e.rec.tickAt(int64(ev.tie) + 1), kind: evTick, tie: ev.tie + 1})
			}
		case evFail:
			e.failBackend(ev)
		case evRecover:
			e.pool.backends[ev.bidx].down = false
			if e.rec != nil {
				e.rec.backendUp(ev.t, ev.bidx)
			}
		case evDone:
			e.complete(ev)
		case evArrive:
			e.arrive(ev)
		}
	}
}

// arrive places one request on a backend and runs its admission:
// grant a worker, wait in the backend's queue, or shed. Probe
// requests answer liveness only.
func (e *engine) arrive(ev event) {
	r := ev.req
	if r.probe {
		e.probeArrive(r)
		return
	}
	if e.rec != nil {
		e.rec.arrival(r.t)
	}
	bidx := e.pickBackend(r)
	if bidx < 0 {
		// Every backend is down: the pool is unreachable, which the
		// client's executor handles like any outage (timeout listen,
		// breaker, local fallback).
		r.err = fmt.Errorf("%w: fleet: every backend is down", radio.ErrConnectionLost)
		if e.rec != nil {
			e.rec.unreachable(r.t)
		}
		e.answer(r, r.t)
		return
	}
	r.backend = bidx
	b := e.pool.backends[bidx]
	if b.judgeLoss() {
		// The backend's own loss process ate the exchange; attribute
		// it so the client strikes that backend's breaker only.
		b.chaosLosses++
		r.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: exchange lost on backend %s", radio.ErrConnectionLost, b.id)}
		if e.rec != nil {
			e.rec.chaosLoss(r.t, bidx)
		}
		e.answer(r, r.t)
		return
	}
	switch {
	case b.busy < b.workers:
		e.start(r, b, r.t)
	case len(b.queue) >= b.queueCap:
		depth := len(b.queue)
		e.shed++
		b.shed++
		r.sess.shed++
		if e.rec != nil {
			e.rec.shed(r.t, bidx)
		}
		r.err = &core.BusyError{QueueDepth: depth, Backend: b.id}
		e.answer(r, r.t)
	default:
		b.queue = append(b.queue, r)
		e.depthSketch.Observe(float64(len(b.queue)))
		if len(b.queue) > b.maxDepth {
			b.maxDepth = len(b.queue)
		}
		if len(b.queue) > e.maxDepth {
			e.maxDepth = len(b.queue)
		}
	}
}

// probeArrive answers a per-backend breaker probe from the backend's
// state at the probe's virtual time: down or mid-loss-burst reads as
// failure. The probe consumes a loss draw like any exchange — a probe
// into a loss burst fails, which is exactly the signal the half-open
// breaker wants.
func (e *engine) probeArrive(r *request) {
	bidx, ok := e.byID[r.hint]
	if !ok {
		r.err = fmt.Errorf("fleet: probe for unknown backend %q", r.hint)
		e.answer(r, r.t)
		return
	}
	b := e.pool.backends[bidx]
	switch {
	case b.down:
		r.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: backend %s down", radio.ErrConnectionLost, b.id)}
	case b.judgeLoss():
		b.chaosLosses++
		r.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: probe lost on backend %s", radio.ErrConnectionLost, b.id)}
	}
	e.answer(r, r.t)
}

// complete frees the worker a finished request held and dispatches
// the backend's next waiting request at the completion time.
func (e *engine) complete(ev event) {
	b := e.pool.backends[ev.bidx]
	b.busy--
	if b.down || len(b.queue) == 0 {
		return
	}
	q := b.queue[0]
	b.queue = b.queue[1:]
	e.start(q, b, ev.t)
}

// failBackend takes a backend down at its failure time: every queued
// request is flushed with a connection-lost error attributed to the
// backend (the blocked clients wake into their executors' loss
// machinery, strike that backend's breaker, and re-place on the
// survivors), running requests complete, and placement stops
// considering the backend. A flapping backend also schedules its
// restart and — while any session still runs — its next crash, so the
// cycle cannot outlive the fleet and spin the event loop forever.
func (e *engine) failBackend(ev event) {
	b := e.pool.backends[ev.bidx]
	b.down = true
	b.flaps++
	queued := b.queue
	b.queue = nil
	if e.rec != nil {
		e.rec.backendDown(ev.t, ev.bidx, len(queued))
	}
	for _, q := range queued {
		q.err = &core.BackendError{Backend: b.id,
			Err: fmt.Errorf("%w: fleet: backend %s failed", radio.ErrConnectionLost, b.id)}
		e.answer(q, ev.t)
	}
	if b.chaos.FlapAt > 0 && b.chaos.FlapDown > 0 {
		heap.Push(&e.events, event{t: ev.t + b.chaos.FlapDown, kind: evRecover, tie: b.idx, bidx: b.idx})
		if b.chaos.FlapEvery > 0 && e.liveSessions() {
			heap.Push(&e.events, event{t: ev.t + b.chaos.FlapEvery, kind: evFail, tie: b.idx, bidx: b.idx})
		}
	}
}

// liveSessions reports whether any session has not finished — the
// gate on re-scheduling flap cycles and telemetry ticks.
func (e *engine) liveSessions() bool {
	return e.finished < len(e.sessions)
}

// start runs one admitted request on a worker of backend b beginning
// at the given virtual time. The server work itself executes here,
// under the engine lock: Server.Execute serializes on its own mutex
// anyway, and running it at dispatch keeps the request's service time
// available for the completion event.
func (e *engine) start(q *request, b *poolBackend, at energy.Seconds) {
	wait := at - q.t
	// Placement-aware warmup: when the session's work re-homes away
	// from a backend that is now down, pre-load this backend's session
	// cache from the dead one before serving — re-homed repeats answer
	// from cache instead of re-paying full execution.
	if prev := q.sess.home; prev >= 0 && prev != b.idx && e.pool.backends[prev].down {
		if n := b.clients[q.sess.idx].WarmFrom(e.pool.backends[prev].clients[q.sess.idx]); n > 0 {
			b.warmups++
		}
	}
	q.sess.home = b.idx
	res, servTime, queued, err := b.clients[q.sess.idx].ExecuteDirect(context.Background(),
		q.clientID, q.class, q.method, q.argBytes, q.t, q.estEnd)
	if err != nil {
		q.err = err
		e.answer(q, at)
		return
	}
	// Brown-out: inside the window the backend serves at a degraded
	// rate, so the same work holds its worker longer.
	if f := b.chaos.BrownoutFactor; f > 1 && at >= b.chaos.BrownoutAt &&
		(b.chaos.BrownoutFor <= 0 || at < b.chaos.BrownoutAt+b.chaos.BrownoutFor) {
		servTime = energy.Seconds(float64(servTime) * f)
		b.slowed++
	}
	b.busy++
	e.served++
	b.served++
	b.waitSum += wait
	q.sess.served++
	q.sess.waitSum += wait
	if wait > q.sess.maxWait {
		q.sess.maxWait = wait
	}
	e.waitSketch.Observe(float64(wait))
	if e.rec != nil {
		e.rec.served(at, b.idx, wait)
	}
	q.res, q.servTime, q.queued, q.servedBy = res, wait+servTime, queued, b.id
	e.doneSeq++
	heap.Push(&e.events, event{t: at + servTime, kind: evDone, tie: e.doneSeq, req: q, bidx: b.idx})
	e.answer(q, at+servTime)
}

// answer completes a request: the session is running again from the
// given virtual time (its bound re-joins the horizon heap), and the
// blocked client wakes.
func (e *engine) answer(q *request, bound energy.Seconds) {
	q.sess.state = stateRunning
	q.sess.bound = bound
	e.boundPush(int32(q.sess.idx))
	close(q.done)
}

// gate is the compute-slot semaphore bounding how many client
// goroutines simulate concurrently. The admission order never depends
// on it — that is what the determinism test checks.
type gate struct{ ch chan struct{} }

func newGate(n int) *gate { return &gate{ch: make(chan struct{}, n)} }

func (g *gate) acquire() { g.ch <- struct{}{} }
func (g *gate) release() { <-g.ch }

// muxRemote is the Remote each fleet client talks to: a MultiRemote
// over the pool, so the client prices one candidate per backend and
// sends its pick-cheapest hint. Offload executions go through the
// engine's virtual-time placement and admission (releasing the
// client's compute slot while blocked, so a single slot cannot
// deadlock the fleet), while body downloads are control-plane traffic
// served directly from the client's session on backend 0.
type muxRemote struct {
	e    *engine
	s    *session
	gate *gate
}

// Backends implements core.MultiRemote.
func (m *muxRemote) Backends() []string { return m.e.pool.ids }

// Execute implements core.Remote (no placement hint).
func (m *muxRemote) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {

	res, servTime, queued, _, err := m.ExecuteOn(ctx, "", clientID, class, method, argBytes, reqTime, estEnd)
	return res, servTime, queued, err
}

// ExecuteOn implements core.MultiRemote: the hint rides to the
// engine, whose placement policy decides.
func (m *muxRemote) ExecuteOn(ctx context.Context, backend, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, string, error) {

	m.gate.release()
	defer m.gate.acquire()
	return m.e.submit(m.s, backend, clientID, class, method, argBytes, reqTime, estEnd)
}

func (m *muxRemote) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return m.e.pool.backends[0].clients[m.s.idx].CompiledBody(ctx, qname, level)
}

// ProbeBackend implements core.BackendProber: the client's half-open
// per-backend breaker probe, answered from the engine's virtual-time
// state (releasing the compute slot while blocked, like any exchange).
func (m *muxRemote) ProbeBackend(ctx context.Context, backend string, at energy.Seconds) error {
	m.gate.release()
	defer m.gate.acquire()
	return m.e.probe(m.s, backend, at)
}

var _ core.MultiRemote = (*muxRemote)(nil)
var _ core.BackendProber = (*muxRemote)(nil)
