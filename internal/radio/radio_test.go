package radio

import (
	"errors"
	"math"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestFig2Powers(t *testing.T) {
	c := WCDMA()
	// Rx = mixer + demodulator + ADC + VCO.
	wantRx := 0.03375 + 0.0378 + 0.710 + 0.090
	if got := float64(c.RxPower()); !approx(got, wantRx, 1e-12) {
		t.Errorf("RxPower = %g, want %g", got, wantRx)
	}
	// Tx(Class1) = DAC + PA(5.88) + driver + modulator + VCO.
	wantTx1 := 0.185 + 5.88 + 0.1026 + 0.108 + 0.090
	if got := float64(c.TxPower(Class1)); !approx(got, wantTx1, 1e-12) {
		t.Errorf("TxPower(C1) = %g, want %g", got, wantTx1)
	}
	wantTx4 := 0.185 + 0.37 + 0.1026 + 0.108 + 0.090
	if got := float64(c.TxPower(Class4)); !approx(got, wantTx4, 1e-12) {
		t.Errorf("TxPower(C4) = %g, want %g", got, wantTx4)
	}
	// Ordering across classes.
	for cls := Class1; cls < Class4; cls++ {
		if c.TxPower(cls) <= c.TxPower(cls+1) {
			t.Errorf("TxPower(%v) should exceed TxPower(%v)", cls, cls+1)
		}
	}
}

func TestTxPowerPanicsOnBadClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	WCDMA().TxPower(Class(0))
}

func TestTimingAndEnergy(t *testing.T) {
	c := WCDMA()
	// 1000-byte payload + 48 overhead = 8384 bits at 2.3 Mbps (full
	// rate under the best channel condition).
	wantT := 8384.0 / 2.3e6
	if got := float64(c.AirTime(1000, Class4)); !approx(got, wantT, 1e-12) {
		t.Errorf("AirTime = %g, want %g", got, wantT)
	}
	// A degraded channel lowers the effective rate and lengthens air
	// time in both directions.
	if c.AirTime(1000, Class1) <= c.AirTime(1000, Class4) {
		t.Error("air time should grow as the channel degrades")
	}
	e := float64(c.TxEnergy(1000, Class4))
	if !approx(e, wantT*float64(c.TxPower(Class4)), 1e-12) {
		t.Errorf("TxEnergy inconsistent with power x time")
	}
	if c.EnergyPerTxBit(Class1) <= c.EnergyPerTxBit(Class4) {
		t.Error("per-bit energy should fall with better channel")
	}
	if c.EnergyPerRxBit(Class4) <= 0 {
		t.Error("per-bit receive energy must be positive")
	}
	if c.EnergyPerRxBit(Class1) <= c.EnergyPerRxBit(Class4) {
		t.Error("per-bit receive energy should grow as the channel degrades")
	}
}

func TestIIDDistribution(t *testing.T) {
	r := rng.New(1)
	ch := PredominantlyGood(r)
	counts := map[Class]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[ch.Current()]++
		ch.Step()
	}
	if frac := float64(counts[Class4]) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("good channel Class4 fraction = %g, want ~0.75", frac)
	}
	ch2 := PredominantlyPoor(rng.New(2))
	counts2 := map[Class]int{}
	for i := 0; i < n; i++ {
		counts2[ch2.Current()]++
		ch2.Step()
	}
	if frac := float64(counts2[Class1]) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("poor channel Class1 fraction = %g, want ~0.75", frac)
	}
	ch3 := UniformChannel(rng.New(3))
	counts3 := map[Class]int{}
	for i := 0; i < n; i++ {
		counts3[ch3.Current()]++
		ch3.Step()
	}
	for cls := Class1; cls <= Class4; cls++ {
		if frac := float64(counts3[cls]) / n; math.Abs(frac-0.25) > 0.02 {
			t.Errorf("uniform channel %v fraction = %g", cls, frac)
		}
	}
}

func TestMarkovStaysInRange(t *testing.T) {
	ch := NewMarkov(Class2, 0.8, rng.New(7))
	transitions := 0
	prev := ch.Current()
	for i := 0; i < 5000; i++ {
		ch.Step()
		c := ch.Current()
		if !c.Valid() {
			t.Fatalf("invalid class %d", c)
		}
		if c != prev {
			transitions++
			if c != prev-1 && c != prev+1 {
				t.Fatalf("non-adjacent transition %v -> %v", prev, c)
			}
		}
		prev = c
	}
	frac := float64(transitions) / 5000
	if math.Abs(frac-0.2) > 0.03 {
		t.Errorf("transition rate = %g, want ~0.2", frac)
	}
}

func TestPilotTrackerErrors(t *testing.T) {
	ch := Fixed{Cls: Class3}
	exact := NewPilotTracker(ch, 0, nil)
	if exact.Estimate() != Class3 {
		t.Error("error-free tracker should be exact")
	}
	noisy := NewPilotTracker(ch, 1.0, rng.New(5))
	if got := noisy.Estimate(); got != Class4 {
		t.Errorf("always-wrong tracker = %v, want off-by-one Class 4", got)
	}
	edge := NewPilotTracker(Fixed{Cls: Class4}, 1.0, rng.New(5))
	if got := edge.Estimate(); got != Class3 {
		t.Errorf("clamped tracker = %v, want Class 3", got)
	}
}

func TestLinkChargesAccount(t *testing.T) {
	model := energy.MicroSPARCIIep()
	acct := energy.NewAccount(model)
	l := NewLink(WCDMA(), Fixed{Cls: Class4}, acct, rng.New(9))

	if _, err := l.Send(500); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recv(200); err != nil {
		t.Fatal(err)
	}
	l.Listen(0.01)
	if acct.Component(energy.CompRadioTx) <= 0 {
		t.Error("no transmit energy charged")
	}
	wantRx := float64(WCDMA().RxEnergy(200, Class4)) + 0.01*float64(WCDMA().RxPower())
	if got := float64(acct.Component(energy.CompRadioRx)); !approx(got, wantRx, 1e-9) {
		t.Errorf("rx energy = %g, want %g", got, wantRx)
	}
	if l.BytesSent != 500 || l.BytesReceived != 200 {
		t.Error("telemetry wrong")
	}
}

func TestLinkChannelAffectsTxEnergy(t *testing.T) {
	model := energy.MicroSPARCIIep()
	a1 := energy.NewAccount(model)
	l1 := NewLink(WCDMA(), Fixed{Cls: Class1}, a1, nil)
	if _, err := l1.Send(1000); err != nil {
		t.Fatal(err)
	}
	a4 := energy.NewAccount(model)
	l4 := NewLink(WCDMA(), Fixed{Cls: Class4}, a4, nil)
	if _, err := l4.Send(1000); err != nil {
		t.Fatal(err)
	}
	ratio := float64(a1.Component(energy.CompRadioTx)) / float64(a4.Component(energy.CompRadioTx))
	// Power ratio 6.3656/0.8556 W times the air-time ratio 1/0.35.
	want := 6.3656 / 0.8556 / WCDMA().RateFactor(Class1)
	if !approx(ratio, want, 1e-6) {
		t.Errorf("C1/C4 energy ratio = %g, want %g", ratio, want)
	}
}

func TestLinkLoss(t *testing.T) {
	model := energy.MicroSPARCIIep()
	acct := energy.NewAccount(model)
	l := NewLink(WCDMA(), Fixed{Cls: Class4}, acct, rng.New(11))
	l.LossProb = 1.0
	if _, err := l.Send(10); !errors.Is(err, ErrConnectionLost) {
		t.Errorf("err = %v, want ErrConnectionLost", err)
	}
	if l.Losses != 1 {
		t.Error("loss not counted")
	}
	l.LossProb = 0
	if _, err := l.Send(10); err != nil {
		t.Errorf("send after restoring link: %v", err)
	}
}

func TestSendRetransmitOnOverestimate(t *testing.T) {
	model := energy.MicroSPARCIIep()
	// Channel is Class 2 but the tracker always reports one class
	// better (Class 3): every send is underpowered once.
	acct := energy.NewAccount(model)
	l := NewLink(WCDMA(), Fixed{Cls: Class2}, acct, rng.New(3))
	l.Tracker = NewPilotTracker(Fixed{Cls: Class2}, 1.0, rng.New(4))
	tAir, err := l.Send(100)
	if err != nil {
		t.Fatal(err)
	}
	if l.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", l.Retransmits)
	}
	// Cost must exceed a clean Class 2 transmission.
	clean := float64(WCDMA().TxEnergy(100, Class2))
	if got := float64(acct.Component(energy.CompRadioTx)); got <= clean {
		t.Errorf("retransmitted energy %g should exceed clean %g", got, clean)
	}
	if float64(tAir) <= float64(WCDMA().AirTime(100, Class2)) {
		t.Error("retransmission should lengthen the air time")
	}

	// Underestimating (transmitting stronger than needed) needs no
	// retransmission.
	acct2 := energy.NewAccount(model)
	l2 := NewLink(WCDMA(), Fixed{Cls: Class3}, acct2, rng.New(5))
	l2.Tracker = NewPilotTracker(Fixed{Cls: Class1}, 0, nil) // reports worse
	if _, err := l2.Send(100); err != nil {
		t.Fatal(err)
	}
	if l2.Retransmits != 0 {
		t.Error("overpowered transmission should not retransmit")
	}
}
