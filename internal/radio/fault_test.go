package radio

import (
	"errors"
	"math"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

func faultTestLink(f FaultModel, seed uint64) (*Link, *energy.Account) {
	acct := energy.NewAccount(energy.MicroSPARCIIep())
	l := NewLink(WCDMA(), Fixed{Cls: Class4}, acct, rng.New(seed))
	l.Fault = f
	return l, acct
}

func TestIIDLossMatchesLossProb(t *testing.T) {
	// The IIDLoss fault model must reproduce the legacy LossProb coin
	// exactly: same rng stream, same losses.
	const p = 0.3
	legacy, _ := faultTestLink(nil, 42)
	legacy.Fault = nil
	legacy.LossProb = p
	model, _ := faultTestLink(IIDLoss{P: p}, 42)
	for i := 0; i < 500; i++ {
		_, errA := legacy.Send(100)
		_, errB := model.Send(100)
		if (errA != nil) != (errB != nil) {
			t.Fatalf("transfer %d: legacy err=%v, model err=%v", i, errA, errB)
		}
	}
	if legacy.Losses != model.Losses {
		t.Errorf("losses diverged: legacy %d, model %d", legacy.Losses, model.Losses)
	}
	if legacy.Losses == 0 || legacy.Losses == 500 {
		t.Errorf("degenerate loss count %d", legacy.Losses)
	}
}

func TestGilbertElliottStationaryRateAndBurstLength(t *testing.T) {
	const (
		rate  = 0.2
		burst = 5.0
		n     = 200000
	)
	ge := NewGilbertElliott(rate, burst)
	r := rng.New(7)
	losses, bursts, run := 0, 0, 0
	var runs []int
	for i := 0; i < n; i++ {
		if ge.Judge(DirSend, r).Lost {
			losses++
			run++
		} else if run > 0 {
			bursts++
			runs = append(runs, run)
			run = 0
		}
	}
	got := float64(losses) / n
	if math.Abs(got-rate) > 0.02 {
		t.Errorf("stationary loss rate %.3f, want ~%.2f", got, rate)
	}
	var sum int
	for _, r := range runs {
		sum += r
	}
	mean := float64(sum) / float64(len(runs))
	if math.Abs(mean-burst) > 0.5 {
		t.Errorf("mean burst length %.2f, want ~%.1f", mean, burst)
	}
	// Burstiness: bursts of >= 3 consecutive losses must be far more
	// common than under an i.i.d. coin with the same rate.
	long := 0
	for _, r := range runs {
		if r >= 3 {
			long++
		}
	}
	if frac := float64(long) / float64(len(runs)); frac < 0.3 {
		t.Errorf("only %.1f%% of bursts are >= 3 transfers; process is not bursty", frac*100)
	}
}

func TestGilbertElliottDeterministic(t *testing.T) {
	run := func() []bool {
		ge := NewGilbertElliott(0.3, 4)
		r := rng.New(99)
		out := make([]bool, 200)
		for i := range out {
			out[i] = ge.Judge(DirRecv, r).Lost
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged under identical seeds", i)
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("outage rate 1.0 should panic")
		}
	}()
	NewGilbertElliott(1.0, 5)
}

func TestResponseLossOnlyHitsReceptions(t *testing.T) {
	l, _ := faultTestLink(ResponseLoss{P: 1}, 5)
	if _, err := l.Send(100); err != nil {
		t.Fatalf("send should survive a response-loss fault: %v", err)
	}
	if _, err := l.Recv(100); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("recv err = %v, want connection lost", err)
	}
	if l.BytesSent != 100 || l.BytesReceived != 0 {
		t.Errorf("bytes sent %d recv %d; request energy must be spent, response lost",
			l.BytesSent, l.BytesReceived)
	}
	if l.Losses != 1 {
		t.Errorf("losses = %d, want 1", l.Losses)
	}
}

func TestSlowServerChargesStall(t *testing.T) {
	const stall = energy.Seconds(0.25)
	l, acct := faultTestLink(SlowServer{P: 1, Stall: stall}, 6)
	before := acct.Component(energy.CompRadioRx)
	tSend, err := l.Send(64)
	if err != nil {
		t.Fatalf("send should pass a slow-server fault: %v", err)
	}
	if tSend <= 0 {
		t.Error("send air time should be positive")
	}
	tRecv, err := l.Recv(64)
	if !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("recv err = %v, want connection lost", err)
	}
	if tRecv != stall {
		t.Errorf("stall time %v, want %v", tRecv, stall)
	}
	wantE := energy.Energy(l.Chip.RxPower(), stall)
	if got := acct.Component(energy.CompRadioRx) - before; got != wantE {
		t.Errorf("stall listen energy %v, want %v", got, wantE)
	}
	if l.Stalls != 1 || l.StallTime != stall {
		t.Errorf("stalls=%d stallTime=%v", l.Stalls, l.StallTime)
	}
}

func TestComposeOverlaysModels(t *testing.T) {
	// Response loss plus a stalling slow server: the reception is lost
	// and the longest stall applies.
	f := Compose(ResponseLoss{P: 1}, SlowServer{P: 1, Stall: 0.5})
	v := f.Judge(DirRecv, rng.New(1))
	if !v.Lost || v.Stall != 0.5 {
		t.Errorf("verdict = %+v, want lost with 0.5s stall", v)
	}
	v = f.Judge(DirSend, rng.New(1))
	if v.Lost {
		t.Error("send should survive both models")
	}
}

func TestFaultStreamIndependentOfOutcome(t *testing.T) {
	// A stateful model consumes the same rng stream regardless of the
	// direction mix, so interleaving sends/recvs differently cannot
	// desynchronize seeded runs.
	judge := func(dirs []Direction) []bool {
		f := Compose(NewGilbertElliott(0.3, 3), ResponseLoss{P: 0.2})
		r := rng.New(11)
		out := make([]bool, len(dirs))
		for i, d := range dirs {
			out[i] = f.Judge(d, r).Lost
		}
		return out
	}
	a := judge([]Direction{DirSend, DirSend, DirSend, DirSend})
	b := judge([]Direction{DirRecv, DirRecv, DirRecv, DirRecv})
	// Outcomes may differ by direction, but the underlying burst state
	// must match: transfer i is in an outage in stream a iff it is in
	// stream b (GilbertElliott ignores direction).
	ge1, ge2 := NewGilbertElliott(0.3, 3), NewGilbertElliott(0.3, 3)
	r1, r2 := rng.New(11), rng.New(11)
	for i := 0; i < 4; i++ {
		v1 := ge1.Judge(DirSend, r1)
		ResponseLoss{P: 0.2}.Judge(DirSend, r1)
		v2 := ge2.Judge(DirRecv, r2)
		ResponseLoss{P: 0.2}.Judge(DirRecv, r2)
		if v1.Lost != v2.Lost {
			t.Fatalf("burst state diverged at transfer %d", i)
		}
	}
	_ = a
	_ = b
}

func TestLinkTelemetrySnapshot(t *testing.T) {
	l, _ := faultTestLink(IIDLoss{P: 0.5}, 13)
	for i := 0; i < 20; i++ {
		l.Send(50)  //nolint:errcheck // losses are the point
		l.Recv(100) //nolint:errcheck
	}
	tel := l.Telemetry()
	if tel.Exchanges != 40 {
		t.Errorf("exchanges = %d, want 40", tel.Exchanges)
	}
	if tel.Losses == 0 || tel.Losses == 40 {
		t.Errorf("losses = %d, want some but not all", tel.Losses)
	}
	if tel.BytesSent == 0 || tel.BytesReceived == 0 {
		t.Error("some transfers in each direction should have survived")
	}
	if tel.Losses != l.Losses || tel.BytesSent != l.BytesSent {
		t.Error("snapshot diverges from live counters")
	}
}
