package radio

import (
	"fmt"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

// Fault injection: the paper's framework must survive a hostile
// wireless link (§3.2: when the result does not arrive within a time
// threshold, connectivity is considered lost and execution falls back
// locally). A single i.i.d. per-transfer coin understates reality —
// real outages are bursty (shadowing, handoffs), responses are lost
// after the request already spent transmit energy, and servers stall
// or crash while the client listens. FaultModel makes the failure
// process pluggable; every model draws from the link's deterministic
// rng so seeded experiment grids stay byte-reproducible.

// Direction distinguishes the two halves of an exchange as seen from
// the client.
type Direction int

// Transfer directions.
const (
	// DirSend is a client transmission (request, upload).
	DirSend Direction = iota
	// DirRecv is a client reception (response, download).
	DirRecv
)

// String names the direction.
func (d Direction) String() string {
	if d == DirSend {
		return "send"
	}
	return "recv"
}

// Verdict is a fault model's ruling on one transfer.
type Verdict struct {
	// Lost reports that the transfer fails with ErrConnectionLost.
	Lost bool
	// Stall is receiver-up waiting time the client spends before it
	// detects the loss (a slow or crashed server keeps the client
	// listening until its deadline). The Link charges the listen
	// energy and reports the time to the caller.
	Stall energy.Seconds
}

// FaultModel decides the fate of each transfer on a link. Judge is
// called exactly once per transfer, in transfer order, with the
// link's deterministic rng; stateful models (burst processes) advance
// on every call regardless of outcome, so a model's random stream
// depends only on the number of transfers, never on their fates.
type FaultModel interface {
	Judge(dir Direction, r *rng.RNG) Verdict
}

// IIDLoss loses each transfer independently with probability P — the
// classic single-coin model (identical to Link.LossProb, kept as a
// FaultModel so it composes with the others).
type IIDLoss struct {
	P float64
}

// Judge implements FaultModel.
func (f IIDLoss) Judge(dir Direction, r *rng.RNG) Verdict {
	return Verdict{Lost: f.P > 0 && r.Float64() < f.P}
}

// GilbertElliott is a two-state burst-outage process: the link
// alternates between an Up state (transfers succeed) and a Down state
// (transfers are lost), with geometrically distributed residence
// times. It is parameterized by the stationary outage rate (long-run
// fraction of transfers that fall in Down periods) and the mean Down
// burst length in transfers, which matches how outages are reported
// in measurement studies.
type GilbertElliott struct {
	// OutageRate is the stationary fraction of lost transfers, in
	// [0, 1).
	OutageRate float64
	// MeanBurst is the mean length of a Down period in transfers
	// (>= 1).
	MeanBurst float64

	down    bool
	started bool
}

// NewGilbertElliott builds the burst process. outageRate is the
// stationary loss fraction in [0, 1); meanBurst the mean outage
// length in transfers (clamped to >= 1).
func NewGilbertElliott(outageRate, meanBurst float64) *GilbertElliott {
	if outageRate < 0 || outageRate >= 1 {
		panic(fmt.Sprintf("radio: outage rate %g outside [0, 1)", outageRate))
	}
	if meanBurst < 1 {
		meanBurst = 1
	}
	return &GilbertElliott{OutageRate: outageRate, MeanBurst: meanBurst}
}

// Down reports whether the process is currently in its outage state.
func (f *GilbertElliott) Down() bool { return f.down }

// Judge implements FaultModel: advance the two-state chain, then rule
// by the current state. Exit probability 1/MeanBurst gives the
// configured mean burst length; the entry probability is derived so
// the stationary Down fraction equals OutageRate.
func (f *GilbertElliott) Judge(dir Direction, r *rng.RNG) Verdict {
	if f.OutageRate <= 0 {
		return Verdict{}
	}
	exitP := 1 / f.MeanBurst
	enterP := exitP * f.OutageRate / (1 - f.OutageRate)
	if enterP > 1 {
		enterP = 1
	}
	if !f.started {
		// Start in the stationary distribution so short scenarios see
		// the configured outage rate.
		f.started = true
		f.down = r.Float64() < f.OutageRate
	} else if f.down {
		if r.Float64() < exitP {
			f.down = false
		}
	} else {
		if r.Float64() < enterP {
			f.down = true
		}
	}
	return Verdict{Lost: f.down}
}

// ResponseLoss loses only receptions: the request goes out (and its
// transmit energy is spent) but the response never arrives — the
// mid-exchange drop that makes offloading strictly worse than not
// having tried.
type ResponseLoss struct {
	P float64
}

// Judge implements FaultModel.
func (f ResponseLoss) Judge(dir Direction, r *rng.RNG) Verdict {
	if f.P <= 0 {
		return Verdict{}
	}
	// Draw on every transfer so the stream is independent of the
	// direction mix.
	lost := r.Float64() < f.P
	return Verdict{Lost: lost && dir == DirRecv}
}

// SlowServer models a stalled or crashed server: with probability P a
// reception does not complete in time. The client keeps its receiver
// up for Stall seconds (its deadline wait) before declaring the
// connection lost; Stall = 0 models an immediate connection reset.
type SlowServer struct {
	P     float64
	Stall energy.Seconds
}

// Judge implements FaultModel.
func (f SlowServer) Judge(dir Direction, r *rng.RNG) Verdict {
	if f.P <= 0 {
		return Verdict{}
	}
	lost := r.Float64() < f.P
	if !lost || dir != DirRecv {
		return Verdict{}
	}
	return Verdict{Lost: true, Stall: f.Stall}
}

// Compose overlays several fault models: each judges every transfer
// (all random streams advance deterministically) and the transfer is
// lost if any model loses it, stalling for the longest stall.
func Compose(models ...FaultModel) FaultModel {
	return composite(models)
}

type composite []FaultModel

// Judge implements FaultModel.
func (c composite) Judge(dir Direction, r *rng.RNG) Verdict {
	var out Verdict
	for _, m := range c {
		v := m.Judge(dir, r)
		out.Lost = out.Lost || v.Lost
		if v.Stall > out.Stall {
			out.Stall = v.Stall
		}
	}
	return out
}
