package radio

import (
	"errors"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

// ErrConnectionLost reports that the link dropped during an exchange;
// the paper's framework falls back to local execution when the result
// does not arrive within a timeout. Transport implementations wrap
// this error, so callers must test with errors.Is.
var ErrConnectionLost = errors.New("radio: connection to server lost")

// Link couples a chip set with a channel process and charges client
// communication energy to an account. The server side is resource-rich
// and its energy is not modelled, matching the paper.
type Link struct {
	Chip *Chipset
	Ch   Channel
	// Tracker provides the client's channel estimate used to choose
	// the transmit power setting.
	Tracker *PilotTracker
	// LossProb is the per-exchange probability of losing connectivity
	// (the legacy i.i.d. coin, used when Fault is nil).
	LossProb float64
	// Fault, when set, replaces the LossProb coin with a pluggable
	// failure process (burst outages, mid-exchange drops, stalled
	// servers); see FaultModel.
	Fault FaultModel

	acct *energy.Account
	r    *rng.RNG

	// Telemetry.
	BytesSent     int
	BytesReceived int
	Exchanges     int
	Losses        int
	Retransmits   int
	// Stalls counts losses detected only after a receiver-up wait (a
	// slow or crashed server); StallTime is the total time so spent.
	Stalls    int
	StallTime energy.Seconds
}

// Telemetry is a snapshot of a link's counters, for surfacing through
// stats sinks without handing out the live Link.
type Telemetry struct {
	BytesSent     int
	BytesReceived int
	Exchanges     int
	Losses        int
	Retransmits   int
	Stalls        int
	StallTime     energy.Seconds
}

// Telemetry snapshots the link's counters.
func (l *Link) Telemetry() Telemetry {
	return Telemetry{
		BytesSent:     l.BytesSent,
		BytesReceived: l.BytesReceived,
		Exchanges:     l.Exchanges,
		Losses:        l.Losses,
		Retransmits:   l.Retransmits,
		Stalls:        l.Stalls,
		StallTime:     l.StallTime,
	}
}

// NewLink builds a link charging the given account.
func NewLink(chip *Chipset, ch Channel, acct *energy.Account, r *rng.RNG) *Link {
	return &Link{
		Chip:    chip,
		Ch:      ch,
		Tracker: NewPilotTracker(ch, 0, r),
		acct:    acct,
		r:       r,
	}
}

// SetAccount redirects future charges.
func (l *Link) SetAccount(acct *energy.Account) { l.acct = acct }

// EstimateClass returns the client's current channel estimate.
func (l *Link) EstimateClass() Class { return l.Tracker.Estimate() }

// Send transmits payloadBytes to the server at the power setting for
// the estimated channel condition, charging transmit energy and
// returning the air time. When the tracker overestimates the channel
// (a too-weak power setting for the true condition), the transmission
// fails and is repeated at the true setting: estimation errors cost
// energy, never save it.
//
// On ErrConnectionLost the returned time is the receiver-up stall the
// client spent before detecting the loss (already charged to the
// account); callers must still advance their clock by it.
func (l *Link) Send(payloadBytes int) (energy.Seconds, error) {
	if stall, lost := l.lost(DirSend); lost {
		return stall, ErrConnectionLost
	}
	cls := l.Tracker.Estimate()
	actual := l.Ch.Current()
	var t energy.Seconds
	if cls > actual {
		// Underpowered attempt: full air time wasted, then retransmit.
		l.acct.AddRadio(true, l.Chip.TxEnergy(payloadBytes, cls))
		t += l.Chip.AirTime(payloadBytes, cls)
		l.Retransmits++
		cls = actual
	}
	l.acct.AddRadio(true, l.Chip.TxEnergy(payloadBytes, cls))
	l.BytesSent += payloadBytes
	return t + l.Chip.AirTime(payloadBytes, cls), nil
}

// Recv receives payloadBytes from the server, charging receive energy
// and returning the air time. Reception timing follows the true
// channel condition (the base station transmits at the right setting).
//
// On ErrConnectionLost the returned time is the receiver-up stall the
// client spent before detecting the loss (already charged to the
// account); callers must still advance their clock by it.
func (l *Link) Recv(payloadBytes int) (energy.Seconds, error) {
	if stall, lost := l.lost(DirRecv); lost {
		return stall, ErrConnectionLost
	}
	cls := l.Ch.Current()
	l.acct.AddRadio(false, l.Chip.RxEnergy(payloadBytes, cls))
	l.BytesReceived += payloadBytes
	return l.Chip.AirTime(payloadBytes, cls), nil
}

// Listen charges receiver power for a waiting window of duration t
// (the client's receiver must be up while expecting data).
func (l *Link) Listen(t energy.Seconds) {
	l.acct.AddRadio(false, energy.Energy(l.Chip.RxPower(), t))
}

// Control receives a small control frame (a server busy rejection, a
// handshake reply) at the true channel condition, charging receive
// energy and returning the air time. The fault model is not consulted:
// the frame itself is the signal the caller is reacting to, so judging
// it lost again would double-count the failure.
func (l *Link) Control(payloadBytes int) energy.Seconds {
	cls := l.Ch.Current()
	l.acct.AddRadio(false, l.Chip.RxEnergy(payloadBytes, cls))
	l.BytesReceived += payloadBytes
	return l.Chip.AirTime(payloadBytes, cls)
}

// StepChannel advances the channel process between invocations.
func (l *Link) StepChannel() {
	l.Ch.Step()
}

// lost rules on one transfer via the fault model (or the legacy
// LossProb coin). A lost transfer with a stall charges the listen
// energy here; the stall time is returned for the caller's clock.
func (l *Link) lost(dir Direction) (energy.Seconds, bool) {
	l.Exchanges++
	if l.Fault != nil {
		v := l.Fault.Judge(dir, l.r)
		if !v.Lost {
			return 0, false
		}
		l.Losses++
		if v.Stall > 0 {
			l.Stalls++
			l.StallTime += v.Stall
			l.Listen(v.Stall)
		}
		return v.Stall, true
	}
	if l.LossProb > 0 && l.r != nil && l.r.Float64() < l.LossProb {
		l.Losses++
		return 0, true
	}
	return 0, false
}
