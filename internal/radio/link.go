package radio

import (
	"errors"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

// ErrConnectionLost reports that the link dropped during an exchange;
// the paper's framework falls back to local execution when the result
// does not arrive within a timeout.
var ErrConnectionLost = errors.New("radio: connection to server lost")

// Link couples a chip set with a channel process and charges client
// communication energy to an account. The server side is resource-rich
// and its energy is not modelled, matching the paper.
type Link struct {
	Chip *Chipset
	Ch   Channel
	// Tracker provides the client's channel estimate used to choose
	// the transmit power setting.
	Tracker *PilotTracker
	// LossProb is the per-exchange probability of losing connectivity.
	LossProb float64

	acct *energy.Account
	r    *rng.RNG

	// Telemetry.
	BytesSent     int
	BytesReceived int
	Exchanges     int
	Losses        int
	Retransmits   int
}

// NewLink builds a link charging the given account.
func NewLink(chip *Chipset, ch Channel, acct *energy.Account, r *rng.RNG) *Link {
	return &Link{
		Chip:    chip,
		Ch:      ch,
		Tracker: NewPilotTracker(ch, 0, r),
		acct:    acct,
		r:       r,
	}
}

// SetAccount redirects future charges.
func (l *Link) SetAccount(acct *energy.Account) { l.acct = acct }

// EstimateClass returns the client's current channel estimate.
func (l *Link) EstimateClass() Class { return l.Tracker.Estimate() }

// Send transmits payloadBytes to the server at the power setting for
// the estimated channel condition, charging transmit energy and
// returning the air time. When the tracker overestimates the channel
// (a too-weak power setting for the true condition), the transmission
// fails and is repeated at the true setting: estimation errors cost
// energy, never save it.
func (l *Link) Send(payloadBytes int) (energy.Seconds, error) {
	if l.lost() {
		return 0, ErrConnectionLost
	}
	cls := l.Tracker.Estimate()
	actual := l.Ch.Current()
	var t energy.Seconds
	if cls > actual {
		// Underpowered attempt: full air time wasted, then retransmit.
		l.acct.AddRadio(true, l.Chip.TxEnergy(payloadBytes, cls))
		t += l.Chip.AirTime(payloadBytes, cls)
		l.Retransmits++
		cls = actual
	}
	l.acct.AddRadio(true, l.Chip.TxEnergy(payloadBytes, cls))
	l.BytesSent += payloadBytes
	return t + l.Chip.AirTime(payloadBytes, cls), nil
}

// Recv receives payloadBytes from the server, charging receive energy
// and returning the air time. Reception timing follows the true
// channel condition (the base station transmits at the right setting).
func (l *Link) Recv(payloadBytes int) (energy.Seconds, error) {
	if l.lost() {
		return 0, ErrConnectionLost
	}
	cls := l.Ch.Current()
	l.acct.AddRadio(false, l.Chip.RxEnergy(payloadBytes, cls))
	l.BytesReceived += payloadBytes
	return l.Chip.AirTime(payloadBytes, cls), nil
}

// Listen charges receiver power for a waiting window of duration t
// (the client's receiver must be up while expecting data).
func (l *Link) Listen(t energy.Seconds) {
	l.acct.AddRadio(false, energy.Energy(l.Chip.RxPower(), t))
}

// StepChannel advances the channel process between invocations.
func (l *Link) StepChannel() {
	l.Ch.Step()
}

func (l *Link) lost() bool {
	l.Exchanges++
	if l.LossProb > 0 && l.r != nil && l.r.Float64() < l.LossProb {
		l.Losses++
		return true
	}
	return false
}
