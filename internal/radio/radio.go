// Package radio models the mobile client's WCDMA communication chip
// set and the wireless channel. Component power numbers are taken
// verbatim from Fig 2 of the paper (RFMD/Analog Devices data sheets);
// the transmitter power amplifier has four power-control settings,
// Class 1 for the worst channel condition (5.88 W) down to Class 4 for
// the best (0.37 W). The effective data rate is 2.3 Mbps.
package radio

import (
	"fmt"
	"math"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

// Class is a transmitter power-control setting. Class 1 is used under
// the worst channel condition, Class 4 under the best.
type Class int

// Power-control classes.
const (
	Class1 Class = 1 + iota
	Class2
	Class3
	Class4
)

// Valid reports whether the class is one of the four settings.
func (c Class) Valid() bool { return c >= Class1 && c <= Class4 }

// String names the class as in the paper.
func (c Class) String() string { return fmt.Sprintf("Class %d", int(c)) }

// Chipset is the component power model of Fig 2.
type Chipset struct {
	// Receiver components.
	MixerW       float64
	DemodulatorW float64
	ADCW         float64
	// Transmitter components.
	DACW            float64
	PowerAmpW       [5]float64 // indexed by Class (1..4)
	DriverAmpW      float64
	ModulatorW      float64
	VCOW            float64 // shared Rx/Tx
	DataRateBps     float64
	OverheadBytes   int // per-message framing/headers/ack
	PowerDownRxIdle bool
}

// WCDMA returns the paper's chip set model.
func WCDMA() *Chipset {
	return &Chipset{
		MixerW:        0.03375,
		DemodulatorW:  0.0378,
		ADCW:          0.710,
		DACW:          0.185,
		PowerAmpW:     [5]float64{0, 5.88, 1.5, 0.74, 0.37},
		DriverAmpW:    0.1026,
		ModulatorW:    0.108,
		VCOW:          0.090,
		DataRateBps:   2.3e6,
		OverheadBytes: 48,
	}
}

// TxPower is the total transmitter-chain power at the given setting.
func (c *Chipset) TxPower(cls Class) energy.Watts {
	if !cls.Valid() {
		panic(fmt.Sprintf("radio: invalid power class %d", int(cls)))
	}
	return energy.Watts(c.DACW + c.PowerAmpW[cls] + c.DriverAmpW + c.ModulatorW + c.VCOW)
}

// RxPower is the total receiver-chain power.
func (c *Chipset) RxPower() energy.Watts {
	return energy.Watts(c.MixerW + c.DemodulatorW + c.ADCW + c.VCOW)
}

// RateFactor is the effective-throughput factor of a channel
// condition: a degraded channel needs heavier coding and ARQ
// retransmissions, so the 2.3 Mbps nominal rate is only achieved under
// the best condition. This makes both transmit and receive air time —
// and hence energy — rise as the channel worsens, which is how the
// paper's remote-compilation costs (Fig 8) vary by class even though
// the receive chain draws fixed power.
func (c *Chipset) RateFactor(cls Class) float64 {
	if !cls.Valid() {
		panic(fmt.Sprintf("radio: invalid power class %d", int(cls)))
	}
	return [5]float64{0, 0.35, 0.6, 0.8, 1.0}[cls]
}

// AirTime returns the air time of a payload (either direction) under
// the given channel condition, including per-message overhead.
func (c *Chipset) AirTime(payloadBytes int, cls Class) energy.Seconds {
	bits := float64(payloadBytes+c.OverheadBytes) * 8
	return energy.Seconds(bits / (c.DataRateBps * c.RateFactor(cls)))
}

// TxEnergy is the client energy to transmit a payload at the given
// power setting.
func (c *Chipset) TxEnergy(payloadBytes int, cls Class) energy.Joules {
	return energy.Energy(c.TxPower(cls), c.AirTime(payloadBytes, cls))
}

// RxEnergy is the client energy to receive a payload under the given
// channel condition.
func (c *Chipset) RxEnergy(payloadBytes int, cls Class) energy.Joules {
	return energy.Energy(c.RxPower(), c.AirTime(payloadBytes, cls))
}

// EnergyPerTxBit reports the per-bit transmit energy at a setting;
// used by the estimators in the decision engine.
func (c *Chipset) EnergyPerTxBit(cls Class) energy.Joules {
	return energy.Joules(float64(c.TxPower(cls)) / (c.DataRateBps * c.RateFactor(cls)))
}

// EnergyPerRxBit reports the per-bit receive energy.
func (c *Chipset) EnergyPerRxBit(cls Class) energy.Joules {
	return energy.Joules(float64(c.RxPower()) / (c.DataRateBps * c.RateFactor(cls)))
}

// Channel is a time-varying wireless channel: the paper models channel
// state with user-supplied distributions and a pilot-signal tracker
// that lets the client pick its transmit power setting.
type Channel interface {
	// Current returns the channel condition as the power class a
	// transmitter must use now.
	Current() Class
	// Step advances the channel process (called between invocations).
	Step()
}

// Fixed is a channel stuck in one condition.
type Fixed struct{ Cls Class }

// Current returns the fixed condition.
func (f Fixed) Current() Class { return f.Cls }

// Step does nothing.
func (f Fixed) Step() {}

// IID draws the condition independently each step from a weighted
// distribution over the four classes; this reproduces the paper's
// scenario distributions ("predominantly good", "predominantly poor",
// "uniform").
type IID struct {
	weights [4]float64 // index 0 -> Class1
	r       *rng.RNG
	cur     Class
}

// NewIID creates an IID channel. weights[0] weights Class 1 (worst).
func NewIID(weights [4]float64, r *rng.RNG) *IID {
	ch := &IID{weights: weights, r: r}
	ch.Step()
	return ch
}

// PredominantlyGood returns the paper's situation-(i) distribution:
// the channel is usually in the best condition.
func PredominantlyGood(r *rng.RNG) *IID {
	return NewIID([4]float64{0.05, 0.05, 0.15, 0.75}, r)
}

// PredominantlyPoor returns the situation-(ii) distribution.
func PredominantlyPoor(r *rng.RNG) *IID {
	return NewIID([4]float64{0.75, 0.15, 0.05, 0.05}, r)
}

// UniformChannel returns the situation-(iii) distribution.
func UniformChannel(r *rng.RNG) *IID {
	return NewIID([4]float64{0.25, 0.25, 0.25, 0.25}, r)
}

// Current returns the condition drawn at the last Step.
func (ch *IID) Current() Class { return ch.cur }

// Step draws a fresh condition.
func (ch *IID) Step() {
	ch.cur = Class(1 + ch.r.Pick(ch.weights[:]))
}

// Markov is a 4-state Markov channel: conditions drift between
// adjacent classes, modelling the temporal correlation of fading.
type Markov struct {
	// StayProb is the probability of remaining in the current state at
	// each step; the remainder splits between adjacent states.
	StayProb float64
	r        *rng.RNG
	cur      Class
}

// NewMarkov returns a Markov channel starting at the given class.
func NewMarkov(start Class, stayProb float64, r *rng.RNG) *Markov {
	if !start.Valid() {
		panic("radio: invalid start class")
	}
	return &Markov{StayProb: stayProb, r: r, cur: start}
}

// Current returns the present condition.
func (ch *Markov) Current() Class { return ch.cur }

// Step moves to a neighbouring state with probability 1-StayProb.
func (ch *Markov) Step() {
	if ch.r.Float64() < ch.StayProb {
		return
	}
	if ch.r.Float64() < 0.5 {
		if ch.cur > Class1 {
			ch.cur--
		} else {
			ch.cur++
		}
	} else {
		if ch.cur < Class4 {
			ch.cur++
		} else {
			ch.cur--
		}
	}
}

// DriftingMarkov is a 4-state Markov channel whose up/down bias
// drifts sinusoidally with the number of steps taken: a handset
// moving through coverage over an overnight cycle spends half the
// cycle trending toward worse classes and half trending back. Phase
// offsets the cycle per client so a population does not drift in
// lockstep. The trace depends only on the RNG stream, the phase and
// the step counter — never on wall-clock time — so runs with equal
// seeds are byte-identical regardless of concurrency.
type DriftingMarkov struct {
	// StayProb is the probability of remaining in the current state
	// at each step; the remainder moves to an adjacent state.
	StayProb float64
	// Period is the number of steps in one full drift cycle.
	Period float64
	// Depth in [0, 0.5] is how far the toward-better bias swings away
	// from the balanced 1/2 at the cycle extremes.
	Depth float64
	phase float64
	r     *rng.RNG
	cur   Class
	steps int
}

// NewDriftingMarkov returns a drifting Markov channel starting at the
// given class with the given per-client phase (radians).
func NewDriftingMarkov(start Class, stayProb, period, depth, phase float64, r *rng.RNG) *DriftingMarkov {
	if !start.Valid() {
		panic("radio: invalid start class")
	}
	if period <= 0 {
		panic("radio: drift period must be positive")
	}
	if depth < 0 || depth > 0.5 {
		panic("radio: drift depth must be in [0, 0.5]")
	}
	return &DriftingMarkov{StayProb: stayProb, Period: period, Depth: depth, phase: phase, r: r, cur: start}
}

// Current returns the present condition.
func (ch *DriftingMarkov) Current() Class { return ch.cur }

// Bias reports the probability that the next non-stay move goes
// toward a better class, at the channel's current point in the cycle.
func (ch *DriftingMarkov) Bias() float64 {
	return 0.5 + ch.Depth*math.Sin(2*math.Pi*float64(ch.steps)/ch.Period+ch.phase)
}

// Step advances the drift cycle and moves to a neighbouring state
// with probability 1-StayProb, biased by the cycle position.
func (ch *DriftingMarkov) Step() {
	up := ch.Bias()
	ch.steps++
	if ch.r.Float64() < ch.StayProb {
		return
	}
	if ch.r.Float64() < up {
		if ch.cur < Class4 {
			ch.cur++
		} else {
			ch.cur--
		}
	} else {
		if ch.cur > Class1 {
			ch.cur--
		} else {
			ch.cur++
		}
	}
}

// PilotTracker models the client's channel estimation from the base
// station's pilot signal (IS-95-style). Tracking is accurate except
// for an optional estimation-error probability, in which case the
// estimate is off by one class (clamped).
type PilotTracker struct {
	Ch      Channel
	ErrProb float64
	r       *rng.RNG
}

// NewPilotTracker wraps a channel in a tracker.
func NewPilotTracker(ch Channel, errProb float64, r *rng.RNG) *PilotTracker {
	return &PilotTracker{Ch: ch, ErrProb: errProb, r: r}
}

// Estimate returns the client's view of the current channel class.
func (p *PilotTracker) Estimate() Class {
	c := p.Ch.Current()
	if p.ErrProb > 0 && p.r != nil && p.r.Float64() < p.ErrProb {
		if c < Class4 {
			c++
		} else {
			c--
		}
	}
	return c
}
