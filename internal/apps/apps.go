// Package apps contains the paper's eight benchmark applications
// (Fig 3), written in MJ and paired with pure-Go reference
// implementations used to verify every execution mode:
//
//	fe    Function-Evaluator — numeric integration of f(x) over a range
//	pf    Path-Finder        — shortest path tree from a source node
//	mf    Median-Filter      — median filtering of a PGM image
//	hpf   High-Pass-Filter   — high-pass filtering with a threshold
//	ed    Edge-Detector      — Canny-style edge detection
//	sort  Sorting            — quicksort utility
//	jess  Jess               — expert-system shell (forward chaining)
//	db    Db                 — database query system
//
// jess and db stand in for the SpecJVM98 codes the paper modified to
// make offloadable ("their core logic carefully retained"): ours keep
// the same shape — a rule matcher reaching a fixpoint and an indexed
// table-scan query engine — scaled to embedded inputs (the paper used
// the s1 dataset for the same reason).
package apps

import (
	"fmt"
	"sync"

	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/lang"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Input is one generated workload input: it can materialize itself as
// MJVM arguments and verify a result against the Go reference.
type Input interface {
	Args(v *vm.VM) ([]vm.Slot, error)
	Check(v *vm.VM, res vm.Slot) error
}

// App is one benchmark application.
type App struct {
	Name     string
	Desc     string
	SizeDesc string
	Source   string
	Class    string
	Method   string
	NLogN    bool

	// ProfileSizes is the profiling grid; SmallSize/LargeSize are the
	// Fig 6 input points; ScenarioSizes is the size population Fig 7
	// scenarios draw from.
	ProfileSizes         []int
	SmallSize, LargeSize int
	ScenarioSizes        []int

	// SizeArg is the index of the potential method's argument carrying
	// the size parameter: an int argument's value, or an array
	// argument's length. SizeDiv, when non-zero, divides the measured
	// value (e.g. a rule base flattened three ints per rule).
	SizeArg int
	SizeDiv int

	// MakeInput generates a deterministic input of the given size.
	MakeInput func(size int, seed uint64) Input

	once sync.Once
	prog *bytecode.Program
	err  error
}

// Program returns the app's compiled program, shared across callers
// (safe: callers only annotate method attributes and install bodies in
// their own VMs). Use FreshProgram for isolation.
func (a *App) Program() (*bytecode.Program, error) {
	a.once.Do(func() {
		a.prog, a.err = lang.Compile(a.Source)
	})
	return a.prog, a.err
}

// FreshProgram compiles an independent copy of the program.
func (a *App) FreshProgram() (*bytecode.Program, error) {
	return lang.Compile(a.Source)
}

// Target returns the offloading target description for the app's
// potential method.
func (a *App) Target() *core.Target {
	return &core.Target{
		Class:  a.Class,
		Method: a.Method,
		NLogN:  a.NLogN,
		MakeArgs: func(v *vm.VM, size int, r *rng.RNG) ([]vm.Slot, error) {
			return a.MakeInput(size, r.Uint64()).Args(v)
		},
		SizeOf:       a.sizeOf,
		ProfileSizes: a.ProfileSizes,
	}
}

// sizeOf recovers the size parameter from the SizeArg argument: an
// int argument's value, or an array argument's length.
func (a *App) sizeOf(v *vm.VM, args []vm.Slot) (float64, error) {
	m, err := a.Program()
	if err != nil {
		return 0, err
	}
	meth := m.FindMethod(a.Class, a.Method)
	kinds := meth.ArgKinds()
	if a.SizeArg < 0 || a.SizeArg >= len(kinds) {
		return 0, fmt.Errorf("apps: %s: bad SizeArg %d", a.Name, a.SizeArg)
	}
	div := 1.0
	if a.SizeDiv > 0 {
		div = float64(a.SizeDiv)
	}
	switch kinds[a.SizeArg] {
	case bytecode.KInt:
		return float64(args[a.SizeArg].I) / div, nil
	case bytecode.KRef:
		n, err := v.Heap.ArrayLen(args[a.SizeArg].I)
		return float64(n) / div, err
	}
	return 0, fmt.Errorf("apps: %s: cannot derive size parameter", a.Name)
}

// All returns the eight applications in the paper's Fig 3 order.
func All() []*App {
	return []*App{FE(), PF(), MF(), HPF(), ED(), Sort(), Jess(), DB()}
}

// ByName returns the named app or nil.
func ByName(name string) *App {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Shared heap helpers.

// intArrayToHeap copies data into a new MJVM int array.
func intArrayToHeap(v *vm.VM, data []int) (int64, error) {
	h, err := v.Heap.NewArray(bytecode.ElemInt, int64(len(data)))
	if err != nil {
		return 0, err
	}
	for i, x := range data {
		if err := v.Heap.SetElemI(h, int64(i), int64(x)); err != nil {
			return 0, err
		}
	}
	return h, nil
}

// heapToIntArray copies an MJVM int array back out.
func heapToIntArray(v *vm.VM, h int64) ([]int, error) {
	n, err := v.Heap.ArrayLen(h)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		x, err := v.Heap.ElemI(h, int64(i))
		if err != nil {
			return nil, err
		}
		out[i] = int(x)
	}
	return out, nil
}

// checkIntArray verifies that the result handle holds exactly want.
func checkIntArray(v *vm.VM, res vm.Slot, want []int, what string) error {
	got, err := heapToIntArray(v, res.I)
	if err != nil {
		return fmt.Errorf("apps: %s result: %w", what, err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("apps: %s result length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("apps: %s result[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}
