package apps

import (
	"fmt"
	"math"

	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// FE is the Function-Evaluator: given a function f, a range, and a
// step count, it integrates f over the range by the trapezoid rule.
// The function is an object with a virtual eval method — cubic
// polynomials and rational functions — so the benchmark exercises
// virtual dispatch in the hot loop (inlining fodder for Level3).
const feSource = `
class Func {
  float eval(float x) { return x; }
}
class PolyFunc extends Func {
  float a0; float a1; float a2; float a3;
  float eval(float x) { return a0 + x * (a1 + x * (a2 + x * a3)); }
}
class RationalFunc extends Func {
  float num; float den;
  float eval(float x) { return num / (x * x + den); }
}
class FE {
  potential static float integrate(Func f, float lo, float hi, int steps) {
    float h = (hi - lo) / steps;
    float sum = (f.eval(lo) + f.eval(hi)) * 0.5;
    for (int i = 1; i < steps; i = i + 1) {
      sum = sum + f.eval(lo + h * i);
    }
    return sum * h;
  }
}
`

type feInput struct {
	poly           bool
	a0, a1, a2, a3 float64
	num, den       float64
	lo, hi         float64
	steps          int
}

func feMake(size int, seed uint64) Input {
	r := rng.New(seed)
	// Always a polynomial: evaluation cost is then independent of the
	// drawn coefficients, keeping cost a stable function of the step
	// count (rational functions cost differently per step, which would
	// defeat size-based estimation; RationalFunc remains for the
	// language-level virtual-dispatch tests and examples).
	in := &feInput{
		poly:  true,
		a0:    r.Float64()*4 - 2,
		a1:    r.Float64()*4 - 2,
		a2:    r.Float64()*2 - 1,
		a3:    r.Float64() - 0.5,
		num:   1 + r.Float64()*3,
		den:   1 + r.Float64()*2,
		lo:    -1 - r.Float64(),
		hi:    1 + r.Float64(),
		steps: size,
	}
	return in
}

func (in *feInput) eval(x float64) float64 {
	if in.poly {
		return in.a0 + x*(in.a1+x*(in.a2+x*in.a3))
	}
	return in.num / (x*x + in.den)
}

// reference mirrors FE.integrate operation-for-operation so float64
// results are bit-identical.
func (in *feInput) reference() float64 {
	h := (in.hi - in.lo) / float64(int32(in.steps))
	sum := (in.eval(in.lo) + in.eval(in.hi)) * 0.5
	for i := 1; i < in.steps; i++ {
		sum = sum + in.eval(in.lo+h*float64(int32(i)))
	}
	return sum * h
}

func (in *feInput) Args(v *vm.VM) ([]vm.Slot, error) {
	prog := v.Prog
	var h int64
	var err error
	if in.poly {
		cls := prog.Class("PolyFunc")
		if h, err = v.Heap.NewObject(int32(cls.ID)); err != nil {
			return nil, err
		}
		fields := []struct {
			name string
			val  float64
		}{{"a0", in.a0}, {"a1", in.a1}, {"a2", in.a2}, {"a3", in.a3}}
		for _, f := range fields {
			if err := v.Heap.SetFieldF(h, cls.FieldSlot(f.name).Slot, f.val); err != nil {
				return nil, err
			}
		}
	} else {
		cls := prog.Class("RationalFunc")
		if h, err = v.Heap.NewObject(int32(cls.ID)); err != nil {
			return nil, err
		}
		if err := v.Heap.SetFieldF(h, cls.FieldSlot("num").Slot, in.num); err != nil {
			return nil, err
		}
		if err := v.Heap.SetFieldF(h, cls.FieldSlot("den").Slot, in.den); err != nil {
			return nil, err
		}
	}
	return []vm.Slot{
		vm.RefSlot(h),
		vm.FloatSlot(in.lo),
		vm.FloatSlot(in.hi),
		vm.IntSlot(int32(in.steps)),
	}, nil
}

func (in *feInput) Check(v *vm.VM, res vm.Slot) error {
	want := in.reference()
	if math.Abs(res.F-want) > 1e-9*math.Max(1, math.Abs(want)) {
		return fmt.Errorf("apps: fe integrate = %g, want %g", res.F, want)
	}
	return nil
}

// FE returns the Function-Evaluator benchmark.
func FE() *App {
	return &App{
		Name:          "fe",
		Desc:          "integrates f(x) over a range with a given step count",
		SizeDesc:      "step count",
		Source:        feSource,
		Class:         "FE",
		Method:        "integrate",
		SizeArg:       3,
		ProfileSizes:  []int{1000, 4000, 10000, 20000, 40000, 60000},
		SmallSize:     2000,
		LargeSize:     56000,
		ScenarioSizes: []int{2000, 8000, 20000, 40000, 56000},
		MakeInput:     feMake,
	}
}
