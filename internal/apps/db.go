package apps

import (
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// DB stands in for the SpecJVM98 database query system: a table of
// fixed-width records (id, a, b, c — id-sorted) and a batch of
// queries. Query types: point lookup by id (binary search on the
// primary index), range count over column a, and aggregate sum of b
// grouped by an exact match on c (a full scan). This keeps the
// original's core logic — index probes plus scans over an in-memory
// table.
const dbSource = `
class DB {
  potential static int[] query(int[] table, int nrec, int[] queries) {
    int nq = queries.length / 4;
    int[] out = new int[nq];
    for (int q = 0; q < nq; q = q + 1) {
      int kind = queries[q * 4];
      int key = queries[q * 4 + 1];
      int lo = queries[q * 4 + 2];
      int hi = queries[q * 4 + 3];
      if (kind == 0) {
        out[q] = lookup(table, nrec, key);
      } else if (kind == 1) {
        out[q] = rangeCount(table, nrec, lo, hi);
      } else {
        out[q] = sumWhere(table, nrec, key);
      }
    }
    return out;
  }

  // lookup returns the "a" column of the record with the given id, or
  // -1 when absent (binary search over the id-sorted table).
  static int lookup(int[] table, int nrec, int id) {
    int lo = 0;
    int hi = nrec - 1;
    while (lo <= hi) {
      int mid = (lo + hi) / 2;
      int v = table[mid * 4];
      if (v == id) { return table[mid * 4 + 1]; }
      if (v < id) { lo = mid + 1; } else { hi = mid - 1; }
    }
    return 0 - 1;
  }

  // rangeCount counts records whose "a" column lies in [lo, hi].
  static int rangeCount(int[] table, int nrec, int lo, int hi) {
    int cnt = 0;
    for (int i = 0; i < nrec; i = i + 1) {
      int a = table[i * 4 + 1];
      if (a >= lo && a <= hi) { cnt = cnt + 1; }
    }
    return cnt;
  }

  // sumWhere sums the "b" column of records whose "c" column equals
  // the key.
  static int sumWhere(int[] table, int nrec, int key) {
    int sum = 0;
    for (int i = 0; i < nrec; i = i + 1) {
      if (table[i * 4 + 3] == key) {
        sum = sum + table[i * 4 + 2];
      }
    }
    return sum;
  }
}
`

const dbQueries = 48

type dbInput struct {
	table   []int
	nrec    int
	queries []int
}

func dbMake(size int, seed uint64) Input {
	r := rng.New(seed)
	nrec := size
	table := make([]int, 0, nrec*4)
	id := 0
	for i := 0; i < nrec; i++ {
		id += 1 + r.Intn(3) // sorted, sparse ids
		table = append(table, id, r.Intn(10000), r.Intn(1000), r.Intn(32))
	}
	// The query stream is drawn independently of the table stream so
	// that the scan/lookup mix — and hence the cost per record — does
	// not drift with the table size.
	r = rng.New(seed ^ 0xD1B54A32D192ED03)
	queries := make([]int, 0, dbQueries*4)
	for q := 0; q < dbQueries; q++ {
		kind := r.Intn(3)
		switch kind {
		case 0:
			queries = append(queries, 0, 1+r.Intn(id), 0, 0)
		case 1:
			lo := r.Intn(9000)
			queries = append(queries, 1, 0, lo, lo+r.Intn(1000))
		default:
			queries = append(queries, 2, r.Intn(32), 0, 0)
		}
	}
	return &dbInput{table: table, nrec: nrec, queries: queries}
}

// reference mirrors DB.query.
func (in *dbInput) reference() []int {
	nq := len(in.queries) / 4
	out := make([]int, nq)
	for q := 0; q < nq; q++ {
		kind, key, lo, hi := in.queries[q*4], in.queries[q*4+1], in.queries[q*4+2], in.queries[q*4+3]
		switch kind {
		case 0:
			out[q] = -1
			l, h := 0, in.nrec-1
			for l <= h {
				mid := (l + h) / 2
				v := in.table[mid*4]
				if v == key {
					out[q] = in.table[mid*4+1]
					break
				}
				if v < key {
					l = mid + 1
				} else {
					h = mid - 1
				}
			}
		case 1:
			cnt := 0
			for i := 0; i < in.nrec; i++ {
				if a := in.table[i*4+1]; a >= lo && a <= hi {
					cnt++
				}
			}
			out[q] = cnt
		default:
			sum := 0
			for i := 0; i < in.nrec; i++ {
				if in.table[i*4+3] == key {
					sum += in.table[i*4+2]
				}
			}
			out[q] = sum
		}
	}
	return out
}

func (in *dbInput) Args(v *vm.VM) ([]vm.Slot, error) {
	th, err := intArrayToHeap(v, in.table)
	if err != nil {
		return nil, err
	}
	qh, err := intArrayToHeap(v, in.queries)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{vm.RefSlot(th), vm.IntSlot(int32(in.nrec)), vm.RefSlot(qh)}, nil
}

func (in *dbInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "db")
}

// DB returns the database query benchmark. The size parameter is the
// number of records.
func DB() *App {
	return &App{
		Name:          "db",
		Desc:          "indexed lookups, range counts and aggregates over a table",
		SizeDesc:      "records in the table; fixed 48-query batch",
		Source:        dbSource,
		Class:         "DB",
		Method:        "query",
		SizeArg:       1, // nrec argument
		ProfileSizes:  []int{512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192},
		SmallSize:     768,
		LargeSize:     7500,
		ScenarioSizes: []int{768, 1500, 3000, 5000, 7500},
		MakeInput:     dbMake,
	}
}
