package apps

import (
	"greenvm/internal/pgm"
	"greenvm/internal/vm"
)

// MF is the Median-Filter: given an image (PGM) and a window size, it
// produces a new image where every pixel is the median of its window
// (border pixels use the in-bounds part of the window).
const mfSource = `
class MF {
  potential static int[] filter(int[] pix, int w, int h, int win) {
    int[] out = new int[w * h];
    int r = win / 2;
    int[] window = new int[win * win];
    for (int y = 0; y < h; y = y + 1) {
      for (int x = 0; x < w; x = x + 1) {
        int cnt = 0;
        for (int dy = 0 - r; dy <= r; dy = dy + 1) {
          for (int dx = 0 - r; dx <= r; dx = dx + 1) {
            int yy = y + dy;
            int xx = x + dx;
            if (yy >= 0 && yy < h && xx >= 0 && xx < w) {
              window[cnt] = pix[yy * w + xx];
              cnt = cnt + 1;
            }
          }
        }
        out[y * w + x] = median(window, cnt);
      }
    }
    return out;
  }

  static int median(int[] a, int n) {
    for (int i = 1; i < n; i = i + 1) {
      int v = a[i];
      int j = i - 1;
      while (j >= 0 && a[j] > v) {
        a[j + 1] = a[j];
        j = j - 1;
      }
      a[j + 1] = v;
    }
    return a[n / 2];
  }
}
`

type mfInput struct {
	img *pgm.Image
	win int
}

func mfMake(size int, seed uint64) Input {
	return &mfInput{img: pgm.Synthetic(size, size, seed), win: 3}
}

// reference mirrors MF.filter.
func (in *mfInput) reference() []int {
	w, h := in.img.W, in.img.H
	out := make([]int, w*h)
	r := in.win / 2
	window := make([]int, in.win*in.win)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cnt := 0
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					yy, xx := y+dy, x+dx
					if yy >= 0 && yy < h && xx >= 0 && xx < w {
						window[cnt] = in.img.Pix[yy*w+xx]
						cnt++
					}
				}
			}
			out[y*w+x] = refMedian(window, cnt)
		}
	}
	return out
}

func refMedian(a []int, n int) int {
	for i := 1; i < n; i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
	return a[n/2]
}

func (in *mfInput) Args(v *vm.VM) ([]vm.Slot, error) {
	h, err := intArrayToHeap(v, in.img.Pix)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{
		vm.RefSlot(h),
		vm.IntSlot(int32(in.img.W)),
		vm.IntSlot(int32(in.img.H)),
		vm.IntSlot(int32(in.win)),
	}, nil
}

func (in *mfInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "mf")
}

// MF returns the Median-Filter benchmark. The size parameter is the
// image width (images are square).
func MF() *App {
	return &App{
		Name:          "mf",
		Desc:          "median filtering of a PGM image with a given window",
		SizeDesc:      "image width (square image), window size",
		Source:        mfSource,
		Class:         "MF",
		Method:        "filter",
		SizeArg:       1,
		ProfileSizes:  []int{12, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96},
		SmallSize:     16,
		LargeSize:     88,
		ScenarioSizes: []int{16, 32, 48, 64, 88},
		MakeInput:     mfMake,
	}
}
