package apps

import (
	"greenvm/internal/pgm"
	"greenvm/internal/vm"
)

// HPF is the High-Pass-Filter: given an image and a threshold, it
// returns the image with low-frequency content removed. The paper's
// frequency-domain formulation is realized spatially (the standard
// embedded-systems trick): high-pass = original - box-blur, where the
// threshold controls the blur radius (a lower cut-off frequency means
// a larger radius). The separable two-pass blur keeps the kernel
// O(n) per pixel.
const hpfSource = `
class HPF {
  potential static int[] filter(int[] pix, int w, int h, int threshold) {
    int radius = 256 / (threshold + 1);
    if (radius < 1) { radius = 1; }
    if (radius > 7) { radius = 7; }
    int[] tmp = new int[w * h];
    int[] out = new int[w * h];
    // Horizontal pass.
    for (int y = 0; y < h; y = y + 1) {
      for (int x = 0; x < w; x = x + 1) {
        int sum = 0;
        int cnt = 0;
        for (int d = 0 - radius; d <= radius; d = d + 1) {
          int xx = x + d;
          if (xx >= 0 && xx < w) {
            sum = sum + pix[y * w + xx];
            cnt = cnt + 1;
          }
        }
        tmp[y * w + x] = sum / cnt;
      }
    }
    // Vertical pass, subtract, re-center at 128 and clamp.
    for (int y = 0; y < h; y = y + 1) {
      for (int x = 0; x < w; x = x + 1) {
        int sum = 0;
        int cnt = 0;
        for (int d = 0 - radius; d <= radius; d = d + 1) {
          int yy = y + d;
          if (yy >= 0 && yy < h) {
            sum = sum + tmp[yy * w + x];
            cnt = cnt + 1;
          }
        }
        int hp = pix[y * w + x] - sum / cnt + 128;
        if (hp < 0) { hp = 0; }
        if (hp > 255) { hp = 255; }
        out[y * w + x] = hp;
      }
    }
    return out;
  }
}
`

type hpfInput struct {
	img       *pgm.Image
	threshold int
}

func hpfMake(size int, seed uint64) Input {
	// The threshold is held fixed so that cost is a stable function of
	// the size parameter alone (the paper notes its estimators assume
	// parameter sizes are representative of execution cost).
	return &hpfInput{img: pgm.Synthetic(size, size, seed), threshold: 50}
}

// reference mirrors HPF.filter.
func (in *hpfInput) reference() []int {
	w, h := in.img.W, in.img.H
	radius := 256 / (in.threshold + 1)
	if radius < 1 {
		radius = 1
	}
	if radius > 7 {
		radius = 7
	}
	tmp := make([]int, w*h)
	out := make([]int, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum, cnt := 0, 0
			for d := -radius; d <= radius; d++ {
				if xx := x + d; xx >= 0 && xx < w {
					sum += in.img.Pix[y*w+xx]
					cnt++
				}
			}
			tmp[y*w+x] = sum / cnt
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum, cnt := 0, 0
			for d := -radius; d <= radius; d++ {
				if yy := y + d; yy >= 0 && yy < h {
					sum += tmp[yy*w+x]
					cnt++
				}
			}
			hp := in.img.Pix[y*w+x] - sum/cnt + 128
			if hp < 0 {
				hp = 0
			}
			if hp > 255 {
				hp = 255
			}
			out[y*w+x] = hp
		}
	}
	return out
}

func (in *hpfInput) Args(v *vm.VM) ([]vm.Slot, error) {
	h, err := intArrayToHeap(v, in.img.Pix)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{
		vm.RefSlot(h),
		vm.IntSlot(int32(in.img.W)),
		vm.IntSlot(int32(in.img.H)),
		vm.IntSlot(int32(in.threshold)),
	}, nil
}

func (in *hpfInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "hpf")
}

// HPF returns the High-Pass-Filter benchmark.
func HPF() *App {
	return &App{
		Name:          "hpf",
		Desc:          "removes frequencies below a threshold from an image",
		SizeDesc:      "image width (square image), threshold frequency",
		Source:        hpfSource,
		Class:         "HPF",
		Method:        "filter",
		SizeArg:       1,
		ProfileSizes:  []int{12, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96},
		SmallSize:     16,
		LargeSize:     88,
		ScenarioSizes: []int{16, 32, 48, 64, 88},
		MakeInput:     hpfMake,
	}
}
