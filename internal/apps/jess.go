package apps

import (
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Jess stands in for the SpecJVM98 expert-system shell: a forward-
// chaining production system. Facts are numbered 0..nfacts-1; each
// rule has two antecedent facts and one consequent
// (flattened triples). The engine fires rules until a fixpoint, the
// core match-act cycle of a rule engine, and returns the derived fact
// base.
const jessSource = `
class Jess {
  potential static int[] run(int[] rules, int nfacts, int[] initial) {
    int[] facts = new int[nfacts];
    for (int i = 0; i < initial.length; i = i + 1) {
      facts[initial[i]] = 1;
    }
    int nrules = rules.length / 3;
    int changed = 1;
    int fired = 0;
    while (changed == 1) {
      changed = 0;
      for (int ri = 0; ri < nrules; ri = ri + 1) {
        int p1 = rules[ri * 3];
        int p2 = rules[ri * 3 + 1];
        int c = rules[ri * 3 + 2];
        // Branch-free match so the cost per rule per pass does not
        // depend on fact contents (keeps cost a function of size).
        if (facts[p1] * facts[p2] * (1 - facts[c]) == 1) {
          facts[c] = 1;
          fired = fired + 1;
          changed = 1;
        }
      }
    }
    // Final slot carries the fired-rule count as an audit trail.
    int[] out = new int[nfacts + 1];
    for (int i = 0; i < nfacts; i = i + 1) { out[i] = facts[i]; }
    out[nfacts] = fired;
    return out;
  }
}
`

type jessInput struct {
	rules   []int
	nfacts  int
	initial []int
}

// jessMake generates a layered rule base sized by the number of
// rules: facts form a fixed number of layers, every rule's
// antecedents come from layer i and its consequent from layer i+1, and
// the initial facts are the whole first layer. The fixpoint therefore
// takes one match pass per layer regardless of the random content,
// which keeps execution cost a stable function of the size parameter
// (the property the paper's size-based estimators rely on).
func jessMake(size int, seed uint64) Input {
	const layers = 6
	r := rng.New(seed)
	nrules := size
	perLayer := size/(2*layers) + 4
	nfacts := perLayer * layers
	factAt := func(layer, i int) int { return layer*perLayer + i }
	rules := make([]int, 0, nrules*3)
	for i := 0; i < nrules; i++ {
		// Rules are grouped by layer (a compiled rule network is
		// topologically ordered), so the engine reaches its fixpoint in
		// one pass plus one confirming pass: execution cost is a stable
		// function of the rule count alone.
		layer := i * (layers - 1) / nrules
		p1 := factAt(layer, r.Intn(perLayer))
		p2 := factAt(layer, r.Intn(perLayer))
		c := factAt(layer+1, r.Intn(perLayer))
		rules = append(rules, p1, p2, c)
	}
	initial := make([]int, perLayer)
	for i := range initial {
		initial[i] = factAt(0, i)
	}
	return &jessInput{rules: rules, nfacts: nfacts, initial: initial}
}

// reference mirrors Jess.run.
func (in *jessInput) reference() []int {
	facts := make([]int, in.nfacts)
	for _, f := range in.initial {
		facts[f] = 1
	}
	nrules := len(in.rules) / 3
	fired := 0
	changed := true
	for changed {
		changed = false
		for ri := 0; ri < nrules; ri++ {
			p1, p2, c := in.rules[ri*3], in.rules[ri*3+1], in.rules[ri*3+2]
			if facts[p1]*facts[p2]*(1-facts[c]) == 1 {
				facts[c] = 1
				fired++
				changed = true
			}
		}
	}
	out := make([]int, in.nfacts+1)
	copy(out, facts)
	out[in.nfacts] = fired
	return out
}

func (in *jessInput) Args(v *vm.VM) ([]vm.Slot, error) {
	rh, err := intArrayToHeap(v, in.rules)
	if err != nil {
		return nil, err
	}
	ih, err := intArrayToHeap(v, in.initial)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{vm.RefSlot(rh), vm.IntSlot(int32(in.nfacts)), vm.RefSlot(ih)}, nil
}

func (in *jessInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "jess")
}

// Jess returns the expert-system benchmark. The size parameter is the
// number of rules.
func Jess() *App {
	return &App{
		Name:          "jess",
		Desc:          "forward-chaining expert system shell",
		SizeDesc:      "number of rules",
		Source:        jessSource,
		Class:         "Jess",
		Method:        "run",
		SizeArg:       0,
		SizeDiv:       3, // the rule base is flattened 3 ints per rule
		ProfileSizes:  []int{512, 1024, 2048, 4096, 8192, 12288},
		SmallSize:     768,
		LargeSize:     11000,
		ScenarioSizes: []int{1000, 2000, 4000, 8000, 11000},
		MakeInput:     jessMake,
	}
}
