package apps

import (
	"greenvm/internal/pgm"
	"greenvm/internal/vm"
)

// ED is the Edge-Detector: Canny's algorithm in its integer embedded
// form — Gaussian smoothing, Sobel gradients, gradient-direction
// quantization, non-maximum suppression and double thresholding with
// hysteresis reduced to a single strong/weak pass.
const edSource = `
class ED {
  potential static int[] detect(int[] pix, int w, int h) {
    int[] blur = smooth(pix, w, h);
    int[] mag = new int[w * h];
    int[] dir = new int[w * h];
    gradients(blur, w, h, mag, dir);
    return suppress(mag, dir, w, h);
  }

  // 3x3 Gaussian (1 2 1 / 2 4 2 / 1 2 1) / 16 with edge clamping.
  static int[] smooth(int[] pix, int w, int h) {
    int[] out = new int[w * h];
    for (int y = 0; y < h; y = y + 1) {
      for (int x = 0; x < w; x = x + 1) {
        int sum = 0;
        for (int dy = 0 - 1; dy <= 1; dy = dy + 1) {
          for (int dx = 0 - 1; dx <= 1; dx = dx + 1) {
            int yy = y + dy;
            int xx = x + dx;
            if (yy < 0) { yy = 0; }
            if (yy >= h) { yy = h - 1; }
            if (xx < 0) { xx = 0; }
            if (xx >= w) { xx = w - 1; }
            int k = 1;
            if (dx == 0) { k = 2; }
            if (dy == 0) { k = k * 2; }
            sum = sum + pix[yy * w + xx] * k;
          }
        }
        out[y * w + x] = sum / 16;
      }
    }
    return out;
  }

  // Sobel gradients; direction quantized to 0..3 (E, NE, N, NW).
  static void gradients(int[] img, int w, int h, int[] mag, int[] dir) {
    for (int y = 1; y < h - 1; y = y + 1) {
      for (int x = 1; x < w - 1; x = x + 1) {
        int i = y * w + x;
        int gx = img[i - w + 1] + 2 * img[i + 1] + img[i + w + 1]
               - img[i - w - 1] - 2 * img[i - 1] - img[i + w - 1];
        int gy = img[i + w - 1] + 2 * img[i + w] + img[i + w + 1]
               - img[i - w - 1] - 2 * img[i - w] - img[i - w + 1];
        int ax = gx; if (ax < 0) { ax = 0 - ax; }
        int ay = gy; if (ay < 0) { ay = 0 - ay; }
        mag[i] = ax + ay;
        // Quantize direction by comparing |gy| to |gx| scaled.
        int d = 0;
        if (2 * ay > ax) {
          if (2 * ax > ay) {
            if ((gx > 0 && gy > 0) || (gx < 0 && gy < 0)) { d = 1; } else { d = 3; }
          } else {
            d = 2;
          }
        }
        dir[i] = d;
      }
    }
  }

  // Non-maximum suppression plus double threshold.
  static int[] suppress(int[] mag, int[] dir, int w, int h) {
    int[] out = new int[w * h];
    int hi = 160;
    int lo = 80;
    for (int y = 1; y < h - 1; y = y + 1) {
      for (int x = 1; x < w - 1; x = x + 1) {
        int i = y * w + x;
        int m = mag[i];
        if (m < lo) { out[i] = 0; }
        else {
          int a = 0;
          int b = 0;
          int d = dir[i];
          if (d == 0) { a = mag[i - 1]; b = mag[i + 1]; }
          if (d == 1) { a = mag[i - w + 1]; b = mag[i + w - 1]; }
          if (d == 2) { a = mag[i - w]; b = mag[i + w]; }
          if (d == 3) { a = mag[i - w - 1]; b = mag[i + w + 1]; }
          if (m >= a && m >= b) {
            if (m >= hi) { out[i] = 255; } else { out[i] = 128; }
          }
        }
      }
    }
    return out;
  }
}
`

type edInput struct {
	img *pgm.Image
}

func edMake(size int, seed uint64) Input {
	return &edInput{img: pgm.Synthetic(size, size, seed)}
}

// reference mirrors ED.detect.
func (in *edInput) reference() []int {
	w, h := in.img.W, in.img.H
	pix := in.img.Pix
	blur := make([]int, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					yy, xx := y+dy, x+dx
					if yy < 0 {
						yy = 0
					}
					if yy >= h {
						yy = h - 1
					}
					if xx < 0 {
						xx = 0
					}
					if xx >= w {
						xx = w - 1
					}
					k := 1
					if dx == 0 {
						k = 2
					}
					if dy == 0 {
						k *= 2
					}
					sum += pix[yy*w+xx] * k
				}
			}
			blur[y*w+x] = sum / 16
		}
	}
	mag := make([]int, w*h)
	dir := make([]int, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			gx := blur[i-w+1] + 2*blur[i+1] + blur[i+w+1] - blur[i-w-1] - 2*blur[i-1] - blur[i+w-1]
			gy := blur[i+w-1] + 2*blur[i+w] + blur[i+w+1] - blur[i-w-1] - 2*blur[i-w] - blur[i-w+1]
			ax, ay := gx, gy
			if ax < 0 {
				ax = -ax
			}
			if ay < 0 {
				ay = -ay
			}
			mag[i] = ax + ay
			d := 0
			if 2*ay > ax {
				if 2*ax > ay {
					if (gx > 0 && gy > 0) || (gx < 0 && gy < 0) {
						d = 1
					} else {
						d = 3
					}
				} else {
					d = 2
				}
			}
			dir[i] = d
		}
	}
	out := make([]int, w*h)
	hi, lo := 160, 80
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			m := mag[i]
			if m < lo {
				continue
			}
			var a, b int
			switch dir[i] {
			case 0:
				a, b = mag[i-1], mag[i+1]
			case 1:
				a, b = mag[i-w+1], mag[i+w-1]
			case 2:
				a, b = mag[i-w], mag[i+w]
			case 3:
				a, b = mag[i-w-1], mag[i+w+1]
			}
			if m >= a && m >= b {
				if m >= hi {
					out[i] = 255
				} else {
					out[i] = 128
				}
			}
		}
	}
	return out
}

func (in *edInput) Args(v *vm.VM) ([]vm.Slot, error) {
	h, err := intArrayToHeap(v, in.img.Pix)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{vm.RefSlot(h), vm.IntSlot(int32(in.img.W)), vm.IntSlot(int32(in.img.H))}, nil
}

func (in *edInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "ed")
}

// ED returns the Edge-Detector benchmark.
func ED() *App {
	return &App{
		Name:          "ed",
		Desc:          "detects edges with Canny's algorithm",
		SizeDesc:      "image width (square image)",
		Source:        edSource,
		Class:         "ED",
		Method:        "detect",
		SizeArg:       1,
		ProfileSizes:  []int{12, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96},
		SmallSize:     16,
		LargeSize:     88,
		ScenarioSizes: []int{16, 32, 48, 64, 88},
		MakeInput:     edMake,
	}
}
