package apps

import (
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Sort is the Sorting utility: quicksort with median-of-three pivot
// selection and an insertion-sort cutoff for small partitions, sorting
// a copy of the input array.
const sortSource = `
class Sort {
  potential static int[] sortArray(int[] a) {
    int[] b = new int[a.length];
    for (int i = 0; i < a.length; i = i + 1) { b[i] = a[i]; }
    quick(b, 0, b.length - 1);
    return b;
  }

  static void quick(int[] a, int lo, int hi) {
    while (lo < hi) {
      if (hi - lo < 12) {
        insertion(a, lo, hi);
        return;
      }
      int p = partition(a, lo, hi);
      // Recurse into the smaller half, iterate over the larger.
      if (p - lo < hi - p) {
        quick(a, lo, p - 1);
        lo = p + 1;
      } else {
        quick(a, p + 1, hi);
        hi = p - 1;
      }
    }
  }

  static int partition(int[] a, int lo, int hi) {
    int mid = lo + (hi - lo) / 2;
    // Median-of-three: order a[lo], a[mid], a[hi].
    if (a[mid] < a[lo]) { swap(a, mid, lo); }
    if (a[hi] < a[lo]) { swap(a, hi, lo); }
    if (a[hi] < a[mid]) { swap(a, hi, mid); }
    int pivot = a[mid];
    swap(a, mid, hi - 1);
    int i = lo;
    int j = hi - 1;
    while (true) {
      i = i + 1;
      while (a[i] < pivot) { i = i + 1; }
      j = j - 1;
      while (a[j] > pivot) { j = j - 1; }
      if (i >= j) {
        swap(a, i, hi - 1);
        return i;
      }
      swap(a, i, j);
    }
    return i;
  }

  static void insertion(int[] a, int lo, int hi) {
    for (int i = lo + 1; i <= hi; i = i + 1) {
      int v = a[i];
      int j = i - 1;
      while (j >= lo && a[j] > v) {
        a[j + 1] = a[j];
        j = j - 1;
      }
      a[j + 1] = v;
    }
  }

  static void swap(int[] a, int i, int j) {
    int t = a[i];
    a[i] = a[j];
    a[j] = t;
  }
}
`

type sortInput struct {
	data []int
}

func sortMake(size int, seed uint64) Input {
	r := rng.New(seed)
	data := make([]int, size)
	for i := range data {
		data[i] = r.Intn(1 << 20)
	}
	return &sortInput{data: data}
}

func (in *sortInput) reference() []int {
	out := append([]int(nil), in.data...)
	// A simple deterministic sort is enough for the expected output.
	quickRef(out, 0, len(out)-1)
	return out
}

func quickRef(a []int, lo, hi int) {
	if lo >= hi {
		return
	}
	p := a[(lo+hi)/2]
	i, j := lo, hi
	for i <= j {
		for a[i] < p {
			i++
		}
		for a[j] > p {
			j--
		}
		if i <= j {
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
	}
	quickRef(a, lo, j)
	quickRef(a, i, hi)
}

func (in *sortInput) Args(v *vm.VM) ([]vm.Slot, error) {
	h, err := intArrayToHeap(v, in.data)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{vm.RefSlot(h)}, nil
}

func (in *sortInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "sort")
}

// Sort returns the Sorting benchmark.
func Sort() *App {
	return &App{
		Name:          "sort",
		Desc:          "sorts an array with quicksort",
		SizeDesc:      "array size",
		Source:        sortSource,
		Class:         "Sort",
		Method:        "sortArray",
		SizeArg:       0,
		NLogN:         true,
		ProfileSizes:  []int{1000, 2000, 4000, 8000, 12000, 16000},
		SmallSize:     1500,
		LargeSize:     14000,
		ScenarioSizes: []int{2000, 4000, 8000, 12000, 14000},
		MakeInput:     sortMake,
	}
}
