package apps

import (
	"context"

	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

func TestAllAppsCompile(t *testing.T) {
	for _, a := range All() {
		p, err := a.Program()
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		m := p.FindMethod(a.Class, a.Method)
		if m == nil {
			t.Errorf("%s: missing %s.%s", a.Name, a.Class, a.Method)
			continue
		}
		if !m.Potential {
			t.Errorf("%s: %s not marked potential", a.Name, m.QName())
		}
	}
	if len(All()) != 8 {
		t.Errorf("expected 8 benchmarks, have %d", len(All()))
	}
}

func TestByName(t *testing.T) {
	if ByName("mf") == nil || ByName("nope") != nil {
		t.Error("ByName lookup wrong")
	}
}

// TestInterpreterMatchesReference checks every app against its Go
// reference implementation under interpretation, across sizes and
// seeds.
func TestInterpreterMatchesReference(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p, err := a.Program()
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{a.SmallSize, a.ProfileSizes[0]} {
				for seed := uint64(1); seed <= 3; seed++ {
					in := a.MakeInput(size, seed)
					v := vm.New(p, energy.MicroSPARCIIep())
					args, err := in.Args(v)
					if err != nil {
						t.Fatal(err)
					}
					res, err := v.InvokeByName(a.Class, a.Method, args)
					if err != nil {
						t.Fatalf("size %d seed %d: %v", size, seed, err)
					}
					if err := in.Check(v, res); err != nil {
						t.Fatalf("size %d seed %d: %v", size, seed, err)
					}
				}
			}
		})
	}
}

// TestJITMatchesReference checks every app at every optimization
// level.
func TestJITMatchesReference(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p, err := a.Program()
			if err != nil {
				t.Fatal(err)
			}
			for _, lv := range []jit.Level{jit.Level1, jit.Level2, jit.Level3} {
				bodies := map[*bytecode.Method]*isa.Code{}
				for _, m := range p.Methods {
					code, _, err := jit.Compile(p, m, lv)
					if err != nil {
						t.Fatalf("%s at %v: %v", m.QName(), lv, err)
					}
					bodies[m] = code
				}
				in := a.MakeInput(a.SmallSize, 7)
				v := vm.New(p, energy.MicroSPARCIIep())
				for _, c := range bodies {
					v.InstallCode(c)
				}
				v.Dispatch = vm.DispatchFunc(func(m *bytecode.Method) *isa.Code { return bodies[m] })
				args, err := in.Args(v)
				if err != nil {
					t.Fatal(err)
				}
				res, err := v.InvokeByName(a.Class, a.Method, args)
				if err != nil {
					t.Fatalf("%v: %v", lv, err)
				}
				if err := in.Check(v, res); err != nil {
					t.Fatalf("%v: %v", lv, err)
				}
			}
		})
	}
}

// TestRemoteMatchesReference offloads every app and verifies the
// deserialized result.
func TestRemoteMatchesReference(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p, err := a.FreshProgram()
			if err != nil {
				t.Fatal(err)
			}
			server := core.NewServer(p)
			client := core.New(core.ClientConfig{
				ID: "c", Prog: p, Server: server,
				Channel: radio.Fixed{Cls: radio.Class4}, Strategy: core.StrategyR, Seed: 3,
			})
			pr := &core.Profiler{Prog: p, ClientModel: energy.MicroSPARCIIep(), ServerModel: energy.ServerSPARC(), Seed: 11}
			target := appTargetFor(a, p)
			prof, err := pr.ProfileTarget(target)
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Register(target, prof); err != nil {
				t.Fatal(err)
			}
			in := a.MakeInput(a.SmallSize, 21)
			args, err := in.Args(client.VM)
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Invoke(context.Background(), a.Class, a.Method, args)
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Check(client.VM, res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// appTargetFor builds a target against a fresh program copy (App's
// default Target resolves sizes against the shared program, which is
// fine, but the Profiler needs the same program instance the client
// uses).
func appTargetFor(a *App, p *bytecode.Program) *core.Target {
	t := a.Target()
	// Override sizeOf to resolve against p rather than the shared
	// cached program.
	sizeArg := a.SizeArg
	div := a.SizeDiv
	if div == 0 {
		div = 1
	}
	meth := p.FindMethod(a.Class, a.Method)
	kinds := meth.ArgKinds()
	t.SizeOf = func(v *vm.VM, args []vm.Slot) (float64, error) {
		if kinds[sizeArg] == bytecode.KInt {
			return float64(args[sizeArg].I) / float64(div), nil
		}
		n, err := v.Heap.ArrayLen(args[sizeArg].I)
		return float64(n) / float64(div), err
	}
	return t
}

// TestProfilesFitWell verifies estimator quality on every app at
// held-out sizes (the paper's 2% claim, checked at 5% tolerance for
// the irregular rule/db workloads whose cost depends on content).
func TestProfilesFitWell(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling all apps is slow")
	}
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p, err := a.FreshProgram()
			if err != nil {
				t.Fatal(err)
			}
			pr := &core.Profiler{Prog: p, ClientModel: energy.MicroSPARCIIep(), ServerModel: energy.ServerSPARC(), Seed: 5}
			target := appTargetFor(a, p)
			prof, err := pr.ProfileTarget(target)
			if err != nil {
				t.Fatal(err)
			}
			if prof.MaxFitErr > 0.10 {
				t.Errorf("training fit error %.3f", prof.MaxFitErr)
			}
			mid := (a.ProfileSizes[1] + a.ProfileSizes[2]) / 2
			worst, err := pr.ValidateProfile(target, prof, []int{mid})
			if err != nil {
				t.Fatal(err)
			}
			if worst > 0.30 {
				t.Errorf("held-out error %.3f implausibly large", worst)
			}
		})
	}
}

func TestScenarioSizesWithinProfiledRange(t *testing.T) {
	for _, a := range All() {
		lo, hi := a.ProfileSizes[0], a.ProfileSizes[len(a.ProfileSizes)-1]
		check := func(s int, what string) {
			if s < lo || s > hi {
				t.Errorf("%s: %s size %d outside profiled range [%d,%d]", a.Name, what, s, lo, hi)
			}
		}
		check(a.SmallSize, "small")
		check(a.LargeSize, "large")
		for _, s := range a.ScenarioSizes {
			check(s, "scenario")
		}
	}
}

func TestInputDeterminism(t *testing.T) {
	for _, a := range All() {
		in1 := a.MakeInput(a.SmallSize, 99)
		in2 := a.MakeInput(a.SmallSize, 99)
		v1 := vm.New(mustProg(t, a), energy.MicroSPARCIIep())
		v2 := vm.New(mustProg(t, a), energy.MicroSPARCIIep())
		a1, err := in1.Args(v1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := in2.Args(v2)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := v1.Heap.EncodeArgs(mustProg(t, a).FindMethod(a.Class, a.Method), a1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := v2.Heap.EncodeArgs(mustProg(t, a).FindMethod(a.Class, a.Method), a2)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("%s: same seed produced different inputs", a.Name)
		}
	}
}

func mustProg(t *testing.T, a *App) *bytecode.Program {
	t.Helper()
	p, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSizeOfMatchesNominalSize(t *testing.T) {
	r := rng.New(1)
	for _, a := range All() {
		p := mustProg(t, a)
		v := vm.New(p, energy.MicroSPARCIIep())
		size := a.ProfileSizes[2]
		args, err := a.Target().MakeArgs(v, size, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Target().SizeOf(v, args)
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != size {
			t.Errorf("%s: SizeOf = %v, want %d", a.Name, got, size)
		}
	}
}
