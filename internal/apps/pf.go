package apps

import (
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// PF is the Path-Finder: given a map (a weighted edge list — the
// paper's size parameters are "number of nodes and number of edges")
// and a source node, it computes the shortest-path tree rooted at the
// source: it expands the edges into an adjacency matrix and runs
// Dijkstra without a priority queue, the O(V^2) formulation typical of
// embedded code. Only the compact edge list crosses the network when
// the method is offloaded.
const pfSource = `
class PF {
  potential static int[] shortest(int[] edges, int n, int src) {
    int[] adj = new int[n * n];
    int ne = edges.length / 3;
    for (int e = 0; e < ne; e = e + 1) {
      int ea = edges[e * 3];
      int eb = edges[e * 3 + 1];
      int ew = edges[e * 3 + 2];
      adj[ea * n + eb] = ew;
      adj[eb * n + ea] = ew;
    }
    int INF = 1000000000;
    int[] dist = new int[n];
    int[] done = new int[n];
    for (int i = 0; i < n; i = i + 1) { dist[i] = INF; }
    dist[src] = 0;
    for (int it = 0; it < n; it = it + 1) {
      int best = 0 - 1;
      int bd = INF;
      for (int i = 0; i < n; i = i + 1) {
        if (done[i] == 0 && dist[i] < bd) { bd = dist[i]; best = i; }
      }
      if (best < 0) { return dist; }
      done[best] = 1;
      int base = best * n;
      for (int j = 0; j < n; j = j + 1) {
        int w = adj[base + j];
        if (w > 0 && dist[best] + w < dist[j]) {
          dist[j] = dist[best] + w;
        }
      }
    }
    return dist;
  }
}
`

type pfInput struct {
	n     int
	edges []int // flattened (a, b, w) triples
	src   int
}

// pfMake generates a connected random graph as an edge list: a ring
// (guaranteeing connectivity) plus ~3n random chords.
func pfMake(size int, seed uint64) Input {
	r := rng.New(seed)
	n := size
	var edges []int
	for i := 0; i < n; i++ {
		edges = append(edges, i, (i+1)%n, 1+r.Intn(20))
	}
	for k := 0; k < 3*n; k++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, a, b, 1+r.Intn(50))
		}
	}
	return &pfInput{n: n, edges: edges, src: r.Intn(n)}
}

const pfInf = 1000000000

// reference mirrors PF.shortest.
func (in *pfInput) reference() []int {
	n := in.n
	adj := make([]int, n*n)
	for e := 0; e < len(in.edges)/3; e++ {
		a, b, w := in.edges[e*3], in.edges[e*3+1], in.edges[e*3+2]
		adj[a*n+b] = w
		adj[b*n+a] = w
	}
	dist := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = pfInf
	}
	dist[in.src] = 0
	for it := 0; it < n; it++ {
		best, bd := -1, pfInf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < bd {
				bd, best = dist[i], i
			}
		}
		if best < 0 {
			return dist
		}
		done[best] = true
		for j := 0; j < n; j++ {
			w := adj[best*n+j]
			if w > 0 && dist[best]+w < dist[j] {
				dist[j] = dist[best] + w
			}
		}
	}
	return dist
}

func (in *pfInput) Args(v *vm.VM) ([]vm.Slot, error) {
	h, err := intArrayToHeap(v, in.edges)
	if err != nil {
		return nil, err
	}
	return []vm.Slot{vm.RefSlot(h), vm.IntSlot(int32(in.n)), vm.IntSlot(int32(in.src))}, nil
}

func (in *pfInput) Check(v *vm.VM, res vm.Slot) error {
	return checkIntArray(v, res, in.reference(), "pf")
}

// PF returns the Path-Finder benchmark.
func PF() *App {
	return &App{
		Name:          "pf",
		Desc:          "shortest path tree from a source node of a weighted map",
		SizeDesc:      "number of nodes",
		Source:        pfSource,
		Class:         "PF",
		Method:        "shortest",
		SizeArg:       1,
		ProfileSizes:  []int{64, 96, 128, 192, 256, 320},
		SmallSize:     72,
		LargeSize:     300,
		ScenarioSizes: []int{80, 128, 192, 256, 300},
		MakeInput:     pfMake,
	}
}
