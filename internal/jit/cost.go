package jit

import "greenvm/internal/energy"

// Compile-energy model. The JIT really runs on the development host,
// but on the simulated device its work would execute as native
// instructions; this model charges an instruction budget proportional
// to the work each phase actually performed (bytecodes parsed, IR
// processed, loops analyzed, native instructions emitted), using a
// fixed instruction mix typical of pointer-chasing compiler code.
//
// The constants are calibrated so that the relative compile costs of
// L1/L2/L3 fall in the ranges the paper reports in Fig 8 (L2 roughly
// 1.4-3.1x L1, L3 up to ~3.6x L1) and so that compiling an application
// is a significant energy event relative to executing it once on small
// inputs — the effect Fig 6 depends on.
const (
	unitsPerMethodFixed    = 60000 // per-method setup, verification, installation
	unitsBuildPerBytecode  = 1800
	unitsLVNPerIR          = 1200
	unitsLICMPerIR         = 760
	unitsLICMPerLoop       = 10400
	unitsDCEPerIR          = 1240
	unitsInlinePerSite     = 3200
	unitsInlinePerBytecode = 1680
	unitsRegallocPerIR     = 1320
	unitsCodegenPerNative  = 1120

	// CompilerLoadUnits models loading and initializing the compiler
	// classes themselves, charged once per JVM session that compiles
	// anything locally (included in the paper's Fig 6 numbers).
	CompilerLoadUnits = 1_000_000
)

// WorkUnits returns the total instruction budget of the compilation.
func (s *Stats) WorkUnits() uint64 {
	u := uint64(unitsPerMethodFixed)
	u += uint64(unitsBuildPerBytecode) * uint64(s.Bytecodes+s.InlinedBytecodes)
	if s.Level >= Level2 {
		u += uint64(unitsLVNPerIR) * uint64(s.IRBuilt)
		u += uint64(unitsLICMPerIR)*uint64(s.IRBuilt) + uint64(unitsLICMPerLoop)*uint64(s.Loops)
		u += uint64(unitsDCEPerIR) * uint64(s.IRBuilt)
	}
	if s.Level >= Level3 {
		u += uint64(unitsInlinePerSite) * uint64(s.InlinedCalls)
		u += uint64(unitsInlinePerBytecode) * uint64(s.InlinedBytecodes)
	}
	u += uint64(unitsRegallocPerIR) * uint64(s.IRAfterOpt)
	u += uint64(unitsCodegenPerNative) * uint64(s.NativeInstrs)
	return u
}

// chargeUnits converts an instruction budget into account charges
// using the compiler instruction mix, and mirrors the total into the
// compile component for reporting.
func chargeUnits(acct *energy.Account, units uint64) {
	snap := acct.Snapshot()
	acct.AddInstr(energy.Load, units*38/100)
	acct.AddInstr(energy.Store, units*17/100)
	acct.AddInstr(energy.Branch, units*12/100)
	acct.AddInstr(energy.ALUSimple, units*28/100)
	acct.AddInstr(energy.ALUComplex, units*3/100)
	acct.AddInstr(energy.Nop, units*2/100)
	// Compiler working sets blow out the small on-chip caches; charge
	// DRAM traffic and the matching stalls for 2% of the accesses.
	mem := units * 2 / 100
	acct.AddMemAccess(mem)
	acct.AddStallCycles(mem / 8 * 20)
	acct.AddComponent(energy.CompCompile, acct.Since(snap))
}

// Charge bills the compilation work to the account.
func (s *Stats) Charge(acct *energy.Account) {
	chargeUnits(acct, s.WorkUnits())
}

// Energy returns the energy the compilation would cost on the given
// CPU model without mutating any account.
func (s *Stats) Energy(model *energy.CPUModel) energy.Joules {
	tmp := energy.NewAccount(model)
	s.Charge(tmp)
	return tmp.Total()
}

// ChargeCompilerLoad bills the one-time cost of loading and
// initializing the compiler classes.
func ChargeCompilerLoad(acct *energy.Account) {
	chargeUnits(acct, CompilerLoadUnits)
}

// CompilerLoadEnergy reports that cost on a model without an account.
func CompilerLoadEnergy(model *energy.CPUModel) energy.Joules {
	tmp := energy.NewAccount(model)
	ChargeCompilerLoad(tmp)
	return tmp.Total()
}
