package jit

// Loop-invariant code motion. Natural loops are found via dominators;
// each loop gets a preheader block, and pure instructions whose
// operands are defined outside the loop (or by already-hoisted
// instructions) are moved into it. Only non-faulting pure instructions
// move, so hoisting is safe even when the loop body would not have
// executed.

// dominators computes the immediate-domination sets with the simple
// iterative algorithm (adequate for our small CFGs).
func dominators(f *fn) []bitset {
	nb := len(f.blocks)
	dom := make([]bitset, nb)
	all := newBitset(nb)
	for i := 0; i < nb; i++ {
		all.set(vreg(i))
	}
	for i := range dom {
		dom[i] = newBitset(nb)
		if i == 0 {
			dom[i].set(0)
		} else {
			dom[i].copyFrom(all)
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < nb; i++ {
			b := f.blocks[i]
			if len(b.preds) == 0 {
				continue
			}
			tmp := newBitset(nb)
			tmp.copyFrom(dom[b.preds[0]])
			for _, p := range b.preds[1:] {
				for w := range tmp {
					tmp[w] &= dom[p][w]
				}
			}
			tmp.set(vreg(i))
			for w := range tmp {
				if tmp[w] != dom[i][w] {
					dom[i].copyFrom(tmp)
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// loop is a natural loop: a header and the set of member blocks.
type loop struct {
	header int
	body   map[int]bool
}

// findLoops returns the natural loops of f, outermost last.
func findLoops(f *fn) []loop {
	dom := dominators(f)
	byHeader := map[int]map[int]bool{}
	for _, b := range f.blocks {
		for _, s := range b.succs {
			if dom[b.id].has(vreg(s)) {
				// Back edge b -> s; collect the natural loop of header s.
				body := byHeader[s]
				if body == nil {
					body = map[int]bool{s: true}
					byHeader[s] = body
				}
				var stack []int
				if !body[b.id] {
					body[b.id] = true
					stack = append(stack, b.id)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range f.blocks[x].preds {
						if !body[p] {
							body[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	loops := make([]loop, 0, len(byHeader))
	for h, body := range byHeader {
		loops = append(loops, loop{header: h, body: body})
	}
	// Inner (smaller) loops first so invariants can ripple outward.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if len(loops[j].body) < len(loops[i].body) ||
				(len(loops[j].body) == len(loops[i].body) && loops[j].header < loops[i].header) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	return loops
}

// licm hoists loop-invariant instructions and returns how many moved.
// After every successful hoist the loop set is recomputed from the
// fresh CFG: inserting an inner loop's preheader changes the membership
// of every enclosing loop, so working from a stale loop list would
// miscount definitions and hoist non-invariant instructions.
func licm(f *fn) int {
	hoisted := 0
	for {
		progress := false
		for _, lp := range findLoops(f) {
			if n := hoistLoop(f, lp); n > 0 {
				hoisted += n
				progress = true
				break
			}
		}
		if !progress {
			f.computeCFGEdges()
			return hoisted
		}
	}
}

func hoistLoop(f *fn, lp loop) int {
	liveIn, _ := liveness(f)

	// Definition counts inside the loop.
	defCount := map[vreg]int{}
	for id := range lp.body {
		for i := range f.blocks[id].instrs {
			if d := f.blocks[id].instrs[i].def(); d != noReg {
				defCount[d]++
			}
		}
	}

	// An instruction is invariant if it is pure, cannot fault, its
	// destination is defined exactly once in the loop and is not
	// live into the header (so the pre-loop value is dead), and every
	// operand is defined outside the loop or already hoisted.
	hoistedDefs := map[vreg]bool{}
	var moved []irInstr
	// Deterministic block order.
	ids := make([]int, 0, len(lp.body))
	for id := range lp.body {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for pass := 0; pass < 3; pass++ {
		// Operands may only depend on defs hoisted in earlier passes,
		// so the preheader order respects dependencies.
		snapshot := make(map[vreg]bool, len(hoistedDefs))
		for k := range hoistedDefs {
			snapshot[k] = true
		}
		invariantOperand := func(r vreg) bool {
			return defCount[r] == 0 || snapshot[r]
		}
		movedThisPass := 0
		for _, id := range ids {
			b := f.blocks[id]
			out := b.instrs[:0]
			for i := range b.instrs {
				in := b.instrs[i]
				d := in.def()
				ok := in.pure() && d != noReg && defCount[d] == 1 &&
					!hoistedDefs[d] && !liveIn[lp.header].has(d)
				if ok {
					in.uses(func(r vreg) {
						if !invariantOperand(r) {
							ok = false
						}
					})
				}
				if ok {
					moved = append(moved, in)
					hoistedDefs[d] = true
					movedThisPass++
					continue
				}
				out = append(out, in)
			}
			b.instrs = out
		}
		if movedThisPass == 0 {
			break
		}
	}
	if len(moved) == 0 {
		return 0
	}

	// Build the preheader and retarget entry edges.
	pre := f.newBlock()
	pre.instrs = append(pre.instrs, moved...)
	pre.instrs = append(pre.instrs, irInstr{Op: opJmp, Aux: int32(lp.header)})
	for _, b := range f.blocks {
		if b.id == pre.id || lp.body[b.id] {
			continue
		}
		for i := range b.instrs {
			in := &b.instrs[i]
			switch in.Op {
			case opJmp:
				if int(in.Aux) == lp.header {
					in.Aux = int32(pre.id)
				}
			case opBr:
				if int(in.Aux) == lp.header {
					in.Aux = int32(pre.id)
				}
				if int(in.Aux2) == lp.header {
					in.Aux2 = int32(pre.id)
				}
			}
		}
	}
	f.computeCFGEdges()
	return len(moved)
}
