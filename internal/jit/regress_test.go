package jit

import (
	"testing"

	"greenvm/internal/lang"
	"greenvm/internal/vm"
)

// Regression: LICM over a deeply nested loop structure containing an
// inlined callee used to hoist non-invariant definitions, because the
// loop set was computed once and went stale as preheaders were
// inserted (an inner preheader belongs to every enclosing loop).
func TestLICMNestedLoopsWithInlining(t *testing.T) {
	src := `
class T {
  static int go(int w) {
    int[] pix = new int[w * w];
    for (int i = 0; i < w * w; i = i + 1) { pix[i] = (i * 37) % 251; }
    int[] out = new int[w * w];
    int r = 1;
    int[] window = new int[9];
    int s = 0;
    for (int y = 0; y < w; y = y + 1) {
      for (int x = 0; x < w; x = x + 1) {
        int cnt = 0;
        for (int dy = 0 - r; dy <= r; dy = dy + 1) {
          for (int dx = 0 - r; dx <= r; dx = dx + 1) {
            int yy = y + dy;
            int xx = x + dx;
            if (yy >= 0 && yy < w && xx >= 0 && xx < w) {
              window[cnt] = pix[yy * w + xx];
              cnt = cnt + 1;
            }
          }
        }
        out[y * w + x] = med(window, cnt);
      }
    }
    for (int i = 0; i < w * w; i = i + 1) { s = s + out[i] * (i + 1); }
    return s;
  }
  static int med(int[] a, int n) {
    for (int i = 1; i < n; i = i + 1) {
      int v = a[i];
      int j = i - 1;
      while (j >= 0 && a[j] > v) {
        a[j + 1] = a[j];
        j = j - 1;
      }
      a[j + 1] = v;
    }
    return a[n / 2];
  }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	args := []vm.Slot{vm.IntSlot(8)}
	want, _ := runMode(t, p, "T", "go", 0, args)
	for _, lv := range []Level{Level1, Level2, Level3} {
		got, _ := runMode(t, p, "T", "go", lv, args)
		if got != want {
			t.Errorf("%v: got %d want %d", lv, got.I, want.I)
		}
	}
	// The L3 compile must actually inline med.
	_, st, err := Compile(p, p.FindMethod("T", "go"), Level3)
	if err != nil {
		t.Fatal(err)
	}
	if st.InlinedCalls == 0 {
		t.Error("expected med to be inlined")
	}
	if st.Opt.Hoisted == 0 {
		t.Error("expected LICM to hoist something")
	}
}

// Regression: an inlined callee with its own loops, called from inside
// the caller's loop with live values below the arguments on the
// operand stack.
func TestInlineLoopCalleeInCallerLoop(t *testing.T) {
	src := `
class T {
  static int caller(int n) {
    int[] w = new int[5];
    int s = 0;
    for (int y = 0; y < n; y = y + 1) {
      int cnt = 0;
      for (int k = 0; k < 5; k = k + 1) {
        w[cnt] = (y * 7 + k * 3) % 11;
        cnt = cnt + 1;
      }
      s = s + med(w, cnt);
    }
    return s;
  }
  static int med(int[] a, int n) {
    for (int i = 1; i < n; i = i + 1) {
      int v = a[i];
      int j = i - 1;
      while (j >= 0 && a[j] > v) {
        a[j + 1] = a[j];
        j = j - 1;
      }
      a[j + 1] = v;
    }
    return a[n / 2];
  }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	args := []vm.Slot{vm.IntSlot(6)}
	want, _ := runMode(t, p, "T", "caller", 0, args)
	for _, lv := range []Level{Level1, Level2, Level3} {
		got, _ := runMode(t, p, "T", "caller", lv, args)
		if got != want {
			t.Errorf("%v: got %d want %d", lv, got.I, want.I)
		}
	}
}
