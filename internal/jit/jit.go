package jit

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/isa"
)

// Stats describes one compilation: how much work each phase did and
// what came out. The compile-energy model (cost.go) and the ablation
// benchmarks are driven by these numbers.
type Stats struct {
	Method string
	Level  Level

	Bytecodes        int // source bytecodes of the root method
	InlinedCalls     int // call sites expanded at Level3
	InlinedBytecodes int // bytecodes pulled in by inlining
	IRBuilt          int // IR instructions after construction
	IRAfterOpt       int // IR instructions after optimization
	Blocks           int
	Loops            int
	NativeInstrs     int
	FrameWords       int
	Spills           int

	Opt optStats
}

// CodeBytes is the size of the compiled body: what a client downloads
// when it asks the server for the pre-compiled method.
func (s *Stats) CodeBytes() int { return s.NativeInstrs * isa.BytesPerInstr }

// Compile translates method m at the given optimization level and
// returns the native body (with Base unset; the VM assigns it at
// installation) plus compilation statistics.
func Compile(prog *bytecode.Program, m *bytecode.Method, level Level) (*isa.Code, *Stats, error) {
	if level < Level1 || level > Level3 {
		return nil, nil, fmt.Errorf("%w: bad level %d", ErrCompile, level)
	}
	if len(m.Code) == 0 {
		return nil, nil, fmt.Errorf("%w: %s has no body", ErrCompile, m.QName())
	}
	f, err := buildFn(prog, m, level)
	if err != nil {
		return nil, nil, err
	}
	st := &Stats{
		Method:           m.QName(),
		Level:            level,
		Bytecodes:        len(m.Code),
		InlinedCalls:     f.inlinedCalls,
		InlinedBytecodes: f.inlinedBytecode,
		IRBuilt:          f.numIR(),
	}
	if level >= Level2 {
		st.Opt = optimize(f)
	}
	st.IRAfterOpt = f.numIR()
	st.Blocks = len(f.blocks)
	st.Loops = len(findLoops(f))

	alloc := allocate(f)
	st.Spills = alloc.spills
	st.FrameWords = alloc.frameWords

	cg := &codegen{f: f, alloc: alloc}
	if err := cg.generate(); err != nil {
		return nil, nil, err
	}
	st.NativeInstrs = len(cg.out)

	code := &isa.Code{
		Name:       fmt.Sprintf("%s@%s", m.QName(), level),
		Instrs:     cg.out,
		FrameWords: alloc.frameWords,
		OptLevel:   int(level),
	}
	code.ComputeUsedRegs()
	return code, st, nil
}
