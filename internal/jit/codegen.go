package jit

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/isa"
)

// codegen lowers allocated IR to native isa code.
type codegen struct {
	f     *fn
	alloc *allocation
	out   []isa.Instr

	blockStart []int
	fixups     []fixup
}

type fixup struct {
	instr int // index into out
	block int // target block id
}

func (cg *codegen) emit(in isa.Instr) int {
	cg.out = append(cg.out, in)
	return len(cg.out) - 1
}

func (cg *codegen) loc(r vreg) loc { return cg.alloc.locs[r] }

// srcInt materializes an int/ref operand into a register, using the
// given scratch when spilled, and returns the register number.
func (cg *codegen) srcInt(r vreg, scratch uint8) uint8 {
	l := cg.loc(r)
	if l.inReg() {
		return uint8(l.reg)
	}
	cg.emit(isa.Instr{Op: isa.LDSP, Rd: scratch, Imm: int64(l.spill)})
	return scratch
}

func (cg *codegen) srcFloat(r vreg, scratch uint8) uint8 {
	l := cg.loc(r)
	if l.inReg() {
		return uint8(l.reg)
	}
	cg.emit(isa.Instr{Op: isa.LDSPF, Rd: scratch, Imm: int64(l.spill)})
	return scratch
}

// dstInt returns the register to compute an int/ref result into and a
// flush function that stores it if the destination is spilled.
func (cg *codegen) dstInt(r vreg) (uint8, func()) {
	l := cg.loc(r)
	if l.inReg() {
		return uint8(l.reg), func() {}
	}
	return scratchInt0, func() {
		cg.emit(isa.Instr{Op: isa.STSP, Ra: scratchInt0, Imm: int64(l.spill)})
	}
}

func (cg *codegen) dstFloat(r vreg) (uint8, func()) {
	l := cg.loc(r)
	if l.inReg() {
		return uint8(l.reg), func() {}
	}
	return scratchFloat0, func() {
		cg.emit(isa.Instr{Op: isa.STSPF, Ra: scratchFloat0, Imm: int64(l.spill)})
	}
}

var condToBranch = map[cond]isa.Op{
	ceq: isa.BEQ, cne: isa.BNE, clt: isa.BLT, cge: isa.BGE, cgt: isa.BGT, cle: isa.BLE,
	feq: isa.FBEQ, fne: isa.FBNE, flt: isa.FBLT, fge: isa.FBGE,
}

var binToNative = map[irOp]isa.Op{
	opAdd: isa.ADD, opSub: isa.SUB, opMul: isa.MUL, opDiv: isa.DIV, opRem: isa.REM,
	opAnd: isa.AND, opOr: isa.OR, opXor: isa.XOR, opShl: isa.SHL, opShr: isa.SHR,
	opFAdd: isa.FADD, opFSub: isa.FSUB, opFMul: isa.FMUL, opFDiv: isa.FDIV,
}

var immToNative = map[irOp]isa.Op{
	opAddImm: isa.ADDI, opMulImm: isa.MULI, opShlImm: isa.SHLI,
	opShrImm: isa.SHRI, opAndImm: isa.ANDI,
}

// generate lowers the whole function.
func (cg *codegen) generate() error {
	f := cg.f
	cg.blockStart = make([]int, len(f.blocks))

	// Prologue: move ABI argument registers into allocated homes.
	ir, fr := isa.ABIArgBase, isa.ABIArgBase
	for i := 0; i < f.nargs; i++ {
		k := f.kinds[i]
		l := cg.loc(vreg(i))
		if k == bytecode.KFloat {
			src := uint8(fr)
			fr++
			switch {
			case l.inReg():
				cg.emit(isa.Instr{Op: isa.FMOV, Rd: uint8(l.reg), Ra: src})
			case l.spill >= 0:
				cg.emit(isa.Instr{Op: isa.STSPF, Ra: src, Imm: int64(l.spill)})
			}
		} else {
			src := uint8(ir)
			ir++
			switch {
			case l.inReg():
				cg.emit(isa.Instr{Op: isa.MOV, Rd: uint8(l.reg), Ra: src})
			case l.spill >= 0:
				cg.emit(isa.Instr{Op: isa.STSP, Ra: src, Imm: int64(l.spill)})
			}
		}
	}

	for bi, b := range f.blocks {
		cg.blockStart[bi] = len(cg.out)
		for ii := range b.instrs {
			if err := cg.lower(&b.instrs[ii], bi, ii == len(b.instrs)-1); err != nil {
				return err
			}
		}
	}

	// Patch branch targets.
	for _, fx := range cg.fixups {
		cg.out[fx.instr].Imm = int64(cg.blockStart[fx.block])
	}
	return nil
}

// jumpTo emits a jump to block target unless it is the fall-through.
func (cg *codegen) jumpTo(target, curBlock int) {
	if target == curBlock+1 {
		return // falls through in layout order
	}
	idx := cg.emit(isa.Instr{Op: isa.JMP})
	cg.fixups = append(cg.fixups, fixup{idx, target})
}

func (cg *codegen) lower(in *irInstr, curBlock int, isLast bool) error {
	switch in.Op {
	case opNop:

	case opConstI:
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.LDI, Rd: rd, Imm: in.Imm})
		flush()
	case opConstF:
		fd, flush := cg.dstFloat(in.Dst)
		cg.emit(isa.Instr{Op: isa.FLDI, Rd: fd, FImm: in.FImm})
		flush()

	case opMov:
		ls, ld := cg.loc(in.A), cg.loc(in.Dst)
		switch {
		case ls.inReg() && ld.inReg():
			if ls.reg != ld.reg {
				cg.emit(isa.Instr{Op: isa.MOV, Rd: uint8(ld.reg), Ra: uint8(ls.reg)})
			}
		case ls.inReg():
			cg.emit(isa.Instr{Op: isa.STSP, Ra: uint8(ls.reg), Imm: int64(ld.spill)})
		case ld.inReg():
			cg.emit(isa.Instr{Op: isa.LDSP, Rd: uint8(ld.reg), Imm: int64(ls.spill)})
		default:
			cg.emit(isa.Instr{Op: isa.LDSP, Rd: scratchInt0, Imm: int64(ls.spill)})
			cg.emit(isa.Instr{Op: isa.STSP, Ra: scratchInt0, Imm: int64(ld.spill)})
		}
	case opMovF:
		ls, ld := cg.loc(in.A), cg.loc(in.Dst)
		switch {
		case ls.inReg() && ld.inReg():
			if ls.reg != ld.reg {
				cg.emit(isa.Instr{Op: isa.FMOV, Rd: uint8(ld.reg), Ra: uint8(ls.reg)})
			}
		case ls.inReg():
			cg.emit(isa.Instr{Op: isa.STSPF, Ra: uint8(ls.reg), Imm: int64(ld.spill)})
		case ld.inReg():
			cg.emit(isa.Instr{Op: isa.LDSPF, Rd: uint8(ld.reg), Imm: int64(ls.spill)})
		default:
			cg.emit(isa.Instr{Op: isa.LDSPF, Rd: scratchFloat0, Imm: int64(ls.spill)})
			cg.emit(isa.Instr{Op: isa.STSPF, Ra: scratchFloat0, Imm: int64(ld.spill)})
		}

	case opAdd, opSub, opMul, opDiv, opRem, opAnd, opOr, opXor, opShl, opShr:
		ra := cg.srcInt(in.A, scratchInt0)
		rb := cg.srcInt(in.B, scratchInt1)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: binToNative[in.Op], Rd: rd, Ra: ra, Rb: rb})
		flush()

	case opAddImm, opMulImm, opShlImm, opShrImm, opAndImm:
		ra := cg.srcInt(in.A, scratchInt0)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: immToNative[in.Op], Rd: rd, Ra: ra, Imm: in.Imm})
		flush()

	case opNeg:
		ra := cg.srcInt(in.A, scratchInt0)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.NEG, Rd: rd, Ra: ra})
		flush()

	case opFAdd, opFSub, opFMul, opFDiv:
		fa := cg.srcFloat(in.A, scratchFloat0)
		fb := cg.srcFloat(in.B, scratchFloat1)
		fd, flush := cg.dstFloat(in.Dst)
		cg.emit(isa.Instr{Op: binToNative[in.Op], Rd: fd, Ra: fa, Rb: fb})
		flush()
	case opFNeg:
		fa := cg.srcFloat(in.A, scratchFloat0)
		fd, flush := cg.dstFloat(in.Dst)
		cg.emit(isa.Instr{Op: isa.FNEG, Rd: fd, Ra: fa})
		flush()

	case opCvtIF:
		ra := cg.srcInt(in.A, scratchInt0)
		fd, flush := cg.dstFloat(in.Dst)
		cg.emit(isa.Instr{Op: isa.CVTIF, Rd: fd, Ra: ra})
		flush()
	case opCvtFI:
		fa := cg.srcFloat(in.A, scratchFloat0)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.CVTFI, Rd: rd, Ra: fa})
		flush()

	case opLoadFI:
		ra := cg.srcInt(in.A, scratchInt0)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.LDF, Rd: rd, Ra: ra, Imm: int64(in.Aux)})
		flush()
	case opLoadFF:
		ra := cg.srcInt(in.A, scratchInt0)
		fd, flush := cg.dstFloat(in.Dst)
		cg.emit(isa.Instr{Op: isa.LDFF, Rd: fd, Ra: ra, Imm: int64(in.Aux)})
		flush()
	case opStoreFI:
		ra := cg.srcInt(in.A, scratchInt0)
		rb := cg.srcInt(in.B, scratchInt1)
		cg.emit(isa.Instr{Op: isa.STF, Ra: ra, Rb: rb, Imm: int64(in.Aux)})
	case opStoreFF:
		ra := cg.srcInt(in.A, scratchInt0)
		fb := cg.srcFloat(in.B, scratchFloat0)
		cg.emit(isa.Instr{Op: isa.STFF, Ra: ra, Rb: fb, Imm: int64(in.Aux)})

	case opLoadEI:
		ra := cg.srcInt(in.A, scratchInt0)
		rb := cg.srcInt(in.B, scratchInt1)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.LDE, Rd: rd, Ra: ra, Rb: rb})
		flush()
	case opLoadEF:
		ra := cg.srcInt(in.A, scratchInt0)
		rb := cg.srcInt(in.B, scratchInt1)
		fd, flush := cg.dstFloat(in.Dst)
		cg.emit(isa.Instr{Op: isa.LDEF, Rd: fd, Ra: ra, Rb: rb})
		flush()
	case opStoreEI:
		// Value register is in Rd for STE; a third scratch avoids any
		// conflict when array, index and value are all spilled.
		ra := cg.srcInt(in.A, scratchInt0)
		rb := cg.srcInt(in.B, scratchInt1)
		rv := cg.srcInt(in.Args[0], scratchInt2)
		cg.emit(isa.Instr{Op: isa.STE, Rd: rv, Ra: ra, Rb: rb})
	case opStoreEF:
		ra := cg.srcInt(in.A, scratchInt0)
		rb := cg.srcInt(in.B, scratchInt1)
		fv := cg.srcFloat(in.Args[0], scratchFloat0)
		cg.emit(isa.Instr{Op: isa.STEF, Rd: fv, Ra: ra, Rb: rb})

	case opArrLen:
		ra := cg.srcInt(in.A, scratchInt0)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.ARRLEN, Rd: rd, Ra: ra})
		flush()
	case opNewArr:
		ra := cg.srcInt(in.A, scratchInt0)
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.NEWARR, Rd: rd, Ra: ra, Imm: int64(in.Aux)})
		flush()
	case opNewObj:
		rd, flush := cg.dstInt(in.Dst)
		cg.emit(isa.Instr{Op: isa.NEWOBJ, Rd: rd, Imm: int64(in.Aux)})
		flush()

	case opNullCheck:
		ra := cg.srcInt(in.A, scratchInt0)
		// Skip over the trap when the reference is non-null.
		skip := cg.emit(isa.Instr{Op: isa.BNE, Ra: ra, Rb: 0})
		cg.emit(isa.Instr{Op: isa.TRAP, Imm: isa.TrapNull})
		cg.out[skip].Imm = int64(len(cg.out))

	case opCall:
		callee := cg.f.prog.Method(int(in.Aux))
		if callee == nil {
			return fmt.Errorf("%w: bad callee id %d", ErrCompile, in.Aux)
		}
		ir, fr := isa.ABIArgBase, isa.ABIArgBase
		for i, k := range callee.ArgKinds() {
			a := in.Args[i]
			l := cg.loc(a)
			if k == bytecode.KFloat {
				if l.inReg() {
					cg.emit(isa.Instr{Op: isa.FMOV, Rd: uint8(fr), Ra: uint8(l.reg)})
				} else {
					cg.emit(isa.Instr{Op: isa.LDSPF, Rd: uint8(fr), Imm: int64(l.spill)})
				}
				fr++
			} else {
				if l.inReg() {
					cg.emit(isa.Instr{Op: isa.MOV, Rd: uint8(ir), Ra: uint8(l.reg)})
				} else {
					cg.emit(isa.Instr{Op: isa.LDSP, Rd: uint8(ir), Imm: int64(l.spill)})
				}
				ir++
			}
		}
		cg.emit(isa.Instr{Op: isa.CALLVM, Imm: int64(in.Aux)})
		if in.Dst != noReg {
			if callee.Ret.Kind == bytecode.KFloat {
				l := cg.loc(in.Dst)
				if l.inReg() {
					cg.emit(isa.Instr{Op: isa.FMOV, Rd: uint8(l.reg), Ra: isa.ABIArgBase})
				} else if l.spill >= 0 {
					cg.emit(isa.Instr{Op: isa.STSPF, Ra: isa.ABIArgBase, Imm: int64(l.spill)})
				}
			} else {
				l := cg.loc(in.Dst)
				if l.inReg() {
					cg.emit(isa.Instr{Op: isa.MOV, Rd: uint8(l.reg), Ra: isa.ABIArgBase})
				} else if l.spill >= 0 {
					cg.emit(isa.Instr{Op: isa.STSP, Ra: isa.ABIArgBase, Imm: int64(l.spill)})
				}
			}
		}

	case opRet:
		if in.A != noReg {
			if cg.f.kinds[in.A] == bytecode.KFloat {
				fa := cg.srcFloat(in.A, scratchFloat0)
				if fa != isa.ABIArgBase {
					cg.emit(isa.Instr{Op: isa.FMOV, Rd: isa.ABIArgBase, Ra: fa})
				}
			} else {
				ra := cg.srcInt(in.A, scratchInt0)
				if ra != isa.ABIArgBase {
					cg.emit(isa.Instr{Op: isa.MOV, Rd: isa.ABIArgBase, Ra: ra})
				}
			}
		}
		cg.emit(isa.Instr{Op: isa.RET})

	case opJmp:
		_ = isLast
		cg.jumpTo(int(in.Aux), curBlock)

	case opBr:
		ra, rb := uint8(0), uint8(0)
		if cg.f.kinds[in.A] == bytecode.KFloat {
			ra = cg.srcFloat(in.A, scratchFloat0)
			rb = cg.srcFloat(in.B, scratchFloat1)
		} else {
			ra = cg.srcInt(in.A, scratchInt0)
			rb = cg.srcInt(in.B, scratchInt1)
		}
		idx := cg.emit(isa.Instr{Op: condToBranch[in.Cond], Ra: ra, Rb: rb})
		cg.fixups = append(cg.fixups, fixup{idx, int(in.Aux)})
		cg.jumpTo(int(in.Aux2), curBlock)

	case opTrap:
		cg.emit(isa.Instr{Op: isa.TRAP, Imm: int64(in.Aux)})

	default:
		return fmt.Errorf("%w: unhandled IR op %d", ErrCompile, in.Op)
	}
	return nil
}
