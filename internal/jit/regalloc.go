package jit

import (
	"math"
	"sort"

	"greenvm/internal/bytecode"
)

// Register allocation by linear scan (Poletto & Sarkar), the algorithm
// LaTTe-era JITs used for fast compilation. Integer and reference
// values share the integer file; floats use the float file.

// Physical register assignment plan.
const (
	// Integer registers R9..R28 are allocatable; R1..R8 are the ABI
	// argument/return registers, R29/R30 are codegen scratch, R31 is
	// reserved, R0 is zero.
	firstIntReg = 9
	lastIntReg  = 28
	// Float registers F9..F13 are allocatable; F1..F8 are ABI, F14/F15
	// are scratch.
	firstFloatReg = 9
	lastFloatReg  = 13

	scratchInt0   = 29
	scratchInt1   = 30
	scratchInt2   = 31
	scratchFloat0 = 14
	scratchFloat1 = 15
)

// loc is the assigned location of a vreg.
type loc struct {
	reg   int // physical register, or -1
	spill int // frame slot, or -1
}

func (l loc) inReg() bool { return l.reg >= 0 }

// allocation is the result of register allocation.
type allocation struct {
	locs       []loc
	frameWords int
	spills     int
}

type interval struct {
	r          vreg
	start, end int
}

// allocate computes locations for every vreg of f.
func allocate(f *fn) *allocation {
	n := len(f.kinds)
	starts := make([]int, n)
	ends := make([]int, n)
	for i := range starts {
		starts[i] = math.MaxInt
		ends[i] = -1
	}
	extend := func(r vreg, p int) {
		if int(r) < 0 {
			return
		}
		if p < starts[r] {
			starts[r] = p
		}
		if p > ends[r] {
			ends[r] = p
		}
	}

	liveIn, liveOut := liveness(f)
	pos := 0
	for _, b := range f.blocks {
		bStart := pos
		for i := range b.instrs {
			in := &b.instrs[i]
			in.uses(func(r vreg) { extend(r, pos) })
			if d := in.def(); d != noReg {
				extend(d, pos)
			}
			pos++
		}
		bEnd := pos
		for r := 0; r < n; r++ {
			if liveIn[b.id].has(vreg(r)) {
				extend(vreg(r), bStart)
			}
			if liveOut[b.id].has(vreg(r)) {
				extend(vreg(r), bEnd)
			}
		}
	}
	// Arguments are defined at entry.
	for i := 0; i < f.nargs; i++ {
		if ends[i] >= 0 {
			extend(vreg(i), 0)
		}
	}

	var ivs []interval
	for r := 0; r < n; r++ {
		if ends[r] >= 0 {
			ivs = append(ivs, interval{r: vreg(r), start: starts[r], end: ends[r]})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].r < ivs[j].r
	})

	alloc := &allocation{locs: make([]loc, n)}
	for i := range alloc.locs {
		alloc.locs[i] = loc{reg: -1, spill: -1}
	}

	isFloat := func(r vreg) bool { return f.kinds[r] == bytecode.KFloat }

	var freeInt, freeFloat []int
	for r := lastIntReg; r >= firstIntReg; r-- {
		freeInt = append(freeInt, r)
	}
	for r := lastFloatReg; r >= firstFloatReg; r-- {
		freeFloat = append(freeFloat, r)
	}

	type activeIv struct {
		iv  interval
		reg int
	}
	var active []activeIv // sorted by end ascending

	nextSlot := 0
	spillSlot := func() int {
		s := nextSlot
		nextSlot++
		alloc.spills++
		return s
	}

	for _, iv := range ivs {
		// Expire finished intervals.
		keep := active[:0]
		for _, a := range active {
			if a.iv.end < iv.start {
				if isFloat(a.iv.r) {
					freeFloat = append(freeFloat, a.reg)
				} else {
					freeInt = append(freeInt, a.reg)
				}
			} else {
				keep = append(keep, a)
			}
		}
		active = keep

		pool := &freeInt
		if isFloat(iv.r) {
			pool = &freeFloat
		}
		if len(*pool) > 0 {
			reg := (*pool)[len(*pool)-1]
			*pool = (*pool)[:len(*pool)-1]
			alloc.locs[iv.r] = loc{reg: reg, spill: -1}
			active = append(active, activeIv{iv, reg})
			sort.Slice(active, func(i, j int) bool { return active[i].iv.end < active[j].iv.end })
			continue
		}
		// Spill the interval (among same-pool active ones and this one)
		// that ends last.
		victim := -1
		for idx := len(active) - 1; idx >= 0; idx-- {
			if isFloat(active[idx].iv.r) == isFloat(iv.r) {
				victim = idx
				break
			}
		}
		if victim >= 0 && active[victim].iv.end > iv.end {
			v := active[victim]
			alloc.locs[iv.r] = loc{reg: v.reg, spill: -1}
			alloc.locs[v.iv.r] = loc{reg: -1, spill: spillSlot()}
			active[victim] = activeIv{iv, v.reg}
			sort.Slice(active, func(i, j int) bool { return active[i].iv.end < active[j].iv.end })
		} else {
			alloc.locs[iv.r] = loc{reg: -1, spill: spillSlot()}
		}
	}
	alloc.frameWords = nextSlot
	return alloc
}
