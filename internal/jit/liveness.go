package jit

// Dataflow liveness analysis over virtual registers, shared by
// dead-code elimination, loop-invariant code motion and the linear-
// scan register allocator.

// bitset is a simple word-packed set of vregs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i vreg)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s bitset) clear(i vreg)    { s[i/64] &^= 1 << (uint(i) % 64) }
func (s bitset) has(i vreg) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

func (s bitset) orInto(o bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) copyFrom(o bitset) {
	copy(s, o)
}

// readsAB reports which of the A and B operand fields the opcode
// actually reads. Unused operand fields default to 0, which is a real
// vreg, so operand walks must dispatch on the opcode rather than on
// sentinels.
func (in *irInstr) readsAB() (a, b bool) {
	switch in.Op {
	case opNop, opConstI, opConstF, opJmp, opTrap, opNewObj, opCall:
		return false, false
	case opRet:
		return in.A != noReg, false
	case opMov, opMovF, opNeg, opFNeg, opCvtIF, opCvtFI,
		opLoadFI, opLoadFF, opArrLen, opNewArr, opNullCheck,
		opAddImm, opMulImm, opShlImm, opShrImm, opAndImm:
		return true, false
	default:
		// Binary arithmetic, field stores, element loads/stores,
		// branches.
		return true, true
	}
}

// uses calls fn for every vreg the instruction reads.
func (in *irInstr) uses(fn func(vreg)) {
	ra, rb := in.readsAB()
	if ra {
		fn(in.A)
	}
	if rb {
		fn(in.B)
	}
	for _, a := range in.Args {
		fn(a)
	}
}

// def returns the vreg the instruction writes, or noReg.
func (in *irInstr) def() vreg {
	switch in.Op {
	case opNop, opStoreFI, opStoreFF, opStoreEI, opStoreEF,
		opRet, opJmp, opBr, opTrap, opNullCheck:
		return noReg
	}
	return in.Dst
}

// liveness computes live-in and live-out sets per block.
func liveness(f *fn) (liveIn, liveOut []bitset) {
	n := len(f.kinds)
	nb := len(f.blocks)
	use := make([]bitset, nb)
	def := make([]bitset, nb)
	liveIn = make([]bitset, nb)
	liveOut = make([]bitset, nb)
	for i, b := range f.blocks {
		use[i] = newBitset(n)
		def[i] = newBitset(n)
		liveIn[i] = newBitset(n)
		liveOut[i] = newBitset(n)
		for j := range b.instrs {
			in := &b.instrs[j]
			in.uses(func(r vreg) {
				if !def[i].has(r) {
					use[i].set(r)
				}
			})
			if d := in.def(); d != noReg {
				def[i].set(d)
			}
		}
	}
	// Iterate to fixpoint (backward).
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := f.blocks[i]
			for _, s := range b.succs {
				if liveOut[i].orInto(liveIn[s]) {
					changed = true
				}
			}
			// in = use U (out - def)
			tmp := newBitset(n)
			tmp.copyFrom(liveOut[i])
			for j := range tmp {
				tmp[j] &^= def[i][j]
				tmp[j] |= use[i][j]
			}
			if liveIn[i].orInto(tmp) {
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

// deadCodeElim removes pure instructions whose results are never used.
// It iterates because removing one instruction can kill another.
func deadCodeElim(f *fn) int {
	removed := 0
	for {
		_, liveOut := liveness(f)
		changedThisRound := 0
		for bi, b := range f.blocks {
			live := newBitset(len(f.kinds))
			live.copyFrom(liveOut[bi])
			out := make([]irInstr, 0, len(b.instrs))
			// Walk backward, keeping live instructions.
			for j := len(b.instrs) - 1; j >= 0; j-- {
				in := b.instrs[j]
				d := in.def()
				if in.pure() && d != noReg && !live.has(d) {
					changedThisRound++
					continue
				}
				if d != noReg {
					live.clear(d)
				}
				in.uses(func(r vreg) { live.set(r) })
				out = append(out, in)
			}
			// Reverse back into order.
			for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
				out[l], out[r] = out[r], out[l]
			}
			b.instrs = out
		}
		removed += changedThisRound
		if changedThisRound == 0 {
			return removed
		}
	}
}
