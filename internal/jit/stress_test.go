package jit

import (
	"testing"

	"greenvm/internal/lang"
	"greenvm/internal/vm"
)

// TestRegisterSpillStress forces the linear-scan allocator to spill
// both integer and float registers: far more simultaneously live
// values than the allocatable files (20 int, 5 float) hold.
func TestRegisterSpillStress(t *testing.T) {
	src := `
class S {
  static float stress(int n) {
    int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
    int g = 7; int h = 8; int i2 = 9; int j = 10; int k = 11; int l = 12;
    int m = 13; int o = 14; int p = 15; int q = 16; int r = 17; int s = 18;
    int t = 19; int u = 20; int v = 21; int w = 22; int x = 23; int y = 24;
    float fa = 1.5; float fb = 2.5; float fc = 3.5; float fd = 4.5;
    float fe = 5.5; float ff = 6.5; float fg = 7.5; float fh = 8.5;
    float acc = 0.0;
    for (int it = 0; it < n; it = it + 1) {
      a = a + b; b = b + c; c = c + d; d = d + e; e = e + f; f = f + g;
      g = g + h; h = h + i2; i2 = i2 + j; j = j + k; k = k + l; l = l + m;
      m = m + o; o = o + p; p = p + q; q = q + r; r = r + s; s = s + t;
      t = t + u; u = u + v; v = v + w; w = w + x; x = x + y; y = y + a;
      fa = fa + fb; fb = fb + fc; fc = fc + fd; fd = fd + fe;
      fe = fe + ff; ff = ff + fg; fg = fg + fh; fh = fh + fa;
      acc = acc + fa - fh + fc;
    }
    return acc + a + b + c + d + e + f + g + h + i2 + j + k + l + m + o
        + p + q + r + s + t + u + v + w + x + y
        + fa + fb + fc + fd + fe + ff + fg + fh;
  }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.FindMethod("S", "stress")
	args := []vm.Slot{vm.IntSlot(9)}
	want, _ := runMode(t, p, "S", "stress", 0, args)
	for _, lv := range []Level{Level1, Level2, Level3} {
		_, st, err := Compile(p, m, lv)
		if err != nil {
			t.Fatal(err)
		}
		if st.Spills == 0 {
			t.Errorf("%v: expected register spills under this pressure", lv)
		}
		got, _ := runMode(t, p, "S", "stress", lv, args)
		if got != want {
			t.Errorf("%v: got %v want %v", lv, got.F, want.F)
		}
	}
}

// TestFloatCompareAllLevels exercises every float comparison operator
// (including the operand-swapped > and <= lowerings) in value and
// condition positions.
func TestFloatCompareAllLevels(t *testing.T) {
	src := `
class F {
  static int cmp(float a, float b) {
    int r = 0;
    if (a < b)  { r = r + 1; }
    if (a <= b) { r = r + 10; }
    if (a > b)  { r = r + 100; }
    if (a >= b) { r = r + 1000; }
    if (a == b) { r = r + 10000; }
    if (a != b) { r = r + 100000; }
    int v = a < b;
    return r * 2 + v;
  }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]float64{{1, 2}, {2, 1}, {1.5, 1.5}, {-0.5, 0.5}, {0, 0}}
	for _, c := range cases {
		args := []vm.Slot{vm.FloatSlot(c[0]), vm.FloatSlot(c[1])}
		want, _ := runMode(t, p, "F", "cmp", 0, args)
		for _, lv := range []Level{Level1, Level2, Level3} {
			got, _ := runMode(t, p, "F", "cmp", lv, args)
			if got != want {
				t.Errorf("cmp(%g,%g) at %v: got %d want %d", c[0], c[1], lv, got.I, want.I)
			}
		}
	}
}

// TestJavaDivisionEdgeCases pins the JVM's truncating division
// semantics, including INT_MIN / -1 wrapping rather than trapping.
func TestJavaDivisionEdgeCases(t *testing.T) {
	src := `
class D {
  static int div(int a, int b) { return a / b; }
  static int rem(int a, int b) { return a % b; }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int32
		d, r int64
	}{
		{7, 2, 3, 1},
		{-7, 2, -3, -1},
		{7, -2, -3, 1},
		{-7, -2, 3, -1},
		{-2147483648, -1, -2147483648, 0}, // Java wraps, no trap
		{-2147483648, 1, -2147483648, 0},
	}
	for _, c := range cases {
		args := []vm.Slot{vm.IntSlot(c.a), vm.IntSlot(c.b)}
		for _, lv := range []Level{0, Level1, Level2, Level3} {
			got, _ := runMode(t, p, "D", "div", lv, args)
			if got.I != c.d {
				t.Errorf("div(%d,%d) at %v = %d, want %d", c.a, c.b, lv, got.I, c.d)
			}
			got, _ = runMode(t, p, "D", "rem", lv, args)
			if got.I != c.r {
				t.Errorf("rem(%d,%d) at %v = %d, want %d", c.a, c.b, lv, got.I, c.r)
			}
		}
	}
}

// TestRefEqualityAllLevels exercises reference identity comparison and
// null tests through every engine.
func TestRefEqualityAllLevels(t *testing.T) {
	src := `
class Node { int v; }
class R {
  static int test(int same) {
    Node a = new Node();
    Node b = new Node();
    Node c = a;
    if (same == 1) { c = b; }
    int r = 0;
    if (a == c) { r = r + 1; }
    if (a != b) { r = r + 10; }
    Node nil2 = null;
    if (nil2 == null) { r = r + 100; }
    if (b != null) { r = r + 1000; }
    return r;
  }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, same := range []int32{0, 1} {
		args := []vm.Slot{vm.IntSlot(same)}
		want, _ := runMode(t, p, "R", "test", 0, args)
		for _, lv := range []Level{Level1, Level2, Level3} {
			got, _ := runMode(t, p, "R", "test", lv, args)
			if got != want {
				t.Errorf("test(%d) at %v: got %d want %d", same, lv, got.I, want.I)
			}
		}
	}
}

// TestDeepCallChains exercises nested non-inlinable calls (mutual
// recursion blocks inlining) through the register-window bridge.
func TestDeepCallChains(t *testing.T) {
	src := `
class C {
  static int even(int n) {
    if (n == 0) { return 1; }
    return odd(n - 1);
  }
  static int odd(int n) {
    if (n == 0) { return 0; }
    return even(n - 1);
  }
}`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int32{0, 1, 41, 100} {
		args := []vm.Slot{vm.IntSlot(n)}
		want, _ := runMode(t, p, "C", "even", 0, args)
		for _, lv := range []Level{Level1, Level2, Level3} {
			got, _ := runMode(t, p, "C", "even", lv, args)
			if got != want {
				t.Errorf("even(%d) at %v: got %d want %d", n, lv, got.I, want.I)
			}
		}
	}
}
