package jit

import "greenvm/internal/bytecode"

// Level2 optimizations: local value numbering (common sub-expression
// elimination, constant folding, copy propagation, immediate-operand
// formation), strength reduction, loop-invariant code motion, and
// liveness-based dead-code elimination. These are the optimizations
// the paper attributes to its Level2 compiler.

// Immediate-form IR ops are produced only by the optimizer (never by
// the builder), so Level1 code uses the plain register forms.
const (
	opAddImm irOp = 200 + iota
	opMulImm
	opShlImm
	opShrImm
	opAndImm
)

func isImmForm(op irOp) bool {
	switch op {
	case opAddImm, opMulImm, opShlImm, opShrImm, opAndImm:
		return true
	}
	return false
}

// optimize runs the Level2 pass pipeline and returns pass statistics.
func optimize(f *fn) optStats {
	var st optStats
	for _, b := range f.blocks {
		st.merge(valueNumber(f, b))
	}
	st.Hoisted = licm(f)
	// LICM and LVN leave dead moves behind; clean up.
	st.DeadRemoved = deadCodeElim(f)
	return st
}

// optStats counts what each optimization accomplished; the compile
// cost model charges for the work and the stats feed ablation benches.
type optStats struct {
	CSEHits     int // expressions replaced by an available value
	ConstFolded int
	ImmFormed   int // register-register ops narrowed to immediate form
	Strength    int // multiplies turned into shifts
	Hoisted     int // instructions moved to loop preheaders
	DeadRemoved int
}

func (s *optStats) merge(o optStats) {
	s.CSEHits += o.CSEHits
	s.ConstFolded += o.ConstFolded
	s.ImmFormed += o.ImmFormed
	s.Strength += o.Strength
	s.Hoisted += o.Hoisted
	s.DeadRemoved += o.DeadRemoved
}

func (s *optStats) total() int {
	return s.CSEHits + s.ConstFolded + s.ImmFormed + s.Strength + s.Hoisted + s.DeadRemoved
}

// valueNumber performs local value numbering over one block.
func valueNumber(f *fn, b *block) optStats {
	var st optStats

	type exprKey struct {
		op     irOp
		a, bvn int32
		imm    int64
		fimm   float64
	}
	nextVN := int32(1)
	vnOf := make(map[vreg]int32)   // current value number of a vreg
	holder := make(map[int32]vreg) // a vreg currently holding the value
	constI := make(map[int32]int64)
	constF := make(map[int32]float64)
	exprVN := make(map[exprKey]int32)

	vn := func(r vreg) int32 {
		if n, ok := vnOf[r]; ok {
			return n
		}
		n := nextVN
		nextVN++
		vnOf[r] = n
		holder[n] = r
		return n
	}
	define := func(r vreg, n int32) {
		if old, ok := vnOf[r]; ok && holder[old] == r {
			delete(holder, old)
		}
		vnOf[r] = n
		if _, ok := holder[n]; !ok {
			holder[n] = r
		}
	}
	freshDef := func(r vreg) {
		n := nextVN
		nextVN++
		define(r, n)
	}

	movFor := func(k bytecode.Kind) irOp {
		if k == bytecode.KFloat {
			return opMovF
		}
		return opMov
	}

	out := b.instrs[:0]
	for i := range b.instrs {
		in := b.instrs[i]

		switch in.Op {
		case opMov, opMovF:
			// Copy propagation: destination takes the source's value.
			n := vn(in.A)
			if h, ok := holder[n]; ok && h != in.A {
				in.A = h
			}
			if vnOf[in.Dst] == n {
				// Already holds the value; drop the move.
				st.CSEHits++
				continue
			}
			define(in.Dst, n)
			out = append(out, in)
			continue

		case opConstI:
			key := exprKey{op: opConstI, imm: in.Imm}
			if n, ok := exprVN[key]; ok {
				if h, held := holder[n]; held {
					if vnOf[in.Dst] == n {
						st.CSEHits++
						continue
					}
					in = irInstr{Op: opMov, Dst: in.Dst, A: h}
					define(in.Dst, n)
					st.CSEHits++
					out = append(out, in)
					continue
				}
			}
			n := nextVN
			nextVN++
			exprVN[key] = n
			constI[n] = in.Imm
			define(in.Dst, n)
			out = append(out, in)
			continue

		case opConstF:
			key := exprKey{op: opConstF, fimm: in.FImm}
			if n, ok := exprVN[key]; ok {
				if h, held := holder[n]; held {
					if vnOf[in.Dst] == n {
						st.CSEHits++
						continue
					}
					in = irInstr{Op: opMovF, Dst: in.Dst, A: h}
					define(in.Dst, n)
					st.CSEHits++
					out = append(out, in)
					continue
				}
			}
			n := nextVN
			nextVN++
			exprVN[key] = n
			constF[n] = in.FImm
			define(in.Dst, n)
			out = append(out, in)
			continue
		}

		// Rewrite operands to current holders (copy propagation into
		// uses). Only rewrite fields the opcode actually reads.
		rewrite := func(r *vreg) {
			if *r == noReg {
				return
			}
			n := vn(*r)
			if h, ok := holder[n]; ok && h != noReg {
				*r = h
			}
		}
		readsA, readsB := in.readsAB()
		if readsA {
			rewrite(&in.A)
		}
		if readsB {
			rewrite(&in.B)
		}
		for j := range in.Args {
			rewrite(&in.Args[j])
		}

		if !in.pure() {
			if d := in.def(); d != noReg {
				freshDef(d)
			}
			out = append(out, in)
			continue
		}

		na, nb := vn(in.A), int32(0)
		if in.B != noReg {
			nb = vn(in.B)
		}

		// Constant folding.
		if ca, aok := constI[na]; aok && in.B != noReg {
			if cb, bok := constI[nb]; bok {
				if folded, ok := foldInt(in.Op, ca, cb); ok {
					in = irInstr{Op: opConstI, Dst: in.Dst, Imm: folded}
					st.ConstFolded++
					key := exprKey{op: opConstI, imm: folded}
					n, ok := exprVN[key]
					if !ok {
						n = nextVN
						nextVN++
						exprVN[key] = n
						constI[n] = folded
					}
					define(in.Dst, n)
					out = append(out, in)
					continue
				}
			}
		}
		if in.Op == opNeg {
			if ca, aok := constI[na]; aok {
				folded := int64(int32(-ca))
				in = irInstr{Op: opConstI, Dst: in.Dst, Imm: folded}
				st.ConstFolded++
				freshDef(in.Dst)
				constI[vnOf[in.Dst]] = folded
				out = append(out, in)
				continue
			}
		}

		// Immediate-operand formation and strength reduction.
		if in.B != noReg {
			if cb, bok := constI[nb]; bok {
				if imm, ok := immForm(in.Op, cb, false); ok {
					in.Op, in.Imm, in.B = imm.op, imm.imm, noReg
					st.ImmFormed++
					if imm.strength {
						st.Strength++
					}
				}
			} else if ca, aok := constI[na]; aok {
				if imm, ok := immForm(in.Op, ca, true); ok {
					in.Op, in.Imm = imm.op, imm.imm
					in.A, in.B = in.B, noReg
					st.ImmFormed++
					if imm.strength {
						st.Strength++
					}
				}
			}
		}

		// Algebraic identities.
		switch {
		case in.Op == opAddImm && in.Imm == 0,
			in.Op == opMulImm && in.Imm == 1,
			in.Op == opShlImm && in.Imm == 0,
			in.Op == opShrImm && in.Imm == 0:
			in = irInstr{Op: opMov, Dst: in.Dst, A: in.A}
			n := vn(in.A)
			if vnOf[in.Dst] == n {
				st.CSEHits++
				continue
			}
			define(in.Dst, n)
			out = append(out, in)
			continue
		case in.Op == opMulImm && in.Imm == 0:
			in = irInstr{Op: opConstI, Dst: in.Dst, Imm: 0}
			freshDef(in.Dst)
			constI[vnOf[in.Dst]] = 0
			out = append(out, in)
			continue
		}

		// Common sub-expression elimination.
		key := exprKey{op: in.Op, a: vn(in.A), imm: in.Imm, fimm: in.FImm}
		if in.B != noReg {
			key.bvn = vn(in.B)
		}
		if n, ok := exprVN[key]; ok {
			if h, held := holder[n]; held {
				if vnOf[in.Dst] == n {
					st.CSEHits++
					continue
				}
				k := f.kinds[in.Dst]
				out = append(out, irInstr{Op: movFor(k), Dst: in.Dst, A: h})
				define(in.Dst, n)
				st.CSEHits++
				continue
			}
		}
		n := nextVN
		nextVN++
		exprVN[key] = n
		define(in.Dst, n)
		out = append(out, in)
	}
	b.instrs = out
	return st
}

// foldInt evaluates a pure integer op over constants with the VM's
// 32-bit wrapping semantics.
func foldInt(op irOp, a, b int64) (int64, bool) {
	var r int64
	switch op {
	case opAdd:
		r = a + b
	case opSub:
		r = a - b
	case opMul:
		r = a * b
	case opAnd:
		r = a & b
	case opOr:
		r = a | b
	case opXor:
		r = a ^ b
	case opShl:
		r = a << uint(b&31)
	case opShr:
		r = a >> uint(b&31)
	default:
		return 0, false
	}
	return int64(int32(r)), true
}

type immRewrite struct {
	op       irOp
	imm      int64
	strength bool
}

// immForm returns the immediate-operand rewrite for op with constant c
// (on the right unless commuted, in which case the operation must be
// commutative). Multiplication by a power of two becomes a shift
// (strength reduction).
func immForm(op irOp, c int64, commuted bool) (immRewrite, bool) {
	switch op {
	case opAdd:
		return immRewrite{op: opAddImm, imm: c}, true
	case opSub:
		if commuted {
			return immRewrite{}, false
		}
		return immRewrite{op: opAddImm, imm: -c}, true
	case opMul:
		if c > 0 && c&(c-1) == 0 {
			return immRewrite{op: opShlImm, imm: log2(c), strength: true}, true
		}
		return immRewrite{op: opMulImm, imm: c}, true
	case opShl:
		if commuted {
			return immRewrite{}, false
		}
		return immRewrite{op: opShlImm, imm: c & 31}, true
	case opShr:
		if commuted {
			return immRewrite{}, false
		}
		return immRewrite{op: opShrImm, imm: c & 31}, true
	case opAnd:
		return immRewrite{op: opAndImm, imm: c}, true
	}
	return immRewrite{}, false
}

func log2(c int64) int64 {
	n := int64(0)
	for c > 1 {
		c >>= 1
		n++
	}
	return n
}
