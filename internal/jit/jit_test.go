package jit

import (
	"fmt"
	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// jitProgram builds a program exercising everything the JIT must
// handle: loops, recursion, arrays, floats, field access, virtual
// dispatch, and small helpers that Level3 should inline.
func jitProgram(t testing.TB) *bytecode.Program {
	t.Helper()
	B := bytecode.NewAsm

	sq := &bytecode.Method{Name: "sq", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 1}
	sumSquares := &bytecode.Method{Name: "sumSquares", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 3}
	fib := &bytecode.Method{Name: "fib", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 1}
	fill := &bytecode.Method{Name: "fill", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 3}
	dot := &bytecode.Method{Name: "dot", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TFloat, MaxLocals: 5}
	mulConst := &bytecode.Method{Name: "mulConst", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 1}
	calc := &bytecode.Class{Name: "Calc", Methods: []*bytecode.Method{sq, sumSquares, fib, fill, dot, mulConst}}

	area := &bytecode.Method{Name: "area", Ret: bytecode.TInt, MaxLocals: 1}
	shape := &bytecode.Class{Name: "Shape", Methods: []*bytecode.Method{area}}
	sqArea := &bytecode.Method{Name: "area", Ret: bytecode.TInt, MaxLocals: 1}
	square := &bytecode.Class{Name: "Square", SuperName: "Shape",
		Fields:  []bytecode.Field{{Name: "side", Type: bytecode.TInt}},
		Methods: []*bytecode.Method{sqArea}}

	// getSide is a non-overridden instance method: Level3 inlines it.
	getSide := &bytecode.Method{Name: "getSide", Ret: bytecode.TInt, MaxLocals: 1}
	square.Methods = append(square.Methods, getSide)

	useShape := &bytecode.Method{Name: "useShape", Static: true,
		Params: []bytecode.Type{bytecode.TObject("Square")}, Ret: bytecode.TInt, MaxLocals: 1}
	driver := &bytecode.Class{Name: "Driver", Methods: []*bytecode.Method{useShape}}

	p := &bytecode.Program{Classes: []*bytecode.Class{calc, shape, square, driver}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}

	sq.Code = B().
		OpA(bytecode.ILOAD, 0).
		OpA(bytecode.ILOAD, 0).
		Op(bytecode.IMUL).
		Op(bytecode.IRETURN).
		MustFinish()

	// sumSquares(n): s=0; for i=1..n: s += sq(i); return s
	sumSquares.Code = B().
		Iconst(0).
		OpA(bytecode.ISTORE, 1).
		Iconst(1).
		OpA(bytecode.ISTORE, 2).
		Label("loop").
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.ILOAD, 0).
		Branch(bytecode.IFICMPGT, "done").
		OpA(bytecode.ILOAD, 1).
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.INVOKESTATIC, int32(sq.ID)).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 1).
		OpA(bytecode.ILOAD, 2).
		Iconst(1).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 2).
		Branch(bytecode.GOTO, "loop").
		Label("done").
		OpA(bytecode.ILOAD, 1).
		Op(bytecode.IRETURN).
		MustFinish()

	fib.Code = B().
		OpA(bytecode.ILOAD, 0).
		Iconst(2).
		Branch(bytecode.IFICMPGE, "rec").
		OpA(bytecode.ILOAD, 0).
		Op(bytecode.IRETURN).
		Label("rec").
		OpA(bytecode.ILOAD, 0).
		Iconst(1).
		Op(bytecode.ISUB).
		OpA(bytecode.INVOKESTATIC, int32(fib.ID)).
		OpA(bytecode.ILOAD, 0).
		Iconst(2).
		Op(bytecode.ISUB).
		OpA(bytecode.INVOKESTATIC, int32(fib.ID)).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()

	// fill(n): a=new int[n]; for i: a[i]=i*3; return a[n-1]+a[0]
	fill.Code = B().
		OpA(bytecode.ILOAD, 0).
		OpA(bytecode.NEWARRAY, int32(bytecode.ElemInt)).
		OpA(bytecode.ASTORE, 1).
		Iconst(0).
		OpA(bytecode.ISTORE, 2).
		Label("loop").
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.ILOAD, 0).
		Branch(bytecode.IFICMPGE, "done").
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.ILOAD, 2).
		Iconst(3).
		Op(bytecode.IMUL).
		Op(bytecode.IASTORE).
		OpA(bytecode.ILOAD, 2).
		Iconst(1).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 2).
		Branch(bytecode.GOTO, "loop").
		Label("done").
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.ILOAD, 0).
		Iconst(1).
		Op(bytecode.ISUB).
		Op(bytecode.IALOAD).
		OpA(bytecode.ALOAD, 1).
		Iconst(0).
		Op(bytecode.IALOAD).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()

	// dot(n): two float arrays, s = sum a[i]*b[i]
	dot.Code = B().
		OpA(bytecode.ILOAD, 0).
		OpA(bytecode.NEWARRAY, int32(bytecode.ElemFloat)).
		OpA(bytecode.ASTORE, 1).
		OpA(bytecode.ILOAD, 0).
		OpA(bytecode.NEWARRAY, int32(bytecode.ElemFloat)).
		OpA(bytecode.ASTORE, 2).
		Fconst(0).
		OpA(bytecode.FSTORE, 3).
		Iconst(0).
		OpA(bytecode.ISTORE, 4).
		Label("init").
		OpA(bytecode.ILOAD, 4).
		OpA(bytecode.ILOAD, 0).
		Branch(bytecode.IFICMPGE, "loop0").
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.ILOAD, 4).
		OpA(bytecode.ILOAD, 4).
		Op(bytecode.I2F).
		Op(bytecode.FASTORE).
		OpA(bytecode.ALOAD, 2).
		OpA(bytecode.ILOAD, 4).
		OpA(bytecode.ILOAD, 4).
		Iconst(2).
		Op(bytecode.IMUL).
		Op(bytecode.I2F).
		Op(bytecode.FASTORE).
		OpA(bytecode.ILOAD, 4).
		Iconst(1).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 4).
		Branch(bytecode.GOTO, "init").
		Label("loop0").
		Iconst(0).
		OpA(bytecode.ISTORE, 4).
		Label("loop").
		OpA(bytecode.ILOAD, 4).
		OpA(bytecode.ILOAD, 0).
		Branch(bytecode.IFICMPGE, "done").
		OpA(bytecode.FLOAD, 3).
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.ILOAD, 4).
		Op(bytecode.FALOAD).
		OpA(bytecode.ALOAD, 2).
		OpA(bytecode.ILOAD, 4).
		Op(bytecode.FALOAD).
		Op(bytecode.FMUL).
		Op(bytecode.FADD).
		OpA(bytecode.FSTORE, 3).
		OpA(bytecode.ILOAD, 4).
		Iconst(1).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 4).
		Branch(bytecode.GOTO, "loop").
		Label("done").
		OpA(bytecode.FLOAD, 3).
		Op(bytecode.FRETURN).
		MustFinish()

	// mulConst(x) = x*8 + x*5 - strength reduction fodder.
	mulConst.Code = B().
		OpA(bytecode.ILOAD, 0).
		Iconst(8).
		Op(bytecode.IMUL).
		OpA(bytecode.ILOAD, 0).
		Iconst(5).
		Op(bytecode.IMUL).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()

	area.Code = B().Iconst(0).Op(bytecode.IRETURN).MustFinish()

	sideSlot := int32(square.FieldSlot("side").Slot)
	sqArea.Code = B().
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFI, sideSlot).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFI, sideSlot).
		Op(bytecode.IMUL).
		Op(bytecode.IRETURN).
		MustFinish()

	getSide.Code = B().
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFI, sideSlot).
		Op(bytecode.IRETURN).
		MustFinish()

	// useShape(sq): sq.area() + sq.getSide()  — area is overridden
	// somewhere (polymorphic), getSide is not (inlinable).
	useShape.Code = B().
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.INVOKEVIRTUAL, int32(sqArea.ID)).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.INVOKEVIRTUAL, int32(getSide.ID)).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()

	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	return p
}

// runMode executes Class.method with args, compiling every method at
// the given level (0 = interpret everything), and returns the result
// and the energy spent.
func runMode(t testing.TB, p *bytecode.Program, class, method string, level Level, args []vm.Slot) (vm.Slot, energy.Joules) {
	t.Helper()
	v := vm.New(p, energy.MicroSPARCIIep())
	if level != 0 {
		bodies := map[*bytecode.Method]*isa.Code{}
		for _, m := range p.Methods {
			if len(m.Code) == 0 {
				continue
			}
			code, _, err := Compile(p, m, level)
			if err != nil {
				t.Fatalf("compile %s at %v: %v", m.QName(), level, err)
			}
			bodies[m] = v.InstallCode(code)
		}
		v.Dispatch = vm.DispatchFunc(func(m *bytecode.Method) *isa.Code { return bodies[m] })
	}
	res, err := v.InvokeByName(class, method, args)
	if err != nil {
		t.Fatalf("%s.%s at level %v: %v", class, method, level, err)
	}
	return res, v.Acct.Total()
}

func TestNativeMatchesInterpreter(t *testing.T) {
	p := jitProgram(t)
	cases := []struct {
		class, method string
		args          []vm.Slot
	}{
		{"Calc", "sq", []vm.Slot{vm.IntSlot(-7)}},
		{"Calc", "sumSquares", []vm.Slot{vm.IntSlot(30)}},
		{"Calc", "fib", []vm.Slot{vm.IntSlot(12)}},
		{"Calc", "fill", []vm.Slot{vm.IntSlot(17)}},
		{"Calc", "mulConst", []vm.Slot{vm.IntSlot(123)}},
		{"Calc", "dot", []vm.Slot{vm.IntSlot(25)}},
	}
	for _, c := range cases {
		want, _ := runMode(t, p, c.class, c.method, 0, c.args)
		for _, lv := range []Level{Level1, Level2, Level3} {
			got, _ := runMode(t, p, c.class, c.method, lv, c.args)
			if got != want {
				t.Errorf("%s.%s at %v = %+v, want %+v", c.class, c.method, lv, got, want)
			}
		}
	}
}

func TestVirtualDispatchCompiled(t *testing.T) {
	p := jitProgram(t)
	for _, lv := range []Level{0, Level1, Level2, Level3} {
		v := vm.New(p, energy.MicroSPARCIIep())
		if lv != 0 {
			bodies := map[*bytecode.Method]*isa.Code{}
			for _, m := range p.Methods {
				code, _, err := Compile(p, m, lv)
				if err != nil {
					t.Fatal(err)
				}
				bodies[m] = v.InstallCode(code)
			}
			v.Dispatch = vm.DispatchFunc(func(m *bytecode.Method) *isa.Code { return bodies[m] })
		}
		sqc := p.Class("Square")
		h, _ := v.Heap.NewObject(int32(sqc.ID))
		if err := v.Heap.SetFieldI(h, sqc.FieldSlot("side").Slot, 9); err != nil {
			t.Fatal(err)
		}
		res, err := v.InvokeByName("Driver", "useShape", []vm.Slot{vm.RefSlot(h)})
		if err != nil {
			t.Fatalf("level %v: %v", lv, err)
		}
		if res.I != 90 { // 81 + 9
			t.Errorf("level %v: useShape = %d, want 90", lv, res.I)
		}
	}
}

func TestInlinedNullReceiverStillFaults(t *testing.T) {
	p := jitProgram(t)
	v := vm.New(p, energy.MicroSPARCIIep())
	m := p.FindMethod("Driver", "useShape")
	code, st, err := Compile(p, m, Level3)
	if err != nil {
		t.Fatal(err)
	}
	if st.InlinedCalls == 0 {
		t.Fatal("expected getSide to be inlined")
	}
	v.InstallCode(code)
	v.Dispatch = vm.DispatchFunc(func(mm *bytecode.Method) *isa.Code {
		if mm == m {
			return code
		}
		return nil
	})
	if _, err := v.Invoke(m, []vm.Slot{vm.RefSlot(0)}); err == nil {
		t.Error("null receiver through inlined call must fault")
	}
}

func TestInterpreterCostlierThanCompiled(t *testing.T) {
	p := jitProgram(t)
	args := []vm.Slot{vm.IntSlot(200)}
	_, eI := runMode(t, p, "Calc", "sumSquares", 0, args)
	_, eL1 := runMode(t, p, "Calc", "sumSquares", Level1, args)
	_, eL2 := runMode(t, p, "Calc", "sumSquares", Level2, args)
	if eI <= eL1 {
		t.Errorf("interpreter (%v) should cost more than L1 native (%v)", eI, eL1)
	}
	if eL2 > eL1 {
		t.Errorf("L2 execution (%v) should not cost more than L1 (%v)", eL2, eL1)
	}
	if eI < 4*eL1 {
		t.Errorf("interpretation should be several times costlier: I=%v L1=%v", eI, eL1)
	}
}

func TestL2OptimizationsFire(t *testing.T) {
	p := jitProgram(t)
	m := p.FindMethod("Calc", "mulConst")
	_, st1, err := Compile(p, m, Level1)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := Compile(p, m, Level2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Opt.Strength == 0 {
		t.Error("x*8 should be strength-reduced to a shift")
	}
	if st2.Opt.ImmFormed == 0 {
		t.Error("constant multiplies should use immediate forms")
	}
	if st2.NativeInstrs >= st1.NativeInstrs {
		t.Errorf("L2 (%d instrs) should be smaller than L1 (%d)", st2.NativeInstrs, st1.NativeInstrs)
	}

	loopy := p.FindMethod("Calc", "fill")
	_, stl, err := Compile(p, loopy, Level2)
	if err != nil {
		t.Fatal(err)
	}
	if stl.Opt.DeadRemoved == 0 {
		t.Error("DCE should remove dead stack moves")
	}
	if stl.Loops == 0 {
		t.Error("fill has a loop")
	}
}

func TestL3InlinesAndWorkGrows(t *testing.T) {
	p := jitProgram(t)
	m := p.FindMethod("Calc", "sumSquares")
	_, st2, err := Compile(p, m, Level2)
	if err != nil {
		t.Fatal(err)
	}
	_, st3, err := Compile(p, m, Level3)
	if err != nil {
		t.Fatal(err)
	}
	if st3.InlinedCalls == 0 {
		t.Error("sq should be inlined into sumSquares at L3")
	}
	if st3.WorkUnits() <= st2.WorkUnits() {
		t.Error("L3 compilation should cost more work than L2")
	}
	if st2.WorkUnits() <= mustStats(t, p, m, Level1).WorkUnits() {
		t.Error("L2 compilation should cost more work than L1")
	}

	// Inlining eliminates the call from the hot loop: execution gets
	// cheaper even though compilation got costlier.
	args := []vm.Slot{vm.IntSlot(300)}
	_, e2 := runMode(t, p, "Calc", "sumSquares", Level2, args)
	_, e3 := runMode(t, p, "Calc", "sumSquares", Level3, args)
	if e3 >= e2 {
		t.Errorf("L3 execution (%v) should beat L2 (%v) on call-heavy loop", e3, e2)
	}
}

func mustStats(t *testing.T, p *bytecode.Program, m *bytecode.Method, lv Level) *Stats {
	t.Helper()
	_, st, err := Compile(p, m, lv)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPotentialMethodNotInlined(t *testing.T) {
	p := jitProgram(t)
	sq := p.FindMethod("Calc", "sq")
	sq.Potential = true
	defer func() { sq.Potential = false }()
	m := p.FindMethod("Calc", "sumSquares")
	_, st, err := Compile(p, m, Level3)
	if err != nil {
		t.Fatal(err)
	}
	if st.InlinedCalls != 0 {
		t.Error("potential methods must not be inlined (offload hook would be bypassed)")
	}
}

func TestCompileChargesAccount(t *testing.T) {
	p := jitProgram(t)
	m := p.FindMethod("Calc", "fill")
	_, st, err := Compile(p, m, Level2)
	if err != nil {
		t.Fatal(err)
	}
	acct := energy.NewAccount(energy.MicroSPARCIIep())
	st.Charge(acct)
	if acct.Total() <= 0 {
		t.Error("compilation charged nothing")
	}
	if acct.Component(energy.CompCompile) <= 0 {
		t.Error("compile component not mirrored")
	}
	if got, want := st.Energy(energy.MicroSPARCIIep()), acct.Total(); got != want {
		t.Errorf("Energy() = %v, Charge total = %v", got, want)
	}
	load := CompilerLoadEnergy(energy.MicroSPARCIIep())
	if load <= acct.Total() {
		t.Error("compiler load should dominate one small method compile")
	}
}

func TestCompileErrors(t *testing.T) {
	p := jitProgram(t)
	m := p.FindMethod("Calc", "sq")
	if _, _, err := Compile(p, m, Level(9)); err == nil {
		t.Error("bad level should error")
	}
	empty := &bytecode.Method{Name: "empty", Static: true, Ret: bytecode.TVoid}
	if _, _, err := Compile(p, empty, Level1); err == nil {
		t.Error("empty body should error")
	}
}

// Property test: random straight-line integer stack programs compute
// the same value interpreted and compiled at every level.
func TestRandomProgramsEquivalence(t *testing.T) {
	r := rng.New(20030422)
	for trial := 0; trial < 120; trial++ {
		m := &bytecode.Method{Name: fmt.Sprintf("r%d", trial), Static: true,
			Params: []bytecode.Type{bytecode.TInt, bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 4}
		cls := &bytecode.Class{Name: "R", Methods: []*bytecode.Method{m}}
		p := &bytecode.Program{Classes: []*bytecode.Class{cls}}
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		m.Code = randomIntProgram(r)
		if err := p.Verify(); err != nil {
			t.Fatalf("trial %d: generated program failed verification: %v\n%s",
				trial, err, bytecode.Disassemble(m))
		}
		args := []vm.Slot{vm.IntSlot(r.Int31() % 1000), vm.IntSlot(r.Int31()%1000 - 500)}
		want, _ := runMode(t, p, "R", m.Name, 0, args)
		for _, lv := range []Level{Level1, Level2, Level3} {
			got, _ := runMode(t, p, "R", m.Name, lv, args)
			if got != want {
				t.Fatalf("trial %d level %v: got %d want %d\n%s",
					trial, lv, got.I, want.I, bytecode.Disassemble(m))
			}
		}
	}
}

// randomIntProgram emits a random verified straight-line int program
// over two int params and two scratch locals.
func randomIntProgram(r *rng.RNG) []bytecode.Insn {
	a := bytecode.NewAsm()
	depth := 0
	// Seed the stack.
	a.OpA(bytecode.ILOAD, int32(r.Intn(2)))
	depth++
	n := 5 + r.Intn(30)
	for i := 0; i < n; i++ {
		switch {
		case depth >= 2 && r.Intn(3) == 0:
			ops := []bytecode.Opcode{bytecode.IADD, bytecode.ISUB, bytecode.IMUL,
				bytecode.IAND, bytecode.IOR, bytecode.IXOR, bytecode.ISHL, bytecode.ISHR}
			a.Op(ops[r.Intn(len(ops))])
			depth--
		case depth >= 1 && r.Intn(5) == 0:
			a.Op(bytecode.INEG)
		case depth >= 1 && r.Intn(6) == 0:
			local := int32(2 + r.Intn(2))
			a.OpA(bytecode.ISTORE, local)
			depth--
			a.OpA(bytecode.ILOAD, local) // keep it defined for later loads
			depth++
		case depth >= 1 && r.Intn(7) == 0:
			a.Op(bytecode.DUP)
			depth++
		default:
			switch r.Intn(3) {
			case 0:
				a.Iconst(int32(r.Intn(64) + 1)) // positive consts exercise strength reduction
			case 1:
				a.Iconst(int32(r.Intn(201) - 100))
			default:
				a.OpA(bytecode.ILOAD, int32(r.Intn(2)))
			}
			depth++
		}
	}
	for depth > 1 {
		a.Op(bytecode.IADD)
		depth--
	}
	a.Op(bytecode.IRETURN)
	return a.MustFinish()
}
