package jit

import (
	"sync"

	"greenvm/internal/bytecode"
	"greenvm/internal/isa"
)

// Compilation is deterministic: the same (method, level) pair always
// yields the same native body and the same Stats, and the energy model
// charges accounts from Stats alone. Experiments therefore recompile
// identical inputs thousands of times — every client in a fleet run,
// every scenario in a figure grid — for bit-identical results. The
// memo below caches those results process-wide.
//
// Two sharing hazards shape the design. isa.Code.Base is mutated by
// VM.InstallCode, so the cached Code is a template: each retrieval
// returns a fresh header sharing the immutable Instrs slice. Stats is
// returned by copy so a caller annotating its own Stats cannot
// corrupt the cache.

type memoKey struct {
	prog  *bytecode.Program
	m     *bytecode.Method
	level Level
}

type memoEntry struct {
	code  *isa.Code // template; Base never assigned
	stats Stats
	err   error
}

var (
	memoMu sync.RWMutex
	memo   = map[memoKey]*memoEntry{}
)

// CompileCached is Compile behind a process-wide (method, level) memo.
// Results are observably identical to Compile: the returned Code is a
// fresh header (Base unset) over the shared instruction slice, and the
// returned Stats is a private copy. Errors are cached too — a method
// that fails to compile fails identically on retry. Safe for
// concurrent use.
func CompileCached(prog *bytecode.Program, m *bytecode.Method, level Level) (*isa.Code, *Stats, error) {
	key := memoKey{prog: prog, m: m, level: level}
	memoMu.RLock()
	e := memo[key]
	memoMu.RUnlock()
	if e == nil {
		code, stats, err := Compile(prog, m, level)
		e = &memoEntry{code: code, err: err}
		if stats != nil {
			e.stats = *stats
		}
		memoMu.Lock()
		// Keep the first entry on a race; results are identical anyway.
		if prev := memo[key]; prev != nil {
			e = prev
		} else {
			memo[key] = e
		}
		memoMu.Unlock()
	}
	if e.err != nil {
		return nil, nil, e.err
	}
	code := *e.code
	stats := e.stats
	return &code, &stats, nil
}

// MemoSize reports the number of cached (method, level) entries.
func MemoSize() int {
	memoMu.RLock()
	defer memoMu.RUnlock()
	return len(memo)
}
