package jit

import (
	"fmt"
	"sort"

	"greenvm/internal/bytecode"
	"greenvm/internal/isa"
)

// Inlining limits for Level3.
const (
	inlineMaxBytecodes = 64
	inlineMaxDepth     = 3
)

// builder translates bytecode to IR. Operand-stack slots are homed to
// fixed virtual registers per (depth, kind), locals to one vreg each;
// pushes and pops become register moves that Level2's copy propagation
// and dead-code elimination clean up.
type builder struct {
	f           *fn
	level       Level
	inlineStack []*bytecode.Method
}

// buildFn translates method m (and, at Level3, its inlinable callees)
// into an IR function.
func buildFn(prog *bytecode.Program, m *bytecode.Method, level Level) (*fn, error) {
	f := &fn{prog: prog, method: m, trapNull: -1}
	bd := &builder{f: f, level: level}

	// Argument vregs, in ABI order.
	args := make([]vreg, 0, m.NumArgs())
	for _, k := range m.ArgKinds() {
		args = append(args, f.newVreg(k))
	}
	f.nargs = len(args)

	entry, err := bd.buildFrame(m, args, noReg, -1)
	if err != nil {
		return nil, err
	}
	if entry.id != 0 {
		// The entry must be block 0 for codegen; swap ids.
		f.blocks[0], f.blocks[entry.id] = f.blocks[entry.id], f.blocks[0]
		oldID := entry.id
		f.blocks[0].id = 0
		f.blocks[oldID].id = oldID
		remapBlockRefs(f, map[int]int{0: oldID, oldID: 0})
	}
	f.computeCFGEdges()
	return f, nil
}

// remapBlockRefs rewrites jump targets after block renumbering.
func remapBlockRefs(f *fn, remap map[int]int) {
	for _, b := range f.blocks {
		for i := range b.instrs {
			in := &b.instrs[i]
			switch in.Op {
			case opJmp:
				if n, ok := remap[int(in.Aux)]; ok {
					in.Aux = int32(n)
				}
			case opBr:
				if n, ok := remap[int(in.Aux)]; ok {
					in.Aux = int32(n)
				}
				if n, ok := remap[int(in.Aux2)]; ok {
					in.Aux2 = int32(n)
				}
			}
		}
	}
}

// frame is per-(possibly inlined)-method translation state.
type frame struct {
	m        *bytecode.Method
	maps     [][]bytecode.Kind
	localV   map[int32]vreg
	stackV   map[int64]vreg // key: depth<<2 | kind
	blockAt  map[int]*block
	retV     vreg // inlined: receives the return value
	retBlock int  // inlined: continuation block id; -1 for top level
}

func (fr *frame) homeKey(depth int, k bytecode.Kind) int64 {
	return int64(depth)<<2 | int64(k)
}

// buildFrame translates one method body into blocks of f. args are the
// vregs holding the arguments (shared with the caller when inlining).
// retBlock < 0 marks the top-level frame, whose returns emit opRet.
func (bd *builder) buildFrame(m *bytecode.Method, args []vreg, retV vreg, retBlock int) (*block, error) {
	f := bd.f
	maps, reachable, err := stackMaps(f.prog, m)
	if err != nil {
		return nil, err
	}
	fr := &frame{
		m:        m,
		maps:     maps,
		localV:   make(map[int32]vreg),
		stackV:   make(map[int64]vreg),
		blockAt:  make(map[int]*block),
		retV:     retV,
		retBlock: retBlock,
	}
	for i, a := range args {
		fr.localV[int32(i)] = a
	}

	// Identify leaders.
	leaders := map[int]bool{0: true}
	for pc, in := range m.Code {
		if in.Op.IsBranch() {
			leaders[int(in.A)] = true
			leaders[pc+1] = true
		}
		switch in.Op {
		case bytecode.RETURN, bytecode.IRETURN, bytecode.FRETURN, bytecode.ARETURN:
			leaders[pc+1] = true
		}
	}
	// Allocate blocks in source order so compilation is deterministic
	// (block ids determine code layout and hence cache behaviour).
	leaderPCs := make([]int, 0, len(leaders))
	for pc := range leaders {
		if pc < len(m.Code) {
			leaderPCs = append(leaderPCs, pc)
		}
	}
	sort.Ints(leaderPCs)
	for _, pc := range leaderPCs {
		fr.blockAt[pc] = f.newBlock()
	}

	home := func(depth int, k bytecode.Kind) vreg {
		key := fr.homeKey(depth, k)
		if v, ok := fr.stackV[key]; ok {
			return v
		}
		v := f.newVreg(k)
		fr.stackV[key] = v
		return v
	}
	local := func(idx int32, k bytecode.Kind) vreg {
		if v, ok := fr.localV[idx]; ok {
			return v
		}
		v := f.newVreg(k)
		fr.localV[idx] = v
		return v
	}

	cur := fr.blockAt[0]
	emit := func(in irInstr) { cur.instrs = append(cur.instrs, in) }
	terminated := false

	movOp := func(k bytecode.Kind) irOp {
		if k == bytecode.KFloat {
			return opMovF
		}
		return opMov
	}

	for pc := 0; pc < len(m.Code); pc++ {
		if b, isLeader := fr.blockAt[pc]; isLeader && b != cur {
			if !terminated {
				emit(irInstr{Op: opJmp, Aux: int32(b.id)})
			}
			cur = b
			terminated = false
		}
		if !reachable[pc] {
			// Unreachable instruction; skip.
			terminated = true
			continue
		}
		if terminated {
			// Reachable code in a block we already terminated cannot
			// happen for verified code (every leader restarts a block).
			return nil, fmt.Errorf("%w: %s: reachable code at %d after terminator", ErrCompile, m.QName(), pc)
		}

		in := m.Code[pc]
		st := maps[pc]
		d := len(st) // stack depth before this instruction

		kindAt := func(fromTop int) bytecode.Kind { return st[d-1-fromTop] }

		switch in.Op {
		case bytecode.NOP:

		case bytecode.ACONSTNULL:
			emit(irInstr{Op: opConstI, Dst: home(d, bytecode.KRef), Imm: 0})
		case bytecode.ICONST:
			emit(irInstr{Op: opConstI, Dst: home(d, bytecode.KInt), Imm: int64(in.A)})
		case bytecode.FCONST:
			emit(irInstr{Op: opConstF, Dst: home(d, bytecode.KFloat), FImm: in.F})

		case bytecode.ILOAD:
			emit(irInstr{Op: opMov, Dst: home(d, bytecode.KInt), A: local(in.A, bytecode.KInt)})
		case bytecode.FLOAD:
			emit(irInstr{Op: opMovF, Dst: home(d, bytecode.KFloat), A: local(in.A, bytecode.KFloat)})
		case bytecode.ALOAD:
			emit(irInstr{Op: opMov, Dst: home(d, bytecode.KRef), A: local(in.A, bytecode.KRef)})
		case bytecode.ISTORE:
			emit(irInstr{Op: opMov, Dst: local(in.A, bytecode.KInt), A: home(d-1, bytecode.KInt)})
		case bytecode.FSTORE:
			emit(irInstr{Op: opMovF, Dst: local(in.A, bytecode.KFloat), A: home(d-1, bytecode.KFloat)})
		case bytecode.ASTORE:
			emit(irInstr{Op: opMov, Dst: local(in.A, bytecode.KRef), A: home(d-1, bytecode.KRef)})

		case bytecode.DUP:
			k := kindAt(0)
			emit(irInstr{Op: movOp(k), Dst: home(d, k), A: home(d-1, k)})
		case bytecode.POP:
			// Value simply dies.
		case bytecode.SWAP:
			k1, k0 := kindAt(1), kindAt(0) // k1 below k0
			a, b := home(d-2, k1), home(d-1, k0)
			if k1 == k0 {
				t := f.newVreg(k0)
				emit(irInstr{Op: movOp(k0), Dst: t, A: a})
				emit(irInstr{Op: movOp(k0), Dst: a, A: b})
				emit(irInstr{Op: movOp(k0), Dst: b, A: t})
			} else {
				// Different kinds live in different home vregs; move
				// each into its new depth's home directly.
				emit(irInstr{Op: movOp(k0), Dst: home(d-2, k0), A: b})
				emit(irInstr{Op: movOp(k1), Dst: home(d-1, k1), A: a})
			}

		case bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IDIV, bytecode.IREM,
			bytecode.ISHL, bytecode.ISHR, bytecode.IAND, bytecode.IOR, bytecode.IXOR:
			op := map[bytecode.Opcode]irOp{
				bytecode.IADD: opAdd, bytecode.ISUB: opSub, bytecode.IMUL: opMul,
				bytecode.IDIV: opDiv, bytecode.IREM: opRem, bytecode.ISHL: opShl,
				bytecode.ISHR: opShr, bytecode.IAND: opAnd, bytecode.IOR: opOr,
				bytecode.IXOR: opXor,
			}[in.Op]
			a, b := home(d-2, bytecode.KInt), home(d-1, bytecode.KInt)
			emit(irInstr{Op: op, Dst: home(d-2, bytecode.KInt), A: a, B: b})
		case bytecode.INEG:
			emit(irInstr{Op: opNeg, Dst: home(d-1, bytecode.KInt), A: home(d-1, bytecode.KInt)})

		case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV:
			op := map[bytecode.Opcode]irOp{
				bytecode.FADD: opFAdd, bytecode.FSUB: opFSub,
				bytecode.FMUL: opFMul, bytecode.FDIV: opFDiv,
			}[in.Op]
			a, b := home(d-2, bytecode.KFloat), home(d-1, bytecode.KFloat)
			emit(irInstr{Op: op, Dst: home(d-2, bytecode.KFloat), A: a, B: b})
		case bytecode.FNEG:
			emit(irInstr{Op: opFNeg, Dst: home(d-1, bytecode.KFloat), A: home(d-1, bytecode.KFloat)})

		case bytecode.I2F:
			emit(irInstr{Op: opCvtIF, Dst: home(d-1, bytecode.KFloat), A: home(d-1, bytecode.KInt)})
		case bytecode.F2I:
			emit(irInstr{Op: opCvtFI, Dst: home(d-1, bytecode.KInt), A: home(d-1, bytecode.KFloat)})

		case bytecode.GOTO:
			emit(irInstr{Op: opJmp, Aux: int32(fr.blockAt[int(in.A)].id)})
			terminated = true

		case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFGE, bytecode.IFGT, bytecode.IFLE:
			cc := map[bytecode.Opcode]cond{
				bytecode.IFEQ: ceq, bytecode.IFNE: cne, bytecode.IFLT: clt,
				bytecode.IFGE: cge, bytecode.IFGT: cgt, bytecode.IFLE: cle,
			}[in.Op]
			z := f.newVreg(bytecode.KInt)
			emit(irInstr{Op: opConstI, Dst: z, Imm: 0})
			emit(irInstr{Op: opBr, Cond: cc, A: home(d-1, bytecode.KInt), B: z,
				Aux: int32(fr.blockAt[int(in.A)].id), Aux2: int32(fr.blockAt[pc+1].id)})
			terminated = true

		case bytecode.IFICMPEQ, bytecode.IFICMPNE, bytecode.IFICMPLT,
			bytecode.IFICMPGE, bytecode.IFICMPGT, bytecode.IFICMPLE:
			cc := map[bytecode.Opcode]cond{
				bytecode.IFICMPEQ: ceq, bytecode.IFICMPNE: cne, bytecode.IFICMPLT: clt,
				bytecode.IFICMPGE: cge, bytecode.IFICMPGT: cgt, bytecode.IFICMPLE: cle,
			}[in.Op]
			emit(irInstr{Op: opBr, Cond: cc,
				A: home(d-2, bytecode.KInt), B: home(d-1, bytecode.KInt),
				Aux: int32(fr.blockAt[int(in.A)].id), Aux2: int32(fr.blockAt[pc+1].id)})
			terminated = true

		case bytecode.IFFCMPEQ, bytecode.IFFCMPNE, bytecode.IFFCMPLT, bytecode.IFFCMPGE:
			cc := map[bytecode.Opcode]cond{
				bytecode.IFFCMPEQ: feq, bytecode.IFFCMPNE: fne,
				bytecode.IFFCMPLT: flt, bytecode.IFFCMPGE: fge,
			}[in.Op]
			emit(irInstr{Op: opBr, Cond: cc,
				A: home(d-2, bytecode.KFloat), B: home(d-1, bytecode.KFloat),
				Aux: int32(fr.blockAt[int(in.A)].id), Aux2: int32(fr.blockAt[pc+1].id)})
			terminated = true

		case bytecode.IFACMPEQ, bytecode.IFACMPNE:
			cc := ceq
			if in.Op == bytecode.IFACMPNE {
				cc = cne
			}
			emit(irInstr{Op: opBr, Cond: cc,
				A: home(d-2, bytecode.KRef), B: home(d-1, bytecode.KRef),
				Aux: int32(fr.blockAt[int(in.A)].id), Aux2: int32(fr.blockAt[pc+1].id)})
			terminated = true

		case bytecode.IFNULL, bytecode.IFNONNULL:
			cc := ceq
			if in.Op == bytecode.IFNONNULL {
				cc = cne
			}
			z := f.newVreg(bytecode.KRef)
			emit(irInstr{Op: opConstI, Dst: z, Imm: 0})
			emit(irInstr{Op: opBr, Cond: cc, A: home(d-1, bytecode.KRef), B: z,
				Aux: int32(fr.blockAt[int(in.A)].id), Aux2: int32(fr.blockAt[pc+1].id)})
			terminated = true

		case bytecode.NEWARRAY:
			emit(irInstr{Op: opNewArr, Dst: home(d-1, bytecode.KRef),
				A: home(d-1, bytecode.KInt), Aux: in.A})
		case bytecode.IALOAD, bytecode.AALOAD:
			k := bytecode.KInt
			if in.Op == bytecode.AALOAD {
				k = bytecode.KRef
			}
			emit(irInstr{Op: opLoadEI, Dst: home(d-2, k),
				A: home(d-2, bytecode.KRef), B: home(d-1, bytecode.KInt)})
		case bytecode.FALOAD:
			emit(irInstr{Op: opLoadEF, Dst: home(d-2, bytecode.KFloat),
				A: home(d-2, bytecode.KRef), B: home(d-1, bytecode.KInt)})
		case bytecode.IASTORE, bytecode.AASTORE:
			k := bytecode.KInt
			if in.Op == bytecode.AASTORE {
				k = bytecode.KRef
			}
			emit(irInstr{Op: opStoreEI,
				A: home(d-3, bytecode.KRef), B: home(d-2, bytecode.KInt),
				Args: []vreg{home(d-1, k)}})
		case bytecode.FASTORE:
			emit(irInstr{Op: opStoreEF,
				A: home(d-3, bytecode.KRef), B: home(d-2, bytecode.KInt),
				Args: []vreg{home(d-1, bytecode.KFloat)}})
		case bytecode.ARRAYLENGTH:
			emit(irInstr{Op: opArrLen, Dst: home(d-1, bytecode.KInt), A: home(d-1, bytecode.KRef)})

		case bytecode.NEW:
			emit(irInstr{Op: opNewObj, Dst: home(d, bytecode.KRef), Aux: in.A})
		case bytecode.GETFI:
			emit(irInstr{Op: opLoadFI, Dst: home(d-1, bytecode.KInt), A: home(d-1, bytecode.KRef), Aux: in.A})
		case bytecode.GETFA:
			emit(irInstr{Op: opLoadFI, Dst: home(d-1, bytecode.KRef), A: home(d-1, bytecode.KRef), Aux: in.A})
		case bytecode.GETFF:
			emit(irInstr{Op: opLoadFF, Dst: home(d-1, bytecode.KFloat), A: home(d-1, bytecode.KRef), Aux: in.A})
		case bytecode.PUTFI, bytecode.PUTFA:
			k := bytecode.KInt
			if in.Op == bytecode.PUTFA {
				k = bytecode.KRef
			}
			emit(irInstr{Op: opStoreFI, A: home(d-2, bytecode.KRef), B: home(d-1, k), Aux: in.A})
		case bytecode.PUTFF:
			emit(irInstr{Op: opStoreFF, A: home(d-2, bytecode.KRef), B: home(d-1, bytecode.KFloat), Aux: in.A})

		case bytecode.INVOKESTATIC, bytecode.INVOKEVIRTUAL:
			callee := f.prog.Method(int(in.A))
			if callee == nil {
				return nil, fmt.Errorf("%w: %s: bad method id %d", ErrCompile, m.QName(), in.A)
			}
			n := callee.NumArgs()
			kinds := callee.ArgKinds()
			args := make([]vreg, n)
			for i := 0; i < n; i++ {
				args[i] = home(d-n+i, kinds[i])
			}
			if bd.shouldInline(in.Op, callee) {
				// Guard: an inlined instance method must still fault on
				// a null receiver.
				if !callee.Static {
					emit(irInstr{Op: opNullCheck, A: args[0]})
				}
				var retV vreg = noReg
				if callee.Ret.Kind != bytecode.KVoid {
					retV = f.newVreg(callee.Ret.Kind)
				}
				contB := f.newBlock()
				bd.inlineStack = append(bd.inlineStack, callee)
				entry, err := bd.buildFrame(callee, args, retV, contB.id)
				bd.inlineStack = bd.inlineStack[:len(bd.inlineStack)-1]
				if err != nil {
					return nil, err
				}
				f.inlinedCalls++
				f.inlinedBytecode += len(callee.Code)
				emit(irInstr{Op: opJmp, Aux: int32(entry.id)})
				cur = contB
				emit = func(in irInstr) { cur.instrs = append(cur.instrs, in) }
				if retV != noReg {
					emit(irInstr{Op: movOp(callee.Ret.Kind), Dst: home(d-n, callee.Ret.Kind), A: retV})
				}
			} else {
				var dst vreg = noReg
				if callee.Ret.Kind != bytecode.KVoid {
					dst = home(d-n, callee.Ret.Kind)
				}
				emit(irInstr{Op: opCall, Dst: dst, Aux: in.A, Args: args})
			}

		case bytecode.RETURN:
			if fr.retBlock >= 0 {
				emit(irInstr{Op: opJmp, Aux: int32(fr.retBlock)})
			} else {
				emit(irInstr{Op: opRet, A: noReg})
			}
			terminated = true
		case bytecode.IRETURN, bytecode.FRETURN, bytecode.ARETURN:
			k := kindAt(0)
			v := home(d-1, k)
			if fr.retBlock >= 0 {
				emit(irInstr{Op: movOp(k), Dst: fr.retV, A: v})
				emit(irInstr{Op: opJmp, Aux: int32(fr.retBlock)})
			} else {
				emit(irInstr{Op: opRet, A: v})
			}
			terminated = true

		default:
			return nil, fmt.Errorf("%w: %s: unhandled opcode %s", ErrCompile, m.QName(), in.Op.Name())
		}

		// Fall-through into the next leader.
		if !terminated {
			if b, isLeader := fr.blockAt[pc+1]; isLeader {
				emit(irInstr{Op: opJmp, Aux: int32(b.id)})
				cur = b
				terminated = false
			}
		}
	}
	if !terminated {
		return nil, fmt.Errorf("%w: %s: code falls off the end", ErrCompile, m.QName())
	}
	// Give any unreachable leader blocks a terminator so later passes
	// see a well-formed CFG.
	for _, b := range fr.blockAt {
		if len(b.instrs) == 0 {
			b.instrs = append(b.instrs, irInstr{Op: opTrap, Aux: isa.TrapUnreachable})
		}
	}
	return fr.blockAt[0], nil
}

// shouldInline decides whether a call site is inlined at Level3.
func (bd *builder) shouldInline(op bytecode.Opcode, callee *bytecode.Method) bool {
	if bd.level < Level3 {
		return false
	}
	if callee.Potential {
		// Potential methods must stay out-of-line so the offloading
		// hook can intercept them.
		return false
	}
	if len(callee.Code) == 0 || len(callee.Code) > inlineMaxBytecodes {
		return false
	}
	if op == bytecode.INVOKEVIRTUAL && callee.Overridden {
		// Polymorphic site: leave the dynamic dispatch in place.
		return false
	}
	if len(bd.inlineStack) >= inlineMaxDepth {
		return false
	}
	if callee == bd.f.method {
		return false
	}
	for _, m := range bd.inlineStack {
		if m == callee {
			return false
		}
	}
	return true
}
