// Package jit is the MJVM just-in-time compiler. It translates stack
// bytecode into a three-address intermediate representation over
// virtual registers, optionally optimizes it, allocates physical
// registers by linear scan, and emits native isa code.
//
// Three optimization levels mirror the paper (§3, Fig 5):
//
//	Level1 — direct translation, no optimization.
//	Level2 — local value numbering (common sub-expression elimination,
//	         constant folding, copy propagation), loop-invariant code
//	         motion, strength reduction, and dead-code elimination
//	         ("redundancy elimination").
//	Level3 — Level2 plus method inlining, including virtual method
//	         inlining of calls whose statically resolved target is
//	         never overridden (closed-world devirtualization).
//
// Compilation itself has an energy cost; see cost.go.
package jit

import (
	"errors"
	"fmt"

	"greenvm/internal/bytecode"
)

// Level selects the optimization level.
type Level int

// Optimization levels. The zero value is invalid so that forgetting to
// choose a level is caught early.
const (
	Level1 Level = 1 + iota
	Level2
	Level3

	// NumLevels counts the optimization levels; arrays indexed by
	// Level-1 (per-level bodies, compile costs) are sized with it.
	NumLevels = int(Level3)
)

// String returns the paper's name for the level.
func (l Level) String() string {
	switch l {
	case Level1:
		return "L1"
	case Level2:
		return "L2"
	case Level3:
		return "L3"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ErrCompile reports a method the JIT cannot compile.
var ErrCompile = errors.New("jit: compile error")

// vreg is a virtual register index into fn.kinds.
type vreg int32

const noReg vreg = -1

// irOp is an IR operation.
type irOp uint8

const (
	opNop irOp = iota
	opConstI
	opConstF
	opMov  // int/ref move
	opMovF // float move

	opAdd
	opSub
	opMul
	opDiv
	opRem
	opAnd
	opOr
	opXor
	opShl
	opShr
	opNeg

	opFAdd
	opFSub
	opFMul
	opFDiv
	opFNeg

	opCvtIF
	opCvtFI

	opLoadFI  // dst = a.field[aux]   (int/ref)
	opLoadFF  // float field
	opStoreFI // a.field[aux] = b
	opStoreFF
	opLoadEI // dst = a[b] (int/ref array)
	opLoadEF
	opStoreEI // a[b] = c (c in args[0])
	opStoreEF
	opArrLen
	opNewArr // dst = new [a]; aux = elem kind
	opNewObj // dst = new class aux

	opNullCheck // trap if a == null (guard for inlined instance methods)

	opCall // dst = call method aux(args...)
	opRet  // return a (or void when a == noReg)

	opJmp  // unconditional to block aux
	opBr   // conditional: cond(a, b) -> block aux, else fall to block aux2
	opTrap // runtime error aux (isa trap code)
)

// cond codes for opBr.
type cond uint8

const (
	ceq cond = iota
	cne
	clt
	cge
	cgt
	cle
	feq
	fne
	flt
	fge
)

// negate returns the condition testing the opposite outcome.
func (c cond) negate() cond {
	switch c {
	case ceq:
		return cne
	case cne:
		return ceq
	case clt:
		return cge
	case cge:
		return clt
	case cgt:
		return cle
	case cle:
		return cgt
	case feq:
		return fne
	case fne:
		return feq
	case flt:
		return fge
	default: // fge
		return flt
	}
}

// irInstr is one IR instruction.
type irInstr struct {
	Op   irOp
	Dst  vreg
	A, B vreg
	Imm  int64
	FImm float64
	Aux  int32  // field slot / class id / method id / elem kind / block id / trap code
	Aux2 int32  // fall-through block for opBr
	Cond cond   // for opBr
	Args []vreg // for opCall and opStoreE*
}

// pure reports whether the instruction has no side effects and its
// result depends only on its operands — eligible for CSE, LICM, DCE.
func (in *irInstr) pure() bool {
	switch in.Op {
	case opConstI, opConstF, opMov, opMovF,
		opAdd, opSub, opMul, opAnd, opOr, opXor, opShl, opShr, opNeg,
		opFAdd, opFSub, opFMul, opFDiv, opFNeg, opCvtIF, opCvtFI,
		opAddImm, opMulImm, opShlImm, opShrImm, opAndImm:
		return true
	// opDiv/opRem can fault (divide by zero); loads can fault and
	// observe stores; calls and stores have effects.
	default:
		return false
	}
}

// block is a basic block.
type block struct {
	id     int
	instrs []irInstr
	succs  []int
	preds  []int
}

// fn is a function under compilation.
type fn struct {
	prog   *bytecode.Program
	method *bytecode.Method
	blocks []*block
	// kinds records the value kind of every vreg.
	kinds []bytecode.Kind
	// nargs vregs 0..nargs-1 are the arguments in order.
	nargs int
	// trapNull is the block id of the shared null-trap block, or -1.
	trapNull int

	// stats accumulated during construction.
	inlinedCalls    int
	inlinedBytecode int
}

func (f *fn) newVreg(k bytecode.Kind) vreg {
	f.kinds = append(f.kinds, k)
	return vreg(len(f.kinds) - 1)
}

func (f *fn) newBlock() *block {
	b := &block{id: len(f.blocks)}
	f.blocks = append(f.blocks, b)
	return b
}

func (f *fn) numIR() int {
	n := 0
	for _, b := range f.blocks {
		n += len(b.instrs)
	}
	return n
}

// computeCFGEdges fills succs/preds from terminators.
func (f *fn) computeCFGEdges() {
	for _, b := range f.blocks {
		b.succs = b.succs[:0]
		b.preds = b.preds[:0]
	}
	for _, b := range f.blocks {
		if len(b.instrs) == 0 {
			continue
		}
		last := &b.instrs[len(b.instrs)-1]
		switch last.Op {
		case opJmp:
			b.succs = append(b.succs, int(last.Aux))
		case opBr:
			b.succs = append(b.succs, int(last.Aux), int(last.Aux2))
		case opRet, opTrap:
		}
	}
	for _, b := range f.blocks {
		for _, s := range b.succs {
			f.blocks[s].preds = append(f.blocks[s].preds, b.id)
		}
	}
}

// stackMaps computes the operand-stack kinds before every bytecode, by
// the same abstract interpretation the verifier performs, plus a
// reachability mask (an empty stack is a valid state, so the map slice
// alone cannot encode reachability). The method must already have
// passed verification.
func stackMaps(p *bytecode.Program, m *bytecode.Method) ([][]bytecode.Kind, []bool, error) {
	maps := make([][]bytecode.Kind, len(m.Code))
	seen := make([]bool, len(m.Code))
	type item struct {
		pc int
		st []bytecode.Kind
	}
	work := []item{{0, nil}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, st := it.pc, it.st
		for {
			if pc < 0 || pc >= len(m.Code) {
				return nil, nil, fmt.Errorf("%w: %s: pc %d out of range", ErrCompile, m.QName(), pc)
			}
			if seen[pc] {
				break
			}
			seen[pc] = true
			maps[pc] = append([]bytecode.Kind(nil), st...)
			in := m.Code[pc]
			var ok bool
			st, ok = applyStackEffect(p, in, st)
			if !ok {
				return nil, nil, fmt.Errorf("%w: %s: stack underflow at %d (unverified code?)", ErrCompile, m.QName(), pc)
			}
			switch in.Op {
			case bytecode.GOTO:
				pc = int(in.A)
				continue
			case bytecode.RETURN, bytecode.IRETURN, bytecode.FRETURN, bytecode.ARETURN:
			default:
				if in.Op.IsBranch() {
					work = append(work, item{int(in.A), append([]bytecode.Kind(nil), st...)})
				}
				pc++
				continue
			}
			break
		}
	}
	return maps, seen, nil
}

// applyStackEffect returns the stack after executing in; ok is false
// on underflow (an empty result stack is valid, so nil cannot signal
// failure).
func applyStackEffect(p *bytecode.Program, in bytecode.Insn, st []bytecode.Kind) (out []bytecode.Kind, ok bool) {
	pop := func(n int) bool {
		if len(st) < n {
			return false
		}
		st = st[:len(st)-n]
		return true
	}
	push := func(k bytecode.Kind) { st = append(st, k) }

	switch in.Op {
	case bytecode.NOP:
	case bytecode.ACONSTNULL:
		push(bytecode.KRef)
	case bytecode.ICONST:
		push(bytecode.KInt)
	case bytecode.FCONST:
		push(bytecode.KFloat)
	case bytecode.ILOAD:
		push(bytecode.KInt)
	case bytecode.FLOAD:
		push(bytecode.KFloat)
	case bytecode.ALOAD:
		push(bytecode.KRef)
	case bytecode.ISTORE, bytecode.FSTORE, bytecode.ASTORE, bytecode.POP:
		if !pop(1) {
			return nil, false
		}
	case bytecode.DUP:
		if len(st) == 0 {
			return nil, false
		}
		push(st[len(st)-1])
	case bytecode.SWAP:
		if len(st) < 2 {
			return nil, false
		}
		st[len(st)-1], st[len(st)-2] = st[len(st)-2], st[len(st)-1]
	case bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IDIV, bytecode.IREM,
		bytecode.ISHL, bytecode.ISHR, bytecode.IAND, bytecode.IOR, bytecode.IXOR:
		if !pop(2) {
			return nil, false
		}
		push(bytecode.KInt)
	case bytecode.INEG:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KInt)
	case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV:
		if !pop(2) {
			return nil, false
		}
		push(bytecode.KFloat)
	case bytecode.FNEG:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KFloat)
	case bytecode.I2F:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KFloat)
	case bytecode.F2I:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KInt)
	case bytecode.GOTO:
	case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFGE, bytecode.IFGT, bytecode.IFLE,
		bytecode.IFNULL, bytecode.IFNONNULL:
		if !pop(1) {
			return nil, false
		}
	case bytecode.IFICMPEQ, bytecode.IFICMPNE, bytecode.IFICMPLT, bytecode.IFICMPGE,
		bytecode.IFICMPGT, bytecode.IFICMPLE,
		bytecode.IFFCMPEQ, bytecode.IFFCMPNE, bytecode.IFFCMPLT, bytecode.IFFCMPGE,
		bytecode.IFACMPEQ, bytecode.IFACMPNE:
		if !pop(2) {
			return nil, false
		}
	case bytecode.NEWARRAY:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KRef)
	case bytecode.IALOAD:
		if !pop(2) {
			return nil, false
		}
		push(bytecode.KInt)
	case bytecode.FALOAD:
		if !pop(2) {
			return nil, false
		}
		push(bytecode.KFloat)
	case bytecode.AALOAD:
		if !pop(2) {
			return nil, false
		}
		push(bytecode.KRef)
	case bytecode.IASTORE, bytecode.FASTORE, bytecode.AASTORE:
		if !pop(3) {
			return nil, false
		}
	case bytecode.ARRAYLENGTH:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KInt)
	case bytecode.NEW:
		push(bytecode.KRef)
	case bytecode.GETFI:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KInt)
	case bytecode.GETFF:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KFloat)
	case bytecode.GETFA:
		if !pop(1) {
			return nil, false
		}
		push(bytecode.KRef)
	case bytecode.PUTFI, bytecode.PUTFF, bytecode.PUTFA:
		if !pop(2) {
			return nil, false
		}
	case bytecode.INVOKESTATIC, bytecode.INVOKEVIRTUAL:
		callee := p.Method(int(in.A))
		if callee == nil || !pop(callee.NumArgs()) {
			return nil, false
		}
		if callee.Ret.Kind != bytecode.KVoid {
			push(callee.Ret.Kind)
		}
	case bytecode.RETURN:
	case bytecode.IRETURN, bytecode.FRETURN, bytecode.ARETURN:
		if !pop(1) {
			return nil, false
		}
	}
	return st, true
}
