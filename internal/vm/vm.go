package vm

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/mem"
)

// Dispatcher decides, at each invocation, which body of a method to
// run: nil means interpret the bytecode; otherwise the returned native
// body is executed. The offloading framework installs adaptive
// dispatchers; the default interprets everything.
type Dispatcher interface {
	Choose(m *bytecode.Method) *isa.Code
}

// DispatchFunc adapts a function to the Dispatcher interface.
type DispatchFunc func(m *bytecode.Method) *isa.Code

// Choose implements Dispatcher.
func (f DispatchFunc) Choose(m *bytecode.Method) *isa.Code { return f(m) }

// InvokeHook intercepts invocations of potential methods (the paper's
// implicit helper-method mechanism). If it fully handles the call —
// e.g. by executing it remotely — it returns handled=true and the
// result. Otherwise execution proceeds locally and the hook may have
// arranged compilation/dispatch state as a side effect.
type InvokeHook func(m *bytecode.Method, args []Slot) (Slot, bool, error)

// VM is one MJVM instance (a mobile client or a server). It owns a
// heap, an energy account, a memory hierarchy and a native machine,
// and executes methods in mixed interpreted/native mode.
type VM struct {
	Prog  *bytecode.Program
	Model *energy.CPUModel
	Acct  *energy.Account
	Hier  *mem.Hierarchy
	Heap  *Heap
	Mach  *isa.Machine

	// Hook intercepts potential-method invocations; may be nil.
	Hook InvokeHook
	// Dispatch picks the body for each local execution; nil interprets.
	Dispatch Dispatcher
	// MaxSteps bounds interpreted bytecodes + native instructions; 0
	// means unbounded.
	MaxSteps uint64

	steps     uint64
	sp        uint64
	bcAlloc   *mem.Allocator
	codeAlloc *mem.Allocator
	bcInfo    map[*bytecode.Method]*bcLayout
	depth     int

	// slotArena backs interpreter frames (locals + operand stack).
	// Frames are carved off at slotTop with stack discipline, so one
	// growable buffer serves the whole call tree without per-invocation
	// allocation. Slots hold no pointers, so retaining the arena
	// between runs keeps nothing alive. argArena does the same for
	// call-argument vectors, and the reg pools back the bounded
	// register saves native calls perform.
	slotArena []Slot
	slotTop   int
	argArena  []Slot
	argTop    int
	regIPool  []int64
	regFPool  []float64
	regITop   int
	regFTop   int
}

// argSlots carves an n-slot argument vector off the arena. The caller
// releases it by restoring argTop after the invocation returns.
func (v *VM) argSlots(n int) []Slot {
	if top := v.argTop + n; top > len(v.argArena) {
		v.argArena = append(v.argArena, make([]Slot, top-len(v.argArena))...)
	}
	s := v.argArena[v.argTop : v.argTop+n : v.argTop+n]
	v.argTop += n
	return s
}

// bcLayout caches the simulated placement of a method's bytecode
// stream for interpreter fetch addressing.
type bcLayout struct {
	base    uint64
	offsets []uint32
}

// New returns a VM for the linked, verified program on the given CPU
// model.
func New(prog *bytecode.Program, model *energy.CPUModel) *VM {
	acct := energy.NewAccount(model)
	hier := mem.DefaultClientHierarchy(model, acct)
	v := &VM{
		Prog:      prog,
		Model:     model,
		Acct:      acct,
		Hier:      hier,
		Heap:      NewHeap(prog, hier),
		sp:        mem.StackBase,
		bcAlloc:   mem.NewAllocator(mem.BytecodeBase, mem.HeapBase-mem.BytecodeBase),
		codeAlloc: mem.NewAllocator(mem.CodeBase, mem.BytecodeBase-mem.CodeBase),
		bcInfo:    make(map[*bytecode.Method]*bcLayout),
	}
	v.Mach = isa.NewMachine(&bridge{vm: v}, hier, acct)
	return v
}

// Steps returns the executed bytecode + native instruction count.
func (v *VM) Steps() uint64 { return v.steps + v.Mach.Steps }

// ResetRun clears per-run state (heap, step counters, frame stack) but
// keeps caches warm or cold according to flushCaches. Accounts are the
// caller's to reset.
func (v *VM) ResetRun(flushCaches bool) {
	v.Heap.Reset()
	v.steps = 0
	v.Mach.Steps = 0
	v.sp = mem.StackBase
	v.Mach.SP = mem.StackBase
	v.depth = 0
	v.slotTop = 0
	v.argTop = 0
	v.regITop, v.regFTop = 0, 0
	if flushCaches {
		v.Hier.Flush()
	}
}

// InstallCode assigns a code address to a compiled body so that its
// instruction fetches are modelled, and returns it.
func (v *VM) InstallCode(c *isa.Code) *isa.Code {
	c.Base = v.codeAlloc.Alloc(uint64(c.SizeBytes()), uint64(isa.BytesPerInstr))
	return c
}

func (v *VM) layoutOf(m *bytecode.Method) *bcLayout {
	if l, ok := v.bcInfo[m]; ok {
		return l
	}
	offs := make([]uint32, len(m.Code))
	off := uint32(0)
	for i, in := range m.Code {
		offs[i] = off
		off += uint32(in.Op.EncodedBytes())
	}
	l := &bcLayout{base: v.bcAlloc.Alloc(uint64(off), 4), offsets: offs}
	v.bcInfo[m] = l
	return l
}

// Invoke runs the method with the given arguments (receiver first for
// instance methods) and returns its result slot.
func (v *VM) Invoke(m *bytecode.Method, args []Slot) (Slot, error) {
	return v.invoke(m, args)
}

// InvokeByName reflectively resolves Class.method and invokes it; this
// is the server-side entry point for offloaded execution.
func (v *VM) InvokeByName(class, method string, args []Slot) (Slot, error) {
	m := v.Prog.FindMethod(class, method)
	if m == nil {
		return Slot{}, fmt.Errorf("vm: no such method %s.%s", class, method)
	}
	return v.invoke(m, args)
}

const maxDepth = 512

func (v *VM) invoke(m *bytecode.Method, args []Slot) (Slot, error) {
	if len(args) != m.NumArgs() {
		return Slot{}, fmt.Errorf("vm: %s called with %d args, want %d", m.QName(), len(args), m.NumArgs())
	}
	if v.depth >= maxDepth {
		return Slot{}, fmt.Errorf("vm: call depth limit in %s", m.QName())
	}
	if m.Potential && v.Hook != nil {
		// Hooks may retain the argument vector (e.g. marshalling it for
		// remote execution), and args may live in a pooled arena — hand
		// the hook a private copy.
		hargs := append([]Slot(nil), args...)
		res, handled, err := v.Hook(m, hargs)
		if handled || err != nil {
			return res, err
		}
	}
	var body *isa.Code
	if v.Dispatch != nil {
		body = v.Dispatch.Choose(m)
	}
	v.depth++
	defer func() { v.depth-- }()
	if body != nil {
		return v.runNative(m, body, args)
	}
	return v.interpret(m, args)
}

// runNative executes a compiled body on the machine, marshalling
// arguments into the ABI registers.
//
// Only the registers the call can disturb are saved and restored: the
// body's recorded register bound, the ABI argument registers
// marshalled below, and the R1/F1 result registers any nested call
// writes. Registers beyond that bound are untouched by construction.
func (v *VM) runNative(m *bytecode.Method, body *isa.Code, args []Slot) (Slot, error) {
	mach := v.Mach
	nInt, nFlt := isa.NumIntRegs, isa.NumFloatRegs
	if body.UsedRegs != 0 {
		bound := int(body.UsedRegs)
		if na := isa.ABIArgBase + len(args); na > bound {
			bound = na
		}
		if bound <= isa.ABIArgBase {
			bound = isa.ABIArgBase + 1
		}
		if bound < nInt {
			nInt = bound
		}
		if bound < nFlt {
			nFlt = bound
		}
	}
	iMark, fMark := v.regITop, v.regFTop
	if top := iMark + nInt; top > len(v.regIPool) {
		v.regIPool = append(v.regIPool, make([]int64, top-len(v.regIPool))...)
	}
	if top := fMark + nFlt; top > len(v.regFPool) {
		v.regFPool = append(v.regFPool, make([]float64, top-len(v.regFPool))...)
	}
	savedR := v.regIPool[iMark : iMark+nInt : iMark+nInt]
	savedF := v.regFPool[fMark : fMark+nFlt : fMark+nFlt]
	copy(savedR, mach.R[:nInt])
	copy(savedF, mach.F[:nFlt])
	v.regITop, v.regFTop = iMark+nInt, fMark+nFlt

	ir, fr := isa.ABIArgBase, isa.ABIArgBase
	for i, k := range m.ArgKinds() {
		if k == bytecode.KFloat {
			mach.F[fr] = args[i].F
			fr++
		} else {
			mach.R[ir] = args[i].I
			ir++
		}
	}
	mach.MaxSteps = 0
	if v.MaxSteps != 0 {
		mach.MaxSteps = v.MaxSteps
	}
	err := mach.Run(body)
	var ret Slot
	if err == nil {
		if m.Ret.Kind == bytecode.KFloat {
			ret = Slot{F: mach.F[isa.ABIArgBase]}
		} else {
			ret = Slot{I: mach.R[isa.ABIArgBase]}
		}
	}
	// Restore, preserving the ABI result registers as RestoreRegs does.
	r1, f1 := mach.R[1], mach.F[1]
	copy(mach.R[:nInt], savedR)
	copy(mach.F[:nFlt], savedF)
	mach.R[1], mach.F[1] = r1, f1
	v.regITop, v.regFTop = iMark, fMark
	if err != nil {
		return Slot{}, fmt.Errorf("%s (native L%d): %w", m.QName(), body.OptLevel, err)
	}
	return ret, nil
}

// bridge implements isa.Bridge on top of the VM heap and dispatcher.
type bridge struct {
	vm *VM
}

func (b *bridge) FieldI(h int64, idx int) (int64, error)      { return b.vm.Heap.FieldI(h, idx) }
func (b *bridge) SetFieldI(h int64, idx int, x int64) error   { return b.vm.Heap.SetFieldI(h, idx, x) }
func (b *bridge) FieldF(h int64, idx int) (float64, error)    { return b.vm.Heap.FieldF(h, idx) }
func (b *bridge) SetFieldF(h int64, idx int, x float64) error { return b.vm.Heap.SetFieldF(h, idx, x) }
func (b *bridge) ElemI(h, i int64) (int64, error)             { return b.vm.Heap.ElemI(h, i) }
func (b *bridge) SetElemI(h, i, x int64) error                { return b.vm.Heap.SetElemI(h, i, x) }
func (b *bridge) ElemF(h, i int64) (float64, error)           { return b.vm.Heap.ElemF(h, i) }
func (b *bridge) SetElemF(h, i int64, x float64) error        { return b.vm.Heap.SetElemF(h, i, x) }
func (b *bridge) ArrayLen(h int64) (int64, error)             { return b.vm.Heap.ArrayLen(h) }

func (b *bridge) NewArray(kind, n int64) (int64, error) {
	return b.vm.Heap.NewArray(bytecode.ElemKind(kind), n)
}

func (b *bridge) NewObject(classIdx int64) (int64, error) {
	return b.vm.Heap.NewObject(int32(classIdx))
}

// Call handles CALLVM: it resolves the callee (virtual dispatch when
// the statically named target is an instance method), unmarshals the
// ABI registers into argument slots, and re-enters the VM, which may
// interpret or run native code.
func (b *bridge) Call(idx int64, mach *isa.Machine) error {
	v := b.vm
	target := v.Prog.Method(int(idx))
	if target == nil {
		return fmt.Errorf("vm: CALLVM to bad method id %d", idx)
	}
	kinds := target.ArgKinds()
	argMark := v.argTop
	args := v.argSlots(len(kinds))
	ir, fr := isa.ABIArgBase, isa.ABIArgBase
	for i, k := range kinds {
		if k == bytecode.KFloat {
			args[i] = Slot{F: mach.F[fr]}
			fr++
		} else {
			args[i] = Slot{I: mach.R[ir]}
			ir++
		}
	}
	m := target
	if !target.Static {
		// Virtual dispatch on the receiver's runtime class.
		recv, err := v.Heap.Get(args[0].I)
		if err != nil {
			return err
		}
		if c := recv.Class(v.Prog); c != nil {
			if actual := c.Resolve(target.Name); actual != nil {
				m = actual
			}
		}
		v.Acct.AddInstr(energy.Load, 2) // vtable lookup
	}
	res, err := v.invoke(m, args)
	v.argTop = argMark
	if err != nil {
		return err
	}
	if m.Ret.Kind == bytecode.KFloat {
		mach.F[isa.ABIArgBase] = res.F
	} else {
		mach.R[isa.ABIArgBase] = res.I
	}
	return nil
}
