package vm

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/mem"
)

// Dispatcher decides, at each invocation, which body of a method to
// run: nil means interpret the bytecode; otherwise the returned native
// body is executed. The offloading framework installs adaptive
// dispatchers; the default interprets everything.
type Dispatcher interface {
	Choose(m *bytecode.Method) *isa.Code
}

// DispatchFunc adapts a function to the Dispatcher interface.
type DispatchFunc func(m *bytecode.Method) *isa.Code

// Choose implements Dispatcher.
func (f DispatchFunc) Choose(m *bytecode.Method) *isa.Code { return f(m) }

// InvokeHook intercepts invocations of potential methods (the paper's
// implicit helper-method mechanism). If it fully handles the call —
// e.g. by executing it remotely — it returns handled=true and the
// result. Otherwise execution proceeds locally and the hook may have
// arranged compilation/dispatch state as a side effect.
type InvokeHook func(m *bytecode.Method, args []Slot) (Slot, bool, error)

// VM is one MJVM instance (a mobile client or a server). It owns a
// heap, an energy account, a memory hierarchy and a native machine,
// and executes methods in mixed interpreted/native mode.
type VM struct {
	Prog  *bytecode.Program
	Model *energy.CPUModel
	Acct  *energy.Account
	Hier  *mem.Hierarchy
	Heap  *Heap
	Mach  *isa.Machine

	// Hook intercepts potential-method invocations; may be nil.
	Hook InvokeHook
	// Dispatch picks the body for each local execution; nil interprets.
	Dispatch Dispatcher
	// MaxSteps bounds interpreted bytecodes + native instructions; 0
	// means unbounded.
	MaxSteps uint64

	steps     uint64
	sp        uint64
	bcAlloc   *mem.Allocator
	codeAlloc *mem.Allocator
	bcInfo    map[*bytecode.Method]*bcLayout
	depth     int
}

// bcLayout caches the simulated placement of a method's bytecode
// stream for interpreter fetch addressing.
type bcLayout struct {
	base    uint64
	offsets []uint32
}

// New returns a VM for the linked, verified program on the given CPU
// model.
func New(prog *bytecode.Program, model *energy.CPUModel) *VM {
	acct := energy.NewAccount(model)
	hier := mem.DefaultClientHierarchy(model, acct)
	v := &VM{
		Prog:      prog,
		Model:     model,
		Acct:      acct,
		Hier:      hier,
		Heap:      NewHeap(prog, hier),
		sp:        mem.StackBase,
		bcAlloc:   mem.NewAllocator(mem.BytecodeBase, mem.HeapBase-mem.BytecodeBase),
		codeAlloc: mem.NewAllocator(mem.CodeBase, mem.BytecodeBase-mem.CodeBase),
		bcInfo:    make(map[*bytecode.Method]*bcLayout),
	}
	v.Mach = isa.NewMachine(&bridge{vm: v}, hier, acct)
	return v
}

// Steps returns the executed bytecode + native instruction count.
func (v *VM) Steps() uint64 { return v.steps + v.Mach.Steps }

// ResetRun clears per-run state (heap, step counters, frame stack) but
// keeps caches warm or cold according to flushCaches. Accounts are the
// caller's to reset.
func (v *VM) ResetRun(flushCaches bool) {
	v.Heap.Reset()
	v.steps = 0
	v.Mach.Steps = 0
	v.sp = mem.StackBase
	v.Mach.SP = mem.StackBase
	v.depth = 0
	if flushCaches {
		v.Hier.Flush()
	}
}

// InstallCode assigns a code address to a compiled body so that its
// instruction fetches are modelled, and returns it.
func (v *VM) InstallCode(c *isa.Code) *isa.Code {
	c.Base = v.codeAlloc.Alloc(uint64(c.SizeBytes()), uint64(isa.BytesPerInstr))
	return c
}

func (v *VM) layoutOf(m *bytecode.Method) *bcLayout {
	if l, ok := v.bcInfo[m]; ok {
		return l
	}
	offs := make([]uint32, len(m.Code))
	off := uint32(0)
	for i, in := range m.Code {
		offs[i] = off
		off += uint32(in.Op.EncodedBytes())
	}
	l := &bcLayout{base: v.bcAlloc.Alloc(uint64(off), 4), offsets: offs}
	v.bcInfo[m] = l
	return l
}

// Invoke runs the method with the given arguments (receiver first for
// instance methods) and returns its result slot.
func (v *VM) Invoke(m *bytecode.Method, args []Slot) (Slot, error) {
	return v.invoke(m, args)
}

// InvokeByName reflectively resolves Class.method and invokes it; this
// is the server-side entry point for offloaded execution.
func (v *VM) InvokeByName(class, method string, args []Slot) (Slot, error) {
	m := v.Prog.FindMethod(class, method)
	if m == nil {
		return Slot{}, fmt.Errorf("vm: no such method %s.%s", class, method)
	}
	return v.invoke(m, args)
}

const maxDepth = 512

func (v *VM) invoke(m *bytecode.Method, args []Slot) (Slot, error) {
	if len(args) != m.NumArgs() {
		return Slot{}, fmt.Errorf("vm: %s called with %d args, want %d", m.QName(), len(args), m.NumArgs())
	}
	if v.depth >= maxDepth {
		return Slot{}, fmt.Errorf("vm: call depth limit in %s", m.QName())
	}
	if m.Potential && v.Hook != nil {
		res, handled, err := v.Hook(m, args)
		if handled || err != nil {
			return res, err
		}
	}
	var body *isa.Code
	if v.Dispatch != nil {
		body = v.Dispatch.Choose(m)
	}
	v.depth++
	defer func() { v.depth-- }()
	if body != nil {
		return v.runNative(m, body, args)
	}
	return v.interpret(m, args)
}

// runNative executes a compiled body on the machine, marshalling
// arguments into the ABI registers.
func (v *VM) runNative(m *bytecode.Method, body *isa.Code, args []Slot) (Slot, error) {
	mach := v.Mach
	savedR, savedF := mach.SaveRegs()
	ir, fr := isa.ABIArgBase, isa.ABIArgBase
	for i, k := range m.ArgKinds() {
		if k == bytecode.KFloat {
			mach.F[fr] = args[i].F
			fr++
		} else {
			mach.R[ir] = args[i].I
			ir++
		}
	}
	mach.MaxSteps = 0
	if v.MaxSteps != 0 {
		mach.MaxSteps = v.MaxSteps
	}
	err := mach.Run(body)
	var ret Slot
	if err == nil {
		if m.Ret.Kind == bytecode.KFloat {
			ret = Slot{F: mach.F[isa.ABIArgBase]}
		} else {
			ret = Slot{I: mach.R[isa.ABIArgBase]}
		}
	}
	mach.RestoreRegs(savedR, savedF)
	if err != nil {
		return Slot{}, fmt.Errorf("%s (native L%d): %w", m.QName(), body.OptLevel, err)
	}
	return ret, nil
}

// bridge implements isa.Bridge on top of the VM heap and dispatcher.
type bridge struct {
	vm *VM
}

func (b *bridge) FieldI(h int64, idx int) (int64, error)      { return b.vm.Heap.FieldI(h, idx) }
func (b *bridge) SetFieldI(h int64, idx int, x int64) error   { return b.vm.Heap.SetFieldI(h, idx, x) }
func (b *bridge) FieldF(h int64, idx int) (float64, error)    { return b.vm.Heap.FieldF(h, idx) }
func (b *bridge) SetFieldF(h int64, idx int, x float64) error { return b.vm.Heap.SetFieldF(h, idx, x) }
func (b *bridge) ElemI(h, i int64) (int64, error)             { return b.vm.Heap.ElemI(h, i) }
func (b *bridge) SetElemI(h, i, x int64) error                { return b.vm.Heap.SetElemI(h, i, x) }
func (b *bridge) ElemF(h, i int64) (float64, error)           { return b.vm.Heap.ElemF(h, i) }
func (b *bridge) SetElemF(h, i int64, x float64) error        { return b.vm.Heap.SetElemF(h, i, x) }
func (b *bridge) ArrayLen(h int64) (int64, error)             { return b.vm.Heap.ArrayLen(h) }

func (b *bridge) NewArray(kind, n int64) (int64, error) {
	return b.vm.Heap.NewArray(bytecode.ElemKind(kind), n)
}

func (b *bridge) NewObject(classIdx int64) (int64, error) {
	return b.vm.Heap.NewObject(int32(classIdx))
}

// Call handles CALLVM: it resolves the callee (virtual dispatch when
// the statically named target is an instance method), unmarshals the
// ABI registers into argument slots, and re-enters the VM, which may
// interpret or run native code.
func (b *bridge) Call(idx int64, mach *isa.Machine) error {
	v := b.vm
	target := v.Prog.Method(int(idx))
	if target == nil {
		return fmt.Errorf("vm: CALLVM to bad method id %d", idx)
	}
	kinds := target.ArgKinds()
	args := make([]Slot, len(kinds))
	ir, fr := isa.ABIArgBase, isa.ABIArgBase
	for i, k := range kinds {
		if k == bytecode.KFloat {
			args[i] = Slot{F: mach.F[fr]}
			fr++
		} else {
			args[i] = Slot{I: mach.R[ir]}
			ir++
		}
	}
	m := target
	if !target.Static {
		// Virtual dispatch on the receiver's runtime class.
		recv, err := v.Heap.Get(args[0].I)
		if err != nil {
			return err
		}
		if c := recv.Class(v.Prog); c != nil {
			if actual := c.Resolve(target.Name); actual != nil {
				m = actual
			}
		}
		v.Acct.AddInstr(energy.Load, 2) // vtable lookup
	}
	res, err := v.invoke(m, args)
	if err != nil {
		return err
	}
	if m.Ret.Kind == bytecode.KFloat {
		mach.F[isa.ABIArgBase] = res.F
	} else {
		mach.R[isa.ABIArgBase] = res.I
	}
	return nil
}
