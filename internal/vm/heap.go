// Package vm implements the MJVM virtual machine: heap and object
// model, a bytecode interpreter with a per-bytecode energy expansion
// model, the bridge that lets JIT-compiled native code reach the heap,
// object-graph serialization (the transport for offloaded method
// arguments and results), and reflective method invocation.
package vm

import (
	"errors"
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/mem"
)

// Runtime errors shared by the interpreter and native execution.
var (
	ErrNullRef      = isa.ErrNullRef
	ErrBounds       = isa.ErrBounds
	ErrDivideByZero = isa.ErrDivideByZero
	ErrBadHandle    = errors.New("vm: invalid object handle")
	ErrNotArray     = errors.New("vm: object is not an array")
	ErrNotObject    = errors.New("vm: reference is not a class instance")
	ErrStepLimit    = errors.New("vm: step limit exceeded")
)

// Slot is one stack/local/argument value: an int, a float, or an
// object handle (in I). Verified bytecode guarantees which member is
// meaningful at every use.
type Slot struct {
	I int64
	F float64
}

// IntSlot, FloatSlot and RefSlot build argument values.
func IntSlot(v int32) Slot     { return Slot{I: int64(v)} }
func FloatSlot(v float64) Slot { return Slot{F: v} }
func RefSlot(h int64) Slot     { return Slot{I: h} }

// Object is a heap object: a class instance (ClassID >= 0) or an
// array (ClassID < 0). Int and reference data live in I; float data in
// F. Addr is the synthetic base address used for cache modelling.
type Object struct {
	ClassID int32
	Kind    bytecode.ElemKind // element kind, arrays only
	IsArr   bool
	Len     int // array length
	I       []int64
	F       []float64
	Addr    uint64
}

// Class returns the class of an instance within prog.
func (o *Object) Class(prog *bytecode.Program) *bytecode.Class {
	if o.IsArr || o.ClassID < 0 || int(o.ClassID) >= len(prog.Classes) {
		return nil
	}
	return prog.Classes[o.ClassID]
}

const objHeaderBytes = 8

// Heap is a bump-allocated object heap. The simulated device never
// garbage-collects during the short method executions we model; Reset
// reclaims everything between runs.
type Heap struct {
	prog    *bytecode.Program
	hier    *mem.Hierarchy
	alloc   *mem.Allocator
	objects []*Object

	// dt tracks the last heap line touched, so sequential array walks
	// and repeated field accesses prove their hits cheaply.
	dt mem.LineTracker
}

// NewHeap returns an empty heap for the linked program.
func NewHeap(prog *bytecode.Program, hier *mem.Hierarchy) *Heap {
	return &Heap{
		prog:  prog,
		hier:  hier,
		alloc: mem.NewAllocator(mem.HeapBase, mem.StackBase-mem.HeapBase-1<<16),
	}
}

// Reset discards every object.
func (h *Heap) Reset() {
	h.objects = h.objects[:0]
	h.alloc.Reset()
}

// Count returns the number of live objects.
func (h *Heap) Count() int { return len(h.objects) }

// Get resolves a handle. Handle 0 is the null reference.
func (h *Heap) Get(handle int64) (*Object, error) {
	if handle == 0 {
		return nil, ErrNullRef
	}
	idx := handle - 1
	if idx < 0 || idx >= int64(len(h.objects)) {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, handle)
	}
	return h.objects[idx], nil
}

func (h *Heap) add(o *Object, bytes uint64) int64 {
	// Cache coloring: successive allocations are staggered so that
	// equal-sized arrays do not land a whole number of cache sizes
	// apart (power-of-two image rows would otherwise alias in the
	// direct-mapped data cache and make cost jump wildly at particular
	// widths). Embedded allocators color allocations for exactly this
	// reason.
	color := uint64(len(h.objects)%7) * 544
	o.Addr = h.alloc.Alloc(bytes+color, 8) + color
	h.objects = append(h.objects, o)
	// Zero-initialization traffic: the runtime writes every word of the
	// new object, exactly as a JVM must. Charged identically whether
	// allocation happens from interpreted or native code.
	words := int(bytes / 4)
	h.hier.Data(o.Addr, words)
	h.hier.Account().AddInstr(energy.Store, uint64(words))
	return int64(len(h.objects))
}

// NewObject allocates an instance of the class with the given id and
// returns its handle. Fields are zero/null.
func (h *Heap) NewObject(classID int32) (int64, error) {
	if classID < 0 || int(classID) >= len(h.prog.Classes) {
		return 0, fmt.Errorf("vm: NewObject: bad class id %d", classID)
	}
	c := h.prog.Classes[classID]
	o := &Object{
		ClassID: classID,
		I:       make([]int64, c.NumISlots()),
		F:       make([]float64, c.NumFSlots()),
	}
	bytes := uint64(objHeaderBytes + 4*c.NumISlots() + 8*c.NumFSlots())
	return h.add(o, bytes), nil
}

// NewArray allocates an array of n elements of the given kind.
func (h *Heap) NewArray(kind bytecode.ElemKind, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: negative array length %d", ErrBounds, n)
	}
	o := &Object{ClassID: -1, IsArr: true, Kind: kind, Len: int(n)}
	var bytes uint64
	if kind == bytecode.ElemFloat {
		o.F = make([]float64, n)
		bytes = uint64(objHeaderBytes) + 8*uint64(n)
	} else {
		o.I = make([]int64, n)
		bytes = uint64(objHeaderBytes) + 4*uint64(n)
	}
	return h.add(o, bytes), nil
}

// Address helpers for cache charging. Int slots are 4-byte words;
// float slots are 8-byte words placed after the int area.

func (o *Object) intSlotAddr(slot int) uint64 {
	return o.Addr + objHeaderBytes + 4*uint64(slot)
}

func (o *Object) floatSlotAddr(slot int) uint64 {
	return o.Addr + objHeaderBytes + 4*uint64(len(o.I)) + 8*uint64(slot)
}

// FieldI reads int/ref field slot of the instance behind handle,
// charging one data access.
func (h *Heap) FieldI(handle int64, slot int) (int64, error) {
	o, err := h.Get(handle)
	if err != nil {
		return 0, err
	}
	if o.IsArr || slot < 0 || slot >= len(o.I) {
		return 0, fmt.Errorf("%w: int field slot %d", ErrBounds, slot)
	}
	h.hier.Data1T(o.intSlotAddr(slot), &h.dt)
	return o.I[slot], nil
}

// SetFieldI writes int/ref field slot.
func (h *Heap) SetFieldI(handle int64, slot int, v int64) error {
	o, err := h.Get(handle)
	if err != nil {
		return err
	}
	if o.IsArr || slot < 0 || slot >= len(o.I) {
		return fmt.Errorf("%w: int field slot %d", ErrBounds, slot)
	}
	h.hier.Data1T(o.intSlotAddr(slot), &h.dt)
	o.I[slot] = v
	return nil
}

// FieldF reads float field slot.
func (h *Heap) FieldF(handle int64, slot int) (float64, error) {
	o, err := h.Get(handle)
	if err != nil {
		return 0, err
	}
	if o.IsArr || slot < 0 || slot >= len(o.F) {
		return 0, fmt.Errorf("%w: float field slot %d", ErrBounds, slot)
	}
	h.hier.Data(o.floatSlotAddr(slot), 2)
	return o.F[slot], nil
}

// SetFieldF writes float field slot.
func (h *Heap) SetFieldF(handle int64, slot int, v float64) error {
	o, err := h.Get(handle)
	if err != nil {
		return err
	}
	if o.IsArr || slot < 0 || slot >= len(o.F) {
		return fmt.Errorf("%w: float field slot %d", ErrBounds, slot)
	}
	h.hier.Data(o.floatSlotAddr(slot), 2)
	o.F[slot] = v
	return nil
}

// ElemI reads element i of an int or reference array.
func (h *Heap) ElemI(handle, i int64) (int64, error) {
	o, err := h.Get(handle)
	if err != nil {
		return 0, err
	}
	if !o.IsArr {
		return 0, ErrNotArray
	}
	if o.Kind == bytecode.ElemFloat {
		return 0, fmt.Errorf("%w: int access to float array", ErrNotArray)
	}
	if i < 0 || i >= int64(o.Len) {
		return 0, ErrBounds
	}
	h.hier.Data1T(o.intSlotAddr(int(i)), &h.dt)
	return o.I[i], nil
}

// SetElemI writes element i of an int or reference array.
func (h *Heap) SetElemI(handle, i, v int64) error {
	o, err := h.Get(handle)
	if err != nil {
		return err
	}
	if !o.IsArr {
		return ErrNotArray
	}
	if o.Kind == bytecode.ElemFloat {
		return fmt.Errorf("%w: int access to float array", ErrNotArray)
	}
	if i < 0 || i >= int64(o.Len) {
		return ErrBounds
	}
	h.hier.Data1T(o.intSlotAddr(int(i)), &h.dt)
	o.I[i] = v
	return nil
}

// ElemF reads element i of a float array.
func (h *Heap) ElemF(handle, i int64) (float64, error) {
	o, err := h.Get(handle)
	if err != nil {
		return 0, err
	}
	if !o.IsArr || o.Kind != bytecode.ElemFloat {
		return 0, fmt.Errorf("%w: float access to non-float array", ErrNotArray)
	}
	if i < 0 || i >= int64(o.Len) {
		return 0, ErrBounds
	}
	h.hier.Data(o.Addr+objHeaderBytes+8*uint64(i), 2)
	return o.F[i], nil
}

// SetElemF writes element i of a float array.
func (h *Heap) SetElemF(handle, i int64, v float64) error {
	o, err := h.Get(handle)
	if err != nil {
		return err
	}
	if !o.IsArr || o.Kind != bytecode.ElemFloat {
		return fmt.Errorf("%w: float access to non-float array", ErrNotArray)
	}
	if i < 0 || i >= int64(o.Len) {
		return ErrBounds
	}
	h.hier.Data(o.Addr+objHeaderBytes+8*uint64(i), 2)
	o.F[i] = v
	return nil
}

// ArrayLen returns the length of the array behind handle, charging one
// header access.
func (h *Heap) ArrayLen(handle int64) (int64, error) {
	o, err := h.Get(handle)
	if err != nil {
		return 0, err
	}
	if !o.IsArr {
		return 0, ErrNotArray
	}
	h.hier.Data(o.Addr, 1)
	return int64(o.Len), nil
}
