package vm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
)

// Edge coverage for the flat dispatch loop: operands at the int32
// extremes, branch targets outside the code, and opcodes the verifier
// would reject — the dispatcher must fail cleanly on all of them, not
// trust its input.

// runUnverified links a single static method and interprets it
// WITHOUT running the verifier, so tests can exercise code the
// verifier rejects. maxStack substitutes for the bound Verify would
// have computed.
func runUnverified(t *testing.T, maxLocals, maxStack int, code []bytecode.Insn, args []Slot) (Slot, error) {
	t.Helper()
	m := &bytecode.Method{Name: "f", Static: true, Ret: bytecode.TInt,
		MaxLocals: maxLocals, Code: code}
	for range args {
		m.Params = append(m.Params, bytecode.TInt)
	}
	p := &bytecode.Program{Classes: []*bytecode.Class{
		{Name: "T", Methods: []*bytecode.Method{m}},
	}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m.MaxStack = maxStack
	v := New(p, energy.MicroSPARCIIep())
	return v.Invoke(m, args)
}

func TestDispatchWideOperands(t *testing.T) {
	B := bytecode.NewAsm
	// Immediates at the int32 extremes flow through the Insn operand
	// unclipped, and 32-bit wraparound applies on the way back out.
	code := B().
		Iconst(math.MaxInt32).
		Iconst(1).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, nil, bytecode.TInt, 0, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(math.MinInt32); res.I != want {
		t.Errorf("MaxInt32+1 = %d, want %d (wrap)", res.I, want)
	}

	code = B().
		Iconst(math.MinInt32).
		Op(bytecode.INEG).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err = runAsm(t, nil, bytecode.TInt, 0, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(math.MinInt32); res.I != want {
		t.Errorf("-MinInt32 = %d, want %d (wrap)", res.I, want)
	}
}

func TestDispatchBranchTargetOutOfBounds(t *testing.T) {
	for _, target := range []int32{9999, -5} {
		code := []bytecode.Insn{
			{Op: bytecode.GOTO, A: target},
			{Op: bytecode.ICONST, A: 1},
			{Op: bytecode.IRETURN},
		}
		_, err := runUnverified(t, 0, 2, code, nil)
		if err == nil || !strings.Contains(err.Error(), "pc out of bounds") {
			t.Errorf("GOTO %d: err = %v, want pc out of bounds", target, err)
		}
	}
}

func TestDispatchConditionalBranchOutOfBounds(t *testing.T) {
	// The taken edge of a conditional lands outside the code; the
	// fall-through edge must still work.
	code := []bytecode.Insn{
		{Op: bytecode.ILOAD, A: 0},
		{Op: bytecode.IFNE, A: 1000},
		{Op: bytecode.ICONST, A: 7},
		{Op: bytecode.IRETURN},
	}
	res, err := runUnverified(t, 1, 2, code, []Slot{IntSlot(0)})
	if err != nil || res.I != 7 {
		t.Errorf("fall-through: res=%d err=%v, want 7/nil", res.I, err)
	}
	_, err = runUnverified(t, 1, 2, code, []Slot{IntSlot(1)})
	if err == nil || !strings.Contains(err.Error(), "pc out of bounds") {
		t.Errorf("taken: err = %v, want pc out of bounds", err)
	}
}

func TestDispatchFallOffEnd(t *testing.T) {
	code := []bytecode.Insn{{Op: bytecode.ICONST, A: 1}}
	_, err := runUnverified(t, 0, 2, code, nil)
	if err == nil || !strings.Contains(err.Error(), "pc out of bounds") {
		t.Errorf("err = %v, want pc out of bounds", err)
	}
}

func TestDispatchUnhandledOpcode(t *testing.T) {
	code := []bytecode.Insn{{Op: bytecode.Opcode(250)}}
	_, err := runUnverified(t, 0, 2, code, nil)
	if err == nil || !strings.Contains(err.Error(), "opcode") {
		t.Errorf("err = %v, want unhandled-opcode error", err)
	}
}

func TestDispatchDivByZeroChargesNoALU(t *testing.T) {
	// The div-by-zero trap fires before the ALUComplex charge: the
	// failing IDIV contributes only its dispatch overhead and the two
	// operand pops.
	B := bytecode.NewAsm
	code := B().
		Iconst(1).
		Iconst(0).
		Op(bytecode.IDIV).
		Op(bytecode.IRETURN).
		MustFinish()
	m := &bytecode.Method{Name: "f", Static: true, Ret: bytecode.TInt, Code: code}
	p := &bytecode.Program{Classes: []*bytecode.Class{
		{Name: "T", Methods: []*bytecode.Method{m}},
	}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	v := New(p, energy.MicroSPARCIIep())
	before := v.Acct.InstrCount(energy.ALUComplex)
	if _, err := v.Invoke(m, nil); !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("err = %v, want ErrDivideByZero", err)
	}
	if got := v.Acct.InstrCount(energy.ALUComplex); got != before {
		t.Errorf("failing IDIV charged ALUComplex: %d -> %d", before, got)
	}
}
