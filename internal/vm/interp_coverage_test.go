package vm

import (
	"errors"
	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
)

// Direct interpreter coverage of the bytecodes the MJ compiler rarely
// or never emits (DUP, SWAP, explicit null tests, ref arrays, float
// array traffic, NOP), each as a tiny hand-assembled method.

// runAsm links a single static method and interprets it.
func runAsm(t *testing.T, params []bytecode.Type, ret bytecode.Type, maxLocals int,
	code []bytecode.Insn, args []Slot) (Slot, error) {
	t.Helper()
	m := &bytecode.Method{Name: "f", Static: true, Params: params, Ret: ret,
		MaxLocals: maxLocals, Code: code}
	p := &bytecode.Program{Classes: []*bytecode.Class{
		{Name: "T", Methods: []*bytecode.Method{m}},
		{Name: "Box", Fields: []bytecode.Field{
			{Name: "x", Type: bytecode.TInt},
			{Name: "f", Type: bytecode.TFloat},
			{Name: "ref", Type: bytecode.TObject("Box")},
		}},
	}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, bytecode.Disassemble(m))
	}
	v := New(p, energy.MicroSPARCIIep())
	return v.Invoke(m, args)
}

func TestInterpDupSwapPop(t *testing.T) {
	B := bytecode.NewAsm
	// f(a) = dup/swap dance: push a, dup, push 3, swap, sub twice.
	code := B().
		OpA(bytecode.ILOAD, 0). // [a]
		Op(bytecode.DUP).       // [a a]
		Iconst(3).              // [a a 3]
		Op(bytecode.SWAP).      // [a 3 a]
		Op(bytecode.ISUB).      // [a 3-a]
		Op(bytecode.IADD).      // [a+3-a] = 3
		Iconst(99).
		Op(bytecode.POP). // discard
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, []bytecode.Type{bytecode.TInt}, bytecode.TInt, 1, code, []Slot{IntSlot(41)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 3 {
		t.Errorf("got %d, want 3", res.I)
	}
}

func TestInterpSwapMixedKinds(t *testing.T) {
	B := bytecode.NewAsm
	// Push int then float, swap, convert and combine: f2i(f) * 100 + i.
	code := B().
		OpA(bytecode.ILOAD, 0). // [i]
		OpA(bytecode.FLOAD, 1). // [i f]
		Op(bytecode.SWAP).      // [f i]
		OpA(bytecode.ISTORE, 2).
		Op(bytecode.F2I).
		Iconst(100).
		Op(bytecode.IMUL).
		OpA(bytecode.ILOAD, 2).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, []bytecode.Type{bytecode.TInt, bytecode.TFloat}, bytecode.TInt, 3,
		code, []Slot{IntSlot(7), FloatSlot(4.9)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 407 {
		t.Errorf("got %d, want 407", res.I)
	}
}

func TestInterpRefArraysAndNullTests(t *testing.T) {
	B := bytecode.NewAsm
	// Build Box[2]; a[0] = new Box{x: 5}; a[1] stays null.
	// return (a[0] != null ? a[0].x : -1) + (a[1] == null ? 100 : 0)
	code := B().
		Iconst(2).
		OpA(bytecode.NEWARRAY, int32(bytecode.ElemRef)).
		OpA(bytecode.ASTORE, 0).
		OpA(bytecode.ALOAD, 0).
		Iconst(0).
		OpA(bytecode.NEW, 1). // class Box has id 1
		Op(bytecode.AASTORE).
		OpA(bytecode.ALOAD, 0).
		Iconst(0).
		Op(bytecode.AALOAD).
		Op(bytecode.DUP).
		Iconst(5).
		OpA(bytecode.PUTFI, 0). // x slot 0
		Branch(bytecode.IFNULL, "wasnull").
		OpA(bytecode.ALOAD, 0).
		Iconst(0).
		Op(bytecode.AALOAD).
		OpA(bytecode.GETFI, 0).
		OpA(bytecode.ISTORE, 1).
		Branch(bytecode.GOTO, "second").
		Label("wasnull").
		Iconst(-1).
		OpA(bytecode.ISTORE, 1).
		Label("second").
		OpA(bytecode.ALOAD, 0).
		Iconst(1).
		Op(bytecode.AALOAD).
		Branch(bytecode.IFNONNULL, "no"). // a[1] is null: fall through
		OpA(bytecode.ILOAD, 1).
		Iconst(100).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		Label("no").
		OpA(bytecode.ILOAD, 1).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, nil, bytecode.TInt, 2, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 105 {
		t.Errorf("got %d, want 105", res.I)
	}
}

func TestInterpRefIdentity(t *testing.T) {
	B := bytecode.NewAsm
	// b1 = new Box; b2 = new Box; (b1==b1) + (b1!=b2)*10
	code := B().
		OpA(bytecode.NEW, 1).
		OpA(bytecode.ASTORE, 0).
		OpA(bytecode.NEW, 1).
		OpA(bytecode.ASTORE, 1).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.ALOAD, 0).
		Branch(bytecode.IFACMPEQ, "same").
		Iconst(0).
		OpA(bytecode.ISTORE, 2).
		Branch(bytecode.GOTO, "next").
		Label("same").
		Iconst(1).
		OpA(bytecode.ISTORE, 2).
		Label("next").
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.ALOAD, 1).
		Branch(bytecode.IFACMPNE, "diff").
		OpA(bytecode.ILOAD, 2).
		Op(bytecode.IRETURN).
		Label("diff").
		OpA(bytecode.ILOAD, 2).
		Iconst(10).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, nil, bytecode.TInt, 3, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 11 {
		t.Errorf("got %d, want 11", res.I)
	}
}

func TestInterpFloatFieldsAndArrays(t *testing.T) {
	B := bytecode.NewAsm
	// b = new Box; b.f = 2.5; fa = new float[1]; fa[0] = b.f * 2; return fa[0]
	code := B().
		OpA(bytecode.NEW, 1).
		OpA(bytecode.ASTORE, 0).
		OpA(bytecode.ALOAD, 0).
		Fconst(2.5).
		OpA(bytecode.PUTFF, 0).
		Iconst(1).
		OpA(bytecode.NEWARRAY, int32(bytecode.ElemFloat)).
		OpA(bytecode.ASTORE, 1).
		OpA(bytecode.ALOAD, 1).
		Iconst(0).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFF, 0).
		Fconst(2).
		Op(bytecode.FMUL).
		Op(bytecode.FASTORE).
		OpA(bytecode.ALOAD, 1).
		Iconst(0).
		Op(bytecode.FALOAD).
		Op(bytecode.FRETURN).
		MustFinish()
	res, err := runAsm(t, nil, bytecode.TFloat, 2, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 5.0 {
		t.Errorf("got %g, want 5", res.F)
	}
}

func TestInterpRefFields(t *testing.T) {
	B := bytecode.NewAsm
	// b1.ref = b2; b2.x = 9; return b1.ref.x (GETFA/PUTFA; slot 1 = ref)
	code := B().
		OpA(bytecode.NEW, 1).
		OpA(bytecode.ASTORE, 0).
		OpA(bytecode.NEW, 1).
		OpA(bytecode.ASTORE, 1).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.PUTFA, 1).
		OpA(bytecode.ALOAD, 1).
		Iconst(9).
		OpA(bytecode.PUTFI, 0).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFA, 1).
		OpA(bytecode.GETFI, 0).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, nil, bytecode.TInt, 2, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 9 {
		t.Errorf("got %d, want 9", res.I)
	}
}

func TestInterpNopAndFloatBranches(t *testing.T) {
	B := bytecode.NewAsm
	code := B().
		Op(bytecode.NOP).
		OpA(bytecode.FLOAD, 0).
		Fconst(1.0).
		Branch(bytecode.IFFCMPEQ, "one").
		OpA(bytecode.FLOAD, 0).
		Fconst(2.0).
		Branch(bytecode.IFFCMPNE, "nottwo").
		Iconst(2).
		Op(bytecode.IRETURN).
		Label("one").
		Iconst(1).
		Op(bytecode.IRETURN).
		Label("nottwo").
		Iconst(0).
		Op(bytecode.IRETURN).
		MustFinish()
	for _, c := range []struct {
		x    float64
		want int64
	}{{1.0, 1}, {2.0, 2}, {3.0, 0}} {
		res, err := runAsm(t, []bytecode.Type{bytecode.TFloat}, bytecode.TInt, 1,
			code, []Slot{FloatSlot(c.x)})
		if err != nil {
			t.Fatal(err)
		}
		if res.I != c.want {
			t.Errorf("f(%g) = %d, want %d", c.x, res.I, c.want)
		}
	}
}

func TestInterpShiftMaskingAndNeg(t *testing.T) {
	B := bytecode.NewAsm
	// (a << (b & 31 semantics)) + (-a >> 1) exercises ISHL/ISHR/INEG.
	code := B().
		OpA(bytecode.ILOAD, 0).
		OpA(bytecode.ILOAD, 1).
		Op(bytecode.ISHL).
		OpA(bytecode.ILOAD, 0).
		Op(bytecode.INEG).
		Iconst(1).
		Op(bytecode.ISHR).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()
	res, err := runAsm(t, []bytecode.Type{bytecode.TInt, bytecode.TInt}, bytecode.TInt, 2,
		code, []Slot{IntSlot(6), IntSlot(33)}) // shift of 33 masks to 1
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 6*2+(-6>>1) {
		t.Errorf("got %d, want %d", res.I, 6*2+(-6>>1))
	}
}

func TestHeapKindMismatchErrors(t *testing.T) {
	p := buildTestProgram(t)
	v := New(p, energy.MicroSPARCIIep())
	ih, _ := v.Heap.NewArray(bytecode.ElemInt, 3)
	fh, _ := v.Heap.NewArray(bytecode.ElemFloat, 3)
	if _, err := v.Heap.ElemF(ih, 0); !errors.Is(err, ErrNotArray) {
		t.Errorf("float read of int array: %v", err)
	}
	if _, err := v.Heap.ElemI(fh, 0); !errors.Is(err, ErrNotArray) {
		t.Errorf("int read of float array: %v", err)
	}
	if err := v.Heap.SetElemF(ih, 0, 1); !errors.Is(err, ErrNotArray) {
		t.Errorf("float write of int array: %v", err)
	}
	if err := v.Heap.SetElemI(fh, 0, 1); !errors.Is(err, ErrNotArray) {
		t.Errorf("int write of float array: %v", err)
	}
	obj, _ := v.Heap.NewObject(int32(p.Class("Node").ID))
	if _, err := v.Heap.ArrayLen(obj); !errors.Is(err, ErrNotArray) {
		t.Errorf("ArrayLen of object: %v", err)
	}
	if _, err := v.Heap.ElemI(obj, 0); !errors.Is(err, ErrNotArray) {
		t.Errorf("ElemI of object: %v", err)
	}
	if _, err := v.Heap.FieldI(ih, 0); err == nil {
		t.Error("FieldI of array should error")
	}
	if _, err := v.Heap.Get(9999); !errors.Is(err, ErrBadHandle) {
		t.Errorf("bad handle: %v", err)
	}
	if _, err := v.Heap.NewArray(bytecode.ElemInt, -1); !errors.Is(err, ErrBounds) {
		t.Errorf("negative length: %v", err)
	}
	if _, err := v.Heap.NewObject(99); err == nil {
		t.Error("bad class id should error")
	}
}

func TestCallDepthLimit(t *testing.T) {
	B := bytecode.NewAsm
	m := &bytecode.Method{Name: "f", Static: true,
		Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 1}
	p := &bytecode.Program{Classes: []*bytecode.Class{
		{Name: "T", Methods: []*bytecode.Method{m}}}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	// Unbounded self-recursion: f(n) = f(n+1).
	m.Code = B().
		OpA(bytecode.ILOAD, 0).
		Iconst(1).
		Op(bytecode.IADD).
		OpA(bytecode.INVOKESTATIC, int32(m.ID)).
		Op(bytecode.IRETURN).
		MustFinish()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	v := New(p, energy.MicroSPARCIIep())
	if _, err := v.Invoke(m, []Slot{IntSlot(0)}); err == nil {
		t.Error("unbounded recursion should hit the depth limit")
	}
}
