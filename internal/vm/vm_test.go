package vm

import (
	"errors"
	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
)

// buildTestProgram assembles a program exercising recursion, loops,
// floats, objects, arrays and virtual dispatch:
//
//	class Calc {
//	  static int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }
//	  static int sumTo(int n) { int s=0; while (n>0) { s+=n; n--; } return s; }
//	  static float scale(float x) { return x * 2.5; }
//	  static int fill(int n) { int[] a = new int[n]; ... return a[n-1]; }
//	}
//	class Node { int val; Node next; }
//	class Shape { int area() { return 0; } }
//	class Square extends Shape { int side; int area() { return side*side; } }
//	class Disp { static int callArea(Shape s) { return s.area(); } }
func buildTestProgram(t testing.TB) *bytecode.Program {
	t.Helper()

	fib := &bytecode.Method{Name: "fib", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 1}
	sumTo := &bytecode.Method{Name: "sumTo", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 2}
	scale := &bytecode.Method{Name: "scale", Static: true, Params: []bytecode.Type{bytecode.TFloat}, Ret: bytecode.TFloat, MaxLocals: 1}
	fill := &bytecode.Method{Name: "fill", Static: true, Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 3}
	calc := &bytecode.Class{Name: "Calc", Methods: []*bytecode.Method{fib, sumTo, scale, fill}}

	node := &bytecode.Class{Name: "Node", Fields: []bytecode.Field{
		{Name: "val", Type: bytecode.TInt},
		{Name: "next", Type: bytecode.TObject("Node")},
	}}

	shapeArea := &bytecode.Method{Name: "area", Ret: bytecode.TInt, MaxLocals: 1}
	shape := &bytecode.Class{Name: "Shape", Methods: []*bytecode.Method{shapeArea}}
	sqArea := &bytecode.Method{Name: "area", Ret: bytecode.TInt, MaxLocals: 1}
	square := &bytecode.Class{Name: "Square", SuperName: "Shape",
		Fields:  []bytecode.Field{{Name: "side", Type: bytecode.TInt}},
		Methods: []*bytecode.Method{sqArea}}

	callArea := &bytecode.Method{Name: "callArea", Static: true,
		Params: []bytecode.Type{bytecode.TObject("Shape")}, Ret: bytecode.TInt, MaxLocals: 1}
	disp := &bytecode.Class{Name: "Disp", Methods: []*bytecode.Method{callArea}}

	p := &bytecode.Program{Classes: []*bytecode.Class{calc, node, shape, square, disp}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}

	fib.Code = bytecode.NewAsm().
		OpA(bytecode.ILOAD, 0).
		Iconst(2).
		Branch(bytecode.IFICMPGE, "rec").
		OpA(bytecode.ILOAD, 0).
		Op(bytecode.IRETURN).
		Label("rec").
		OpA(bytecode.ILOAD, 0).
		Iconst(1).
		Op(bytecode.ISUB).
		OpA(bytecode.INVOKESTATIC, int32(fib.ID)).
		OpA(bytecode.ILOAD, 0).
		Iconst(2).
		Op(bytecode.ISUB).
		OpA(bytecode.INVOKESTATIC, int32(fib.ID)).
		Op(bytecode.IADD).
		Op(bytecode.IRETURN).
		MustFinish()

	sumTo.Code = bytecode.NewAsm().
		Iconst(0).
		OpA(bytecode.ISTORE, 1).
		Label("loop").
		OpA(bytecode.ILOAD, 0).
		Branch(bytecode.IFLE, "done").
		OpA(bytecode.ILOAD, 1).
		OpA(bytecode.ILOAD, 0).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 1).
		OpA(bytecode.ILOAD, 0).
		Iconst(1).
		Op(bytecode.ISUB).
		OpA(bytecode.ISTORE, 0).
		Branch(bytecode.GOTO, "loop").
		Label("done").
		OpA(bytecode.ILOAD, 1).
		Op(bytecode.IRETURN).
		MustFinish()

	scale.Code = bytecode.NewAsm().
		OpA(bytecode.FLOAD, 0).
		Fconst(2.5).
		Op(bytecode.FMUL).
		Op(bytecode.FRETURN).
		MustFinish()

	// fill(n): a = new int[n]; for i in 0..n: a[i] = i*i; return a[n-1]
	fill.Code = bytecode.NewAsm().
		OpA(bytecode.ILOAD, 0).
		OpA(bytecode.NEWARRAY, int32(bytecode.ElemInt)).
		OpA(bytecode.ASTORE, 1).
		Iconst(0).
		OpA(bytecode.ISTORE, 2).
		Label("loop").
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.ILOAD, 0).
		Branch(bytecode.IFICMPGE, "done").
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.ILOAD, 2).
		OpA(bytecode.ILOAD, 2).
		Op(bytecode.IMUL).
		Op(bytecode.IASTORE).
		OpA(bytecode.ILOAD, 2).
		Iconst(1).
		Op(bytecode.IADD).
		OpA(bytecode.ISTORE, 2).
		Branch(bytecode.GOTO, "loop").
		Label("done").
		OpA(bytecode.ALOAD, 1).
		OpA(bytecode.ILOAD, 0).
		Iconst(1).
		Op(bytecode.ISUB).
		Op(bytecode.IALOAD).
		Op(bytecode.IRETURN).
		MustFinish()

	shapeArea.Code = bytecode.NewAsm().
		Iconst(0).
		Op(bytecode.IRETURN).
		MustFinish()

	sideSlot := square.FieldSlot("side")
	sqArea.Code = bytecode.NewAsm().
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFI, int32(sideSlot.Slot)).
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.GETFI, int32(sideSlot.Slot)).
		Op(bytecode.IMUL).
		Op(bytecode.IRETURN).
		MustFinish()

	callArea.Code = bytecode.NewAsm().
		OpA(bytecode.ALOAD, 0).
		OpA(bytecode.INVOKEVIRTUAL, int32(shapeArea.ID)).
		Op(bytecode.IRETURN).
		MustFinish()

	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestVM(t testing.TB) *VM {
	return New(buildTestProgram(t), energy.MicroSPARCIIep())
}

func TestInterpretLoop(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "sumTo")
	res, err := v.Invoke(m, []Slot{IntSlot(100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 5050 {
		t.Errorf("sumTo(100) = %d, want 5050", res.I)
	}
	if v.Acct.Total() <= 0 {
		t.Error("no energy charged")
	}
	if v.Steps() == 0 {
		t.Error("no steps counted")
	}
}

func TestInterpretRecursion(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "fib")
	res, err := v.Invoke(m, []Slot{IntSlot(15)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 610 {
		t.Errorf("fib(15) = %d, want 610", res.I)
	}
}

func TestInterpretFloat(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "scale")
	res, err := v.Invoke(m, []Slot{FloatSlot(4.0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 10.0 {
		t.Errorf("scale(4) = %g, want 10", res.F)
	}
}

func TestInterpretArrays(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "fill")
	res, err := v.Invoke(m, []Slot{IntSlot(10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 81 {
		t.Errorf("fill(10) = %d, want 81", res.I)
	}
}

func TestVirtualDispatch(t *testing.T) {
	v := newTestVM(t)
	sq := v.Prog.Class("Square")
	h, err := v.Heap.NewObject(int32(sq.ID))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Heap.SetFieldI(h, sq.FieldSlot("side").Slot, 7); err != nil {
		t.Fatal(err)
	}
	m := v.Prog.FindMethod("Disp", "callArea")
	res, err := v.Invoke(m, []Slot{RefSlot(h)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 49 {
		t.Errorf("callArea(Square{7}) = %d, want 49 via override", res.I)
	}

	// Base-class receiver dispatches to Shape.area.
	sh, _ := v.Heap.NewObject(int32(v.Prog.Class("Shape").ID))
	res, err = v.Invoke(m, []Slot{RefSlot(sh)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 0 {
		t.Errorf("callArea(Shape) = %d, want 0", res.I)
	}
}

func TestRuntimeErrors(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Disp", "callArea")
	if _, err := v.Invoke(m, []Slot{RefSlot(0)}); !errors.Is(err, ErrNullRef) {
		t.Errorf("null receiver: %v, want ErrNullRef", err)
	}
	fill := v.Prog.FindMethod("Calc", "fill")
	if _, err := v.Invoke(fill, []Slot{IntSlot(0)}); !errors.Is(err, ErrBounds) {
		t.Errorf("fill(0) indexes a[-1]: %v, want ErrBounds", err)
	}
	if _, err := v.Invoke(fill, []Slot{IntSlot(3), IntSlot(4)}); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestStepLimit(t *testing.T) {
	v := newTestVM(t)
	v.MaxSteps = 50
	m := v.Prog.FindMethod("Calc", "sumTo")
	if _, err := v.Invoke(m, []Slot{IntSlot(1000000)}); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestInterpreterChargesBreakdown(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "sumTo")
	if _, err := v.Invoke(m, []Slot{IntSlot(50)}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []energy.InstrClass{energy.Load, energy.Store, energy.Branch, energy.ALUSimple} {
		if v.Acct.InstrCount(c) == 0 {
			t.Errorf("no %v instructions charged by interpreter", c)
		}
	}
	if v.Acct.Component(energy.CompMemory) == 0 {
		t.Error("no DRAM energy charged (cold caches should miss)")
	}
}

func TestHookInterceptsPotential(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "sumTo")
	m.Potential = true
	called := 0
	v.Hook = func(hm *bytecode.Method, args []Slot) (Slot, bool, error) {
		called++
		if hm != m {
			t.Errorf("hook got %s", hm.QName())
		}
		return Slot{I: 999}, true, nil
	}
	res, err := v.Invoke(m, []Slot{IntSlot(5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 999 || called != 1 {
		t.Errorf("hook result %d (called %d)", res.I, called)
	}

	// A hook that declines leaves execution local.
	v.Hook = func(hm *bytecode.Method, args []Slot) (Slot, bool, error) {
		return Slot{}, false, nil
	}
	res, err = v.Invoke(m, []Slot{IntSlot(5)})
	if err != nil || res.I != 15 {
		t.Errorf("declined hook: %d, %v; want 15", res.I, err)
	}
}

func TestDispatcherRunsNativeBody(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "sumTo")
	// Hand-written native body: closed form n*(n+1)/2.
	body := v.InstallCode(&isa.Code{
		Name: "sumTo#native",
		Instrs: []isa.Instr{
			{Op: isa.ADDI, Rd: 2, Ra: 1, Imm: 1},
			{Op: isa.MUL, Rd: 2, Ra: 2, Rb: 1},
			{Op: isa.LDI, Rd: 3, Imm: 2},
			{Op: isa.DIV, Rd: 1, Ra: 2, Rb: 3},
			{Op: isa.RET},
		},
		OptLevel: 1,
	})
	v.Dispatch = DispatchFunc(func(dm *bytecode.Method) *isa.Code {
		if dm == m {
			return body
		}
		return nil
	})
	res, err := v.Invoke(m, []Slot{IntSlot(100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 5050 {
		t.Errorf("native sumTo(100) = %d, want 5050", res.I)
	}
}

func TestNativeCallsBackIntoInterpreter(t *testing.T) {
	v := newTestVM(t)
	fib := v.Prog.FindMethod("Calc", "fib")
	// Native body that computes fib(n-1) + fib(n-2) by calling the VM;
	// the callee runs interpreted.
	body := v.InstallCode(&isa.Code{
		Name: "fibwrap",
		Instrs: []isa.Instr{
			{Op: isa.MOV, Rd: 9, Ra: 1},           // save n
			{Op: isa.ADDI, Rd: 1, Ra: 9, Imm: -1}, // n-1
			{Op: isa.CALLVM, Imm: int64(fib.ID)},  // fib(n-1)
			{Op: isa.MOV, Rd: 10, Ra: 1},          // save
			{Op: isa.ADDI, Rd: 1, Ra: 9, Imm: -2}, // n-2
			{Op: isa.CALLVM, Imm: int64(fib.ID)},  // fib(n-2)
			{Op: isa.ADD, Rd: 1, Ra: 10, Rb: 1},   // sum
			{Op: isa.RET},
		},
	})
	wrap := &bytecode.Method{Name: "wrap", Static: true,
		Params: []bytecode.Type{bytecode.TInt}, Ret: bytecode.TInt, MaxLocals: 1,
		Code: bytecode.NewAsm().Iconst(0).Op(bytecode.IRETURN).MustFinish()}
	// Register wrap so dispatch can find it (appended class).
	v.Prog.Classes = append(v.Prog.Classes, &bytecode.Class{Name: "W", Methods: []*bytecode.Method{wrap}})
	if err := v.Prog.Link(); err != nil {
		t.Fatal(err)
	}
	v.Dispatch = DispatchFunc(func(dm *bytecode.Method) *isa.Code {
		if dm == wrap {
			return body
		}
		return nil
	})
	res, err := v.Invoke(wrap, []Slot{IntSlot(10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 55 { // fib(9) + fib(8) = 34 + 21
		t.Errorf("mixed-mode fib(10) = %d, want 55", res.I)
	}
}

func TestResetRun(t *testing.T) {
	v := newTestVM(t)
	m := v.Prog.FindMethod("Calc", "fill")
	if _, err := v.Invoke(m, []Slot{IntSlot(8)}); err != nil {
		t.Fatal(err)
	}
	if v.Heap.Count() == 0 {
		t.Fatal("expected live objects")
	}
	v.ResetRun(true)
	if v.Heap.Count() != 0 || v.Steps() != 0 {
		t.Error("ResetRun did not clear state")
	}
	if _, err := v.Invoke(m, []Slot{IntSlot(8)}); err != nil {
		t.Fatalf("run after reset: %v", err)
	}
}

func TestInvokeByName(t *testing.T) {
	v := newTestVM(t)
	res, err := v.InvokeByName("Calc", "sumTo", []Slot{IntSlot(4)})
	if err != nil || res.I != 10 {
		t.Errorf("InvokeByName = %d, %v; want 10", res.I, err)
	}
	if _, err := v.InvokeByName("Nope", "x", nil); err == nil {
		t.Error("unknown method should error")
	}
}

func TestDeterministicEnergy(t *testing.T) {
	run := func() energy.Joules {
		v := newTestVM(t)
		m := v.Prog.FindMethod("Calc", "fill")
		if _, err := v.Invoke(m, []Slot{IntSlot(64)}); err != nil {
			t.Fatal(err)
		}
		return v.Acct.Total()
	}
	if run() != run() {
		t.Error("identical runs must charge identical energy")
	}
}
