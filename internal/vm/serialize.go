package vm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
)

// Object-graph serialization: the MJVM analogue of Java object
// serialization, which the paper uses to ship method parameters to the
// server and results back (Fig 4). The encoding is compact (varints
// for integers) because the byte count directly determines the
// communication energy of offloading.
//
// A graph is encoded as a header section (one entry per object,
// breadth-first from the root) followed by a data section in the same
// order; references are object ordinals, so cycles and sharing are
// preserved.

// ErrSerialize reports a malformed serialized graph.
var ErrSerialize = errors.New("vm: serialization error")

const (
	tagInstance = 0
	tagIntArr   = 1
	tagFloatArr = 2
	tagRefArr   = 3
)

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putFloat(buf *bytes.Buffer, v float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	buf.Write(tmp[:])
}

type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("%w: truncated", ErrSerialize)
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r)
}

func (r *byteReader) varint() (int64, error) {
	return binary.ReadVarint(r)
}

func (r *byteReader) float() (float64, error) {
	if r.pos+8 > len(r.b) {
		return 0, fmt.Errorf("%w: truncated float", ErrSerialize)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.pos:]))
	r.pos += 8
	return v, nil
}

// SerializeGraph encodes the object graph rooted at handle (0 encodes
// the null reference).
func (h *Heap) SerializeGraph(root int64) ([]byte, error) {
	var buf bytes.Buffer
	if root == 0 {
		putUvarint(&buf, 0)
		return buf.Bytes(), nil
	}
	// Breadth-first discovery; ordinal 1 is the root.
	ord := map[int64]uint64{root: 1}
	order := []int64{root}
	for i := 0; i < len(order); i++ {
		o, err := h.Get(order[i])
		if err != nil {
			return nil, err
		}
		visit := func(ref int64) {
			if ref == 0 {
				return
			}
			if _, seen := ord[ref]; !seen {
				ord[ref] = uint64(len(order) + 1)
				order = append(order, ref)
			}
		}
		if o.IsArr {
			if o.Kind == bytecode.ElemRef {
				for _, ref := range o.I {
					visit(ref)
				}
			}
		} else {
			c := o.Class(h.prog)
			if c == nil {
				return nil, fmt.Errorf("%w: object with bad class id %d", ErrSerialize, o.ClassID)
			}
			for _, slot := range c.RefSlots() {
				visit(o.I[slot])
			}
		}
	}
	// Header section.
	putUvarint(&buf, uint64(len(order)))
	for _, handle := range order {
		o, _ := h.Get(handle)
		switch {
		case !o.IsArr:
			putUvarint(&buf, tagInstance)
			putUvarint(&buf, uint64(o.ClassID))
		case o.Kind == bytecode.ElemInt:
			putUvarint(&buf, tagIntArr)
			putUvarint(&buf, uint64(o.Len))
		case o.Kind == bytecode.ElemFloat:
			putUvarint(&buf, tagFloatArr)
			putUvarint(&buf, uint64(o.Len))
		default:
			putUvarint(&buf, tagRefArr)
			putUvarint(&buf, uint64(o.Len))
		}
	}
	// Data section.
	for _, handle := range order {
		o, _ := h.Get(handle)
		if o.IsArr {
			switch o.Kind {
			case bytecode.ElemInt:
				for _, v := range o.I {
					putVarint(&buf, v)
				}
			case bytecode.ElemFloat:
				for _, v := range o.F {
					putFloat(&buf, v)
				}
			default:
				for _, ref := range o.I {
					putUvarint(&buf, ord[ref]) // 0 for null
				}
			}
			continue
		}
		c := o.Class(h.prog)
		isRef := make(map[int]bool, len(c.RefSlots()))
		for _, s := range c.RefSlots() {
			isRef[s] = true
		}
		for i, v := range o.I {
			if isRef[i] {
				putUvarint(&buf, ord[v])
			} else {
				putVarint(&buf, v)
			}
		}
		for _, v := range o.F {
			putFloat(&buf, v)
		}
	}
	return buf.Bytes(), nil
}

// DeserializeGraph decodes a graph produced by SerializeGraph into
// this heap and returns the root handle (0 for null).
func (h *Heap) DeserializeGraph(b []byte) (int64, int, error) {
	r := &byteReader{b: b}
	n, err := r.uvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
	}
	if n == 0 {
		return 0, r.pos, nil
	}
	if n > uint64(len(b)) {
		return 0, 0, fmt.Errorf("%w: absurd object count %d", ErrSerialize, n)
	}
	handles := make([]int64, n)
	// Header pass: allocate every object.
	for i := range handles {
		tag, err := r.uvarint()
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
		}
		switch tag {
		case tagInstance:
			cid, err := r.uvarint()
			if err != nil {
				return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
			}
			hd, err := h.NewObject(int32(cid))
			if err != nil {
				return 0, 0, err
			}
			handles[i] = hd
		case tagIntArr, tagFloatArr, tagRefArr:
			ln, err := r.uvarint()
			if err != nil {
				return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
			}
			kind := bytecode.ElemInt
			if tag == tagFloatArr {
				kind = bytecode.ElemFloat
			} else if tag == tagRefArr {
				kind = bytecode.ElemRef
			}
			hd, err := h.NewArray(kind, int64(ln))
			if err != nil {
				return 0, 0, err
			}
			handles[i] = hd
		default:
			return 0, 0, fmt.Errorf("%w: bad tag %d", ErrSerialize, tag)
		}
	}
	resolve := func(ordv uint64) (int64, error) {
		if ordv == 0 {
			return 0, nil
		}
		if ordv > n {
			return 0, fmt.Errorf("%w: reference %d out of range", ErrSerialize, ordv)
		}
		return handles[ordv-1], nil
	}
	// Data pass.
	for _, hd := range handles {
		o, err := h.Get(hd)
		if err != nil {
			return 0, 0, err
		}
		if o.IsArr {
			switch o.Kind {
			case bytecode.ElemInt:
				for i := range o.I {
					if o.I[i], err = r.varint(); err != nil {
						return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
					}
				}
			case bytecode.ElemFloat:
				for i := range o.F {
					if o.F[i], err = r.float(); err != nil {
						return 0, 0, err
					}
				}
			default:
				for i := range o.I {
					ov, err := r.uvarint()
					if err != nil {
						return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
					}
					if o.I[i], err = resolve(ov); err != nil {
						return 0, 0, err
					}
				}
			}
			continue
		}
		c := o.Class(h.prog)
		isRef := make(map[int]bool, len(c.RefSlots()))
		for _, s := range c.RefSlots() {
			isRef[s] = true
		}
		for i := range o.I {
			if isRef[i] {
				ov, err := r.uvarint()
				if err != nil {
					return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
				}
				if o.I[i], err = resolve(ov); err != nil {
					return 0, 0, err
				}
			} else if o.I[i], err = r.varint(); err != nil {
				return 0, 0, fmt.Errorf("%w: %v", ErrSerialize, err)
			}
		}
		for i := range o.F {
			if o.F[i], err = r.float(); err != nil {
				return 0, 0, err
			}
		}
	}
	return handles[0], r.pos, nil
}

// EncodeValue serializes one value of the given kind: the payload of a
// method result.
func (h *Heap) EncodeValue(k bytecode.Kind, s Slot) ([]byte, error) {
	var buf bytes.Buffer
	switch k {
	case bytecode.KVoid:
	case bytecode.KInt:
		putVarint(&buf, s.I)
	case bytecode.KFloat:
		putFloat(&buf, s.F)
	case bytecode.KRef:
		g, err := h.SerializeGraph(s.I)
		if err != nil {
			return nil, err
		}
		buf.Write(g)
	}
	return buf.Bytes(), nil
}

// DecodeValue is the inverse of EncodeValue.
func (h *Heap) DecodeValue(k bytecode.Kind, b []byte) (Slot, error) {
	r := &byteReader{b: b}
	switch k {
	case bytecode.KVoid:
		return Slot{}, nil
	case bytecode.KInt:
		v, err := r.varint()
		if err != nil {
			return Slot{}, fmt.Errorf("%w: %v", ErrSerialize, err)
		}
		return Slot{I: v}, nil
	case bytecode.KFloat:
		v, err := r.float()
		if err != nil {
			return Slot{}, err
		}
		return Slot{F: v}, nil
	default:
		root, _, err := h.DeserializeGraph(b)
		return Slot{I: root}, err
	}
}

// EncodeArgs serializes a full argument list for method m (receiver
// first), concatenating per-kind payloads. It is what the client
// transmits when offloading m.
func (h *Heap) EncodeArgs(m *bytecode.Method, args []Slot) ([]byte, error) {
	if len(args) != m.NumArgs() {
		return nil, fmt.Errorf("%w: %d args for %s, want %d", ErrSerialize, len(args), m.QName(), m.NumArgs())
	}
	var buf bytes.Buffer
	for i, k := range m.ArgKinds() {
		switch k {
		case bytecode.KInt:
			putVarint(&buf, args[i].I)
		case bytecode.KFloat:
			putFloat(&buf, args[i].F)
		case bytecode.KRef:
			g, err := h.SerializeGraph(args[i].I)
			if err != nil {
				return nil, err
			}
			buf.Write(g)
		}
	}
	return buf.Bytes(), nil
}

// DecodeArgs deserializes an argument payload into this heap.
func (h *Heap) DecodeArgs(m *bytecode.Method, b []byte) ([]Slot, error) {
	args := make([]Slot, 0, m.NumArgs())
	pos := 0
	for _, k := range m.ArgKinds() {
		r := &byteReader{b: b[pos:]}
		switch k {
		case bytecode.KInt:
			v, err := r.varint()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrSerialize, err)
			}
			args = append(args, Slot{I: v})
			pos += r.pos
		case bytecode.KFloat:
			v, err := r.float()
			if err != nil {
				return nil, err
			}
			args = append(args, Slot{F: v})
			pos += r.pos
		case bytecode.KRef:
			root, used, err := h.DeserializeGraph(b[pos:])
			if err != nil {
				return nil, err
			}
			args = append(args, Slot{I: root})
			pos += used
		}
	}
	if pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSerialize, len(b)-pos)
	}
	return args, nil
}

// ChargeSerialization charges the CPU work of serializing or
// deserializing n bytes: streaming copy plus varint coding, roughly
// one load, one store and two ALU operations per word.
func (v *VM) ChargeSerialization(n int) {
	words := uint64((n + 3) / 4)
	v.Acct.AddInstr(energy.Load, words)
	v.Acct.AddInstr(energy.Store, words)
	v.Acct.AddInstr(energy.ALUSimple, 2*words)
}
