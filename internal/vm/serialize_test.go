package vm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/rng"
)

func twoHeaps(t *testing.T) (*VM, *VM) {
	t.Helper()
	// Client and server share the program but have separate heaps.
	p := buildTestProgram(t)
	return New(p, energy.MicroSPARCIIep()), New(p, energy.MicroSPARCIIep())
}

func TestSerializeNull(t *testing.T) {
	v, w := twoHeaps(t)
	b, err := v.Heap.SerializeGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	root, used, err := w.Heap.DeserializeGraph(b)
	if err != nil || root != 0 || used != len(b) {
		t.Errorf("null roundtrip: root=%d used=%d err=%v", root, used, err)
	}
}

func TestSerializeIntArray(t *testing.T) {
	v, w := twoHeaps(t)
	h, _ := v.Heap.NewArray(bytecode.ElemInt, 5)
	for i := int64(0); i < 5; i++ {
		if err := v.Heap.SetElemI(h, i, -100*i); err != nil {
			t.Fatal(err)
		}
	}
	b, err := v.Heap.SerializeGraph(h)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := w.Heap.DeserializeGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		got, err := w.Heap.ElemI(root, i)
		if err != nil || got != -100*i {
			t.Errorf("elem %d = %d, %v; want %d", i, got, err, -100*i)
		}
	}
}

func TestSerializeFloatArray(t *testing.T) {
	v, w := twoHeaps(t)
	h, _ := v.Heap.NewArray(bytecode.ElemFloat, 3)
	want := []float64{1.5, -2.25, 3.125}
	for i, x := range want {
		if err := v.Heap.SetElemF(h, int64(i), x); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := v.Heap.SerializeGraph(h)
	root, _, err := w.Heap.DeserializeGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range want {
		if got, _ := w.Heap.ElemF(root, int64(i)); got != x {
			t.Errorf("elem %d = %g, want %g", i, got, x)
		}
	}
}

// buildList creates a linked list of Node objects; cyclic when cycle.
func buildList(t *testing.T, v *VM, vals []int64, cycle bool) int64 {
	t.Helper()
	nc := v.Prog.Class("Node")
	valSlot := nc.FieldSlot("val").Slot
	nextSlot := nc.FieldSlot("next").Slot
	var first, prev int64
	for _, x := range vals {
		h, err := v.Heap.NewObject(int32(nc.ID))
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Heap.SetFieldI(h, valSlot, x); err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			if err := v.Heap.SetFieldI(prev, nextSlot, h); err != nil {
				t.Fatal(err)
			}
		} else {
			first = h
		}
		prev = h
	}
	if cycle && prev != 0 {
		if err := v.Heap.SetFieldI(prev, nextSlot, first); err != nil {
			t.Fatal(err)
		}
	}
	return first
}

func TestSerializeLinkedList(t *testing.T) {
	v, w := twoHeaps(t)
	root := buildList(t, v, []int64{10, 20, 30}, false)
	b, err := v.Heap.SerializeGraph(root)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := w.Heap.DeserializeGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	nc := w.Prog.Class("Node")
	valSlot, nextSlot := nc.FieldSlot("val").Slot, nc.FieldSlot("next").Slot
	want := []int64{10, 20, 30}
	for i, x := range want {
		val, err := w.Heap.FieldI(got, valSlot)
		if err != nil || val != x {
			t.Fatalf("node %d val = %d, %v; want %d", i, val, err, x)
		}
		got, err = w.Heap.FieldI(got, nextSlot)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got != 0 {
		t.Error("list should end in null")
	}
}

func TestSerializeCycle(t *testing.T) {
	v, w := twoHeaps(t)
	root := buildList(t, v, []int64{1, 2}, true)
	b, err := v.Heap.SerializeGraph(root)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := w.Heap.DeserializeGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	nc := w.Prog.Class("Node")
	nextSlot := nc.FieldSlot("next").Slot
	n2, _ := w.Heap.FieldI(got, nextSlot)
	n3, _ := w.Heap.FieldI(n2, nextSlot)
	if n3 != got {
		t.Error("cycle not preserved")
	}
}

func TestSerializeSharing(t *testing.T) {
	v, w := twoHeaps(t)
	// Ref array with the same object at both indices.
	nc := v.Prog.Class("Node")
	obj, _ := v.Heap.NewObject(int32(nc.ID))
	arr, _ := v.Heap.NewArray(bytecode.ElemRef, 2)
	if err := v.Heap.SetElemI(arr, 0, obj); err != nil {
		t.Fatal(err)
	}
	if err := v.Heap.SetElemI(arr, 1, obj); err != nil {
		t.Fatal(err)
	}
	b, _ := v.Heap.SerializeGraph(arr)
	root, _, err := w.Heap.DeserializeGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := w.Heap.ElemI(root, 0)
	a1, _ := w.Heap.ElemI(root, 1)
	if a0 != a1 || a0 == 0 {
		t.Error("shared reference duplicated or lost")
	}
}

func TestEncodeArgsRoundtrip(t *testing.T) {
	v, w := twoHeaps(t)
	m := v.Prog.FindMethod("Disp", "callArea")
	sq := v.Prog.Class("Square")
	h, _ := v.Heap.NewObject(int32(sq.ID))
	if err := v.Heap.SetFieldI(h, sq.FieldSlot("side").Slot, 6); err != nil {
		t.Fatal(err)
	}
	b, err := v.Heap.EncodeArgs(m, []Slot{RefSlot(h)})
	if err != nil {
		t.Fatal(err)
	}
	args, err := w.Heap.DecodeArgs(m, b)
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized square must compute its area on the other VM.
	res, err := w.Invoke(m, args)
	if err != nil || res.I != 36 {
		t.Errorf("offloaded callArea = %d, %v; want 36", res.I, err)
	}
}

func TestEncodeArgsMixedKinds(t *testing.T) {
	v, w := twoHeaps(t)
	m := &bytecode.Method{Name: "mix", Static: true,
		Params: []bytecode.Type{bytecode.TInt, bytecode.TFloat, bytecode.TArray(bytecode.TInt)},
		Ret:    bytecode.TVoid}
	arr, _ := v.Heap.NewArray(bytecode.ElemInt, 2)
	if err := v.Heap.SetElemI(arr, 1, 77); err != nil {
		t.Fatal(err)
	}
	b, err := v.Heap.EncodeArgs(m, []Slot{IntSlot(-5), FloatSlot(1.25), RefSlot(arr)})
	if err != nil {
		t.Fatal(err)
	}
	args, err := w.Heap.DecodeArgs(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if args[0].I != -5 || args[1].F != 1.25 {
		t.Errorf("scalar args = %v", args[:2])
	}
	if got, _ := w.Heap.ElemI(args[2].I, 1); got != 77 {
		t.Errorf("array arg elem = %d, want 77", got)
	}
}

func TestEncodeDecodeValue(t *testing.T) {
	v, w := twoHeaps(t)
	cases := []struct {
		kind bytecode.Kind
		s    Slot
	}{
		{bytecode.KVoid, Slot{}},
		{bytecode.KInt, IntSlot(-123456)},
		{bytecode.KFloat, FloatSlot(3.14159)},
	}
	for _, c := range cases {
		b, err := v.Heap.EncodeValue(c.kind, c.s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.Heap.DecodeValue(c.kind, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.s {
			t.Errorf("%v roundtrip = %+v, want %+v", c.kind, got, c.s)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	_, w := twoHeaps(t)
	if _, _, err := w.Heap.DeserializeGraph([]byte{0xFF}); !errors.Is(err, ErrSerialize) {
		t.Errorf("truncated: %v", err)
	}
	// Object count claims more than plausible.
	if _, _, err := w.Heap.DeserializeGraph([]byte{0x80, 0x80, 0x80, 0x80, 0x10}); err == nil {
		t.Error("absurd count should error")
	}
}

// Property: int-array serialization roundtrips arbitrary contents and
// the encoded size grows with magnitude (varint coding).
func TestSerializeIntArrayProperty(t *testing.T) {
	p := buildTestProgram(t)
	f := func(vals []int32) bool {
		v := New(p, energy.MicroSPARCIIep())
		w := New(p, energy.MicroSPARCIIep())
		h, err := v.Heap.NewArray(bytecode.ElemInt, int64(len(vals)))
		if err != nil {
			return false
		}
		for i, x := range vals {
			if err := v.Heap.SetElemI(h, int64(i), int64(x)); err != nil {
				return false
			}
		}
		b, err := v.Heap.SerializeGraph(h)
		if err != nil {
			return false
		}
		root, used, err := w.Heap.DeserializeGraph(b)
		if err != nil || used != len(b) {
			return false
		}
		for i, x := range vals {
			got, err := w.Heap.ElemI(root, int64(i))
			if err != nil || got != int64(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChargeSerialization(t *testing.T) {
	v, _ := twoHeaps(t)
	before := v.Acct.Total()
	v.ChargeSerialization(4096)
	if v.Acct.Total() <= before {
		t.Error("serialization charged no energy")
	}
	if v.Acct.InstrCount(energy.Load) != 1024 || v.Acct.InstrCount(energy.Store) != 1024 {
		t.Error("expected one load+store per word")
	}
}

// TestSerializeRandomGraphs round-trips randomly shaped object graphs:
// nodes with ref fields wired arbitrarily (cycles, sharing, nulls) and
// int payloads, plus ref arrays pointing into the graph.
func TestSerializeRandomGraphs(t *testing.T) {
	p := buildTestProgram(t)
	nc := p.Class("Node")
	valSlot := nc.FieldSlot("val").Slot
	nextSlot := nc.FieldSlot("next").Slot

	for trial := 0; trial < 60; trial++ {
		seed := uint64(trial)*2654435761 + 17
		r := rng.New(seed)
		v := New(p, energy.MicroSPARCIIep())
		w := New(p, energy.MicroSPARCIIep())

		n := 1 + r.Intn(24)
		nodes := make([]int64, n)
		for i := range nodes {
			h, err := v.Heap.NewObject(int32(nc.ID))
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = h
			if err := v.Heap.SetFieldI(h, valSlot, int64(r.Intn(1<<20))); err != nil {
				t.Fatal(err)
			}
		}
		// Random next-pointers: null 1/4 of the time, else any node
		// (cycles and sharing arise naturally).
		for _, h := range nodes {
			if r.Intn(4) != 0 {
				if err := v.Heap.SetFieldI(h, nextSlot, nodes[r.Intn(n)]); err != nil {
					t.Fatal(err)
				}
			}
		}
		arr, err := v.Heap.NewArray(bytecode.ElemRef, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := v.Heap.SetElemI(arr, int64(i), nodes[r.Intn(n)]); err != nil {
				t.Fatal(err)
			}
		}

		b, err := v.Heap.SerializeGraph(arr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		root, used, err := w.Heap.DeserializeGraph(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if used != len(b) {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(b)-used)
		}

		// Structural equivalence: walk both graphs in parallel with a
		// correspondence map; vals must match and aliasing must agree.
		corr := map[int64]int64{}
		var walk func(a, bh int64) error
		walk = func(a, bh int64) error {
			if (a == 0) != (bh == 0) {
				return fmt.Errorf("null mismatch")
			}
			if a == 0 {
				return nil
			}
			if prev, seen := corr[a]; seen {
				if prev != bh {
					return fmt.Errorf("aliasing broken")
				}
				return nil
			}
			corr[a] = bh
			av, err := v.Heap.FieldI(a, valSlot)
			if err != nil {
				return err
			}
			bv, err := w.Heap.FieldI(bh, valSlot)
			if err != nil {
				return err
			}
			if av != bv {
				return fmt.Errorf("val %d != %d", av, bv)
			}
			an, err := v.Heap.FieldI(a, nextSlot)
			if err != nil {
				return err
			}
			bn, err := w.Heap.FieldI(bh, nextSlot)
			if err != nil {
				return err
			}
			return walk(an, bn)
		}
		for i := 0; i < n; i++ {
			ae, _ := v.Heap.ElemI(arr, int64(i))
			be, _ := w.Heap.ElemI(root, int64(i))
			if err := walk(ae, be); err != nil {
				t.Fatalf("trial %d elem %d: %v", trial, i, err)
			}
		}
	}
}
