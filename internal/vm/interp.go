package vm

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
)

// Interpreter energy model. Each bytecode costs a dispatch overhead
// (fetching and decoding the bytecode, indirect-jumping to its
// handler) plus the memory traffic its handler performs on the operand
// stack, the locals area and the heap. This reproduces the paper's
// premise that interpretation is a constant-factor more expensive than
// compiled code: the same abstract operation costs one native
// instruction when compiled but roughly a dozen when interpreted.
const (
	dispatchLoads    = 2 // fetch opcode + handler pointer
	dispatchBranches = 1 // indirect dispatch jump
	dispatchALU      = 1 // pc/operand decode arithmetic
)

// interpret executes the method's bytecode. Arguments are already in
// slots; verified code guarantees stack and local discipline.
func (v *VM) interpret(m *bytecode.Method, args []Slot) (Slot, error) {
	lay := v.layoutOf(m)
	acct, hier, heap := v.Acct, v.Hier, v.Heap

	frameBytes := uint64(m.MaxLocals+m.MaxStack) * 4
	savedSP := v.sp
	v.sp -= frameBytes
	localsAddr := v.sp
	stackAddr := v.sp + uint64(m.MaxLocals)*4
	defer func() { v.sp = savedSP }()

	locals := make([]Slot, m.MaxLocals)
	copy(locals, args)
	stack := make([]Slot, m.MaxStack+1)
	sp := 0

	fail := func(pc int, err error) (Slot, error) {
		return Slot{}, fmt.Errorf("%s@%d: %w", m.QName(), pc, err)
	}

	push := func(s Slot) {
		stack[sp] = s
		hier.Data(stackAddr+uint64(sp)*4, 1)
		acct.AddInstr(energy.Store, 1)
		sp++
	}
	pop := func() Slot {
		sp--
		hier.Data(stackAddr+uint64(sp)*4, 1)
		acct.AddInstr(energy.Load, 1)
		return stack[sp]
	}
	loadLocal := func(idx int32) Slot {
		hier.Data(localsAddr+uint64(idx)*4, 1)
		acct.AddInstr(energy.Load, 1)
		return locals[idx]
	}
	storeLocal := func(idx int32, s Slot) {
		hier.Data(localsAddr+uint64(idx)*4, 1)
		acct.AddInstr(energy.Store, 1)
		locals[idx] = s
	}

	code := m.Code
	pc := 0
	for {
		if pc < 0 || pc >= len(code) {
			return fail(pc, fmt.Errorf("pc out of bounds"))
		}
		in := code[pc]

		// Dispatch overhead + bytecode stream fetch.
		hier.Data(lay.base+uint64(lay.offsets[pc]), 1)
		acct.AddInstr(energy.Load, dispatchLoads)
		acct.AddInstr(energy.Branch, dispatchBranches)
		acct.AddInstr(energy.ALUSimple, dispatchALU)
		v.steps++
		if v.MaxSteps != 0 && v.steps > v.MaxSteps {
			return fail(pc, ErrStepLimit)
		}
		next := pc + 1

		switch in.Op {
		case bytecode.NOP:
			acct.AddInstr(energy.Nop, 1)

		case bytecode.ACONSTNULL:
			acct.AddInstr(energy.ALUSimple, 1)
			push(Slot{})
		case bytecode.ICONST:
			acct.AddInstr(energy.ALUSimple, 1)
			push(Slot{I: int64(in.A)})
		case bytecode.FCONST:
			acct.AddInstr(energy.ALUSimple, 1)
			push(Slot{F: in.F})

		case bytecode.ILOAD, bytecode.FLOAD, bytecode.ALOAD:
			push(loadLocal(in.A))
		case bytecode.ISTORE, bytecode.FSTORE, bytecode.ASTORE:
			storeLocal(in.A, pop())

		case bytecode.DUP:
			acct.AddInstr(energy.Load, 1)
			push(stack[sp-1])
		case bytecode.POP:
			pop()
		case bytecode.SWAP:
			acct.AddInstr(energy.Load, 2)
			acct.AddInstr(energy.Store, 2)
			stack[sp-1], stack[sp-2] = stack[sp-2], stack[sp-1]

		case bytecode.IADD, bytecode.ISUB, bytecode.ISHL, bytecode.ISHR,
			bytecode.IAND, bytecode.IOR, bytecode.IXOR:
			b, a := pop().I, pop().I
			var r int64
			switch in.Op {
			case bytecode.IADD:
				r = a + b
			case bytecode.ISUB:
				r = a - b
			case bytecode.ISHL:
				r = a << uint(b&31)
			case bytecode.ISHR:
				r = a >> uint(b&31)
			case bytecode.IAND:
				r = a & b
			case bytecode.IOR:
				r = a | b
			case bytecode.IXOR:
				r = a ^ b
			}
			acct.AddInstr(energy.ALUSimple, 1)
			push(Slot{I: int64(int32(r))})

		case bytecode.IMUL, bytecode.IDIV, bytecode.IREM:
			b, a := pop().I, pop().I
			var r int64
			switch in.Op {
			case bytecode.IMUL:
				r = a * b
			case bytecode.IDIV:
				if b == 0 {
					return fail(pc, ErrDivideByZero)
				}
				r = a / b
			case bytecode.IREM:
				if b == 0 {
					return fail(pc, ErrDivideByZero)
				}
				r = a % b
			}
			acct.AddInstr(energy.ALUComplex, 1)
			push(Slot{I: int64(int32(r))})

		case bytecode.INEG:
			a := pop().I
			acct.AddInstr(energy.ALUSimple, 1)
			push(Slot{I: int64(int32(-a))})

		case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV:
			b, a := pop().F, pop().F
			var r float64
			switch in.Op {
			case bytecode.FADD:
				r = a + b
			case bytecode.FSUB:
				r = a - b
			case bytecode.FMUL:
				r = a * b
			case bytecode.FDIV:
				r = a / b
			}
			acct.AddInstr(energy.ALUComplex, 1)
			push(Slot{F: r})

		case bytecode.FNEG:
			a := pop().F
			acct.AddInstr(energy.ALUSimple, 1)
			push(Slot{F: -a})

		case bytecode.I2F:
			a := pop().I
			acct.AddInstr(energy.ALUComplex, 1)
			push(Slot{F: float64(a)})
		case bytecode.F2I:
			a := pop().F
			acct.AddInstr(energy.ALUComplex, 1)
			push(Slot{I: int64(int32(int64(a)))})

		case bytecode.GOTO:
			acct.AddInstr(energy.Branch, 1)
			next = int(in.A)

		case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT,
			bytecode.IFGE, bytecode.IFGT, bytecode.IFLE:
			a := pop().I
			acct.AddInstr(energy.Branch, 1)
			var taken bool
			switch in.Op {
			case bytecode.IFEQ:
				taken = a == 0
			case bytecode.IFNE:
				taken = a != 0
			case bytecode.IFLT:
				taken = a < 0
			case bytecode.IFGE:
				taken = a >= 0
			case bytecode.IFGT:
				taken = a > 0
			case bytecode.IFLE:
				taken = a <= 0
			}
			if taken {
				next = int(in.A)
			}

		case bytecode.IFICMPEQ, bytecode.IFICMPNE, bytecode.IFICMPLT,
			bytecode.IFICMPGE, bytecode.IFICMPGT, bytecode.IFICMPLE:
			b, a := pop().I, pop().I
			acct.AddInstr(energy.Branch, 1)
			var taken bool
			switch in.Op {
			case bytecode.IFICMPEQ:
				taken = a == b
			case bytecode.IFICMPNE:
				taken = a != b
			case bytecode.IFICMPLT:
				taken = a < b
			case bytecode.IFICMPGE:
				taken = a >= b
			case bytecode.IFICMPGT:
				taken = a > b
			case bytecode.IFICMPLE:
				taken = a <= b
			}
			if taken {
				next = int(in.A)
			}

		case bytecode.IFFCMPEQ, bytecode.IFFCMPNE, bytecode.IFFCMPLT, bytecode.IFFCMPGE:
			b, a := pop().F, pop().F
			acct.AddInstr(energy.Branch, 1)
			var taken bool
			switch in.Op {
			case bytecode.IFFCMPEQ:
				taken = a == b
			case bytecode.IFFCMPNE:
				taken = a != b
			case bytecode.IFFCMPLT:
				taken = a < b
			case bytecode.IFFCMPGE:
				taken = a >= b
			}
			if taken {
				next = int(in.A)
			}

		case bytecode.IFACMPEQ, bytecode.IFACMPNE:
			b, a := pop().I, pop().I
			acct.AddInstr(energy.Branch, 1)
			if (in.Op == bytecode.IFACMPEQ) == (a == b) {
				next = int(in.A)
			}
		case bytecode.IFNULL, bytecode.IFNONNULL:
			a := pop().I
			acct.AddInstr(energy.Branch, 1)
			if (in.Op == bytecode.IFNULL) == (a == 0) {
				next = int(in.A)
			}

		case bytecode.NEWARRAY:
			n := pop().I
			acct.AddInstr(energy.ALUComplex, 1)
			h, err := heap.NewArray(bytecode.ElemKind(in.A), n)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: h})

		case bytecode.IALOAD, bytecode.AALOAD:
			i := pop().I
			a := pop().I
			acct.AddInstr(energy.Load, 1)
			x, err := heap.ElemI(a, i)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: x})
		case bytecode.FALOAD:
			i := pop().I
			a := pop().I
			acct.AddInstr(energy.Load, 1)
			x, err := heap.ElemF(a, i)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{F: x})
		case bytecode.IASTORE, bytecode.AASTORE:
			x := pop().I
			i := pop().I
			a := pop().I
			acct.AddInstr(energy.Store, 1)
			if err := heap.SetElemI(a, i, x); err != nil {
				return fail(pc, err)
			}
		case bytecode.FASTORE:
			x := pop().F
			i := pop().I
			a := pop().I
			acct.AddInstr(energy.Store, 1)
			if err := heap.SetElemF(a, i, x); err != nil {
				return fail(pc, err)
			}
		case bytecode.ARRAYLENGTH:
			a := pop().I
			acct.AddInstr(energy.Load, 1)
			n, err := heap.ArrayLen(a)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: n})

		case bytecode.NEW:
			acct.AddInstr(energy.ALUComplex, 1)
			h, err := heap.NewObject(in.A)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: h})

		case bytecode.GETFI:
			o := pop().I
			acct.AddInstr(energy.Load, 1)
			x, err := heap.FieldI(o, int(in.A))
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: x})
		case bytecode.GETFF:
			o := pop().I
			acct.AddInstr(energy.Load, 1)
			x, err := heap.FieldF(o, int(in.A))
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{F: x})
		case bytecode.GETFA:
			o := pop().I
			acct.AddInstr(energy.Load, 1)
			x, err := heap.FieldI(o, int(in.A))
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: x})
		case bytecode.PUTFI, bytecode.PUTFA:
			x := pop().I
			o := pop().I
			acct.AddInstr(energy.Store, 1)
			if err := heap.SetFieldI(o, int(in.A), x); err != nil {
				return fail(pc, err)
			}
		case bytecode.PUTFF:
			x := pop().F
			o := pop().I
			acct.AddInstr(energy.Store, 1)
			if err := heap.SetFieldF(o, int(in.A), x); err != nil {
				return fail(pc, err)
			}

		case bytecode.INVOKESTATIC, bytecode.INVOKEVIRTUAL:
			target := v.Prog.Method(int(in.A))
			if target == nil {
				return fail(pc, fmt.Errorf("bad method id %d", in.A))
			}
			kinds := target.ArgKinds()
			cargs := make([]Slot, len(kinds))
			for i := len(kinds) - 1; i >= 0; i-- {
				cargs[i] = pop()
			}
			callee := target
			if in.Op == bytecode.INVOKEVIRTUAL {
				recv, err := heap.Get(cargs[0].I)
				if err != nil {
					return fail(pc, err)
				}
				if c := recv.Class(v.Prog); c != nil {
					if actual := c.Resolve(target.Name); actual != nil {
						callee = actual
					}
				}
				acct.AddInstr(energy.Load, 2) // vtable lookup
			}
			// Register-window save/fill, as for native calls.
			acct.AddInstr(energy.Load, v.Mach.CallOverheadLoads)
			acct.AddInstr(energy.Store, v.Mach.CallOverheadStores)
			res, err := v.invoke(callee, cargs)
			if err != nil {
				return Slot{}, err
			}
			if callee.Ret.Kind != bytecode.KVoid {
				push(res)
			}

		case bytecode.RETURN:
			acct.AddInstr(energy.Branch, 1)
			return Slot{}, nil
		case bytecode.IRETURN, bytecode.ARETURN:
			r := pop()
			acct.AddInstr(energy.Branch, 1)
			return r, nil
		case bytecode.FRETURN:
			r := pop()
			acct.AddInstr(energy.Branch, 1)
			return r, nil

		default:
			return fail(pc, fmt.Errorf("unhandled opcode %s", in.Op.Name()))
		}
		pc = next
	}
}
