package vm

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/mem"
)

// Interpreter energy model. Each bytecode costs a dispatch overhead
// (fetching and decoding the bytecode, indirect-jumping to its
// handler) plus the memory traffic its handler performs on the operand
// stack, the locals area and the heap. This reproduces the paper's
// premise that interpretation is a constant-factor more expensive than
// compiled code: the same abstract operation costs one native
// instruction when compiled but roughly a dozen when interpreted.
const (
	dispatchLoads    = 2 // fetch opcode + handler pointer
	dispatchBranches = 1 // indirect dispatch jump
	dispatchALU      = 1 // pc/operand decode arithmetic
)

// interpret executes the method's bytecode. Arguments are already in
// slots; verified code guarantees stack and local discipline.
//
// The dispatch loop is a single flat switch over the dense opcode
// space — the compiler lowers it to one indirect jump per bytecode —
// with the frame's stack pointer, operand stack and locals held in
// loop-local variables. Energy bookkeeping is batched: per-class
// instruction counts accumulate in a local array and are committed
// once per straight-line segment (before any nested invocation and on
// every exit path), so the account does one multiply per class per
// segment instead of float work per bytecode. Observable account
// state is exact at every VM re-entry point; only the float
// association of the core-energy sum within a segment differs from
// the per-bytecode path.
func (v *VM) interpret(m *bytecode.Method, args []Slot) (Slot, error) {
	lay := v.layoutOf(m)
	hier, heap := v.Hier, v.Heap

	frameBytes := uint64(m.MaxLocals+m.MaxStack) * 4
	savedSP := v.sp
	v.sp -= frameBytes
	localsAddr := v.sp
	stackAddr := v.sp + uint64(m.MaxLocals)*4

	// Carve locals and operand stack out of the VM's slot arena.
	// Nested interpreted frames stack above this one; growth
	// reallocates the arena, but outer frames keep their (still valid)
	// slices into the old backing array.
	slotBase := v.slotTop
	need := m.MaxLocals + m.MaxStack + 1
	if top := slotBase + need; top > len(v.slotArena) {
		v.slotArena = append(v.slotArena, make([]Slot, top-len(v.slotArena))...)
	}
	locals := v.slotArena[slotBase : slotBase+m.MaxLocals : slotBase+m.MaxLocals]
	stack := v.slotArena[slotBase+m.MaxLocals : slotBase+need : slotBase+need]
	clear(locals)
	clear(stack)
	copy(locals, args)
	sp := 0
	v.slotTop = slotBase + need

	var counts energy.InstrCounts
	steps := v.steps
	maxSteps := v.MaxSteps

	// flush commits pending bookkeeping; called before nested
	// invocations and, via defer, on every exit path.
	flush := func() {
		v.Acct.AddInstrCounts(&counts)
		v.steps = steps
	}
	defer func() {
		flush()
		v.sp = savedSP
		v.slotTop = slotBase
	}()

	fail := func(pc int, err error) (Slot, error) {
		return Slot{}, fmt.Errorf("%s@%d: %w", m.QName(), pc, err)
	}

	// One residency tracker per traffic source — bytecode stream,
	// operand stack, locals — so the sources' interleaved accesses
	// don't evict each other's fast path.
	var codeT, stkT, locT mem.LineTracker

	push := func(s Slot) {
		stack[sp] = s
		hier.Data1T(stackAddr+uint64(sp)*4, &stkT)
		counts[energy.Store]++
		sp++
	}
	pop := func() Slot {
		sp--
		hier.Data1T(stackAddr+uint64(sp)*4, &stkT)
		counts[energy.Load]++
		return stack[sp]
	}
	loadLocal := func(idx int32) Slot {
		hier.Data1T(localsAddr+uint64(idx)*4, &locT)
		counts[energy.Load]++
		return locals[idx]
	}
	storeLocal := func(idx int32, s Slot) {
		hier.Data1T(localsAddr+uint64(idx)*4, &locT)
		counts[energy.Store]++
		locals[idx] = s
	}

	code := m.Code
	base := lay.base
	offsets := lay.offsets
	pc := 0
	for {
		if pc < 0 || pc >= len(code) {
			return fail(pc, fmt.Errorf("pc out of bounds"))
		}
		in := &code[pc]

		// Dispatch overhead + bytecode stream fetch.
		hier.Data1T(base+uint64(offsets[pc]), &codeT)
		counts[energy.Load] += dispatchLoads
		counts[energy.Branch] += dispatchBranches
		counts[energy.ALUSimple] += dispatchALU
		steps++
		if maxSteps != 0 && steps > maxSteps {
			return fail(pc, ErrStepLimit)
		}
		next := pc + 1

		switch in.Op {
		case bytecode.NOP:
			counts[energy.Nop]++

		case bytecode.ACONSTNULL:
			counts[energy.ALUSimple]++
			push(Slot{})
		case bytecode.ICONST:
			counts[energy.ALUSimple]++
			push(Slot{I: int64(in.A)})
		case bytecode.FCONST:
			counts[energy.ALUSimple]++
			push(Slot{F: in.F})

		case bytecode.ILOAD:
			push(loadLocal(in.A))
		case bytecode.FLOAD:
			push(loadLocal(in.A))
		case bytecode.ALOAD:
			push(loadLocal(in.A))
		case bytecode.ISTORE:
			storeLocal(in.A, pop())
		case bytecode.FSTORE:
			storeLocal(in.A, pop())
		case bytecode.ASTORE:
			storeLocal(in.A, pop())

		case bytecode.DUP:
			counts[energy.Load]++
			push(stack[sp-1])
		case bytecode.POP:
			pop()
		case bytecode.SWAP:
			counts[energy.Load] += 2
			counts[energy.Store] += 2
			stack[sp-1], stack[sp-2] = stack[sp-2], stack[sp-1]

		case bytecode.IADD:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a + b))})
		case bytecode.ISUB:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a - b))})
		case bytecode.ISHL:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a << uint(b&31)))})
		case bytecode.ISHR:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a >> uint(b&31)))})
		case bytecode.IAND:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a & b))})
		case bytecode.IOR:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a | b))})
		case bytecode.IXOR:
			b, a := pop().I, pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(a ^ b))})

		case bytecode.IMUL:
			b, a := pop().I, pop().I
			counts[energy.ALUComplex]++
			push(Slot{I: int64(int32(a * b))})
		case bytecode.IDIV:
			b, a := pop().I, pop().I
			if b == 0 {
				return fail(pc, ErrDivideByZero)
			}
			counts[energy.ALUComplex]++
			push(Slot{I: int64(int32(a / b))})
		case bytecode.IREM:
			b, a := pop().I, pop().I
			if b == 0 {
				return fail(pc, ErrDivideByZero)
			}
			counts[energy.ALUComplex]++
			push(Slot{I: int64(int32(a % b))})

		case bytecode.INEG:
			a := pop().I
			counts[energy.ALUSimple]++
			push(Slot{I: int64(int32(-a))})

		case bytecode.FADD:
			b, a := pop().F, pop().F
			counts[energy.ALUComplex]++
			push(Slot{F: a + b})
		case bytecode.FSUB:
			b, a := pop().F, pop().F
			counts[energy.ALUComplex]++
			push(Slot{F: a - b})
		case bytecode.FMUL:
			b, a := pop().F, pop().F
			counts[energy.ALUComplex]++
			push(Slot{F: a * b})
		case bytecode.FDIV:
			b, a := pop().F, pop().F
			counts[energy.ALUComplex]++
			push(Slot{F: a / b})

		case bytecode.FNEG:
			a := pop().F
			counts[energy.ALUSimple]++
			push(Slot{F: -a})

		case bytecode.I2F:
			a := pop().I
			counts[energy.ALUComplex]++
			push(Slot{F: float64(a)})
		case bytecode.F2I:
			a := pop().F
			counts[energy.ALUComplex]++
			push(Slot{I: int64(int32(int64(a)))})

		case bytecode.GOTO:
			counts[energy.Branch]++
			next = int(in.A)

		case bytecode.IFEQ:
			a := pop().I
			counts[energy.Branch]++
			if a == 0 {
				next = int(in.A)
			}
		case bytecode.IFNE:
			a := pop().I
			counts[energy.Branch]++
			if a != 0 {
				next = int(in.A)
			}
		case bytecode.IFLT:
			a := pop().I
			counts[energy.Branch]++
			if a < 0 {
				next = int(in.A)
			}
		case bytecode.IFGE:
			a := pop().I
			counts[energy.Branch]++
			if a >= 0 {
				next = int(in.A)
			}
		case bytecode.IFGT:
			a := pop().I
			counts[energy.Branch]++
			if a > 0 {
				next = int(in.A)
			}
		case bytecode.IFLE:
			a := pop().I
			counts[energy.Branch]++
			if a <= 0 {
				next = int(in.A)
			}

		case bytecode.IFICMPEQ:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a == b {
				next = int(in.A)
			}
		case bytecode.IFICMPNE:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a != b {
				next = int(in.A)
			}
		case bytecode.IFICMPLT:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a < b {
				next = int(in.A)
			}
		case bytecode.IFICMPGE:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a >= b {
				next = int(in.A)
			}
		case bytecode.IFICMPGT:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a > b {
				next = int(in.A)
			}
		case bytecode.IFICMPLE:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a <= b {
				next = int(in.A)
			}

		case bytecode.IFFCMPEQ:
			b, a := pop().F, pop().F
			counts[energy.Branch]++
			if a == b {
				next = int(in.A)
			}
		case bytecode.IFFCMPNE:
			b, a := pop().F, pop().F
			counts[energy.Branch]++
			if a != b {
				next = int(in.A)
			}
		case bytecode.IFFCMPLT:
			b, a := pop().F, pop().F
			counts[energy.Branch]++
			if a < b {
				next = int(in.A)
			}
		case bytecode.IFFCMPGE:
			b, a := pop().F, pop().F
			counts[energy.Branch]++
			if a >= b {
				next = int(in.A)
			}

		case bytecode.IFACMPEQ:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a == b {
				next = int(in.A)
			}
		case bytecode.IFACMPNE:
			b, a := pop().I, pop().I
			counts[energy.Branch]++
			if a != b {
				next = int(in.A)
			}
		case bytecode.IFNULL:
			a := pop().I
			counts[energy.Branch]++
			if a == 0 {
				next = int(in.A)
			}
		case bytecode.IFNONNULL:
			a := pop().I
			counts[energy.Branch]++
			if a != 0 {
				next = int(in.A)
			}

		case bytecode.NEWARRAY:
			n := pop().I
			counts[energy.ALUComplex]++
			h, err := heap.NewArray(bytecode.ElemKind(in.A), n)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: h})

		case bytecode.IALOAD, bytecode.AALOAD:
			i := pop().I
			a := pop().I
			counts[energy.Load]++
			x, err := heap.ElemI(a, i)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: x})
		case bytecode.FALOAD:
			i := pop().I
			a := pop().I
			counts[energy.Load]++
			x, err := heap.ElemF(a, i)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{F: x})
		case bytecode.IASTORE, bytecode.AASTORE:
			x := pop().I
			i := pop().I
			a := pop().I
			counts[energy.Store]++
			if err := heap.SetElemI(a, i, x); err != nil {
				return fail(pc, err)
			}
		case bytecode.FASTORE:
			x := pop().F
			i := pop().I
			a := pop().I
			counts[energy.Store]++
			if err := heap.SetElemF(a, i, x); err != nil {
				return fail(pc, err)
			}
		case bytecode.ARRAYLENGTH:
			a := pop().I
			counts[energy.Load]++
			n, err := heap.ArrayLen(a)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: n})

		case bytecode.NEW:
			counts[energy.ALUComplex]++
			h, err := heap.NewObject(in.A)
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: h})

		case bytecode.GETFI:
			o := pop().I
			counts[energy.Load]++
			x, err := heap.FieldI(o, int(in.A))
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: x})
		case bytecode.GETFF:
			o := pop().I
			counts[energy.Load]++
			x, err := heap.FieldF(o, int(in.A))
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{F: x})
		case bytecode.GETFA:
			o := pop().I
			counts[energy.Load]++
			x, err := heap.FieldI(o, int(in.A))
			if err != nil {
				return fail(pc, err)
			}
			push(Slot{I: x})
		case bytecode.PUTFI, bytecode.PUTFA:
			x := pop().I
			o := pop().I
			counts[energy.Store]++
			if err := heap.SetFieldI(o, int(in.A), x); err != nil {
				return fail(pc, err)
			}
		case bytecode.PUTFF:
			x := pop().F
			o := pop().I
			counts[energy.Store]++
			if err := heap.SetFieldF(o, int(in.A), x); err != nil {
				return fail(pc, err)
			}

		case bytecode.INVOKESTATIC, bytecode.INVOKEVIRTUAL:
			target := v.Prog.Method(int(in.A))
			if target == nil {
				return fail(pc, fmt.Errorf("bad method id %d", in.A))
			}
			nargs := target.NumArgs()
			argMark := v.argTop
			cargs := v.argSlots(nargs)
			for i := nargs - 1; i >= 0; i-- {
				cargs[i] = pop()
			}
			callee := target
			if in.Op == bytecode.INVOKEVIRTUAL {
				recv, err := heap.Get(cargs[0].I)
				if err != nil {
					return fail(pc, err)
				}
				if c := recv.Class(v.Prog); c != nil {
					if actual := c.Resolve(target.Name); actual != nil {
						callee = actual
					}
				}
				counts[energy.Load] += 2 // vtable lookup
			}
			// Register-window save/fill, as for native calls.
			counts[energy.Load] += v.Mach.CallOverheadLoads
			counts[energy.Store] += v.Mach.CallOverheadStores
			// Re-entering the VM: commit pending bookkeeping so the
			// callee observes an up-to-date account.
			flush()
			res, err := v.invoke(callee, cargs)
			v.argTop = argMark
			if err != nil {
				return Slot{}, err
			}
			steps = v.steps
			maxSteps = v.MaxSteps
			if callee.Ret.Kind != bytecode.KVoid {
				push(res)
			}

		case bytecode.RETURN:
			counts[energy.Branch]++
			return Slot{}, nil
		case bytecode.IRETURN, bytecode.ARETURN:
			r := pop()
			counts[energy.Branch]++
			return r, nil
		case bytecode.FRETURN:
			r := pop()
			counts[energy.Branch]++
			return r, nil

		default:
			return fail(pc, fmt.Errorf("unhandled opcode %s", in.Op.Name()))
		}
		pc = next
	}
}
