package bytecode

import (
	"errors"
	"fmt"
)

// Asm builds a method body instruction by instruction with symbolic
// labels; the MJ compiler's code generator and hand-written tests both
// use it instead of computing branch indices manually.
type Asm struct {
	insns  []Insn
	labels map[string]int
	fixups map[int]string // insn index -> label
}

// NewAsm returns an empty builder.
func NewAsm() *Asm {
	return &Asm{labels: map[string]int{}, fixups: map[int]string{}}
}

// Len returns the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.insns) }

// Op emits an operand-less instruction.
func (a *Asm) Op(op Opcode) *Asm {
	a.insns = append(a.insns, Insn{Op: op})
	return a
}

// OpA emits an instruction with integer operand v.
func (a *Asm) OpA(op Opcode, v int32) *Asm {
	a.insns = append(a.insns, Insn{Op: op, A: v})
	return a
}

// Iconst pushes an int constant.
func (a *Asm) Iconst(v int32) *Asm { return a.OpA(ICONST, v) }

// Fconst pushes a float constant.
func (a *Asm) Fconst(v float64) *Asm {
	a.insns = append(a.insns, Insn{Op: FCONST, F: v})
	return a
}

// Label defines the named label at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("bytecode: duplicate label %q", name))
	}
	a.labels[name] = len(a.insns)
	return a
}

// Branch emits a branch instruction targeting the named label, which
// may be defined before or after this point.
func (a *Asm) Branch(op Opcode, label string) *Asm {
	if !op.IsBranch() {
		panic(fmt.Sprintf("bytecode: %s is not a branch", op.Name()))
	}
	a.fixups[len(a.insns)] = label
	a.insns = append(a.insns, Insn{Op: op})
	return a
}

// Finish resolves labels and returns the instruction sequence.
func (a *Asm) Finish() ([]Insn, error) {
	for idx, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("bytecode: undefined label %q", label)
		}
		a.insns[idx].A = int32(target)
	}
	return a.insns, nil
}

// MustFinish is Finish for statically known-good code.
func (a *Asm) MustFinish() []Insn {
	code, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return code
}

// ErrNoEntry is returned when a program lacks the requested entry method.
var ErrNoEntry = errors.New("bytecode: entry method not found")
