package bytecode

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Binary class-file format. The on-the-wire size of method code equals
// CodeBytes, so the encoded program size is exactly what a client
// would download when fetching an application from the server.
const (
	magic   uint32 = 0x4D4A564D // "MJVM"
	version uint16 = 1
)

// ErrDecode reports a malformed binary class file.
var ErrDecode = errors.New("bytecode: decode error")

type writer struct {
	buf bytes.Buffer
}

func (w *writer) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *writer) u16(v uint16) { var b [2]byte; binary.BigEndian.PutUint16(b[:], v); w.buf.Write(b[:]) }
func (w *writer) u32(v uint32) { var b [4]byte; binary.BigEndian.PutUint32(b[:], v); w.buf.Write(b[:]) }
func (w *writer) u64(v uint64) { var b [8]byte; binary.BigEndian.PutUint64(b[:], v); w.buf.Write(b[:]) }
func (w *writer) str(s string) { w.u16(uint16(len(s))); w.buf.WriteString(s) }

type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at %d", ErrDecode, what, r.pos)
	}
}
func (r *reader) u8() uint8 {
	if r.err != nil || r.pos+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}
func (r *reader) u16() uint16 {
	if r.err != nil || r.pos+2 > len(r.b) {
		r.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}
func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil || r.pos+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

func encodeType(w *writer, t Type) {
	w.u8(uint8(t.Kind))
	if t.Kind != KRef {
		return
	}
	if t.Elem != nil {
		w.u8(1)
		encodeType(w, *t.Elem)
	} else {
		w.u8(0)
		w.str(t.Class)
	}
}

func decodeType(r *reader) Type {
	k := Kind(r.u8())
	if k != KRef {
		return Type{Kind: k}
	}
	if r.u8() == 1 {
		e := decodeType(r)
		return TArray(e)
	}
	return TObject(r.str())
}

func encodeInsn(w *writer, in Insn) error {
	w.u8(uint8(in.Op))
	switch in.Op.EncodedBytes() {
	case 1:
		// no operand
	case 2:
		if in.A < 0 || in.A > 0xFF {
			return fmt.Errorf("bytecode: operand %d of %s exceeds 1 byte", in.A, in.Op.Name())
		}
		w.u8(uint8(in.A))
	case 3:
		if in.A < 0 || in.A > 0xFFFF {
			return fmt.Errorf("bytecode: operand %d of %s exceeds 2 bytes", in.A, in.Op.Name())
		}
		w.u16(uint16(in.A))
	case 5:
		w.u32(uint32(in.A))
	case 9:
		w.u64(math.Float64bits(in.F))
	default:
		return fmt.Errorf("bytecode: unencodable opcode %s", in.Op.Name())
	}
	return nil
}

func decodeInsn(r *reader) Insn {
	op := Opcode(r.u8())
	if !op.Valid() {
		r.fail("opcode")
		return Insn{}
	}
	in := Insn{Op: op}
	switch op.EncodedBytes() {
	case 1:
	case 2:
		in.A = int32(r.u8())
	case 3:
		in.A = int32(r.u16())
	case 5:
		in.A = int32(r.u32())
	case 9:
		in.F = math.Float64frombits(r.u64())
	}
	return in
}

// Encode serializes the program to the binary class-file format.
// The program must be linked (method ids are stored as operands).
func (p *Program) Encode() ([]byte, error) {
	w := &writer{}
	w.u32(magic)
	w.u16(version)
	w.u16(uint16(len(p.Classes)))
	for _, c := range p.Classes {
		w.str(c.Name)
		w.str(c.SuperName)
		w.u16(uint16(len(c.Fields)))
		for _, f := range c.Fields {
			w.str(f.Name)
			encodeType(w, f.Type)
		}
		w.u16(uint16(len(c.Methods)))
		for _, m := range c.Methods {
			w.str(m.Name)
			flags := uint8(0)
			if m.Static {
				flags |= 1
			}
			if m.Potential {
				flags |= 2
			}
			w.u8(flags)
			w.u8(uint8(len(m.Params)))
			for _, t := range m.Params {
				encodeType(w, t)
			}
			encodeType(w, m.Ret)
			w.u16(uint16(m.MaxLocals))
			// Attributes, sorted for deterministic output.
			names := make([]string, 0, len(m.Attrs))
			for k := range m.Attrs {
				names = append(names, k)
			}
			sort.Strings(names)
			w.u16(uint16(len(names)))
			for _, k := range names {
				w.str(k)
				w.u64(math.Float64bits(m.Attrs[k]))
			}
			w.u32(uint32(len(m.Code)))
			for _, in := range m.Code {
				if err := encodeInsn(w, in); err != nil {
					return nil, fmt.Errorf("%s: %w", m.QName(), err)
				}
			}
		}
	}
	return w.buf.Bytes(), nil
}

// Decode parses a binary class file into an unlinked Program. The
// caller should Link and Verify it, as a JVM does at class-load time.
func Decode(b []byte) (*Program, error) {
	r := &reader{b: b}
	if r.u32() != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrDecode)
	}
	if v := r.u16(); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDecode, v)
	}
	nc := int(r.u16())
	p := &Program{}
	for i := 0; i < nc && r.err == nil; i++ {
		c := &Class{Name: r.str(), SuperName: r.str()}
		nf := int(r.u16())
		for j := 0; j < nf && r.err == nil; j++ {
			name := r.str()
			c.Fields = append(c.Fields, Field{Name: name, Type: decodeType(r)})
		}
		nm := int(r.u16())
		for j := 0; j < nm && r.err == nil; j++ {
			m := &Method{Name: r.str()}
			flags := r.u8()
			m.Static = flags&1 != 0
			m.Potential = flags&2 != 0
			np := int(r.u8())
			for k := 0; k < np && r.err == nil; k++ {
				m.Params = append(m.Params, decodeType(r))
			}
			m.Ret = decodeType(r)
			m.MaxLocals = int(r.u16())
			na := int(r.u16())
			for k := 0; k < na && r.err == nil; k++ {
				name := r.str()
				m.SetAttr(name, math.Float64frombits(r.u64()))
			}
			ni := int(r.u32())
			if ni > len(b) { // cheap sanity bound before allocating
				return nil, fmt.Errorf("%w: absurd code length %d", ErrDecode, ni)
			}
			m.Code = make([]Insn, 0, ni)
			for k := 0; k < ni && r.err == nil; k++ {
				m.Code = append(m.Code, decodeInsn(r))
			}
			c.Methods = append(c.Methods, m)
		}
		p.Classes = append(p.Classes, c)
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

// Disassemble renders a method body as readable text.
func Disassemble(m *Method) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s  locals=%d stack=%d", Signature(m.QName(), m.Params, m.Ret), m.MaxLocals, m.MaxStack)
	if m.Potential {
		buf.WriteString(" [potential]")
	}
	buf.WriteByte('\n')
	for i, in := range m.Code {
		fmt.Fprintf(&buf, "%5d: %s\n", i, in)
	}
	return buf.String()
}
