// Package bytecode defines the MJVM class-file model: a platform-
// independent stack bytecode (in the spirit of the JVM bytecodes the
// paper's applications are shipped in), classes with fields, virtual
// methods and attributes, a binary class-file encoding for shipping
// programs between client and server, and a structural verifier.
package bytecode

import (
	"fmt"
	"strings"
)

// Kind is the coarse category of a value.
type Kind uint8

// Value kinds. References cover both objects and arrays, as in the JVM.
const (
	KVoid Kind = iota
	KInt
	KFloat
	KRef
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KRef:
		return "ref"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Type describes a declared type. Int and float are primitives; object
// types carry a class name; array types carry an element type.
type Type struct {
	Kind  Kind
	Class string // object class name, when Kind==KRef and Elem==nil
	Elem  *Type  // array element type, when Kind==KRef and Elem!=nil
}

// Primitive type singletons.
var (
	TVoid  = Type{Kind: KVoid}
	TInt   = Type{Kind: KInt}
	TFloat = Type{Kind: KFloat}
)

// TObject returns the type of instances of the named class.
func TObject(class string) Type { return Type{Kind: KRef, Class: class} }

// TArray returns the type of arrays with the given element type.
func TArray(elem Type) Type { e := elem; return Type{Kind: KRef, Elem: &e} }

// IsArray reports whether the type is an array type.
func (t Type) IsArray() bool { return t.Kind == KRef && t.Elem != nil }

// String renders the type in MJ source syntax.
func (t Type) String() string {
	switch {
	case t.Kind == KVoid:
		return "void"
	case t.Kind == KInt:
		return "int"
	case t.Kind == KFloat:
		return "float"
	case t.IsArray():
		return t.Elem.String() + "[]"
	default:
		return t.Class
	}
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || t.Class != o.Class {
		return false
	}
	if (t.Elem == nil) != (o.Elem == nil) {
		return false
	}
	if t.Elem != nil {
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// ElemKind is the element category of an array at runtime.
type ElemKind uint8

// Array element kinds; the values are fixed because they appear as
// NEWARRAY operands in encoded class files.
const (
	ElemInt   ElemKind = 0
	ElemFloat ElemKind = 1
	ElemRef   ElemKind = 2
)

// ElemKindOf maps a declared element type to its runtime kind.
func ElemKindOf(t Type) ElemKind {
	switch t.Kind {
	case KInt:
		return ElemInt
	case KFloat:
		return ElemFloat
	default:
		return ElemRef
	}
}

// Signature formats a method signature for diagnostics.
func Signature(name string, params []Type, ret Type) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s %s(%s)", ret, name, strings.Join(parts, ", "))
}
