package bytecode

import (
	"errors"
	"fmt"
)

// ErrVerify reports a malformed method body. As in the JVM, every
// class is verified when loaded (the paper, §3.3, notes that this
// verification does not apply to downloaded native code, which is why
// remote compilation requires a trusted server).
var ErrVerify = errors.New("bytecode: verify error")

// Verify checks every method of the linked program and fills in
// MaxStack. It must run after Link.
func (p *Program) Verify() error {
	for _, m := range p.Methods {
		if err := p.VerifyMethod(m); err != nil {
			return err
		}
	}
	return nil
}

type stackState []Kind

func (s stackState) equal(o stackState) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s stackState) clone() stackState {
	return append(stackState(nil), s...)
}

// VerifyMethod type-checks one method body by abstract interpretation
// of the operand stack, checking branch targets, local indices, stack
// discipline at control-flow joins, operand validity and return kinds.
// It sets m.MaxStack as a side effect.
func (p *Program) VerifyMethod(m *Method) error {
	fail := func(pc int, format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s@%d: %s", ErrVerify, m.QName(), pc, fmt.Sprintf(format, args...))
	}
	code := m.Code
	if len(code) == 0 {
		return fail(0, "empty body")
	}
	if m.NumArgs() > m.MaxLocals {
		return fail(0, "MaxLocals %d < %d arguments", m.MaxLocals, m.NumArgs())
	}

	states := make(map[int]stackState)
	work := []int{0}
	states[0] = stackState{}
	maxStack := 0

	// localKind tracks the most recent store kind per local; locals are
	// reusable untyped slots, so loads are checked dynamically by kind
	// of the last store along any path. We approximate with a single
	// map (the MJ compiler never retypes a local across paths; a
	// mismatch is reported when observed).
	localKind := make([]Kind, m.MaxLocals)
	for i := range localKind {
		localKind[i] = KVoid
	}
	for i, k := range m.ArgKinds() {
		localKind[i] = k
	}

	checkLocal := func(pc int, idx int32, want Kind) error {
		if idx < 0 || int(idx) >= m.MaxLocals {
			return fail(pc, "local %d out of range [0,%d)", idx, m.MaxLocals)
		}
		got := localKind[idx]
		if got == KVoid {
			return fail(pc, "load of undefined local %d", idx)
		}
		if got != want {
			return fail(pc, "local %d holds %v, want %v", idx, got, want)
		}
		return nil
	}
	setLocal := func(pc int, idx int32, k Kind) error {
		if idx < 0 || int(idx) >= m.MaxLocals {
			return fail(pc, "local %d out of range [0,%d)", idx, m.MaxLocals)
		}
		if localKind[idx] != KVoid && localKind[idx] != k {
			return fail(pc, "local %d retyped %v -> %v", idx, localKind[idx], k)
		}
		localKind[idx] = k
		return nil
	}

	flow := func(pc int, st stackState) error {
		if pc < 0 || pc >= len(code) {
			return fail(pc, "control flows out of bounds")
		}
		if prev, ok := states[pc]; ok {
			if !prev.equal(st) {
				return fail(pc, "inconsistent stack at join: %v vs %v", prev, st)
			}
			return nil
		}
		states[pc] = st.clone()
		work = append(work, pc)
		return nil
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		st := states[pc].clone()

		for {
			if pc < 0 || pc >= len(code) {
				return fail(pc, "control flows out of bounds")
			}
			in := code[pc]
			if !in.Op.Valid() {
				return fail(pc, "invalid opcode %d", in.Op)
			}

			pop := func(want Kind) error {
				if len(st) == 0 {
					return fail(pc, "%s pops empty stack", in.Op.Name())
				}
				got := st[len(st)-1]
				st = st[:len(st)-1]
				if got != want {
					return fail(pc, "%s pops %v, want %v", in.Op.Name(), got, want)
				}
				return nil
			}
			push := func(k Kind) {
				st = append(st, k)
				if len(st) > maxStack {
					maxStack = len(st)
				}
			}

			next := pc + 1
			branchTo := -1
			done := false

			switch in.Op {
			case NOP:
			case ACONSTNULL:
				push(KRef)
			case ICONST:
				push(KInt)
			case FCONST:
				push(KFloat)
			case ILOAD:
				if err := checkLocal(pc, in.A, KInt); err != nil {
					return err
				}
				push(KInt)
			case FLOAD:
				if err := checkLocal(pc, in.A, KFloat); err != nil {
					return err
				}
				push(KFloat)
			case ALOAD:
				if err := checkLocal(pc, in.A, KRef); err != nil {
					return err
				}
				push(KRef)
			case ISTORE:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := setLocal(pc, in.A, KInt); err != nil {
					return err
				}
			case FSTORE:
				if err := pop(KFloat); err != nil {
					return err
				}
				if err := setLocal(pc, in.A, KFloat); err != nil {
					return err
				}
			case ASTORE:
				if err := pop(KRef); err != nil {
					return err
				}
				if err := setLocal(pc, in.A, KRef); err != nil {
					return err
				}
			case DUP:
				if len(st) == 0 {
					return fail(pc, "dup on empty stack")
				}
				push(st[len(st)-1])
			case POP:
				if len(st) == 0 {
					return fail(pc, "pop on empty stack")
				}
				st = st[:len(st)-1]
			case SWAP:
				if len(st) < 2 {
					return fail(pc, "swap needs two values")
				}
				st[len(st)-1], st[len(st)-2] = st[len(st)-2], st[len(st)-1]
			case IADD, ISUB, IMUL, IDIV, IREM, ISHL, ISHR, IAND, IOR, IXOR:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KInt); err != nil {
					return err
				}
				push(KInt)
			case INEG:
				if err := pop(KInt); err != nil {
					return err
				}
				push(KInt)
			case FADD, FSUB, FMUL, FDIV:
				if err := pop(KFloat); err != nil {
					return err
				}
				if err := pop(KFloat); err != nil {
					return err
				}
				push(KFloat)
			case FNEG:
				if err := pop(KFloat); err != nil {
					return err
				}
				push(KFloat)
			case I2F:
				if err := pop(KInt); err != nil {
					return err
				}
				push(KFloat)
			case F2I:
				if err := pop(KFloat); err != nil {
					return err
				}
				push(KInt)
			case GOTO:
				branchTo = int(in.A)
				done = true
			case IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE:
				if err := pop(KInt); err != nil {
					return err
				}
				branchTo = int(in.A)
			case IFICMPEQ, IFICMPNE, IFICMPLT, IFICMPGE, IFICMPGT, IFICMPLE:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KInt); err != nil {
					return err
				}
				branchTo = int(in.A)
			case IFFCMPEQ, IFFCMPNE, IFFCMPLT, IFFCMPGE:
				if err := pop(KFloat); err != nil {
					return err
				}
				if err := pop(KFloat); err != nil {
					return err
				}
				branchTo = int(in.A)
			case IFACMPEQ, IFACMPNE:
				if err := pop(KRef); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
				branchTo = int(in.A)
			case IFNULL, IFNONNULL:
				if err := pop(KRef); err != nil {
					return err
				}
				branchTo = int(in.A)
			case NEWARRAY:
				if in.A < 0 || in.A > int32(ElemRef) {
					return fail(pc, "bad element kind %d", in.A)
				}
				if err := pop(KInt); err != nil {
					return err
				}
				push(KRef)
			case IALOAD:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
				push(KInt)
			case FALOAD:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
				push(KFloat)
			case AALOAD:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
				push(KRef)
			case IASTORE:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
			case FASTORE:
				if err := pop(KFloat); err != nil {
					return err
				}
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
			case AASTORE:
				if err := pop(KRef); err != nil {
					return err
				}
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
			case ARRAYLENGTH:
				if err := pop(KRef); err != nil {
					return err
				}
				push(KInt)
			case NEW:
				if in.A < 0 || int(in.A) >= len(p.Classes) {
					return fail(pc, "bad class id %d", in.A)
				}
				push(KRef)
			case GETFI:
				if err := pop(KRef); err != nil {
					return err
				}
				push(KInt)
			case GETFF:
				if err := pop(KRef); err != nil {
					return err
				}
				push(KFloat)
			case GETFA:
				if err := pop(KRef); err != nil {
					return err
				}
				push(KRef)
			case PUTFI:
				if err := pop(KInt); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
			case PUTFF:
				if err := pop(KFloat); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
			case PUTFA:
				if err := pop(KRef); err != nil {
					return err
				}
				if err := pop(KRef); err != nil {
					return err
				}
			case INVOKESTATIC, INVOKEVIRTUAL:
				callee := p.Method(int(in.A))
				if callee == nil {
					return fail(pc, "bad method id %d", in.A)
				}
				if in.Op == INVOKESTATIC && !callee.Static {
					return fail(pc, "invokestatic of instance method %s", callee.QName())
				}
				if in.Op == INVOKEVIRTUAL && callee.Static {
					return fail(pc, "invokevirtual of static method %s", callee.QName())
				}
				ks := callee.ArgKinds()
				for i := len(ks) - 1; i >= 0; i-- {
					if err := pop(ks[i]); err != nil {
						return err
					}
				}
				if callee.Ret.Kind != KVoid {
					push(callee.Ret.Kind)
				}
			case RETURN:
				if m.Ret.Kind != KVoid {
					return fail(pc, "void return from %v method", m.Ret)
				}
				done = true
			case IRETURN:
				if m.Ret.Kind != KInt {
					return fail(pc, "int return from %v method", m.Ret)
				}
				if err := pop(KInt); err != nil {
					return err
				}
				done = true
			case FRETURN:
				if m.Ret.Kind != KFloat {
					return fail(pc, "float return from %v method", m.Ret)
				}
				if err := pop(KFloat); err != nil {
					return err
				}
				done = true
			case ARETURN:
				if m.Ret.Kind != KRef {
					return fail(pc, "ref return from %v method", m.Ret)
				}
				if err := pop(KRef); err != nil {
					return err
				}
				done = true
			default:
				return fail(pc, "unhandled opcode %s", in.Op.Name())
			}

			if branchTo >= 0 {
				if err := flow(branchTo, st); err != nil {
					return err
				}
			}
			if done {
				break
			}
			// Fall through to next: continue in-line if unseen, else
			// verify the join and stop this trace.
			if _, seen := states[next]; seen {
				if err := flow(next, st); err != nil {
					return err
				}
				break
			}
			states[next] = st.clone()
			pc = next
		}
	}
	m.MaxStack = maxStack
	return nil
}
