package bytecode

import (
	"errors"
	"fmt"
)

// ErrLink reports a linking failure (unknown class, cyclic hierarchy,
// duplicate definitions, bad references).
var ErrLink = errors.New("bytecode: link error")

// Field is a declared instance field.
type Field struct {
	Name string
	Type Type
}

// FieldSlot is a linked field: its declared type plus its slot within
// the object's storage. Int and reference fields live in the object's
// integer array (references hold handles); float fields live in the
// float array.
type FieldSlot struct {
	Name string
	Type Type
	Slot int
}

// Method is a method definition. Code operands referring to classes,
// fields and methods are resolved indices (see opcodes.go); the
// program-wide method ID is assigned by Link.
type Method struct {
	Class  *Class
	Name   string
	Static bool
	Params []Type // excluding the receiver for instance methods
	Ret    Type

	// MaxLocals is the number of local slots, including the receiver
	// (slot 0 of instance methods) and parameters.
	MaxLocals int
	// MaxStack is the operand stack bound; computed by Verify.
	MaxStack int
	Code     []Insn

	// Potential marks the method as a candidate for remote execution
	// (the paper's "potential method" class-file annotation).
	Potential bool
	// Attrs carries numeric attributes embedded in the class file: the
	// profiled compilation energies and curve-fit coefficients that the
	// paper stores as static final variables for the helper methods.
	Attrs map[string]float64

	// ID is the program-wide method id after Link.
	ID int
	// Overridden reports whether any linked subclass redefines this
	// method; the JIT uses it for devirtualization.
	Overridden bool

	// argKinds caches ArgKinds(); populated eagerly by Link so that
	// concurrent executions never write it.
	argKinds []Kind
}

// NumArgs returns the number of argument slots including the receiver.
func (m *Method) NumArgs() int {
	n := len(m.Params)
	if !m.Static {
		n++
	}
	return n
}

// ArgKinds returns the kinds of all argument slots, receiver first.
// After Link the result is a shared cached slice; callers must not
// modify it.
func (m *Method) ArgKinds() []Kind {
	if m.argKinds != nil {
		return m.argKinds
	}
	ks := make([]Kind, 0, m.NumArgs())
	if !m.Static {
		ks = append(ks, KRef)
	}
	for _, p := range m.Params {
		ks = append(ks, p.Kind)
	}
	return ks
}

// QName returns the qualified Class.method name.
func (m *Method) QName() string {
	if m.Class == nil {
		return m.Name
	}
	return m.Class.Name + "." + m.Name
}

// CodeSize returns the encoded bytecode size in bytes.
func (m *Method) CodeSize() int { return CodeBytes(m.Code) }

// Attr returns the named numeric attribute, or def when absent.
func (m *Method) Attr(name string, def float64) float64 {
	if m.Attrs == nil {
		return def
	}
	if v, ok := m.Attrs[name]; ok {
		return v
	}
	return def
}

// SetAttr stores a numeric attribute on the method.
func (m *Method) SetAttr(name string, v float64) {
	if m.Attrs == nil {
		m.Attrs = make(map[string]float64)
	}
	m.Attrs[name] = v
}

// Class is a class definition. Only single inheritance is supported,
// as in Java.
type Class struct {
	Name      string
	SuperName string // empty for root classes
	Fields    []Field
	Methods   []*Method

	// Linked state.
	Super      *Class
	ID         int
	layout     []FieldSlot
	numISlots  int
	numFSlots  int
	refSlots   []int
	vtable     map[string]*Method
	fieldBySig map[string]*FieldSlot
}

// NumISlots returns the number of integer+reference storage slots of
// an instance (after linking).
func (c *Class) NumISlots() int { return c.numISlots }

// NumFSlots returns the number of float storage slots of an instance.
func (c *Class) NumFSlots() int { return c.numFSlots }

// RefSlots returns the I-array slots that hold references; the
// serializer and any future GC use it to trace objects.
func (c *Class) RefSlots() []int { return c.refSlots }

// Layout returns every field of an instance (inherited first).
func (c *Class) Layout() []FieldSlot { return c.layout }

// FieldSlot returns the linked slot of the named field, searching the
// superclass chain, or nil when undefined.
func (c *Class) FieldSlot(name string) *FieldSlot {
	return c.fieldBySig[name]
}

// Resolve returns the method a virtual call to name dispatches to for
// receivers of this class, or nil when undefined.
func (c *Class) Resolve(name string) *Method {
	return c.vtable[name]
}

// Own returns the method defined directly on this class, or nil.
func (c *Class) Own(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// IsSubclassOf reports whether c equals or descends from anc.
func (c *Class) IsSubclassOf(anc *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == anc {
			return true
		}
	}
	return false
}

// Program is a linked set of classes: the unit that is verified,
// shipped to the server, and executed.
type Program struct {
	Classes []*Class
	// Methods is the global method table; INVOKESTATIC/INVOKEVIRTUAL
	// operands index into it.
	Methods []*Method

	classByName map[string]*Class
}

// Class returns the named class, or nil.
func (p *Program) Class(name string) *Class { return p.classByName[name] }

// Method returns the method with the given global id, or nil.
func (p *Program) Method(id int) *Method {
	if id < 0 || id >= len(p.Methods) {
		return nil
	}
	return p.Methods[id]
}

// FindMethod returns the named method of the named class (searching
// the superclass chain), or nil. This is the reflective lookup the
// server uses to invoke offloaded methods by name.
func (p *Program) FindMethod(class, method string) *Method {
	c := p.Class(class)
	if c == nil {
		return nil
	}
	if m := c.Resolve(method); m != nil {
		return m
	}
	// Static methods are not in vtables; search the chain directly.
	for x := c; x != nil; x = x.Super {
		if m := x.Own(method); m != nil {
			return m
		}
	}
	return nil
}

// PotentialMethods returns every method annotated as a candidate for
// remote execution, in method-table order.
func (p *Program) PotentialMethods() []*Method {
	var out []*Method
	for _, m := range p.Methods {
		if m.Potential {
			out = append(out, m)
		}
	}
	return out
}

// Link resolves superclasses, assigns field slots and class/method
// ids, builds vtables, and computes override information. It must be
// called once before verification or execution.
func (p *Program) Link() error {
	p.classByName = make(map[string]*Class, len(p.Classes))
	for _, c := range p.Classes {
		if _, dup := p.classByName[c.Name]; dup {
			return fmt.Errorf("%w: duplicate class %s", ErrLink, c.Name)
		}
		p.classByName[c.Name] = c
	}
	// Resolve supers and detect cycles.
	for _, c := range p.Classes {
		if c.SuperName == "" {
			c.Super = nil
			continue
		}
		s := p.classByName[c.SuperName]
		if s == nil {
			return fmt.Errorf("%w: class %s extends unknown %s", ErrLink, c.Name, c.SuperName)
		}
		c.Super = s
	}
	for _, c := range p.Classes {
		seen := map[*Class]bool{}
		for x := c; x != nil; x = x.Super {
			if seen[x] {
				return fmt.Errorf("%w: cyclic inheritance at %s", ErrLink, c.Name)
			}
			seen[x] = true
		}
	}
	// Link classes in topological (supers first) order.
	linked := map[*Class]bool{}
	var linkClass func(c *Class) error
	linkClass = func(c *Class) error {
		if linked[c] {
			return nil
		}
		if c.Super != nil {
			if err := linkClass(c.Super); err != nil {
				return err
			}
		}
		c.layout = nil
		c.fieldBySig = map[string]*FieldSlot{}
		c.vtable = map[string]*Method{}
		if c.Super != nil {
			c.layout = append(c.layout, c.Super.layout...)
			c.numISlots = c.Super.numISlots
			c.numFSlots = c.Super.numFSlots
			c.refSlots = append([]int(nil), c.Super.refSlots...)
			for k, v := range c.Super.vtable {
				c.vtable[k] = v
			}
		} else {
			c.numISlots, c.numFSlots, c.refSlots = 0, 0, nil
		}
		seenF := map[string]bool{}
		for _, f := range c.Fields {
			if seenF[f.Name] {
				return fmt.Errorf("%w: duplicate field %s.%s", ErrLink, c.Name, f.Name)
			}
			seenF[f.Name] = true
			var slot int
			switch f.Type.Kind {
			case KFloat:
				slot = c.numFSlots
				c.numFSlots++
			case KInt:
				slot = c.numISlots
				c.numISlots++
			case KRef:
				slot = c.numISlots
				c.numISlots++
				c.refSlots = append(c.refSlots, slot)
			default:
				return fmt.Errorf("%w: field %s.%s has void type", ErrLink, c.Name, f.Name)
			}
			c.layout = append(c.layout, FieldSlot{Name: f.Name, Type: f.Type, Slot: slot})
		}
		for i := range c.layout {
			c.fieldBySig[c.layout[i].Name] = &c.layout[i]
		}
		seenM := map[string]bool{}
		for _, m := range c.Methods {
			if seenM[m.Name] {
				return fmt.Errorf("%w: duplicate method %s.%s", ErrLink, c.Name, m.Name)
			}
			seenM[m.Name] = true
			m.Class = c
			if !m.Static {
				c.vtable[m.Name] = m
			}
		}
		linked[c] = true
		return nil
	}
	for _, c := range p.Classes {
		if err := linkClass(c); err != nil {
			return err
		}
	}
	// Assign ids and the global method table; precompute the argument
	// kind vectors so hot call paths (and concurrent executions) never
	// rebuild them.
	p.Methods = p.Methods[:0]
	for i, c := range p.Classes {
		c.ID = i
		for _, m := range c.Methods {
			m.ID = len(p.Methods)
			p.Methods = append(p.Methods, m)
			m.argKinds = nil
			m.argKinds = m.ArgKinds()
		}
	}
	// Override analysis for devirtualization.
	for _, m := range p.Methods {
		m.Overridden = false
	}
	for _, c := range p.Classes {
		if c.Super == nil {
			continue
		}
		for _, m := range c.Methods {
			if m.Static {
				continue
			}
			if base := c.Super.Resolve(m.Name); base != nil {
				for b := base; b != nil; {
					b.Overridden = true
					if b.Class.Super != nil {
						b = b.Class.Super.Resolve(m.Name)
					} else {
						b = nil
					}
				}
			}
		}
	}
	return nil
}

// MustLink links the program and panics on error; for tests and
// statically known-good programs built by the MJ compiler.
func (p *Program) MustLink() *Program {
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p
}
