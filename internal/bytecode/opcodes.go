package bytecode

import "fmt"

// Opcode is an MJVM bytecode operation.
type Opcode uint8

// MJVM bytecodes. The operand column refers to Insn.A (int32) and
// Insn.F (float64); branch targets are instruction indices within the
// method (the binary encoding uses byte offsets and the decoder
// rebuilds indices).
const (
	NOP Opcode = iota

	ACONSTNULL // push null
	ICONST     // push A
	FCONST     // push F

	ILOAD  // push int local A
	FLOAD  // push float local A
	ALOAD  // push ref local A
	ISTORE // pop into int local A
	FSTORE // pop into float local A
	ASTORE // pop into ref local A

	DUP  // duplicate top
	POP  // discard top
	SWAP // swap top two (same-kind values)

	IADD
	ISUB
	IMUL
	IDIV
	IREM
	INEG
	ISHL
	ISHR
	IAND
	IOR
	IXOR

	FADD
	FSUB
	FMUL
	FDIV
	FNEG

	I2F
	F2I

	GOTO // jump to A

	IFEQ // pop int; branch to A if == 0
	IFNE
	IFLT
	IFGE
	IFGT
	IFLE

	IFICMPEQ // pop two ints; branch if a == b
	IFICMPNE
	IFICMPLT
	IFICMPGE
	IFICMPGT
	IFICMPLE

	IFFCMPEQ // pop two floats; branch if a == b
	IFFCMPNE
	IFFCMPLT
	IFFCMPGE

	IFACMPEQ  // pop two refs; branch if identical
	IFACMPNE  // pop two refs; branch if different
	IFNULL    // pop ref; branch if null
	IFNONNULL // pop ref; branch if non-null

	NEWARRAY    // pop length; push new array of element kind A
	IALOAD      // pop index, arrayref; push int element
	IASTORE     // pop value, index, arrayref
	FALOAD      // pop index, arrayref; push float element
	FASTORE     // pop value, index, arrayref
	AALOAD      // pop index, arrayref; push ref element
	AASTORE     // pop value, index, arrayref
	ARRAYLENGTH // pop arrayref; push length

	NEW   // push new instance of class A
	GETFI // pop objref; push int field at slot A
	PUTFI // pop value, objref; store int field at slot A
	GETFF // pop objref; push float field at slot A
	PUTFF // pop value, objref; store float field at slot A
	GETFA // pop objref; push ref field at slot A
	PUTFA // pop value, objref; store ref field at slot A

	INVOKESTATIC  // call static method with global id A
	INVOKEVIRTUAL // call virtual method (statically resolved to id A)

	RETURN  // return void
	IRETURN // return int
	FRETURN // return float
	ARETURN // return ref

	numOpcodes
)

// Insn is one decoded bytecode instruction.
type Insn struct {
	Op Opcode
	A  int32   // integer operand: constant, local, slot, target, id
	F  float64 // float operand for FCONST
}

// opMeta describes static properties of each opcode.
type opMeta struct {
	name string
	// encodedBytes is the size of the instruction in the binary class
	// file (1 opcode byte + operand bytes); it also drives interpreter
	// fetch addressing.
	encodedBytes int
	isBranch     bool
}

var opcodeTable = [numOpcodes]opMeta{
	NOP:           {"nop", 1, false},
	ACONSTNULL:    {"aconst_null", 1, false},
	ICONST:        {"iconst", 5, false},
	FCONST:        {"fconst", 9, false},
	ILOAD:         {"iload", 2, false},
	FLOAD:         {"fload", 2, false},
	ALOAD:         {"aload", 2, false},
	ISTORE:        {"istore", 2, false},
	FSTORE:        {"fstore", 2, false},
	ASTORE:        {"astore", 2, false},
	DUP:           {"dup", 1, false},
	POP:           {"pop", 1, false},
	SWAP:          {"swap", 1, false},
	IADD:          {"iadd", 1, false},
	ISUB:          {"isub", 1, false},
	IMUL:          {"imul", 1, false},
	IDIV:          {"idiv", 1, false},
	IREM:          {"irem", 1, false},
	INEG:          {"ineg", 1, false},
	ISHL:          {"ishl", 1, false},
	ISHR:          {"ishr", 1, false},
	IAND:          {"iand", 1, false},
	IOR:           {"ior", 1, false},
	IXOR:          {"ixor", 1, false},
	FADD:          {"fadd", 1, false},
	FSUB:          {"fsub", 1, false},
	FMUL:          {"fmul", 1, false},
	FDIV:          {"fdiv", 1, false},
	FNEG:          {"fneg", 1, false},
	I2F:           {"i2f", 1, false},
	F2I:           {"f2i", 1, false},
	GOTO:          {"goto", 3, true},
	IFEQ:          {"ifeq", 3, true},
	IFNE:          {"ifne", 3, true},
	IFLT:          {"iflt", 3, true},
	IFGE:          {"ifge", 3, true},
	IFGT:          {"ifgt", 3, true},
	IFLE:          {"ifle", 3, true},
	IFICMPEQ:      {"if_icmpeq", 3, true},
	IFICMPNE:      {"if_icmpne", 3, true},
	IFICMPLT:      {"if_icmplt", 3, true},
	IFICMPGE:      {"if_icmpge", 3, true},
	IFICMPGT:      {"if_icmpgt", 3, true},
	IFICMPLE:      {"if_icmple", 3, true},
	IFFCMPEQ:      {"if_fcmpeq", 3, true},
	IFFCMPNE:      {"if_fcmpne", 3, true},
	IFFCMPLT:      {"if_fcmplt", 3, true},
	IFFCMPGE:      {"if_fcmpge", 3, true},
	IFACMPEQ:      {"if_acmpeq", 3, true},
	IFACMPNE:      {"if_acmpne", 3, true},
	IFNULL:        {"ifnull", 3, true},
	IFNONNULL:     {"ifnonnull", 3, true},
	NEWARRAY:      {"newarray", 2, false},
	IALOAD:        {"iaload", 1, false},
	IASTORE:       {"iastore", 1, false},
	FALOAD:        {"faload", 1, false},
	FASTORE:       {"fastore", 1, false},
	AALOAD:        {"aaload", 1, false},
	AASTORE:       {"aastore", 1, false},
	ARRAYLENGTH:   {"arraylength", 1, false},
	NEW:           {"new", 3, false},
	GETFI:         {"getfi", 2, false},
	PUTFI:         {"putfi", 2, false},
	GETFF:         {"getff", 2, false},
	PUTFF:         {"putff", 2, false},
	GETFA:         {"getfa", 2, false},
	PUTFA:         {"putfa", 2, false},
	INVOKESTATIC:  {"invokestatic", 3, false},
	INVOKEVIRTUAL: {"invokevirtual", 3, false},
	RETURN:        {"return", 1, false},
	IRETURN:       {"ireturn", 1, false},
	FRETURN:       {"freturn", 1, false},
	ARETURN:       {"areturn", 1, false},
}

// Name returns the mnemonic of the opcode.
func (o Opcode) Name() string {
	if o >= numOpcodes {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opcodeTable[o].name
}

// EncodedBytes returns the size of the instruction in the binary
// class-file encoding.
func (o Opcode) EncodedBytes() int {
	if o >= numOpcodes {
		return 1
	}
	return opcodeTable[o].encodedBytes
}

// IsBranch reports whether the opcode's A operand is a branch target.
func (o Opcode) IsBranch() bool {
	if o >= numOpcodes {
		return false
	}
	return opcodeTable[o].isBranch
}

// Valid reports whether the opcode is defined.
func (o Opcode) Valid() bool { return o < numOpcodes }

// String renders the instruction for disassembly listings.
func (in Insn) String() string {
	switch in.Op {
	case FCONST:
		return fmt.Sprintf("%-13s %g", in.Op.Name(), in.F)
	case NOP, ACONSTNULL, DUP, POP, SWAP,
		IADD, ISUB, IMUL, IDIV, IREM, INEG, ISHL, ISHR, IAND, IOR, IXOR,
		FADD, FSUB, FMUL, FDIV, FNEG, I2F, F2I,
		IALOAD, IASTORE, FALOAD, FASTORE, AALOAD, AASTORE, ARRAYLENGTH,
		RETURN, IRETURN, FRETURN, ARETURN:
		return in.Op.Name()
	default:
		return fmt.Sprintf("%-13s %d", in.Op.Name(), in.A)
	}
}

// CodeBytes returns the encoded byte size of a code sequence.
func CodeBytes(code []Insn) int {
	n := 0
	for _, in := range code {
		n += in.Op.EncodedBytes()
	}
	return n
}
