package bytecode

import (
	"errors"
	"strings"
	"testing"
)

// testProgram builds a small two-class program exercising fields,
// inheritance, statics and virtual dispatch.
//
//	class Point { int x; int y; float w; Point next;
//	              int getX() { return x; }
//	              static int add(int a, int b) { return a+b; } }
//	class Point3 extends Point { int z;
//	              int getX() { return x + z; } }
func testProgram(t testing.TB) *Program {
	t.Helper()
	getX := &Method{
		Name: "getX", Ret: TInt, MaxLocals: 1,
		Code: NewAsm().
			OpA(ALOAD, 0).
			OpA(GETFI, 0). // x
			Op(IRETURN).
			MustFinish(),
	}
	add := &Method{
		Name: "add", Static: true, Params: []Type{TInt, TInt}, Ret: TInt, MaxLocals: 2,
		Code: NewAsm().
			OpA(ILOAD, 0).
			OpA(ILOAD, 1).
			Op(IADD).
			Op(IRETURN).
			MustFinish(),
	}
	point := &Class{
		Name: "Point",
		Fields: []Field{
			{Name: "x", Type: TInt},
			{Name: "y", Type: TInt},
			{Name: "w", Type: TFloat},
			{Name: "next", Type: TObject("Point")},
		},
		Methods: []*Method{getX, add},
	}
	getX3 := &Method{
		Name: "getX", Ret: TInt, MaxLocals: 1,
		Code: NewAsm().
			OpA(ALOAD, 0).
			OpA(GETFI, 0). // x
			OpA(ALOAD, 0).
			OpA(GETFI, 2). // z (slot after x, y)
			Op(IADD).
			Op(IRETURN).
			MustFinish(),
	}
	point3 := &Class{
		Name:      "Point3",
		SuperName: "Point",
		Fields:    []Field{{Name: "z", Type: TInt}},
		Methods:   []*Method{getX3},
	}
	p := &Program{Classes: []*Class{point, point3}}
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func TestLinkLayout(t *testing.T) {
	p := testProgram(t)
	pt := p.Class("Point")
	if pt.NumISlots() != 3 { // x, y, next
		t.Errorf("Point int slots = %d, want 3", pt.NumISlots())
	}
	if pt.NumFSlots() != 1 {
		t.Errorf("Point float slots = %d, want 1", pt.NumFSlots())
	}
	if got := pt.RefSlots(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Point ref slots = %v, want [2]", got)
	}
	p3 := p.Class("Point3")
	if p3.NumISlots() != 4 { // inherited x, y, next + z
		t.Errorf("Point3 int slots = %d, want 4", p3.NumISlots())
	}
	fz := p3.FieldSlot("z")
	if fz == nil || fz.Slot != 3 {
		t.Errorf("Point3.z slot = %+v, want slot 3", fz)
	}
	if fx := p3.FieldSlot("x"); fx == nil || fx.Slot != 0 {
		t.Errorf("inherited Point3.x slot = %+v, want slot 0", fx)
	}
}

func TestLinkVtableAndOverride(t *testing.T) {
	p := testProgram(t)
	pt, p3 := p.Class("Point"), p.Class("Point3")
	if pt.Resolve("getX") == p3.Resolve("getX") {
		t.Error("Point3 should override getX")
	}
	if got := p3.Resolve("getX"); got.Class != p3 {
		t.Errorf("Point3 vtable getX from %s", got.Class.Name)
	}
	base := pt.Resolve("getX")
	if !base.Overridden {
		t.Error("Point.getX should be marked overridden")
	}
	if p3.Resolve("getX").Overridden {
		t.Error("leaf override should not be marked overridden")
	}
	if !p3.IsSubclassOf(pt) || pt.IsSubclassOf(p3) {
		t.Error("IsSubclassOf wrong")
	}
}

func TestFindMethodReflective(t *testing.T) {
	p := testProgram(t)
	if m := p.FindMethod("Point3", "getX"); m == nil || m.Class.Name != "Point3" {
		t.Error("FindMethod should resolve virtual override")
	}
	if m := p.FindMethod("Point3", "add"); m == nil || !m.Static {
		t.Error("FindMethod should find inherited static method")
	}
	if p.FindMethod("Nope", "x") != nil || p.FindMethod("Point", "nope") != nil {
		t.Error("FindMethod should return nil for unknown names")
	}
}

func TestLinkErrors(t *testing.T) {
	cases := map[string]*Program{
		"unknown super": {Classes: []*Class{{Name: "A", SuperName: "B"}}},
		"dup class":     {Classes: []*Class{{Name: "A"}, {Name: "A"}}},
		"cycle": {Classes: []*Class{
			{Name: "A", SuperName: "B"}, {Name: "B", SuperName: "A"}}},
		"dup field": {Classes: []*Class{{Name: "A",
			Fields: []Field{{Name: "f", Type: TInt}, {Name: "f", Type: TInt}}}}},
		"dup method": {Classes: []*Class{{Name: "A", Methods: []*Method{
			{Name: "m", Ret: TVoid}, {Name: "m", Ret: TVoid}}}}},
		"void field": {Classes: []*Class{{Name: "A",
			Fields: []Field{{Name: "f", Type: TVoid}}}}},
	}
	for name, p := range cases {
		if err := p.Link(); !errors.Is(err, ErrLink) {
			t.Errorf("%s: err = %v, want ErrLink", name, err)
		}
	}
}

func TestVerifyAcceptsTestProgram(t *testing.T) {
	p := testProgram(t)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	add := p.FindMethod("Point", "add")
	if add.MaxStack != 2 {
		t.Errorf("add MaxStack = %d, want 2", add.MaxStack)
	}
}

func TestVerifyLoop(t *testing.T) {
	// int f(int n) { int s=0; while (n > 0) { s += n; n--; } return s; }
	m := &Method{
		Name: "f", Static: true, Params: []Type{TInt}, Ret: TInt, MaxLocals: 2,
		Code: NewAsm().
			Iconst(0).
			OpA(ISTORE, 1).
			Label("loop").
			OpA(ILOAD, 0).
			Branch(IFLE, "done").
			OpA(ILOAD, 1).
			OpA(ILOAD, 0).
			Op(IADD).
			OpA(ISTORE, 1).
			OpA(ILOAD, 0).
			Iconst(1).
			Op(ISUB).
			OpA(ISTORE, 0).
			Branch(GOTO, "loop").
			Label("done").
			OpA(ILOAD, 1).
			Op(IRETURN).
			MustFinish(),
	}
	p := &Program{Classes: []*Class{{Name: "T", Methods: []*Method{m}}}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func badMethod(code []Insn, maxLocals int, ret Type, params ...Type) *Program {
	m := &Method{Name: "bad", Static: true, Params: params, Ret: ret, MaxLocals: maxLocals, Code: code}
	p := &Program{Classes: []*Class{{Name: "T", Methods: []*Method{m}}}}
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p
}

func TestVerifyRejects(t *testing.T) {
	cases := map[string]*Program{
		"empty body": badMethod(nil, 0, TVoid),
		"stack underflow": badMethod(
			[]Insn{{Op: IADD}, {Op: RETURN}}, 0, TVoid),
		"kind mismatch": badMethod(
			NewAsm().Iconst(1).Fconst(2).Op(IADD).Op(RETURN).MustFinish(), 0, TVoid),
		"bad local": badMethod(
			NewAsm().OpA(ILOAD, 5).Op(RETURN).MustFinish(), 1, TVoid),
		"undefined local": badMethod(
			NewAsm().OpA(ILOAD, 0).Op(RETURN).MustFinish(), 1, TVoid),
		"retype local": badMethod(
			NewAsm().Iconst(1).OpA(ISTORE, 0).Fconst(1).OpA(FSTORE, 0).Op(RETURN).MustFinish(), 1, TVoid),
		"fall off end": badMethod(
			NewAsm().Iconst(1).Op(POP).MustFinish(), 0, TVoid),
		"wrong return kind": badMethod(
			NewAsm().Iconst(1).Op(IRETURN).MustFinish(), 0, TFloat),
		"branch out of range": badMethod(
			[]Insn{{Op: GOTO, A: 99}}, 0, TVoid),
		"bad class id": badMethod(
			NewAsm().OpA(NEW, 42).Op(POP).Op(RETURN).MustFinish(), 0, TVoid),
		"bad method id": badMethod(
			NewAsm().OpA(INVOKESTATIC, 42).Op(RETURN).MustFinish(), 0, TVoid),
		"bad elem kind": badMethod(
			NewAsm().Iconst(3).OpA(NEWARRAY, 9).Op(POP).Op(RETURN).MustFinish(), 0, TVoid),
		"join mismatch": badMethod(
			NewAsm().
				OpA(ILOAD, 0).
				Branch(IFEQ, "b").
				Iconst(1). // one path pushes
				Label("b").
				Op(RETURN). // other path arrives with empty stack
				MustFinish(), 1, TVoid, TInt),
	}
	for name, p := range cases {
		if err := p.Verify(); !errors.Is(err, ErrVerify) {
			t.Errorf("%s: err = %v, want ErrVerify", name, err)
		}
	}
}

func TestVerifyCallKinds(t *testing.T) {
	p := testProgram(t)
	add := p.FindMethod("Point", "add")
	// Call add(int,int) with a float on the stack: must be rejected.
	m := &Method{
		Name: "caller", Static: true, Ret: TInt, MaxLocals: 0,
		Code: NewAsm().
			Iconst(1).
			Fconst(2).
			OpA(INVOKESTATIC, int32(add.ID)).
			Op(IRETURN).
			MustFinish(),
	}
	p2 := &Program{Classes: append(p.Classes, &Class{Name: "C", Methods: []*Method{m}})}
	if err := p2.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Verify(); !errors.Is(err, ErrVerify) {
		t.Errorf("float arg to int param: err = %v, want ErrVerify", err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := testProgram(t)
	p.FindMethod("Point", "getX").Potential = true
	p.FindMethod("Point", "getX").SetAttr("compileL1", 123.5)

	b, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	q, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := q.Link(); err != nil {
		t.Fatalf("relink: %v", err)
	}
	if err := q.Verify(); err != nil {
		t.Fatalf("reverify: %v", err)
	}
	if len(q.Classes) != len(p.Classes) || len(q.Methods) != len(p.Methods) {
		t.Fatal("class/method counts changed in roundtrip")
	}
	g := q.FindMethod("Point", "getX")
	if !g.Potential {
		t.Error("Potential flag lost")
	}
	if g.Attr("compileL1", 0) != 123.5 {
		t.Error("attribute lost")
	}
	for i, m := range p.Methods {
		qm := q.Methods[i]
		if len(qm.Code) != len(m.Code) {
			t.Fatalf("%s code length changed", m.QName())
		}
		for j := range m.Code {
			if m.Code[j] != qm.Code[j] {
				t.Errorf("%s insn %d: %v != %v", m.QName(), j, m.Code[j], qm.Code[j])
			}
		}
	}
	// Re-encoding must be byte-identical (deterministic format).
	b2, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("encoding is not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrDecode) {
		t.Errorf("short input: %v, want ErrDecode", err)
	}
	p := testProgram(t)
	b, _ := p.Encode()
	b[0] ^= 0xFF
	if _, err := Decode(b); !errors.Is(err, ErrDecode) {
		t.Errorf("bad magic: %v, want ErrDecode", err)
	}
	b[0] ^= 0xFF
	if _, err := Decode(b[:len(b)-3]); !errors.Is(err, ErrDecode) {
		t.Errorf("truncated: %v, want ErrDecode", err)
	}
}

func TestAsmLabels(t *testing.T) {
	code, err := NewAsm().
		Branch(GOTO, "end").
		Op(NOP).
		Label("end").
		Op(RETURN).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	if code[0].A != 2 {
		t.Errorf("forward label resolved to %d, want 2", code[0].A)
	}
	if _, err := NewAsm().Branch(GOTO, "missing").Finish(); err == nil {
		t.Error("undefined label should error")
	}
}

func TestAsmPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate label", func() {
		NewAsm().Label("x").Label("x")
	})
	mustPanic("non-branch", func() {
		NewAsm().Branch(IADD, "x")
	})
}

func TestCodeBytesMatchesTable(t *testing.T) {
	code := NewAsm().Iconst(1).Fconst(2).OpA(ILOAD, 0).Op(IADD).Branch(GOTO, "l").Label("l").Op(RETURN).MustFinish()
	want := 5 + 9 + 2 + 1 + 3 + 1
	if got := CodeBytes(code); got != want {
		t.Errorf("CodeBytes = %d, want %d", got, want)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	p := testProgram(t)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	s := Disassemble(p.FindMethod("Point", "add"))
	for _, want := range []string{"Point.add", "iload", "iadd", "ireturn"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestTypeHelpers(t *testing.T) {
	at := TArray(TInt)
	if !at.IsArray() || at.String() != "int[]" {
		t.Errorf("TArray(int) = %v", at)
	}
	if !TObject("Foo").Equal(TObject("Foo")) || TObject("Foo").Equal(TObject("Bar")) {
		t.Error("Type.Equal on objects wrong")
	}
	if !TArray(TFloat).Equal(TArray(TFloat)) || TArray(TFloat).Equal(TArray(TInt)) {
		t.Error("Type.Equal on arrays wrong")
	}
	if TArray(TInt).Equal(TObject("X")) {
		t.Error("array should not equal object")
	}
	if ElemKindOf(TInt) != ElemInt || ElemKindOf(TFloat) != ElemFloat || ElemKindOf(TObject("A")) != ElemRef {
		t.Error("ElemKindOf wrong")
	}
	if got := Signature("m", []Type{TInt, TArray(TFloat)}, TVoid); got != "void m(int, float[])" {
		t.Errorf("Signature = %q", got)
	}
}

func TestMethodArgKinds(t *testing.T) {
	p := testProgram(t)
	getX := p.Class("Point").Resolve("getX")
	if ks := getX.ArgKinds(); len(ks) != 1 || ks[0] != KRef {
		t.Errorf("instance ArgKinds = %v", ks)
	}
	add := p.FindMethod("Point", "add")
	if ks := add.ArgKinds(); len(ks) != 2 || ks[0] != KInt {
		t.Errorf("static ArgKinds = %v", ks)
	}
	if add.NumArgs() != 2 || getX.NumArgs() != 1 {
		t.Error("NumArgs wrong")
	}
}

func TestInsnStringAllOpcodes(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		in := Insn{Op: op, A: 3, F: 1.5}
		if in.String() == "" {
			t.Errorf("empty rendering for %s", op.Name())
		}
		if op.EncodedBytes() < 1 || op.EncodedBytes() > 9 {
			t.Errorf("%s: odd encoded size %d", op.Name(), op.EncodedBytes())
		}
	}
	if Opcode(200).Name() == "" || Opcode(200).EncodedBytes() != 1 || Opcode(200).IsBranch() {
		t.Error("out-of-range opcode accessors misbehave")
	}
}

func TestEncodeOperandRangeErrors(t *testing.T) {
	// A local index beyond one byte cannot be encoded.
	m := &Method{Name: "m", Static: true, Ret: TVoid, MaxLocals: 300,
		Code: []Insn{{Op: ILOAD, A: 299}, {Op: POP}, {Op: RETURN}}}
	p := &Program{Classes: []*Class{{Name: "T", Methods: []*Method{m}}}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Encode(); err == nil {
		t.Error("1-byte operand overflow should fail to encode")
	}
	// A branch target beyond two bytes cannot be encoded.
	m.Code = []Insn{{Op: GOTO, A: 70000}, {Op: RETURN}}
	m.MaxLocals = 0
	if _, err := p.Encode(); err == nil {
		t.Error("2-byte operand overflow should fail to encode")
	}
}

func TestMethodAttrHelpers(t *testing.T) {
	m := &Method{Name: "m"}
	if m.Attr("missing", -7) != -7 {
		t.Error("default not returned")
	}
	m.SetAttr("k", 2.5)
	if m.Attr("k", 0) != 2.5 {
		t.Error("attr not stored")
	}
	if m.Attr("other", 1) != 1 {
		t.Error("absent key should default")
	}
}

func TestVerifySwapMixedKinds(t *testing.T) {
	// SWAP across kinds is legal and must be tracked by the verifier.
	m := &Method{Name: "m", Static: true, Params: []Type{TInt, TFloat}, Ret: TInt, MaxLocals: 2,
		Code: NewAsm().
			OpA(ILOAD, 0).
			OpA(FLOAD, 1).
			Op(SWAP). // [f i]
			Op(IRETURN).
			MustFinish()}
	p := &Program{Classes: []*Class{{Name: "T", Methods: []*Method{m}}}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("swap of mixed kinds should verify: %v", err)
	}
}
