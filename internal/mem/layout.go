package mem

// The simulated client has a flat 32-bit physical address space laid
// out in fixed regions. Actual data lives in Go structures inside the
// VM; these synthetic addresses exist so that the cache simulator sees
// realistic locality (sequential code, object fields on common lines,
// stack frames reused hot).
const (
	// CodeBase is where compiled native method bodies are placed.
	CodeBase uint64 = 0x0040_0000
	// BytecodeBase is where class files (interpreted bytecode streams)
	// are placed; the interpreter fetches bytecodes through the D-cache
	// from this region.
	BytecodeBase uint64 = 0x00C0_0000
	// HeapBase is the start of the object heap.
	HeapBase uint64 = 0x0100_0000
	// StackBase is the top of the downward-growing frame stack.
	StackBase uint64 = 0x01F0_0000
	// DRAMSize is the client's 32 MB DRAM module.
	DRAMSize uint64 = 32 << 20
)

// Allocator hands out addresses in a region with bump allocation.
// It is used for code placement and heap objects.
type Allocator struct {
	base uint64
	next uint64
	end  uint64
}

// NewAllocator returns a bump allocator over [base, base+size).
func NewAllocator(base, size uint64) *Allocator {
	return &Allocator{base: base, next: base, end: base + size}
}

// Alloc reserves n bytes, aligned to align (a power of two), and
// returns the starting address. When the region is exhausted it wraps
// around: the simulation only needs plausible addresses, not a real
// out-of-memory model.
func (a *Allocator) Alloc(n uint64, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	p := (a.next + align - 1) &^ (align - 1)
	if p+n > a.end {
		p = (a.base + align - 1) &^ (align - 1)
	}
	a.next = p + n
	return p
}

// Used reports the number of bytes handed out since the last wrap.
func (a *Allocator) Used() uint64 { return a.next - a.base }

// Reset returns the allocator to an empty state.
func (a *Allocator) Reset() { a.next = a.base }
