// Package mem simulates the memory hierarchy of the paper's mobile
// client: an on-chip 16 KB direct-mapped instruction cache, an 8 KB
// direct-mapped data cache, and an off-chip 32 MB DRAM module. Cache
// hits are free (their energy is folded into the Fig 1 per-instruction
// values, which were measured with on-chip caches present); misses
// transfer a full line from DRAM, charging the Fig 1 main-memory energy
// per word and stalling the pipeline.
package mem

import (
	"fmt"

	"greenvm/internal/energy"
)

// CacheConfig describes a direct-mapped cache.
type CacheConfig struct {
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the line size. Must be a power of two.
	LineBytes int
}

// Lines returns the number of lines in the cache.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Cache is a direct-mapped cache with valid/tag state and hit/miss
// counters. It models placement only; data contents live in the VM.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	indexMask uint64
	tags      []uint64
	valid     []bool

	Hits   uint64
	Misses uint64
}

// NewCache returns an empty cache. It panics if the configuration is
// not a power-of-two geometry, which indicates a programming error in
// the platform definition rather than a runtime condition.
func NewCache(cfg CacheConfig) *Cache {
	if !isPow2(cfg.SizeBytes) || !isPow2(cfg.LineBytes) || cfg.LineBytes > cfg.SizeBytes {
		panic(fmt.Sprintf("mem: invalid cache geometry %+v", cfg))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	n := cfg.Lines()
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		indexMask: uint64(n - 1),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, updating the cache state, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	idx := line & c.indexMask
	if c.valid[idx] && c.tags[idx] == line {
		c.Hits++
		return true
	}
	c.valid[idx] = true
	c.tags[idx] = line
	c.Misses++
	return false
}

// Flush invalidates every line. Used between independent simulations.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// MissRate returns misses / accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Hierarchy bundles the client's I-cache, D-cache and DRAM cost model
// and charges an energy.Account for the traffic it sees.
type Hierarchy struct {
	ICache *Cache
	DCache *Cache
	model  *energy.CPUModel
	acct   *energy.Account
}

// DefaultClientHierarchy returns the paper's client memory system:
// 16 KB I-cache and 8 KB D-cache, direct-mapped, 32-byte lines.
func DefaultClientHierarchy(model *energy.CPUModel, acct *energy.Account) *Hierarchy {
	return &Hierarchy{
		ICache: NewCache(CacheConfig{SizeBytes: 16 * 1024, LineBytes: 32}),
		DCache: NewCache(CacheConfig{SizeBytes: 8 * 1024, LineBytes: 32}),
		model:  model,
		acct:   acct,
	}
}

// SetAccount redirects future charges to acct.
func (h *Hierarchy) SetAccount(acct *energy.Account) { h.acct = acct }

// Account returns the account currently being charged.
func (h *Hierarchy) Account() *energy.Account { return h.acct }

func (h *Hierarchy) miss() {
	h.acct.AddMemAccess(uint64(h.model.CacheLineWords))
	h.acct.AddStallCycles(uint64(h.model.MissPenaltyCycles))
}

// FetchInstr models an instruction fetch at addr.
func (h *Hierarchy) FetchInstr(addr uint64) {
	if !h.ICache.Access(addr) {
		h.miss()
	}
}

// Data models a data access of n consecutive 32-bit words at addr.
func (h *Hierarchy) Data(addr uint64, words int) {
	for i := 0; i < words; i++ {
		if !h.DCache.Access(addr + uint64(4*i)) {
			h.miss()
		}
	}
}

// Flush invalidates both caches.
func (h *Hierarchy) Flush() {
	h.ICache.Flush()
	h.DCache.Flush()
}
