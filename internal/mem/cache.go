// Package mem simulates the memory hierarchy of the paper's mobile
// client: an on-chip 16 KB direct-mapped instruction cache, an 8 KB
// direct-mapped data cache, and an off-chip 32 MB DRAM module. Cache
// hits are free (their energy is folded into the Fig 1 per-instruction
// values, which were measured with on-chip caches present); misses
// transfer a full line from DRAM, charging the Fig 1 main-memory energy
// per word and stalling the pipeline.
package mem

import (
	"fmt"

	"greenvm/internal/energy"
)

// CacheConfig describes a direct-mapped cache.
type CacheConfig struct {
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the line size. Must be a power of two.
	LineBytes int
}

// Lines returns the number of lines in the cache.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Cache is a direct-mapped cache with valid/tag state and hit/miss
// counters. It models placement only; data contents live in the VM.
// Each entry stores line+1 (0 = invalid) so a lookup touches a single
// word — this sits on the simulator's hottest path.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	indexMask uint64
	lines     []uint64

	// lastLine is the most recently accessed line. It is resident by
	// construction — every access either hits it or installs it — so a
	// single compare short-circuits the array lookup for the highly
	// repetitive line-local traffic simulators generate (operand
	// stacks, straight-line fetch). noLine after Flush.
	lastLine uint64

	// gen counts installs (and flushes). A line proven resident at
	// generation g is still resident while gen == g: installs are the
	// only writes to the placement array. LineTrackers rely on this to
	// prove hits without touching the array. Starts at 1 so a
	// zero-valued tracker can never validate.
	gen uint64

	Hits   uint64
	Misses uint64
}

// LineTracker caches residency of a single line for one traffic
// source (an operand stack, a spill frame, a bytecode stream, an
// array being walked). Distinct sources interleave in the simulated
// loops, so the cache-global lastLine ping-pongs; a per-source tracker
// keeps its locality. The zero value is empty.
type LineTracker struct {
	line uint64
	gen  uint64
}

// noLine is a sentinel no real address maps to (lines are addr>>shift,
// so the top bits are always zero).
const noLine = ^uint64(0)

// NewCache returns an empty cache. It panics if the configuration is
// not a power-of-two geometry, which indicates a programming error in
// the platform definition rather than a runtime condition.
func NewCache(cfg CacheConfig) *Cache {
	if !isPow2(cfg.SizeBytes) || !isPow2(cfg.LineBytes) || cfg.LineBytes > cfg.SizeBytes {
		panic(fmt.Sprintf("mem: invalid cache geometry %+v", cfg))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	n := cfg.Lines()
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		indexMask: uint64(n - 1),
		lines:     make([]uint64, n),
		lastLine:  noLine,
		gen:       1,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineOf returns the line number addr falls on. Two addresses with
// equal line numbers always hit or miss together.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Access looks up addr, updating the cache state, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	if line == c.lastLine {
		c.Hits++
		return true
	}
	idx := line & c.indexMask
	if c.lines[idx] == line+1 {
		c.lastLine = line
		c.Hits++
		return true
	}
	c.lines[idx] = line + 1
	c.lastLine = line
	c.gen++
	c.Misses++
	return false
}

// AddHits credits n hits without a lookup. Execution loops use it to
// batch accesses they can prove resident (e.g. straight-line
// instruction fetches from the line the previous fetch installed).
func (c *Cache) AddHits(n uint64) { c.Hits += n }

// Flush invalidates every line. Used between independent simulations.
func (c *Cache) Flush() {
	clear(c.lines)
	c.lastLine = noLine
	c.gen++
}

// MissRate returns misses / accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Hierarchy bundles the client's I-cache, D-cache and DRAM cost model
// and charges an energy.Account for the traffic it sees.
type Hierarchy struct {
	ICache *Cache
	DCache *Cache
	model  *energy.CPUModel
	acct   *energy.Account
}

// DefaultClientHierarchy returns the paper's client memory system:
// 16 KB I-cache and 8 KB D-cache, direct-mapped, 32-byte lines.
func DefaultClientHierarchy(model *energy.CPUModel, acct *energy.Account) *Hierarchy {
	return &Hierarchy{
		ICache: NewCache(CacheConfig{SizeBytes: 16 * 1024, LineBytes: 32}),
		DCache: NewCache(CacheConfig{SizeBytes: 8 * 1024, LineBytes: 32}),
		model:  model,
		acct:   acct,
	}
}

// SetAccount redirects future charges to acct.
func (h *Hierarchy) SetAccount(acct *energy.Account) { h.acct = acct }

// Account returns the account currently being charged.
func (h *Hierarchy) Account() *energy.Account { return h.acct }

func (h *Hierarchy) miss() {
	h.acct.AddMemAccess(uint64(h.model.CacheLineWords))
	h.acct.AddStallCycles(uint64(h.model.MissPenaltyCycles))
}

// FetchInstr models an instruction fetch at addr.
func (h *Hierarchy) FetchInstr(addr uint64) {
	if !h.ICache.Access(addr) {
		h.miss()
	}
}

// Data models a data access of n consecutive 32-bit words at addr.
func (h *Hierarchy) Data(addr uint64, words int) {
	for i := 0; i < words; i++ {
		if !h.DCache.Access(addr + uint64(4*i)) {
			h.miss()
		}
	}
}

// Data1 models a single-word data access at addr; it is Data(addr, 1)
// without the loop, for the interpreter's per-bytecode traffic.
func (h *Hierarchy) Data1(addr uint64) {
	if !h.DCache.Access(addr) {
		h.miss()
	}
}

// TrackedHit reports (and counts) a hit proven by the tracker: addr
// lies on the tracked line and no install has happened since the
// tracker last validated, so the line is still resident. On false the
// caller must perform the access normally and then Note it. Small
// enough to inline into execution loops — the proven-hit path is two
// compares and an increment, with no placement-array traffic.
func (c *Cache) TrackedHit(addr uint64, t *LineTracker) bool {
	if addr>>c.lineShift == t.line && c.gen == t.gen {
		c.Hits++
		return true
	}
	return false
}

// Note records that addr was just accessed against c (so its line is
// resident) and revalidates the tracker.
func (t *LineTracker) Note(c *Cache, addr uint64) {
	t.line = addr >> c.lineShift
	t.gen = c.gen
}

// Data1T is Data1 with a per-source residency proof via t: counters
// and energy charges are identical to Data1 for every access, but a
// proven hit skips the placement lookup. Execution loops hold one
// tracker per traffic source, which keeps the fast path effective
// even when sources interleave.
func (h *Hierarchy) Data1T(addr uint64, t *LineTracker) {
	if h.DCache.TrackedHit(addr, t) {
		return
	}
	h.Data1(addr)
	t.Note(h.DCache, addr)
}

// Flush invalidates both caches.
func (h *Hierarchy) Flush() {
	h.ICache.Flush()
	h.DCache.Flush()
}
