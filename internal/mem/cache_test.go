package mem

import (
	"testing"
	"testing/quick"

	"greenvm/internal/energy"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 8 * 1024, LineBytes: 32})
	if got := c.Config().Lines(); got != 256 {
		t.Errorf("Lines() = %d, want 256", got)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two cache size")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 3000, LineBytes: 32})
}

func TestCacheHitMissSequence(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 32}) // 4 lines
	if c.Access(0) {
		t.Error("first access should miss")
	}
	if !c.Access(4) {
		t.Error("same-line access should hit")
	}
	if !c.Access(31) {
		t.Error("end of line should hit")
	}
	if c.Access(32) {
		t.Error("next line should miss")
	}
	// Address 128 maps to the same index as 0 in a 4-line cache.
	if c.Access(128) {
		t.Error("conflicting line should miss")
	}
	if c.Access(0) {
		t.Error("evicted line should miss")
	}
	if c.Hits != 2 || c.Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 2/4", c.Hits, c.Misses)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 32})
	c.Access(0)
	c.Flush()
	if c.Access(0) {
		t.Error("access after flush should miss")
	}
}

func TestMissRate(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 32})
	if c.MissRate() != 0 {
		t.Error("empty cache should report miss rate 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %g, want 0.5", got)
	}
}

// Property: a second access to the same address always hits, no matter
// the preceding address (direct-mapped with no other interference).
func TestRepeatAccessHitsProperty(t *testing.T) {
	f := func(addr uint32) bool {
		c := NewCache(CacheConfig{SizeBytes: 8 * 1024, LineBytes: 32})
		c.Access(uint64(addr))
		return c.Access(uint64(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyChargesMisses(t *testing.T) {
	model := energy.MicroSPARCIIep()
	acct := energy.NewAccount(model)
	h := DefaultClientHierarchy(model, acct)

	h.FetchInstr(CodeBase) // miss: one line transfer + stall
	if got := acct.MemAccesses(); got != uint64(model.CacheLineWords) {
		t.Errorf("mem accesses after one miss = %d, want %d", got, model.CacheLineWords)
	}
	if got := acct.Cycles; got != uint64(model.MissPenaltyCycles) {
		t.Errorf("stall cycles = %d, want %d", got, model.MissPenaltyCycles)
	}
	h.FetchInstr(CodeBase + 4) // hit: no new charges
	if got := acct.MemAccesses(); got != uint64(model.CacheLineWords) {
		t.Errorf("hit should not charge memory, accesses = %d", got)
	}

	before := acct.MemAccesses()
	h.Data(HeapBase, 2) // two words in one fresh line: one miss
	if got := acct.MemAccesses() - before; got != uint64(model.CacheLineWords) {
		t.Errorf("2-word access charged %d words, want one line (%d)", got, model.CacheLineWords)
	}
}

func TestHierarchySetAccount(t *testing.T) {
	model := energy.MicroSPARCIIep()
	a1 := energy.NewAccount(model)
	a2 := energy.NewAccount(model)
	h := DefaultClientHierarchy(model, a1)
	h.SetAccount(a2)
	h.FetchInstr(CodeBase)
	if a1.MemAccesses() != 0 || a2.MemAccesses() == 0 {
		t.Error("charges did not follow SetAccount")
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(0x1000, 0x100)
	p1 := a.Alloc(10, 8)
	p2 := a.Alloc(10, 8)
	if p1 != 0x1000 {
		t.Errorf("first alloc at %#x, want 0x1000", p1)
	}
	if p2 != 0x1010 {
		t.Errorf("second alloc at %#x, want aligned 0x1010", p2)
	}
	if a.Used() == 0 {
		t.Error("Used should be non-zero")
	}
	// Exhaustion wraps instead of failing.
	p3 := a.Alloc(0x200, 8)
	if p3 != 0x1000 {
		t.Errorf("wrapped alloc at %#x, want 0x1000", p3)
	}
	a.Reset()
	if a.Used() != 0 {
		t.Error("Reset should zero usage")
	}
}

// TestTrackedAccessEquivalence drives two identical caches with the
// same pseudo-random access sequence — one through plain Access, one
// through the TrackedHit/Note fast path with several interleaved
// trackers (as the execution loops use them) — and requires identical
// hit/miss counters and placement state afterwards. This is the
// correctness contract of the tracked fast path: proven hits are real
// hits, and everything else falls back to the ordinary access.
func TestTrackedAccessEquivalence(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 1024, LineBytes: 32}
	plain := NewCache(cfg)
	tracked := NewCache(cfg)
	trackers := make([]LineTracker, 3)

	// xorshift so the walk mixes line-local runs (stack-like), strides
	// (array-like) and far jumps (aliasing installs).
	seed := uint64(0x9e3779b97f4a7c15)
	rnd := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	addr := uint64(0x4000)
	for i := 0; i < 20000; i++ {
		switch rnd() % 8 {
		case 0: // far jump, likely conflict-miss
			addr = 0x4000 + rnd()%(1<<16)
		case 1: // stride
			addr += 32 * (rnd() % 4)
		default: // line-local wiggle
			addr = addr&^31 | rnd()%32
		}
		plain.Access(addr)
		tr := &trackers[rnd()%3]
		if !tracked.TrackedHit(addr, tr) {
			tracked.Access(addr)
			tr.Note(tracked, addr)
		}
		if rnd()%512 == 0 {
			plain.Flush()
			tracked.Flush()
		}
	}
	if plain.Hits != tracked.Hits || plain.Misses != tracked.Misses {
		t.Fatalf("diverged: plain %d/%d, tracked %d/%d hits/misses",
			plain.Hits, plain.Misses, tracked.Hits, tracked.Misses)
	}
	for i := range plain.lines {
		if plain.lines[i] != tracked.lines[i] {
			t.Fatalf("placement state diverged at line %d", i)
		}
	}
}
