package isa

import (
	"errors"
	"testing"
	"testing/quick"
)

func sampleCode() *Code {
	return &Code{
		Name:       "T.m@L2",
		FrameWords: 3,
		OptLevel:   2,
		Instrs: []Instr{
			{Op: LDI, Rd: 9, Imm: -123456789},
			{Op: FLDI, Rd: 9, FImm: -2.5e-3},
			{Op: ADD, Rd: 9, Ra: 10, Rb: 11},
			{Op: BEQ, Ra: 9, Rb: 0, Imm: 7},
			{Op: LDF, Rd: 9, Ra: 10, Imm: 2},
			{Op: STE, Rd: 12, Ra: 9, Rb: 10},
			{Op: CALLVM, Imm: 42},
			{Op: RET},
		},
	}
}

func TestEncodeCodeRoundtrip(t *testing.T) {
	c := sampleCode()
	enc := EncodeCode(c)
	dec, err := DecodeCode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != c.Name || dec.FrameWords != c.FrameWords || dec.OptLevel != c.OptLevel {
		t.Errorf("metadata: %+v", dec)
	}
	if len(dec.Instrs) != len(c.Instrs) {
		t.Fatalf("instr count %d", len(dec.Instrs))
	}
	for i := range c.Instrs {
		if dec.Instrs[i] != c.Instrs[i] {
			t.Errorf("instr %d: %v != %v", i, dec.Instrs[i], c.Instrs[i])
		}
	}
	// Base is installation-local and not transported.
	if dec.Base != 0 {
		t.Error("Base should not survive the wire")
	}
}

func TestDecodeCodeErrors(t *testing.T) {
	enc := EncodeCode(sampleCode())
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte{0, 0, 0, 0}, enc[4:]...),
		"truncated":  enc[:len(enc)-3],
		"trailing":   append(append([]byte{}, enc...), 0xAA),
		"short name": enc[:6],
	}
	for name, b := range cases {
		if _, err := DecodeCode(b); !errors.Is(err, ErrCodeDecode) {
			t.Errorf("%s: err = %v, want ErrCodeDecode", name, err)
		}
	}
	// A bogus opcode inside the stream is rejected.
	bad := EncodeCode(&Code{Name: "x", Instrs: []Instr{{Op: Op(200)}}})
	if _, err := DecodeCode(bad); !errors.Is(err, ErrCodeDecode) {
		t.Errorf("bad opcode: %v", err)
	}
}

// Property: arbitrary instruction words survive the wire.
func TestEncodeCodeProperty(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int64, fimm float64) bool {
		in := Instr{Op: Op(op % uint8(numOps)), Rd: rd, Ra: ra, Rb: rb, Imm: imm, FImm: fimm}
		c := &Code{Name: "p", Instrs: []Instr{in}}
		dec, err := DecodeCode(EncodeCode(c))
		if err != nil {
			return false
		}
		return dec.Instrs[0] == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrStringAllOpcodes(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Instr{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: 4, FImm: 1.5}
		if in.String() == "" {
			t.Errorf("empty disassembly for %s", op.Name())
		}
		if op.Name() == "" {
			t.Errorf("empty name for opcode %d", op)
		}
		if c := op.Class(); c < 0 {
			t.Errorf("bad class for %s", op.Name())
		}
	}
	if Op(250).Name() == "" {
		t.Error("out-of-range opcode should still render")
	}
}

func TestCodeDisassemble(t *testing.T) {
	s := sampleCode().Disassemble()
	if s == "" {
		t.Fatal("empty disassembly")
	}
}
