package isa

import (
	"errors"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/mem"
)

// stubBridge implements Bridge over plain Go slices for machine tests.
type stubBridge struct {
	intArrays  map[int64][]int64
	fltArrays  map[int64][]float64
	objects    map[int64][]int64
	fobjects   map[int64][]float64
	nextHandle int64
	callLog    []int64
	callFn     func(idx int64, m *Machine) error
}

func newStubBridge() *stubBridge {
	return &stubBridge{
		intArrays:  map[int64][]int64{},
		fltArrays:  map[int64][]float64{},
		objects:    map[int64][]int64{},
		fobjects:   map[int64][]float64{},
		nextHandle: 1,
	}
}

func (b *stubBridge) handle() int64 { h := b.nextHandle; b.nextHandle++; return h }

func (b *stubBridge) FieldI(h int64, idx int) (int64, error) {
	o, ok := b.objects[h]
	if !ok {
		return 0, ErrNullRef
	}
	return o[idx], nil
}
func (b *stubBridge) SetFieldI(h int64, idx int, v int64) error {
	o, ok := b.objects[h]
	if !ok {
		return ErrNullRef
	}
	o[idx] = v
	return nil
}
func (b *stubBridge) FieldF(h int64, idx int) (float64, error) {
	o, ok := b.fobjects[h]
	if !ok {
		return 0, ErrNullRef
	}
	return o[idx], nil
}
func (b *stubBridge) SetFieldF(h int64, idx int, v float64) error {
	o, ok := b.fobjects[h]
	if !ok {
		return ErrNullRef
	}
	o[idx] = v
	return nil
}
func (b *stubBridge) ElemI(h, i int64) (int64, error) {
	a, ok := b.intArrays[h]
	if !ok {
		return 0, ErrNullRef
	}
	if i < 0 || i >= int64(len(a)) {
		return 0, ErrBounds
	}
	return a[i], nil
}
func (b *stubBridge) SetElemI(h, i, v int64) error {
	a, ok := b.intArrays[h]
	if !ok {
		return ErrNullRef
	}
	if i < 0 || i >= int64(len(a)) {
		return ErrBounds
	}
	a[i] = v
	return nil
}
func (b *stubBridge) ElemF(h, i int64) (float64, error) {
	a, ok := b.fltArrays[h]
	if !ok {
		return 0, ErrNullRef
	}
	if i < 0 || i >= int64(len(a)) {
		return 0, ErrBounds
	}
	return a[i], nil
}
func (b *stubBridge) SetElemF(h, i int64, v float64) error {
	a, ok := b.fltArrays[h]
	if !ok {
		return ErrNullRef
	}
	if i < 0 || i >= int64(len(a)) {
		return ErrBounds
	}
	a[i] = v
	return nil
}
func (b *stubBridge) ArrayLen(h int64) (int64, error) {
	if a, ok := b.intArrays[h]; ok {
		return int64(len(a)), nil
	}
	if a, ok := b.fltArrays[h]; ok {
		return int64(len(a)), nil
	}
	return 0, ErrNullRef
}
func (b *stubBridge) NewArray(kind, n int64) (int64, error) {
	h := b.handle()
	if kind == 1 {
		b.fltArrays[h] = make([]float64, n)
	} else {
		b.intArrays[h] = make([]int64, n)
	}
	return h, nil
}
func (b *stubBridge) NewObject(classIdx int64) (int64, error) {
	h := b.handle()
	b.objects[h] = make([]int64, 8)
	b.fobjects[h] = make([]float64, 8)
	return h, nil
}
func (b *stubBridge) Call(idx int64, m *Machine) error {
	b.callLog = append(b.callLog, idx)
	if b.callFn != nil {
		return b.callFn(idx, m)
	}
	return nil
}

func newTestMachine() (*Machine, *stubBridge, *energy.Account) {
	model := energy.MicroSPARCIIep()
	acct := energy.NewAccount(model)
	hier := mem.DefaultClientHierarchy(model, acct)
	b := newStubBridge()
	return NewMachine(b, hier, acct), b, acct
}

func run(t *testing.T, m *Machine, instrs []Instr, frameWords int) {
	t.Helper()
	c := &Code{Name: "test", Instrs: instrs, Base: mem.CodeBase, FrameWords: frameWords}
	if err := m.Run(c); err != nil {
		t.Fatalf("Run: %v\n%s", err, c.Disassemble())
	}
}

func TestSumLoop(t *testing.T) {
	m, _, acct := newTestMachine()
	// r1 = sum of 1..10
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: 1},        // i = 1
		{Op: LDI, Rd: 3, Imm: 10},       // n
		{Op: LDI, Rd: 1, Imm: 0},        // sum = 0
		{Op: BGT, Ra: 2, Rb: 3, Imm: 7}, // loop: if i > n goto done
		{Op: ADD, Rd: 1, Ra: 1, Rb: 2},  // sum += i
		{Op: ADDI, Rd: 2, Ra: 2, Imm: 1},
		{Op: JMP, Imm: 3},
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != 55 {
		t.Errorf("sum = %d, want 55", m.R[1])
	}
	if acct.Instructions() == 0 || acct.Total() == 0 {
		t.Error("execution charged no energy")
	}
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{ADD, 7, 5, 12},
		{SUB, 7, 5, 2},
		{MUL, 7, 5, 35},
		{DIV, 17, 5, 3},
		{REM, 17, 5, 2},
		{AND, 12, 10, 8},
		{OR, 12, 10, 14},
		{XOR, 12, 10, 6},
		{SHL, 3, 2, 12},
		{SHR, -8, 1, -4},
		{SLT, 3, 4, 1},
		{SLT, 4, 3, 0},
	}
	for _, c := range cases {
		m, _, _ := newTestMachine()
		prog := []Instr{
			{Op: LDI, Rd: 2, Imm: c.a},
			{Op: LDI, Rd: 3, Imm: c.b},
			{Op: c.op, Rd: 1, Ra: 2, Rb: 3},
			{Op: RET},
		}
		run(t, m, prog, 0)
		if m.R[1] != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op.Name(), c.a, c.b, m.R[1], c.want)
		}
	}
}

func TestInt32Wraparound(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: 0x7FFFFFFF},
		{Op: ADDI, Rd: 1, Ra: 2, Imm: 1},
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != -0x80000000 {
		t.Errorf("int32 overflow = %d, want -2147483648", m.R[1])
	}
}

func TestFloatOps(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: FLDI, Rd: 2, FImm: 1.5},
		{Op: FLDI, Rd: 3, FImm: 2.5},
		{Op: FADD, Rd: 1, Ra: 2, Rb: 3}, // 4.0
		{Op: FMUL, Rd: 1, Ra: 1, Rb: 3}, // 10.0
		{Op: FSUB, Rd: 1, Ra: 1, Rb: 2}, // 8.5
		{Op: FDIV, Rd: 1, Ra: 1, Rb: 3}, // 3.4
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.F[1] != 3.4 {
		t.Errorf("float chain = %g, want 3.4", m.F[1])
	}
}

func TestConversions(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: -7},
		{Op: CVTIF, Rd: 2, Ra: 2},
		{Op: FLDI, Rd: 3, FImm: 2.0},
		{Op: FDIV, Rd: 2, Ra: 2, Rb: 3}, // -3.5
		{Op: CVTFI, Rd: 1, Ra: 2},       // -3 (truncation)
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != -3 {
		t.Errorf("CVTFI(-3.5) = %d, want -3", m.R[1])
	}
}

func TestDivideByZero(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: 1},
		{Op: DIV, Rd: 1, Ra: 2, Rb: 0},
		{Op: RET},
	}
	c := &Code{Name: "divzero", Instrs: prog, Base: mem.CodeBase}
	if err := m.Run(c); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v, want ErrDivideByZero", err)
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 0, Imm: 99}, // attempt to clobber r0
		{Op: MOV, Rd: 1, Ra: 0},
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != 0 {
		t.Errorf("r0 = %d, want hardwired 0", m.R[1])
	}
}

func TestSpillSlots(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: 123},
		{Op: STSP, Ra: 2, Imm: 1},
		{Op: LDI, Rd: 2, Imm: 0},
		{Op: LDSP, Rd: 1, Imm: 1},
		{Op: FLDI, Rd: 2, FImm: 2.25},
		{Op: STSPF, Ra: 2, Imm: 0},
		{Op: LDSPF, Rd: 1, Imm: 0},
		{Op: RET},
	}
	run(t, m, prog, 2)
	if m.R[1] != 123 || m.F[1] != 2.25 {
		t.Errorf("spill roundtrip got r1=%d f1=%g", m.R[1], m.F[1])
	}
}

func TestArraysThroughBridge(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: 5},
		{Op: NEWARR, Rd: 3, Ra: 2, Imm: 0}, // int[5]
		{Op: LDI, Rd: 4, Imm: 2},           // index
		{Op: LDI, Rd: 5, Imm: 42},          // value
		{Op: STE, Rd: 5, Ra: 3, Rb: 4},
		{Op: LDE, Rd: 6, Ra: 3, Rb: 4},
		{Op: ARRLEN, Rd: 7, Ra: 3},
		{Op: ADD, Rd: 1, Ra: 6, Rb: 7}, // 42 + 5
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != 47 {
		t.Errorf("array roundtrip = %d, want 47", m.R[1])
	}
}

func TestArrayBoundsError(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: LDI, Rd: 2, Imm: 3},
		{Op: NEWARR, Rd: 3, Ra: 2, Imm: 0},
		{Op: LDI, Rd: 4, Imm: 3},
		{Op: LDE, Rd: 1, Ra: 3, Rb: 4},
		{Op: RET},
	}
	c := &Code{Name: "oob", Instrs: prog, Base: mem.CodeBase}
	if err := m.Run(c); !errors.Is(err, ErrBounds) {
		t.Errorf("err = %v, want ErrBounds", err)
	}
}

func TestCallTrapsToBridge(t *testing.T) {
	m, b, _ := newTestMachine()
	b.callFn = func(idx int64, mm *Machine) error {
		mm.R[1] = mm.R[1] * 2 // callee doubles its argument
		return nil
	}
	prog := []Instr{
		{Op: LDI, Rd: 1, Imm: 21},
		{Op: CALLVM, Imm: 9},
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != 42 {
		t.Errorf("call result = %d, want 42", m.R[1])
	}
	if len(b.callLog) != 1 || b.callLog[0] != 9 {
		t.Errorf("call log = %v, want [9]", b.callLog)
	}
}

func TestCallChargesOverhead(t *testing.T) {
	m, _, acct := newTestMachine()
	prog := []Instr{
		{Op: CALLVM, Imm: 0},
		{Op: RET},
	}
	run(t, m, prog, 0)
	if acct.InstrCount(energy.Load) < m.CallOverheadLoads {
		t.Error("call did not charge register-window load overhead")
	}
	if acct.InstrCount(energy.Store) < m.CallOverheadStores {
		t.Error("call did not charge register-window store overhead")
	}
}

func TestStepLimit(t *testing.T) {
	m, _, _ := newTestMachine()
	m.MaxSteps = 100
	prog := []Instr{
		{Op: JMP, Imm: 0},
	}
	c := &Code{Name: "spin", Instrs: prog, Base: mem.CodeBase}
	if err := m.Run(c); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestTrapErrors(t *testing.T) {
	cases := []struct {
		code int64
		want error
	}{
		{TrapBounds, ErrBounds},
		{TrapNull, ErrNullRef},
		{TrapDivZero, ErrDivideByZero},
	}
	for _, cse := range cases {
		m, _, _ := newTestMachine()
		c := &Code{Name: "trap", Instrs: []Instr{{Op: TRAP, Imm: cse.code}}, Base: mem.CodeBase}
		if err := m.Run(c); !errors.Is(err, cse.want) {
			t.Errorf("trap %d err = %v, want %v", cse.code, err, cse.want)
		}
	}
}

func TestFallOffEndIsError(t *testing.T) {
	m, _, _ := newTestMachine()
	c := &Code{Name: "fall", Instrs: []Instr{{Op: NOP}}, Base: mem.CodeBase}
	if err := m.Run(c); err == nil {
		t.Error("falling off the end should be an error")
	}
}

func TestRegSaveRestorePreservesReturn(t *testing.T) {
	m, _, _ := newTestMachine()
	m.R[5] = 77
	r, f := m.SaveRegs()
	m.R[5] = 0
	m.R[1] = 42
	m.F[1] = 2.5
	m.RestoreRegs(r, f)
	if m.R[5] != 77 {
		t.Error("saved register not restored")
	}
	if m.R[1] != 42 || m.F[1] != 2.5 {
		t.Error("return registers should survive restore")
	}
}

func TestCodeSizeBytes(t *testing.T) {
	c := &Code{Instrs: make([]Instr, 10)}
	if c.SizeBytes() != 40 {
		t.Errorf("SizeBytes = %d, want 40", c.SizeBytes())
	}
}

func TestFloatBranches(t *testing.T) {
	m, _, _ := newTestMachine()
	prog := []Instr{
		{Op: FLDI, Rd: 2, FImm: 1.0},
		{Op: FLDI, Rd: 3, FImm: 2.0},
		{Op: FBLT, Ra: 2, Rb: 3, Imm: 4}, // taken
		{Op: TRAP, Imm: TrapUnreachable},
		{Op: FBGE, Ra: 2, Rb: 3, Imm: 6}, // not taken
		{Op: LDI, Rd: 1, Imm: 1},
		{Op: RET},
	}
	run(t, m, prog, 0)
	if m.R[1] != 1 {
		t.Errorf("float branch path = %d, want 1", m.R[1])
	}
}

func TestInstrStringSmoke(t *testing.T) {
	ops := []Instr{
		{Op: LDI, Rd: 1, Imm: 5}, {Op: FLDI, Rd: 1, FImm: 1.5},
		{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, {Op: BEQ, Ra: 1, Rb: 2, Imm: 7},
		{Op: LDF, Rd: 1, Ra: 2, Imm: 0}, {Op: STE, Rd: 3, Ra: 1, Rb: 2},
		{Op: CALLVM, Imm: 4}, {Op: RET}, {Op: TRAP, Imm: 0},
		{Op: LDSP, Rd: 1, Imm: 2}, {Op: NEWARR, Rd: 1, Ra: 2, Imm: 0},
	}
	for _, in := range ops {
		if in.String() == "" {
			t.Errorf("empty disassembly for %v", in.Op)
		}
	}
}
