package isa

import (
	"fmt"

	"greenvm/internal/energy"
	"greenvm/internal/mem"
)

// Bridge is the machine's window onto the VM: heap accesses,
// allocation, and method calls. Implementations charge data-cache
// traffic for heap accesses at the object's synthetic address (the
// machine itself charges instruction fetches and spill-slot traffic).
//
// Handles are opaque non-zero int64 values; handle 0 is the null
// reference.
type Bridge interface {
	// FieldI reads integer/reference field idx of object h.
	FieldI(h int64, idx int) (int64, error)
	// SetFieldI writes integer/reference field idx of object h.
	SetFieldI(h int64, idx int, v int64) error
	// FieldF reads float field idx of object h.
	FieldF(h int64, idx int) (float64, error)
	// SetFieldF writes float field idx of object h.
	SetFieldF(h int64, idx int, v float64) error
	// ElemI reads element i of an int/reference array.
	ElemI(h, i int64) (int64, error)
	// SetElemI writes element i of an int/reference array.
	SetElemI(h, i, v int64) error
	// ElemF reads element i of a float array.
	ElemF(h, i int64) (float64, error)
	// SetElemF writes element i of a float array.
	SetElemF(h, i int64, v float64) error
	// ArrayLen returns the length of array h.
	ArrayLen(h int64) (int64, error)
	// NewArray allocates an array of the given element kind and length.
	NewArray(kind int64, n int64) (int64, error)
	// NewObject allocates an instance of the class with the given
	// link-table index.
	NewObject(classIdx int64) (int64, error)
	// Call invokes the method with link-table index idx. Arguments are
	// already in m's ABI registers; the callee's return value must be
	// left in R1 or F1. The implementation must preserve all other
	// registers (the simulated SPARC has register windows; the
	// corresponding spill traffic is charged by the machine).
	Call(idx int64, m *Machine) error
}

// Machine executes native Code against a Bridge, charging energy and
// cache traffic to an Account. A single Machine is reused across calls;
// nested calls save and restore the register files.
type Machine struct {
	// R and F are the integer and float register files. R[0] and F[0]
	// are hardwired to zero and restored after every instruction that
	// names them as a destination. Only the first NumIntRegs/
	// NumFloatRegs entries are architecturally meaningful; the arrays
	// are sized so the ISA's 8-bit register fields can never index out
	// of bounds, which keeps bounds checks out of the execute loop
	// (verified codegen only emits architectural registers).
	R [256]int64
	F [256]float64

	Bridge Bridge
	Hier   *mem.Hierarchy
	Acct   *energy.Account

	// SP is the current top of the simulated frame stack (grows down).
	SP uint64

	// Steps counts executed instructions across the machine's lifetime.
	// MaxSteps, when non-zero, aborts runaway executions.
	Steps    uint64
	MaxSteps uint64

	// CallOverheadLoads/Stores model the register-window spill/fill
	// traffic of one call; charged at every CALLVM.
	CallOverheadLoads  uint64
	CallOverheadStores uint64

	// Spill-frame pool: nested Run calls carve [frameTop, frameTop+n)
	// out of these buffers instead of allocating per call.
	intFrames []int64
	fltFrames []float64
	frameTop  int
}

// NewMachine returns a machine with the paper's call-overhead model.
func NewMachine(bridge Bridge, hier *mem.Hierarchy, acct *energy.Account) *Machine {
	return &Machine{
		Bridge:             bridge,
		Hier:               hier,
		Acct:               acct,
		SP:                 mem.StackBase,
		CallOverheadLoads:  4,
		CallOverheadStores: 4,
	}
}

// SaveRegs returns a snapshot of the architectural register files.
func (m *Machine) SaveRegs() (r [NumIntRegs]int64, f [NumFloatRegs]float64) {
	copy(r[:], m.R[:NumIntRegs])
	copy(f[:], m.F[:NumFloatRegs])
	return r, f
}

// RestoreRegs restores a snapshot taken by SaveRegs, preserving the
// ABI return registers R1 and F1 (which carry the callee's result).
func (m *Machine) RestoreRegs(r [NumIntRegs]int64, f [NumFloatRegs]float64) {
	r1, f1 := m.R[1], m.F[1]
	copy(m.R[:NumIntRegs], r[:])
	copy(m.F[:NumFloatRegs], f[:])
	m.R[1], m.F[1] = r1, f1
}

// Run executes the body until RET. On entry the caller must have
// placed arguments in the ABI registers. The return value, if any, is
// left in R1/F1.
//
// The loop batches its bookkeeping: per-class instruction counts
// accumulate in a local array and are committed to the account once
// per straight-line segment (at CALLVM boundaries and on exit) rather
// than per instruction, and consecutive fetches from the same I-cache
// line are counted locally and credited as hits in one batch — the
// line the previous fetch installed is necessarily still resident,
// since only instruction fetches of this machine touch the I-cache
// and nested bodies run behind a flush. Observable state (account
// totals, cache counters, Steps) is exact at every VM re-entry point
// and at exit; only the float association of the core-energy sum
// within a segment differs from the per-instruction path.
func (m *Machine) Run(c *Code) error {
	frameBytes := uint64(c.FrameWords) * 4
	savedSP := m.SP
	if frameBytes > 0 {
		m.SP -= frameBytes
	}
	// Carve the spill frame out of the machine's pool. Nested calls
	// stack above us; growth reallocates the pool but outer frames keep
	// their (still valid) slices into the old backing array.
	frameBase := m.frameTop
	if need := frameBase + c.FrameWords; need > len(m.intFrames) {
		m.intFrames = append(m.intFrames, make([]int64, need-len(m.intFrames))...)
		m.fltFrames = append(m.fltFrames, make([]float64, need-len(m.fltFrames))...)
	}
	frame := m.intFrames[frameBase : frameBase+c.FrameWords : frameBase+c.FrameWords]
	fframe := m.fltFrames[frameBase : frameBase+c.FrameWords : frameBase+c.FrameWords]
	clear(frame)
	clear(fframe)
	m.frameTop = frameBase + c.FrameWords

	var st runState
	st.steps = m.Steps
	err := m.runLoop(c, frame, fframe, &st)
	m.commit(&st)
	m.SP = savedSP
	m.frameTop = frameBase
	return err
}

// runState is the execute loop's pending bookkeeping: per-class
// instruction counts, fetch hits proven by the straight-line elision,
// and the step counter. commit folds it into the observable state.
type runState struct {
	counts    energy.InstrCounts
	pendIHits uint64
	steps     uint64
}

func (m *Machine) commit(st *runState) {
	m.Acct.AddInstrCounts(&st.counts)
	if st.pendIHits != 0 {
		m.Hier.ICache.AddHits(st.pendIHits)
		st.pendIHits = 0
	}
	m.Steps = st.steps
}

// runLoop is the execute loop proper. It is free of defers and
// closures, keeps its bookkeeping in locals (written back to st on
// every exit through the done label), and Run commits st and unwinds
// the frame on every exit path.
func (m *Machine) runLoop(c *Code, frame []int64, fframe []float64, st *runState) error {
	hier := m.Hier
	dcache := hier.DCache
	counts := &st.counts
	var retErr error
	var spT mem.LineTracker
	pend := st.pendIHits
	steps := st.steps
	limit := m.MaxSteps
	if limit == 0 {
		limit = ^uint64(0)
	}

	// The current fetch line expressed as a pc window [fetchLo, fetchHi):
	// while pc stays inside it the fetch hits the line the window's
	// first fetch left resident, so the hot path is two integer
	// compares with no address arithmetic. (0,0) is the empty window.
	ilineMask := uint64(hier.ICache.Config().LineBytes - 1)
	fetchLo, fetchHi := int64(0), int64(0)

	code := c.Instrs
	n := int64(len(code))
	var pc int64
	for pc >= 0 && pc < n {
		in := &code[pc]
		if pc >= fetchLo && pc < fetchHi {
			pend++
		} else {
			addr := c.Base + uint64(pc)*BytesPerInstr
			hier.FetchInstr(addr)
			fetchLo = pc
			fetchHi = pc + int64((ilineMask+1-(addr&ilineMask))/BytesPerInstr)
		}
		counts[opTable[in.Op].class]++
		steps++
		if steps > limit {
			retErr = ErrStepLimit
			goto done
		}
		pc++

		switch in.Op {
		case NOP:
		case LDI:
			m.R[in.Rd] = in.Imm
		case FLDI:
			m.F[in.Rd] = in.FImm
		case MOV:
			m.R[in.Rd] = m.R[in.Ra]
		case FMOV:
			m.F[in.Rd] = m.F[in.Ra]
		case ADD:
			m.R[in.Rd] = wrap32(m.R[in.Ra] + m.R[in.Rb])
		case SUB:
			m.R[in.Rd] = wrap32(m.R[in.Ra] - m.R[in.Rb])
		case MUL:
			m.R[in.Rd] = wrap32(m.R[in.Ra] * m.R[in.Rb])
		case DIV:
			if m.R[in.Rb] == 0 {
				retErr = ErrDivideByZero
				goto done
			}
			m.R[in.Rd] = wrap32(m.R[in.Ra] / m.R[in.Rb])
		case REM:
			if m.R[in.Rb] == 0 {
				retErr = ErrDivideByZero
				goto done
			}
			m.R[in.Rd] = wrap32(m.R[in.Ra] % m.R[in.Rb])
		case AND:
			m.R[in.Rd] = m.R[in.Ra] & m.R[in.Rb]
		case OR:
			m.R[in.Rd] = m.R[in.Ra] | m.R[in.Rb]
		case XOR:
			m.R[in.Rd] = m.R[in.Ra] ^ m.R[in.Rb]
		case SHL:
			m.R[in.Rd] = wrap32(m.R[in.Ra] << uint(m.R[in.Rb]&31))
		case SHR:
			m.R[in.Rd] = m.R[in.Ra] >> uint(m.R[in.Rb]&31)
		case NEG:
			m.R[in.Rd] = wrap32(-m.R[in.Ra])
		case SLT:
			if m.R[in.Ra] < m.R[in.Rb] {
				m.R[in.Rd] = 1
			} else {
				m.R[in.Rd] = 0
			}
		case ADDI:
			m.R[in.Rd] = wrap32(m.R[in.Ra] + in.Imm)
		case MULI:
			m.R[in.Rd] = wrap32(m.R[in.Ra] * in.Imm)
		case SHLI:
			m.R[in.Rd] = wrap32(m.R[in.Ra] << uint(in.Imm&31))
		case SHRI:
			m.R[in.Rd] = m.R[in.Ra] >> uint(in.Imm&31)
		case ANDI:
			m.R[in.Rd] = m.R[in.Ra] & in.Imm
		case FADD:
			m.F[in.Rd] = m.F[in.Ra] + m.F[in.Rb]
		case FSUB:
			m.F[in.Rd] = m.F[in.Ra] - m.F[in.Rb]
		case FMUL:
			m.F[in.Rd] = m.F[in.Ra] * m.F[in.Rb]
		case FDIV:
			m.F[in.Rd] = m.F[in.Ra] / m.F[in.Rb]
		case FNEG:
			m.F[in.Rd] = -m.F[in.Ra]
		case CVTIF:
			m.F[in.Rd] = float64(m.R[in.Ra])
		case CVTFI:
			m.R[in.Rd] = wrap32(int64(m.F[in.Ra]))
		case JMP:
			pc = in.Imm
		case BEQ:
			if m.R[in.Ra] == m.R[in.Rb] {
				pc = in.Imm
			}
		case BNE:
			if m.R[in.Ra] != m.R[in.Rb] {
				pc = in.Imm
			}
		case BLT:
			if m.R[in.Ra] < m.R[in.Rb] {
				pc = in.Imm
			}
		case BGE:
			if m.R[in.Ra] >= m.R[in.Rb] {
				pc = in.Imm
			}
		case BGT:
			if m.R[in.Ra] > m.R[in.Rb] {
				pc = in.Imm
			}
		case BLE:
			if m.R[in.Ra] <= m.R[in.Rb] {
				pc = in.Imm
			}
		case FBEQ:
			if m.F[in.Ra] == m.F[in.Rb] {
				pc = in.Imm
			}
		case FBNE:
			if m.F[in.Ra] != m.F[in.Rb] {
				pc = in.Imm
			}
		case FBLT:
			if m.F[in.Ra] < m.F[in.Rb] {
				pc = in.Imm
			}
		case FBGE:
			if m.F[in.Ra] >= m.F[in.Rb] {
				pc = in.Imm
			}
		case LDF:
			v, err := m.Bridge.FieldI(m.R[in.Ra], int(in.Imm))
			if err != nil {
				retErr = err
				goto done
			}
			m.R[in.Rd] = v
		case STF:
			if err := m.Bridge.SetFieldI(m.R[in.Ra], int(in.Imm), m.R[in.Rb]); err != nil {
				retErr = err
				goto done
			}
		case LDFF:
			v, err := m.Bridge.FieldF(m.R[in.Ra], int(in.Imm))
			if err != nil {
				retErr = err
				goto done
			}
			m.F[in.Rd] = v
		case STFF:
			if err := m.Bridge.SetFieldF(m.R[in.Ra], int(in.Imm), m.F[in.Rb]); err != nil {
				retErr = err
				goto done
			}
		case LDE:
			v, err := m.Bridge.ElemI(m.R[in.Ra], m.R[in.Rb])
			if err != nil {
				retErr = err
				goto done
			}
			m.R[in.Rd] = v
		case STE:
			if err := m.Bridge.SetElemI(m.R[in.Ra], m.R[in.Rb], m.R[in.Rd]); err != nil {
				retErr = err
				goto done
			}
		case LDEF:
			v, err := m.Bridge.ElemF(m.R[in.Ra], m.R[in.Rb])
			if err != nil {
				retErr = err
				goto done
			}
			m.F[in.Rd] = v
		case STEF:
			if err := m.Bridge.SetElemF(m.R[in.Ra], m.R[in.Rb], m.F[in.Rd]); err != nil {
				retErr = err
				goto done
			}
		case ARRLEN:
			v, err := m.Bridge.ArrayLen(m.R[in.Ra])
			if err != nil {
				retErr = err
				goto done
			}
			m.R[in.Rd] = v
		case LDSP:
			if a := m.SP + uint64(in.Imm)*4; !dcache.TrackedHit(a, &spT) {
				hier.Data1(a)
				spT.Note(dcache, a)
			}
			m.R[in.Rd] = frame[in.Imm]
		case STSP:
			if a := m.SP + uint64(in.Imm)*4; !dcache.TrackedHit(a, &spT) {
				hier.Data1(a)
				spT.Note(dcache, a)
			}
			frame[in.Imm] = m.R[in.Ra]
		case LDSPF:
			if a := m.SP + uint64(in.Imm)*4; !dcache.TrackedHit(a, &spT) {
				hier.Data1(a)
				spT.Note(dcache, a)
			}
			m.F[in.Rd] = fframe[in.Imm]
		case STSPF:
			if a := m.SP + uint64(in.Imm)*4; !dcache.TrackedHit(a, &spT) {
				hier.Data1(a)
				spT.Note(dcache, a)
			}
			fframe[in.Imm] = m.F[in.Ra]
		case NEWARR:
			h, err := m.Bridge.NewArray(in.Imm, m.R[in.Ra])
			if err != nil {
				retErr = err
				goto done
			}
			m.R[in.Rd] = h
		case NEWOBJ:
			h, err := m.Bridge.NewObject(in.Imm)
			if err != nil {
				retErr = err
				goto done
			}
			m.R[in.Rd] = h
		case CALLVM:
			counts[energy.Load] += m.CallOverheadLoads
			counts[energy.Store] += m.CallOverheadStores
			// Re-entering the VM: commit pending bookkeeping so the
			// callee observes an up-to-date account, and drop the cached
			// fetch line (a nested native body may evict it).
			st.steps, st.pendIHits = steps, pend
			m.commit(st)
			pend = 0
			fetchLo, fetchHi = 0, 0
			if err := m.Bridge.Call(in.Imm, m); err != nil {
				retErr = err
				goto done
			}
			steps = m.Steps
			limit = m.MaxSteps
			if limit == 0 {
				limit = ^uint64(0)
			}
		case RET:
			goto done
		case TRAP:
			switch in.Imm {
			case TrapBounds:
				retErr = ErrBounds
			case TrapNull:
				retErr = ErrNullRef
			case TrapDivZero:
				retErr = ErrDivideByZero
			default:
				retErr = fmt.Errorf("%w: trap %d in %s", ErrBadInstr, in.Imm, c.Name)
			}
			goto done
		default:
			retErr = fmt.Errorf("%w: opcode %d in %s at %d", ErrBadInstr, in.Op, c.Name, pc-1)
			goto done
		}

		// Keep the hardwired zero registers at zero. Only an
		// instruction naming them as destination can dirty them.
		if in.Rd == 0 {
			m.R[0] = 0
			m.F[0] = 0
		}
	}
	retErr = fmt.Errorf("%w: fell off end of %s", ErrBadInstr, c.Name)
done:
	st.steps, st.pendIHits = steps, pend
	return retErr
}

// wrap32 truncates to 32-bit two's-complement, matching the bytecode
// VM's int semantics (the MJ language has Java's 32-bit int).
func wrap32(v int64) int64 {
	return int64(int32(v))
}
