package isa

import (
	"fmt"

	"greenvm/internal/energy"
	"greenvm/internal/mem"
)

// Bridge is the machine's window onto the VM: heap accesses,
// allocation, and method calls. Implementations charge data-cache
// traffic for heap accesses at the object's synthetic address (the
// machine itself charges instruction fetches and spill-slot traffic).
//
// Handles are opaque non-zero int64 values; handle 0 is the null
// reference.
type Bridge interface {
	// FieldI reads integer/reference field idx of object h.
	FieldI(h int64, idx int) (int64, error)
	// SetFieldI writes integer/reference field idx of object h.
	SetFieldI(h int64, idx int, v int64) error
	// FieldF reads float field idx of object h.
	FieldF(h int64, idx int) (float64, error)
	// SetFieldF writes float field idx of object h.
	SetFieldF(h int64, idx int, v float64) error
	// ElemI reads element i of an int/reference array.
	ElemI(h, i int64) (int64, error)
	// SetElemI writes element i of an int/reference array.
	SetElemI(h, i, v int64) error
	// ElemF reads element i of a float array.
	ElemF(h, i int64) (float64, error)
	// SetElemF writes element i of a float array.
	SetElemF(h, i int64, v float64) error
	// ArrayLen returns the length of array h.
	ArrayLen(h int64) (int64, error)
	// NewArray allocates an array of the given element kind and length.
	NewArray(kind int64, n int64) (int64, error)
	// NewObject allocates an instance of the class with the given
	// link-table index.
	NewObject(classIdx int64) (int64, error)
	// Call invokes the method with link-table index idx. Arguments are
	// already in m's ABI registers; the callee's return value must be
	// left in R1 or F1. The implementation must preserve all other
	// registers (the simulated SPARC has register windows; the
	// corresponding spill traffic is charged by the machine).
	Call(idx int64, m *Machine) error
}

// Machine executes native Code against a Bridge, charging energy and
// cache traffic to an Account. A single Machine is reused across calls;
// nested calls save and restore the register files.
type Machine struct {
	// R and F are the integer and float register files. R[0] and F[0]
	// are hardwired to zero and restored after every instruction that
	// names them as a destination.
	R [NumIntRegs]int64
	F [NumFloatRegs]float64

	Bridge Bridge
	Hier   *mem.Hierarchy
	Acct   *energy.Account

	// SP is the current top of the simulated frame stack (grows down).
	SP uint64

	// Steps counts executed instructions across the machine's lifetime.
	// MaxSteps, when non-zero, aborts runaway executions.
	Steps    uint64
	MaxSteps uint64

	// CallOverheadLoads/Stores model the register-window spill/fill
	// traffic of one call; charged at every CALLVM.
	CallOverheadLoads  uint64
	CallOverheadStores uint64
}

// NewMachine returns a machine with the paper's call-overhead model.
func NewMachine(bridge Bridge, hier *mem.Hierarchy, acct *energy.Account) *Machine {
	return &Machine{
		Bridge:             bridge,
		Hier:               hier,
		Acct:               acct,
		SP:                 mem.StackBase,
		CallOverheadLoads:  4,
		CallOverheadStores: 4,
	}
}

// SaveRegs returns a snapshot of both register files.
func (m *Machine) SaveRegs() ([NumIntRegs]int64, [NumFloatRegs]float64) {
	return m.R, m.F
}

// RestoreRegs restores a snapshot taken by SaveRegs, preserving the
// ABI return registers R1 and F1 (which carry the callee's result).
func (m *Machine) RestoreRegs(r [NumIntRegs]int64, f [NumFloatRegs]float64) {
	r1, f1 := m.R[1], m.F[1]
	m.R, m.F = r, f
	m.R[1], m.F[1] = r1, f1
}

// Run executes the body until RET. On entry the caller must have
// placed arguments in the ABI registers. The return value, if any, is
// left in R1/F1.
func (m *Machine) Run(c *Code) error {
	frameBytes := uint64(c.FrameWords) * 4
	savedSP := m.SP
	if frameBytes > 0 {
		m.SP -= frameBytes
	}
	frame := make([]int64, c.FrameWords)
	fframe := make([]float64, c.FrameWords)
	defer func() { m.SP = savedSP }()

	code := c.Instrs
	n := int64(len(code))
	var pc int64
	for pc >= 0 && pc < n {
		in := &code[pc]
		m.Hier.FetchInstr(c.Base + uint64(pc)*BytesPerInstr)
		m.Acct.AddInstr(in.Op.Class(), 1)
		m.Steps++
		if m.MaxSteps != 0 && m.Steps > m.MaxSteps {
			return ErrStepLimit
		}
		pc++

		switch in.Op {
		case NOP:
		case LDI:
			m.R[in.Rd] = in.Imm
		case FLDI:
			m.F[in.Rd] = in.FImm
		case MOV:
			m.R[in.Rd] = m.R[in.Ra]
		case FMOV:
			m.F[in.Rd] = m.F[in.Ra]
		case ADD:
			m.R[in.Rd] = wrap32(m.R[in.Ra] + m.R[in.Rb])
		case SUB:
			m.R[in.Rd] = wrap32(m.R[in.Ra] - m.R[in.Rb])
		case MUL:
			m.R[in.Rd] = wrap32(m.R[in.Ra] * m.R[in.Rb])
		case DIV:
			if m.R[in.Rb] == 0 {
				return ErrDivideByZero
			}
			m.R[in.Rd] = wrap32(m.R[in.Ra] / m.R[in.Rb])
		case REM:
			if m.R[in.Rb] == 0 {
				return ErrDivideByZero
			}
			m.R[in.Rd] = wrap32(m.R[in.Ra] % m.R[in.Rb])
		case AND:
			m.R[in.Rd] = m.R[in.Ra] & m.R[in.Rb]
		case OR:
			m.R[in.Rd] = m.R[in.Ra] | m.R[in.Rb]
		case XOR:
			m.R[in.Rd] = m.R[in.Ra] ^ m.R[in.Rb]
		case SHL:
			m.R[in.Rd] = wrap32(m.R[in.Ra] << uint(m.R[in.Rb]&31))
		case SHR:
			m.R[in.Rd] = m.R[in.Ra] >> uint(m.R[in.Rb]&31)
		case NEG:
			m.R[in.Rd] = wrap32(-m.R[in.Ra])
		case SLT:
			if m.R[in.Ra] < m.R[in.Rb] {
				m.R[in.Rd] = 1
			} else {
				m.R[in.Rd] = 0
			}
		case ADDI:
			m.R[in.Rd] = wrap32(m.R[in.Ra] + in.Imm)
		case MULI:
			m.R[in.Rd] = wrap32(m.R[in.Ra] * in.Imm)
		case SHLI:
			m.R[in.Rd] = wrap32(m.R[in.Ra] << uint(in.Imm&31))
		case SHRI:
			m.R[in.Rd] = m.R[in.Ra] >> uint(in.Imm&31)
		case ANDI:
			m.R[in.Rd] = m.R[in.Ra] & in.Imm
		case FADD:
			m.F[in.Rd] = m.F[in.Ra] + m.F[in.Rb]
		case FSUB:
			m.F[in.Rd] = m.F[in.Ra] - m.F[in.Rb]
		case FMUL:
			m.F[in.Rd] = m.F[in.Ra] * m.F[in.Rb]
		case FDIV:
			m.F[in.Rd] = m.F[in.Ra] / m.F[in.Rb]
		case FNEG:
			m.F[in.Rd] = -m.F[in.Ra]
		case CVTIF:
			m.F[in.Rd] = float64(m.R[in.Ra])
		case CVTFI:
			m.R[in.Rd] = wrap32(int64(m.F[in.Ra]))
		case JMP:
			pc = in.Imm
		case BEQ:
			if m.R[in.Ra] == m.R[in.Rb] {
				pc = in.Imm
			}
		case BNE:
			if m.R[in.Ra] != m.R[in.Rb] {
				pc = in.Imm
			}
		case BLT:
			if m.R[in.Ra] < m.R[in.Rb] {
				pc = in.Imm
			}
		case BGE:
			if m.R[in.Ra] >= m.R[in.Rb] {
				pc = in.Imm
			}
		case BGT:
			if m.R[in.Ra] > m.R[in.Rb] {
				pc = in.Imm
			}
		case BLE:
			if m.R[in.Ra] <= m.R[in.Rb] {
				pc = in.Imm
			}
		case FBEQ:
			if m.F[in.Ra] == m.F[in.Rb] {
				pc = in.Imm
			}
		case FBNE:
			if m.F[in.Ra] != m.F[in.Rb] {
				pc = in.Imm
			}
		case FBLT:
			if m.F[in.Ra] < m.F[in.Rb] {
				pc = in.Imm
			}
		case FBGE:
			if m.F[in.Ra] >= m.F[in.Rb] {
				pc = in.Imm
			}
		case LDF:
			v, err := m.Bridge.FieldI(m.R[in.Ra], int(in.Imm))
			if err != nil {
				return err
			}
			m.R[in.Rd] = v
		case STF:
			if err := m.Bridge.SetFieldI(m.R[in.Ra], int(in.Imm), m.R[in.Rb]); err != nil {
				return err
			}
		case LDFF:
			v, err := m.Bridge.FieldF(m.R[in.Ra], int(in.Imm))
			if err != nil {
				return err
			}
			m.F[in.Rd] = v
		case STFF:
			if err := m.Bridge.SetFieldF(m.R[in.Ra], int(in.Imm), m.F[in.Rb]); err != nil {
				return err
			}
		case LDE:
			v, err := m.Bridge.ElemI(m.R[in.Ra], m.R[in.Rb])
			if err != nil {
				return err
			}
			m.R[in.Rd] = v
		case STE:
			if err := m.Bridge.SetElemI(m.R[in.Ra], m.R[in.Rb], m.R[in.Rd]); err != nil {
				return err
			}
		case LDEF:
			v, err := m.Bridge.ElemF(m.R[in.Ra], m.R[in.Rb])
			if err != nil {
				return err
			}
			m.F[in.Rd] = v
		case STEF:
			if err := m.Bridge.SetElemF(m.R[in.Ra], m.R[in.Rb], m.F[in.Rd]); err != nil {
				return err
			}
		case ARRLEN:
			v, err := m.Bridge.ArrayLen(m.R[in.Ra])
			if err != nil {
				return err
			}
			m.R[in.Rd] = v
		case LDSP:
			m.Hier.Data(m.SP+uint64(in.Imm)*4, 1)
			m.R[in.Rd] = frame[in.Imm]
		case STSP:
			m.Hier.Data(m.SP+uint64(in.Imm)*4, 1)
			frame[in.Imm] = m.R[in.Ra]
		case LDSPF:
			m.Hier.Data(m.SP+uint64(in.Imm)*4, 1)
			m.F[in.Rd] = fframe[in.Imm]
		case STSPF:
			m.Hier.Data(m.SP+uint64(in.Imm)*4, 1)
			fframe[in.Imm] = m.F[in.Ra]
		case NEWARR:
			h, err := m.Bridge.NewArray(in.Imm, m.R[in.Ra])
			if err != nil {
				return err
			}
			m.R[in.Rd] = h
		case NEWOBJ:
			h, err := m.Bridge.NewObject(in.Imm)
			if err != nil {
				return err
			}
			m.R[in.Rd] = h
		case CALLVM:
			m.Acct.AddInstr(energy.Load, m.CallOverheadLoads)
			m.Acct.AddInstr(energy.Store, m.CallOverheadStores)
			if err := m.Bridge.Call(in.Imm, m); err != nil {
				return err
			}
		case RET:
			return nil
		case TRAP:
			switch in.Imm {
			case TrapBounds:
				return ErrBounds
			case TrapNull:
				return ErrNullRef
			case TrapDivZero:
				return ErrDivideByZero
			default:
				return fmt.Errorf("%w: trap %d in %s", ErrBadInstr, in.Imm, c.Name)
			}
		default:
			return fmt.Errorf("%w: opcode %d in %s at %d", ErrBadInstr, in.Op, c.Name, pc-1)
		}

		// Keep the hardwired zero registers at zero.
		m.R[0] = 0
		m.F[0] = 0
	}
	return fmt.Errorf("%w: fell off end of %s", ErrBadInstr, c.Name)
}

// wrap32 truncates to 32-bit two's-complement, matching the bytecode
// VM's int semantics (the MJ language has Java's 32-bit int).
func wrap32(v int64) int64 {
	return int64(int32(v))
}
