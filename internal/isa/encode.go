package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire encoding of compiled method bodies, used when a client
// downloads pre-compiled native code from a remote compilation server.
// The encoding is exact (instruction count × fixed fields), but the
// *modelled* download size stays SizeBytes(): the simulated ISA packs
// an instruction into 4 bytes, while this host-side encoding spells
// out the operands portably.

// ErrCodeDecode reports a malformed encoded body.
var ErrCodeDecode = errors.New("isa: bad encoded code")

const codeMagic = 0x4D434F44 // "MCOD"

// EncodeCode serializes a body (without its Base, which the receiving
// VM assigns at installation).
func EncodeCode(c *Code) []byte {
	buf := make([]byte, 0, 16+len(c.Name)+len(c.Instrs)*23)
	var tmp [8]byte
	u32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	u32(codeMagic)
	u32(uint32(len(c.Name)))
	buf = append(buf, c.Name...)
	u32(uint32(c.FrameWords))
	u32(uint32(c.OptLevel))
	u32(uint32(len(c.Instrs)))
	for _, in := range c.Instrs {
		buf = append(buf, byte(in.Op), in.Rd, in.Ra, in.Rb)
		u64(uint64(in.Imm))
		u64(math.Float64bits(in.FImm))
	}
	return buf
}

// DecodeCode parses an encoded body.
func DecodeCode(b []byte) (*Code, error) {
	pos := 0
	u32 := func() (uint32, error) {
		if pos+4 > len(b) {
			return 0, fmt.Errorf("%w: truncated", ErrCodeDecode)
		}
		v := binary.BigEndian.Uint32(b[pos:])
		pos += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if pos+8 > len(b) {
			return 0, fmt.Errorf("%w: truncated", ErrCodeDecode)
		}
		v := binary.BigEndian.Uint64(b[pos:])
		pos += 8
		return v, nil
	}
	magic, err := u32()
	if err != nil {
		return nil, err
	}
	if magic != codeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodeDecode)
	}
	nameLen, err := u32()
	if err != nil {
		return nil, err
	}
	if pos+int(nameLen) > len(b) {
		return nil, fmt.Errorf("%w: truncated name", ErrCodeDecode)
	}
	name := string(b[pos : pos+int(nameLen)])
	pos += int(nameLen)
	frame, err := u32()
	if err != nil {
		return nil, err
	}
	opt, err := u32()
	if err != nil {
		return nil, err
	}
	n, err := u32()
	if err != nil {
		return nil, err
	}
	if int(n) > len(b) {
		return nil, fmt.Errorf("%w: absurd instruction count %d", ErrCodeDecode, n)
	}
	c := &Code{Name: name, FrameWords: int(frame), OptLevel: int(opt), Instrs: make([]Instr, 0, n)}
	for i := uint32(0); i < n; i++ {
		if pos+4 > len(b) {
			return nil, fmt.Errorf("%w: truncated instruction", ErrCodeDecode)
		}
		in := Instr{Op: Op(b[pos]), Rd: b[pos+1], Ra: b[pos+2], Rb: b[pos+3]}
		pos += 4
		imm, err := u64()
		if err != nil {
			return nil, err
		}
		in.Imm = int64(imm)
		fb, err := u64()
		if err != nil {
			return nil, err
		}
		in.FImm = math.Float64frombits(fb)
		if in.Op >= numOps {
			return nil, fmt.Errorf("%w: opcode %d", ErrCodeDecode, in.Op)
		}
		c.Instrs = append(c.Instrs, in)
	}
	if pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodeDecode, len(b)-pos)
	}
	return c, nil
}
