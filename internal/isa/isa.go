// Package isa defines the simulated native instruction set of the
// mobile client and a cycle-level machine that executes it while
// charging per-instruction energies (Fig 1 of the paper) and cache/DRAM
// traffic.
//
// The ISA is a 32-register RISC in the spirit of the SPARC v8 core the
// paper targets: fixed 4-byte instructions, a hardwired zero register,
// and separate integer (64-bit, also holding object handles) and
// floating-point (float64) register files. Heap accesses go through a
// Bridge supplied by the VM: data live in Go structures, while the
// bridge charges the data cache at synthetic addresses so that locality
// is modelled faithfully.
package isa

import (
	"errors"
	"fmt"

	"greenvm/internal/energy"
)

// Op is a native opcode.
type Op uint8

// Native opcodes. The comment gives the operand usage.
const (
	NOP Op = iota

	// Constants and moves.
	LDI  // Rd <- Imm
	FLDI // Fd <- FImm
	MOV  // Rd <- Ra
	FMOV // Fd <- Fa

	// Integer ALU, register-register.
	ADD // Rd <- Ra + Rb
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SHL
	SHR // arithmetic shift right
	NEG // Rd <- -Ra
	SLT // Rd <- (Ra < Rb) ? 1 : 0

	// Integer ALU, register-immediate.
	ADDI // Rd <- Ra + Imm
	MULI // Rd <- Ra * Imm
	SHLI // Rd <- Ra << Imm
	SHRI // Rd <- Ra >> Imm (arithmetic)
	ANDI // Rd <- Ra & Imm

	// Floating point.
	FADD // Fd <- Fa + Fb
	FSUB
	FMUL
	FDIV
	FNEG  // Fd <- -Fa
	CVTIF // Fd <- float64(Ra)
	CVTFI // Rd <- int64(Fa), truncating

	// Control transfer. Target is an absolute instruction index.
	JMP  // pc <- Imm
	BEQ  // if Ra == Rb: pc <- Imm
	BNE  // if Ra != Rb
	BLT  // if Ra < Rb (signed)
	BGE  // if Ra >= Rb
	BGT  // if Ra > Rb
	BLE  // if Ra <= Rb
	FBEQ // if Fa == Fb
	FBNE
	FBLT
	FBGE

	// Memory: object fields. Ra holds an object handle, Imm the field
	// index. All traffic is charged through the bridge.
	LDF  // Rd <- field[Imm] of object Ra (int or reference field)
	STF  // field[Imm] of object Ra <- Rb
	LDFF // Fd <- float field[Imm] of object Ra
	STFF // float field[Imm] of object Ra <- Fb

	// Memory: array elements. Ra = array handle, Rb = element index.
	LDE  // Rd <- Ra[Rb] (int or reference array)
	STE  // Ra[Rb] <- value in register Rd (note: Rd is the source)
	LDEF // Fd <- Ra[Rb] (float array)
	STEF // Ra[Rb] <- Fd

	ARRLEN // Rd <- len(Ra)

	// Memory: spill slots in the current frame. Imm is the slot number.
	LDSP  // Rd <- frame[Imm]
	STSP  // frame[Imm] <- Ra
	LDSPF // Fd <- frame[Imm]
	STSPF // frame[Imm] <- Fa

	// Allocation (traps to the VM heap).
	NEWARR // Rd <- new array, kind Imm, length Ra
	NEWOBJ // Rd <- new object of class Imm

	// Calls and returns. CALLVM traps to the VM: arguments are in the
	// ABI registers (R1.. / F1..) and the result comes back in R1/F1.
	CALLVM // invoke method with link-table index Imm
	RET    // return from this native body

	TRAP // raise runtime error code Imm

	numOps
)

// Errors surfaced by native execution. They mirror the checked runtime
// errors of the bytecode VM so mixed-mode execution reports identical
// failures whichever engine runs the method.
var (
	ErrDivideByZero = errors.New("isa: integer divide by zero")
	ErrBounds       = errors.New("isa: array index out of bounds")
	ErrNullRef      = errors.New("isa: null reference")
	ErrStepLimit    = errors.New("isa: step limit exceeded")
	ErrBadInstr     = errors.New("isa: malformed instruction")
)

// Trap codes for the TRAP instruction.
const (
	TrapBounds = iota
	TrapNull
	TrapDivZero
	TrapUnreachable
)

// BytesPerInstr is the encoded size of one instruction; it drives both
// instruction-fetch addressing and compiled-code size accounting (and
// hence remote-compilation download energy).
const BytesPerInstr = 4

// Instr is one decoded native instruction.
type Instr struct {
	Op     Op
	Rd     uint8 // destination (or source for STE/STEF)
	Ra, Rb uint8
	Imm    int64
	FImm   float64
}

type opInfo struct {
	name  string
	class energy.InstrClass
}

var opTable = [numOps]opInfo{
	NOP:    {"nop", energy.Nop},
	LDI:    {"ldi", energy.ALUSimple},
	FLDI:   {"fldi", energy.ALUSimple},
	MOV:    {"mov", energy.ALUSimple},
	FMOV:   {"fmov", energy.ALUSimple},
	ADD:    {"add", energy.ALUSimple},
	SUB:    {"sub", energy.ALUSimple},
	MUL:    {"mul", energy.ALUComplex},
	DIV:    {"div", energy.ALUComplex},
	REM:    {"rem", energy.ALUComplex},
	AND:    {"and", energy.ALUSimple},
	OR:     {"or", energy.ALUSimple},
	XOR:    {"xor", energy.ALUSimple},
	SHL:    {"shl", energy.ALUSimple},
	SHR:    {"shr", energy.ALUSimple},
	NEG:    {"neg", energy.ALUSimple},
	SLT:    {"slt", energy.ALUSimple},
	ADDI:   {"addi", energy.ALUSimple},
	MULI:   {"muli", energy.ALUComplex},
	SHLI:   {"shli", energy.ALUSimple},
	SHRI:   {"shri", energy.ALUSimple},
	ANDI:   {"andi", energy.ALUSimple},
	FADD:   {"fadd", energy.ALUComplex},
	FSUB:   {"fsub", energy.ALUComplex},
	FMUL:   {"fmul", energy.ALUComplex},
	FDIV:   {"fdiv", energy.ALUComplex},
	FNEG:   {"fneg", energy.ALUSimple},
	CVTIF:  {"cvtif", energy.ALUComplex},
	CVTFI:  {"cvtfi", energy.ALUComplex},
	JMP:    {"jmp", energy.Branch},
	BEQ:    {"beq", energy.Branch},
	BNE:    {"bne", energy.Branch},
	BLT:    {"blt", energy.Branch},
	BGE:    {"bge", energy.Branch},
	BGT:    {"bgt", energy.Branch},
	BLE:    {"ble", energy.Branch},
	FBEQ:   {"fbeq", energy.Branch},
	FBNE:   {"fbne", energy.Branch},
	FBLT:   {"fblt", energy.Branch},
	FBGE:   {"fbge", energy.Branch},
	LDF:    {"ldf", energy.Load},
	STF:    {"stf", energy.Store},
	LDFF:   {"ldff", energy.Load},
	STFF:   {"stff", energy.Store},
	LDE:    {"lde", energy.Load},
	STE:    {"ste", energy.Store},
	LDEF:   {"ldef", energy.Load},
	STEF:   {"stef", energy.Store},
	ARRLEN: {"arrlen", energy.Load},
	LDSP:   {"ldsp", energy.Load},
	STSP:   {"stsp", energy.Store},
	LDSPF:  {"ldspf", energy.Load},
	STSPF:  {"stspf", energy.Store},
	NEWARR: {"newarr", energy.ALUComplex},
	NEWOBJ: {"newobj", energy.ALUComplex},
	CALLVM: {"callvm", energy.Branch},
	RET:    {"ret", energy.Branch},
	TRAP:   {"trap", energy.Branch},
}

// Name returns the mnemonic of the opcode.
func (o Op) Name() string {
	if int(o) >= int(numOps) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opTable[o].name
}

// Class returns the Fig 1 energy class of the opcode.
func (o Op) Class() energy.InstrClass {
	return opTable[o].class
}

// String renders the instruction in a readable assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case NOP, RET:
		return in.Op.Name()
	case LDI:
		return fmt.Sprintf("ldi   r%d, %d", in.Rd, in.Imm)
	case FLDI:
		return fmt.Sprintf("fldi  f%d, %g", in.Rd, in.FImm)
	case MOV:
		return fmt.Sprintf("mov   r%d, r%d", in.Rd, in.Ra)
	case FMOV:
		return fmt.Sprintf("fmov  f%d, f%d", in.Rd, in.Ra)
	case ADDI, MULI, SHLI, SHRI, ANDI:
		return fmt.Sprintf("%-5s r%d, r%d, %d", in.Op.Name(), in.Rd, in.Ra, in.Imm)
	case NEG, FNEG:
		return fmt.Sprintf("%-5s %s%d, %s%d", in.Op.Name(), regPrefix(in.Op), in.Rd, regPrefix(in.Op), in.Ra)
	case CVTIF:
		return fmt.Sprintf("cvtif f%d, r%d", in.Rd, in.Ra)
	case CVTFI:
		return fmt.Sprintf("cvtfi r%d, f%d", in.Rd, in.Ra)
	case JMP:
		return fmt.Sprintf("jmp   @%d", in.Imm)
	case BEQ, BNE, BLT, BGE, BGT, BLE:
		return fmt.Sprintf("%-5s r%d, r%d, @%d", in.Op.Name(), in.Ra, in.Rb, in.Imm)
	case FBEQ, FBNE, FBLT, FBGE:
		return fmt.Sprintf("%-5s f%d, f%d, @%d", in.Op.Name(), in.Ra, in.Rb, in.Imm)
	case LDF:
		return fmt.Sprintf("ldf   r%d, [r%d.%d]", in.Rd, in.Ra, in.Imm)
	case STF:
		return fmt.Sprintf("stf   [r%d.%d], r%d", in.Ra, in.Imm, in.Rb)
	case LDFF:
		return fmt.Sprintf("ldff  f%d, [r%d.%d]", in.Rd, in.Ra, in.Imm)
	case STFF:
		return fmt.Sprintf("stff  [r%d.%d], f%d", in.Ra, in.Imm, in.Rb)
	case LDE:
		return fmt.Sprintf("lde   r%d, r%d[r%d]", in.Rd, in.Ra, in.Rb)
	case STE:
		return fmt.Sprintf("ste   r%d[r%d], r%d", in.Ra, in.Rb, in.Rd)
	case LDEF:
		return fmt.Sprintf("ldef  f%d, r%d[r%d]", in.Rd, in.Ra, in.Rb)
	case STEF:
		return fmt.Sprintf("stef  r%d[r%d], f%d", in.Ra, in.Rb, in.Rd)
	case ARRLEN:
		return fmt.Sprintf("arrlen r%d, r%d", in.Rd, in.Ra)
	case LDSP:
		return fmt.Sprintf("ldsp  r%d, [sp+%d]", in.Rd, in.Imm)
	case STSP:
		return fmt.Sprintf("stsp  [sp+%d], r%d", in.Imm, in.Ra)
	case LDSPF:
		return fmt.Sprintf("ldspf f%d, [sp+%d]", in.Rd, in.Imm)
	case STSPF:
		return fmt.Sprintf("stspf [sp+%d], f%d", in.Imm, in.Ra)
	case NEWARR:
		return fmt.Sprintf("newarr r%d, kind=%d, len=r%d", in.Rd, in.Imm, in.Ra)
	case NEWOBJ:
		return fmt.Sprintf("newobj r%d, class=%d", in.Rd, in.Imm)
	case CALLVM:
		return fmt.Sprintf("callvm #%d", in.Imm)
	case TRAP:
		return fmt.Sprintf("trap  %d", in.Imm)
	default:
		return fmt.Sprintf("%-5s r%d, r%d, r%d", in.Op.Name(), in.Rd, in.Ra, in.Rb)
	}
}

func regPrefix(o Op) string {
	if o == FNEG {
		return "f"
	}
	return "r"
}

// ABI register convention.
const (
	// NumIntRegs and NumFloatRegs size the register files. R0 is
	// hardwired to zero; F0 is hardwired to +0.0.
	NumIntRegs   = 32
	NumFloatRegs = 16

	// ABIArgBase is the first argument register (R1/F1); the return
	// value also arrives in R1 (integer or reference) or F1 (float).
	ABIArgBase = 1
	// MaxRegArgs is the maximum number of arguments passed in registers
	// per file; our MJ language never exceeds this.
	MaxRegArgs = 8
)

// Code is a compiled native method body.
type Code struct {
	// Name identifies the method for diagnostics.
	Name string
	// Instrs is the instruction sequence; branch targets are absolute
	// indices into this slice.
	Instrs []Instr
	// Base is the synthetic code address assigned at installation time;
	// instruction fetches are charged at Base + pc*BytesPerInstr.
	Base uint64
	// FrameWords is the number of spill slots the body needs.
	FrameWords int
	// OptLevel records which optimization level produced the body.
	OptLevel int
	// UsedRegs bounds the register indices the body names (count =
	// highest index + 1). Callers use it to save and restore only the
	// registers a call can disturb. 0 means unknown: assume the full
	// architectural files.
	UsedRegs uint8
}

// ComputeUsedRegs scans the body and records the register bound.
func (c *Code) ComputeUsedRegs() {
	maxIdx := ABIArgBase // the ABI result registers are always fair game
	for i := range c.Instrs {
		in := &c.Instrs[i]
		if int(in.Rd) > maxIdx {
			maxIdx = int(in.Rd)
		}
		if int(in.Ra) > maxIdx {
			maxIdx = int(in.Ra)
		}
		if int(in.Rb) > maxIdx {
			maxIdx = int(in.Rb)
		}
	}
	if maxIdx >= 255 {
		maxIdx = 254
	}
	c.UsedRegs = uint8(maxIdx + 1)
}

// SizeBytes is the encoded size of the body, which is what remote
// compilation must download.
func (c *Code) SizeBytes() int { return len(c.Instrs) * BytesPerInstr }

// Disassemble renders the whole body.
func (c *Code) Disassemble() string {
	s := ""
	for i, in := range c.Instrs {
		s += fmt.Sprintf("%4d: %s\n", i, in)
	}
	return s
}
