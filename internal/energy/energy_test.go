package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestFig1Values(t *testing.T) {
	m := MicroSPARCIIep()
	want := map[InstrClass]float64{
		Load:       4.814e-9,
		Store:      4.479e-9,
		Branch:     2.868e-9,
		ALUSimple:  2.846e-9,
		ALUComplex: 3.726e-9,
		Nop:        2.644e-9,
	}
	for c, w := range want {
		if got := float64(m.PerInstr[c]); !approx(got, w, 1e-12) {
			t.Errorf("PerInstr[%v] = %g, want %g", c, got, w)
		}
	}
	if got := float64(m.MainMemAccess); !approx(got, 4.94e-9, 1e-12) {
		t.Errorf("MainMemAccess = %g, want 4.94nJ", got)
	}
}

func TestActiveAndLeakagePower(t *testing.T) {
	m := MicroSPARCIIep()
	// Average of the six Fig 1 values times 100 MHz.
	avg := (4.814 + 4.479 + 2.868 + 2.846 + 3.726 + 2.644) / 6 * 1e-9
	if got := float64(m.ActivePower()); !approx(got, avg*100e6, 1e-9) {
		t.Errorf("ActivePower = %g, want %g", got, avg*100e6)
	}
	if got := float64(m.LeakagePower()); !approx(got, 0.1*avg*100e6, 1e-9) {
		t.Errorf("LeakagePower = %g, want 10%% of active", got)
	}
}

func TestAccountChargesAndTime(t *testing.T) {
	m := MicroSPARCIIep()
	a := NewAccount(m)
	a.AddInstr(Load, 10)
	a.AddInstr(Branch, 5)
	a.AddMemAccess(8)
	a.AddStallCycles(20)

	wantCore := 10*4.814e-9 + 5*2.868e-9
	if got := float64(a.Component(CompCore)); !approx(got, wantCore, 1e-12) {
		t.Errorf("core = %g, want %g", got, wantCore)
	}
	wantMem := 8 * 4.94e-9
	if got := float64(a.Component(CompMemory)); !approx(got, wantMem, 1e-12) {
		t.Errorf("memory = %g, want %g", got, wantMem)
	}
	if a.Cycles != 35 {
		t.Errorf("Cycles = %d, want 35", a.Cycles)
	}
	if got := float64(a.Time()); !approx(got, 35/100e6, 1e-12) {
		t.Errorf("Time = %g, want 350ns", got)
	}
	if a.Instructions() != 15 {
		t.Errorf("Instructions = %d, want 15", a.Instructions())
	}
}

func TestAccountLeakage(t *testing.T) {
	m := MicroSPARCIIep()
	a := NewAccount(m)
	a.AddLeakage(2.0)
	want := float64(m.LeakagePower()) * 2.0
	if got := float64(a.Component(CompLeakage)); !approx(got, want, 1e-12) {
		t.Errorf("leakage = %g, want %g", got, want)
	}
}

func TestAccountAddFromAndSnapshot(t *testing.T) {
	m := MicroSPARCIIep()
	a := NewAccount(m)
	b := NewAccount(m)
	a.AddInstr(Load, 3)
	b.AddInstr(Store, 2)
	b.AddRadio(true, 5*MicroJoule)

	snap := a.Snapshot()
	a.AddFrom(b)
	if got, want := a.InstrCount(Store), uint64(2); got != want {
		t.Errorf("merged store count = %d, want %d", got, want)
	}
	delta := float64(a.Since(snap))
	want := float64(b.Total())
	if !approx(delta, want, 1e-12) {
		t.Errorf("Since = %g, want %g", delta, want)
	}
}

func TestCompileComponentExcludedFromTotal(t *testing.T) {
	a := NewAccount(MicroSPARCIIep())
	a.AddComponent(CompCompile, 1*MilliJoule)
	if a.Total() != 0 {
		t.Errorf("compile-only account total = %v, want 0", a.Total())
	}
}

func TestJoulesString(t *testing.T) {
	cases := map[Joules]string{
		0:                "0 J",
		1.5 * Joule:      "1.5 J",
		2 * MilliJoule:   "2 mJ",
		3.2 * MicroJoule: "3.2 uJ",
		42 * NanoJoule:   "42 nJ",
	}
	for j, want := range cases {
		if got := j.String(); got != want {
			t.Errorf("(%g).String() = %q, want %q", float64(j), got, want)
		}
	}
}

func TestAccountStringMentionsComponents(t *testing.T) {
	a := NewAccount(MicroSPARCIIep())
	a.AddInstr(Load, 100)
	a.AddRadio(false, 1*MicroJoule)
	s := a.String()
	for _, part := range []string{"core", "radio-rx", "total"} {
		if !strings.Contains(s, part) {
			t.Errorf("Account.String() = %q, missing %q", s, part)
		}
	}
}

// Property: merging accounts is additive in every component.
func TestAccountMergeAdditiveProperty(t *testing.T) {
	m := MicroSPARCIIep()
	f := func(loads1, loads2 uint8, stalls uint16, radio uint16) bool {
		a := NewAccount(m)
		b := NewAccount(m)
		a.AddInstr(Load, uint64(loads1))
		b.AddInstr(Load, uint64(loads2))
		b.AddStallCycles(uint64(stalls))
		b.AddRadio(true, Joules(radio)*NanoJoule)
		total := float64(a.Total()) + float64(b.Total())
		a.AddFrom(b)
		return approx(float64(a.Total()), total, 1e-9) &&
			a.InstrCount(Load) == uint64(loads1)+uint64(loads2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyPowerTime(t *testing.T) {
	if got := Energy(2, 3); got != 6 {
		t.Errorf("Energy(2W, 3s) = %v, want 6 J", got)
	}
}

func TestInstrClassString(t *testing.T) {
	if Load.String() != "Load" || ALUComplex.String() != "ALU(Complex)" {
		t.Error("InstrClass names do not match Fig 1")
	}
	if InstrClass(99).String() == "" {
		t.Error("out-of-range class should still render")
	}
}

func TestDeltaRoundtrip(t *testing.T) {
	m := MicroSPARCIIep()
	a := NewAccount(m)
	a.AddInstr(Load, 5)
	snap := a.Snapshot()
	a.AddInstr(Store, 3)
	a.AddMemAccess(2)
	a.AddStallCycles(7)
	a.AddRadio(true, 4*MicroJoule)
	a.AddLeakage(0.5)
	a.AddComponent(CompCompile, 1*MicroJoule)

	d := a.DeltaSince(snap)
	b := NewAccount(m)
	b.AddInstr(Load, 5) // replicate the pre-snapshot state
	b.Apply(d)

	if b.Total() != a.Total() {
		t.Errorf("replayed total %v != %v", b.Total(), a.Total())
	}
	for c := Component(0); c < NumComponents; c++ {
		if b.Component(c) != a.Component(c) {
			t.Errorf("component %v: %v != %v", c, b.Component(c), a.Component(c))
		}
	}
	if b.Cycles != a.Cycles || b.MemAccesses() != a.MemAccesses() {
		t.Error("cycles/mem accesses diverge")
	}
	for c := InstrClass(0); c < NumInstrClasses; c++ {
		if b.InstrCount(c) != a.InstrCount(c) {
			t.Errorf("instr class %v diverges", c)
		}
	}
}

func TestServerSPARCModel(t *testing.T) {
	s := ServerSPARC()
	c := MicroSPARCIIep()
	if s.ClockHz != 750e6 {
		t.Errorf("server clock = %g", s.ClockHz)
	}
	if s.PerInstr != c.PerInstr {
		t.Error("server shares the instruction energy table")
	}
	// 7.5x clock means 7.5x less time for the same cycles.
	sa, ca := NewAccount(s), NewAccount(c)
	sa.AddInstr(Load, 1000)
	ca.AddInstr(Load, 1000)
	if r := float64(ca.Time()) / float64(sa.Time()); r < 7.49 || r > 7.51 {
		t.Errorf("speed ratio = %g, want 7.5", r)
	}
}
