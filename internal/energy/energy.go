// Package energy models the energy consumption of the mobile client
// described in Chen et al., "Energy-Aware Compilation and Execution in
// Java-Enabled Mobile Devices" (IPPS 2003).
//
// The per-instruction energy values are taken verbatim from Fig 1 of the
// paper: they were obtained by the authors from a customized SimplePower
// simulator configured as a five-stage pipeline similar to the
// microSPARC-IIep, plus DRAM data-sheet numbers.
//
// All bookkeeping is done in Joules (float64). The package provides an
// Account that attributes energy to system components (processor core,
// memory, radio transmit/receive, leakage during power-down) so that
// experiment harnesses can report both totals and breakdowns.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Joules is an amount of energy. The zero value is zero energy.
type Joules float64

// Convenient magnitudes for constructing and reporting energies.
const (
	Joule      Joules = 1
	MilliJoule Joules = 1e-3
	MicroJoule Joules = 1e-6
	NanoJoule  Joules = 1e-9
)

// String renders the energy with an auto-selected SI prefix.
func (j Joules) String() string {
	abs := j
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0 J"
	case abs >= 1:
		return fmt.Sprintf("%.4g J", float64(j))
	case abs >= 1e-3:
		return fmt.Sprintf("%.4g mJ", float64(j)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.4g uJ", float64(j)*1e6)
	default:
		return fmt.Sprintf("%.4g nJ", float64(j)*1e9)
	}
}

// Watts is power in Joules per second.
type Watts float64

// Seconds is simulated wall-clock time. The simulation uses float64
// seconds rather than time.Duration because energy arithmetic
// (power x time) is floating point throughout.
type Seconds float64

// Energy returns the energy consumed by drawing power w for duration t.
func Energy(w Watts, t Seconds) Joules {
	return Joules(float64(w) * float64(t))
}

// InstrClass classifies simulated native instructions into the energy
// categories of Fig 1 in the paper.
type InstrClass int

// Instruction energy classes, in the order of Fig 1.
const (
	Load InstrClass = iota
	Store
	Branch
	ALUSimple
	ALUComplex
	Nop

	NumInstrClasses // number of classes; not itself a class
)

var instrClassNames = [NumInstrClasses]string{
	"Load", "Store", "Branch", "ALU(Simple)", "ALU(Complex)", "Nop",
}

// String returns the Fig 1 name of the class.
func (c InstrClass) String() string {
	if c < 0 || c >= NumInstrClasses {
		return fmt.Sprintf("InstrClass(%d)", int(c))
	}
	return instrClassNames[c]
}

// CPUModel holds the processor/memory energy and timing parameters of a
// target platform.
type CPUModel struct {
	// Name identifies the platform in reports.
	Name string
	// PerInstr is the base energy of one instruction of each class.
	PerInstr [NumInstrClasses]Joules
	// MainMemAccess is the DRAM energy per 32-bit word transferred.
	MainMemAccess Joules
	// ClockHz is the core clock frequency.
	ClockHz float64
	// MissPenaltyCycles is the pipeline stall, in cycles, per cache miss.
	MissPenaltyCycles int
	// CacheLineWords is the number of 32-bit words per cache line; a miss
	// transfers a full line from DRAM.
	CacheLineWords int
	// LeakageFraction is the fraction of average active power that the
	// platform still draws in the power-down state (paper: 10%).
	LeakageFraction float64
}

// MicroSPARCIIep returns the paper's mobile-client processor model:
// a 100 MHz five-stage RISC with the Fig 1 energy table.
func MicroSPARCIIep() *CPUModel {
	m := &CPUModel{
		Name:              "microSPARC-IIep",
		MainMemAccess:     4.94 * NanoJoule,
		ClockHz:           100e6,
		MissPenaltyCycles: 20,
		CacheLineWords:    8,
		LeakageFraction:   0.10,
	}
	m.PerInstr[Load] = 4.814 * NanoJoule
	m.PerInstr[Store] = 4.479 * NanoJoule
	m.PerInstr[Branch] = 2.868 * NanoJoule
	m.PerInstr[ALUSimple] = 2.846 * NanoJoule
	m.PerInstr[ALUComplex] = 3.726 * NanoJoule
	m.PerInstr[Nop] = 2.644 * NanoJoule
	return m
}

// ServerSPARC returns the paper's remote-server model: a 750 MHz SPARC
// workstation. Only its timing matters — the server is resource-rich
// and its energy is not charged to the mobile client — so it reuses
// the client's per-instruction energy table at 7.5x the clock.
func ServerSPARC() *CPUModel {
	m := MicroSPARCIIep()
	m.Name = "SPARC-750"
	m.ClockHz = 750e6
	return m
}

// AverageInstrEnergy is the unweighted mean instruction energy, used to
// derive the platform's nominal active power.
func (m *CPUModel) AverageInstrEnergy() Joules {
	var sum Joules
	for _, e := range m.PerInstr {
		sum += e
	}
	return sum / Joules(NumInstrClasses)
}

// ActivePower is the nominal active power of the core: average
// instruction energy times clock rate (one instruction per cycle).
func (m *CPUModel) ActivePower() Watts {
	return Watts(float64(m.AverageInstrEnergy()) * m.ClockHz)
}

// LeakagePower is the power drawn in the power-down state.
func (m *CPUModel) LeakagePower() Watts {
	return Watts(m.LeakageFraction) * m.ActivePower()
}

// CycleTime is the duration of one core clock cycle.
func (m *CPUModel) CycleTime() Seconds {
	return Seconds(1 / m.ClockHz)
}

// Component identifies where energy was spent, for breakdown reporting.
type Component int

// Energy-consuming components of the mobile client.
const (
	CompCore    Component = iota // processor datapath + caches
	CompMemory                   // off-chip DRAM
	CompRadioTx                  // transmitter chain
	CompRadioRx                  // receiver chain
	CompLeakage                  // leakage while powered down
	CompCompile                  // compilation work (subset of core+memory, tracked separately)

	NumComponents
)

var componentNames = [NumComponents]string{
	"core", "memory", "radio-tx", "radio-rx", "leakage", "compile",
}

// String returns the report name of the component.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// Account accumulates energy by component and instruction counts by
// class. Accounts are plain values guarded by their owner; they are not
// safe for concurrent mutation.
type Account struct {
	model *CPUModel

	byComponent [NumComponents]Joules
	instrCount  [NumInstrClasses]uint64
	memAccesses uint64

	// Cycles counts core cycles accumulated by instruction execution and
	// stalls; used to derive execution time.
	Cycles uint64
}

// NewAccount returns an empty account charging energies from model.
func NewAccount(model *CPUModel) *Account {
	return &Account{model: model}
}

// Model returns the CPU model the account charges from.
func (a *Account) Model() *CPUModel { return a.model }

// AddInstr charges n instructions of class c to the core and advances
// the cycle counter by n.
func (a *Account) AddInstr(c InstrClass, n uint64) {
	a.instrCount[c] += n
	a.byComponent[CompCore] += Joules(n) * a.model.PerInstr[c]
	a.Cycles += n
}

// InstrCounts is a batch of pending instruction counts by class.
// Execution loops accumulate into one (plain array increments, no
// float work per instruction) and commit it with AddInstrCounts once
// per straight-line segment, instead of calling AddInstr per
// instruction.
type InstrCounts [NumInstrClasses]uint64

// Add records n instructions of class c.
func (n *InstrCounts) Add(c InstrClass, k uint64) { n[c] += k }

// Total returns the number of instructions in the batch.
func (n *InstrCounts) Total() uint64 {
	var t uint64
	for _, k := range n {
		t += k
	}
	return t
}

// AddInstrCounts commits a batch of pending counts and zeroes it.
// Equivalent to calling AddInstr once per class with the accumulated
// count: per-class totals, cycle counts and component sums match the
// per-instruction path exactly (energy is charged as count x
// per-class energy, the same product AddInstr computes).
func (a *Account) AddInstrCounts(n *InstrCounts) {
	for c := InstrClass(0); c < NumInstrClasses; c++ {
		if k := n[c]; k != 0 {
			a.instrCount[c] += k
			a.byComponent[CompCore] += Joules(k) * a.model.PerInstr[c]
			a.Cycles += k
			n[c] = 0
		}
	}
}

// AddMemAccess charges n DRAM word transfers to the memory component.
// Stall cycles are added separately by the cache hierarchy.
func (a *Account) AddMemAccess(n uint64) {
	a.memAccesses += n
	a.byComponent[CompMemory] += Joules(n) * a.model.MainMemAccess
}

// AddStallCycles advances the cycle counter without charging energy
// (stalled pipeline energy is folded into the DRAM access cost).
func (a *Account) AddStallCycles(n uint64) {
	a.Cycles += n
}

// AddRadio charges e Joules of transmit (tx=true) or receive energy.
func (a *Account) AddRadio(tx bool, e Joules) {
	if tx {
		a.byComponent[CompRadioTx] += e
	} else {
		a.byComponent[CompRadioRx] += e
	}
}

// AddLeakage charges leakage energy for a power-down interval of
// duration t.
func (a *Account) AddLeakage(t Seconds) {
	a.byComponent[CompLeakage] += Energy(a.model.LeakagePower(), t)
}

// AddComponent charges e Joules directly to component c.
func (a *Account) AddComponent(c Component, e Joules) {
	a.byComponent[c] += e
}

// Total returns the total energy across all components. The compile
// component is excluded from the total because compile work is already
// charged to core/memory; it exists only for reporting.
func (a *Account) Total() Joules {
	var sum Joules
	for c := Component(0); c < NumComponents; c++ {
		if c == CompCompile {
			continue
		}
		sum += a.byComponent[c]
	}
	return sum
}

// Component returns the energy charged to component c.
func (a *Account) Component(c Component) Joules { return a.byComponent[c] }

// InstrCount returns the number of instructions of class c charged.
func (a *Account) InstrCount(c InstrClass) uint64 { return a.instrCount[c] }

// Instructions returns the total instruction count across classes.
func (a *Account) Instructions() uint64 {
	var n uint64
	for _, c := range a.instrCount {
		n += c
	}
	return n
}

// MemAccesses returns the number of DRAM word transfers charged.
func (a *Account) MemAccesses() uint64 { return a.memAccesses }

// Time returns the execution time implied by the accumulated cycles.
func (a *Account) Time() Seconds {
	return Seconds(float64(a.Cycles) / a.model.ClockHz)
}

// AddFrom merges the contents of src into a.
func (a *Account) AddFrom(src *Account) {
	for i := range a.byComponent {
		a.byComponent[i] += src.byComponent[i]
	}
	for i := range a.instrCount {
		a.instrCount[i] += src.instrCount[i]
	}
	a.memAccesses += src.memAccesses
	a.Cycles += src.Cycles
}

// Reset zeroes the account.
func (a *Account) Reset() {
	*a = Account{model: a.model}
}

// Snapshot returns a copy of the account for later Diff.
func (a *Account) Snapshot() Account { return *a }

// Since returns the energy accumulated since the snapshot was taken.
func (a *Account) Since(snap Account) Joules {
	return a.Total() - snap.Total()
}

// Delta is the difference between two account states: a replayable
// record of everything one execution charged. Experiment harnesses
// memoize deltas of deterministic executions and re-apply them instead
// of re-simulating identical invocations.
type Delta struct {
	ByComponent [NumComponents]Joules
	Instr       [NumInstrClasses]uint64
	MemAccesses uint64
	Cycles      uint64
}

// DeltaSince returns everything charged since the snapshot.
func (a *Account) DeltaSince(snap Account) Delta {
	var d Delta
	for i := range d.ByComponent {
		d.ByComponent[i] = a.byComponent[i] - snap.byComponent[i]
	}
	for i := range d.Instr {
		d.Instr[i] = a.instrCount[i] - snap.instrCount[i]
	}
	d.MemAccesses = a.memAccesses - snap.memAccesses
	d.Cycles = a.Cycles - snap.Cycles
	return d
}

// Apply re-charges a recorded delta.
func (a *Account) Apply(d Delta) {
	for i := range d.ByComponent {
		a.byComponent[i] += d.ByComponent[i]
	}
	for i := range d.Instr {
		a.instrCount[i] += d.Instr[i]
	}
	a.memAccesses += d.MemAccesses
	a.Cycles += d.Cycles
}

// String renders a component breakdown, largest first.
func (a *Account) String() string {
	type row struct {
		c Component
		e Joules
	}
	rows := make([]row, 0, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		if a.byComponent[c] != 0 {
			rows = append(rows, row{c, a.byComponent[c]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].e > rows[j].e })
	var b strings.Builder
	fmt.Fprintf(&b, "total %v over %v", a.Total(), a.Time())
	for _, r := range rows {
		fmt.Fprintf(&b, "; %s %v", r.c, r.e)
	}
	return b.String()
}
