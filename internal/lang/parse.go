package lang

// Recursive-descent parser for MJ.

type parser struct {
	toks []token
	i    int
}

// Parse parses an MJ source file.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tEOF, "") {
		c, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, c)
	}
	return f, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(k, text) {
		want := text
		if want == "" {
			switch k {
			case tIdent:
				want = "identifier"
			case tInt:
				want = "integer"
			}
		}
		return t, errAt(t.line, t.col, "expected %q, found %s", want, t)
	}
	p.i++
	return t, nil
}

func (p *parser) posOf(t token) pos { return pos{t.line, t.col} }

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	t := p.cur()
	return t.kind == tKeyword && (t.text == "int" || t.text == "float" || t.text == "void") ||
		t.kind == tIdent
}

func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.cur()
	if !p.isTypeStart() {
		return TypeExpr{}, errAt(t.line, t.col, "expected type, found %s", t)
	}
	p.i++
	te := TypeExpr{pos: p.posOf(t), Base: t.text}
	for p.at(tPunct, "[") && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "]" {
		p.i += 2
		te.Dims++
	}
	return te, nil
}

func (p *parser) classDecl() (*ClassDecl, error) {
	kw, err := p.expect(tKeyword, "class")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	c := &ClassDecl{pos: p.posOf(kw), Name: name.text}
	if p.accept(tKeyword, "extends") {
		sup, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		c.Super = sup.text
	}
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tPunct, "}") {
		if p.at(tEOF, "") {
			t := p.cur()
			return nil, errAt(t.line, t.col, "unexpected end of file in class %s", c.Name)
		}
		if err := p.member(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// member parses a field or method declaration into c.
func (p *parser) member(c *ClassDecl) error {
	start := p.cur()
	static := false
	potential := false
	for {
		if p.accept(tKeyword, "static") {
			static = true
			continue
		}
		if p.accept(tKeyword, "potential") {
			potential = true
			continue
		}
		break
	}
	ty, err := p.typeExpr()
	if err != nil {
		return err
	}
	name, err := p.expect(tIdent, "")
	if err != nil {
		return err
	}
	if p.at(tPunct, "(") {
		m := &MethodDecl{pos: p.posOf(start), Name: name.text, Static: static, Potential: potential, Ret: ty}
		p.i++ // '('
		if !p.accept(tPunct, ")") {
			for {
				pt, err := p.typeExpr()
				if err != nil {
					return err
				}
				pn, err := p.expect(tIdent, "")
				if err != nil {
					return err
				}
				m.Params = append(m.Params, Param{pos: p.posOf(pn), Name: pn.text, Type: pt})
				if p.accept(tPunct, ")") {
					break
				}
				if _, err := p.expect(tPunct, ","); err != nil {
					return err
				}
			}
		}
		body, err := p.block()
		if err != nil {
			return err
		}
		m.Body = body
		c.Methods = append(c.Methods, m)
		return nil
	}
	if static || potential {
		return errAt(start.line, start.col, "fields cannot be static or potential")
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return err
	}
	c.Fields = append(c.Fields, &FieldDecl{pos: p.posOf(start), Name: name.text, Type: ty})
	return nil
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(tPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{pos: p.posOf(lb)}
	for !p.accept(tPunct, "}") {
		if p.at(tEOF, "") {
			t := p.cur()
			return nil, errAt(t.line, t.col, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// looksLikeVarDecl distinguishes `T name ...` from an expression.
func (p *parser) looksLikeVarDecl() bool {
	t := p.cur()
	if t.kind == tKeyword && (t.text == "int" || t.text == "float") {
		return true
	}
	if t.kind != tIdent {
		return false
	}
	// ClassName name  |  ClassName[] name
	j := p.i + 1
	for j+1 < len(p.toks) && p.toks[j].kind == tPunct && p.toks[j].text == "[" &&
		p.toks[j+1].kind == tPunct && p.toks[j+1].text == "]" {
		j += 2
	}
	return j < len(p.toks) && p.toks[j].kind == tIdent
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tPunct, "{"):
		return p.block()

	case p.at(tKeyword, "if"):
		p.i++
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		node := &If{pos: p.posOf(t), Cond: cond, Then: then}
		if p.accept(tKeyword, "else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
		return node, nil

	case p.at(tKeyword, "while"):
		p.i++
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{pos: p.posOf(t), Cond: cond, Body: body}, nil

	case p.at(tKeyword, "for"):
		p.i++
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		node := &For{pos: p.posOf(t)}
		if !p.accept(tPunct, ";") {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			node.Init = init
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.at(tPunct, ";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.Cond = cond
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tPunct, ")") {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			node.Post = post
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		node.Body = body
		return node, nil

	case p.at(tKeyword, "break"):
		p.i++
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{pos: p.posOf(t)}, nil

	case p.at(tKeyword, "continue"):
		p.i++
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{pos: p.posOf(t)}, nil

	case p.at(tKeyword, "return"):
		p.i++
		node := &Return{pos: p.posOf(t)}
		if !p.at(tPunct, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.Val = v
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return node, nil

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt is a var declaration or an expression statement (no
// trailing semicolon).
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if p.looksLikeVarDecl() {
		ty, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		node := &VarDecl{pos: p.posOf(t), Type: ty, Name: name.text}
		if p.accept(tPunct, "=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.Init = init
		}
		return node, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{pos: p.posOf(t), E: e}, nil
}

// Expression grammar, lowest precedence first.

func (p *parser) expr() (Expr, error) { return p.assignment() }

func (p *parser) assignment() (Expr, error) {
	lhs, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.at(tPunct, "=") {
		t := p.next()
		switch lhs.(type) {
		case *Ident, *FieldAccess, *Index:
		default:
			return nil, errAt(t.line, t.col, "invalid assignment target")
		}
		rhs, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return &Assign{pos: p.posOf(t), LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) binaryLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tPunct, op) {
				t := p.next()
				r, err := sub()
				if err != nil {
					return nil, err
				}
				l = &Binary{pos: p.posOf(t), Op: op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) orExpr() (Expr, error) {
	return p.binaryLevel([]string{"||"}, p.andExpr)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binaryLevel([]string{"&&"}, p.bitExpr)
}

func (p *parser) bitExpr() (Expr, error) {
	return p.binaryLevel([]string{"&", "|", "^"}, p.eqExpr)
}

func (p *parser) eqExpr() (Expr, error) {
	return p.binaryLevel([]string{"==", "!="}, p.relExpr)
}

func (p *parser) relExpr() (Expr, error) {
	return p.binaryLevel([]string{"<=", ">=", "<", ">"}, p.addExpr)
}

func (p *parser) addExpr() (Expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (Expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unary)
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch {
	case p.at(tPunct, "-"):
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: p.posOf(t), Op: "-", X: x}, nil
	case p.at(tPunct, "!"):
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: p.posOf(t), Op: "!", X: x}, nil
	case p.at(tPunct, "(") && p.toks[p.i+1].kind == tKeyword &&
		(p.toks[p.i+1].text == "int" || p.toks[p.i+1].text == "float") &&
		p.toks[p.i+2].kind == tPunct && p.toks[p.i+2].text == ")":
		p.i++ // '('
		ty, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Cast{pos: p.posOf(t), To: ty, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tPunct, "."):
			t := p.next()
			name, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			if p.at(tPunct, "(") {
				args, err := p.callArgs()
				if err != nil {
					return nil, err
				}
				e = &Call{pos: p.posOf(t), Recv: e, Name: name.text, Args: args}
			} else {
				e = &FieldAccess{pos: p.posOf(t), X: e, Name: name.text}
			}
		case p.at(tPunct, "["):
			t := p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			e = &Index{pos: p.posOf(t), X: e, I: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) callArgs() ([]Expr, error) {
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.accept(tPunct, ")") {
		return args, nil
	}
	for {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.accept(tPunct, ")") {
			return args, nil
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.i++
		return &IntLit{pos: p.posOf(t), V: t.ival}, nil
	case t.kind == tFloat:
		p.i++
		return &FloatLit{pos: p.posOf(t), V: t.fval}, nil
	case p.at(tKeyword, "true"):
		p.i++
		return &BoolLit{pos: p.posOf(t), V: true}, nil
	case p.at(tKeyword, "false"):
		p.i++
		return &BoolLit{pos: p.posOf(t), V: false}, nil
	case p.at(tKeyword, "null"):
		p.i++
		return &NullLit{pos: p.posOf(t)}, nil
	case p.at(tKeyword, "this"):
		p.i++
		return &This{pos: p.posOf(t)}, nil
	case p.at(tKeyword, "new"):
		p.i++
		base := p.cur()
		if !p.isTypeStart() || base.text == "void" {
			return nil, errAt(base.line, base.col, "expected type after new")
		}
		p.i++
		ty := TypeExpr{pos: p.posOf(base), Base: base.text}
		if p.at(tPunct, "[") {
			p.i++
			ln, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			// Further [] pairs add dimensions (allocated empty).
			for p.at(tPunct, "[") && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "]" {
				p.i += 2
				ty.Dims++
			}
			return &New{pos: p.posOf(t), Type: ty, Len: ln}, nil
		}
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return &New{pos: p.posOf(t), Type: ty}, nil
	case t.kind == tIdent:
		p.i++
		if p.at(tPunct, "(") {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &Call{pos: p.posOf(t), Name: t.text, Args: args}, nil
		}
		return &Ident{pos: p.posOf(t), Name: t.text}, nil
	case p.at(tPunct, "("):
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errAt(t.line, t.col, "unexpected %s", t)
}
