package lang

import (
	"strings"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/vm"
)

// run compiles src and invokes Class.method with args, interpreted.
func run(t *testing.T, src, class, method string, args ...vm.Slot) vm.Slot {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	v := vm.New(prog, energy.MicroSPARCIIep())
	res, err := v.InvokeByName(class, method, args)
	if err != nil {
		t.Fatalf("run %s.%s: %v", class, method, err)
	}
	return res
}

func TestArithmeticAndLocals(t *testing.T) {
	src := `
class Main {
  static int calc(int a, int b) {
    int x = a * 3 + b / 2 - 1;
    int y = x % 7;
    return x * 10 + y;
  }
}`
	got := run(t, src, "Main", "calc", vm.IntSlot(5), vm.IntSlot(8)).I
	x := 5*3 + 8/2 - 1
	want := int64(x*10 + x%7)
	if got != want {
		t.Errorf("calc = %d, want %d", got, want)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
class Main {
  static int classify(int n) {
    if (n < 0) { return 0 - 1; }
    else if (n == 0) { return 0; }
    return 1;
  }
  static int gauss(int n) {
    int s = 0;
    for (int i = 1; i <= n; i = i + 1) { s = s + i; }
    return s;
  }
  static int countdown(int n) {
    int c = 0;
    while (n > 0) { n = n - 2; c = c + 1; }
    return c;
  }
}`
	if got := run(t, src, "Main", "classify", vm.IntSlot(-5)).I; got != -1 {
		t.Errorf("classify(-5) = %d", got)
	}
	if got := run(t, src, "Main", "classify", vm.IntSlot(0)).I; got != 0 {
		t.Errorf("classify(0) = %d", got)
	}
	if got := run(t, src, "Main", "gauss", vm.IntSlot(100)).I; got != 5050 {
		t.Errorf("gauss(100) = %d", got)
	}
	if got := run(t, src, "Main", "countdown", vm.IntSlot(9)).I; got != 5 {
		t.Errorf("countdown(9) = %d", got)
	}
}

func TestBooleansAndShortCircuit(t *testing.T) {
	src := `
class Main {
  static int bomb() { return 1 / 0; }
  static int safe(int x) {
    if (x > 0 && 10 / x > 2) { return 1; }
    return 0;
  }
  static int orChain(int x) {
    if (x == 1 || x == 2 || x == 3) { return 1; }
    return 0;
  }
  static int notOp(int x) {
    if (!(x > 5)) { return 1; }
    return 0;
  }
  static int materialize(int a, int b) {
    int c = a < b;
    int d = a == b && true;
    return c * 10 + d;
  }
}`
	// safe(0) divides by zero only if && is not short-circuiting.
	if got := run(t, src, "Main", "safe", vm.IntSlot(0)).I; got != 0 {
		t.Errorf("safe(0) = %d", got)
	}
	if got := run(t, src, "Main", "safe", vm.IntSlot(3)).I; got != 1 {
		t.Errorf("safe(3) = %d", got)
	}
	if got := run(t, src, "Main", "orChain", vm.IntSlot(2)).I; got != 1 {
		t.Errorf("orChain(2) = %d", got)
	}
	if got := run(t, src, "Main", "orChain", vm.IntSlot(7)).I; got != 0 {
		t.Errorf("orChain(7) = %d", got)
	}
	if got := run(t, src, "Main", "notOp", vm.IntSlot(3)).I; got != 1 {
		t.Errorf("notOp(3) = %d", got)
	}
	if got := run(t, src, "Main", "materialize", vm.IntSlot(1), vm.IntSlot(1)).I; got != 1 {
		t.Errorf("materialize(1,1) = %d, want 1", got)
	}
	if got := run(t, src, "Main", "materialize", vm.IntSlot(0), vm.IntSlot(1)).I; got != 10 {
		t.Errorf("materialize(0,1) = %d, want 10", got)
	}
}

func TestFloatsAndCasts(t *testing.T) {
	src := `
class Main {
  static float mean(int a, int b) {
    return (a + b) / 2.0;
  }
  static int trunc(float x) {
    return (int) x;
  }
  static float widen(int x) {
    float f = x;
    return f * 0.5;
  }
  static int fcmp(float a, float b) {
    if (a > b) { return 1; }
    if (a <= b && a >= b) { return 0; }
    return 0 - 1;
  }
}`
	if got := run(t, src, "Main", "mean", vm.IntSlot(3), vm.IntSlot(4)).F; got != 3.5 {
		t.Errorf("mean = %g", got)
	}
	if got := run(t, src, "Main", "trunc", vm.FloatSlot(-2.75)).I; got != -2 {
		t.Errorf("trunc(-2.75) = %d", got)
	}
	if got := run(t, src, "Main", "widen", vm.IntSlot(9)).F; got != 4.5 {
		t.Errorf("widen(9) = %g", got)
	}
	if got := run(t, src, "Main", "fcmp", vm.FloatSlot(2), vm.FloatSlot(1)).I; got != 1 {
		t.Errorf("fcmp(2,1) = %d", got)
	}
	if got := run(t, src, "Main", "fcmp", vm.FloatSlot(1), vm.FloatSlot(1)).I; got != 0 {
		t.Errorf("fcmp(1,1) = %d", got)
	}
}

func TestArrays(t *testing.T) {
	src := `
class Main {
  static int sumSquares(int n) {
    int[] a = new int[n];
    for (int i = 0; i < a.length; i = i + 1) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
  }
  static float dot(int n) {
    float[] x = new float[n];
    float[] y = new float[n];
    for (int i = 0; i < n; i = i + 1) { x[i] = i; y[i] = 2 * i; }
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) { s = s + x[i] * y[i]; }
    return s;
  }
  static int matrix(int n) {
    int[][] m = new int[n][];
    for (int i = 0; i < n; i = i + 1) {
      m[i] = new int[n];
      for (int j = 0; j < n; j = j + 1) { m[i][j] = i * n + j; }
    }
    return m[n-1][n-1];
  }
}`
	if got := run(t, src, "Main", "sumSquares", vm.IntSlot(10)).I; got != 285 {
		t.Errorf("sumSquares(10) = %d", got)
	}
	if got := run(t, src, "Main", "dot", vm.IntSlot(4)).F; got != 28 {
		t.Errorf("dot(4) = %g", got)
	}
	if got := run(t, src, "Main", "matrix", vm.IntSlot(5)).I; got != 24 {
		t.Errorf("matrix(5) = %d", got)
	}
}

func TestObjectsAndVirtualDispatch(t *testing.T) {
	src := `
class Shape {
  int tag;
  int area() { return 0; }
  int describe() { return this.area() * 10 + tag; }
}
class Square extends Shape {
  int side;
  int area() { return side * side; }
}
class Circle extends Shape {
  int r;
  int area() { return 3 * r * r; }
}
class Main {
  static int test() {
    Square s = new Square();
    s.side = 4;
    s.tag = 1;
    Circle c = new Circle();
    c.r = 2;
    c.tag = 2;
    Shape sh = s;
    int total = sh.describe();
    sh = c;
    total = total + sh.describe();
    return total;
  }
}`
	// Square: 16*10+1 = 161; Circle: 12*10+2 = 122; total 283.
	if got := run(t, src, "Main", "test").I; got != 283 {
		t.Errorf("test = %d, want 283", got)
	}
}

func TestLinkedStructures(t *testing.T) {
	src := `
class Node {
  int val;
  Node next;
}
class Main {
  static int listSum(int n) {
    Node head = null;
    for (int i = 1; i <= n; i = i + 1) {
      Node nd = new Node();
      nd.val = i;
      nd.next = head;
      head = nd;
    }
    int s = 0;
    while (head != null) {
      s = s + head.val;
      head = head.next;
    }
    return s;
  }
}`
	if got := run(t, src, "Main", "listSum", vm.IntSlot(10)).I; got != 55 {
		t.Errorf("listSum(10) = %d", got)
	}
}

func TestRecursionAndStatics(t *testing.T) {
	src := `
class Math2 {
  static int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
}
class Main {
  static int go(int n) { return Math2.fib(n); }
}`
	if got := run(t, src, "Main", "go", vm.IntSlot(12)).I; got != 144 {
		t.Errorf("fib(12) = %d", got)
	}
}

func TestInstanceMethodsAndThis(t *testing.T) {
	src := `
class Counter {
  int n;
  void bump(int by) { n = n + by; }
  int get() { return n; }
  int bumpTwice(int by) {
    bump(by);
    this.bump(by);
    return get();
  }
}
class Main {
  static int test() {
    Counter c = new Counter();
    return c.bumpTwice(7);
  }
}`
	if got := run(t, src, "Main", "test").I; got != 14 {
		t.Errorf("test = %d, want 14", got)
	}
}

func TestPotentialModifier(t *testing.T) {
	src := `
class App {
  potential static int work(int n) { return n * 2; }
  static int local(int n) { return n + 1; }
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if m := prog.FindMethod("App", "work"); !m.Potential {
		t.Error("work should be potential")
	}
	if m := prog.FindMethod("App", "local"); m.Potential {
		t.Error("local should not be potential")
	}
	if ms := prog.PotentialMethods(); len(ms) != 1 {
		t.Errorf("PotentialMethods = %d entries", len(ms))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"unknown type":       `class A { static Foo f() { return null; } }`,
		"unknown variable":   `class A { static int f() { return x; } }`,
		"unknown method":     `class A { static int f() { return g(); } }`,
		"arity mismatch":     `class A { static int g(int x) { return x; } static int f() { return g(); } }`,
		"type mismatch":      `class A { static int f() { return 1.5; } }`,
		"float mod":          `class A { static float f(float x) { return x % 2.0; } }`,
		"assign to rvalue":   `class A { static void f() { 1 = 2; } }`,
		"this in static":     `class A { int x; static int f() { return this.x; } }`,
		"dup class":          `class A { } class A { }`,
		"dup variable":       `class A { static void f() { int x = 1; int x = 2; } }`,
		"void variable":      `class A { static void f() { void v; } }`,
		"bad override":       `class A { int m() { return 1; } } class B extends A { float m() { return 1.0; } }`,
		"index non-array":    `class A { static int f(int x) { return x[0]; } }`,
		"unknown field":      `class A { static int f(A a) { return a.zz; } }`,
		"instance as static": `class A { int m() { return 1; } static int f() { return m(); } }`,
		"assign expr":        `class A { static int f(int x) { return x = 3; } }`,
		"unterminated":       `class A { static int f() { return 1; }`,
		"bad char":           `class A { static int f() { return 1 # 2; } }`,
		"reserved class":     `class int { }`,
		"compare ref int":    `class A { static int f(A a) { if (a == 1) { return 1; } return 0; } }`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

func TestRuntimeNullAndBounds(t *testing.T) {
	src := `
class Node { int v; Node next; }
class Main {
  static int deref(Node n) { return n.v; }
  static int oob(int n) { int[] a = new int[n]; return a[n]; }
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(prog, energy.MicroSPARCIIep())
	if _, err := v.InvokeByName("Main", "deref", []vm.Slot{vm.RefSlot(0)}); err == nil {
		t.Error("null deref should fail")
	}
	if _, err := v.InvokeByName("Main", "oob", []vm.Slot{vm.IntSlot(3)}); err == nil {
		t.Error("out of bounds should fail")
	}
}

func TestCommentsAndFormats(t *testing.T) {
	src := `
// line comment
class Main {
  /* block
     comment */
  static int f() {
    int x = 10; // trailing
    return x * 2;
  }
}`
	if got := run(t, src, "Main", "f").I; got != 20 {
		t.Errorf("f = %d", got)
	}
}

func TestErrorMessagesHavePositions(t *testing.T) {
	_, err := Compile("class A {\n  static int f() { return y; }\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "mj:2:") {
		t.Errorf("error %q lacks line info", err)
	}
}

func TestInt32Semantics(t *testing.T) {
	src := `
class Main {
  static int overflow() {
    int x = 2147483647;
    return x + 1;
  }
  static int negdiv() { return (0 - 7) / 2; }
  static int negrem() { return (0 - 7) % 2; }
}`
	if got := run(t, src, "Main", "overflow").I; got != -2147483648 {
		t.Errorf("overflow = %d", got)
	}
	if got := run(t, src, "Main", "negdiv").I; got != -3 {
		t.Errorf("negdiv = %d (Java truncates toward zero)", got)
	}
	if got := run(t, src, "Main", "negrem").I; got != -1 {
		t.Errorf("negrem = %d", got)
	}
}

func TestBitwiseOps(t *testing.T) {
	src := `
class Main {
  static int f(int a, int b) {
    return (a & b) * 100 + (a | b) * 10 + (a ^ b);
  }
}`
	if got := run(t, src, "Main", "f", vm.IntSlot(12), vm.IntSlot(10)).I; got != 8*100+14*10+6 {
		t.Errorf("bitwise = %d", got)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
class P {
  static int f() {
    return 2 + 3 * 4;            // 14
  }
  static int g() {
    return (2 + 3) * 4;          // 20
  }
  static int h(int a, int b) {
    return a - b - 1;            // left assoc
  }
  static int cmp(int a, int b) {
    return a + 1 < b * 2;        // arithmetic binds tighter than <
  }
  static int logic(int a, int b) {
    return a == 1 && b == 2 || a == 3;  // && over ||
  }
  static int bits(int a, int b) {
    return a & b ^ a | b;
  }
  static int unary(int a) {
    return -a * 2;               // (-a)*2
  }
}`
	if got := run(t, src, "P", "f").I; got != 14 {
		t.Errorf("f = %d", got)
	}
	if got := run(t, src, "P", "g").I; got != 20 {
		t.Errorf("g = %d", got)
	}
	if got := run(t, src, "P", "h", vm.IntSlot(10), vm.IntSlot(3)).I; got != 6 {
		t.Errorf("h = %d", got)
	}
	if got := run(t, src, "P", "cmp", vm.IntSlot(2), vm.IntSlot(2)).I; got != 1 {
		t.Errorf("cmp = %d", got)
	}
	if got := run(t, src, "P", "logic", vm.IntSlot(1), vm.IntSlot(2)).I; got != 1 {
		t.Errorf("logic(1,2) = %d", got)
	}
	if got := run(t, src, "P", "logic", vm.IntSlot(3), vm.IntSlot(0)).I; got != 1 {
		t.Errorf("logic(3,0) = %d", got)
	}
	if got := run(t, src, "P", "unary", vm.IntSlot(5)).I; got != -10 {
		t.Errorf("unary = %d", got)
	}
}

func TestChainedFieldAccess(t *testing.T) {
	src := `
class Node { int v; Node next; }
class C {
  static int third(int a, int b, int c) {
    Node n1 = new Node(); Node n2 = new Node(); Node n3 = new Node();
    n1.v = a; n2.v = b; n3.v = c;
    n1.next = n2;
    n2.next = n3;
    n1.next.next.v = n1.next.next.v + 100;
    return n1.next.next.v;
  }
}`
	got := run(t, src, "C", "third", vm.IntSlot(1), vm.IntSlot(2), vm.IntSlot(3)).I
	if got != 103 {
		t.Errorf("third = %d, want 103", got)
	}
}

func TestObjectArrays(t *testing.T) {
	src := `
class Item { int w; }
class C {
  static int heaviest(int n) {
    Item[] items = new Item[n];
    for (int i = 0; i < n; i = i + 1) {
      items[i] = new Item();
      items[i].w = (i * 37) % 17;
    }
    int best = 0;
    for (int i = 1; i < n; i = i + 1) {
      if (items[i].w > items[best].w) { best = i; }
    }
    return items[best].w * 1000 + best;
  }
}`
	want := func(n int) int64 {
		type item struct{ w int }
		items := make([]item, n)
		for i := range items {
			items[i].w = (i * 37) % 17
		}
		best := 0
		for i := 1; i < n; i++ {
			if items[i].w > items[best].w {
				best = i
			}
		}
		return int64(items[best].w*1000 + best)
	}
	for _, n := range []int32{1, 5, 24} {
		if got := run(t, src, "C", "heaviest", vm.IntSlot(n)).I; got != want(int(n)) {
			t.Errorf("heaviest(%d) = %d, want %d", n, got, want(int(n)))
		}
	}
}

func TestForLoopVariants(t *testing.T) {
	src := `
class C {
  static int noInit(int n) {
    int s = 0;
    int i = 0;
    for (; i < n; i = i + 1) { s = s + 1; }
    return s;
  }
  static int noPost(int n) {
    int s = 0;
    for (int i = 0; i < n;) { s = s + 2; i = i + 1; }
    return s;
  }
  static int breakless(int n) {
    // "infinite" for with an internal return.
    for (int i = 0; true; i = i + 1) {
      if (i >= n) { return i; }
    }
    return 0 - 1;
  }
}`
	if got := run(t, src, "C", "noInit", vm.IntSlot(7)).I; got != 7 {
		t.Errorf("noInit = %d", got)
	}
	if got := run(t, src, "C", "noPost", vm.IntSlot(7)).I; got != 14 {
		t.Errorf("noPost = %d", got)
	}
	if got := run(t, src, "C", "breakless", vm.IntSlot(9)).I; got != 9 {
		t.Errorf("breakless = %d", got)
	}
}

func TestShadowingScopes(t *testing.T) {
	src := `
class C {
  static int f(int x) {
    int y = 1;
    {
      int z = 10;
      y = y + z + x;
    }
    {
      int z = 20;  // new scope, fresh slot
      y = y + z;
    }
    return y;
  }
}`
	if got := run(t, src, "C", "f", vm.IntSlot(5)).I; got != 36 {
		t.Errorf("f = %d, want 36", got)
	}
}

func TestSuperclassFieldAccessThroughSubclass(t *testing.T) {
	src := `
class Base { int a; }
class Mid extends Base { int b; }
class Leaf extends Mid {
  int c;
  int sum() { return a + b + c; }
}
class C {
  static int test() {
    Leaf l = new Leaf();
    l.a = 1; l.b = 2; l.c = 4;
    Base as = l;
    as.a = 10;
    return l.sum();
  }
}`
	if got := run(t, src, "C", "test").I; got != 16 {
		t.Errorf("test = %d, want 16", got)
	}
}

func TestFloatScientificLiterals(t *testing.T) {
	src := `
class C {
  static float f() { return 1.5e2 + 2.5e-1; }
}`
	if got := run(t, src, "C", "f").F; got != 150.25 {
		t.Errorf("f = %g", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
class C {
  static int firstDivisor(int n) {
    int d = 0;
    for (int i = 2; i < n; i = i + 1) {
      if (n % i == 0) { d = i; break; }
    }
    return d;
  }
  static int sumOdds(int n) {
    int s = 0;
    for (int i = 0; i <= n; i = i + 1) {
      if (i % 2 == 0) { continue; }
      s = s + i;
    }
    return s;
  }
  static int whileBreak(int n) {
    int i = 0;
    while (true) {
      if (i >= n) { break; }
      i = i + 2;
    }
    return i;
  }
  static int nested(int n) {
    int count = 0;
    for (int i = 0; i < n; i = i + 1) {
      for (int j = 0; j < n; j = j + 1) {
        if (j > i) { break; }       // inner break only
        if ((i + j) % 3 == 0) { continue; }
        count = count + 1;
      }
    }
    return count;
  }
}`
	if got := run(t, src, "C", "firstDivisor", vm.IntSlot(91)).I; got != 7 {
		t.Errorf("firstDivisor(91) = %d, want 7", got)
	}
	if got := run(t, src, "C", "sumOdds", vm.IntSlot(10)).I; got != 25 {
		t.Errorf("sumOdds(10) = %d, want 25", got)
	}
	if got := run(t, src, "C", "whileBreak", vm.IntSlot(7)).I; got != 8 {
		t.Errorf("whileBreak(7) = %d, want 8", got)
	}
	// Oracle for nested.
	oracle := func(n int) int64 {
		count := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j > i {
					break
				}
				if (i+j)%3 == 0 {
					continue
				}
				count++
			}
		}
		return int64(count)
	}
	for _, n := range []int32{0, 1, 5, 12} {
		if got := run(t, src, "C", "nested", vm.IntSlot(n)).I; got != oracle(int(n)) {
			t.Errorf("nested(%d) = %d, want %d", n, got, oracle(int(n)))
		}
	}
}

func TestBreakContinueErrors(t *testing.T) {
	cases := map[string]string{
		"break outside":    `class A { static void f() { break; } }`,
		"continue outside": `class A { static void f() { continue; } }`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

// TestBreakContinueThroughJIT confirms the new control flow compiles
// correctly at every optimization level (continue targets the for-post
// block, which creates extra join points).
func TestBreakContinueAllEngines(t *testing.T) {
	src := `
class C {
  static int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
      if (i % 4 == 1) { continue; }
      if (s > 400) { break; }
      s = s + i;
    }
    return s;
  }
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(prog, energy.MicroSPARCIIep())
	want, err := v.InvokeByName("C", "f", []vm.Slot{vm.IntSlot(100)})
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(n int) int64 {
		s := 0
		for i := 0; i < n; i++ {
			if i%4 == 1 {
				continue
			}
			if s > 400 {
				break
			}
			s += i
		}
		return int64(s)
	}
	if want.I != oracle(100) {
		t.Fatalf("interp = %d, oracle %d", want.I, oracle(100))
	}
}
