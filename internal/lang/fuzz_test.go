package lang

import (
	"fmt"
	"strings"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Source-level differential fuzzing: random int expression trees are
// rendered to MJ, compiled, interpreted, and compared against a direct
// Go evaluation with Java's 32-bit wrapping semantics. This pins the
// whole pipeline — precedence in the parser, typing, code generation,
// the verifier, and the interpreter — against an independent oracle.

type exprNode struct {
	op   string // "a", "b", "lit", or a binary operator
	lit  int32
	l, r *exprNode
}

func genExpr(r *rng.RNG, depth int) *exprNode {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return &exprNode{op: "a"}
		case 1:
			return &exprNode{op: "b"}
		default:
			return &exprNode{op: "lit", lit: int32(r.Intn(201) - 100)}
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "/", "%"}
	op := ops[r.Intn(len(ops))]
	n := &exprNode{op: op, l: genExpr(r, depth-1)}
	if op == "/" || op == "%" {
		// Non-zero constant divisor keeps the program total.
		n.r = &exprNode{op: "lit", lit: int32(r.Intn(50) + 1)}
		if r.Intn(2) == 0 {
			n.r.lit = -n.r.lit
		}
	} else {
		n.r = genExpr(r, depth-1)
	}
	return n
}

func (n *exprNode) render(sb *strings.Builder) {
	switch n.op {
	case "a", "b":
		sb.WriteString(n.op)
	case "lit":
		if n.lit < 0 {
			fmt.Fprintf(sb, "(0 - %d)", -int64(n.lit))
		} else {
			fmt.Fprintf(sb, "%d", n.lit)
		}
	default:
		sb.WriteByte('(')
		n.l.render(sb)
		fmt.Fprintf(sb, " %s ", n.op)
		n.r.render(sb)
		sb.WriteByte(')')
	}
}

func (n *exprNode) eval(a, b int32) int32 {
	switch n.op {
	case "a":
		return a
	case "b":
		return b
	case "lit":
		return n.lit
	}
	x, y := n.l.eval(a, b), n.r.eval(a, b)
	switch n.op {
	case "+":
		return x + y
	case "-":
		return x - y
	case "*":
		return x * y
	case "&":
		return x & y
	case "|":
		return x | y
	case "^":
		return x ^ y
	case "/":
		return int32(int64(x) / int64(y)) // y never 0 or... INT_MIN/-1 wraps below
	case "%":
		return int32(int64(x) % int64(y))
	default:
		panic("bad op")
	}
}

func TestExpressionFuzz(t *testing.T) {
	r := rng.New(20030705)
	for trial := 0; trial < 150; trial++ {
		tree := genExpr(r, 4)
		var sb strings.Builder
		tree.render(&sb)
		src := fmt.Sprintf(`class F { static int f(int a, int b) { return %s; } }`, sb.String())
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: %v\nsource: %s", trial, err, src)
		}
		v := vm.New(prog, energy.MicroSPARCIIep())
		a, b := int32(r.Intn(2001)-1000), int32(r.Intn(2001)-1000)
		res, err := v.InvokeByName("F", "f", []vm.Slot{vm.IntSlot(a), vm.IntSlot(b)})
		if err != nil {
			t.Fatalf("trial %d: %v\nsource: %s", trial, err, src)
		}
		want := tree.eval(a, b)
		if int32(res.I) != want {
			t.Fatalf("trial %d: f(%d,%d) = %d, want %d\nsource: %s",
				trial, a, b, res.I, want, src)
		}
	}
}

// TestConditionFuzz does the same for boolean conditions: random
// comparison/logic trees in if statements.
func TestConditionFuzz(t *testing.T) {
	r := rng.New(77077)
	comparisons := []string{"<", "<=", ">", ">=", "==", "!="}
	logic := []string{"&&", "||"}
	var genCond func(depth int) (string, func(a, b int32) bool)
	genCond = func(depth int) (string, func(a, b int32) bool) {
		if depth <= 0 || r.Intn(2) == 0 {
			op := comparisons[r.Intn(len(comparisons))]
			c := int32(r.Intn(21) - 10)
			lhsIsA := r.Intn(2) == 0
			src := fmt.Sprintf("a %s %d", op, c)
			if !lhsIsA {
				src = fmt.Sprintf("b %s %d", op, c)
			}
			return src, func(a, b int32) bool {
				x := a
				if !lhsIsA {
					x = b
				}
				switch op {
				case "<":
					return x < c
				case "<=":
					return x <= c
				case ">":
					return x > c
				case ">=":
					return x >= c
				case "==":
					return x == c
				default:
					return x != c
				}
			}
		}
		op := logic[r.Intn(2)]
		negate := r.Intn(3) == 0
		ls, lf := genCond(depth - 1)
		rs, rf := genCond(depth - 1)
		src := fmt.Sprintf("(%s %s %s)", ls, op, rs)
		f := func(a, b int32) bool {
			if op == "&&" {
				return lf(a, b) && rf(a, b)
			}
			return lf(a, b) || rf(a, b)
		}
		if negate {
			src = "!" + src
			inner := f
			f = func(a, b int32) bool { return !inner(a, b) }
		}
		return src, f
	}
	for trial := 0; trial < 120; trial++ {
		condSrc, oracle := genCond(3)
		src := fmt.Sprintf(`class F { static int f(int a, int b) { if (%s) { return 1; } return 0; } }`, condSrc)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: %v\nsource: %s", trial, err, src)
		}
		v := vm.New(prog, energy.MicroSPARCIIep())
		a, b := int32(r.Intn(41)-20), int32(r.Intn(41)-20)
		res, err := v.InvokeByName("F", "f", []vm.Slot{vm.IntSlot(a), vm.IntSlot(b)})
		if err != nil {
			t.Fatalf("trial %d: %v\nsource: %s", trial, err, src)
		}
		want := int64(0)
		if oracle(a, b) {
			want = 1
		}
		if res.I != want {
			t.Fatalf("trial %d: f(%d,%d) = %d, want %d\ncond: %s", trial, a, b, res.I, want, condSrc)
		}
	}
}
