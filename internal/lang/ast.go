package lang

// AST node definitions. Every node carries its source position for
// error reporting.

type pos struct {
	Line, Col int
}

// File is a parsed compilation unit.
type File struct {
	Classes []*ClassDecl
}

// TypeExpr is a syntactic type: a base name plus array dimensions.
type TypeExpr struct {
	pos
	Base string // "int", "float", "void", or a class name
	Dims int
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	pos
	Name    string
	Super   string
	Fields  []*FieldDecl
	Methods []*MethodDecl
}

// FieldDecl is an instance field.
type FieldDecl struct {
	pos
	Name string
	Type TypeExpr
}

// Param is a method parameter.
type Param struct {
	pos
	Name string
	Type TypeExpr
}

// MethodDecl is a method declaration. Potential marks the method as a
// candidate for remote execution.
type MethodDecl struct {
	pos
	Name      string
	Static    bool
	Potential bool
	Params    []Param
	Ret       TypeExpr
	Body      *Block
}

// Statements.

type Stmt interface{ stmtNode() }

// Block is { stmt* } with its own variable scope.
type Block struct {
	pos
	Stmts []Stmt
}

// VarDecl declares a local, optionally initialized.
type VarDecl struct {
	pos
	Type TypeExpr
	Name string
	Init Expr // may be nil
}

// If is an if/else statement.
type If struct {
	pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	pos
	Cond Expr
	Body Stmt
}

// For is a C-style for loop.
type For struct {
	pos
	Init Stmt // VarDecl or ExprStmt; may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // ExprStmt; may be nil
	Body Stmt
}

// Return returns from the method.
type Return struct {
	pos
	Val Expr // nil for void
}

// Break exits the innermost loop.
type Break struct{ pos }

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	pos
	E Expr
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}

// Expressions.

type Expr interface {
	exprNode()
	Pos() pos
}

// IntLit is an integer literal.
type IntLit struct {
	pos
	V int64
}

// FloatLit is a float literal.
type FloatLit struct {
	pos
	V float64
}

// BoolLit is true/false (typed int).
type BoolLit struct {
	pos
	V bool
}

// NullLit is the null reference.
type NullLit struct{ pos }

// This is the receiver reference.
type This struct{ pos }

// Ident names a local, parameter, implicit field, or (in qualified
// calls) a class.
type Ident struct {
	pos
	Name string
}

// Unary is -x or !x.
type Unary struct {
	pos
	Op string
	X  Expr
}

// Binary is a binary operator, including comparisons and &&/||.
type Binary struct {
	pos
	Op   string
	L, R Expr
}

// Assign is lvalue = value.
type Assign struct {
	pos
	LHS Expr // Ident, FieldAccess or Index
	RHS Expr
}

// Index is a[i].
type Index struct {
	pos
	X, I Expr
}

// FieldAccess is x.name; name "length" on arrays is the length.
type FieldAccess struct {
	pos
	X    Expr
	Name string
}

// Call is a method call. Recv is nil for unqualified calls (implicit
// this or same-class static); if Recv is an Ident naming a class, the
// call is a qualified static call.
type Call struct {
	pos
	Recv Expr
	Name string
	Args []Expr
}

// New is new T() or new T[len] (possibly multi-dim new T[len][]).
type New struct {
	pos
	Type TypeExpr // the element/class type with Dims set for arrays
	Len  Expr     // nil for object creation
}

// Cast is (int)x or (float)x.
type Cast struct {
	pos
	To TypeExpr
	X  Expr
}

func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*This) exprNode()        {}
func (*Ident) exprNode()       {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Assign) exprNode()      {}
func (*Index) exprNode()       {}
func (*FieldAccess) exprNode() {}
func (*Call) exprNode()        {}
func (*New) exprNode()         {}
func (*Cast) exprNode()        {}

func (p pos) Pos() pos { return p }
