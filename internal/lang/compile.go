package lang

import (
	"fmt"

	"greenvm/internal/bytecode"
)

// Compile parses, type-checks and code-generates an MJ source file
// into a linked, verified MJVM program.
func Compile(src string) (*bytecode.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{file: file, classByName: map[string]*ClassDecl{}}
	prog, err := c.compile()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustCompile compiles statically known-good source (the built-in
// benchmark applications) and panics on error.
func MustCompile(src string) *bytecode.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

type compiler struct {
	file        *File
	prog        *bytecode.Program
	classByName map[string]*ClassDecl
}

// resolveType converts a syntactic type to a bytecode type.
func (c *compiler) resolveType(te TypeExpr, allowVoid bool) (bytecode.Type, error) {
	var base bytecode.Type
	switch te.Base {
	case "int":
		base = bytecode.TInt
	case "float":
		base = bytecode.TFloat
	case "void":
		if !allowVoid || te.Dims > 0 {
			return bytecode.TVoid, errAt(te.Line, te.Col, "void is not a value type")
		}
		return bytecode.TVoid, nil
	default:
		if _, ok := c.classByName[te.Base]; !ok {
			return bytecode.TVoid, errAt(te.Line, te.Col, "unknown type %s", te.Base)
		}
		base = bytecode.TObject(te.Base)
	}
	for i := 0; i < te.Dims; i++ {
		base = bytecode.TArray(base)
	}
	return base, nil
}

func (c *compiler) compile() (*bytecode.Program, error) {
	// Pass 1: declare classes and signatures.
	for _, cd := range c.file.Classes {
		if _, dup := c.classByName[cd.Name]; dup {
			return nil, errAt(cd.Line, cd.Col, "duplicate class %s", cd.Name)
		}
		if cd.Name == "int" || cd.Name == "float" || cd.Name == "void" {
			return nil, errAt(cd.Line, cd.Col, "reserved class name %s", cd.Name)
		}
		c.classByName[cd.Name] = cd
	}
	c.prog = &bytecode.Program{}
	declByName := map[string]*bytecode.Class{}
	for _, cd := range c.file.Classes {
		bc := &bytecode.Class{Name: cd.Name, SuperName: cd.Super}
		if cd.Super != "" {
			if _, ok := c.classByName[cd.Super]; !ok {
				return nil, errAt(cd.Line, cd.Col, "unknown superclass %s", cd.Super)
			}
		}
		for _, fd := range cd.Fields {
			ft, err := c.resolveType(fd.Type, false)
			if err != nil {
				return nil, err
			}
			bc.Fields = append(bc.Fields, bytecode.Field{Name: fd.Name, Type: ft})
		}
		for _, md := range cd.Methods {
			ret, err := c.resolveType(md.Ret, true)
			if err != nil {
				return nil, err
			}
			m := &bytecode.Method{
				Name:      md.Name,
				Static:    md.Static,
				Ret:       ret,
				Potential: md.Potential,
			}
			for _, pm := range md.Params {
				pt, err := c.resolveType(pm.Type, false)
				if err != nil {
					return nil, err
				}
				m.Params = append(m.Params, pt)
			}
			bc.Methods = append(bc.Methods, m)
		}
		c.prog.Classes = append(c.prog.Classes, bc)
		declByName[cd.Name] = bc
	}
	if err := c.prog.Link(); err != nil {
		return nil, err
	}
	// Method overriding must preserve signatures for vtable dispatch.
	for _, cd := range c.file.Classes {
		bc := declByName[cd.Name]
		if bc.Super == nil {
			continue
		}
		for _, m := range bc.Methods {
			if m.Static {
				continue
			}
			if base := bc.Super.Resolve(m.Name); base != nil {
				if !sameSignature(base, m) {
					return nil, errAt(cd.Line, cd.Col,
						"%s.%s overrides %s with a different signature", cd.Name, m.Name, base.QName())
				}
			}
		}
	}
	// Pass 2: generate code.
	for _, cd := range c.file.Classes {
		bc := declByName[cd.Name]
		for i, md := range cd.Methods {
			g := &genCtx{c: c, class: bc, decl: md, m: bc.Methods[i], asm: bytecode.NewAsm()}
			if err := g.genMethod(); err != nil {
				return nil, err
			}
		}
	}
	if err := c.prog.Verify(); err != nil {
		return nil, fmt.Errorf("mj: internal error: generated code failed verification: %w", err)
	}
	return c.prog, nil
}

func sameSignature(a, b *bytecode.Method) bool {
	if !a.Ret.Equal(b.Ret) || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if !a.Params[i].Equal(b.Params[i]) {
			return false
		}
	}
	return true
}

// genCtx generates one method body.
type genCtx struct {
	c     *compiler
	class *bytecode.Class
	decl  *MethodDecl
	m     *bytecode.Method
	asm   *bytecode.Asm

	scopes    []map[string]localVar
	nextLocal int
	labelN    int
	// loops tracks enclosing loop labels for break/continue.
	loops []loopLabels
}

type loopLabels struct {
	brk, cont string
}

type localVar struct {
	slot int
	ty   bytecode.Type
}

func (g *genCtx) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

func (g *genCtx) pushScope() { g.scopes = append(g.scopes, map[string]localVar{}) }
func (g *genCtx) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *genCtx) declare(p pos, name string, ty bytecode.Type) (int, error) {
	top := g.scopes[len(g.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, errAt(p.Line, p.Col, "duplicate variable %s", name)
	}
	slot := g.nextLocal
	g.nextLocal++
	top[name] = localVar{slot: slot, ty: ty}
	return slot, nil
}

func (g *genCtx) lookup(name string) (localVar, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if v, ok := g.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

func (g *genCtx) genMethod() error {
	g.pushScope()
	if !g.m.Static {
		g.scopes[0]["this"] = localVar{slot: 0, ty: bytecode.TObject(g.class.Name)}
		g.nextLocal = 1
	}
	for i, pm := range g.decl.Params {
		if _, err := g.declare(pm.pos, pm.Name, g.m.Params[i]); err != nil {
			return err
		}
	}
	if err := g.genBlock(g.decl.Body); err != nil {
		return err
	}
	// Implicit return for void methods (dead if the body returned).
	if g.m.Ret.Kind == bytecode.KVoid {
		g.asm.Op(bytecode.RETURN)
	} else if g.asm.Len() == 0 {
		return errAt(g.decl.Line, g.decl.Col, "%s: missing return", g.m.QName())
	}
	code, err := g.asm.Finish()
	if err != nil {
		return errAt(g.decl.Line, g.decl.Col, "%s: %v", g.m.QName(), err)
	}
	g.m.Code = code
	g.m.MaxLocals = g.nextLocal
	g.popScope()
	return nil
}

// zeroValue emits the zero of ty (locals are definitely assigned).
func (g *genCtx) zeroValue(ty bytecode.Type) {
	switch ty.Kind {
	case bytecode.KFloat:
		g.asm.Fconst(0)
	case bytecode.KRef:
		g.asm.Op(bytecode.ACONSTNULL)
	default:
		g.asm.Iconst(0)
	}
}

func storeOp(k bytecode.Kind) bytecode.Opcode {
	switch k {
	case bytecode.KFloat:
		return bytecode.FSTORE
	case bytecode.KRef:
		return bytecode.ASTORE
	default:
		return bytecode.ISTORE
	}
}

func loadOp(k bytecode.Kind) bytecode.Opcode {
	switch k {
	case bytecode.KFloat:
		return bytecode.FLOAD
	case bytecode.KRef:
		return bytecode.ALOAD
	default:
		return bytecode.ILOAD
	}
}

func (g *genCtx) genBlock(b *Block) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *genCtx) genStmt(s Stmt) error {
	switch n := s.(type) {
	case *Block:
		return g.genBlock(n)

	case *VarDecl:
		ty, err := g.c.resolveType(n.Type, false)
		if err != nil {
			return err
		}
		slot, err := g.declare(n.pos, n.Name, ty)
		if err != nil {
			return err
		}
		if n.Init != nil {
			if err := g.genCoerced(n.Init, ty); err != nil {
				return err
			}
		} else {
			g.zeroValue(ty)
		}
		g.asm.OpA(storeOp(ty.Kind), int32(slot))
		return nil

	case *If:
		elseL, endL := g.label("else"), g.label("endif")
		if err := g.genCond(n.Cond, elseL, false); err != nil {
			return err
		}
		if err := g.genStmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			g.asm.Branch(bytecode.GOTO, endL)
			g.asm.Label(elseL)
			if err := g.genStmt(n.Else); err != nil {
				return err
			}
			g.asm.Label(endL)
		} else {
			g.asm.Label(elseL)
		}
		return nil

	case *While:
		loopL, endL := g.label("loop"), g.label("endloop")
		g.asm.Label(loopL)
		if err := g.genCond(n.Cond, endL, false); err != nil {
			return err
		}
		g.loops = append(g.loops, loopLabels{brk: endL, cont: loopL})
		err := g.genStmt(n.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.asm.Branch(bytecode.GOTO, loopL)
		g.asm.Label(endL)
		return nil

	case *For:
		g.pushScope()
		defer g.popScope()
		if n.Init != nil {
			if err := g.genStmt(n.Init); err != nil {
				return err
			}
		}
		loopL, postL, endL := g.label("for"), g.label("forpost"), g.label("endfor")
		g.asm.Label(loopL)
		if n.Cond != nil {
			if err := g.genCond(n.Cond, endL, false); err != nil {
				return err
			}
		}
		// continue jumps to the post statement, as in Java.
		g.loops = append(g.loops, loopLabels{brk: endL, cont: postL})
		err := g.genStmt(n.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.asm.Label(postL)
		if n.Post != nil {
			if err := g.genStmt(n.Post); err != nil {
				return err
			}
		}
		g.asm.Branch(bytecode.GOTO, loopL)
		g.asm.Label(endL)
		return nil

	case *Break:
		if len(g.loops) == 0 {
			return errAt(n.Line, n.Col, "break outside a loop")
		}
		g.asm.Branch(bytecode.GOTO, g.loops[len(g.loops)-1].brk)
		return nil

	case *Continue:
		if len(g.loops) == 0 {
			return errAt(n.Line, n.Col, "continue outside a loop")
		}
		g.asm.Branch(bytecode.GOTO, g.loops[len(g.loops)-1].cont)
		return nil

	case *Return:
		if g.m.Ret.Kind == bytecode.KVoid {
			if n.Val != nil {
				return errAt(n.Line, n.Col, "void method returns a value")
			}
			g.asm.Op(bytecode.RETURN)
			return nil
		}
		if n.Val == nil {
			return errAt(n.Line, n.Col, "missing return value")
		}
		if err := g.genCoerced(n.Val, g.m.Ret); err != nil {
			return err
		}
		switch g.m.Ret.Kind {
		case bytecode.KFloat:
			g.asm.Op(bytecode.FRETURN)
		case bytecode.KRef:
			g.asm.Op(bytecode.ARETURN)
		default:
			g.asm.Op(bytecode.IRETURN)
		}
		return nil

	case *ExprStmt:
		switch e := n.E.(type) {
		case *Assign:
			return g.genAssign(e)
		case *Call:
			ty, err := g.genExpr(e)
			if err != nil {
				return err
			}
			if ty.Kind != bytecode.KVoid {
				g.asm.Op(bytecode.POP)
			}
			return nil
		default:
			return errAt(n.Line, n.Col, "expression statement must be an assignment or a call")
		}

	default:
		return fmt.Errorf("mj: unhandled statement %T", s)
	}
}

// genAssign generates lhs = rhs.
func (g *genCtx) genAssign(a *Assign) error {
	switch lhs := a.LHS.(type) {
	case *Ident:
		if v, ok := g.lookup(lhs.Name); ok {
			if err := g.genCoerced(a.RHS, v.ty); err != nil {
				return err
			}
			g.asm.OpA(storeOp(v.ty.Kind), int32(v.slot))
			return nil
		}
		// Implicit this.field.
		fs, err := g.implicitField(lhs.pos, lhs.Name)
		if err != nil {
			return err
		}
		g.asm.OpA(bytecode.ALOAD, 0)
		if err := g.genCoerced(a.RHS, fs.Type); err != nil {
			return err
		}
		g.asm.OpA(putFieldOp(fs.Type.Kind), int32(fs.Slot))
		return nil

	case *FieldAccess:
		xt, err := g.genExpr(lhs.X)
		if err != nil {
			return err
		}
		fs, err := g.fieldOf(lhs.pos, xt, lhs.Name)
		if err != nil {
			return err
		}
		if err := g.genCoerced(a.RHS, fs.Type); err != nil {
			return err
		}
		g.asm.OpA(putFieldOp(fs.Type.Kind), int32(fs.Slot))
		return nil

	case *Index:
		elem, err := g.genIndexPrefix(lhs)
		if err != nil {
			return err
		}
		if err := g.genCoerced(a.RHS, elem); err != nil {
			return err
		}
		switch elem.Kind {
		case bytecode.KFloat:
			g.asm.Op(bytecode.FASTORE)
		case bytecode.KRef:
			g.asm.Op(bytecode.AASTORE)
		default:
			g.asm.Op(bytecode.IASTORE)
		}
		return nil

	default:
		return errAt(a.Line, a.Col, "invalid assignment target")
	}
}

func putFieldOp(k bytecode.Kind) bytecode.Opcode {
	switch k {
	case bytecode.KFloat:
		return bytecode.PUTFF
	case bytecode.KRef:
		return bytecode.PUTFA
	default:
		return bytecode.PUTFI
	}
}

func getFieldOp(k bytecode.Kind) bytecode.Opcode {
	switch k {
	case bytecode.KFloat:
		return bytecode.GETFF
	case bytecode.KRef:
		return bytecode.GETFA
	default:
		return bytecode.GETFI
	}
}

// genIndexPrefix emits array and index, returning the element type.
func (g *genCtx) genIndexPrefix(ix *Index) (bytecode.Type, error) {
	xt, err := g.genExpr(ix.X)
	if err != nil {
		return bytecode.TVoid, err
	}
	if !xt.IsArray() {
		return bytecode.TVoid, errAt(ix.Line, ix.Col, "indexing non-array type %v", xt)
	}
	if err := g.genCoerced(ix.I, bytecode.TInt); err != nil {
		return bytecode.TVoid, err
	}
	return *xt.Elem, nil
}

// implicitField resolves a bare identifier as this.field.
func (g *genCtx) implicitField(p pos, name string) (*bytecode.FieldSlot, error) {
	if g.m.Static {
		return nil, errAt(p.Line, p.Col, "unknown variable %s", name)
	}
	fs := g.class.FieldSlot(name)
	if fs == nil {
		return nil, errAt(p.Line, p.Col, "unknown variable or field %s", name)
	}
	return fs, nil
}

func (g *genCtx) fieldOf(p pos, t bytecode.Type, name string) (*bytecode.FieldSlot, error) {
	if t.Kind != bytecode.KRef || t.Elem != nil {
		return nil, errAt(p.Line, p.Col, "field access on non-object type %v", t)
	}
	cls := g.c.prog.Class(t.Class)
	if cls == nil {
		return nil, errAt(p.Line, p.Col, "unknown class %s", t.Class)
	}
	fs := cls.FieldSlot(name)
	if fs == nil {
		return nil, errAt(p.Line, p.Col, "class %s has no field %s", t.Class, name)
	}
	return fs, nil
}

// assignable reports whether a value of type from may be used where to
// is expected, possibly via int->float widening (conv) or reference
// widening.
func (g *genCtx) assignable(from, to bytecode.Type) (widen bool, ok bool) {
	if from.Equal(to) {
		return false, true
	}
	if from.Kind == bytecode.KInt && to.Kind == bytecode.KFloat {
		return true, true
	}
	if from.Kind == bytecode.KRef && to.Kind == bytecode.KRef {
		// null (encoded as object type "") widens to any reference.
		if from.Elem == nil && from.Class == "" {
			return false, true
		}
		if from.Elem == nil && to.Elem == nil {
			fc, tc := g.c.prog.Class(from.Class), g.c.prog.Class(to.Class)
			if fc != nil && tc != nil && fc.IsSubclassOf(tc) {
				return false, true
			}
		}
	}
	return false, false
}

// genCoerced emits e and converts it to type want.
func (g *genCtx) genCoerced(e Expr, want bytecode.Type) error {
	got, err := g.genExpr(e)
	if err != nil {
		return err
	}
	widen, ok := g.assignable(got, want)
	if !ok {
		p := e.Pos()
		return errAt(p.Line, p.Col, "cannot use %v as %v", got, want)
	}
	if widen {
		g.asm.Op(bytecode.I2F)
	}
	return nil
}
