// Package lang implements MJ, the small Java-like language the
// benchmark applications are written in. MJ compiles to MJVM bytecode:
// classes with single inheritance, virtual methods, int (32-bit),
// float (64-bit), arrays (including arrays of arrays and of objects),
// and structured control flow. The `potential` method modifier is the
// source-level form of the paper's class-file annotation marking
// methods as candidates for remote execution.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tPunct   // operators and delimiters
	tKeyword // reserved words
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of file"
	case tInt, tFloat, tIdent:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"class": true, "extends": true, "static": true, "potential": true,
	"int": true, "float": true, "void": true, "boolean": false,
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"break": true, "continue": true,
	"new": true, "null": true, "this": true, "true": true, "false": true,
}

// Error is a compile error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mj:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) nextRune() rune {
	r := lx.peekRune()
	if r == 0 {
		return 0
	}
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) skipSpaceAndComments() error {
	for {
		r := lx.peekRune()
		switch {
		case r == 0:
			return nil
		case unicode.IsSpace(r):
			lx.nextRune()
		case r == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.peekRune() != 0 && lx.peekRune() != '\n' {
				lx.nextRune()
			}
		case r == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			line, col := lx.line, lx.col
			lx.nextRune()
			lx.nextRune()
			for {
				if lx.peekRune() == 0 {
					return errAt(line, col, "unterminated block comment")
				}
				if lx.peekRune() == '*' {
					lx.nextRune()
					if lx.peekRune() == '/' {
						lx.nextRune()
						break
					}
					continue
				}
				lx.nextRune()
			}
		default:
			return nil
		}
	}
}

// multi-rune punctuation, longest first.
var puncts = []string{
	"<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", ".",
}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := lx.line, lx.col
	r := lx.peekRune()
	if r == 0 {
		return token{kind: tEOF, line: line, col: col}, nil
	}
	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for {
			r := lx.peekRune()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			b.WriteRune(lx.nextRune())
		}
		text := b.String()
		if keywords[text] {
			return token{kind: tKeyword, text: text, line: line, col: col}, nil
		}
		return token{kind: tIdent, text: text, line: line, col: col}, nil

	case unicode.IsDigit(r):
		var b strings.Builder
		isFloat := false
		for unicode.IsDigit(lx.peekRune()) {
			b.WriteRune(lx.nextRune())
		}
		if lx.peekRune() == '.' && lx.pos+1 < len(lx.src) && unicode.IsDigit(lx.src[lx.pos+1]) {
			isFloat = true
			b.WriteRune(lx.nextRune())
			for unicode.IsDigit(lx.peekRune()) {
				b.WriteRune(lx.nextRune())
			}
			if lx.peekRune() == 'e' || lx.peekRune() == 'E' {
				b.WriteRune(lx.nextRune())
				if lx.peekRune() == '-' || lx.peekRune() == '+' {
					b.WriteRune(lx.nextRune())
				}
				for unicode.IsDigit(lx.peekRune()) {
					b.WriteRune(lx.nextRune())
				}
			}
		}
		text := b.String()
		if isFloat {
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return token{}, errAt(line, col, "bad float literal %q", text)
			}
			return token{kind: tFloat, text: text, fval: f, line: line, col: col}, nil
		}
		var v int64
		if _, err := fmt.Sscanf(text, "%d", &v); err != nil || v > 1<<31-1 {
			return token{}, errAt(line, col, "bad int literal %q", text)
		}
		return token{kind: tInt, text: text, ival: v, line: line, col: col}, nil

	default:
		rest := string(lx.src[lx.pos:])
		for _, p := range puncts {
			if strings.HasPrefix(rest, p) {
				for range p {
					lx.nextRune()
				}
				return token{kind: tPunct, text: p, line: line, col: col}, nil
			}
		}
		return token{}, errAt(line, col, "unexpected character %q", r)
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}
