package lang

import (
	"greenvm/internal/bytecode"
)

// Expression type inference and code generation. inferType computes a
// static type without emitting code (needed to pick widening before
// operands are on the stack); genExpr emits code leaving the value on
// the stack and returns its type.

// tNull is the type of the null literal: a reference assignable to
// any object or array type.
var tNull = bytecode.Type{Kind: bytecode.KRef}

func (g *genCtx) inferType(e Expr) (bytecode.Type, error) {
	switch n := e.(type) {
	case *IntLit, *BoolLit:
		return bytecode.TInt, nil
	case *FloatLit:
		return bytecode.TFloat, nil
	case *NullLit:
		return tNull, nil
	case *This:
		if g.m.Static {
			return bytecode.TVoid, errAt(n.Line, n.Col, "this in static method")
		}
		return bytecode.TObject(g.class.Name), nil
	case *Ident:
		if v, ok := g.lookup(n.Name); ok {
			return v.ty, nil
		}
		fs, err := g.implicitField(n.pos, n.Name)
		if err != nil {
			return bytecode.TVoid, err
		}
		return fs.Type, nil
	case *Unary:
		if n.Op == "!" {
			return bytecode.TInt, nil
		}
		return g.inferType(n.X)
	case *Binary:
		switch n.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return bytecode.TInt, nil
		}
		lt, err := g.inferType(n.L)
		if err != nil {
			return bytecode.TVoid, err
		}
		rt, err := g.inferType(n.R)
		if err != nil {
			return bytecode.TVoid, err
		}
		if lt.Kind == bytecode.KFloat || rt.Kind == bytecode.KFloat {
			return bytecode.TFloat, nil
		}
		return bytecode.TInt, nil
	case *Assign:
		return bytecode.TVoid, errAt(n.Line, n.Col, "assignment is a statement in MJ")
	case *Index:
		xt, err := g.inferType(n.X)
		if err != nil {
			return bytecode.TVoid, err
		}
		if !xt.IsArray() {
			return bytecode.TVoid, errAt(n.Line, n.Col, "indexing non-array type %v", xt)
		}
		return *xt.Elem, nil
	case *FieldAccess:
		xt, err := g.inferType(n.X)
		if err != nil {
			return bytecode.TVoid, err
		}
		if xt.IsArray() && n.Name == "length" {
			return bytecode.TInt, nil
		}
		fs, err := g.fieldOf(n.pos, xt, n.Name)
		if err != nil {
			return bytecode.TVoid, err
		}
		return fs.Type, nil
	case *Call:
		m, _, err := g.resolveCall(n)
		if err != nil {
			return bytecode.TVoid, err
		}
		return m.Ret, nil
	case *New:
		ty, err := g.c.resolveType(n.Type, false)
		if err != nil {
			return bytecode.TVoid, err
		}
		if n.Len != nil {
			return bytecode.TArray(ty), nil
		}
		return ty, nil
	case *Cast:
		return g.c.resolveType(n.To, false)
	}
	p := e.Pos()
	return bytecode.TVoid, errAt(p.Line, p.Col, "cannot infer type")
}

// callShape describes how a resolved call is invoked.
type callShape struct {
	implicitThis bool // push ALOAD 0 as receiver
	static       bool
	recv         Expr // explicit receiver expression (nil otherwise)
	recvType     bytecode.Type
}

// resolveCall resolves the target method of a call node.
func (g *genCtx) resolveCall(n *Call) (*bytecode.Method, callShape, error) {
	fail := func(format string, args ...interface{}) (*bytecode.Method, callShape, error) {
		return nil, callShape{}, errAt(n.Line, n.Col, format, args...)
	}
	// Qualified static call: ClassName.method(...) — the receiver is
	// an identifier naming a class and not shadowed by a variable.
	if id, ok := n.Recv.(*Ident); ok {
		if _, isVar := g.lookup(id.Name); !isVar {
			if cls := g.c.prog.Class(id.Name); cls != nil {
				m := g.c.prog.FindMethod(id.Name, n.Name)
				if m == nil {
					return fail("class %s has no method %s", id.Name, n.Name)
				}
				if !m.Static {
					return fail("%s.%s is an instance method", id.Name, n.Name)
				}
				return m, callShape{static: true}, nil
			}
		}
	}
	if n.Recv != nil {
		rt, err := g.inferType(n.Recv)
		if err != nil {
			return nil, callShape{}, err
		}
		if rt.Kind != bytecode.KRef || rt.Elem != nil {
			return fail("method call on non-object type %v", rt)
		}
		cls := g.c.prog.Class(rt.Class)
		if cls == nil {
			return fail("unknown class %s", rt.Class)
		}
		m := cls.Resolve(n.Name)
		if m == nil {
			return fail("class %s has no method %s", rt.Class, n.Name)
		}
		return m, callShape{recv: n.Recv, recvType: rt}, nil
	}
	// Unqualified: search the enclosing class chain.
	m := g.c.prog.FindMethod(g.class.Name, n.Name)
	if m == nil {
		return fail("unknown method %s", n.Name)
	}
	if m.Static {
		return m, callShape{static: true}, nil
	}
	if g.m.Static {
		return fail("instance method %s called from static context", n.Name)
	}
	return m, callShape{implicitThis: true}, nil
}

func (g *genCtx) genCall(n *Call) (bytecode.Type, error) {
	m, shape, err := g.resolveCall(n)
	if err != nil {
		return bytecode.TVoid, err
	}
	if len(n.Args) != len(m.Params) {
		return bytecode.TVoid, errAt(n.Line, n.Col,
			"%s takes %d arguments, got %d", m.QName(), len(m.Params), len(n.Args))
	}
	switch {
	case shape.implicitThis:
		g.asm.OpA(bytecode.ALOAD, 0)
	case shape.recv != nil:
		if _, err := g.genExpr(shape.recv); err != nil {
			return bytecode.TVoid, err
		}
	}
	for i, a := range n.Args {
		if err := g.genCoerced(a, m.Params[i]); err != nil {
			return bytecode.TVoid, err
		}
	}
	if m.Static {
		g.asm.OpA(bytecode.INVOKESTATIC, int32(m.ID))
	} else {
		g.asm.OpA(bytecode.INVOKEVIRTUAL, int32(m.ID))
	}
	return m.Ret, nil
}

func (g *genCtx) genExpr(e Expr) (bytecode.Type, error) {
	switch n := e.(type) {
	case *IntLit:
		g.asm.Iconst(int32(n.V))
		return bytecode.TInt, nil
	case *FloatLit:
		g.asm.Fconst(n.V)
		return bytecode.TFloat, nil
	case *BoolLit:
		if n.V {
			g.asm.Iconst(1)
		} else {
			g.asm.Iconst(0)
		}
		return bytecode.TInt, nil
	case *NullLit:
		g.asm.Op(bytecode.ACONSTNULL)
		return tNull, nil
	case *This:
		if g.m.Static {
			return bytecode.TVoid, errAt(n.Line, n.Col, "this in static method")
		}
		g.asm.OpA(bytecode.ALOAD, 0)
		return bytecode.TObject(g.class.Name), nil

	case *Ident:
		if v, ok := g.lookup(n.Name); ok {
			g.asm.OpA(loadOp(v.ty.Kind), int32(v.slot))
			return v.ty, nil
		}
		fs, err := g.implicitField(n.pos, n.Name)
		if err != nil {
			return bytecode.TVoid, err
		}
		g.asm.OpA(bytecode.ALOAD, 0)
		g.asm.OpA(getFieldOp(fs.Type.Kind), int32(fs.Slot))
		return fs.Type, nil

	case *Unary:
		switch n.Op {
		case "-":
			t, err := g.genExpr(n.X)
			if err != nil {
				return bytecode.TVoid, err
			}
			switch t.Kind {
			case bytecode.KInt:
				g.asm.Op(bytecode.INEG)
			case bytecode.KFloat:
				g.asm.Op(bytecode.FNEG)
			default:
				return bytecode.TVoid, errAt(n.Line, n.Col, "negating %v", t)
			}
			return t, nil
		case "!":
			return g.materializeCond(n)
		}
		return bytecode.TVoid, errAt(n.Line, n.Col, "unknown unary %s", n.Op)

	case *Binary:
		switch n.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return g.materializeCond(n)
		}
		lt, err := g.inferType(n.L)
		if err != nil {
			return bytecode.TVoid, err
		}
		rt, err := g.inferType(n.R)
		if err != nil {
			return bytecode.TVoid, err
		}
		isFloat := lt.Kind == bytecode.KFloat || rt.Kind == bytecode.KFloat
		if n.Op == "%" || n.Op == "&" || n.Op == "|" || n.Op == "^" {
			if isFloat {
				return bytecode.TVoid, errAt(n.Line, n.Col, "%s requires ints", n.Op)
			}
		}
		want := bytecode.TInt
		if isFloat {
			want = bytecode.TFloat
		}
		if err := g.genCoerced(n.L, want); err != nil {
			return bytecode.TVoid, err
		}
		if err := g.genCoerced(n.R, want); err != nil {
			return bytecode.TVoid, err
		}
		var op bytecode.Opcode
		if isFloat {
			switch n.Op {
			case "+":
				op = bytecode.FADD
			case "-":
				op = bytecode.FSUB
			case "*":
				op = bytecode.FMUL
			case "/":
				op = bytecode.FDIV
			default:
				return bytecode.TVoid, errAt(n.Line, n.Col, "bad float operator %s", n.Op)
			}
		} else {
			switch n.Op {
			case "+":
				op = bytecode.IADD
			case "-":
				op = bytecode.ISUB
			case "*":
				op = bytecode.IMUL
			case "/":
				op = bytecode.IDIV
			case "%":
				op = bytecode.IREM
			case "&":
				op = bytecode.IAND
			case "|":
				op = bytecode.IOR
			case "^":
				op = bytecode.IXOR
			default:
				return bytecode.TVoid, errAt(n.Line, n.Col, "bad int operator %s", n.Op)
			}
		}
		g.asm.Op(op)
		return want, nil

	case *Assign:
		return bytecode.TVoid, errAt(n.Line, n.Col, "assignment is a statement in MJ")

	case *Index:
		elem, err := g.genIndexPrefix(n)
		if err != nil {
			return bytecode.TVoid, err
		}
		switch elem.Kind {
		case bytecode.KFloat:
			g.asm.Op(bytecode.FALOAD)
		case bytecode.KRef:
			g.asm.Op(bytecode.AALOAD)
		default:
			g.asm.Op(bytecode.IALOAD)
		}
		return elem, nil

	case *FieldAccess:
		xt, err := g.genExpr(n.X)
		if err != nil {
			return bytecode.TVoid, err
		}
		if xt.IsArray() && n.Name == "length" {
			g.asm.Op(bytecode.ARRAYLENGTH)
			return bytecode.TInt, nil
		}
		fs, err := g.fieldOf(n.pos, xt, n.Name)
		if err != nil {
			return bytecode.TVoid, err
		}
		g.asm.OpA(getFieldOp(fs.Type.Kind), int32(fs.Slot))
		return fs.Type, nil

	case *Call:
		return g.genCall(n)

	case *New:
		ty, err := g.c.resolveType(n.Type, false)
		if err != nil {
			return bytecode.TVoid, err
		}
		if n.Len != nil {
			if err := g.genCoerced(n.Len, bytecode.TInt); err != nil {
				return bytecode.TVoid, err
			}
			g.asm.OpA(bytecode.NEWARRAY, int32(bytecode.ElemKindOf(ty)))
			return bytecode.TArray(ty), nil
		}
		if ty.Kind != bytecode.KRef || ty.Elem != nil {
			return bytecode.TVoid, errAt(n.Line, n.Col, "new requires a class type")
		}
		cls := g.c.prog.Class(ty.Class)
		g.asm.OpA(bytecode.NEW, int32(cls.ID))
		return ty, nil

	case *Cast:
		to, err := g.c.resolveType(n.To, false)
		if err != nil {
			return bytecode.TVoid, err
		}
		from, err := g.genExpr(n.X)
		if err != nil {
			return bytecode.TVoid, err
		}
		switch {
		case from.Kind == bytecode.KInt && to.Kind == bytecode.KFloat:
			g.asm.Op(bytecode.I2F)
		case from.Kind == bytecode.KFloat && to.Kind == bytecode.KInt:
			g.asm.Op(bytecode.F2I)
		case from.Equal(to):
		default:
			return bytecode.TVoid, errAt(n.Line, n.Col, "cannot cast %v to %v", from, to)
		}
		return to, nil
	}
	p := e.Pos()
	return bytecode.TVoid, errAt(p.Line, p.Col, "unhandled expression")
}

// materializeCond evaluates a boolean expression to an int 0/1.
func (g *genCtx) materializeCond(e Expr) (bytecode.Type, error) {
	trueL, endL := g.label("ctrue"), g.label("cend")
	if err := g.genCond(e, trueL, true); err != nil {
		return bytecode.TVoid, err
	}
	g.asm.Iconst(0)
	g.asm.Branch(bytecode.GOTO, endL)
	g.asm.Label(trueL)
	g.asm.Iconst(1)
	g.asm.Label(endL)
	return bytecode.TInt, nil
}

// relOps maps a comparison to int and float compare-branch opcodes.
// Float > and <= are compiled by swapping operands (the bytecode set
// has only FCMPLT/FCMPGE).
type relPlan struct {
	intOp   bytecode.Opcode
	floatOp bytecode.Opcode
	swapF   bool
}

var relPlans = map[string]relPlan{
	"==": {bytecode.IFICMPEQ, bytecode.IFFCMPEQ, false},
	"!=": {bytecode.IFICMPNE, bytecode.IFFCMPNE, false},
	"<":  {bytecode.IFICMPLT, bytecode.IFFCMPLT, false},
	">=": {bytecode.IFICMPGE, bytecode.IFFCMPGE, false},
	">":  {bytecode.IFICMPGT, bytecode.IFFCMPLT, true},
	"<=": {bytecode.IFICMPLE, bytecode.IFFCMPGE, true},
}

// negatedInt maps an int compare-branch to its negation.
var negatedInt = map[bytecode.Opcode]bytecode.Opcode{
	bytecode.IFICMPEQ: bytecode.IFICMPNE,
	bytecode.IFICMPNE: bytecode.IFICMPEQ,
	bytecode.IFICMPLT: bytecode.IFICMPGE,
	bytecode.IFICMPGE: bytecode.IFICMPLT,
	bytecode.IFICMPGT: bytecode.IFICMPLE,
	bytecode.IFICMPLE: bytecode.IFICMPGT,
	bytecode.IFFCMPEQ: bytecode.IFFCMPNE,
	bytecode.IFFCMPNE: bytecode.IFFCMPEQ,
	bytecode.IFFCMPLT: bytecode.IFFCMPGE,
	bytecode.IFFCMPGE: bytecode.IFFCMPLT,
	bytecode.IFACMPEQ: bytecode.IFACMPNE,
	bytecode.IFACMPNE: bytecode.IFACMPEQ,
}

// genCond emits a conditional branch to target, taken when the
// condition's truth equals jumpIfTrue; otherwise control falls
// through.
func (g *genCtx) genCond(e Expr, target string, jumpIfTrue bool) error {
	switch n := e.(type) {
	case *BoolLit:
		if n.V == jumpIfTrue {
			g.asm.Branch(bytecode.GOTO, target)
		}
		return nil

	case *Unary:
		if n.Op == "!" {
			return g.genCond(n.X, target, !jumpIfTrue)
		}

	case *Binary:
		switch n.Op {
		case "&&":
			if jumpIfTrue {
				// Jump to target only if both are true.
				fall := g.label("andf")
				if err := g.genCond(n.L, fall, false); err != nil {
					return err
				}
				if err := g.genCond(n.R, target, true); err != nil {
					return err
				}
				g.asm.Label(fall)
				return nil
			}
			// Jump to target if either is false.
			if err := g.genCond(n.L, target, false); err != nil {
				return err
			}
			return g.genCond(n.R, target, false)
		case "||":
			if jumpIfTrue {
				if err := g.genCond(n.L, target, true); err != nil {
					return err
				}
				return g.genCond(n.R, target, true)
			}
			fall := g.label("orf")
			if err := g.genCond(n.L, fall, true); err != nil {
				return err
			}
			if err := g.genCond(n.R, target, false); err != nil {
				return err
			}
			g.asm.Label(fall)
			return nil

		case "==", "!=", "<", "<=", ">", ">=":
			lt, err := g.inferType(n.L)
			if err != nil {
				return err
			}
			rt, err := g.inferType(n.R)
			if err != nil {
				return err
			}
			// Reference comparison.
			if lt.Kind == bytecode.KRef || rt.Kind == bytecode.KRef {
				if lt.Kind != rt.Kind {
					return errAt(n.Line, n.Col, "cannot compare %v with %v", lt, rt)
				}
				if n.Op != "==" && n.Op != "!=" {
					return errAt(n.Line, n.Col, "references support only == and !=")
				}
				if _, err := g.genExpr(n.L); err != nil {
					return err
				}
				if _, err := g.genExpr(n.R); err != nil {
					return err
				}
				op := bytecode.IFACMPEQ
				if n.Op == "!=" {
					op = bytecode.IFACMPNE
				}
				if !jumpIfTrue {
					op = negatedInt[op]
				}
				g.asm.Branch(op, target)
				return nil
			}
			isFloat := lt.Kind == bytecode.KFloat || rt.Kind == bytecode.KFloat
			want := bytecode.TInt
			if isFloat {
				want = bytecode.TFloat
			}
			plan, ok := relPlans[n.Op]
			if !ok {
				return errAt(n.Line, n.Col, "bad comparison %s", n.Op)
			}
			if err := g.genCoerced(n.L, want); err != nil {
				return err
			}
			if err := g.genCoerced(n.R, want); err != nil {
				return err
			}
			var op bytecode.Opcode
			if isFloat {
				if plan.swapF {
					g.asm.Op(bytecode.SWAP)
				}
				op = plan.floatOp
			} else {
				op = plan.intOp
			}
			if !jumpIfTrue {
				op = negatedInt[op]
			}
			g.asm.Branch(op, target)
			return nil
		}
	}

	// Generic: evaluate as int and compare against zero.
	t, err := g.genExpr(e)
	if err != nil {
		return err
	}
	if t.Kind != bytecode.KInt {
		p := e.Pos()
		return errAt(p.Line, p.Col, "condition must be boolean (int), got %v", t)
	}
	if jumpIfTrue {
		g.asm.Branch(bytecode.IFNE, target)
	} else {
		g.asm.Branch(bytecode.IFEQ, target)
	}
	return nil
}
