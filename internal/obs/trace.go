package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"greenvm/internal/core"
)

// Tracer records the simulated-clock execution timeline as compact
// records and renders them either as Chrome trace-event JSON (load
// the file in chrome://tracing or Perfetto) or as a JSONL event log.
// Span events (invocations, timeline phases) become complete ("X")
// events; point events (fallbacks, retries, probes, breaker
// transitions, compiles, evictions, memo hits) become instants.
type Tracer struct {
	// Pid and Process label the trace's process row, so traces from
	// several experiment cells merge into one file (one row per cell).
	Pid     int
	Process string

	Recs []TraceRec
}

// TraceRec is one compact timeline record. TS and Dur are simulated
// seconds; Dur is zero for instant events.
type TraceRec struct {
	Kind     string  `json:"kind"`
	TS       float64 `json:"ts"`
	Dur      float64 `json:"dur,omitempty"`
	Method   string  `json:"method,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	Level    int     `json:"level,omitempty"`
	Phase    string  `json:"phase,omitempty"`
	Size     float64 `json:"size,omitempty"`
	EnergyJ  float64 `json:"energyJ,omitempty"`
	FellBack bool    `json:"fellBack,omitempty"`
	Backend  string  `json:"backend,omitempty"`
	From     string  `json:"from,omitempty"`
}

// NewTracer returns a tracer labelling its rows with the process name
// and pid (use distinct pids to merge several cells into one trace).
func NewTracer(pid int, process string) *Tracer {
	return &Tracer{Pid: pid, Process: process}
}

var kindNames = map[core.EventKind]string{
	core.EvInvoke:        "invoke",
	core.EvFallback:      "fallback",
	core.EvLocalCompile:  "compile.local",
	core.EvRemoteCompile: "compile.remote",
	core.EvEvict:         "evict",
	core.EvMemoHit:       "memo",
	core.EvRetry:         "retry",
	core.EvShed:          "shed",
	core.EvPlace:         "place",
	core.EvFailover:      "failover",
	core.EvProbe:         "probe",
	core.EvLinkDown:      "link.down",
	core.EvLinkUp:        "link.up",
	core.EvEstimate:      "estimate",
	core.EvPhase:         "phase",
}

// Emit implements core.EventSink.
func (t *Tracer) Emit(e core.Event) {
	r := TraceRec{
		Kind:     kindNames[e.Kind],
		TS:       float64(e.At),
		Method:   methodName(e),
		FellBack: e.FellBack,
		Backend:  e.Backend,
		From:     e.From,
	}
	switch e.Kind {
	case core.EvInvoke:
		r.Dur = float64(e.Time)
		r.Mode = e.Mode.String()
		r.Size = e.Size
		r.EnergyJ = float64(e.Energy)
	case core.EvPhase:
		r.Dur = float64(e.Time)
		r.Phase = e.Phase.String()
		r.Level = int(e.Level)
	case core.EvLocalCompile, core.EvRemoteCompile, core.EvEvict:
		r.Level = int(e.Level)
	case core.EvEstimate:
		if e.Est != nil {
			r.Mode = e.Est.Chosen.String()
			r.EnergyJ = e.Est.Cost[e.Est.Chosen]
		}
	}
	t.Recs = append(t.Recs, r)
}

func methodName(e core.Event) string {
	if e.Method == nil {
		return ""
	}
	return e.Method.QName()
}

// traceEvent is one Chrome trace-event object. Dur is a plain field
// (not omitempty) so complete events always carry "dur", even for
// zero-length spans.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// The trace's thread rows: invocations on one track, the finer
// timeline phases on another, instant events on a third.
const (
	tidInvoke  = 1
	tidPhase   = 2
	tidInstant = 3
)

// usec converts simulated seconds to trace-event microseconds.
func usec(s float64) float64 { return s * 1e6 }

func (t *Tracer) events() []traceEvent {
	evs := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: t.Pid, Args: map[string]any{"name": t.Process}},
		{Name: "thread_name", Ph: "M", Pid: t.Pid, Tid: tidInvoke, Args: map[string]any{"name": "invocations"}},
		{Name: "thread_name", Ph: "M", Pid: t.Pid, Tid: tidPhase, Args: map[string]any{"name": "phases"}},
		{Name: "thread_name", Ph: "M", Pid: t.Pid, Tid: tidInstant, Args: map[string]any{"name": "events"}},
	}
	for _, r := range t.Recs {
		switch r.Kind {
		case "invoke":
			dur := usec(r.Dur)
			evs = append(evs, traceEvent{
				Name: fmt.Sprintf("%s [%s]", r.Method, r.Mode),
				Ph:   "X", Cat: "invoke",
				TS: usec(r.TS), Dur: &dur,
				Pid: t.Pid, Tid: tidInvoke,
				Args: map[string]any{
					"mode": r.Mode, "size": r.Size,
					"energyJ": r.EnergyJ, "fellBack": r.FellBack,
				},
			})
		case "phase":
			dur := usec(r.Dur)
			evs = append(evs, traceEvent{
				Name: r.Phase,
				Ph:   "X", Cat: "phase",
				TS: usec(r.TS), Dur: &dur,
				Pid: t.Pid, Tid: tidPhase,
				Args: map[string]any{"method": r.Method, "fellBack": r.FellBack},
			})
		case "estimate":
			// Decisions are dense and carried by the invocation args;
			// skip them to keep the instant track readable.
		default:
			args := map[string]any{}
			if r.Method != "" {
				args["method"] = r.Method
			}
			if r.Backend != "" {
				args["backend"] = r.Backend
			}
			if r.From != "" {
				args["from"] = r.From
			}
			evs = append(evs, traceEvent{
				Name: r.Kind,
				Ph:   "i", S: "t", Cat: "event",
				TS:  usec(r.TS),
				Pid: t.Pid, Tid: tidInstant,
				Args: args,
			})
		}
	}
	return evs
}

// WriteTraceJSON renders the tracers as one Chrome trace-event JSON
// object (the "JSON Object Format": {"traceEvents": [...]}). Give each
// tracer a distinct Pid to keep cells on separate rows.
func WriteTraceJSON(w io.Writer, tracers ...*Tracer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, t := range tracers {
		f.TraceEvents = append(f.TraceEvents, t.events()...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteJSON renders this tracer alone as Chrome trace-event JSON.
func (t *Tracer) WriteJSON(w io.Writer) error { return WriteTraceJSON(w, t) }

// WriteJSONL writes the compact records as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

var _ core.EventSink = (*Tracer)(nil)
