package obs

import (
	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/core"
	"greenvm/internal/radio"
)

func testMethod(name string) *bytecode.Method {
	return &bytecode.Method{Name: name, Class: &bytecode.Class{Name: "App"}}
}

// counterValue digs one series value out of a snapshot.
func counterValue(t *testing.T, snap *Snapshot, name string, labels map[string]string) float64 {
	t.Helper()
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
	series:
		for _, s := range m.Series {
			if len(s.Labels) != len(labels) {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue series
				}
			}
			return s.Value
		}
	}
	t.Fatalf("no series %s%v in snapshot", name, labels)
	return 0
}

// TestMetricsSinkRadioDeltas: events carry cumulative link telemetry;
// the sink must fold in deltas, not last snapshots, so the counters
// equal the link's final totals — and SyncRadio catches a trailing
// failed exchange that no event reported.
func TestMetricsSinkRadioDeltas(t *testing.T) {
	sink := NewMetricsSink(nil)
	m := testMethod("work")

	// Two invocations with cumulative telemetry; if the sink added the
	// raw snapshots it would double-count the first exchange.
	sink.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Energy: 0.5, Time: 0.1,
		Radio: radio.Telemetry{Exchanges: 1, BytesSent: 100, BytesReceived: 40}})
	sink.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Energy: 0.4, Time: 0.1,
		Radio: radio.Telemetry{Exchanges: 2, Losses: 1, BytesSent: 250, BytesReceived: 90}})
	// Trailing failed exchange: the link advanced but no further event
	// carried it. SyncRadio folds the final counters in.
	sink.SyncRadio(radio.Telemetry{Exchanges: 3, Losses: 2, BytesSent: 400, BytesReceived: 90, Stalls: 1, StallTime: 0.25})

	snap := sink.Registry().Snapshot()
	none := map[string]string{}
	if v := counterValue(t, snap, "radio_exchanges_total", none); v != 3 {
		t.Errorf("exchanges %g, want 3 (deltas, not snapshots)", v)
	}
	if v := counterValue(t, snap, "radio_losses_total", none); v != 2 {
		t.Errorf("losses %g, want 2", v)
	}
	if v := counterValue(t, snap, "radio_bytes_sent_total", none); v != 400 {
		t.Errorf("bytes sent %g, want 400", v)
	}
	if v := counterValue(t, snap, "radio_bytes_received_total", none); v != 90 {
		t.Errorf("bytes received %g, want 90", v)
	}
	if v := counterValue(t, snap, "radio_stall_seconds_total", none); v != 0.25 {
		t.Errorf("stall seconds %g, want 0.25", v)
	}
	// SyncRadio with unchanged telemetry must be a no-op.
	sink.SyncRadio(radio.Telemetry{Exchanges: 3, Losses: 2, BytesSent: 400, BytesReceived: 90, Stalls: 1, StallTime: 0.25})
	snap2 := sink.Registry().Snapshot()
	if v := counterValue(t, snap2, "radio_exchanges_total", none); v != 3 {
		t.Errorf("idempotent sync changed exchanges to %g", v)
	}
}

// TestMetricsSinkAttribution: energy/time land on the (method, mode)
// series, and the histograms count the observations.
func TestMetricsSinkAttribution(t *testing.T) {
	sink := NewMetricsSink(nil)
	w, v := testMethod("work"), testMethod("vecsum")
	sink.Emit(core.Event{Kind: core.EvInvoke, Method: w, Mode: core.ModeInterp, Energy: 2, Time: 1})
	sink.Emit(core.Event{Kind: core.EvInvoke, Method: w, Mode: core.ModeInterp, Energy: 3, Time: 1})
	sink.Emit(core.Event{Kind: core.EvInvoke, Method: v, Mode: core.ModeL2, Energy: 0.5, Time: 0.2})
	sink.Emit(core.Event{Kind: core.EvPhase, Phase: core.PhaseShip, Method: w, Time: 0.75})

	snap := sink.Registry().Snapshot()
	if e := counterValue(t, snap, "invocation_energy_joules_total",
		map[string]string{"method": "App.work", "mode": "I"}); e != 5 {
		t.Errorf("App.work interp energy %g, want 5", e)
	}
	if n := counterValue(t, snap, "invocations_total",
		map[string]string{"method": "App.vecsum", "mode": "L2"}); n != 1 {
		t.Errorf("App.vecsum L2 invocations %g, want 1", n)
	}
	if s := counterValue(t, snap, "phase_seconds_total",
		map[string]string{"phase": "ship"}); s != 0.75 {
		t.Errorf("ship phase seconds %g, want 0.75", s)
	}
}
