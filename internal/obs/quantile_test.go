package obs

import (
	"math"
	"testing"

	"greenvm/internal/rng"
)

// TestP2ExactWarmup: with five or fewer samples the sketch answers the
// exact nearest-rank percentile.
func TestP2ExactWarmup(t *testing.T) {
	for _, p := range []float64{0.5, 0.95} {
		xs := []float64{7, 3, 11, 5, 2}
		s := NewP2(p)
		for i, v := range xs {
			s.Observe(v)
			want := ExactQuantile(xs[:i+1], p)
			if got := s.Quantile(); got != want {
				t.Errorf("p=%g after %d samples: got %g, want exact %g", p, i+1, got, want)
			}
		}
		if s.Min() != 2 || s.Max() != 11 || s.Count() != 5 || s.Sum() != 28 {
			t.Errorf("p=%g summary state: min=%g max=%g count=%d sum=%g",
				p, s.Min(), s.Max(), s.Count(), s.Sum())
		}
	}
}

// TestP2AgainstExact is the documented accuracy bound: on random
// streams from several distributions, the P² estimate of each tracked
// quantile stays within max(5% of the interquartile spread, 15%
// relative) of the exact nearest-rank value. The relative term covers
// heavy tails, where the sample density near extreme quantiles is so
// sparse that any five-marker sketch interpolates across wide gaps.
// Seeds are fixed; the test is deterministic.
func TestP2AgainstExact(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rng.RNG) float64
	}{
		{"uniform", func(r *rng.RNG) float64 { return r.Float64() }},
		{"normal-ish", func(r *rng.RNG) float64 {
			// Irwin–Hall sum of 8 uniforms: cheap, deterministic, bell-shaped.
			s := 0.0
			for i := 0; i < 8; i++ {
				s += r.Float64()
			}
			return s
		}},
		{"heavy-tail", func(r *rng.RNG) float64 {
			u := r.Float64()
			return 1 / (1 - 0.999*u) // Pareto-ish: most mass near 1, long tail
		}},
		{"bimodal", func(r *rng.RNG) float64 {
			if r.Float64() < 0.7 {
				return r.Float64() * 0.001 // fast-path cluster
			}
			return 0.5 + r.Float64() // slow-path cluster
		}},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
			for seed := uint64(1); seed <= 3; seed++ {
				r := rng.New(seed * 977)
				const n = 5000
				xs := make([]float64, n)
				s := NewP2(p)
				for i := range xs {
					xs[i] = d.gen(r)
					s.Observe(xs[i])
				}
				exact := ExactQuantile(xs, p)
				got := s.Quantile()
				spread := ExactQuantile(xs, 0.75) - ExactQuantile(xs, 0.25)
				if spread == 0 {
					spread = 1
				}
				tol := 0.05 * spread
				if rel := 0.15 * math.Abs(exact); rel > tol {
					tol = rel
				}
				if err := math.Abs(got - exact); err > tol {
					t.Errorf("%s p=%g seed=%d: sketch %g vs exact %g (err %g > tol %g)",
						d.name, p, seed, got, exact, err, tol)
				}
			}
		}
	}
}

// TestP2Deterministic: the estimate is a pure function of the
// observation sequence.
func TestP2Deterministic(t *testing.T) {
	build := func() float64 {
		r := rng.New(42)
		s := NewP2(0.95)
		for i := 0; i < 1000; i++ {
			s.Observe(r.Float64())
		}
		return s.Quantile()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("same stream, different estimates: %g vs %g", a, b)
	}
}

// TestP2MarkersStayOrdered: marker heights must remain monotone, or
// estimates can cross each other on adversarial streams.
func TestP2MarkersStayOrdered(t *testing.T) {
	s := NewP2(0.5)
	r := rng.New(7)
	for i := 0; i < 10000; i++ {
		// Mix of duplicates, ramps and jumps.
		switch i % 4 {
		case 0:
			s.Observe(1)
		case 1:
			s.Observe(float64(i))
		default:
			s.Observe(r.Float64() * 100)
		}
		if i >= 5 {
			for j := 1; j < 5; j++ {
				if s.q[j] < s.q[j-1] {
					t.Fatalf("after %d samples markers disordered: %v", i+1, s.q)
				}
			}
		}
	}
}

// TestQuantileSketchSnapshot exercises the multi-quantile bundle and
// its value snapshot.
func TestQuantileSketchSnapshot(t *testing.T) {
	s := NewQuantileSketch() // default 0.5, 0.9, 0.95, 0.99
	r := rng.New(11)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Float64()
		s.Observe(xs[i])
	}
	snap := s.Snapshot()
	if snap.Count != 2000 {
		t.Fatalf("count %d, want 2000", snap.Count)
	}
	if snap.Min < 0 || snap.Max > 1 || snap.Min >= snap.Max {
		t.Errorf("min/max %g/%g out of range", snap.Min, snap.Max)
	}
	for _, p := range []float64{0.5, 0.95} {
		if err := math.Abs(snap.Quantile(p) - ExactQuantile(xs, p)); err > 0.05 {
			t.Errorf("q%g: snapshot %g vs exact %g", p, snap.Quantile(p), ExactQuantile(xs, p))
		}
	}
	if snap.Quantile(0.123) != 0 {
		t.Error("untracked quantile should read 0 from a snapshot")
	}
	mean := snap.Mean()
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("uniform mean %g suspicious", mean)
	}
}

// TestP2ObserveNoAlloc is the fixed-size claim, enforced: an Observe
// allocates nothing, on both the bare sketch and the multi-quantile
// bundle.
func TestP2ObserveNoAlloc(t *testing.T) {
	s := NewP2(0.95)
	r := rng.New(3)
	if n := testing.AllocsPerRun(1000, func() { s.Observe(r.Float64()) }); n != 0 {
		t.Errorf("P2.Observe allocates %g times per call, want 0", n)
	}
	qs := NewQuantileSketch()
	if n := testing.AllocsPerRun(1000, func() { qs.Observe(r.Float64()) }); n != 0 {
		t.Errorf("QuantileSketch.Observe allocates %g times per call, want 0", n)
	}
}

func BenchmarkP2Observe(b *testing.B) {
	s := NewP2(0.95)
	r := rng.New(5)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(xs[i&4095])
	}
}

func BenchmarkQuantileSketchObserve(b *testing.B) {
	s := NewQuantileSketch()
	r := rng.New(5)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(xs[i&4095])
	}
}
