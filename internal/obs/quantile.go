package obs

import (
	"fmt"
	"math"
	"sort"
)

// Streaming quantiles: the fleet's trajectories are distributions over
// virtual time, and holding every observation to sort it later costs
// O(n) memory per metric — exactly what a 100k-handset sweep cannot
// afford. P2 is the P² algorithm (Jain & Chlamtac, CACM 1985): five
// markers track one quantile of a stream in fixed-size state, adjusted
// by piecewise-parabolic interpolation as observations arrive. An
// Observe costs a handful of float compares and never allocates, and
// the estimate is a pure function of the observation sequence, so two
// runs that feed the sketch in the same order read back the same
// value — the determinism bar every fleet artifact meets.
//
// Accuracy: for the first five observations the sketch is exact; past
// that the estimate is approximate, with error concentrated where the
// sample density is sparse (extreme quantiles of heavy tails). The
// property test pins it against exact nearest-rank percentiles on
// uniform, normal, heavy-tailed and bimodal streams to within
// max(5% of the interquartile spread, 15% relative) — the bound
// documented (and enforced) in quantile_test.go.

// P2 estimates a single quantile of a stream in O(1) space.
type P2 struct {
	p   float64
	n   int64
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based ranks)
	des [5]float64 // desired marker positions
	dn  [5]float64 // desired-position increments per observation

	sum      float64
	min, max float64
}

// NewP2 returns a sketch for the p-quantile, 0 < p < 1.
func NewP2(p float64) *P2 {
	s := &P2{}
	s.Reset(p)
	return s
}

// Reset re-targets the sketch at quantile p and discards all state.
func (s *P2) Reset(p float64) {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("obs: P2 quantile %g outside (0, 1)", p))
	}
	*s = P2{p: p, dn: [5]float64{0, p / 2, p, (1 + p) / 2, 1}}
}

// Observe folds one sample into the sketch. It never allocates.
func (s *P2) Observe(v float64) {
	s.n++
	s.sum += v
	if s.n == 1 || v < s.min {
		s.min = v
	}
	if s.n == 1 || v > s.max {
		s.max = v
	}
	if s.n <= 5 {
		// Warm-up: keep the first five observations sorted in q.
		i := int(s.n) - 1
		for i > 0 && s.q[i-1] > v {
			s.q[i] = s.q[i-1]
			i--
		}
		s.q[i] = v
		if s.n == 5 {
			for j := range s.pos {
				s.pos[j] = float64(j + 1)
				s.des[j] = 1 + 4*s.dn[j]
			}
		}
		return
	}

	// Find the cell the sample lands in, extending the extremes.
	var k int
	switch {
	case v < s.q[0]:
		s.q[0] = v
		k = 0
	case v >= s.q[4]:
		s.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.des {
		s.des[i] += s.dn[i]
	}

	// Nudge the interior markers toward their desired ranks.
	for i := 1; i <= 3; i++ {
		d := s.des[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := s.parabolic(i, sign)
			if !(s.q[i-1] < qn && qn < s.q[i+1]) {
				qn = s.linear(i, sign)
			}
			s.q[i] = qn
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height adjustment for marker
// i moved d (±1) ranks.
func (s *P2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height adjustment when the parabola would
// break marker monotonicity.
func (s *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Quantile returns the current estimate: exact nearest-rank while five
// or fewer samples have been observed, the P² middle marker after.
func (s *P2) Quantile() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n <= 5 {
		i := int(math.Ceil(s.p*float64(s.n))) - 1
		if i < 0 {
			i = 0
		}
		return s.q[i]
	}
	return s.q[2]
}

// P returns the quantile the sketch targets.
func (s *P2) P() float64 { return s.p }

// Count returns how many samples have been observed.
func (s *P2) Count() int64 { return s.n }

// Sum returns the sum of all observed samples.
func (s *P2) Sum() float64 { return s.sum }

// Min returns the smallest observed sample (0 when empty).
func (s *P2) Min() float64 { return s.min }

// Max returns the largest observed sample (0 when empty).
func (s *P2) Max() float64 { return s.max }

// QuantileSketch bundles one P² sketch per tracked quantile with the
// shared count/sum/min/max — the fixed-size replacement for "append
// every sample to a slice and sort it at the end". Not safe for
// concurrent use; the Registry's Summary metric wraps one per series
// under the registry lock.
type QuantileSketch struct {
	qs       []float64
	sketches []P2
}

// DefaultQuantiles are the quantiles a Summary tracks unless told
// otherwise.
var DefaultQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// NewQuantileSketch builds a sketch tracking the given quantiles
// (DefaultQuantiles when none are named). Quantiles must be strictly
// ascending within (0, 1).
func NewQuantileSketch(quantiles ...float64) *QuantileSketch {
	if len(quantiles) == 0 {
		quantiles = DefaultQuantiles
	}
	for i, p := range quantiles {
		if p <= 0 || p >= 1 {
			panic(fmt.Sprintf("obs: quantile %g outside (0, 1)", p))
		}
		if i > 0 && p <= quantiles[i-1] {
			panic(fmt.Sprintf("obs: quantiles not ascending: %v", quantiles))
		}
	}
	s := &QuantileSketch{
		qs:       append([]float64(nil), quantiles...),
		sketches: make([]P2, len(quantiles)),
	}
	for i, p := range s.qs {
		s.sketches[i].Reset(p)
	}
	return s
}

// Observe folds one sample into every tracked quantile. It never
// allocates.
func (s *QuantileSketch) Observe(v float64) {
	for i := range s.sketches {
		s.sketches[i].Observe(v)
	}
}

// Quantiles returns the tracked quantiles, ascending. Callers must not
// mutate the returned slice.
func (s *QuantileSketch) Quantiles() []float64 { return s.qs }

// Quantile returns the estimate for tracked quantile p; it panics on a
// quantile the sketch was not built with.
func (s *QuantileSketch) Quantile(p float64) float64 {
	for i, q := range s.qs {
		if q == p {
			return s.sketches[i].Quantile()
		}
	}
	panic(fmt.Sprintf("obs: quantile %g not tracked (have %v)", p, s.qs))
}

// Count returns how many samples have been observed.
func (s *QuantileSketch) Count() int64 {
	if len(s.sketches) == 0 {
		return 0
	}
	return s.sketches[0].Count()
}

// Sum returns the sum of all observed samples.
func (s *QuantileSketch) Sum() float64 {
	if len(s.sketches) == 0 {
		return 0
	}
	return s.sketches[0].Sum()
}

// Min returns the smallest observed sample (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if len(s.sketches) == 0 {
		return 0
	}
	return s.sketches[0].Min()
}

// Max returns the largest observed sample (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if len(s.sketches) == 0 {
		return 0
	}
	return s.sketches[0].Max()
}

// QuantileValue is one (quantile, estimate) pair of a snapshot.
type QuantileValue struct {
	Quantile float64 `json:"quantile"`
	Value    float64 `json:"value"`
}

// SketchSnapshot is a value copy of a sketch's current summary — safe
// to embed in result structs that are compared byte-for-byte across
// runs (no pointers, no slices of samples).
type SketchSnapshot struct {
	Count     int64           `json:"count"`
	Sum       float64         `json:"sum"`
	Min       float64         `json:"min"`
	Max       float64         `json:"max"`
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
}

// Snapshot copies the sketch's current estimates.
func (s *QuantileSketch) Snapshot() SketchSnapshot {
	snap := SketchSnapshot{Count: s.Count(), Sum: s.Sum(), Min: s.Min(), Max: s.Max()}
	for i, p := range s.qs {
		snap.Quantiles = append(snap.Quantiles, QuantileValue{Quantile: p, Value: s.sketches[i].Quantile()})
	}
	return snap
}

// Quantile returns the snapshot's estimate for quantile p (zero when p
// was not tracked).
func (s SketchSnapshot) Quantile(p float64) float64 {
	for _, qv := range s.Quantiles {
		if qv.Quantile == p {
			return qv.Value
		}
	}
	return 0
}

// Mean returns the mean of the observed samples (zero when empty).
func (s SketchSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// ExactQuantile is the reference the sketches are tested against:
// the nearest-rank p-quantile of xs, computed on a sorted copy. It is
// O(n log n) time and O(n) space — fine for tests and tiny inputs,
// exactly what the sketches exist to avoid on hot paths.
func ExactQuantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
