package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// TimeSeries records how the fleet behaves *over virtual time*: the
// simulated clock is cut into fixed-width ticks, and every observation
// lands in the window its timestamp falls in. End-of-run aggregates
// answer "how much"; the windows answer "when" — which is the question
// a chaos schedule poses (did shed rate spike while backend b1 was
// flapping?) and the shape the paper's energy-trajectory argument
// needs.
//
// Windows are kept contiguous: recording into window i materializes
// every window between the last one and i, so exported series have no
// gaps and a window's start time is always exactly Index*Tick —
// computed as a product, never accumulated, so it is bit-identical
// however the run was scheduled. With a retention cap the oldest
// windows are evicted from the front (counted, never silently);
// without one the recorder grows by O(run length / tick), independent
// of client count — the property that lets a 100k-handset sweep stream
// through it.
//
// A TimeSeries is not safe for concurrent use. The fleet engine writes
// it from inside the event heap while holding the engine lock, which
// is also what makes the output byte-identical across -workers: every
// write happens in heap order, regardless of which goroutine's
// request triggered it.
type TimeSeries struct {
	tick float64
	max  int // max retained windows; 0 = unbounded

	base    int64 // index of wins[0]
	started bool  // base is meaningful (first window materialized)
	wins    []Window

	evicted int64 // windows dropped from the front under the cap
	late    int64 // observations for already-evicted windows, dropped
}

// Window is one tick's worth of telemetry. Counters accumulate within
// the window (served, shed, energy); Gauges are last-write-wins
// samples (queue depth, breakers open). Keys are series names —
// usually built with SeriesName so labels render consistently.
type Window struct {
	Index    int64              `json:"i"`
	Start    float64            `json:"t0"`
	End      float64            `json:"t1"`
	Counters map[string]float64 `json:"c,omitempty"`
	Gauges   map[string]float64 `json:"g,omitempty"`
}

// TimeSeriesSchema identifies the JSONL header line this package
// writes and the validator checks.
const TimeSeriesSchema = "greenvm-timeseries/1"

// NewTimeSeries returns a recorder with the given tick width in
// virtual seconds. maxWindows caps retention (oldest evicted first);
// zero keeps everything.
func NewTimeSeries(tick float64, maxWindows int) *TimeSeries {
	if tick <= 0 || math.IsInf(tick, 0) || math.IsNaN(tick) {
		panic(fmt.Sprintf("obs: timeseries tick %g must be a positive finite width", tick))
	}
	if maxWindows < 0 {
		maxWindows = 0
	}
	return &TimeSeries{tick: tick, max: maxWindows}
}

// Tick returns the window width in virtual seconds.
func (ts *TimeSeries) Tick() float64 { return ts.tick }

// IndexOf maps a virtual timestamp to its window index: window i
// covers [i*tick, (i+1)*tick).
func (ts *TimeSeries) IndexOf(t float64) int64 {
	return int64(math.Floor(t / ts.tick))
}

// windowAt returns the window with index i, materializing (and, under
// a cap, evicting) as needed. Returns nil for a window already
// evicted; the observation is counted as late and dropped.
func (ts *TimeSeries) windowAt(i int64) *Window {
	if !ts.started {
		ts.base = i
		ts.started = true
	}
	if i < ts.base {
		ts.late++
		return nil
	}
	for int64(len(ts.wins)) <= i-ts.base {
		idx := ts.base + int64(len(ts.wins))
		ts.wins = append(ts.wins, Window{
			Index: idx,
			Start: float64(idx) * ts.tick,
			End:   float64(idx+1) * ts.tick,
		})
	}
	if ts.max > 0 && len(ts.wins) > ts.max {
		drop := len(ts.wins) - ts.max
		ts.evicted += int64(drop)
		ts.base += int64(drop)
		ts.wins = append(ts.wins[:0], ts.wins[drop:]...)
	}
	return &ts.wins[i-ts.base]
}

// Add accumulates v into the named counter of the window containing
// virtual time t.
func (ts *TimeSeries) Add(t float64, name string, v float64) {
	ts.AddIdx(ts.IndexOf(t), name, v)
}

// AddIdx accumulates v into the named counter of window i.
func (ts *TimeSeries) AddIdx(i int64, name string, v float64) {
	w := ts.windowAt(i)
	if w == nil {
		return
	}
	if w.Counters == nil {
		w.Counters = map[string]float64{}
	}
	w.Counters[name] += v
}

// Set records v as the named gauge of the window containing virtual
// time t (last write within a window wins).
func (ts *TimeSeries) Set(t float64, name string, v float64) {
	ts.SetIdx(ts.IndexOf(t), name, v)
}

// SetIdx records v as the named gauge of window i.
func (ts *TimeSeries) SetIdx(i int64, name string, v float64) {
	w := ts.windowAt(i)
	if w == nil {
		return
	}
	if w.Gauges == nil {
		w.Gauges = map[string]float64{}
	}
	w.Gauges[name] = v
}

// Windows returns the retained windows, oldest first. The slice and
// its maps are live; callers must not mutate them.
func (ts *TimeSeries) Windows() []Window { return ts.wins }

// Late returns how many observations targeted already-evicted windows
// and were dropped.
func (ts *TimeSeries) Late() int64 { return ts.late }

// Evicted returns how many windows the retention cap dropped.
func (ts *TimeSeries) Evicted() int64 { return ts.evicted }

// tsHeader is the first JSONL line: enough for a reader to interpret
// the windows without out-of-band knowledge.
type tsHeader struct {
	Schema  string  `json:"schema"`
	Tick    float64 `json:"tick"`
	Windows int     `json:"windows"`
	Evicted int64   `json:"evicted,omitempty"`
	Late    int64   `json:"late,omitempty"`
}

// WriteJSONL writes a header line followed by one JSON object per
// window. Output is deterministic: windows are in index order and
// encoding/json sorts map keys.
func (ts *TimeSeries) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(tsHeader{
		Schema: TimeSeriesSchema, Tick: ts.tick,
		Windows: len(ts.wins), Evicted: ts.evicted, Late: ts.late,
	}); err != nil {
		return err
	}
	for i := range ts.wins {
		if err := enc.Encode(&ts.wins[i]); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the most recent window in the Prometheus
// text format under a ts_ prefix, plus ts_window_index/ts_window_start
// so a scraper can tell windows apart. Series names built with
// SeriesName carry their label braces through unchanged.
func (ts *TimeSeries) WritePrometheus(w io.Writer) error {
	if len(ts.wins) == 0 {
		_, err := fmt.Fprintf(w, "# no windows recorded yet (tick %s)\n", formatFloat(ts.tick))
		return err
	}
	win := &ts.wins[len(ts.wins)-1]
	if _, err := fmt.Fprintf(w, "ts_window_index %d\nts_window_start %s\n",
		win.Index, formatFloat(win.Start)); err != nil {
		return err
	}
	emit := func(prefix string, m map[string]float64) error {
		names := make([]string, 0, len(m))
		for k := range m {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", prefix, k, formatFloat(m[k])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("ts_", win.Counters); err != nil {
		return err
	}
	return emit("ts_", win.Gauges)
}

// SeriesName builds a window series key with Prometheus-style labels:
// SeriesName("served", "backend", "b0") → `served{backend="b0"}`.
// Label pairs are sorted by key so equal label sets always produce
// equal names. Pre-build these outside hot loops; the result is just a
// string to key the window maps with.
func SeriesName(name string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return name
	}
	sorted := sortPairs(labelPairs)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(sorted); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sorted[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(sorted[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
