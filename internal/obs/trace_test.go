package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"greenvm/internal/core"
)

// feedTimeline drives a tracer through a representative event
// sequence: a remote invocation with a retry, a breaker cycle, and a
// local compiled invocation.
func feedTimeline(tr *Tracer) {
	m := testMethod("work")
	tr.Emit(core.Event{Kind: core.EvPhase, Phase: core.PhaseShip, Method: m, At: 0, Time: 0.2, FellBack: true})
	tr.Emit(core.Event{Kind: core.EvPhase, Phase: core.PhaseListen, Method: m, At: 0.2, Time: 0.1})
	tr.Emit(core.Event{Kind: core.EvRetry, Method: m, At: 0.3})
	tr.Emit(core.Event{Kind: core.EvPhase, Phase: core.PhaseShip, Method: m, At: 0.3, Time: 0.2})
	tr.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Size: 100,
		Energy: 0.4, At: 0, Time: 0.5})
	tr.Emit(core.Event{Kind: core.EvLinkDown, At: 0.5})
	tr.Emit(core.Event{Kind: core.EvProbe, At: 0.8, FellBack: false})
	tr.Emit(core.Event{Kind: core.EvLinkUp, At: 0.8})
	tr.Emit(core.Event{Kind: core.EvPhase, Phase: core.PhaseCompile, Method: m, Level: 1, At: 0.8, Time: 0.3})
	tr.Emit(core.Event{Kind: core.EvLocalCompile, Method: m, Level: 1, At: 1.1})
	tr.Emit(core.Event{Kind: core.EvPhase, Phase: core.PhaseNative, Method: m, Level: 1, At: 1.1, Time: 0.1})
	tr.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeL1, Size: 100,
		Energy: 0.2, At: 0.8, Time: 0.4})
}

// TestTraceJSONRoundTrip: the emitted document parses with
// encoding/json, declares traceEvents, and every complete event
// carries ph="X" with ts and dur in microseconds.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer(3, "fe/AA")
	feedTimeline(tr)
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var complete, instant, meta int
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			complete++
			if _, ok := e["ts"].(float64); !ok {
				t.Errorf("complete event without numeric ts: %v", e)
			}
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("complete event without numeric dur: %v", e)
			}
			if pid, _ := e["pid"].(float64); pid != 3 {
				t.Errorf("pid %v, want 3", e["pid"])
			}
		case "i":
			instant++
			if _, ok := e["ts"].(float64); !ok {
				t.Errorf("instant event without ts: %v", e)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q in %v", ph, e)
		}
	}
	// 7 spans (2 invocations + 5 phases) and 5 instants (retry,
	// link.down, probe, link.up, compile.local).
	if complete != 7 {
		t.Errorf("%d complete events, want 7 (2 invocations + 5 phases)", complete)
	}
	if instant != 5 {
		t.Errorf("%d instant events, want 5", instant)
	}
	if meta < 1 {
		t.Error("no metadata events (process_name)")
	}
	// Timestamps are microseconds: the ship span at 0.3 s is 3e5 µs.
	found := false
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" && e["name"] == "ship" && e["ts"] == 3e5 {
			found = true
		}
	}
	if !found {
		t.Error("no ship span at ts=3e5 µs (seconds → µs conversion broken)")
	}
	if !strings.Contains(b.String(), `"process_name"`) {
		t.Error("missing process_name metadata")
	}
}

// TestTraceMergedCells: tracers with distinct pids merge into one
// document keeping their rows apart.
func TestTraceMergedCells(t *testing.T) {
	a, b := NewTracer(0, "fe/AL"), NewTracer(1, "fe/AA")
	feedTimeline(a)
	feedTimeline(b)
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]int{}
	for _, e := range doc.TraceEvents {
		pids[e.Pid]++
	}
	if pids[0] == 0 || pids[1] == 0 {
		t.Errorf("merged trace lost a cell: pid histogram %v", pids)
	}
}

// TestTraceJSONL: the compact log is one parseable object per line
// with the span fields intact.
func TestTraceJSONL(t *testing.T) {
	tr := NewTracer(0, "cell")
	feedTimeline(tr)
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(tr.Recs) {
		t.Fatalf("%d lines, want %d", len(lines), len(tr.Recs))
	}
	var invokes int
	for i, ln := range lines {
		var r TraceRec
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if r.Kind == "invoke" {
			invokes++
			if r.Dur <= 0 || r.Method != "App.work" || r.EnergyJ <= 0 {
				t.Errorf("invoke record malformed: %+v", r)
			}
		}
	}
	if invokes != 2 {
		t.Errorf("%d invoke lines, want 2", invokes)
	}
}
