package obs

import (
	"context"

	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"greenvm/internal/core"
	"greenvm/internal/jit"
	"greenvm/internal/lang"
)

const rpcTestSrc = `
class App {
  potential static int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + helper(i) % 1000; }
    return s;
  }
  static int helper(int x) { return x * x + 3 * x + 7; }
}
`

// startObservedServer runs a metered TCPServer on loopback.
func startObservedServer(t *testing.T) (addr string, srv *core.TCPServer, col *RPCCollector) {
	t.Helper()
	prog, err := lang.Compile(rpcTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	srv = core.NewTCPServer(core.NewServer(prog))
	col = NewRPCCollector(nil)
	srv.Metrics = col
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // returns on Close
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv, col
}

// TestRPCMetricsEndToEnd drives real RPCs through a metered server
// and client, then scrapes the server's registry over HTTP — the
// mjserver -metrics wiring, under test.
func TestRPCMetricsEndToEnd(t *testing.T) {
	addr, srv, serverCol := startObservedServer(t)

	remote, err := core.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	clientCol := NewRPCCollector(nil)
	remote.Metrics = clientCol

	// One successful compile RPC and one failing exec RPC (unknown
	// method → failure frame; the connection stays up).
	if _, _, err := remote.CompiledBody(context.Background(), "App.helper", jit.Level1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := remote.Execute(context.Background(), "c", "App", "nope", nil, 0, 0); err == nil {
		t.Fatal("exec of an unknown method should fail")
	}
	remote.Close()
	srv.Close() // drains handlers: ConnClosed has fired

	// Both sides agree on the request ledger.
	for side, col := range map[string]*RPCCollector{"server": serverCol, "client": clientCol} {
		snap := col.Registry().Snapshot()
		if v := counterValue(t, snap, "rpc_requests_total",
			map[string]string{"op": "compile", "status": "ok"}); v != 1 {
			t.Errorf("%s: compile ok requests %g, want 1", side, v)
		}
		if v := counterValue(t, snap, "rpc_requests_total",
			map[string]string{"op": "exec", "status": "fail"}); v != 1 {
			t.Errorf("%s: exec fail requests %g, want 1", side, v)
		}
		if v := counterValue(t, snap, "rpc_request_bytes_total",
			map[string]string{"op": "compile"}); v <= 0 {
			t.Errorf("%s: no compile request bytes", side)
		}
	}
	serverSnap := serverCol.Registry().Snapshot()
	if v := counterValue(t, serverSnap, "rpc_connections_total", map[string]string{}); v != 1 {
		t.Errorf("connections %g, want 1", v)
	}
	if v := counterValue(t, serverSnap, "rpc_connections_active", map[string]string{}); v != 0 {
		t.Errorf("active connections %g after close, want 0", v)
	}

	// Scrape over HTTP: Prometheus text and the JSON snapshot.
	ts := httptest.NewServer(Handler(serverCol.Registry()))
	defer ts.Close()

	text := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE rpc_requests_total counter",
		`rpc_requests_total{op="compile",status="ok"} 1`,
		`rpc_requests_total{op="exec",status="fail"} 1`,
		"rpc_connections_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "rpc_requests_total" {
			found = true
		}
	}
	if !found {
		t.Error("/metrics.json lacks rpc_requests_total")
	}
}

// TestRPCCollectorDirectCounters covers the paths the end-to-end run
// doesn't reach: recovered panics, oversized frames, reconnects and
// deadline hits.
func TestRPCCollectorDirectCounters(t *testing.T) {
	col := NewRPCCollector(nil)
	col.PanicRecovered()
	col.OversizedFrame()
	col.Reconnect()
	col.Reconnect()
	col.DeadlineHit()
	snap := col.Registry().Snapshot()
	none := map[string]string{}
	if v := counterValue(t, snap, "rpc_panics_recovered_total", none); v != 1 {
		t.Errorf("panics %g, want 1", v)
	}
	if v := counterValue(t, snap, "rpc_oversized_frames_total", none); v != 1 {
		t.Errorf("oversized %g, want 1", v)
	}
	if v := counterValue(t, snap, "rpc_reconnects_total", none); v != 2 {
		t.Errorf("reconnects %g, want 2", v)
	}
	if v := counterValue(t, snap, "rpc_deadline_hits_total", none); v != 1 {
		t.Errorf("deadline hits %g, want 1", v)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(body)
}
