package obs

import (
	"math"
	"strings"
	"testing"
)

// TestSummaryPrometheusFormat pins the summary exposition shape:
// quantile-labeled samples plus _sum and _count.
func TestSummaryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("rpc_wait_seconds", "queue wait", 0.5, 0.9)
	for i := 1; i <= 4; i++ {
		s.Observe(float64(i), "backend", "b0")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP rpc_wait_seconds queue wait
# TYPE rpc_wait_seconds summary
rpc_wait_seconds{backend="b0",quantile="0.5"} 2
rpc_wait_seconds{backend="b0",quantile="0.9"} 4
rpc_wait_seconds_sum{backend="b0"} 10
rpc_wait_seconds_count{backend="b0"} 4
`
	if got != want {
		t.Errorf("summary exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestSummarySnapshotJSON checks the snapshot carries quantiles and
// shared count/sum for summaries.
func TestSummarySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat", "")
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 {
		t.Fatalf("want 1 metric, got %d", len(snap.Metrics))
	}
	m := snap.Metrics[0]
	if m.Type != "summary" {
		t.Fatalf("type %q", m.Type)
	}
	ss := m.Series[0]
	if ss.Count != 100 || ss.Sum != 5050 {
		t.Errorf("count/sum %d/%g, want 100/5050", ss.Count, ss.Sum)
	}
	if len(ss.Quantiles) != len(DefaultQuantiles) {
		t.Fatalf("quantiles %v", ss.Quantiles)
	}
	// 1..100 in order: the sketch should land near the true percentiles.
	for _, qv := range ss.Quantiles {
		want := qv.Quantile * 100
		if math.Abs(qv.Value-want) > 5 {
			t.Errorf("q%g = %g, want ~%g", qv.Quantile, qv.Value, want)
		}
	}
}

// TestSummaryTypeClash: re-registering a name under a different type
// panics, summaries included.
func TestSummaryTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Summary("x", "")
	defer func() {
		if recover() == nil {
			t.Error("want panic on counter re-registration of a summary name")
		}
	}()
	r.Counter("x", "")
}

// TestChildHandleEquivalence: observations through a bound child land
// in the same series as label-pair calls, for every metric family.
func TestChildHandleEquivalence(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("c", "")
	c.Add(2, "k", "v")
	c.WithLabels("k", "v").Add(3)
	c.WithLabels("k", "v").Inc()

	g := r.Gauge("g", "")
	g.Set(5, "k", "v")
	gc := g.WithLabels("k", "v")
	gc.Add(-2)

	h := r.Histogram("h", "", []float64{1, 10})
	h.Observe(0.5, "k", "v")
	h.WithLabels("k", "v").Observe(7)

	s := r.Summary("s", "", 0.5)
	s.Observe(1, "k", "v")
	s.WithLabels("k", "v").Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, line := range []string{
		`c{k="v"} 6`,
		`g{k="v"} 3`,
		`h_count{k="v"} 2`,
		`s{k="v",quantile="0.5"} 1`,
		`s_count{k="v"} 2`,
	} {
		if !strings.Contains(got, line) {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
	// One series per family — the child resolved to the same one.
	for _, m := range r.Snapshot().Metrics {
		if len(m.Series) != 1 {
			t.Errorf("metric %s has %d series, want 1", m.Name, len(m.Series))
		}
	}
}

// TestCounterChildRejectsNegative: the negative-delta panic survives
// the child fast path.
func TestCounterChildRejectsNegative(t *testing.T) {
	r := NewRegistry()
	ch := r.Counter("c", "").WithLabels("k", "v")
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative child Add")
		}
	}()
	ch.Add(-1)
}

// TestChildObserveNoAlloc enforces the hot-path contract: once the
// label set is resolved, recording allocates nothing.
func TestChildObserveNoAlloc(t *testing.T) {
	r := NewRegistry()
	cc := r.Counter("c", "").WithLabels("backend", "b0", "kind", "served")
	gc := r.Gauge("g", "").WithLabels("backend", "b0")
	hc := r.Histogram("h", "", []float64{1, 10, 100}).WithLabels("backend", "b0")
	sc := r.Summary("s", "").WithLabels("backend", "b0")
	if n := testing.AllocsPerRun(1000, func() { cc.Add(1) }); n != 0 {
		t.Errorf("CounterChild.Add allocates %g/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { gc.Set(3) }); n != 0 {
		t.Errorf("GaugeChild.Set allocates %g/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { hc.Observe(5) }); n != 0 {
		t.Errorf("HistogramChild.Observe allocates %g/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { sc.Observe(5) }); n != 0 {
		t.Errorf("SummaryChild.Observe allocates %g/op, want 0", n)
	}
}

// BenchmarkCounterLabelPairs is the slow path the children replace:
// per-call label sort, key build, map lookup.
func BenchmarkCounterLabelPairs(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1, "backend", "b0", "kind", "served")
	}
}

func BenchmarkCounterChildAdd(b *testing.B) {
	r := NewRegistry()
	ch := r.Counter("c", "").WithLabels("backend", "b0", "kind", "served")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Add(1)
	}
}

func BenchmarkSummaryChildObserve(b *testing.B) {
	r := NewRegistry()
	ch := r.Summary("s", "").WithLabels("backend", "b0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Observe(float64(i & 1023))
	}
}
