package obs

import (
	"greenvm/internal/core"
)

// RPCCollector implements core.RPCMetrics over a Registry, exporting
// the transport's request rates, byte volumes, deadline hits and
// recovered panics. Attach one to a TCPServer (server side) or a
// RemoteServer (client side); the underlying registry is goroutine
// safe, matching the transport's per-connection concurrency.
type RPCCollector struct {
	reg *Registry

	requests   *Counter
	reqBytes   *Counter
	respBytes  *Counter
	connsTotal *Counter
	connsOpen  *Gauge
	panics     *Counter
	oversized  *Counter
	reconnects *Counter
	deadlines  *Counter
}

// NewRPCCollector builds a collector recording into reg (a fresh
// registry when nil).
func NewRPCCollector(reg *Registry) *RPCCollector {
	if reg == nil {
		reg = NewRegistry()
	}
	return &RPCCollector{
		reg: reg,

		requests:   reg.Counter("rpc_requests_total", "RPC requests by operation and status"),
		reqBytes:   reg.Counter("rpc_request_bytes_total", "request frame payload bytes by operation"),
		respBytes:  reg.Counter("rpc_response_bytes_total", "response frame payload bytes by operation"),
		connsTotal: reg.Counter("rpc_connections_total", "connections accepted"),
		connsOpen:  reg.Gauge("rpc_connections_active", "connections currently open"),
		panics:     reg.Counter("rpc_panics_recovered_total", "handler panics converted to failure frames"),
		oversized:  reg.Counter("rpc_oversized_frames_total", "frames refused for exceeding the size limit"),
		reconnects: reg.Counter("rpc_reconnects_total", "client re-dials after a broken connection"),
		deadlines:  reg.Counter("rpc_deadline_hits_total", "round trips that missed the RPC deadline"),
	}
}

// Registry returns the collector's registry (for snapshotting or
// serving).
func (c *RPCCollector) Registry() *Registry { return c.reg }

// ConnOpened implements core.RPCMetrics.
func (c *RPCCollector) ConnOpened() {
	c.connsTotal.Inc()
	c.connsOpen.Add(1)
}

// ConnClosed implements core.RPCMetrics.
func (c *RPCCollector) ConnClosed() { c.connsOpen.Add(-1) }

// Request implements core.RPCMetrics.
func (c *RPCCollector) Request(op string, reqBytes, respBytes int, failed bool) {
	status := "ok"
	if failed {
		status = "fail"
	}
	c.requests.Inc("op", op, "status", status)
	c.reqBytes.Add(float64(reqBytes), "op", op)
	c.respBytes.Add(float64(respBytes), "op", op)
}

// PanicRecovered implements core.RPCMetrics.
func (c *RPCCollector) PanicRecovered() { c.panics.Inc() }

// OversizedFrame implements core.RPCMetrics.
func (c *RPCCollector) OversizedFrame() { c.oversized.Inc() }

// Reconnect implements core.RPCMetrics.
func (c *RPCCollector) Reconnect() { c.reconnects.Inc() }

// DeadlineHit implements core.RPCMetrics.
func (c *RPCCollector) DeadlineHit() { c.deadlines.Inc() }

var _ core.RPCMetrics = (*RPCCollector)(nil)
