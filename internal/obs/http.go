package obs

import (
	"net/http"
	"net/http/pprof"
)

// HandlerOption configures HTTPHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	pprof bool
}

// WithPprof registers the net/http/pprof handlers under /debug/pprof/
// on the same mux, so one -serve-metrics flag yields both a scrape
// target and a profiling hook while a long sweep runs.
func WithPprof() HandlerOption {
	return func(c *handlerConfig) { c.pprof = true }
}

// HTTPHandler serves reg over HTTP: Prometheus text exposition at
// /metrics and the root path (so `curl host:port` works), an indented
// JSON snapshot at /metrics.json, and — with WithPprof — the standard
// profiling endpoints under /debug/pprof/. This is the one mux both
// mjserver -metrics and fleetsim -serve-metrics wire up, so
// content-type and error handling stay in one place.
func HTTPHandler(reg *Registry, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	text := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w) //nolint:errcheck
	}
	mux.HandleFunc("/metrics", text)
	mux.HandleFunc("/", text)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w) //nolint:errcheck
	})
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Handler is HTTPHandler without options, kept for existing callers.
func Handler(reg *Registry) http.Handler { return HTTPHandler(reg) }
