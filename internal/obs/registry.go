// Package obs is the energy observability layer: it turns the
// client's typed event stream (core.EventSink) into per-method energy
// attribution, estimator-accuracy audits and execution timelines, and
// exports everything as Prometheus-style text, JSON snapshots, Chrome
// trace-event files and compact JSONL logs.
//
// The package has four consumers-facing pieces:
//
//   - Registry: counters, gauges, fixed-bucket histograms and
//     streaming-quantile summaries with string labels, rendered
//     deterministically (sorted by name, then label key) so parallel
//     experiment cells snapshot byte-identically; WithLabels child
//     handles bind a label set once for zero-allocation hot paths;
//   - MetricsSink: an EventSink attributing energy/time per
//     (method × mode × level) and folding radio telemetry deltas into
//     monotonic counters;
//   - Auditor: an EventSink pairing every EvEstimate with its EvInvoke
//     to measure estimator prediction error and decision regret;
//   - Tracer: an EventSink emitting the simulated-clock timeline as
//     Chrome trace-event JSON (chrome://tracing, Perfetto) and JSONL.
//
// All registry operations are safe for concurrent use (the mjserver
// metrics endpoint scrapes while handlers record); the event sinks,
// like all core sinks, run synchronously on the simulation goroutine.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType discriminates the three metric families.
type MetricType int

// The metric families.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
	TypeSummary
)

// String names the type as in the Prometheus exposition format.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	case TypeSummary:
		return "summary"
	default:
		return fmt.Sprintf("MetricType(%d)", int(t))
	}
}

// Registry holds a set of named metrics. The zero value is not ready;
// use NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// metric is one named family: a set of label-keyed series.
type metric struct {
	name      string
	help      string
	typ       MetricType
	buckets   []float64 // histogram upper bounds, ascending (+Inf implicit)
	quantiles []float64 // summary tracked quantiles, ascending
	series    map[string]*series
}

// series is one (metric, labels) time series.
type series struct {
	labels []string // alternating key, value, sorted by key

	// Counter/gauge state.
	value float64

	// Histogram state: counts[i] observations <= buckets[i],
	// non-cumulative per bucket; count/sum over all observations.
	counts []uint64
	inf    uint64
	sum    float64
	count  uint64

	// Summary state: a fixed-size streaming quantile sketch. Allocated
	// once when the series is created; Observe never allocates.
	sketch *QuantileSketch
}

func (r *Registry) metricNamed(name, help string, typ MetricType, buckets []float64) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metrics[name]
	if m == nil {
		m = &metric{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		r.metrics[name] = m
		return m
	}
	if m.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, typ, m.typ))
	}
	return m
}

// labelKey canonicalizes a label set: pairs sorted by key, joined
// unambiguously.
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		b.WriteString(strconv.Quote(pairs[i]))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(pairs[i+1]))
		b.WriteByte(',')
	}
	return b.String()
}

// sortPairs returns the label pairs sorted by key (stable copy).
func sortPairs(pairs []string) []string {
	if len(pairs)%2 != 0 {
		panic("obs: odd label list, want key, value, key, value, ...")
	}
	if len(pairs) <= 2 {
		return append([]string(nil), pairs...)
	}
	idx := make([]int, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return pairs[idx[a]] < pairs[idx[b]] })
	out := make([]string, 0, len(pairs))
	for _, i := range idx {
		out = append(out, pairs[i], pairs[i+1])
	}
	return out
}

func (m *metric) seriesFor(r *Registry, pairs []string) *series {
	sorted := sortPairs(pairs)
	key := labelKey(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := m.series[key]
	if s == nil {
		s = &series{labels: sorted}
		switch m.typ {
		case TypeHistogram:
			s.counts = make([]uint64, len(m.buckets))
		case TypeSummary:
			s.sketch = NewQuantileSketch(m.quantiles...)
		}
		m.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric.
type Counter struct {
	r *Registry
	m *metric
}

// Counter registers (or finds) a counter family.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r: r, m: r.metricNamed(name, help, TypeCounter, nil)}
}

// Add increases the series selected by the alternating key/value label
// pairs. Negative deltas panic: counters only go up.
func (c *Counter) Add(v float64, labelPairs ...string) {
	s := c.m.seriesFor(c.r, labelPairs)
	c.r.mu.Lock()
	addCounter(c.m, s, v)
	c.r.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc(labelPairs ...string) { c.Add(1, labelPairs...) }

// WithLabels resolves the label set once and returns a handle bound to
// that series: the hot-path API. A handle's Add does no label sorting,
// no key building and no map lookup — fleet-tick recording drives
// thousands of observations per virtual second through these, and the
// registry benchmark holds them to zero allocations per observation.
func (c *Counter) WithLabels(labelPairs ...string) *CounterChild {
	return &CounterChild{r: c.r, m: c.m, s: c.m.seriesFor(c.r, labelPairs)}
}

// CounterChild is a counter bound to one resolved label set.
type CounterChild struct {
	r *Registry
	m *metric
	s *series
}

// Add increases the bound series. Negative deltas panic.
func (c *CounterChild) Add(v float64) {
	c.r.mu.Lock()
	addCounter(c.m, c.s, v)
	c.r.mu.Unlock()
}

// Inc adds one.
func (c *CounterChild) Inc() { c.Add(1) }

// addCounter applies a counter delta; callers hold the registry lock.
func addCounter(m *metric, s *series, v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter %s decreased by %g", m.name, -v))
	}
	s.value += v
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	r *Registry
	m *metric
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r: r, m: r.metricNamed(name, help, TypeGauge, nil)}
}

// Set assigns the series value.
func (g *Gauge) Set(v float64, labelPairs ...string) {
	s := g.m.seriesFor(g.r, labelPairs)
	g.r.mu.Lock()
	s.value = v
	g.r.mu.Unlock()
}

// Add shifts the series value by v (negative allowed).
func (g *Gauge) Add(v float64, labelPairs ...string) {
	s := g.m.seriesFor(g.r, labelPairs)
	g.r.mu.Lock()
	s.value += v
	g.r.mu.Unlock()
}

// WithLabels resolves the label set once and returns a bound handle
// (see Counter.WithLabels).
func (g *Gauge) WithLabels(labelPairs ...string) *GaugeChild {
	return &GaugeChild{r: g.r, s: g.m.seriesFor(g.r, labelPairs)}
}

// GaugeChild is a gauge bound to one resolved label set.
type GaugeChild struct {
	r *Registry
	s *series
}

// Set assigns the bound series value.
func (g *GaugeChild) Set(v float64) {
	g.r.mu.Lock()
	g.s.value = v
	g.r.mu.Unlock()
}

// Add shifts the bound series value by v (negative allowed).
func (g *GaugeChild) Add(v float64) {
	g.r.mu.Lock()
	g.s.value += v
	g.r.mu.Unlock()
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest. An
// observation equal to a bound falls in that bound's bucket (le
// semantics, as in Prometheus).
type Histogram struct {
	r *Registry
	m *metric
}

// Histogram registers (or finds) a histogram family with the given
// bucket upper bounds (must be ascending and non-empty).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending: %v", name, buckets))
		}
	}
	return &Histogram{r: r, m: r.metricNamed(name, help, TypeHistogram, append([]float64(nil), buckets...))}
}

// Observe records one sample in the series selected by the label
// pairs.
func (h *Histogram) Observe(v float64, labelPairs ...string) {
	s := h.m.seriesFor(h.r, labelPairs)
	h.r.mu.Lock()
	observeHistogram(h.m, s, v)
	h.r.mu.Unlock()
}

// WithLabels resolves the label set once and returns a bound handle
// (see Counter.WithLabels).
func (h *Histogram) WithLabels(labelPairs ...string) *HistogramChild {
	return &HistogramChild{r: h.r, m: h.m, s: h.m.seriesFor(h.r, labelPairs)}
}

// HistogramChild is a histogram bound to one resolved label set.
type HistogramChild struct {
	r *Registry
	m *metric
	s *series
}

// Observe records one sample in the bound series.
func (h *HistogramChild) Observe(v float64) {
	h.r.mu.Lock()
	observeHistogram(h.m, h.s, v)
	h.r.mu.Unlock()
}

// observeHistogram buckets one sample; callers hold the registry lock.
func observeHistogram(m *metric, s *series, v float64) {
	placed := false
	for i, ub := range m.buckets {
		if v <= ub {
			s.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		s.inf++
	}
	s.sum += v
	s.count++
}

// Summary is a streaming quantile distribution: each series carries
// one fixed-size P² sketch per tracked quantile (see quantile.go), so
// memory stays constant however many samples arrive — the metric type
// the fleet's per-request distributions (queue waits, service times)
// export at 100k-client scale, where a histogram's bucket guess is
// wrong and a sorted slice is unaffordable.
type Summary struct {
	r *Registry
	m *metric
}

// Summary registers (or finds) a summary family tracking the given
// quantiles (DefaultQuantiles when none are named; must be ascending
// within (0, 1)).
func (r *Registry) Summary(name, help string, quantiles ...float64) *Summary {
	if len(quantiles) == 0 {
		quantiles = DefaultQuantiles
	}
	// NewQuantileSketch validates; building one catches bad quantile
	// lists at registration instead of first observation.
	NewQuantileSketch(quantiles...)
	m := r.metricNamed(name, help, TypeSummary, nil)
	r.mu.Lock()
	if m.quantiles == nil {
		m.quantiles = append([]float64(nil), quantiles...)
	}
	r.mu.Unlock()
	return &Summary{r: r, m: m}
}

// Observe records one sample in the series selected by the label
// pairs.
func (s *Summary) Observe(v float64, labelPairs ...string) {
	se := s.m.seriesFor(s.r, labelPairs)
	s.r.mu.Lock()
	se.sketch.Observe(v)
	s.r.mu.Unlock()
}

// WithLabels resolves the label set once and returns a bound handle
// (see Counter.WithLabels).
func (s *Summary) WithLabels(labelPairs ...string) *SummaryChild {
	return &SummaryChild{r: s.r, s: s.m.seriesFor(s.r, labelPairs)}
}

// SummaryChild is a summary bound to one resolved label set.
type SummaryChild struct {
	r *Registry
	s *series
}

// Observe records one sample in the bound series. It never allocates.
func (s *SummaryChild) Observe(v float64) {
	s.r.mu.Lock()
	s.s.sketch.Observe(v)
	s.r.mu.Unlock()
}

// --- Snapshots ---

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically: metrics by name, series by canonical label key.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one metric family in a snapshot.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled series in a snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value.
	Value float64 `json:"value"`
	// Histogram fields: cumulative bucket counts (le upper bounds,
	// +Inf last), total count and sum.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	// Summary fields: the sketch's quantile estimates (Count/Sum are
	// shared with the histogram fields above).
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"` // upper bound; +Inf serialized as the string "+Inf"
	Count uint64  `json:"count"`
}

// MarshalJSON encodes +Inf as the string "+Inf" (JSON has no
// infinity).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !isInf(b.LE) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

func isInf(v float64) bool { return math.IsInf(v, 1) }

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := &Snapshot{}
	for _, name := range names {
		m := r.metrics[name]
		ms := MetricSnapshot{Name: m.name, Type: m.typ.String(), Help: m.help}
		keys := make([]string, 0, len(m.series))
		for k := range m.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := m.series[k]
			ss := SeriesSnapshot{Value: s.value}
			if len(s.labels) > 0 {
				ss.Labels = map[string]string{}
				for i := 0; i < len(s.labels); i += 2 {
					ss.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			switch m.typ {
			case TypeHistogram:
				var cum uint64
				for i, c := range s.counts {
					cum += c
					ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: m.buckets[i], Count: cum})
				}
				cum += s.inf
				ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: math.Inf(1), Count: cum})
				ss.Count = s.count
				ss.Sum = s.sum
				ss.Value = 0
			case TypeSummary:
				sk := s.sketch.Snapshot()
				ss.Quantiles = sk.Quantiles
				ss.Count = uint64(sk.Count)
				ss.Sum = sk.Sum
				ss.Value = 0
			}
			ms.Series = append(ms.Series, ss)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes it as JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (deterministic ordering).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		for _, ss := range m.Series {
			switch m.Type {
			case "summary":
				for _, qv := range ss.Quantiles {
					if _, err := fmt.Fprintf(w, "%s%s %s\n",
						m.Name, promLabels(ss.Labels, "quantile", formatFloat(qv.Quantile)), formatFloat(qv.Value)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(ss.Labels), formatFloat(ss.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(ss.Labels), ss.Count); err != nil {
					return err
				}
			case "histogram":
				for _, b := range ss.Buckets {
					le := "+Inf"
					if !isInf(b.LE) {
						le = formatFloat(b.LE)
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						m.Name, promLabels(ss.Labels, "le", le), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(ss.Labels), formatFloat(ss.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(ss.Labels), ss.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(ss.Labels), formatFloat(ss.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and renders it as Prometheus
// text.
func (r *Registry) WritePrometheus(w io.Writer) error { return r.Snapshot().WritePrometheus(w) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders a label map (plus optional extra key/value
// appended last) as {k="v",...}; empty sets render as nothing.
func promLabels(labels map[string]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	put := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for _, k := range keys {
		put(k, labels[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		put(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
