package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTimeSeriesWindowing(t *testing.T) {
	ts := NewTimeSeries(0.5, 0)
	ts.Add(0.1, "served", 1)
	ts.Add(0.49, "served", 1)
	ts.Add(0.5, "served", 1) // boundary: belongs to window 1
	ts.Add(2.2, "shed", 1)   // skips window 2/3 boundary — fills gaps
	ts.Set(2.3, "depth", 4)
	ts.Set(2.4, "depth", 2) // last write wins

	wins := ts.Windows()
	if len(wins) != 5 {
		t.Fatalf("want 5 contiguous windows, got %d", len(wins))
	}
	for i, w := range wins {
		if w.Index != int64(i) {
			t.Errorf("window %d has index %d", i, w.Index)
		}
		if w.Start != float64(w.Index)*0.5 || w.End != float64(w.Index+1)*0.5 {
			t.Errorf("window %d bounds [%g, %g)", i, w.Start, w.End)
		}
	}
	if wins[0].Counters["served"] != 2 || wins[1].Counters["served"] != 1 {
		t.Errorf("served split %g/%g, want 2/1", wins[0].Counters["served"], wins[1].Counters["served"])
	}
	if wins[4].Counters["shed"] != 1 || wins[4].Gauges["depth"] != 2 {
		t.Errorf("window 4: %+v", wins[4])
	}
	if wins[2].Counters != nil || wins[3].Counters != nil {
		t.Error("gap windows should stay empty")
	}
}

func TestTimeSeriesEviction(t *testing.T) {
	ts := NewTimeSeries(1, 3)
	for i := 0; i < 6; i++ {
		ts.AddIdx(int64(i), "n", 1)
	}
	if got := len(ts.Windows()); got != 3 {
		t.Fatalf("retained %d windows, want 3", got)
	}
	if ts.Windows()[0].Index != 3 {
		t.Errorf("oldest retained index %d, want 3", ts.Windows()[0].Index)
	}
	if ts.Evicted() != 3 {
		t.Errorf("evicted %d, want 3", ts.Evicted())
	}
	// A write into an evicted window is dropped and counted late.
	ts.AddIdx(0, "n", 1)
	if ts.Late() != 1 {
		t.Errorf("late %d, want 1", ts.Late())
	}
}

func TestTimeSeriesJSONL(t *testing.T) {
	ts := NewTimeSeries(0.25, 0)
	ts.Add(0.0, SeriesName("served", "backend", "b0"), 3)
	ts.Add(0.3, "energy_j", 1.5)

	var b strings.Builder
	if err := ts.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr struct {
		Schema  string  `json:"schema"`
		Tick    float64 `json:"tick"`
		Windows int     `json:"windows"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Schema != TimeSeriesSchema || hdr.Tick != 0.25 || hdr.Windows != 2 {
		t.Errorf("header %+v", hdr)
	}
	var wins []Window
	for sc.Scan() {
		var w Window
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			t.Fatalf("window line: %v", err)
		}
		wins = append(wins, w)
	}
	if len(wins) != 2 {
		t.Fatalf("decoded %d windows", len(wins))
	}
	if wins[0].Counters[`served{backend="b0"}`] != 3 {
		t.Errorf("window 0: %+v", wins[0])
	}
	if wins[1].Counters["energy_j"] != 1.5 {
		t.Errorf("window 1: %+v", wins[1])
	}

	// Byte-identical on re-render: the JSONL is deterministic.
	var b2 strings.Builder
	if err := ts.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("JSONL render not deterministic")
	}
}

func TestTimeSeriesPrometheus(t *testing.T) {
	ts := NewTimeSeries(1, 0)
	ts.Add(0.5, "served", 2)
	ts.Add(1.5, SeriesName("served", "backend", "b1"), 7)
	ts.Set(1.6, "depth", 3)

	var b strings.Builder
	if err := ts.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `ts_window_index 1
ts_window_start 1
ts_served{backend="b1"} 7
ts_depth 3
`
	if b.String() != want {
		t.Errorf("prometheus render:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSeriesNameCanonical(t *testing.T) {
	a := SeriesName("served", "kind", "warm", "backend", "b0")
	b := SeriesName("served", "backend", "b0", "kind", "warm")
	if a != b {
		t.Errorf("label order leaked into name: %q vs %q", a, b)
	}
	if want := `served{backend="b0",kind="warm"}`; a != want {
		t.Errorf("name %q, want %q", a, want)
	}
	if got := SeriesName("bare"); got != "bare" {
		t.Errorf("unlabeled name %q", got)
	}
}

func TestHTTPHandlerRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits", "").Inc()
	h := HTTPHandler(reg, WithPprof())

	get := func(path string) (string, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		body, _ := io.ReadAll(rec.Result().Body)
		return string(body), rec.Result().Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "hits 1") || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics: ct=%q body=%q", ct, body)
	}
	if root, _ := get("/"); root != body {
		t.Error("root path should answer like /metrics")
	}
	jbody, jct := get("/metrics.json")
	if !strings.Contains(jbody, `"hits"`) || jct != "application/json" {
		t.Errorf("/metrics.json: ct=%q", jct)
	}
	if pp, _ := get("/debug/pprof/"); !strings.Contains(pp, "profile") {
		t.Errorf("pprof index missing: %q", pp[:min(len(pp), 120)])
	}
	// Without the option, pprof stays unregistered (root catches it and
	// serves metrics text instead).
	plain := HTTPHandler(reg)
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if b, _ := io.ReadAll(rec.Result().Body); !strings.Contains(string(b), "hits 1") {
		t.Error("plain handler should not expose pprof")
	}
}
