package obs

import (
	"strconv"

	"greenvm/internal/core"
	"greenvm/internal/radio"
)

// Default bucket boundaries. Invocation energies span six orders of
// magnitude across the benchmarks (µJ-scale offloads to J-scale
// interpretation), so the defaults are decade buckets.
var (
	// DefaultEnergyBuckets bound invocation energy in joules.
	DefaultEnergyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	// DefaultTimeBuckets bound invocation wall time in seconds.
	DefaultTimeBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
)

// MetricsSink attributes the event stream to a Registry: energy and
// time per (method × mode), compilations per (method × level × site),
// timeline phases, and the link's radio telemetry — folded in as
// deltas between successive snapshots, so counters stay correct even
// though each event carries cumulative link state.
type MetricsSink struct {
	reg *Registry

	invocations  *Counter
	energyTotal  *Counter
	timeTotal    *Counter
	invokeEnergy *Histogram
	invokeTime   *Histogram
	fallbacks    *Counter
	compiles     *Counter
	evictions    *Counter
	memoHits     *Counter
	retries      *Counter
	sheds        *Counter
	placements   *Counter
	failovers    *Counter
	probes       *Counter
	transitions  *Counter
	linkUp       *Gauge
	backendUp    *Gauge
	estimates    *Counter
	predicted    *Counter
	phaseTime    *Counter
	phaseCount   *Counter

	radioExchanges *Counter
	radioLosses    *Counter
	radioRetrans   *Counter
	radioStalls    *Counter
	radioStallTime *Counter
	radioTxBytes   *Counter
	radioRxBytes   *Counter

	lastRadio radio.Telemetry
}

// NewMetricsSink builds a sink recording into reg (a fresh registry
// when nil).
func NewMetricsSink(reg *Registry) *MetricsSink {
	if reg == nil {
		reg = NewRegistry()
	}
	s := &MetricsSink{
		reg: reg,

		invocations:  reg.Counter("invocations_total", "potential-method invocations by method and decided mode"),
		energyTotal:  reg.Counter("invocation_energy_joules_total", "energy attributed to invocations by method and mode"),
		timeTotal:    reg.Counter("invocation_time_seconds_total", "wall time attributed to invocations by method and mode"),
		invokeEnergy: reg.Histogram("invocation_energy_joules", "per-invocation energy distribution", DefaultEnergyBuckets),
		invokeTime:   reg.Histogram("invocation_time_seconds", "per-invocation wall-time distribution", DefaultTimeBuckets),
		fallbacks:    reg.Counter("fallbacks_total", "connection-loss fallbacks to local execution or compilation"),
		compiles:     reg.Counter("compiles_total", "method bodies obtained, by site (local/remote), method and level"),
		evictions:    reg.Counter("evictions_total", "bodies unlinked by the code cache's LRU policy"),
		memoHits:     reg.Counter("memo_hits_total", "invocations replayed from the memo"),
		retries:      reg.Counter("retries_total", "re-attempted remote exchanges after losses"),
		sheds:        reg.Counter("sheds_total", "remote exchanges rejected by server admission control"),
		placements:   reg.Counter("placements_total", "multi-backend requests served, by method and backend"),
		failovers:    reg.Counter("failovers_total", "retries re-placed off a breaker-struck backend, by from/to backend"),
		probes:       reg.Counter("probes_total", "half-open circuit-breaker probes by outcome"),
		transitions:  reg.Counter("link_transitions_total", "circuit-breaker open/close transitions by direction"),
		linkUp:       reg.Gauge("link_up", "1 while the link circuit breaker admits remote options"),
		backendUp:    reg.Gauge("backend_up", "1 while the named backend's circuit breaker is closed"),
		estimates:    reg.Counter("estimates_total", "adaptive decisions priced, by method and chosen mode"),
		predicted:    reg.Counter("predicted_energy_joules_total", "estimator-predicted energy of the chosen mode, by method"),
		phaseTime:    reg.Counter("phase_seconds_total", "simulated time spent per timeline phase"),
		phaseCount:   reg.Counter("phase_spans_total", "timeline spans per phase"),

		radioExchanges: reg.Counter("radio_exchanges_total", "link transfers attempted"),
		radioLosses:    reg.Counter("radio_losses_total", "transfers lost to the fault process"),
		radioRetrans:   reg.Counter("radio_retransmits_total", "underpowered transmissions repeated at the true channel class"),
		radioStalls:    reg.Counter("radio_stalls_total", "losses detected only after a receiver-up wait"),
		radioStallTime: reg.Counter("radio_stall_seconds_total", "receiver-up time spent detecting stalls"),
		radioTxBytes:   reg.Counter("radio_bytes_sent_total", "payload bytes transmitted"),
		radioRxBytes:   reg.Counter("radio_bytes_received_total", "payload bytes received"),
	}
	s.linkUp.Set(1)
	return s
}

// Registry returns the sink's registry (for snapshotting or serving).
func (s *MetricsSink) Registry() *Registry { return s.reg }

// Emit implements core.EventSink.
func (s *MetricsSink) Emit(e core.Event) {
	if e.Radio.Exchanges > 0 {
		s.SyncRadio(e.Radio)
	}
	method := ""
	if e.Method != nil {
		method = e.Method.QName()
	}
	switch e.Kind {
	case core.EvInvoke:
		mode := e.Mode.String()
		s.invocations.Inc("method", method, "mode", mode)
		s.energyTotal.Add(float64(e.Energy), "method", method, "mode", mode)
		s.timeTotal.Add(float64(e.Time), "method", method, "mode", mode)
		s.invokeEnergy.Observe(float64(e.Energy), "method", method, "mode", mode)
		s.invokeTime.Observe(float64(e.Time), "method", method, "mode", mode)
		if e.FellBack {
			s.invocations.Inc("method", method, "mode", "fellback")
		}
	case core.EvFallback:
		s.fallbacks.Inc("method", method)
	case core.EvLocalCompile:
		s.compiles.Inc("site", "local", "method", method, "level", levelLabel(e))
	case core.EvRemoteCompile:
		s.compiles.Inc("site", "remote", "method", method, "level", levelLabel(e))
	case core.EvEvict:
		s.evictions.Inc()
	case core.EvMemoHit:
		s.memoHits.Inc()
	case core.EvRetry:
		s.retries.Inc("method", method)
	case core.EvShed:
		// Single-server sheds carry no backend name; keep their series
		// unchanged and split per backend only when a pool names one.
		if e.Backend != "" {
			s.sheds.Inc("method", method, "backend", e.Backend)
		} else {
			s.sheds.Inc("method", method)
		}
	case core.EvPlace:
		s.placements.Inc("method", method, "backend", e.Backend)
	case core.EvFailover:
		s.failovers.Inc("from", e.From, "to", e.Backend)
	case core.EvProbe:
		outcome := "ok"
		if e.FellBack {
			outcome = "lost"
		}
		if e.Backend != "" {
			s.probes.Inc("outcome", outcome, "backend", e.Backend)
		} else {
			s.probes.Inc("outcome", outcome)
		}
	case core.EvLinkDown:
		// A backend-attributed transition is one backend's breaker
		// opening, not the whole pool going dark: track it on the
		// per-backend gauge and keep the link series unlabelled.
		if e.Backend != "" {
			s.transitions.Inc("to", "down", "backend", e.Backend)
			s.backendUp.Set(0, "backend", e.Backend)
		} else {
			s.transitions.Inc("to", "down")
			s.linkUp.Set(0)
		}
	case core.EvLinkUp:
		if e.Backend != "" {
			s.transitions.Inc("to", "up", "backend", e.Backend)
			s.backendUp.Set(1, "backend", e.Backend)
		} else {
			s.transitions.Inc("to", "up")
			s.linkUp.Set(1)
		}
	case core.EvEstimate:
		if e.Est != nil {
			s.estimates.Inc("method", method, "mode", e.Est.Chosen.String())
			s.predicted.Add(e.Est.Cost[e.Est.Chosen], "method", method)
		}
	case core.EvPhase:
		s.phaseTime.Add(float64(e.Time), "phase", e.Phase.String())
		s.phaseCount.Inc("phase", e.Phase.String())
	}
}

// SyncRadio folds the difference between the last seen telemetry
// snapshot and tel into the radio counters. Drivers call it with the
// link's final telemetry at end of run so a trailing failed exchange
// (which emits no further radio-carrying event) is still counted.
func (s *MetricsSink) SyncRadio(tel radio.Telemetry) {
	d := func(c *Counter, now, prev int) {
		if now > prev {
			c.Add(float64(now - prev))
		}
	}
	d(s.radioExchanges, tel.Exchanges, s.lastRadio.Exchanges)
	d(s.radioLosses, tel.Losses, s.lastRadio.Losses)
	d(s.radioRetrans, tel.Retransmits, s.lastRadio.Retransmits)
	d(s.radioStalls, tel.Stalls, s.lastRadio.Stalls)
	d(s.radioTxBytes, tel.BytesSent, s.lastRadio.BytesSent)
	d(s.radioRxBytes, tel.BytesReceived, s.lastRadio.BytesReceived)
	if dt := float64(tel.StallTime - s.lastRadio.StallTime); dt > 0 {
		s.radioStallTime.Add(dt)
	}
	s.lastRadio = tel
}

func levelLabel(e core.Event) string { return "L" + strconv.Itoa(int(e.Level)) }

// Compile-time check: the sink consumes the client event stream.
var _ core.EventSink = (*MetricsSink)(nil)
