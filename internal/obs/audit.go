package obs

import (
	"fmt"
	"io"
	"math"
	"sort"

	"greenvm/internal/core"
)

// Auditor holds the adaptive estimators to account: it pairs each
// EvEstimate (the policy's per-mode predicted energies) with the
// EvInvoke that follows it for the same method, and accumulates the
// prediction-error distribution and the regret — energy actually
// spent minus the cheapest considered estimate — per method.
// When the client runs against a multi-backend pool the auditor also
// tallies, per backend, how often placement landed there and how often
// that backend shed — the placement-quality view of the same stream.
type Auditor struct {
	pending  map[string]*core.Estimate
	methods  map[string]*methodAudit
	backends map[string]*backendAudit
	// Unpaired counts invocations that errored out between estimate
	// and outcome (the estimate is dropped, not matched to the next
	// invocation).
	Unpaired int
}

type backendAudit struct {
	placed int
	shed   int
}

type methodAudit struct {
	n         int
	sumAbsErr float64
	sumRelErr float64
	// relErr sketches the relative-error distribution in fixed-size
	// state; the old []float64 grew without bound per method and was
	// copied and sorted on every Report.
	relErr      P2
	totalRegret float64
	actual      float64
	predicted   float64
}

// NewAuditor returns an empty auditor; attach it to a client's sinks.
func NewAuditor() *Auditor {
	return &Auditor{
		pending:  map[string]*core.Estimate{},
		methods:  map[string]*methodAudit{},
		backends: map[string]*backendAudit{},
	}
}

// Emit implements core.EventSink.
func (a *Auditor) Emit(e core.Event) {
	if e.Method == nil {
		return
	}
	name := e.Method.QName()
	switch e.Kind {
	case core.EvPlace:
		a.backendFor(e.Backend).placed++
	case core.EvShed:
		// Single-server sheds name no backend; only pool runs feed the
		// per-backend table.
		if e.Backend != "" {
			a.backendFor(e.Backend).shed++
		}
	case core.EvEstimate:
		if a.pending[name] != nil {
			a.Unpaired++
		}
		a.pending[name] = e.Est
	case core.EvInvoke:
		est := a.pending[name]
		if est == nil {
			return // static policy, or memo replay without a decision
		}
		delete(a.pending, name)
		m := a.methods[name]
		if m == nil {
			m = &methodAudit{}
			m.relErr.Reset(0.95)
			a.methods[name] = m
		}
		actual := float64(e.Energy)
		pred := est.Cost[est.Chosen]
		absErr := math.Abs(actual - pred)
		relErr := 0.0
		if actual != 0 {
			relErr = absErr / actual
		}
		m.n++
		m.sumAbsErr += absErr
		m.sumRelErr += relErr
		m.relErr.Observe(relErr)
		m.totalRegret += actual - est.BestCost()
		m.actual += actual
		m.predicted += pred
	}
}

func (a *Auditor) backendFor(id string) *backendAudit {
	b := a.backends[id]
	if b == nil {
		b = &backendAudit{}
		a.backends[id] = b
	}
	return b
}

// MethodAudit is the per-method summary of a Report.
type MethodAudit struct {
	Method string
	// N is the number of paired estimate/outcome invocations.
	N int
	// MeanAbsErr and MeanRelErr summarize |actual − predicted| for
	// the chosen mode, in joules and as a fraction of actual.
	MeanAbsErr float64
	MeanRelErr float64
	// P95RelErr is the 95th percentile of the relative error,
	// estimated by a streaming P² sketch (exact through the first five
	// paired invocations, approximate after — see quantile.go).
	P95RelErr float64
	// TotalRegret is Σ(actual − cheapest considered estimate): the
	// energy the estimator left on the table versus a clairvoyant
	// pick of its own candidates.
	TotalRegret float64
	// ActualJ and PredictedJ total the measured and predicted energy
	// of the paired invocations.
	ActualJ    float64
	PredictedJ float64
}

// BackendAudit is the per-backend placement summary of a Report: how
// many requests placement landed on the backend and how many it shed.
type BackendAudit struct {
	Backend string
	Placed  int
	Shed    int
}

// AuditReport is the auditor's summary, one row per method.
type AuditReport struct {
	Methods []MethodAudit
	// Backends holds the per-backend placement tallies, sorted by
	// backend name; empty for single-server runs.
	Backends []BackendAudit
	// Unpaired counts estimates that never met their invocation.
	Unpaired int
}

// TotalRegret sums the per-method regret.
func (r *AuditReport) TotalRegret() float64 {
	t := 0.0
	for _, m := range r.Methods {
		t += m.TotalRegret
	}
	return t
}

// Report summarizes the audited methods, sorted by name. Estimates
// still pending (their invocation errored out) count as unpaired.
func (a *Auditor) Report() *AuditReport {
	r := &AuditReport{Unpaired: a.Unpaired + len(a.pending)}
	for name, m := range a.methods {
		r.Methods = append(r.Methods, MethodAudit{
			Method:      name,
			N:           m.n,
			MeanAbsErr:  m.sumAbsErr / float64(m.n),
			MeanRelErr:  m.sumRelErr / float64(m.n),
			P95RelErr:   m.relErr.Quantile(),
			TotalRegret: m.totalRegret,
			ActualJ:     m.actual,
			PredictedJ:  m.predicted,
		})
	}
	sort.Slice(r.Methods, func(i, j int) bool { return r.Methods[i].Method < r.Methods[j].Method })
	for id, b := range a.backends {
		r.Backends = append(r.Backends, BackendAudit{Backend: id, Placed: b.placed, Shed: b.shed})
	}
	sort.Slice(r.Backends, func(i, j int) bool { return r.Backends[i].Backend < r.Backends[j].Backend })
	return r
}

// RenderAuditReport writes the report as an aligned text table.
func RenderAuditReport(w io.Writer, title string, r *AuditReport) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-28s %6s %12s %10s %10s %12s\n",
		"method", "n", "meanAbsErr", "meanRelErr", "p95RelErr", "regret(J)")
	for _, m := range r.Methods {
		fmt.Fprintf(w, "  %-28s %6d %12.4g %9.1f%% %9.1f%% %12.4g\n",
			m.Method, m.N, m.MeanAbsErr, 100*m.MeanRelErr, 100*m.P95RelErr, m.TotalRegret)
	}
	fmt.Fprintf(w, "  total regret %.4g J", r.TotalRegret())
	if r.Unpaired > 0 {
		fmt.Fprintf(w, "   (%d unpaired estimates)", r.Unpaired)
	}
	fmt.Fprintln(w)
	for _, b := range r.Backends {
		fmt.Fprintf(w, "  backend %-8s placed %6d   shed %6d\n", b.Backend, b.Placed, b.Shed)
	}
}

var _ core.EventSink = (*Auditor)(nil)
