package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to an upper bound lands in that bound's bucket, one just
// above lands in the next, and values beyond the last bound go to
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 6, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || len(snap.Metrics[0].Series) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	s := snap.Metrics[0].Series[0]
	// Cumulative: le=1 holds {0.5, 1}; le=2 adds {1.0000001, 2}; le=5
	// adds {5}; +Inf adds {6, 100}.
	wantCum := []uint64{2, 4, 5, 7}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%g): cumulative %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if s.Count != 7 {
		t.Errorf("count %d, want 7", s.Count)
	}
	if want := 0.5 + 1 + 1.0000001 + 2 + 5 + 6 + 100; s.Sum != want {
		t.Errorf("sum %g, want %g", s.Sum, want)
	}
	if !isInf(s.Buckets[len(s.Buckets)-1].LE) {
		t.Error("last bucket should be +Inf")
	}
}

// TestCounterRejectsNegative: counters only go up.
func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "test").Add(-1)
}

// TestLabelOrderCanonical: the same label set in any order is one
// series.
func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "test")
	c.Inc("a", "1", "b", "2")
	c.Inc("b", "2", "a", "1")
	snap := r.Snapshot()
	if n := len(snap.Metrics[0].Series); n != 1 {
		t.Fatalf("%d series, want 1 (label order must not matter)", n)
	}
	if v := snap.Metrics[0].Series[0].Value; v != 2 {
		t.Errorf("value %g, want 2", v)
	}
}

// TestPrometheusText checks the exposition format and its
// deterministic ordering.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("zz_gauge", "a gauge")
	g.Set(3.5)
	c := r.Counter("aa_counter", "a counter")
	c.Add(2, "mode", "remote")
	c.Add(1, "mode", "interp")
	h := r.Histogram("mm_hist", "a histogram", []float64{1, 10})
	h.Observe(0.5, "k", `va"l`)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP aa_counter a counter\n# TYPE aa_counter counter\n",
		`aa_counter{mode="interp"} 1`,
		`aa_counter{mode="remote"} 2`,
		"# TYPE mm_hist histogram",
		`mm_hist_bucket{k="va\"l",le="1"} 1`,
		`mm_hist_bucket{k="va\"l",le="+Inf"} 1`,
		`mm_hist_sum{k="va\"l"} 0.5`,
		`mm_hist_count{k="va\"l"} 1`,
		"# TYPE zz_gauge gauge\nzz_gauge 3.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, out)
		}
	}
	// Metrics render sorted by name; series sorted by label key.
	if strings.Index(out, "aa_counter") > strings.Index(out, "mm_hist") ||
		strings.Index(out, "mm_hist") > strings.Index(out, "zz_gauge") {
		t.Error("metrics not in name order")
	}
	if strings.Index(out, `mode="interp"`) > strings.Index(out, `mode="remote"`) {
		t.Error("series not in label order")
	}
}

// TestSnapshotJSONRoundTrip: the JSON export parses back and keeps
// the histogram's +Inf bucket readable.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help").Add(4, "x", "y")
	r.Histogram("h", "", []float64{1}).Observe(2)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels  map[string]string `json:"labels"`
				Value   float64           `json:"value"`
				Buckets []struct {
					LE    any    `json:"le"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("JSON does not parse: %v\n%s", err, b.String())
	}
	if len(got.Metrics) != 2 || got.Metrics[0].Name != "c" || got.Metrics[1].Name != "h" {
		t.Fatalf("unexpected metrics: %+v", got.Metrics)
	}
	if got.Metrics[0].Series[0].Value != 4 || got.Metrics[0].Series[0].Labels["x"] != "y" {
		t.Errorf("counter series: %+v", got.Metrics[0].Series)
	}
	hb := got.Metrics[1].Series[0].Buckets
	if len(hb) != 2 || hb[1].LE != "+Inf" || hb[1].Count != 1 {
		t.Errorf("histogram buckets: %+v", hb)
	}
}

// TestSnapshotDeterministic: identical recording orders produce
// byte-identical renderings even when the label sets arrive shuffled.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		c := r.Counter("c", "test")
		labels := [][]string{{"m", "a"}, {"m", "b"}, {"m", "c"}}
		for _, i := range order {
			c.Inc(labels[i]...)
		}
		var b bytes.Buffer
		r.WritePrometheus(&b) //nolint:errcheck
		return b.String()
	}
	if a, b := build([]int{0, 1, 2}), build([]int{2, 0, 1}); a != b {
		t.Errorf("renderings diverge:\n%s\nvs\n%s", a, b)
	}
}
