package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"greenvm/internal/core"
	"greenvm/internal/energy"
)

// est builds an Estimate with the given considered costs.
func est(chosen core.Mode, costs map[core.Mode]float64) *core.Estimate {
	e := &core.Estimate{Chosen: chosen}
	for m, c := range costs {
		e.Cost[m] = c
		e.Considered[m] = true
	}
	return e
}

// TestAuditorRegretHandComputed pins the regret definition against a
// hand-computed scenario. Invocation 1: remote predicted 1.0, interp
// 2.0, remote chosen, measured 1.5 → regret 1.5 − 1.0 = 0.5,
// absErr 0.5, relErr 1/3. Invocation 2: interp predicted 2.0 (remote
// off the table), measured 2.0 → regret 0, error 0. Totals: regret
// 0.5, meanAbsErr 0.25, meanRelErr 1/6.
func TestAuditorRegretHandComputed(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")

	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeRemote, map[core.Mode]float64{core.ModeRemote: 1.0, core.ModeInterp: 2.0})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Energy: 1.5})

	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: 2.0})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeInterp, Energy: 2.0})

	r := a.Report()
	if len(r.Methods) != 1 {
		t.Fatalf("%d methods audited, want 1", len(r.Methods))
	}
	got := r.Methods[0]
	if got.Method != "App.work" || got.N != 2 {
		t.Fatalf("row %+v", got)
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("TotalRegret", got.TotalRegret, 0.5)
	approx("MeanAbsErr", got.MeanAbsErr, 0.25)
	approx("MeanRelErr", got.MeanRelErr, (0.5/1.5)/2)
	approx("P95RelErr", got.P95RelErr, 0.5/1.5)
	approx("ActualJ", got.ActualJ, 3.5)
	approx("PredictedJ", got.PredictedJ, 3.0)
	approx("report total", r.TotalRegret(), 0.5)
	if r.Unpaired != 0 {
		t.Errorf("unpaired %d, want 0", r.Unpaired)
	}
}

// TestAuditorUnpairedEstimates: an estimate whose invocation never
// lands (the invocation errored) is reported as unpaired, not matched
// to a later invocation.
func TestAuditorUnpairedEstimates(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")
	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: 1})})
	// No invocation follows; the next estimate replaces it.
	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: 2})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeInterp, Energy: 2})
	r := a.Report()
	if r.Unpaired != 1 {
		t.Errorf("unpaired %d, want 1", r.Unpaired)
	}
	if r.Methods[0].N != 1 {
		t.Errorf("paired %d, want 1", r.Methods[0].N)
	}
	if r.Methods[0].PredictedJ != 2 {
		t.Errorf("paired with prediction %g, want the fresh estimate (2)", r.Methods[0].PredictedJ)
	}
}

// TestAuditorP95: the percentile uses nearest-rank on the sorted
// relative errors.
func TestAuditorP95(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")
	// 20 invocations: 19 perfect, one with relErr 0.5 → p95 picks the
	// 19th of 20 sorted values (still 0), and with two bad ones the
	// 19th is 0.5.
	feed := func(pred, actual float64) {
		a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
			Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: pred})})
		a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeInterp, Energy: energy.Joules(actual)})
	}
	for i := 0; i < 18; i++ {
		feed(1, 1)
	}
	feed(1, 2)
	feed(1, 2)
	got := a.Report().Methods[0].P95RelErr
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P95RelErr = %g, want 0.5", got)
	}
}

// TestRenderAuditReport smoke-checks the table rendering.
func TestRenderAuditReport(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")
	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeRemote, map[core.Mode]float64{core.ModeRemote: 1})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Energy: 1.5})
	var b bytes.Buffer
	RenderAuditReport(&b, "title", a.Report())
	out := b.String()
	for _, want := range []string{"title", "App.work", "regret", "total regret 0.5 J"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
