package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"greenvm/internal/core"
	"greenvm/internal/energy"
)

// est builds an Estimate with the given considered costs.
func est(chosen core.Mode, costs map[core.Mode]float64) *core.Estimate {
	e := &core.Estimate{Chosen: chosen}
	for m, c := range costs {
		e.Cost[m] = c
		e.Considered[m] = true
	}
	return e
}

// TestAuditorRegretHandComputed pins the regret definition against a
// hand-computed scenario. Invocation 1: remote predicted 1.0, interp
// 2.0, remote chosen, measured 1.5 → regret 1.5 − 1.0 = 0.5,
// absErr 0.5, relErr 1/3. Invocation 2: interp predicted 2.0 (remote
// off the table), measured 2.0 → regret 0, error 0. Totals: regret
// 0.5, meanAbsErr 0.25, meanRelErr 1/6.
func TestAuditorRegretHandComputed(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")

	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeRemote, map[core.Mode]float64{core.ModeRemote: 1.0, core.ModeInterp: 2.0})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Energy: 1.5})

	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: 2.0})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeInterp, Energy: 2.0})

	r := a.Report()
	if len(r.Methods) != 1 {
		t.Fatalf("%d methods audited, want 1", len(r.Methods))
	}
	got := r.Methods[0]
	if got.Method != "App.work" || got.N != 2 {
		t.Fatalf("row %+v", got)
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("TotalRegret", got.TotalRegret, 0.5)
	approx("MeanAbsErr", got.MeanAbsErr, 0.25)
	approx("MeanRelErr", got.MeanRelErr, (0.5/1.5)/2)
	approx("P95RelErr", got.P95RelErr, 0.5/1.5)
	approx("ActualJ", got.ActualJ, 3.5)
	approx("PredictedJ", got.PredictedJ, 3.0)
	approx("report total", r.TotalRegret(), 0.5)
	if r.Unpaired != 0 {
		t.Errorf("unpaired %d, want 0", r.Unpaired)
	}
}

// TestAuditorUnpairedEstimates: an estimate whose invocation never
// lands (the invocation errored) is reported as unpaired, not matched
// to a later invocation.
func TestAuditorUnpairedEstimates(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")
	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: 1})})
	// No invocation follows; the next estimate replaces it.
	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: 2})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeInterp, Energy: 2})
	r := a.Report()
	if r.Unpaired != 1 {
		t.Errorf("unpaired %d, want 1", r.Unpaired)
	}
	if r.Methods[0].N != 1 {
		t.Errorf("paired %d, want 1", r.Methods[0].N)
	}
	if r.Methods[0].PredictedJ != 2 {
		t.Errorf("paired with prediction %g, want the fresh estimate (2)", r.Methods[0].PredictedJ)
	}
}

// TestAuditorP95: P95RelErr is now backed by a streaming P² sketch —
// exact for the first five paired invocations, and within a small
// tolerance of the exact nearest-rank percentile after.
func TestAuditorP95(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")
	feed := func(pred, actual float64) {
		a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
			Est: est(core.ModeInterp, map[core.Mode]float64{core.ModeInterp: pred})})
		a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeInterp, Energy: energy.Joules(actual)})
	}

	// ≤5 samples: exact. relErrs {0, 0, 1/2, 1/3, 3/4} → p95 nearest
	// rank of 5 is the max, 3/4.
	feed(1, 1)
	feed(2, 2)
	feed(1, 2)   // relErr 1/2
	feed(2, 3)   // relErr 1/3
	feed(0.5, 2) // relErr 3/4
	if got := a.Report().Methods[0].P95RelErr; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P95RelErr after 5 samples = %g, want exact 0.75", got)
	}

	// Many samples: the sketch must track the exact nearest-rank p95 of
	// the same stream within 10% relative.
	relErrs := []float64{0, 0, 0.5, 1.0 / 3, 0.75}
	for i := 0; i < 200; i++ {
		actual := 1 + float64(i%7)/10 // 1.0 .. 1.6
		pred := actual * (1 - float64(i%13)/20)
		feed(pred, actual)
		relErrs = append(relErrs, (actual-pred)/actual)
	}
	got := a.Report().Methods[0].P95RelErr
	exact := ExactQuantile(relErrs, 0.95)
	if math.Abs(got-exact) > 0.1*exact {
		t.Errorf("P95RelErr = %g, exact nearest-rank %g (off by more than 10%%)", got, exact)
	}
}

// TestRenderAuditReport smoke-checks the table rendering.
func TestRenderAuditReport(t *testing.T) {
	a := NewAuditor()
	m := testMethod("work")
	a.Emit(core.Event{Kind: core.EvEstimate, Method: m,
		Est: est(core.ModeRemote, map[core.Mode]float64{core.ModeRemote: 1})})
	a.Emit(core.Event{Kind: core.EvInvoke, Method: m, Mode: core.ModeRemote, Energy: 1.5})
	var b bytes.Buffer
	RenderAuditReport(&b, "title", a.Report())
	out := b.String()
	for _, want := range []string{"title", "App.work", "regret", "total regret 0.5 J"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
