package core

import (
	"fmt"

	"greenvm/internal/energy"
)

// Link circuit breaker: under a burst outage every remote attempt
// costs a full timeout listen before the §3.2 fallback kicks in, so a
// client that keeps trying pays the worst case once per invocation.
// The breaker turns K consecutive losses into a Down verdict that the
// policies consult before pricing remote options at all; after a
// cooldown of virtual time a small half-open probe (charged to the
// radio account like any other traffic) re-opens the link. State
// transitions surface as EvLinkDown/EvLinkUp events.

// BreakerState is the circuit breaker's state.
type BreakerState int

// The breaker states.
const (
	// BreakerClosed: the link is believed up; remote options are
	// considered normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the link is believed down; remote options are off
	// the table until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next remote
	// consideration sends a probe to test the link.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a link circuit breaker driven by the client's virtual
// clock. It is a pure state machine: the Client records successes and
// failures and runs the half-open probes.
type Breaker struct {
	// Threshold is the number of consecutive losses that open the
	// breaker.
	Threshold int
	// Cooldown is how long (virtual time) the breaker stays open
	// before a half-open probe; it doubles after every failed probe,
	// capped at MaxCooldown.
	Cooldown    energy.Seconds
	MaxCooldown energy.Seconds
	// ProbeBytes is the payload size of the half-open probe message.
	ProbeBytes int

	state       BreakerState
	consecutive int
	reopenAt    energy.Seconds
	curCooldown energy.Seconds
}

// NewBreaker returns a breaker with defaults: 3 consecutive losses
// open it, 0.5 s initial cooldown doubling to at most 8 s, 16-byte
// probes.
func NewBreaker() *Breaker {
	return &Breaker{
		Threshold:   3,
		Cooldown:    0.5,
		MaxCooldown: 8,
		ProbeBytes:  16,
	}
}

// cloneConfig returns a fresh Closed breaker with the same tuning
// (threshold, cooldowns, probe size) and no accumulated state — the
// per-backend breakers a pooled client derives from its link breaker
// prototype.
func (b *Breaker) cloneConfig() *Breaker {
	return &Breaker{
		Threshold:   b.Threshold,
		Cooldown:    b.Cooldown,
		MaxCooldown: b.MaxCooldown,
		ProbeBytes:  b.ProbeBytes,
	}
}

// State returns the current state without advancing it.
func (b *Breaker) State() BreakerState { return b.state }

// ConsecutiveLosses reports the current loss run length.
func (b *Breaker) ConsecutiveLosses() int { return b.consecutive }

// Next advances Open to HalfOpen once the cooldown has elapsed at the
// given virtual time and returns the resulting state.
func (b *Breaker) Next(now energy.Seconds) BreakerState {
	if b.state == BreakerOpen && now >= b.reopenAt {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// RecordFailure notes one lost remote exchange at the given time and
// reports whether this failure opened the breaker (the Closed/HalfOpen
// -> Open transition, for event emission).
func (b *Breaker) RecordFailure(now energy.Seconds) bool {
	b.consecutive++
	switch b.state {
	case BreakerClosed:
		if b.consecutive >= b.Threshold {
			b.trip(now, b.Cooldown)
			return true
		}
	case BreakerHalfOpen:
		// Failed probe: back off harder.
		next := b.curCooldown * 2
		if next > b.MaxCooldown {
			next = b.MaxCooldown
		}
		b.trip(now, next)
		return true
	}
	return false
}

func (b *Breaker) trip(now energy.Seconds, cooldown energy.Seconds) {
	if cooldown <= 0 {
		cooldown = b.Cooldown
	}
	b.state = BreakerOpen
	b.curCooldown = cooldown
	b.reopenAt = now + cooldown
}

// RecordSuccess notes one successful remote exchange and reports
// whether it closed the breaker (the HalfOpen -> Closed transition,
// for event emission).
func (b *Breaker) RecordSuccess() bool {
	b.consecutive = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.curCooldown = 0
		return true
	}
	return false
}
