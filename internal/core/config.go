package core

import (
	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// ClientConfig carries the required identity of a Client: who it is,
// what it runs, whom it talks to, over what channel, deciding how.
// Everything optional — fault models, extra sinks, breaker and retry
// tuning — is applied through functional options, so call sites name
// what they change instead of threading positional arguments.
type ClientConfig struct {
	// ID identifies the client to the server (the mobile status table
	// and the session layer key on it).
	ID string
	// Prog is the application program, shared with the server.
	Prog *bytecode.Program
	// Server is the remote end: an in-process Server, a Session, or a
	// TCP RemoteServer.
	Server Remote
	// Channel is the wireless channel process; nil means a fixed
	// best-condition channel.
	Channel radio.Channel
	// Strategy selects the execution/compilation policy (the zero
	// value is StrategyR, matching the Strategy constants).
	Strategy Strategy
	// Seed seeds the client's RNG stream (channel tracking, fault
	// draws).
	Seed uint64
	// Shared, when set, supplies population-wide immutable state (the
	// program and the handset energy model); Prog may be left nil and
	// defaults to Shared.Prog. Register the target afterwards with
	// Client.RegisterShared.
	Shared *FleetProgram
}

// Option tweaks a Client at construction time, after the required
// configuration is applied.
type Option func(*Client)

// New builds a client from the config and applies the options in
// order. The model is the paper's microSPARC-IIep handset; swap fields
// on the returned client for anything an option does not cover.
func New(cfg ClientConfig, opts ...Option) *Client {
	model := energy.MicroSPARCIIep()
	if cfg.Shared != nil {
		model = cfg.Shared.Model
		if cfg.Prog == nil {
			cfg.Prog = cfg.Shared.Prog
		}
	}
	v := vm.New(cfg.Prog, model)
	r := rng.New(cfg.Seed)
	ch := cfg.Channel
	if ch == nil {
		ch = radio.Fixed{Cls: radio.Class4}
	}
	c := &Client{
		ID:              cfg.ID,
		Prog:            cfg.Prog,
		VM:              v,
		Model:           model,
		Link:            radio.NewLink(radio.WCDMA(), ch, v.Acct, r),
		Server:          cfg.Server,
		Strategy:        cfg.Strategy,
		Policy:          NewPolicy(cfg.Strategy),
		Events:          &Sinks{},
		Stats:           &Stats{},
		Timeout:         0.05,
		MaxRetries:      2,
		RetryBackoff:    0.05,
		Breaker:         NewBreaker(),
		BackendBreakers: true,
		targets:         map[*bytecode.Method]*Target{},
		profiles:        map[*bytecode.Method]*Profile{},
		plans:           map[*bytecode.Method][]*bytecode.Method{},
		inFlight:        map[*bytecode.Method]bool{},
		r:               r,
	}
	c.Events.Attach(c.Stats)
	c.Exec = newExecutor(c)
	v.Hook = c.hook
	v.Dispatch = vm.DispatchFunc(c.Exec.dispatch)
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

// WithFaultModel installs a link fault model (burst outages, response
// losses, stalls; see internal/radio).
func WithFaultModel(f radio.FaultModel) Option {
	return func(c *Client) { c.Link.Fault = f }
}

// WithLossProb sets the legacy i.i.d. per-exchange loss probability
// (ignored when a fault model is installed).
func WithLossProb(p float64) Option {
	return func(c *Client) { c.Link.LossProb = p }
}

// WithSink attaches an additional event sink (metrics, auditor,
// tracer, trace).
func WithSink(s EventSink) Option {
	return func(c *Client) {
		if s != nil {
			c.Events.Attach(s)
		}
	}
}

// WithBreaker replaces the link circuit breaker (also the prototype
// the per-backend breakers clone their tuning from); nil disables all
// breakers.
func WithBreaker(b *Breaker) Option {
	return func(c *Client) { c.Breaker = b }
}

// WithBackendBreakers toggles per-backend circuit breakers (on by
// default). Off, a pooled client falls back to PR 6 behaviour: one
// link-scoped breaker, so losses on any backend count against the
// whole pool.
func WithBackendBreakers(on bool) Option {
	return func(c *Client) { c.BackendBreakers = on }
}

// WithTimeout sets the §3.2 loss-detection listen window.
func WithTimeout(d energy.Seconds) Option {
	return func(c *Client) { c.Timeout = d }
}

// WithRetries shapes the remote retry loop: at most max re-attempts
// per invocation, starting from the given backoff listen window
// (doubling per retry).
func WithRetries(max int, backoff energy.Seconds) Option {
	return func(c *Client) {
		c.MaxRetries = max
		c.RetryBackoff = backoff
	}
}

// WithMemo attaches a memo so repeated identical executions replay
// their recorded deltas; the driver must keep MemoInputKey current.
func WithMemo(m *Memo) Option {
	return func(c *Client) { c.Memo = m }
}

// WithPolicy replaces the strategy-derived policy with a custom one.
func WithPolicy(p Policy) Option {
	return func(c *Client) { c.Policy = p }
}
