package core

import (
	"greenvm/internal/bytecode"
	"greenvm/internal/jit"
)

// Code-cache management. The paper notes that compilation "requires
// additional memory footprint for storing the compiled code" and that
// "mobile systems with larger memories are beginning to emerge that
// make such tradeoffs useful". CodeCacheBytes bounds the native code
// a client keeps linked at once (0 = unlimited); exceeding it evicts
// the least-recently-used body, whose next use must pay compilation
// (or download) again.

type cacheKey struct {
	m  *bytecode.Method
	lv jit.Level
}

// noteLinked records that a body became linked, evicting LRU bodies
// if the cache is over budget. It must be called after avail is set.
func (c *Client) noteLinked(mm *bytecode.Method, lv jit.Level) {
	key := cacheKey{mm, lv}
	c.lruTick++
	if c.lruStamp == nil {
		c.lruStamp = map[cacheKey]uint64{}
	}
	c.lruStamp[key] = c.lruTick
	if c.CodeCacheBytes <= 0 {
		return
	}
	for c.linkedBytes() > c.CodeCacheBytes {
		victim, ok := c.oldestLinked(key)
		if !ok {
			return // only the newcomer is linked; nothing to evict
		}
		av := c.avail[victim.m]
		av[victim.lv-1] = false
		c.avail[victim.m] = av
		delete(c.lruStamp, victim)
		c.Evictions++
	}
}

// linkedBytes sums the sizes of currently linked bodies.
func (c *Client) linkedBytes() int {
	total := 0
	for mm, av := range c.avail {
		for lv := 0; lv < 3; lv++ {
			if av[lv] && c.bodies[mm][lv] != nil {
				total += c.bodies[mm][lv].SizeBytes()
			}
		}
	}
	return total
}

// oldestLinked returns the least-recently-linked body other than keep.
func (c *Client) oldestLinked(keep cacheKey) (cacheKey, bool) {
	var victim cacheKey
	var best uint64
	found := false
	for mm, av := range c.avail {
		for lv := 0; lv < 3; lv++ {
			if !av[lv] {
				continue
			}
			k := cacheKey{mm, jit.Level(lv + 1)}
			if k == keep {
				continue
			}
			stamp := c.lruStamp[k]
			if !found || stamp < best {
				victim, best, found = k, stamp, true
			}
		}
	}
	return victim, found
}
