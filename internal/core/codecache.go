package core

import (
	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
)

// CacheManager owns the client's compiled-code state. The paper notes
// that compilation "requires additional memory footprint for storing
// the compiled code" and that "mobile systems with larger memories
// are beginning to emerge that make such tradeoffs useful".
//
// Two lifetimes are tracked separately: bodies caches compiled
// artifacts for the whole client lifetime (the simulator never
// re-runs the JIT for a body it has seen), while linked marks which
// bodies are linked into the *current application execution* (a fresh
// execution reloads classes, so compilation energy is paid again even
// though the artifact is reused). MaxBytes bounds the native code
// linked at once (0 = unlimited); exceeding it evicts the
// least-recently-used body, whose next use must pay compilation (or
// download) again.
type CacheManager struct {
	// MaxBytes bounds the native code kept linked at once
	// (0 = unlimited).
	MaxBytes int

	bodies map[*bytecode.Method][jit.NumLevels]*isa.Code
	linked map[*bytecode.Method][jit.NumLevels]bool
	// deltas replays the recorded compile charges on re-compilation.
	deltas map[*bytecode.Method][jit.NumLevels]energy.Delta

	lruStamp map[cacheKey]uint64
	lruTick  uint64

	events *Sinks
}

type cacheKey struct {
	m  *bytecode.Method
	lv jit.Level
}

// NewCacheManager returns an empty cache emitting eviction events to
// the sinks.
func NewCacheManager(events *Sinks) *CacheManager {
	return &CacheManager{
		bodies:   map[*bytecode.Method][jit.NumLevels]*isa.Code{},
		linked:   map[*bytecode.Method][jit.NumLevels]bool{},
		deltas:   map[*bytecode.Method][jit.NumLevels]energy.Delta{},
		lruStamp: map[cacheKey]uint64{},
		events:   events,
	}
}

// Body returns the cached compiled artifact of m at the level, or nil.
func (cm *CacheManager) Body(m *bytecode.Method, lv jit.Level) *isa.Code {
	return cm.bodies[m][lv-1]
}

// Install stores a compiled artifact for the client's lifetime.
func (cm *CacheManager) Install(m *bytecode.Method, lv jit.Level, code *isa.Code) {
	b := cm.bodies[m]
	b[lv-1] = code
	cm.bodies[m] = b
}

// Linked reports whether m's body is linked into the current
// execution at the level.
func (cm *CacheManager) Linked(m *bytecode.Method, lv jit.Level) bool {
	return cm.linked[m][lv-1]
}

// Delta returns the recorded compile charge of m at the level.
func (cm *CacheManager) Delta(m *bytecode.Method, lv jit.Level) (energy.Delta, bool) {
	if cm.bodies[m][lv-1] == nil {
		return energy.Delta{}, false
	}
	return cm.deltas[m][lv-1], true
}

// RecordDelta stores the compile charge to replay on re-compilation.
func (cm *CacheManager) RecordDelta(m *bytecode.Method, lv jit.Level, d energy.Delta) {
	ds := cm.deltas[m]
	ds[lv-1] = d
	cm.deltas[m] = ds
}

// Link marks m's body linked at the level, evicting LRU bodies if the
// cache is over budget.
func (cm *CacheManager) Link(m *bytecode.Method, lv jit.Level) {
	av := cm.linked[m]
	av[lv-1] = true
	cm.linked[m] = av

	key := cacheKey{m, lv}
	cm.lruTick++
	cm.lruStamp[key] = cm.lruTick
	if cm.MaxBytes <= 0 {
		return
	}
	for cm.LinkedBytes() > cm.MaxBytes {
		victim, ok := cm.oldestLinked(key)
		if !ok {
			return // only the newcomer is linked; nothing to evict
		}
		vav := cm.linked[victim.m]
		vav[victim.lv-1] = false
		cm.linked[victim.m] = vav
		delete(cm.lruStamp, victim)
		cm.events.Emit(Event{Kind: EvEvict, Method: victim.m, Level: victim.lv})
	}
}

// UnlinkAll drops every link (an application-execution boundary: the
// fresh classloader has no native code). Cached artifacts and their
// recorded compile charges survive.
func (cm *CacheManager) UnlinkAll() {
	cm.linked = map[*bytecode.Method][jit.NumLevels]bool{}
	cm.lruStamp = map[cacheKey]uint64{}
}

// LinkedBytes sums the sizes of currently linked bodies.
func (cm *CacheManager) LinkedBytes() int {
	total := 0
	for mm, av := range cm.linked {
		for lv := 0; lv < jit.NumLevels; lv++ {
			if av[lv] && cm.bodies[mm][lv] != nil {
				total += cm.bodies[mm][lv].SizeBytes()
			}
		}
	}
	return total
}

// oldestLinked returns the least-recently-linked body other than keep.
func (cm *CacheManager) oldestLinked(keep cacheKey) (cacheKey, bool) {
	var victim cacheKey
	var best uint64
	found := false
	for mm, av := range cm.linked {
		for lv := 0; lv < jit.NumLevels; lv++ {
			if !av[lv] {
				continue
			}
			k := cacheKey{mm, jit.Level(lv + 1)}
			if k == keep {
				continue
			}
			stamp := cm.lruStamp[k]
			if !found || stamp < best {
				victim, best, found = k, stamp, true
			}
		}
	}
	return victim, found
}
