package core

import (
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Client is a Java-enabled mobile device: an MJVM plus a wireless link
// to a Server, executing under one of the paper's seven strategies.
// All energy consumed on behalf of the client (computation,
// compilation, communication, power-down leakage) accumulates in
// VM.Acct; Clock tracks virtual wall time.
type Client struct {
	ID       string
	Prog     *bytecode.Program
	VM       *vm.VM
	Model    *energy.CPUModel
	Link     *radio.Link
	Server   Remote
	Strategy Strategy

	// U1 and U2 weight the EWMA prediction of future size parameter
	// and communication power (paper: both 0.7).
	U1, U2 float64
	// Timeout is the listen window charged before declaring the
	// connection lost and falling back to local execution.
	Timeout energy.Seconds

	// Clock is the client's virtual wall time.
	Clock energy.Seconds

	targets  map[*bytecode.Method]*Target
	profiles map[*bytecode.Method]*Profile
	plans    map[*bytecode.Method][]*bytecode.Method
	state    map[*bytecode.Method]*adaptState
	inFlight map[*bytecode.Method]bool

	// Compiled-code state. bodies caches compiled artifacts for the
	// whole client lifetime; avail marks which are linked into the
	// *current application execution* (a fresh execution reloads
	// classes, so compilation energy is paid again even though the
	// simulator reuses the artifact). compileDeltas replays the
	// recorded compile charges on re-compilation.
	bodies        map[*bytecode.Method][3]*isa.Code
	avail         map[*bytecode.Method][3]bool
	compileDeltas map[*bytecode.Method][3]energy.Delta

	levelStack     []jit.Level // 0 = interpret
	compilerLoaded bool
	lastAcctTime   energy.Seconds
	r              *rng.RNG

	// CodeCacheBytes bounds the native code kept linked at once
	// (0 = unlimited); exceeding it evicts least-recently-used bodies,
	// which must be re-compiled or re-downloaded on next use.
	CodeCacheBytes int
	Evictions      int
	lruStamp       map[cacheKey]uint64
	lruTick        uint64

	// Memo, when set, replays previously simulated executions; the
	// driver must set MemoInputKey to identify the current input and
	// must not consume results of replayed invocations.
	Memo         *Memo
	MemoInputKey uint64
	MemoHits     int

	// Counters for experiments.
	LocalCompiles  int
	RemoteCompiles int
	Fallbacks      int
	ModeCounts     [5]int
	Trace          []InvokeRecord
	TraceEnabled   bool
}

// InvokeRecord describes one potential-method invocation.
type InvokeRecord struct {
	Method   string
	Mode     Mode
	Size     float64
	Energy   energy.Joules
	Time     energy.Seconds
	FellBack bool
}

// adaptState is the per-method state of the adaptive strategies.
type adaptState struct {
	k    int
	sBar float64
	pBar float64 // predicted transmit-chain power (W)
}

// NewClient builds a client executing prog under the given strategy,
// talking to server over a channel process.
func NewClient(id string, prog *bytecode.Program, server Remote, ch radio.Channel, strategy Strategy, seed uint64) *Client {
	model := energy.MicroSPARCIIep()
	v := vm.New(prog, model)
	r := rng.New(seed)
	c := &Client{
		ID:            id,
		Prog:          prog,
		VM:            v,
		Model:         model,
		Link:          radio.NewLink(radio.WCDMA(), ch, v.Acct, r),
		Server:        server,
		Strategy:      strategy,
		U1:            0.7,
		U2:            0.7,
		Timeout:       0.05,
		targets:       map[*bytecode.Method]*Target{},
		profiles:      map[*bytecode.Method]*Profile{},
		plans:         map[*bytecode.Method][]*bytecode.Method{},
		bodies:        map[*bytecode.Method][3]*isa.Code{},
		avail:         map[*bytecode.Method][3]bool{},
		compileDeltas: map[*bytecode.Method][3]energy.Delta{},
		state:         map[*bytecode.Method]*adaptState{},
		inFlight:      map[*bytecode.Method]bool{},
		r:             r,
	}
	v.Hook = c.hook
	v.Dispatch = vm.DispatchFunc(c.dispatch)
	return c
}

// Register attaches a target and its profile to the client. Methods
// without a registered target always run as the ambient mode dictates.
func (c *Client) Register(t *Target, prof *Profile) error {
	m := c.Prog.FindMethod(t.Class, t.Method)
	if m == nil {
		return fmt.Errorf("core: no method %s", t.QName())
	}
	if !m.Potential {
		return fmt.Errorf("core: %s is not marked potential", t.QName())
	}
	c.targets[m] = t
	c.profiles[m] = prof
	c.plans[m] = compilePlan(c.Prog, m)
	return nil
}

// Energy returns the total energy the client has consumed.
func (c *Client) Energy() energy.Joules { return c.VM.Acct.Total() }

// currentLevel is the ambient execution level (0 = interpret).
func (c *Client) currentLevel() jit.Level {
	if len(c.levelStack) == 0 {
		return 0
	}
	return c.levelStack[len(c.levelStack)-1]
}

// dispatch picks the body for any method executed locally: the one
// compiled at the ambient level, when available.
func (c *Client) dispatch(m *bytecode.Method) *isa.Code {
	lv := c.currentLevel()
	if lv == 0 || !c.avail[m][lv-1] {
		return nil
	}
	return c.bodies[m][lv-1]
}

// NewExecution marks an application-execution boundary: classes are
// reloaded, so compiled bodies must be re-linked (their energy is
// charged again) and the compiler classes re-initialized. Adaptive
// invocation counts reset with the fresh execution; the EWMA channel
// and size predictions persist (they are device-level state, like the
// pilot-signal tracker).
func (c *Client) NewExecution() {
	c.avail = map[*bytecode.Method][3]bool{}
	c.compilerLoaded = false
	for _, st := range c.state {
		st.k = 0
	}
	c.VM.Hier.Flush()
}

// hook intercepts invocations of potential methods (the paper's
// implicit helper-method call).
func (c *Client) hook(m *bytecode.Method, args []vm.Slot) (vm.Slot, bool, error) {
	t := c.targets[m]
	if t == nil || c.inFlight[m] {
		return vm.Slot{}, false, nil
	}
	size, err := t.SizeOf(c.VM, args)
	if err != nil {
		return vm.Slot{}, false, nil
	}
	res, err := c.execute(m, t, size, args)
	return res, true, err
}

// syncClock folds CPU time accumulated in the account into the wall
// clock.
func (c *Client) syncClock() {
	t := c.VM.Acct.Time()
	c.Clock += t - c.lastAcctTime
	c.lastAcctTime = t
}

// Invoke runs a registered potential method with the given arguments
// (already resident in the client VM's heap).
func (c *Client) Invoke(class, method string, args []vm.Slot) (vm.Slot, error) {
	m := c.Prog.FindMethod(class, method)
	if m == nil {
		return vm.Slot{}, fmt.Errorf("core: no method %s.%s", class, method)
	}
	return c.VM.Invoke(m, args)
}

// execute decides where and how to run m and does it.
func (c *Client) execute(m *bytecode.Method, t *Target, size float64, args []vm.Slot) (vm.Slot, error) {
	c.inFlight[m] = true
	defer delete(c.inFlight, m)

	c.syncClock()
	eBefore := c.VM.Acct.Total()
	tBefore := c.Clock

	mode := c.chooseMode(m, size)
	res, fellBack, err := c.runMode(mode, m, t, size, args)
	if err != nil {
		return vm.Slot{}, err
	}

	c.syncClock()
	c.ModeCounts[mode]++
	if fellBack {
		c.Fallbacks++
	}
	if c.TraceEnabled {
		c.Trace = append(c.Trace, InvokeRecord{
			Method: m.QName(), Mode: mode, Size: size,
			Energy:   c.VM.Acct.Total() - eBefore,
			Time:     c.Clock - tBefore,
			FellBack: fellBack,
		})
	}
	return res, nil
}

// runMode executes m in the given mode, falling back to the best
// local mode on connection loss.
func (c *Client) runMode(mode Mode, m *bytecode.Method, t *Target, size float64, args []vm.Slot) (vm.Slot, bool, error) {
	if mode == ModeRemote {
		res, err := c.remoteExecute(m, t, size, args)
		if err == nil {
			return res, false, nil
		}
		if err != radio.ErrConnectionLost {
			return vm.Slot{}, false, err
		}
		// Paper §3.2: when the result is not obtained within the time
		// threshold, connectivity is considered lost and execution
		// begins locally.
		c.Link.Listen(c.Timeout)
		c.Clock += c.Timeout
		local := c.bestLocalMode(m, size)
		res, _, err = c.runMode(local, m, t, size, args)
		return res, true, err
	}
	if mode.IsCompiled() {
		if err := c.ensurePlanCompiled(m, mode.Level()); err != nil {
			return vm.Slot{}, false, err
		}
	}
	key := memoKey{method: m.QName(), mode: mode, inputKey: c.MemoInputKey}
	if c.Memo != nil {
		if d, ok := c.Memo.local[key]; ok {
			c.VM.Acct.Apply(d)
			c.MemoHits++
			return vm.Slot{}, false, nil
		}
	}
	snap := c.VM.Acct.Snapshot()
	c.levelStack = append(c.levelStack, levelOf(mode))
	res, err := c.VM.Invoke(m, args)
	c.levelStack = c.levelStack[:len(c.levelStack)-1]
	if c.Memo != nil && err == nil {
		c.Memo.local[key] = c.VM.Acct.DeltaSince(snap)
	}
	return res, false, err
}

func levelOf(mode Mode) jit.Level {
	if mode.IsCompiled() {
		return mode.Level()
	}
	return 0
}

// chooseMode implements the strategies. Static strategies fix the
// mode; AL and AA evaluate the paper's amortized energy estimates.
func (c *Client) chooseMode(m *bytecode.Method, size float64) Mode {
	if !c.Strategy.Adaptive() {
		return c.Strategy.StaticMode()
	}
	prof := c.profiles[m]
	st := c.state[m]
	if st == nil {
		st = &adaptState{}
		c.state[m] = st
	}
	// EWMA prediction of future size and communication power
	// (sk1 = u1*sk-1 + (1-u1)*sk, pk likewise; u1 = u2 = 0.7).
	pNow := float64(c.Link.Chip.TxPower(c.Link.EstimateClass()))
	if st.k == 0 {
		st.sBar, st.pBar = size, pNow
	} else {
		st.sBar = c.U1*st.sBar + (1-c.U1)*size
		st.pBar = c.U2*st.pBar + (1-c.U2)*pNow
	}
	st.k++
	k := float64(st.k)

	// Decision-making overhead (the paper notes it is small).
	c.VM.Acct.AddInstr(energy.ALUSimple, 400)
	c.VM.Acct.AddInstr(energy.Load, 80)

	best, bestE := ModeInterp, k*prof.EnergyOf[ModeInterp].Eval(st.sBar)
	if eR := k * float64(c.remoteEnergyEstimate(prof, st.sBar, st.pBar)); eR < bestE {
		best, bestE = ModeRemote, eR
	}
	for mode := ModeL1; mode <= ModeL3; mode++ {
		e := k * prof.EnergyOf[mode].Eval(st.sBar)
		e += float64(c.compileCostEstimate(m, prof, mode.Level()))
		if e < bestE {
			best, bestE = mode, e
		}
	}
	return best
}

// bestLocalMode picks the cheapest local mode for the fallback path.
func (c *Client) bestLocalMode(m *bytecode.Method, size float64) Mode {
	prof := c.profiles[m]
	if prof == nil {
		return ModeInterp
	}
	best, bestE := ModeInterp, prof.EnergyOf[ModeInterp].Eval(size)
	for mode := ModeL1; mode <= ModeL3; mode++ {
		e := prof.EnergyOf[mode].Eval(size) + float64(c.compileCostEstimate(m, prof, mode.Level()))
		if e < bestE {
			best, bestE = mode, e
		}
	}
	return best
}

// planCompiledAt reports whether the whole plan is linked at the
// level in the current execution.
func (c *Client) planCompiledAt(m *bytecode.Method, lv jit.Level) bool {
	for _, mm := range c.plans[m] {
		if !c.avail[mm][lv-1] {
			return false
		}
	}
	return true
}

// compileCostEstimate returns the estimated energy to make the plan
// executable at the level: zero when already compiled; otherwise the
// profiled local compile cost (Eo'), or for AA the cheaper of local
// compilation and downloading the pre-compiled bodies at the current
// channel estimate.
func (c *Client) compileCostEstimate(m *bytecode.Method, prof *Profile, lv jit.Level) energy.Joules {
	if c.planCompiledAt(m, lv) {
		return 0
	}
	local := prof.CompileEnergy[lv-1]
	if !c.compilerLoaded {
		local += jit.CompilerLoadEnergy(c.Model)
	}
	if c.Strategy != StrategyAA {
		return local
	}
	remote := c.remoteCompileEstimate(prof, lv)
	if remote < local {
		return remote
	}
	return local
}

// remoteCompileEstimate prices downloading the plan's pre-compiled
// bodies at the current channel estimate.
func (c *Client) remoteCompileEstimate(prof *Profile, lv jit.Level) energy.Joules {
	cls := c.Link.EstimateClass()
	req := 64 // method-name request bytes
	e := c.Link.Chip.TxEnergy(req, cls)
	e += c.Link.Chip.RxEnergy(prof.PlanCodeBytes[lv-1], cls)
	return e
}

// remoteEnergyEstimate is E”(m, s, p): transmit the serialized
// arguments at predicted power p, sleep (leakage) while the server
// computes, and receive the result.
func (c *Client) remoteEnergyEstimate(prof *Profile, s, pWatts float64) energy.Joules {
	chip := c.Link.Chip
	txBytes := prof.TxBytes.Eval(s)
	rxBytes := prof.RxBytes.Eval(s)
	if txBytes < 0 {
		txBytes = 0
	}
	if rxBytes < 0 {
		rxBytes = 0
	}
	// Infer the channel class from the predicted transmit power: air
	// time scales with the class's effective rate.
	cls := classForPower(chip, pWatts)
	tTx := float64(chip.AirTime(int(txBytes), cls))
	tRx := float64(chip.AirTime(int(rxBytes), cls))
	e := energy.Joules(pWatts * tTx)
	e += energy.Energy(chip.RxPower(), energy.Seconds(tRx))
	e += energy.Energy(c.Model.LeakagePower(), energy.Seconds(prof.ServerTime.Eval(s)))
	// Serialization/deserialization CPU work.
	words := (txBytes + rxBytes) / 4
	e += energy.Joules(words) * (c.Model.PerInstr[energy.Load] + c.Model.PerInstr[energy.Store] +
		2*c.Model.PerInstr[energy.ALUSimple])
	return e
}

// remoteExecute offloads one invocation (Fig 4): serialize arguments,
// transmit, power down for the estimated server time, wake, receive
// and deserialize the result.
func (c *Client) remoteExecute(m *bytecode.Method, t *Target, size float64, args []vm.Slot) (vm.Slot, error) {
	prof := c.profiles[m]
	key := memoKey{method: m.QName(), mode: ModeRemote, inputKey: c.MemoInputKey}
	if c.Memo != nil {
		if ent, ok := c.Memo.remote[key]; ok {
			c.MemoHits++
			return c.replayRemote(prof, size, ent)
		}
	}
	argBytes, err := c.VM.Heap.EncodeArgs(m, args)
	if err != nil {
		return vm.Slot{}, err
	}
	c.VM.ChargeSerialization(len(argBytes))
	c.syncClock()

	tTx, err := c.Link.Send(len(argBytes))
	if err != nil {
		return vm.Slot{}, err
	}
	c.Clock += tTx

	estServ := energy.Seconds(prof.ServerTime.Eval(size))
	if estServ < 0 {
		estServ = 0
	}
	reqTime := c.Clock
	resBytes, servTime, _, err := c.Server.Execute(c.ID, t.Class, t.Method, argBytes, reqTime, reqTime+estServ)
	if err != nil {
		return vm.Slot{}, err
	}

	// Power-down while the server computes: the processor, memory and
	// receiver sleep for the estimated duration, drawing only leakage.
	sleep := estServ
	if servTime < sleep {
		// Server finished early; the result waits in the status table
		// until the client wakes (it still sleeps the full estimate).
	} else if servTime > sleep {
		// Early re-activation penalty: the client wakes before the
		// result is ready and listens with the receiver up.
		c.Link.Listen(servTime - sleep)
	}
	c.VM.Acct.AddLeakage(sleep)
	elapsed := sleep
	if servTime > elapsed {
		elapsed = servTime
	}
	c.Clock += elapsed

	tRx, err := c.Link.Recv(len(resBytes))
	if err != nil {
		return vm.Slot{}, err
	}
	c.Clock += tRx

	c.VM.ChargeSerialization(len(resBytes))
	deserSnap := c.VM.Acct.Snapshot()
	res, err := c.VM.Heap.DecodeValue(m.Ret.Kind, resBytes)
	if err != nil {
		return vm.Slot{}, err
	}
	if c.Memo != nil {
		c.Memo.remote[key] = remoteEntry{
			txBytes:    len(argBytes),
			rxBytes:    len(resBytes),
			servTime:   servTime,
			deserDelta: c.VM.Acct.DeltaSince(deserSnap),
		}
	}
	c.syncClock()
	return res, nil
}

// replayRemote re-prices a previously executed offload from its
// recorded byte counts and server time; transmit energy reflects the
// channel condition of this run, not the recorded one.
func (c *Client) replayRemote(prof *Profile, size float64, ent remoteEntry) (vm.Slot, error) {
	c.VM.ChargeSerialization(ent.txBytes)
	c.syncClock()
	tTx, err := c.Link.Send(ent.txBytes)
	if err != nil {
		return vm.Slot{}, err
	}
	c.Clock += tTx

	estServ := energy.Seconds(prof.ServerTime.Eval(size))
	if estServ < 0 {
		estServ = 0
	}
	sleep := estServ
	if ent.servTime > sleep {
		c.Link.Listen(ent.servTime - sleep)
	}
	c.VM.Acct.AddLeakage(sleep)
	elapsed := sleep
	if ent.servTime > elapsed {
		elapsed = ent.servTime
	}
	c.Clock += elapsed

	tRx, err := c.Link.Recv(ent.rxBytes)
	if err != nil {
		return vm.Slot{}, err
	}
	c.Clock += tRx
	c.VM.ChargeSerialization(ent.rxBytes)
	c.VM.Acct.Apply(ent.deserDelta)
	c.syncClock()
	return vm.Slot{}, nil
}

// ensurePlanCompiled makes every method of m's plan executable at the
// level, compiling locally or (AA) downloading pre-compiled bodies.
func (c *Client) ensurePlanCompiled(m *bytecode.Method, lv jit.Level) error {
	for _, mm := range c.plans[m] {
		if c.avail[mm][lv-1] {
			continue
		}
		if c.Strategy == StrategyAA && c.shouldDownload(mm, lv) {
			if err := c.downloadBody(mm, lv); err == nil {
				continue
			} else if err != radio.ErrConnectionLost {
				return err
			}
			// Connection lost: fall through to local compilation.
			c.Fallbacks++
		}
		if err := c.compileLocally(mm, lv); err != nil {
			return err
		}
	}
	c.syncClock()
	return nil
}

// shouldDownload compares the profiled local compile energy with the
// download cost at the current channel estimate (paper §3.3).
func (c *Client) shouldDownload(mm *bytecode.Method, lv jit.Level) bool {
	localE := mm.Attr(fmt.Sprintf("compile.energy.%s", lv), -1)
	codeBytes := mm.Attr(fmt.Sprintf("compile.bytes.%s", lv), -1)
	if localE < 0 || codeBytes < 0 {
		return false // unprofiled; compile locally
	}
	local := energy.Joules(localE)
	if !c.compilerLoaded {
		local += jit.CompilerLoadEnergy(c.Model)
	}
	cls := c.Link.EstimateClass()
	remote := c.Link.Chip.TxEnergy(64, cls) + c.Link.Chip.RxEnergy(int(codeBytes), cls)
	return remote < local
}

// downloadBody fetches a pre-compiled body from the server. A body
// already fetched in a previous execution is re-downloaded (the fresh
// classloader has no native code), but the simulator reuses the
// artifact.
func (c *Client) downloadBody(mm *bytecode.Method, lv jit.Level) error {
	tTx, err := c.Link.Send(64)
	if err != nil {
		return err
	}
	code := c.bodies[mm][lv-1]
	size := 0
	if code != nil {
		size = code.SizeBytes()
	} else {
		code, size, err = c.Server.CompiledBody(mm.QName(), lv)
		if err != nil {
			return err
		}
		c.VM.InstallCode(code)
		b := c.bodies[mm]
		b[lv-1] = code
		c.bodies[mm] = b
	}
	tRx, err := c.Link.Recv(size)
	if err != nil {
		return err
	}
	// Linking the downloaded code into the VM.
	c.VM.ChargeSerialization(size)
	av := c.avail[mm]
	av[lv-1] = true
	c.avail[mm] = av
	c.noteLinked(mm, lv)
	c.Clock += tTx + tRx
	c.RemoteCompiles++
	c.syncClock()
	return nil
}

// compileLocally runs the JIT on the client, charging its energy (and
// the once-per-execution compiler-classes load). Re-compilations in
// later executions replay the recorded charges without re-running the
// JIT.
func (c *Client) compileLocally(mm *bytecode.Method, lv jit.Level) error {
	if !c.compilerLoaded {
		jit.ChargeCompilerLoad(c.VM.Acct)
		c.compilerLoaded = true
	}
	if c.bodies[mm][lv-1] == nil {
		snap := c.VM.Acct.Snapshot()
		code, st, err := jit.Compile(c.Prog, mm, lv)
		if err != nil {
			return err
		}
		st.Charge(c.VM.Acct)
		c.VM.InstallCode(code)
		b := c.bodies[mm]
		b[lv-1] = code
		c.bodies[mm] = b
		d := c.compileDeltas[mm]
		d[lv-1] = c.VM.Acct.DeltaSince(snap)
		c.compileDeltas[mm] = d
	} else {
		c.VM.Acct.Apply(c.compileDeltas[mm][lv-1])
	}
	av := c.avail[mm]
	av[lv-1] = true
	c.avail[mm] = av
	c.noteLinked(mm, lv)
	c.LocalCompiles++
	return nil
}

// StepChannel advances the channel process (between invocations).
func (c *Client) StepChannel() { c.Link.StepChannel() }

// ResetRun clears per-execution VM state while keeping compiled code,
// adaptive state and accumulated energy (an application execution
// boundary within a scenario).
func (c *Client) ResetRun() {
	c.VM.ResetRun(true)
}

// classForPower returns the power class whose transmit-chain power is
// nearest to p; the adaptive strategies predict future power with an
// EWMA, so the estimate rarely matches a class exactly.
func classForPower(chip *radio.Chipset, p float64) radio.Class {
	best, bestD := radio.Class4, -1.0
	for cls := radio.Class1; cls <= radio.Class4; cls++ {
		d := float64(chip.TxPower(cls)) - p
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = cls, d
		}
	}
	return best
}
