package core

import (
	"context"
	"fmt"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// Client is a Java-enabled mobile device: an MJVM plus a wireless link
// to a Server. It is the thin composition root of three layers with
// narrow seams:
//
//   - the Policy decides, per invocation, where and how to execute
//     (and where to compile) — all strategy logic and adaptive state
//     live there;
//   - the Executor runs the decision (interpret, JIT at a level, or
//     offload) and manages compiled bodies through its CacheManager;
//   - the event layer (Events/Stats) is the single stream experiments
//     and tracing consume.
//
// All energy consumed on behalf of the client (computation,
// compilation, communication, power-down leakage) accumulates in
// VM.Acct; Clock tracks virtual wall time.
type Client struct {
	ID       string
	Prog     *bytecode.Program
	VM       *vm.VM
	Model    *energy.CPUModel
	Link     *radio.Link
	Server   Remote
	Strategy Strategy

	// Policy decides execution mode and compilation site; New installs
	// the paper policy for the strategy, and callers may swap in their
	// own before invoking.
	Policy Policy

	// Exec owns the execution paths and the compiled-code cache.
	Exec *Executor

	// Events fans runtime events out to the attached sinks; Stats is
	// the always-attached counter sink.
	Events *Sinks
	Stats  *Stats

	// Timeout is the listen window charged before declaring the
	// connection lost and falling back to local execution.
	Timeout energy.Seconds

	// MaxRetries bounds how often one invocation re-attempts a lost
	// remote exchange before falling back locally; each retry charges
	// a backoff listen window plus the exchange's real energy.
	MaxRetries int
	// RetryBackoff is the initial backoff listen window between
	// retries; it doubles per retry.
	RetryBackoff energy.Seconds

	// Breaker is the link circuit breaker: after consecutive losses
	// the policies stop considering remote options until a half-open
	// probe succeeds. Nil disables it (and per-backend breakers with
	// it). When the client talks to a pool it also serves as the
	// prototype the per-backend breakers clone their tuning from.
	Breaker *Breaker

	// BackendBreakers enables one independent circuit breaker per
	// backend when Server is a MultiRemote: losses attributed to a
	// backend (BackendError) strike only that backend's breaker, and
	// placement hints and remote candidates exclude backends whose
	// breaker is open. Off, every loss strikes the single link breaker
	// — one brown-out backend can blind the client to the whole pool.
	BackendBreakers bool

	// Clock is the client's virtual wall time.
	Clock energy.Seconds

	// Memo, when set, replays previously simulated executions; the
	// driver must set MemoInputKey to identify the current input and
	// must not consume results of replayed invocations.
	Memo         *Memo
	MemoInputKey uint64

	targets  map[*bytecode.Method]*Target
	profiles map[*bytecode.Method]*Profile
	plans    map[*bytecode.Method][]*bytecode.Method
	inFlight map[*bytecode.Method]bool

	lastAcctTime energy.Seconds
	r            *rng.RNG

	// ctx is the context of the in-flight Invoke; the executor's
	// remote path consults it between attempts and hands it to the
	// transport.
	ctx context.Context

	// busyRates holds one EWMA estimate per backend of that backend
	// shedding load (1 = every recent exchange came back busy). A
	// single anonymous server lives under key "". RemoteEnergy
	// inflates the cheapest backend's price by 1/(1-rate), so adaptive
	// policies steer work back to local execution while the pool is
	// overloaded and drift back as successes decay the estimates.
	busyRates map[string]float64

	// lastServed and lastHint record, for the most recent remote
	// exchange, the backend that answered and the placement hint the
	// client sent — the attribution keys for success/busy accounting.
	lastServed string
	lastHint   string

	// breakers holds the per-backend circuit breakers, cloned lazily
	// from the Breaker prototype on the first failure attributed to
	// each backend.
	breakers map[string]*Breaker
}

// EnableTrace attaches (and returns) a Trace sink recording every
// invocation.
func (c *Client) EnableTrace() *Trace {
	t := &Trace{}
	c.Events.Attach(t)
	return t
}

// Register attaches a target and its profile to the client. Methods
// without a registered target always run as the ambient mode dictates.
func (c *Client) Register(t *Target, prof *Profile) error {
	m := c.Prog.FindMethod(t.Class, t.Method)
	if m == nil {
		return fmt.Errorf("core: no method %s", t.QName())
	}
	if !m.Potential {
		return fmt.Errorf("core: %s is not marked potential", t.QName())
	}
	c.targets[m] = t
	c.profiles[m] = prof
	c.plans[m] = compilePlan(c.Prog, m)
	return nil
}

// Energy returns the total energy the client has consumed.
func (c *Client) Energy() energy.Joules { return c.VM.Acct.Total() }

// NewExecution marks an application-execution boundary: classes are
// reloaded, so compiled bodies must be re-linked (their energy is
// charged again) and the compiler classes re-initialized. The policy
// resets its per-execution amortization state; device-level state
// (EWMA predictions, the pilot tracker) persists.
func (c *Client) NewExecution() {
	c.Exec.NewExecution()
	c.Policy.NewExecution()
	c.VM.Hier.Flush()
}

// hook intercepts invocations of potential methods (the paper's
// implicit helper-method call).
func (c *Client) hook(m *bytecode.Method, args []vm.Slot) (vm.Slot, bool, error) {
	t := c.targets[m]
	if t == nil || c.inFlight[m] {
		return vm.Slot{}, false, nil
	}
	size, err := t.SizeOf(c.VM, args)
	if err != nil {
		return vm.Slot{}, false, nil
	}
	res, err := c.execute(m, t, size, args)
	return res, true, err
}

// syncClock folds CPU time accumulated in the account into the wall
// clock.
func (c *Client) syncClock() {
	t := c.VM.Acct.Time()
	c.Clock += t - c.lastAcctTime
	c.lastAcctTime = t
}

// Invoke runs a registered potential method with the given arguments
// (already resident in the client VM's heap). ctx cancels the remote
// path of the invocation — a cancelled offload surfaces as the
// context's error instead of falling back locally; nil means
// context.Background().
func (c *Client) Invoke(ctx context.Context, class, method string, args []vm.Slot) (vm.Slot, error) {
	m := c.Prog.FindMethod(class, method)
	if m == nil {
		return vm.Slot{}, fmt.Errorf("core: no method %s.%s", class, method)
	}
	prev := c.ctx
	c.ctx = ctx
	defer func() { c.ctx = prev }()
	return c.VM.Invoke(m, args)
}

// invokeCtx is the context of the in-flight invocation.
func (c *Client) invokeCtx() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// execute asks the policy where and how to run m and has the executor
// do it, emitting one EvInvoke with the measured deltas.
func (c *Client) execute(m *bytecode.Method, t *Target, size float64, args []vm.Slot) (vm.Slot, error) {
	c.inFlight[m] = true
	defer delete(c.inFlight, m)

	c.syncClock()
	eBefore := c.VM.Acct.Total()
	tBefore := c.Clock

	mode := c.decideMode(m, size)
	res, fellBack, err := c.Exec.Run(mode, m, t, size, args)
	if err != nil {
		return vm.Slot{}, err
	}

	c.syncClock()
	if fellBack {
		c.Events.Emit(Event{Kind: EvFallback, Method: m, Mode: mode, At: c.Clock, Radio: c.Link.Telemetry()})
	}
	c.Events.Emit(Event{
		Kind: EvInvoke, Method: m, Mode: mode, Size: size,
		Energy:   c.VM.Acct.Total() - eBefore,
		Time:     c.Clock - tBefore,
		At:       tBefore,
		FellBack: fellBack,
		Radio:    c.Link.Telemetry(),
	})
	return res, nil
}

// decideMode routes one decision through the policy, emitting the
// policy's predicted per-mode costs (when it produced any) as one
// EvEstimate so every adaptive decision is auditable against the
// EvInvoke that follows it.
func (c *Client) decideMode(m *bytecode.Method, size float64) Mode {
	d := c.Policy.Decide(&InvokeContext{Method: m, Prof: c.profiles[m], Size: size, Env: c})
	if d.Est != nil {
		c.Events.Emit(Event{Kind: EvEstimate, Method: m, Mode: d.Mode, Size: size, At: c.Clock, Est: d.Est})
	}
	return d.Mode
}

// SyncStats folds the link's current telemetry into Stats. The event
// stream keeps Stats.Radio fresh as long as events flow, but a
// trailing failed exchange (retries exhausted and the invocation
// itself erroring, so no EvInvoke follows) leaves losses unreported —
// drivers call SyncStats when a run ends.
func (c *Client) SyncStats() { c.Stats.Radio = c.Link.Telemetry() }

// StepChannel advances the channel process (between invocations).
func (c *Client) StepChannel() { c.Link.StepChannel() }

// ResetRun clears per-execution VM state while keeping compiled code,
// adaptive state and accumulated energy (an application execution
// boundary within a scenario).
func (c *Client) ResetRun() {
	c.VM.ResetRun(true)
}

// --- Circuit breaker integration ---

// RemoteAvailable implements PolicyEnv: it reports whether remote
// options may be considered right now. The shared link breaker is
// consulted first (an Open link costs nothing; a HalfOpen one sends a
// charged probe); with per-backend breakers enabled, at least one
// backend must be up too — HalfOpen backend breakers each send their
// own charged probe, so the answer reflects the pool's actual state,
// not a stale verdict.
func (c *Client) RemoteAvailable() bool {
	if !c.linkAvailable() {
		return false
	}
	if c.Breaker == nil || !c.BackendBreakers {
		return true
	}
	ids := c.backendIDs()
	if len(ids) == 0 {
		return true
	}
	up := false
	for _, id := range ids {
		if c.backendAvailable(id) {
			up = true
		}
	}
	return up
}

// linkAvailable consults only the shared link breaker (probing it when
// half-open) — the pool-wide availability gate.
func (c *Client) linkAvailable() bool {
	if c.Breaker == nil {
		return true
	}
	switch c.Breaker.Next(c.Clock) {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		return c.probeLink()
	default:
		return true
	}
}

// backendOpen reports whether the named backend's breaker currently
// holds it down, without probing: Open and cooling down. A HalfOpen
// breaker reads as up here — the probe is paid in backendAvailable
// when availability is actually asked.
func (c *Client) backendOpen(id string) bool {
	b := c.breakers[id]
	return b != nil && b.Next(c.Clock) == BreakerOpen
}

// backendAvailable reports whether the named backend may serve right
// now, running the charged half-open probe when its breaker's cooldown
// has elapsed.
func (c *Client) backendAvailable(id string) bool {
	b := c.breakers[id]
	if b == nil {
		return true
	}
	switch b.Next(c.Clock) {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		return c.probeBackend(id, b)
	default:
		return true
	}
}

// probeLink runs one half-open probe: a small message to the server
// and its echo. Success closes the breaker (EvLinkUp); failure
// re-opens it with a doubled cooldown.
func (c *Client) probeLink() bool {
	n := c.Breaker.ProbeBytes
	if n <= 0 {
		n = 16
	}
	tTx, err := c.Link.Send(n)
	c.Clock += tTx
	if err == nil {
		var tRx energy.Seconds
		tRx, err = c.Link.Recv(n)
		c.Clock += tRx
	}
	c.Events.Emit(Event{Kind: EvProbe, At: c.Clock, FellBack: err != nil, Radio: c.Link.Telemetry()})
	if err != nil {
		c.noteRemoteFailure()
		return false
	}
	c.noteRemoteSuccess()
	return true
}

// probeBackend runs one charged half-open probe against a single
// backend: the radio round trip (same price as a link probe) plus the
// backend liveness question when the pool can answer one
// (BackendProber). Success closes the backend's breaker and counts as
// a link success too — the round trip proved the radio path; failure
// re-opens the backend's breaker with a doubled cooldown and leaves
// the other backends untouched.
func (c *Client) probeBackend(id string, b *Breaker) bool {
	n := b.ProbeBytes
	if n <= 0 {
		n = 16
	}
	tTx, err := c.Link.Send(n)
	c.Clock += tTx
	if err == nil {
		if pr, ok := c.Server.(BackendProber); ok {
			err = pr.ProbeBackend(c.invokeCtx(), id, c.Clock)
		}
	}
	if err == nil {
		var tRx energy.Seconds
		tRx, err = c.Link.Recv(n)
		c.Clock += tRx
	}
	c.Events.Emit(Event{Kind: EvProbe, At: c.Clock, FellBack: err != nil, Backend: id, Radio: c.Link.Telemetry()})
	if err != nil {
		if b.RecordFailure(c.Clock) {
			c.Events.Emit(Event{Kind: EvLinkDown, At: c.Clock, Backend: id, Radio: c.Link.Telemetry()})
		}
		return false
	}
	if b.RecordSuccess() {
		c.Events.Emit(Event{Kind: EvLinkUp, At: c.Clock, Backend: id, Radio: c.Link.Telemetry()})
	}
	if c.Breaker != nil && c.Breaker.RecordSuccess() {
		c.Events.Emit(Event{Kind: EvLinkUp, At: c.Clock, Radio: c.Link.Telemetry()})
	}
	return true
}

// backendBreaker returns the named backend's breaker, cloning one from
// the link-breaker prototype on first use; nil when breakers are off.
func (c *Client) backendBreaker(id string) *Breaker {
	if c.Breaker == nil || id == "" {
		return nil
	}
	b := c.breakers[id]
	if b == nil {
		b = c.Breaker.cloneConfig()
		if c.breakers == nil {
			c.breakers = map[string]*Breaker{}
		}
		c.breakers[id] = b
	}
	return b
}

// BackendBreakerState reports the named backend's breaker state
// (BreakerClosed when it has never failed or breakers are off) without
// advancing it — the observability view.
func (c *Client) BackendBreakerState(id string) BreakerState {
	if b := c.breakers[id]; b != nil {
		return b.State()
	}
	return BreakerClosed
}

// noteRemoteFailure records one lost remote exchange that cannot be
// attributed to a backend: it strikes the shared link breaker.
func (c *Client) noteRemoteFailure() { c.noteRemoteFailureOn("") }

// noteRemoteFailureOn records one lost remote exchange. A loss
// attributed to a backend strikes that backend's breaker only (the
// radio path demonstrably works — the loss verdict came back over it);
// an unattributed loss strikes the shared link breaker. Either breaker
// opening emits EvLinkDown, carrying the backend name when scoped.
func (c *Client) noteRemoteFailureOn(backend string) {
	if backend != "" && c.BackendBreakers {
		if b := c.backendBreaker(backend); b != nil {
			if b.RecordFailure(c.Clock) {
				c.Events.Emit(Event{Kind: EvLinkDown, At: c.Clock, Backend: backend, Radio: c.Link.Telemetry()})
			}
			return
		}
	}
	if c.Breaker == nil {
		return
	}
	if c.Breaker.RecordFailure(c.Clock) {
		c.Events.Emit(Event{Kind: EvLinkDown, At: c.Clock, Radio: c.Link.Telemetry()})
	}
}

// noteRemoteSuccess records one successful remote exchange against an
// anonymous backend: every busy estimate decays, and the breaker
// hears the success (emitting EvLinkUp when it closes a half-open
// breaker). Attributed exchanges go through noteRemoteSuccessOn.
func (c *Client) noteRemoteSuccess() { c.noteRemoteSuccessOn("") }

// noteRemoteSuccessOn records one successful remote exchange with the
// named backend: its busy estimate decays ("" decays all — a probe or
// single-server exchange says nothing about one backend in
// particular), its per-backend breaker hears the success (resetting
// its loss run), and the link breaker hears it too.
func (c *Client) noteRemoteSuccessOn(backend string) {
	if backend == "" {
		for id := range c.busyRates {
			c.busyRates[id] *= busyEWMAWeight
		}
	} else if r, ok := c.busyRates[backend]; ok {
		c.busyRates[backend] = r * busyEWMAWeight
	}
	if backend != "" && c.BackendBreakers {
		if b := c.breakers[backend]; b != nil && b.RecordSuccess() {
			c.Events.Emit(Event{Kind: EvLinkUp, At: c.Clock, Backend: backend, Radio: c.Link.Telemetry()})
		}
	}
	if c.Breaker == nil {
		return
	}
	if c.Breaker.RecordSuccess() {
		c.Events.Emit(Event{Kind: EvLinkUp, At: c.Clock, Radio: c.Link.Telemetry()})
	}
}

// The busy-rate EWMA weight matches the paper's adaptive estimators
// (§3.4 uses 0.7 for size and power); the cap keeps the 1/(1-rate)
// price inflation finite under sustained shedding.
const (
	busyEWMAWeight = 0.7
	busyRateCap    = 0.95
)

// noteServerBusy folds one admission rejection from an anonymous
// backend into the busy-rate estimate. Busy is not a link failure:
// the breaker and loss counters are untouched, only the price of
// future offloads rises.
func (c *Client) noteServerBusy() { c.noteServerBusyOn("") }

// noteServerBusyOn folds one admission rejection from the named
// backend into that backend's busy-rate estimate.
func (c *Client) noteServerBusyOn(backend string) {
	if c.busyRates == nil {
		c.busyRates = map[string]float64{}
	}
	c.busyRates[backend] = busyEWMAWeight*c.busyRates[backend] + (1 - busyEWMAWeight)
}

// busyRateOf is the busy estimate for one backend (0 when never shed
// on).
func (c *Client) busyRateOf(backend string) float64 { return c.busyRates[backend] }

// BusyRate is the busy estimate of the client's cheapest offload
// option: for a single server, its EWMA; across a pool, the minimum —
// the rate the client's next offload is actually priced at.
func (c *Client) BusyRate() float64 {
	ids := c.backendIDs()
	if len(ids) == 0 {
		return c.busyRateOf("")
	}
	min := c.busyRateOf(ids[0])
	for _, id := range ids[1:] {
		if r := c.busyRateOf(id); r < min {
			min = r
		}
	}
	return min
}

// backendIDs lists the backends behind c.Server, nil for a plain
// single Remote. Resolved per call: tests and drivers swap c.Server
// after construction.
func (c *Client) backendIDs() []string {
	if mr, ok := c.Server.(MultiRemote); ok {
		return mr.Backends()
	}
	return nil
}

// placementHint is the client-side pick-cheapest hint the executor
// sends with each offload: the backend with the lowest busy
// inflation. The base offload cost is identical across backends (one
// radio, one channel), so the cheapest candidate is the least-busy
// one — found by the same circular scan from the client's home
// backend as RemoteCandidates, strictly lower wins. Backends whose
// per-backend breaker is open are skipped (unless every backend is
// open, when the scan degrades to the breaker-blind pick). "" when
// c.Server is not a pool.
func (c *Client) placementHint() string {
	ids := c.backendIDs()
	if len(ids) == 0 {
		return ""
	}
	home := int(fnvHash(c.ID) % uint64(len(ids)))
	best := -1
	for off := 0; off < len(ids); off++ {
		i := (home + off) % len(ids)
		if c.BackendBreakers && c.backendOpen(ids[i]) {
			continue
		}
		if best < 0 || c.busyRateOf(ids[i]) < c.busyRateOf(ids[best]) {
			best = i
		}
	}
	if best < 0 {
		best = home
		for off := 1; off < len(ids); off++ {
			i := (home + off) % len(ids)
			if c.busyRateOf(ids[i]) < c.busyRateOf(ids[best]) {
				best = i
			}
		}
	}
	return ids[best]
}

// retryWorthwhile reports whether re-attempting a lost remote
// exchange is still estimated cheaper than the policy's best local
// mode — the executor retries only while the estimator says so.
func (c *Client) retryWorthwhile(m *bytecode.Method, size float64) bool {
	prof := c.profiles[m]
	if prof == nil {
		return false
	}
	ctx := &InvokeContext{Method: m, Prof: prof, Size: size, Env: c}
	local := c.Policy.BestLocalMode(ctx)
	eLocal := prof.EnergyOf[local].Eval(size)
	if local.IsCompiled() {
		eLocal += float64(c.PlanCompileCost(m, prof, local.Level(), false))
	}
	eRemote := float64(c.RemoteEnergy(prof, size, c.TxPowerEstimate()))
	// A retry also risks another timeout listen; count it against the
	// remote side so marginal cases fall back instead of flapping.
	eRemote += float64(energy.Energy(c.Link.Chip.RxPower(), c.Timeout))
	return eRemote < eLocal
}

// --- PolicyEnv: the pricing view policies consult ---

// TxPowerEstimate implements PolicyEnv.
func (c *Client) TxPowerEstimate() float64 {
	return float64(c.Link.Chip.TxPower(c.Link.EstimateClass()))
}

// ChargeDecisionOverhead implements PolicyEnv (the paper notes the
// decision cost is small).
func (c *Client) ChargeDecisionOverhead() {
	c.VM.Acct.AddInstr(energy.ALUSimple, 400)
	c.VM.Acct.AddInstr(energy.Load, 80)
}

// PlanCompileCost implements PolicyEnv: zero when the plan is already
// linked; otherwise the profiled local compile cost (Eo'), or with
// allowDownload the cheaper of local compilation and downloading the
// pre-compiled bodies at the current channel estimate.
func (c *Client) PlanCompileCost(m *bytecode.Method, prof *Profile, lv jit.Level, allowDownload bool) energy.Joules {
	if c.Exec.planLinked(m, lv) {
		return 0
	}
	local := prof.CompileEnergy[lv-1]
	if !c.Exec.CompilerLoaded() {
		local += jit.CompilerLoadEnergy(c.Model)
	}
	if !allowDownload {
		return local
	}
	if remote := c.planDownloadCost(prof, lv); remote < local {
		return remote
	}
	return local
}

// planDownloadCost prices downloading the plan's pre-compiled bodies
// at the current channel estimate.
func (c *Client) planDownloadCost(prof *Profile, lv jit.Level) energy.Joules {
	cls := c.Link.EstimateClass()
	req := 64 // method-name request bytes
	e := c.Link.Chip.TxEnergy(req, cls)
	e += c.Link.Chip.RxEnergy(prof.PlanCodeBytes[lv-1], cls)
	return e
}

// BodyCompileCost implements PolicyEnv: the profiled per-method local
// compile energy (plus a pending compiler load); ok is false for
// unprofiled methods.
func (c *Client) BodyCompileCost(mm *bytecode.Method, lv jit.Level) (energy.Joules, bool) {
	localE := mm.Attr(fmt.Sprintf("compile.energy.%s", lv), -1)
	if localE < 0 {
		return 0, false
	}
	local := energy.Joules(localE)
	if !c.Exec.CompilerLoaded() {
		local += jit.CompilerLoadEnergy(c.Model)
	}
	return local, true
}

// BodyDownloadCost implements PolicyEnv: transmit the method name,
// receive the profiled body size, at the current channel estimate.
func (c *Client) BodyDownloadCost(mm *bytecode.Method, lv jit.Level) (energy.Joules, bool) {
	codeBytes := mm.Attr(fmt.Sprintf("compile.bytes.%s", lv), -1)
	if codeBytes < 0 {
		return 0, false
	}
	cls := c.Link.EstimateClass()
	return c.Link.Chip.TxEnergy(64, cls) + c.Link.Chip.RxEnergy(int(codeBytes), cls), true
}

// RemoteEnergy implements PolicyEnv: E”(m, s, p) — the cheapest
// backend's estimate of transmitting the serialized arguments at
// predicted power p, sleeping (leakage) while the server computes,
// and receiving the result.
func (c *Client) RemoteEnergy(prof *Profile, s, pWatts float64) energy.Joules {
	cands, best := c.RemoteCandidates(prof, s, pWatts)
	return energy.Joules(cands[best].Cost)
}

// RemoteCandidates implements PolicyEnv: one priced remote candidate
// per backend behind c.Server (a single entry with ID "" for a plain
// Remote), plus the index of the cheapest — the client's placement
// hint. The physical-layer base cost is identical across backends
// (one radio, one channel); what separates them is admission-control
// pricing: each backend's estimate inflates by 1/(1-rate) of its own
// busy EWMA, the expected number of shipping attempts before one is
// admitted there.
func (c *Client) RemoteCandidates(prof *Profile, s, pWatts float64) ([]BackendCandidate, int) {
	base := float64(c.remoteEnergyBase(prof, s, pWatts))
	ids := c.backendIDs()
	if len(ids) == 0 {
		r := c.busyRateOf("")
		return []BackendCandidate{{ID: "", Busy: r, Cost: inflateBusy(base, r)}}, 0
	}
	cands := make([]BackendCandidate, len(ids))
	for i, id := range ids {
		r := c.busyRateOf(id)
		cands[i] = BackendCandidate{ID: id, Busy: r, Cost: inflateBusy(base, r),
			Open: c.BackendBreakers && c.backendOpen(id)}
	}
	// The cheapest backend, scanning circularly from the client's home
	// backend (hash of its ID) and moving only on strictly lower cost:
	// a fleet of fresh clients with identical estimates spreads across
	// the pool instead of herding onto backend 0. Backends held down by
	// their breaker are priced (for observability) but not picked —
	// unless every backend is open, when the scan degrades to the
	// breaker-blind pick so the estimate stays finite.
	home := int(fnvHash(c.ID) % uint64(len(ids)))
	best := -1
	for off := 0; off < len(ids); off++ {
		i := (home + off) % len(ids)
		if cands[i].Open {
			continue
		}
		if best < 0 || cands[i].Cost < cands[best].Cost {
			best = i
		}
	}
	if best < 0 {
		best = home
		for off := 1; off < len(ids); off++ {
			i := (home + off) % len(ids)
			if cands[i].Cost < cands[best].Cost {
				best = i
			}
		}
	}
	return cands, best
}

// remoteEnergyBase is the un-inflated offload estimate: pure
// physical-layer and CPU cost, independent of which backend serves.
func (c *Client) remoteEnergyBase(prof *Profile, s, pWatts float64) energy.Joules {
	chip := c.Link.Chip
	txBytes := prof.TxBytes.Eval(s)
	rxBytes := prof.RxBytes.Eval(s)
	if txBytes < 0 {
		txBytes = 0
	}
	if rxBytes < 0 {
		rxBytes = 0
	}
	// Infer the channel class from the predicted transmit power: air
	// time scales with the class's effective rate.
	cls := classForPower(chip, pWatts)
	tTx := float64(chip.AirTime(int(txBytes), cls))
	tRx := float64(chip.AirTime(int(rxBytes), cls))
	e := energy.Joules(pWatts * tTx)
	e += energy.Energy(chip.RxPower(), energy.Seconds(tRx))
	e += energy.Energy(c.Model.LeakagePower(), energy.Seconds(prof.ServerTime.Eval(s)))
	// Serialization/deserialization CPU work.
	words := (txBytes + rxBytes) / 4
	e += energy.Joules(words) * (c.Model.PerInstr[energy.Load] + c.Model.PerInstr[energy.Store] +
		2*c.Model.PerInstr[energy.ALUSimple])
	return e
}

// inflateBusy applies admission-control pricing: a backend shedding
// at rate r costs ~1/(1-r) shipping attempts per admitted offload.
func inflateBusy(base, r float64) float64 {
	if r <= 0 {
		return base
	}
	if r > busyRateCap {
		r = busyRateCap
	}
	return base / (1 - r)
}

// fnvHash is FNV-1a over a string — the stable client-to-home-backend
// spreading hash.
func fnvHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// classForPower returns the power class whose transmit-chain power is
// nearest to p; the adaptive strategies predict future power with an
// EWMA, so the estimate rarely matches a class exactly.
func classForPower(chip *radio.Chipset, p float64) radio.Class {
	best, bestD := radio.Class4, -1.0
	for cls := radio.Class1; cls <= radio.Class4; cls++ {
		d := float64(chip.TxPower(cls)) - p
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = cls, d
		}
	}
	return best
}

// Compile-time check: the Client is the pricing environment policies
// consult.
var _ PolicyEnv = (*Client)(nil)
