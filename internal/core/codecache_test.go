package core

import (
	"context"

	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// TestEvictionRechargesCompileEnergy: once the LRU evicts a body,
// using it again within the same execution pays the recorded compile
// energy a second time.
func TestEvictionRechargesCompileEnergy(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyL2, radio.Fixed{Cls: radio.Class4}, workTarget(), vecsumTarget())
	c.Exec.Cache.MaxBytes = 150
	mW := p.FindMethod("App", "work")

	argsW := []vm.Slot{vm.IntSlot(100)}
	if _, err := c.Invoke(context.Background(), "App", "work", argsW); err != nil {
		t.Fatal(err)
	}
	e1 := c.VM.Acct.Component(energy.CompCompile)
	if e1 <= 0 {
		t.Fatal("first invocation should charge compilation")
	}

	argsV, err := vecsumTarget().MakeArgs(c.VM, 64, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "App", "vecsum", argsV); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("expected evictions under a 150-byte code cache")
	}
	// The LRU must have unlinked the oldest bodies — work's plan.
	if c.Exec.planLinked(mW, jit.Level2) {
		t.Error("work's plan should no longer be fully linked after eviction")
	}
	e2 := c.VM.Acct.Component(energy.CompCompile)

	if _, err := c.Invoke(context.Background(), "App", "work", argsW); err != nil {
		t.Fatal(err)
	}
	if e3 := c.VM.Acct.Component(energy.CompCompile); e3 <= e2 {
		t.Errorf("re-using an evicted body should re-charge compile energy (%v -> %v)", e2, e3)
	}
}

// alwaysDownload wraps a policy and forces every compilation to the
// download path, exercising the executor's remote-compile machinery
// regardless of pricing.
type alwaysDownload struct{ Policy }

func (alwaysDownload) Download(PolicyEnv, *bytecode.Method, jit.Level) bool { return true }

// TestEvictionRedownloadsBodies: under adaptive compilation, evicted
// downloaded bodies are fetched from the server again on next use and
// the receive energy is re-charged (the simulator reuses the artifact
// but the fresh classloader has no native code).
func TestEvictionRedownloadsBodies(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAA, radio.Fixed{Cls: radio.Class4}, workTarget(), vecsumTarget())
	c.Policy = alwaysDownload{c.Policy}
	c.Exec.Cache.MaxBytes = 150
	mW := p.FindMethod("App", "work")
	mV := p.FindMethod("App", "vecsum")

	if err := c.Exec.ensurePlanCompiled(mW, jit.Level2); err != nil {
		t.Fatal(err)
	}
	d1 := c.Stats.RemoteCompiles
	if d1 == 0 {
		t.Fatal("forced download policy should download bodies")
	}
	if c.Stats.LocalCompiles != 0 {
		t.Fatalf("LocalCompiles = %d, want 0 under forced downloads", c.Stats.LocalCompiles)
	}

	if err := c.Exec.ensurePlanCompiled(mV, jit.Level2); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("expected evictions under a 150-byte code cache")
	}
	d2 := c.Stats.RemoteCompiles
	rx2 := c.VM.Acct.Component(energy.CompRadioRx)

	if err := c.Exec.ensurePlanCompiled(mW, jit.Level2); err != nil {
		t.Fatal(err)
	}
	if c.Stats.RemoteCompiles <= d2 {
		t.Error("evicted bodies should be re-downloaded on next use")
	}
	if rx3 := c.VM.Acct.Component(energy.CompRadioRx); rx3 <= rx2 {
		t.Errorf("re-download should re-charge receive energy (%v -> %v)", rx2, rx3)
	}
}
