package core

import (
	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/jit"
)

// The policy layer is the paper's contribution isolated behind one
// interface: per invocation of a potential method, decide where to
// execute (locally or remote) and how (interpreted or compiled), and
// — for adaptive compilation — where to obtain compiled bodies. The
// Client consults its Policy and never branches on the strategy
// itself, so new policies plug in without touching the runtime.

// InvokeContext is everything a Policy may look at for one decision.
type InvokeContext struct {
	// Method is the potential method being invoked.
	Method *bytecode.Method
	// Prof is the method's offline profile (nil when unprofiled).
	Prof *Profile
	// Size is the invocation's measured size parameter.
	Size float64
	// Env prices the alternatives against live client state (channel
	// estimate, compiled-code state, compiler-load status).
	Env PolicyEnv
}

// Decision is a Policy's verdict for one invocation. Est, when
// non-nil, carries the per-mode predicted costs the verdict was
// ranked on; the Client emits it as one EvEstimate so the auditor can
// compare prediction with outcome (static policies predict nothing
// and leave it nil).
type Decision struct {
	Mode Mode
	Est  *Estimate
}

// Policy decides execution mode and compilation site. Implementations
// hold all per-method adaptive state themselves; the Client only
// routes calls.
type Policy interface {
	// Decide picks the execution mode for one invocation.
	Decide(ctx *InvokeContext) Decision
	// BestLocalMode picks the cheapest local mode; the executor uses
	// it when a remote execution is lost and must re-run locally.
	BestLocalMode(ctx *InvokeContext) Mode
	// Download reports whether the body of mm at the level should be
	// fetched pre-compiled from the server rather than compiled
	// locally (the paper's adaptive compilation, §3.3).
	Download(env PolicyEnv, mm *bytecode.Method, lv jit.Level) bool
	// NewExecution marks an application-execution boundary: fresh
	// class loading resets per-execution amortization; device-level
	// state (EWMA channel and size predictions) persists.
	NewExecution()
}

// PolicyEnv is the read-only pricing view a Policy consults. The
// Client implements it; estimates reflect its current channel
// estimate and compiled-code state.
type PolicyEnv interface {
	// TxPowerEstimate is the transmit-chain power (W) at the current
	// channel estimate.
	TxPowerEstimate() float64
	// RemoteEnergy is E''(m, s, p): the estimated energy to offload
	// one invocation of size s at predicted transmit power p — the
	// cheapest backend's candidate.
	RemoteEnergy(prof *Profile, s, p float64) energy.Joules
	// RemoteCandidates prices one offload candidate per backend (a
	// single ID-"" entry for one anonymous server) and returns the
	// index of the cheapest — the placement hint the client will send
	// if the policy decides ModeRemote.
	RemoteCandidates(prof *Profile, s, p float64) ([]BackendCandidate, int)
	// PlanCompileCost estimates making m's whole compilation plan
	// executable at the level: zero when already linked; otherwise
	// the profiled local compile cost (plus the once-per-execution
	// compiler-classes load) or, when allowDownload, the cheaper of
	// that and downloading the pre-compiled bodies.
	PlanCompileCost(m *bytecode.Method, prof *Profile, lv jit.Level, allowDownload bool) energy.Joules
	// BodyCompileCost is the profiled energy to compile one method
	// body locally (including a pending compiler load); ok is false
	// when the method was never profiled.
	BodyCompileCost(mm *bytecode.Method, lv jit.Level) (e energy.Joules, ok bool)
	// BodyDownloadCost prices downloading one pre-compiled body at
	// the current channel estimate; ok is false when the body's size
	// was never profiled.
	BodyDownloadCost(mm *bytecode.Method, lv jit.Level) (e energy.Joules, ok bool)
	// ChargeDecisionOverhead bills the decision computation itself to
	// the client (the paper notes it is small).
	ChargeDecisionOverhead()
	// RemoteAvailable reports whether remote options (offloading,
	// body download) may be considered right now. While the link's
	// circuit breaker is open this is false at no cost; when the
	// breaker is half-open it runs the probe (charged to the radio
	// account) and reports the outcome.
	RemoteAvailable() bool
}

// NewPolicy returns the paper's policy for a strategy: fixed-mode for
// the five static strategies, EWMA-amortized adaptive execution for
// AL, plus adaptive compilation for AA.
func NewPolicy(s Strategy) Policy {
	switch s {
	case StrategyAL:
		return NewAdaptivePolicy(false)
	case StrategyAA:
		return NewAdaptivePolicy(true)
	default:
		return StaticPolicy{Mode: s.StaticMode()}
	}
}

// StaticPolicy always picks one mode (strategies R, I, L1, L2, L3).
type StaticPolicy struct {
	Mode Mode
}

// Decide implements Policy.
func (p StaticPolicy) Decide(*InvokeContext) Decision { return Decision{Mode: p.Mode} }

// BestLocalMode implements Policy: cheapest local mode with local
// compilation pricing.
func (p StaticPolicy) BestLocalMode(ctx *InvokeContext) Mode {
	return cheapestLocalMode(ctx, false)
}

// Download implements Policy: static strategies always compile
// locally.
func (p StaticPolicy) Download(PolicyEnv, *bytecode.Method, jit.Level) bool { return false }

// NewExecution implements Policy (no per-execution state).
func (p StaticPolicy) NewExecution() {}

// adaptState is the per-method state of the adaptive policies.
type adaptState struct {
	k    int
	sBar float64
	pBar float64 // predicted transmit-chain power (W)
}

// AdaptivePolicy implements the paper's adaptive strategies: an EWMA
// predicts the future size parameter and communication power, and the
// k-amortized energy estimates of interpretation, offloading and each
// compiled level are compared per invocation. With AdaptiveCompile it
// also chooses the compilation site (AA); otherwise it always
// compiles locally (AL).
type AdaptivePolicy struct {
	// U1 and U2 weight the EWMA prediction of future size parameter
	// and communication power (paper: both 0.7).
	U1, U2 float64
	// AdaptiveCompile additionally prices downloading pre-compiled
	// bodies against local compilation.
	AdaptiveCompile bool

	state map[*bytecode.Method]*adaptState
}

// NewAdaptivePolicy returns an adaptive policy with the paper's EWMA
// weights.
func NewAdaptivePolicy(adaptiveCompile bool) *AdaptivePolicy {
	return &AdaptivePolicy{
		U1:              0.7,
		U2:              0.7,
		AdaptiveCompile: adaptiveCompile,
		state:           map[*bytecode.Method]*adaptState{},
	}
}

// Decide implements Policy: the paper's amortized comparison.
func (p *AdaptivePolicy) Decide(ctx *InvokeContext) Decision {
	st := p.state[ctx.Method]
	if st == nil {
		st = &adaptState{}
		p.state[ctx.Method] = st
	}
	// EWMA prediction of future size and communication power
	// (sk1 = u1*sk-1 + (1-u1)*sk, pk likewise; u1 = u2 = 0.7).
	pNow := ctx.Env.TxPowerEstimate()
	if st.k == 0 {
		st.sBar, st.pBar = ctx.Size, pNow
	} else {
		st.sBar = p.U1*st.sBar + (1-p.U1)*ctx.Size
		st.pBar = p.U2*st.pBar + (1-p.U2)*pNow
	}
	st.k++
	k := float64(st.k)

	ctx.Env.ChargeDecisionOverhead()

	// The estimate records the ranked costs per invocation (the
	// amortized totals divided by k), so the auditor can hold them
	// against the measured EvInvoke energy.
	est := &Estimate{K: st.k, PredSize: st.sBar, PredPower: st.pBar}

	prof := ctx.Prof
	best, bestE := ModeInterp, k*prof.EnergyOf[ModeInterp].Eval(st.sBar)
	est.Cost[ModeInterp] = bestE / k
	est.Considered[ModeInterp] = true
	// A Down link takes the remote option off the table entirely (the
	// circuit breaker's graceful degradation); the half-open probe
	// inside RemoteAvailable is what re-admits it.
	if ctx.Env.RemoteAvailable() {
		cands, ci := ctx.Env.RemoteCandidates(prof, st.sBar, st.pBar)
		eR := k * cands[ci].Cost
		est.Cost[ModeRemote] = eR / k
		est.Considered[ModeRemote] = true
		if len(cands) > 1 || cands[0].ID != "" {
			est.Backends = cands
			est.Backend = cands[ci].ID
		}
		if eR < bestE {
			best, bestE = ModeRemote, eR
		}
	}
	for mode := ModeL1; mode <= ModeL3; mode++ {
		e := k * prof.EnergyOf[mode].Eval(st.sBar)
		e += float64(ctx.Env.PlanCompileCost(ctx.Method, prof, mode.Level(), p.AdaptiveCompile))
		est.Cost[mode] = e / k
		est.Considered[mode] = true
		if e < bestE {
			best, bestE = mode, e
		}
	}
	est.Chosen = best
	return Decision{Mode: best, Est: est}
}

// BestLocalMode implements Policy.
func (p *AdaptivePolicy) BestLocalMode(ctx *InvokeContext) Mode {
	return cheapestLocalMode(ctx, p.AdaptiveCompile)
}

// Download implements Policy: compare the profiled local compile
// energy with the download cost at the current channel estimate
// (paper §3.3); unprofiled bodies compile locally.
func (p *AdaptivePolicy) Download(env PolicyEnv, mm *bytecode.Method, lv jit.Level) bool {
	if !p.AdaptiveCompile {
		return false
	}
	if !env.RemoteAvailable() {
		return false
	}
	local, ok := env.BodyCompileCost(mm, lv)
	if !ok {
		return false
	}
	remote, ok := env.BodyDownloadCost(mm, lv)
	if !ok {
		return false
	}
	return remote < local
}

// NewExecution implements Policy: invocation counts reset with the
// fresh execution; the EWMA predictions persist (they are
// device-level state, like the pilot-signal tracker).
func (p *AdaptivePolicy) NewExecution() {
	for _, st := range p.state {
		st.k = 0
	}
}

// cheapestLocalMode picks the cheapest local mode for the fallback
// path, pricing compilation through the env.
func cheapestLocalMode(ctx *InvokeContext, allowDownload bool) Mode {
	prof := ctx.Prof
	if prof == nil {
		return ModeInterp
	}
	best, bestE := ModeInterp, prof.EnergyOf[ModeInterp].Eval(ctx.Size)
	for mode := ModeL1; mode <= ModeL3; mode++ {
		e := prof.EnergyOf[mode].Eval(ctx.Size) +
			float64(ctx.Env.PlanCompileCost(ctx.Method, prof, mode.Level(), allowDownload))
		if e < bestE {
			best, bestE = mode, e
		}
	}
	return best
}

// Compile-time checks: the static and adaptive policies cover all
// seven paper strategies.
var (
	_ Policy = StaticPolicy{}
	_ Policy = (*AdaptivePolicy)(nil)
)
