package core

import (
	"context"

	"fmt"
	"testing"

	"greenvm/internal/bytecode"
	"greenvm/internal/energy"
	"greenvm/internal/radio"
	"greenvm/internal/rng"
	"greenvm/internal/vm"
)

// adaptiveState reaches into the client's adaptive policy for its
// per-method EWMA/amortization state.
func adaptiveState(c *Client) map[*bytecode.Method]*adaptState {
	return c.Policy.(*AdaptivePolicy).state
}

// TestEWMAPrediction checks the paper's prediction formulas: after a
// run of invocations, sBar is the u-weighted average of past sizes.
func TestEWMAPrediction(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAL, radio.Fixed{Cls: radio.Class4}, workTarget())
	m := p.FindMethod("App", "work")
	sizes := []int32{100, 200, 400}
	for _, s := range sizes {
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(s)}); err != nil {
			t.Fatal(err)
		}
	}
	st := adaptiveState(c)[m]
	// s1 = 100; s2 = .7*100 + .3*200 = 130; s3 = .7*130 + .3*400 = 211.
	if st.sBar != 211 {
		t.Errorf("sBar = %v, want 211", st.sBar)
	}
	if st.k != 3 {
		t.Errorf("k = %d, want 3", st.k)
	}
	// Power prediction tracks the fixed channel's transmit power.
	want := float64(c.Link.Chip.TxPower(radio.Class4))
	if st.pBar != want {
		t.Errorf("pBar = %v, want %v", st.pBar, want)
	}
}

// TestNewExecutionResetsAmortization: within one execution the k-
// amortization makes AL compile a hot method; a fresh execution resets
// k, so a single invocation prefers not to pay the compile again if a
// cheaper single-shot mode exists.
func TestNewExecutionResetsAmortization(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAL, radio.Fixed{Cls: radio.Class1}, workTarget())
	m := p.FindMethod("App", "work")
	for i := 0; i < 30; i++ {
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(600)}); err != nil {
			t.Fatal(err)
		}
	}
	if adaptiveState(c)[m].k != 30 {
		t.Fatalf("k = %d", adaptiveState(c)[m].k)
	}
	c.NewExecution()
	if adaptiveState(c)[m].k != 0 {
		t.Error("NewExecution should reset invocation counts")
	}
	if adaptiveState(c)[m].sBar == 0 {
		t.Error("NewExecution should keep the EWMA size prediction")
	}
	if c.Exec.planLinked(m, 1) || c.Exec.planLinked(m, 2) || c.Exec.planLinked(m, 3) {
		t.Error("NewExecution should unlink compiled bodies")
	}
}

// TestRecompileChargesAgain: a second execution that chooses a
// compiled mode pays the recorded compile energy again, while the
// simulator reuses the artifact (no second JIT run).
func TestRecompileChargesAgain(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyL2, radio.Fixed{Cls: radio.Class4}, workTarget())
	args := []vm.Slot{vm.IntSlot(100)}
	if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
		t.Fatal(err)
	}
	e1 := c.VM.Acct.Component(energy.CompCompile)
	if e1 <= 0 {
		t.Fatal("first execution should charge compilation")
	}
	c.NewExecution()
	if _, err := c.Invoke(context.Background(), "App", "work", args); err != nil {
		t.Fatal(err)
	}
	e2 := c.VM.Acct.Component(energy.CompCompile)
	if rel := abs(float64(e2)-2*float64(e1)) / float64(e1); rel > 1e-9 {
		t.Errorf("second execution compile charge %v, want doubled %v", e2, 2*e1)
	}
	if c.Stats.LocalCompiles != 4 { // 2 methods x 2 executions
		t.Errorf("LocalCompiles = %d, want 4", c.Stats.LocalCompiles)
	}
}

// TestDecisionOverheadCharged: the adaptive decision itself costs
// energy (the paper notes it is small).
func TestDecisionOverheadCharged(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAL, radio.Fixed{Cls: radio.Class4}, workTarget())
	m := p.FindMethod("App", "work")
	before := c.VM.Acct.Snapshot()
	c.decideMode(m, 100)
	overhead := c.VM.Acct.Since(before)
	if overhead <= 0 {
		t.Fatal("decision charged nothing")
	}
	if overhead > 10*energy.MicroJoule {
		t.Errorf("decision overhead %v should be negligible", overhead)
	}
}

// TestPilotTrackerErrorRobustness: AL still functions (and still beats
// the worst static strategy) when the channel estimate is wrong 20% of
// the time.
func TestPilotTrackerErrorRobustness(t *testing.T) {
	p := testProgram(t)
	ch := radio.UniformChannel(rng.New(3))
	c := newTestClient(t, p, StrategyAL, ch, workTarget())
	c.Link.Tracker = radio.NewPilotTracker(ch, 0.2, rng.New(4))
	for i := 0; i < 25; i++ {
		c.NewExecution()
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(400)}); err != nil {
			t.Fatal(err)
		}
		c.StepChannel()
	}
	if c.Energy() <= 0 {
		t.Fatal("no energy")
	}
	total := 0
	for _, n := range c.Stats.ModeCounts {
		total += n
	}
	if total != 25 {
		t.Errorf("mode counts %v", c.Stats.ModeCounts)
	}
}

// TestMultipleTargetsIndependentState: two potential methods keep
// separate adaptive state and plans.
func TestMultipleTargetsIndependentState(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAL, radio.Fixed{Cls: radio.Class4}, workTarget(), vecsumTarget())
	if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(300)}); err != nil {
		t.Fatal(err)
	}
	args, err := vecsumTarget().MakeArgs(c.VM, 128, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "App", "vecsum", args); err != nil {
		t.Fatal(err)
	}
	work := p.FindMethod("App", "work")
	vec := p.FindMethod("App", "vecsum")
	if adaptiveState(c)[work] == nil || adaptiveState(c)[vec] == nil {
		t.Fatal("missing per-method state")
	}
	if adaptiveState(c)[work].k != 1 || adaptiveState(c)[vec].k != 1 {
		t.Errorf("k work=%d vec=%d", adaptiveState(c)[work].k, adaptiveState(c)[vec].k)
	}
	if adaptiveState(c)[work].sBar == adaptiveState(c)[vec].sBar {
		t.Error("size predictions should be independent")
	}
}

// TestClockAdvancesMonotonically across mixed local/remote execution.
func TestClockAdvancesMonotonically(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyAA, radio.UniformChannel(rng.New(8)), workTarget())
	last := c.Clock
	for i := 0; i < 12; i++ {
		c.NewExecution()
		if _, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(int32(100 + i*60))}); err != nil {
			t.Fatal(err)
		}
		if c.Clock <= last {
			t.Fatalf("clock did not advance at run %d: %v -> %v", i, last, c.Clock)
		}
		last = c.Clock
		c.StepChannel()
	}
}

// TestDownloadApplication charges communication and verification for
// the dynamic-download capability the paper motivates.
func TestDownloadApplication(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyI, radio.Fixed{Cls: radio.Class4}, workTarget())
	n, err := c.DownloadApplication()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("no bytes downloaded")
	}
	if c.VM.Acct.Component(energy.CompRadioRx) <= 0 {
		t.Error("download should charge receive energy")
	}
	if c.VM.Acct.Component(energy.CompCore) <= 0 {
		t.Error("class loading/verification should charge core energy")
	}
	if c.ClassLoadEnergy() <= 0 {
		t.Error("ClassLoadEnergy should be positive")
	}
	// Download under a degraded channel costs more.
	c2 := newTestClient(t, p, StrategyI, radio.Fixed{Cls: radio.Class1}, workTarget())
	if _, err := c2.DownloadApplication(); err != nil {
		t.Fatal(err)
	}
	if c2.VM.Acct.Component(energy.CompRadioRx) <= c.VM.Acct.Component(energy.CompRadioRx) {
		t.Error("worse channel should make the download cost more")
	}
	// A dead link surfaces the error.
	c3 := newTestClient(t, p, StrategyI, radio.Fixed{Cls: radio.Class4}, workTarget())
	c3.Link.LossProb = 1
	if _, err := c3.DownloadApplication(); err == nil {
		t.Error("download over a dead link should fail")
	}
}

// TestCodeCacheEviction: a tight code cache forces LRU eviction and
// recompilation charges on the next use of the evicted body.
func TestCodeCacheEviction(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyL2, radio.Fixed{Cls: radio.Class4}, workTarget(), vecsumTarget())
	// Big enough for one plan but not both.
	c.Exec.Cache.MaxBytes = 150

	argsW := []vm.Slot{vm.IntSlot(100)}
	if _, err := c.Invoke(context.Background(), "App", "work", argsW); err != nil {
		t.Fatal(err)
	}
	compiles1 := c.Stats.LocalCompiles
	argsV, err := vecsumTarget().MakeArgs(c.VM, 64, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "App", "vecsum", argsV); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("expected evictions under a 150-byte code cache")
	}
	// Re-running work must recompile what was evicted (same
	// execution, so without a cache it would have stayed linked).
	if _, err := c.Invoke(context.Background(), "App", "work", argsW); err != nil {
		t.Fatal(err)
	}
	if c.Stats.LocalCompiles <= compiles1+2 {
		t.Errorf("LocalCompiles = %d; eviction should force recompilation", c.Stats.LocalCompiles)
	}

	// An unlimited cache never evicts.
	c2 := newTestClient(t, p, StrategyL2, radio.Fixed{Cls: radio.Class4}, workTarget(), vecsumTarget())
	if _, err := c2.Invoke(context.Background(), "App", "work", argsW); err != nil {
		t.Fatal(err)
	}
	argsV2, _ := vecsumTarget().MakeArgs(c2.VM, 64, rng.New(2))
	if _, err := c2.Invoke(context.Background(), "App", "vecsum", argsV2); err != nil {
		t.Fatal(err)
	}
	if c2.Stats.Evictions != 0 {
		t.Error("unlimited cache should not evict")
	}
}

// TestConcurrentClientsOneServer: several clients share one in-process
// server concurrently (the server serializes execution internally).
func TestConcurrentClientsOneServer(t *testing.T) {
	p := testProgram(t)
	server := NewServer(p)
	pr := newProfiler(p)
	prof, err := pr.ProfileTarget(workTarget())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			c := New(ClientConfig{
				ID: fmt.Sprintf("pda-%d", i), Prog: p, Server: server,
				Channel: radio.Fixed{Cls: radio.Class4}, Strategy: StrategyR, Seed: uint64(i),
			})
			if err := c.Register(workTarget(), prof); err != nil {
				errs <- err
				return
			}
			for run := 0; run < 5; run++ {
				res, err := c.Invoke(context.Background(), "App", "work", []vm.Slot{vm.IntSlot(int32(100 + i))})
				if err != nil {
					errs <- err
					return
				}
				if res.I == 0 {
					errs <- fmt.Errorf("client %d: zero result", i)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
