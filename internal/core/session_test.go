package core

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"

	"greenvm/internal/energy"
	"greenvm/internal/isa"
	"greenvm/internal/jit"
	"greenvm/internal/radio"
	"greenvm/internal/vm"
)

// waitQueued spins until the SessionServer's waiting count reaches n
// (the enqueue happens in another goroutine).
func waitQueued(t *testing.T, ss *SessionServer, n int) {
	t.Helper()
	for i := 0; i < 1e7; i++ {
		ss.mu.Lock()
		w := ss.waiting
		ss.mu.Unlock()
		if w == n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("waiting count never reached %d", n)
}

// TestSessionAdmissionShedsWhenFull: with one worker and a one-slot
// queue, the third concurrent request is shed with a typed BusyError
// carrying the queue depth.
func TestSessionAdmissionShedsWhenFull(t *testing.T) {
	p := testProgram(t)
	ss := NewSessionServer(NewServer(p), SessionConfig{Workers: 1, QueueCap: 1})
	if err := ss.acquire(nil, 1); err != nil {
		t.Fatalf("first request should grab the free worker: %v", err)
	}
	granted := make(chan error, 1)
	go func() { granted <- ss.acquire(context.Background(), 2) }()
	waitQueued(t, ss, 1)

	err := ss.acquire(context.Background(), 3)
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("third request got %v, want a busy error", err)
	}
	var busy *BusyError
	if !errors.As(err, &busy) || busy.QueueDepth != 1 {
		t.Fatalf("busy error %v should carry queue depth 1", err)
	}

	ss.release() // hands the worker to the queued request
	if err := <-granted; err != nil {
		t.Fatalf("queued request should be granted on release: %v", err)
	}
	ss.release()

	st := ss.Stats()
	if st.Shed != 1 || st.MaxQueueDepth != 1 {
		t.Errorf("stats %+v, want Shed=1 MaxQueueDepth=1", st)
	}
}

// TestSessionAdmissionRoundRobin: a session with a deep queue cannot
// starve others — grants rotate across sessions, one per turn.
func TestSessionAdmissionRoundRobin(t *testing.T) {
	p := testProgram(t)
	ss := NewSessionServer(NewServer(p), SessionConfig{Workers: 1, QueueCap: 4})
	if err := ss.acquire(nil, 1); err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 3)
	enqueue := func(tag string, sid uint32, depth int) {
		go func() {
			if err := ss.acquire(context.Background(), sid); err != nil {
				grants <- "err:" + err.Error()
				return
			}
			grants <- tag
		}()
		waitQueued(t, ss, depth)
	}
	enqueue("a1", 10, 1)
	enqueue("a2", 10, 2)
	enqueue("b1", 20, 3)

	want := []string{"a1", "b1", "a2"} // rotation: a, b, a — not a, a, b
	for i, w := range want {
		ss.release()
		if got := <-grants; got != w {
			t.Fatalf("grant %d went to %q, want %q", i, got, w)
		}
	}
	ss.release()
}

// TestSessionAdmissionCancelledWaiter: a waiter whose context dies
// leaves the queue, and the rotation forgets its session.
func TestSessionAdmissionCancelledWaiter(t *testing.T) {
	p := testProgram(t)
	ss := NewSessionServer(NewServer(p), SessionConfig{Workers: 1, QueueCap: 4})
	if err := ss.acquire(nil, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() { waited <- ss.acquire(ctx, 2) }()
	waitQueued(t, ss, 1)
	cancel()
	if err := <-waited; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	waitQueued(t, ss, 0)
	ss.release()
	// The worker must be free again: a fresh request is granted at once.
	if err := ss.acquire(nil, 3); err != nil {
		t.Fatalf("post-cancel request should be granted: %v", err)
	}
	ss.release()
}

// TestBusyOverTCP: an admission rejection crosses the wire as a
// statusBusy frame and comes back as a BusyError with the depth — and
// the connection survives it.
func TestBusyOverTCP(t *testing.T) {
	p := testProgram(t)
	srv := NewSessionTCPServer(NewSessionServer(NewServer(p), SessionConfig{Workers: 1, QueueCap: -1}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	remote, err := DialServer(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Serialize arguments for App.work as a client would.
	m := p.FindMethod("App", "work")
	v := vm.New(p, energy.MicroSPARCIIep())
	argBytes, err := v.Heap.EncodeArgs(m, []vm.Slot{vm.IntSlot(150)})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the single worker so the RPC is shed.
	ss := srv.Sessions()
	if err := ss.acquire(nil, 999); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = remote.Execute(context.Background(), "c", "App", "work", argBytes, 0, 0)
	var busy *BusyError
	if !errors.Is(err, ErrServerBusy) || !errors.As(err, &busy) {
		t.Fatalf("shed RPC returned %v, want a BusyError", err)
	}
	if busy.QueueDepth != 0 {
		t.Errorf("queue depth %d over a no-queue server, want 0", busy.QueueDepth)
	}

	// Release the worker: the same connection serves the retry.
	ss.release()
	if _, _, _, err := remote.Execute(context.Background(), "c", "App", "work", argBytes, 0, 0); err != nil {
		t.Fatalf("retry after the busy reply failed: %v", err)
	}
}

// TestWireAdvertisesDepthAndBackend: the v2 hello response carries the
// server's queue depth and pool backend name — the client caches both
// after the dial-time probe — and a busy rejection names the backend
// that shed, so multi-backend clients attribute the busy signal to the
// right EWMA.
func TestWireAdvertisesDepthAndBackend(t *testing.T) {
	p := testProgram(t)
	srv := NewSessionTCPServer(NewSessionServer(NewServer(p),
		SessionConfig{Workers: 1, QueueCap: -1, Backend: "s7"}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	remote, err := DialServer(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// The dial-time hello probe already advertised.
	if depth, ok := remote.AdvertisedDepth(); !ok || depth != 0 {
		t.Errorf("AdvertisedDepth = (%d, %v) after dial, want (0, true)", depth, ok)
	}
	if id := remote.BackendID(); id != "s7" {
		t.Errorf("BackendID = %q, want s7", id)
	}

	// A shed RPC carries the backend name in its busy frame.
	m := p.FindMethod("App", "work")
	v := vm.New(p, energy.MicroSPARCIIep())
	argBytes, err := v.Heap.EncodeArgs(m, []vm.Slot{vm.IntSlot(150)})
	if err != nil {
		t.Fatal(err)
	}
	ss := srv.Sessions()
	if err := ss.acquire(nil, 999); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = remote.Execute(context.Background(), "c", "App", "work", argBytes, 0, 0)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("shed RPC returned %v, want a BusyError", err)
	}
	if busy.Backend != "s7" {
		t.Errorf("busy frame carried backend %q, want s7", busy.Backend)
	}
	ss.release()
}

// TestProtocolVersionMismatch is the table-driven handshake check:
// frames stamped with a foreign protocol version are rejected with a
// failure frame naming both versions, and the connection is closed.
func TestProtocolVersionMismatch(t *testing.T) {
	p := testProgram(t)
	srv := NewTCPServer(NewServer(p))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	for _, tc := range []struct {
		name string
		ver  byte
	}{
		{"older peer", protocolVersion - 1},
		{"newer peer", protocolVersion + 1},
		{"version zero", 0},
		{"garbage", 0xEE},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			payload := (&wire{}).u8(opHello).str("old-client").buf
			hdr := make([]byte, 5)
			hdr[0] = tc.ver
			binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
			if _, err := conn.Write(append(hdr, payload...)); err != nil {
				t.Fatal(err)
			}
			resp, err := readFrame(conn)
			if err != nil {
				t.Fatalf("the server should answer with a failure frame before closing: %v", err)
			}
			out := &wire{buf: resp}
			if st := out.rdU8(); st != statusFail {
				t.Fatalf("status %d, want failure", st)
			}
			msg := out.rdStr()
			if !strings.Contains(msg, "version mismatch") {
				t.Errorf("failure %q does not name the mismatch", msg)
			}
			// The connection must be closed after the rejection.
			if _, err := readFrame(conn); err == nil {
				t.Error("connection still open after a version rejection")
			}
		})
	}

	// Control: a correctly versioned hello on a fresh connection works.
	remote, err := DialServer(l.Addr().String())
	if err != nil {
		t.Fatalf("same-version dial failed: %v", err)
	}
	remote.Close()
}

// TestDialVersionMismatch: the dialer's probe surfaces a *VersionError
// when the server speaks a different version.
func TestDialVersionMismatch(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		readFrame(conn) //nolint:errcheck
		payload := (&wire{}).u8(statusOK).u32(0).buf
		hdr := make([]byte, 5)
		hdr[0] = protocolVersion + 1
		binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
		conn.Write(append(hdr, payload...)) //nolint:errcheck
		io.Copy(io.Discard, conn)           //nolint:errcheck
	}()

	_, err = DialServer(l.Addr().String())
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("dial against a wrong-version server returned %v, want a *VersionError", err)
	}
	if ve.Got != protocolVersion+1 {
		t.Errorf("version error reports peer v%d, want v%d", ve.Got, protocolVersion+1)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Error("VersionError should unwrap to ErrProtocol")
	}
}

// busyRemote rejects every execution with a BusyError and passes
// compilation through.
type busyRemote struct {
	inner Remote
	depth int
	calls int
}

func (b *busyRemote) Execute(ctx context.Context, clientID, class, method string, argBytes []byte,
	reqTime, estEnd energy.Seconds) ([]byte, energy.Seconds, bool, error) {
	b.calls++
	return nil, 0, false, &BusyError{QueueDepth: b.depth}
}

func (b *busyRemote) CompiledBody(ctx context.Context, qname string, level jit.Level) (*isa.Code, int, error) {
	return b.inner.CompiledBody(ctx, qname, level)
}

// TestBusyPricedIntoOffloadDecision: a shed exchange falls back to
// local execution without retries or breaker strikes, bumps the
// busy-rate estimate, and inflates the remote-energy estimate so
// adaptive policies steer away from an overloaded server.
func TestBusyPricedIntoOffloadDecision(t *testing.T) {
	p := testProgram(t)
	c := newTestClient(t, p, StrategyR, radio.Fixed{Cls: radio.Class4}, workTarget())
	busy := &busyRemote{inner: c.Server, depth: 7}
	c.Server = busy
	prof := c.profiles[p.FindMethod("App", "work")]
	base := c.RemoteEnergy(prof, 150, float64(c.Link.Chip.TxPower(radio.Class4)))

	args := []vm.Slot{vm.IntSlot(150)}
	var lastRate float64
	for i := 1; i <= 3; i++ {
		res, err := c.Invoke(context.Background(), "App", "work", args)
		if err != nil {
			t.Fatalf("invoke %d: a shed invocation must fall back locally, got %v", i, err)
		}
		if res.I == 0 {
			t.Fatalf("invoke %d returned a zero result", i)
		}
		if c.Stats.Sheds != i {
			t.Fatalf("after %d busy replies Stats.Sheds = %d", i, c.Stats.Sheds)
		}
		if r := c.BusyRate(); r <= lastRate {
			t.Fatalf("busy rate %v did not grow past %v", r, lastRate)
		} else {
			lastRate = r
		}
	}
	if busy.calls != 3 {
		t.Errorf("server saw %d calls, want 3 (busy replies are never retried)", busy.calls)
	}
	if c.Stats.Retries != 0 || c.Stats.Fallbacks != 3 {
		t.Errorf("retries=%d fallbacks=%d, want 0/3: busy is not a connection loss",
			c.Stats.Retries, c.Stats.Fallbacks)
	}
	if c.Stats.LinkDowns != 0 {
		t.Errorf("busy replies tripped the breaker %d times", c.Stats.LinkDowns)
	}

	inflated := c.RemoteEnergy(prof, 150, float64(c.Link.Chip.TxPower(radio.Class4)))
	if inflated <= base {
		t.Errorf("remote estimate %v not inflated over %v after sheds", inflated, base)
	}

	// Successful exchanges decay the estimate back down.
	c.noteRemoteSuccess()
	if c.BusyRate() >= lastRate {
		t.Errorf("busy rate %v did not decay after a success", c.BusyRate())
	}
}
